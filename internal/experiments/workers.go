package experiments

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// forEachCell runs fn(0..n-1) on up to `workers` goroutines (0 selects
// runtime.NumCPU(); <=1 runs inline). Figure builders use it to fan
// independent cells — scenarios, fault schemes, ppn series — out next to
// the per-campaign repetition pool. Each cell writes its own result slot,
// so output order never depends on scheduling; on failure the error of the
// lowest-index failing cell is returned, matching the serial path.
func forEachCell(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	minErr := atomic.Int64{}
	minErr.Store(math.MaxInt64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if int64(i) > minErr.Load() {
					continue
				}
				if err := fn(i); err != nil {
					errs[i] = err
					for {
						cur := minErr.Load()
						if int64(i) >= cur || minErr.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if m := minErr.Load(); m != math.MaxInt64 {
		return errs[m]
	}
	return nil
}
