package beegfs

import (
	"math"
	"testing"

	"repro/internal/simkernel"
	"repro/internal/simnet"
	"repro/internal/storagesim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// detStorage is a deterministic device model (no jitter, no saturation)
// for exact-value tests.
func detStorage() storagesim.Config {
	return storagesim.Config{SingleTargetRate: 1764, Beta: 0.596}
}

func testConfig() Config {
	return Config{
		Storage:        detStorage(),
		Hosts:          2,
		TargetsPerHost: 4,
		DefaultPattern: StripePattern{Count: 4, ChunkSize: 512 * KiB},
		Chooser:        &RoundRobinChooser{},
	}
}

func newFS(t *testing.T, cfg Config) (*simkernel.Simulation, *FileSystem) {
	t.Helper()
	sim := simkernel.New()
	net := simnet.New(sim)
	fs, err := New(sim, net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim, fs
}

func TestConfigValidation(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Chooser = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil chooser accepted")
	}
	bad = good
	bad.ServerNICCapacity = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative NIC accepted")
	}
	bad = good
	bad.CreateLatency = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
	bad = good
	bad.IntraNodePenalty = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("penalty=1 accepted")
	}
	bad = good
	bad.ClientGamma = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("gamma=2 accepted")
	}
}

func TestNewUsesPlaFRIMOrderFor2x4(t *testing.T) {
	_, fs := newFS(t, testConfig())
	want := []int{101, 201, 202, 203, 204, 102, 103, 104}
	got := fs.Mgmtd().All()
	for i, tg := range got {
		if tg.ID != want[i] {
			t.Fatalf("registration order = %v, want PlaFRIM order", ids(got))
		}
	}
}

func TestNewUsesInterleavedOrderOtherwise(t *testing.T) {
	cfg := testConfig()
	cfg.Hosts = 3
	cfg.TargetsPerHost = 2
	_, fs := newFS(t, cfg)
	want := []int{101, 201, 301, 102, 202, 302}
	for i, tg := range fs.Mgmtd().All() {
		if tg.ID != want[i] {
			t.Fatalf("order[%d] = %d, want %d", i, tg.ID, want[i])
		}
	}
}

func TestCreateUsesDirPattern(t *testing.T) {
	_, fs := newFS(t, testConfig())
	if err := fs.Meta().SetDirPattern("/scratch", StripePattern{Count: 8, ChunkSize: 512 * KiB}); err != nil {
		t.Fatal(err)
	}
	f1, err := fs.Create("/scratch/out.dat", nil)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Pattern.Count != 8 {
		t.Fatalf("pattern count = %d, want 8 from /scratch", f1.Pattern.Count)
	}
	f2, err := fs.Create("/home/x.dat", nil)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Pattern.Count != 4 {
		t.Fatalf("pattern count = %d, want root default 4", f2.Pattern.Count)
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	_, fs := newFS(t, testConfig())
	if _, err := fs.Create("/a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("/a", nil); err == nil {
		t.Fatal("duplicate create accepted")
	}
}

func TestMetaDirPrefixMatching(t *testing.T) {
	_, fs := newFS(t, testConfig())
	m := fs.Meta()
	if err := m.SetDirPattern("/a", StripePattern{Count: 2, ChunkSize: 512 * KiB}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetDirPattern("/a/b", StripePattern{Count: 8, ChunkSize: 512 * KiB}); err != nil {
		t.Fatal(err)
	}
	if p := m.PatternFor("/a/b/f"); p.Count != 8 {
		t.Fatalf("longest prefix not used: count %d", p.Count)
	}
	if p := m.PatternFor("/a/f"); p.Count != 2 {
		t.Fatalf("count %d, want 2", p.Count)
	}
	if p := m.PatternFor("/abc"); p.Count != 4 {
		t.Fatalf("/abc should not match /a: count %d", p.Count)
	}
}

func TestMetaRemoveAndOps(t *testing.T) {
	_, fs := newFS(t, testConfig())
	if _, err := fs.Create("/f", nil); err != nil {
		t.Fatal(err)
	}
	if fs.Meta().Lookup("/f") == nil {
		t.Fatal("lookup failed")
	}
	if err := fs.Meta().Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Meta().Remove("/f"); err == nil {
		t.Fatal("double remove accepted")
	}
	if fs.Meta().Ops["create"] != 1 || fs.Meta().Ops["unlink"] != 1 || fs.Meta().Ops["stat"] == 0 {
		t.Fatalf("op counts = %v", fs.Meta().Ops)
	}
}

func TestMgmtdOffline(t *testing.T) {
	_, fs := newFS(t, testConfig())
	if err := fs.Mgmtd().SetOnline(203, false); err != nil {
		t.Fatal(err)
	}
	online := fs.Mgmtd().Online()
	if len(online) != 7 {
		t.Fatalf("online = %d, want 7", len(online))
	}
	for _, tg := range online {
		if tg.ID == 203 {
			t.Fatal("offline target still listed")
		}
	}
	if err := fs.Mgmtd().SetOnline(203, true); err != nil {
		t.Fatal(err)
	}
	if len(fs.Mgmtd().Online()) != 8 {
		t.Fatal("target did not come back online")
	}
	if err := fs.Mgmtd().SetOnline(999, false); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestChooserSkipsOfflineTargets(t *testing.T) {
	_, fs := newFS(t, testConfig())
	if err := fs.Mgmtd().SetOnline(101, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		f, err := fs.CreateWithPattern(pathN("/f", i), StripePattern{Count: 7, ChunkSize: 512 * KiB}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range f.TargetIDs() {
			if id == 101 {
				t.Fatal("offline target allocated to a new file")
			}
		}
	}
}

func pathN(prefix string, i int) string {
	return prefix + string(rune('a'+i))
}

// A single process writing to a file on one target of an otherwise-idle
// deterministic system: rate = SingleTargetRate, so 1764 MiB finish in 1s.
func TestStartWriteSingleTargetTiming(t *testing.T) {
	cfg := testConfig()
	sim, fs := newFS(t, cfg)
	client := fs.NewClient("node1", 0)
	f, err := fs.CreateWithPattern("/f", StripePattern{Count: 1, ChunkSize: 512 * KiB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var done simkernel.Time
	_, err = fs.StartWrite(&WriteOp{
		Client: client, File: f, Offset: 0, Length: 1764 * MiB,
		TransferSize: 1 * MiB,
		OnComplete:   func(at simkernel.Time) { done = at },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(done), 1, 1e-6) {
		t.Fatalf("write finished at %v, want 1.0s", done)
	}
}

// Allocation (1,3) with per-server NIC caps: completion is set by the
// host carrying 3/4 of the data — the paper's Figure 9 but for 4 targets.
func TestStartWriteNetworkLimitedAllocation13(t *testing.T) {
	cfg := testConfig()
	cfg.ServerNICCapacity = 1100 // scenario 1 effective NIC
	sim, fs := newFS(t, cfg)
	client := fs.NewClient("node1", 0)
	f, err := fs.Create("/f", nil) // round-robin count 4 -> (1,3)
	if err != nil {
		t.Fatal(err)
	}
	vol := int64(4096) * MiB
	var done simkernel.Time
	if _, err := fs.StartWrite(&WriteOp{
		Client: client, File: f, Length: vol, TransferSize: 1 * MiB,
		OnComplete: func(at simkernel.Time) { done = at },
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Host with 3 targets moves 3/4 of 4096 MiB through an 1100 MiB/s NIC:
	// 3072/1100 = 2.7927s; bandwidth = 4096/2.7927 = 1466.7 (paper ~1460).
	bw := float64(vol) / float64(MiB) / float64(done)
	if !almost(bw, 4.0/3.0*1100, 1) {
		t.Fatalf("bandwidth = %v, want ~%v", bw, 4.0/3.0*1100)
	}
}

func TestStartWriteReleasesTargets(t *testing.T) {
	sim, fs := newFS(t, testConfig())
	client := fs.NewClient("node1", 0)
	f, err := fs.Create("/f", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.StartWrite(&WriteOp{
		Client: client, File: f, Length: 100 * MiB, TransferSize: 1 * MiB, App: "app1",
	}); err != nil {
		t.Fatal(err)
	}
	for _, tg := range f.Targets {
		if tg.Writers() != 1 {
			t.Fatalf("target %d writers = %d during write", tg.ID, tg.Writers())
		}
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for _, tg := range f.Targets {
		if tg.Writers() != 0 {
			t.Fatalf("target %d writers = %d after completion", tg.ID, tg.Writers())
		}
		if tg.WriteDepth() != 0 {
			t.Fatalf("target %d residual depth %v", tg.ID, tg.WriteDepth())
		}
	}
	if f.Size != 100*MiB {
		t.Fatalf("file size = %d, want %d", f.Size, 100*MiB)
	}
}

func TestStartWriteTransferOverhead(t *testing.T) {
	cfg := testConfig()
	cfg.TransferLatency = 0.001
	sim, fs := newFS(t, cfg)
	client := fs.NewClient("node1", 0)
	f, err := fs.CreateWithPattern("/f", StripePattern{Count: 1, ChunkSize: 512 * KiB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var done simkernel.Time
	if _, err := fs.StartWrite(&WriteOp{
		Client: client, File: f, Length: 1764 * MiB, TransferSize: 1 * MiB,
		OnComplete: func(at simkernel.Time) { done = at },
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// 1764 transfers x 1ms = 1.764s overhead on top of 1s of transfer.
	if !almost(float64(done), 1+1.764, 1e-6) {
		t.Fatalf("done at %v, want 2.764", done)
	}
}

func TestStartWriteZeroLength(t *testing.T) {
	sim, fs := newFS(t, testConfig())
	client := fs.NewClient("node1", 0)
	f, err := fs.Create("/f", nil)
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	if _, err := fs.StartWrite(&WriteOp{
		Client: client, File: f, Length: 0, TransferSize: 1 * MiB,
		OnComplete: func(simkernel.Time) { fired = true },
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("zero-length write never completed")
	}
}

func TestStartWriteErrors(t *testing.T) {
	_, fs := newFS(t, testConfig())
	client := fs.NewClient("node1", 0)
	f, _ := fs.Create("/f", nil)
	if _, err := fs.StartWrite(&WriteOp{File: f, Length: 1, TransferSize: 1}); err == nil {
		t.Fatal("nil client accepted")
	}
	if _, err := fs.StartWrite(&WriteOp{Client: client, File: f, Length: -1, TransferSize: 1}); err == nil {
		t.Fatal("negative length accepted")
	}
	if _, err := fs.StartWrite(&WriteOp{Client: client, File: f, Length: 1}); err == nil {
		t.Fatal("zero transfer size accepted")
	}
}

func TestClientNICLimitsWrite(t *testing.T) {
	cfg := testConfig()
	sim, fs := newFS(t, cfg)
	client := fs.NewClient("node1", 100)
	f, err := fs.Create("/f", nil)
	if err != nil {
		t.Fatal(err)
	}
	var done simkernel.Time
	if _, err := fs.StartWrite(&WriteOp{
		Client: client, File: f, Length: 200 * MiB, TransferSize: 1 * MiB,
		OnComplete: func(at simkernel.Time) { done = at },
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(done), 2, 1e-6) {
		t.Fatalf("NIC-limited write finished at %v, want 2s", done)
	}
}

func TestRateCapLimitsWrite(t *testing.T) {
	sim, fs := newFS(t, testConfig())
	client := fs.NewClient("node1", 0)
	f, _ := fs.Create("/f", nil)
	var done simkernel.Time
	if _, err := fs.StartWrite(&WriteOp{
		Client: client, File: f, Length: 50 * MiB, TransferSize: 1 * MiB, RateCap: 10,
		OnComplete: func(at simkernel.Time) { done = at },
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(done), 5, 1e-6) {
		t.Fatalf("capped write finished at %v, want 5s", done)
	}
}

func TestClientRampCap(t *testing.T) {
	cfg := testConfig()
	cfg.ClientA = 880
	cfg.ClientGamma = 0.45
	// N=1, ppn=8: aggregate 880, per-process 110.
	if c := cfg.ClientRampCap(1, 8); !almost(c, 110, 1e-9) {
		t.Fatalf("cap(1,8) = %v, want 110", c)
	}
	// Aggregate grows sublinearly: N=4 aggregate = 880*4^0.45 = 1639.
	agg4 := cfg.ClientRampCap(4, 8) * 32
	if !almost(agg4, 880*math.Pow(4, 0.45), 1e-6) {
		t.Fatalf("aggregate(4) = %v", agg4)
	}
	if agg4 >= 4*880 {
		t.Fatal("ramp should be sublinear in N")
	}
	cfg.ClientA = 0
	if c := cfg.ClientRampCap(4, 8); c != 0 {
		t.Fatalf("disabled ramp returned %v", c)
	}
}

func TestDepthScale(t *testing.T) {
	cfg := testConfig()
	cfg.PpnSat = 8
	if s := cfg.DepthScale(8); s != 1 {
		t.Fatalf("DepthScale(8) = %v, want 1", s)
	}
	if s := cfg.DepthScale(4); s != 1 {
		t.Fatalf("DepthScale(4) = %v, want 1", s)
	}
	// ppn=16 halves each process's contribution: node total stays at 8.
	if s := cfg.DepthScale(16); !almost(s*16, 8, 1e-9) {
		t.Fatalf("node depth at ppn=16 = %v, want 8", s*16)
	}
	cfg.IntraNodePenalty = 0.1
	// One doubling beyond PpnSat: node depth = 8 * 0.9.
	if s := cfg.DepthScale(16); !almost(s*16, 8*0.9, 1e-9) {
		t.Fatalf("penalized node depth = %v, want %v", s*16, 8*0.9)
	}
	if s := cfg.DepthScale(0); s != 0 {
		t.Fatalf("DepthScale(0) = %v", s)
	}
	cfg.PpnSat = 0
	if s := cfg.DepthScale(32); s != 1 {
		t.Fatalf("unlimited PpnSat: scale = %v, want 1", s)
	}
}

// Two applications writing to disjoint target sets do not slow each other
// down when the network is generous (lesson 7 precondition).
func TestDisjointAppsIndependent(t *testing.T) {
	cfg := testConfig()
	sim, fs := newFS(t, cfg)
	c1 := fs.NewClient("n1", 0)
	c2 := fs.NewClient("n2", 0)
	// Stripe count 2 via round-robin: first file gets (101,201), second
	// (202,203) — never sharing targets, as in the paper's count-2 runs.
	f1, err := fs.CreateWithPattern("/f1", StripePattern{Count: 2, ChunkSize: 512 * KiB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fs.CreateWithPattern("/f2", StripePattern{Count: 2, ChunkSize: 512 * KiB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	shared := map[int]bool{}
	for _, id := range f1.TargetIDs() {
		shared[id] = true
	}
	for _, id := range f2.TargetIDs() {
		if shared[id] {
			t.Fatalf("files share target %d; expected disjoint", id)
		}
	}
	var d1, d2 simkernel.Time
	if _, err := fs.StartWrite(&WriteOp{Client: c1, File: f1, Length: 1764 * MiB, TransferSize: 1 * MiB, App: "app1",
		OnComplete: func(at simkernel.Time) { d1 = at }}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.StartWrite(&WriteOp{Client: c2, File: f2, Length: 1764 * MiB, TransferSize: 1 * MiB, App: "app2",
		OnComplete: func(at simkernel.Time) { d2 = at }}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// f1 targets: 101 (host1), 201 (host2): each moves 882 MiB but the two
	// flows' shares interact through host controllers with f2's (202,203).
	// Host2 has 3 active targets: C(3); host1 has 1: C(1).
	// The exact value matters less than independence: both finish together.
	if !almost(float64(d1), float64(d2), 1e-6) {
		t.Fatalf("symmetric apps finished apart: %v vs %v", d1, d2)
	}
}

func TestSharedClientRampScalesWithActiveNodes(t *testing.T) {
	cfg := testConfig()
	cfg.ClientA = 1000
	cfg.ClientGamma = 0.5
	sim, fs := newFS(t, cfg)
	if fs.ClientRamp() == nil {
		t.Fatal("ramp resource missing")
	}
	if !almost(fs.ClientRamp().Capacity(), 1000, 1e-9) {
		t.Fatalf("idle ramp capacity = %v, want ClientA", fs.ClientRamp().Capacity())
	}
	c1 := fs.NewClient("n1", 0)
	c2 := fs.NewClient("n2", 0)
	f, err := fs.CreateWithPattern("/f", StripePattern{Count: 8, ChunkSize: 512 * KiB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var flows []*simnet.Flow
	for i, c := range []*Client{c1, c2} {
		fl, err := fs.StartWrite(&WriteOp{
			Client: c, File: f,
			Offset: int64(i) * GiB, Length: 1 * GiB,
			TransferSize: 1 * MiB,
		})
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, fl)
	}
	if fs.ActiveClients() != 2 {
		t.Fatalf("active clients = %d, want 2", fs.ActiveClients())
	}
	// Capacity follows A * n^gamma = 1000 * sqrt(2).
	want := 1000 * math.Sqrt2
	if !almost(fs.ClientRamp().Capacity(), want, 1e-6) {
		t.Fatalf("ramp capacity = %v, want %v", fs.ClientRamp().Capacity(), want)
	}
	// Both flows split the ramp evenly and the aggregate equals the ramp.
	if got := flows[0].Rate() + flows[1].Rate(); !almost(got, want, 1e-6) {
		t.Fatalf("aggregate rate = %v, want %v", got, want)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if fs.ActiveClients() != 0 {
		t.Fatalf("active clients after completion = %d", fs.ActiveClients())
	}
}

func TestSharedRampIsGlobalAcrossApps(t *testing.T) {
	// Two applications on one node each do NOT get 2x the single-app
	// aggregate: the ramp is a deployment-wide resource (Figure 12's
	// aggregate parity).
	cfg := testConfig()
	cfg.ClientA = 1000
	cfg.ClientGamma = 0.5
	cfg.ServerNICCapacity = 0
	_, fs := newFS(t, cfg)
	c1 := fs.NewClient("n1", 0)
	c2 := fs.NewClient("n2", 0)
	f1, _ := fs.CreateWithPattern("/f1", StripePattern{Count: 8, ChunkSize: 512 * KiB}, nil)
	f2, _ := fs.CreateWithPattern("/f2", StripePattern{Count: 8, ChunkSize: 512 * KiB}, nil)
	fl1, err := fs.StartWrite(&WriteOp{Client: c1, File: f1, Length: GiB, TransferSize: MiB, App: "a"})
	if err != nil {
		t.Fatal(err)
	}
	fl2, err := fs.StartWrite(&WriteOp{Client: c2, File: f2, Length: GiB, TransferSize: MiB, App: "b"})
	if err != nil {
		t.Fatal(err)
	}
	agg := fl1.Rate() + fl2.Rate()
	if !almost(agg, 1000*math.Sqrt2, 1e-6) {
		t.Fatalf("two-app aggregate = %v, want the shared ramp %v", agg, 1000*math.Sqrt2)
	}
}

func TestRampWeightPenalizesOversubscription(t *testing.T) {
	cfg := testConfig()
	cfg.PpnSat = 8
	cfg.IntraNodePenalty = 0.1
	if w := cfg.RampWeight(8); w != 1 {
		t.Fatalf("RampWeight(8) = %v, want 1", w)
	}
	w16 := cfg.RampWeight(16)
	if !almost(w16, 1/0.9, 1e-9) {
		t.Fatalf("RampWeight(16) = %v, want %v", w16, 1/0.9)
	}
	// Consistency with the analytic cap: weight * cap recovers the
	// unpenalized aggregate.
	cfg.ClientA = 1000
	cfg.ClientGamma = 0.5
	capTotal := cfg.ClientRampCap(4, 16) * 64
	if !almost(capTotal*w16, 1000*2, 1e-6) {
		t.Fatalf("penalty inconsistent between RampWeight and ClientRampCap: %v", capTotal*w16)
	}
}

func TestStartReadRequiresWrittenData(t *testing.T) {
	_, fs := newFS(t, testConfig())
	client := fs.NewClient("node1", 0)
	f, err := fs.Create("/f", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Reading an empty file fails.
	if _, err := fs.StartRead(&WriteOp{Client: client, File: f, Length: 100 * MiB, TransferSize: MiB}); err == nil {
		t.Fatal("read beyond file size accepted")
	}
}

func TestStartReadSymmetricTiming(t *testing.T) {
	sim, fs := newFS(t, testConfig())
	client := fs.NewClient("node1", 0)
	f, err := fs.CreateWithPattern("/f", StripePattern{Count: 1, ChunkSize: 512 * KiB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wrote, readDone simkernel.Time
	if _, err := fs.StartWrite(&WriteOp{
		Client: client, File: f, Length: 1764 * MiB, TransferSize: MiB,
		OnComplete: func(at simkernel.Time) {
			wrote = at
			if _, err := fs.StartRead(&WriteOp{
				Client: client, File: f, Length: 1764 * MiB, TransferSize: MiB,
				OnComplete: func(at simkernel.Time) { readDone = at },
			}); err != nil {
				t.Errorf("read failed: %v", err)
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(wrote), 1, 1e-6) {
		t.Fatalf("write finished at %v", wrote)
	}
	// Symmetric model: the read takes the same 1s.
	if !almost(float64(readDone-wrote), 1, 1e-6) {
		t.Fatalf("read took %v, want 1s", readDone-wrote)
	}
	// Reads must not grow the file.
	if f.Size != 1764*MiB {
		t.Fatalf("read changed file size to %d", f.Size)
	}
}

func TestCapacityAccounting(t *testing.T) {
	cfg := testConfig()
	cfg.Storage.TargetCapacityBytes = 1 * GiB
	sim, fs := newFS(t, cfg)
	client := fs.NewClient("n1", 0)
	f, err := fs.CreateWithPattern("/f", StripePattern{Count: 2, ChunkSize: 512 * KiB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.StartWrite(&WriteOp{Client: client, File: f, Length: 1 * GiB, TransferSize: MiB}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 GiB striped over 2 targets: 512 MiB each.
	for i, tg := range f.Targets {
		if tg.Used() != 512*MiB {
			t.Fatalf("target %d used %d, want %d", i, tg.Used(), 512*MiB)
		}
		if f.StoredOn(i) != 512*MiB {
			t.Fatalf("file stored[%d] = %d", i, f.StoredOn(i))
		}
	}
	// Remove frees the space.
	if err := fs.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	for i, tg := range f.Targets {
		if tg.Used() != 0 {
			t.Fatalf("target %d not freed: %d", i, tg.Used())
		}
	}
	if err := fs.Remove("/f"); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestCapacityENOSPC(t *testing.T) {
	cfg := testConfig()
	cfg.Storage.TargetCapacityBytes = 256 * MiB
	_, fs := newFS(t, cfg)
	client := fs.NewClient("n1", 0)
	f, err := fs.CreateWithPattern("/f", StripePattern{Count: 2, ChunkSize: 512 * KiB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 1 GiB over 2 targets needs 512 MiB per target > 256 MiB capacity.
	if _, err := fs.StartWrite(&WriteOp{Client: client, File: f, Length: 1 * GiB, TransferSize: MiB}); err == nil {
		t.Fatal("overflowing write accepted")
	}
	// A fitting write passes.
	if _, err := fs.StartWrite(&WriteOp{Client: client, File: f, Length: 256 * MiB, TransferSize: MiB}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityOverwriteNotDoubleCounted(t *testing.T) {
	cfg := testConfig()
	cfg.Storage.TargetCapacityBytes = 1 * GiB
	sim, fs := newFS(t, cfg)
	client := fs.NewClient("n1", 0)
	f, err := fs.CreateWithPattern("/f", StripePattern{Count: 1, ChunkSize: 512 * KiB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Write the same 128 MiB region twice: used stays 128 MiB.
	for i := 0; i < 2; i++ {
		if _, err := fs.StartWrite(&WriteOp{Client: client, File: f, Length: 128 * MiB, TransferSize: MiB}); err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if used := f.Targets[0].Used(); used != 128*MiB {
		t.Fatalf("used = %d after overwrite, want %d", used, 128*MiB)
	}
}

func TestCapacityDisabledByDefaultConfig(t *testing.T) {
	_, fs := newFS(t, testConfig()) // detStorage has no capacity set
	client := fs.NewClient("n1", 0)
	f, _ := fs.Create("/f", nil)
	if _, err := fs.StartWrite(&WriteOp{Client: client, File: f, Length: GiB, TransferSize: MiB}); err != nil {
		t.Fatalf("capacity-disabled write rejected: %v", err)
	}
}
