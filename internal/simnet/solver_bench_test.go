package simnet

import (
	"fmt"
	"testing"

	"repro/internal/rng"
	"repro/internal/simkernel"
)

// steadyNet builds a network with nFlows long-running flows spread over 12
// resources (the root BenchmarkAblationSolver topology) and warms the
// solver once, so subsequent rebalances measure the steady state.
func steadyNet(nFlows int) (*Network, []*Resource) {
	src := rng.New(1)
	net := New(simkernel.New())
	resources := make([]*Resource, 12)
	for i := range resources {
		resources[i] = net.AddResource(fmt.Sprintf("r%d", i), 100+src.Float64()*1000)
	}
	for i := 0; i < nFlows; i++ {
		usage := make(map[*Resource]float64)
		for _, j := range src.Perm(len(resources))[:3] {
			usage[resources[j]] = 0.25 + src.Float64()*0.75
		}
		net.Start(&Flow{Name: fmt.Sprintf("f%d", i), Volume: 1e15, Usage: usage})
	}
	// Two capacity swings grow every scratch buffer to its final size and
	// exercise both reschedule directions.
	net.SetCapacity(resources[0], 500)
	net.SetCapacity(resources[0], 700)
	return net, resources
}

// The solver's steady state — re-solving rates and rescheduling completions
// after a capacity change — must not allocate: campaigns spend almost all
// of their time here.
func TestSolveSteadyStateZeroAllocs(t *testing.T) {
	for _, nFlows := range []int{8, 64, 256} {
		net, resources := steadyNet(nFlows)
		r := resources[0]
		i := 0
		allocs := testing.AllocsPerRun(100, func() {
			i++
			if i&1 == 0 {
				net.SetCapacity(r, 500)
			} else {
				net.SetCapacity(r, 700)
			}
		})
		if allocs != 0 {
			t.Errorf("%d flows: %.1f allocs per steady-state rebalance, want 0", nFlows, allocs)
		}
	}
}

func benchmarkSolve(b *testing.B, nFlows int) {
	net, resources := steadyNet(nFlows)
	r := resources[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&1 == 0 {
			net.SetCapacity(r, 500)
		} else {
			net.SetCapacity(r, 700)
		}
	}
}

func BenchmarkSolve8Flows(b *testing.B)   { benchmarkSolve(b, 8) }
func BenchmarkSolve64Flows(b *testing.B)  { benchmarkSolve(b, 64) }
func BenchmarkSolve256Flows(b *testing.B) { benchmarkSolve(b, 256) }

// singleCompNet builds the campaign shape at scale: one connected
// component where every flow rides a shared client-stack ramp plus its
// own client NIC and its own primary stripe target (the per-client and
// per-op resources the beegfs layer gives every process), the bulk of
// the flows are pinned by a low client-side cap, and a straggler
// minority with distinct higher caps cascades through roomy per-group
// resources. The solve therefore has a long pass tail in which only a
// few flows — and only their resources — remain live: exactly where
// the incremental solver's compacted flow and candidate lists beat the
// reference's full per-pass rescans of every flow and every (mostly
// dead) per-client resource.
func singleCompNet(nFlows int) (*Network, *component) {
	src := rng.New(11)
	net := New(simkernel.New())
	shared := net.AddResource("ramp", 1e9)
	groups := make([]*Resource, 12)
	for i := range groups {
		groups[i] = net.AddResource(fmt.Sprintf("g%d", i), 20000+src.Float64()*500)
	}
	for i := 0; i < nFlows; i++ {
		nic := net.AddResource(fmt.Sprintf("nic%04d", i), 1e5)
		tgt := net.AddResource(fmt.Sprintf("tgt%04d", i), 5e4)
		f := &Flow{
			Name:   fmt.Sprintf("f%04d", i),
			Volume: 1e15,
			Usage: map[*Resource]float64{
				shared:       0.125,
				nic:          1,
				tgt:          0.5 + src.Float64()*0.5,
				groups[i%12]: 0.25 + src.Float64()*0.75,
			},
		}
		if i%8 != 0 {
			f.Cap = 2
		} else {
			f.Cap = 50 + float64(i)*0.25
		}
		net.Start(f)
	}
	return net, net.comps[0]
}

// BenchmarkSolveSingleComponent measures one cold waterfill of the
// single-component campaign topology with the incremental solver — the
// work a flow start or (failed-warm-start) completion pays inside the
// component that component scoping alone cannot reduce.
func BenchmarkSolveSingleComponent(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprint(n), func(b *testing.B) {
			net, c := singleCompNet(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.sv.solve(c.flows, c.resources, c.capped, nil)
			}
		})
	}
}

// BenchmarkSolveSingleComponentReference is the identical solve through
// the retained reference waterfill (full per-pass rescans). The
// SingleComponent/SingleComponentReference ratio is the incremental
// solver's speedup on the shapes the campaigns actually produce.
func BenchmarkSolveSingleComponentReference(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprint(n), func(b *testing.B) {
			_, c := singleCompNet(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				solveReference(c.flows, c.resources)
			}
		})
	}
}

// multiAppNet builds nApps disjoint "applications", each striping 8
// long-running flows over its own 5 resources — the multi-application
// interference shape of Figs. 10–13 with fully disjoint OST sets. With
// global set the network is forced into the historical one-component
// global-solve behavior, giving the incremental path its baseline.
func multiAppNet(nApps int, global bool) (*Network, []*Resource) {
	const resPerApp, flowsPerApp = 5, 8
	src := rng.New(7)
	net := New(simkernel.New())
	net.forceGlobal = global
	apps := make([][]*Resource, nApps)
	for a := range apps {
		rs := make([]*Resource, resPerApp)
		for i := range rs {
			rs[i] = net.AddResource(fmt.Sprintf("a%dr%d", a, i), 100+src.Float64()*1000)
		}
		apps[a] = rs
	}
	for a := range apps {
		for i := 0; i < flowsPerApp; i++ {
			usage := make(map[*Resource]float64)
			for _, j := range src.Perm(resPerApp)[:3] {
				usage[apps[a][j]] = 0.25 + src.Float64()*0.75
			}
			net.Start(&Flow{Name: fmt.Sprintf("a%df%d", a, i), Volume: 1e15, Usage: usage})
		}
	}
	// Warm both reschedule directions so the benchmark loop is steady state.
	net.SetCapacity(apps[0][0], 500)
	net.SetCapacity(apps[0][0], 700)
	return net, apps[0]
}

func benchmarkMultiComponent(b *testing.B, nApps int, global bool) {
	net, app0 := multiAppNet(nApps, global)
	r := app0[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&1 == 0 {
			net.SetCapacity(r, 500)
		} else {
			net.SetCapacity(r, 700)
		}
	}
}

// BenchmarkSolveMultiComponent measures a capacity-change rebalance in a
// network of disjoint applications: the incremental engine settles and
// re-solves only the touched application's component, so cost stays flat
// as unrelated applications are added.
func BenchmarkSolveMultiComponent(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("%dapps", n), func(b *testing.B) { benchmarkMultiComponent(b, n, false) })
	}
}

// BenchmarkSolveMultiComponentGlobal is the same event on the same
// topology with the network forced into the historical global solve:
// every event settles, re-solves and reschedules all applications. The
// MultiComponent/Global ratio is the incremental speedup.
func BenchmarkSolveMultiComponentGlobal(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("%dapps", n), func(b *testing.B) { benchmarkMultiComponent(b, n, true) })
	}
}

// BenchmarkRebalanceSingleEvent measures one full event-path round trip —
// a probe flow joining a component (union, merge bookkeeping, scoped
// solve) and aborting out of it (lazy split marking, scoped re-solve) —
// inside an 8-application network where 7 applications must stay
// untouched.
func BenchmarkRebalanceSingleEvent(b *testing.B) {
	net, app0 := multiAppNet(8, false)
	probe := &Flow{
		Name:   "probe",
		Volume: 1e15,
		Usage:  map[*Resource]float64{app0[0]: 1, app0[1]: 0.5},
	}
	net.Start(probe)
	net.Abort(probe)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Start(probe)
		net.Abort(probe)
	}
}
