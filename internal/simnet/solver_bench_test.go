package simnet

import (
	"fmt"
	"testing"

	"repro/internal/rng"
	"repro/internal/simkernel"
)

// steadyNet builds a network with nFlows long-running flows spread over 12
// resources (the root BenchmarkAblationSolver topology) and warms the
// solver once, so subsequent rebalances measure the steady state.
func steadyNet(nFlows int) (*Network, []*Resource) {
	src := rng.New(1)
	net := New(simkernel.New())
	resources := make([]*Resource, 12)
	for i := range resources {
		resources[i] = net.AddResource(fmt.Sprintf("r%d", i), 100+src.Float64()*1000)
	}
	for i := 0; i < nFlows; i++ {
		usage := make(map[*Resource]float64)
		for _, j := range src.Perm(len(resources))[:3] {
			usage[resources[j]] = 0.25 + src.Float64()*0.75
		}
		net.Start(&Flow{Name: fmt.Sprintf("f%d", i), Volume: 1e15, Usage: usage})
	}
	// Two capacity swings grow every scratch buffer to its final size and
	// exercise both reschedule directions.
	net.SetCapacity(resources[0], 500)
	net.SetCapacity(resources[0], 700)
	return net, resources
}

// The solver's steady state — re-solving rates and rescheduling completions
// after a capacity change — must not allocate: campaigns spend almost all
// of their time here.
func TestSolveSteadyStateZeroAllocs(t *testing.T) {
	for _, nFlows := range []int{8, 64, 256} {
		net, resources := steadyNet(nFlows)
		r := resources[0]
		i := 0
		allocs := testing.AllocsPerRun(100, func() {
			i++
			if i&1 == 0 {
				net.SetCapacity(r, 500)
			} else {
				net.SetCapacity(r, 700)
			}
		})
		if allocs != 0 {
			t.Errorf("%d flows: %.1f allocs per steady-state rebalance, want 0", nFlows, allocs)
		}
	}
}

func benchmarkSolve(b *testing.B, nFlows int) {
	net, resources := steadyNet(nFlows)
	r := resources[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&1 == 0 {
			net.SetCapacity(r, 500)
		} else {
			net.SetCapacity(r, 700)
		}
	}
}

func BenchmarkSolve8Flows(b *testing.B)   { benchmarkSolve(b, 8) }
func BenchmarkSolve64Flows(b *testing.B)  { benchmarkSolve(b, 64) }
func BenchmarkSolve256Flows(b *testing.B) { benchmarkSolve(b, 256) }
