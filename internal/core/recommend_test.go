package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/stats"
)

var plafrimHostOrder = []int{0, 1, 1, 1, 1, 0, 0, 0}

// The paper's headline recommendation: on PlaFRIM, the default stripe
// count should be the maximum (8), in both scenarios.
func TestRecommendMaxCountScenario1(t *testing.T) {
	m := modelFor(cluster.Scenario1Ethernet)
	rec, err := Recommend(m, plafrimHostOrder, "roundrobin", 4, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rec.BestCount != 8 {
		t.Fatalf("BestCount = %d, want 8 (lesson 4)", rec.BestCount)
	}
	// §I: "We estimate that change will transparently increase I/O
	// performance of applications by up to 40%." Count 4 -> 8 on the
	// model: 2200/1467 - 1 = 50%; the paper's 40% is the cross-scenario
	// lower estimate. Accept 0.3..0.6.
	if rec.Gain < 0.3 || rec.Gain > 0.6 {
		t.Fatalf("gain over default = %.0f%%, want 30-60%% (paper: up to 40%%)", rec.Gain*100)
	}
}

func TestRecommendMaxCountScenario2(t *testing.T) {
	m := modelFor(cluster.Scenario2Omnipath)
	rec, err := Recommend(m, plafrimHostOrder, "roundrobin", 4, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rec.BestCount != 8 {
		t.Fatalf("BestCount = %d, want 8 (lesson 6)", rec.BestCount)
	}
	if rec.Gain <= 0 {
		t.Fatalf("gain = %v, want positive", rec.Gain)
	}
}

// Figure 6a's bimodality signature: counts 2, 3, 5, 6 are flagged bimodal
// under round-robin in scenario 1; 1, 4, 7, 8 are not.
func TestRecommendBimodalCountsScenario1(t *testing.T) {
	m := modelFor(cluster.Scenario1Ethernet)
	rec, err := Recommend(m, plafrimHostOrder, "roundrobin", 4, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	wantBimodal := map[int]bool{1: false, 2: true, 3: true, 4: false, 5: true, 6: true, 7: false, 8: false}
	for _, e := range rec.PerCount {
		if e.Bimodal != wantBimodal[e.Count] {
			t.Errorf("count %d: bimodal = %v, want %v", e.Count, e.Bimodal, wantBimodal[e.Count])
		}
	}
}

// With the random chooser, count 4 becomes high-variance: best (2,2) hits
// the peak, worst (0,4) hits one link (§IV-C1's "best case as likely as
// the worst case" discussion).
func TestRecommendRandomChooserCount4Spread(t *testing.T) {
	m := modelFor(cluster.Scenario1Ethernet)
	rec, err := Recommend(m, plafrimHostOrder, "random", 4, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	e := rec.PerCount[3] // count 4
	if !almost(e.Best, 2200, 60) {
		t.Fatalf("random count-4 best = %v, want ~2200 (the (2,2) case)", e.Best)
	}
	if !almost(e.Worst, 1100, 40) {
		t.Fatalf("random count-4 worst = %v, want ~1100 (the (0,4) case)", e.Worst)
	}
	if rec.BestCount != 8 {
		t.Fatalf("random chooser best count = %d, want 8", rec.BestCount)
	}
}

// The balanced chooser removes the count-8 advantage at even counts: 2,
// 4, 6, 8 all reach the scenario-1 peak.
func TestRecommendBalancedChooserScenario1(t *testing.T) {
	m := modelFor(cluster.Scenario1Ethernet)
	rec, err := Recommend(m, plafrimHostOrder, "balanced", 4, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 6, 8} {
		e := rec.PerCount[k-1]
		if !almost(e.Mean, 2200, 60) {
			t.Fatalf("balanced count %d mean = %v, want ~2200", k, e.Mean)
		}
		if e.Bimodal {
			t.Fatalf("balanced count %d flagged bimodal", k)
		}
	}
}

func TestRecommendErrors(t *testing.T) {
	m := modelFor(cluster.Scenario1Ethernet)
	if _, err := Recommend(m, nil, "roundrobin", 4, 8, 8); err == nil {
		t.Fatal("empty order accepted")
	}
	if _, err := Recommend(m, plafrimHostOrder, "mystery", 4, 8, 8); err == nil {
		t.Fatal("unknown chooser accepted")
	}
}

// The adaptive-policy question from §I: would adapting each application's
// stripe count beat "always use max"? With the model, max-count mean is
// within a whisker of the best per-allocation outcome at every count, so
// the answer is no — the policy head-room is ~0.
func TestAdaptivePolicyHeadroom(t *testing.T) {
	m := modelFor(cluster.Scenario2Omnipath)
	rec, err := Recommend(m, plafrimHostOrder, "roundrobin", 4, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	maxMean := rec.PerCount[7].Mean
	bestAny := 0.0
	for _, e := range rec.PerCount {
		if e.Best > bestAny {
			bestAny = e.Best
		}
	}
	if headroom := bestAny/maxMean - 1; headroom > 0.05 {
		t.Fatalf("adaptive policy headroom = %.1f%%, expected <5%%", headroom*100)
	}
}

func TestLesson1Verdict(t *testing.T) {
	s1 := map[int]float64{1: 880, 2: 1270, 4: 1450, 8: 1460}
	s2 := map[int]float64{1: 1631, 4: 3500, 16: 6100, 32: 6100}
	v := Lesson1(s1, s2)
	if !v.Holds {
		t.Fatalf("lesson 1 should hold on paper-like data: %s", v.Detail)
	}
	// Flat sweeps must fail it.
	flat := map[int]float64{1: 1000, 8: 1010}
	if Lesson1(flat, flat).Holds {
		t.Fatal("lesson 1 held on flat data")
	}
	if Lesson1(nil, nil).Holds {
		t.Fatal("lesson 1 held on empty data")
	}
}

func TestLesson2Verdict(t *testing.T) {
	if !Lesson2(map[int]float64{1: 880, 8: 1460}).Holds {
		t.Fatal("lesson 2 should hold")
	}
	if Lesson2(map[int]float64{4: 1450, 8: 1460}).Holds {
		t.Fatal("lesson 2 held when the sweep was already at plateau")
	}
}

func TestLesson3Verdict(t *testing.T) {
	if !Lesson3(1.0, 1.6).Holds {
		t.Fatal("lesson 3 should hold when ppn is flat but nodes help")
	}
	if Lesson3(1.6, 1.6).Holds {
		t.Fatal("lesson 3 held when ppn doubled bandwidth")
	}
}

func TestLesson4Verdict(t *testing.T) {
	mk := func(vals ...float64) []float64 { return vals }
	byAlloc := map[string][]float64{
		"(0,1)": mk(1100, 1090, 1110),
		"(0,2)": mk(1105, 1095),
		"(1,3)": mk(1460, 1470),
		"(1,2)": mk(1650, 1640),
		"(2,4)": mk(1655, 1660),
		"(1,1)": mk(2200, 2190),
		"(4,4)": mk(2210, 2195),
	}
	allocs := map[string]Allocation{
		"(0,1)": NewAllocation([]int{0, 1}),
		"(0,2)": NewAllocation([]int{0, 2}),
		"(1,3)": NewAllocation([]int{1, 3}),
		"(1,2)": NewAllocation([]int{1, 2}),
		"(2,4)": NewAllocation([]int{2, 4}),
		"(1,1)": NewAllocation([]int{1, 1}),
		"(4,4)": NewAllocation([]int{4, 4}),
	}
	if v := Lesson4(byAlloc, allocs); !v.Holds {
		t.Fatalf("lesson 4 should hold: %s", v.Detail)
	}
	// Break the ordering: make (1,1) slow.
	byAlloc["(1,1)"] = mk(900, 910)
	if Lesson4(byAlloc, allocs).Holds {
		t.Fatal("lesson 4 held with broken ordering")
	}
	if Lesson4(map[string][]float64{"(1,1)": mk(1)}, allocs).Holds {
		t.Fatal("lesson 4 held with too few classes")
	}
}

func TestLesson5Verdict(t *testing.T) {
	src := rng.New(5)
	bimodal := make([]float64, 0, 100)
	for i := 0; i < 50; i++ {
		bimodal = append(bimodal, src.Normal(1100, 20))
	}
	for i := 0; i < 50; i++ {
		bimodal = append(bimodal, src.Normal(2200, 20))
	}
	uni := make([]float64, 100)
	for i := range uni {
		uni[i] = src.Normal(1460, 30)
	}
	v := Lesson5(map[int][]float64{2: bimodal, 4: uni})
	if !v.Holds {
		t.Fatalf("lesson 5 should hold: %s", v.Detail)
	}
	if Lesson5(map[int][]float64{4: uni}).Holds {
		t.Fatal("lesson 5 held without a bimodal count")
	}
}

func TestLesson6Verdict(t *testing.T) {
	means := map[int]float64{1: 1764, 2: 3000, 4: 4500, 8: 8000}
	if v := Lesson6(means, 6788, 6048); !v.Holds {
		t.Fatalf("lesson 6 should hold: %v", v.Detail)
	}
	if Lesson6(map[int]float64{1: 1764, 4: 1700, 8: 1750}, 6788, 6048).Holds {
		t.Fatal("lesson 6 held on flat counts")
	}
	if Lesson6(means, 6048, 6788).Holds {
		t.Fatal("lesson 6 held with unbalanced beating balanced")
	}
}

func TestLesson7Verdict(t *testing.T) {
	src := rng.New(6)
	shareAll := make([]float64, 60)
	shareNone := make([]float64, 60)
	for i := range shareAll {
		shareAll[i] = src.Normal(3000, 200)
		shareNone[i] = src.Normal(3000, 200)
	}
	v := Lesson7(shareAll, shareNone)
	if !v.Holds {
		t.Fatalf("lesson 7 should hold for identical populations: %s", v.Detail)
	}
	if v.Metrics["p"] <= 0.05 {
		t.Fatalf("p = %v", v.Metrics["p"])
	}
	for i := range shareAll {
		shareAll[i] = src.Normal(2000, 100)
	}
	if Lesson7(shareAll, shareNone).Holds {
		t.Fatal("lesson 7 held with clearly different populations")
	}
	if Lesson7(nil, nil).Holds {
		t.Fatal("lesson 7 held on empty data")
	}
}

// Sanity link between Welch usage here and the stats package contract.
func TestLessonStatsIntegration(t *testing.T) {
	a := []float64{1, 2, 3}
	if _, err := stats.WelchT(a, a); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(stats.Mean(a)) {
		t.Fatal("mean NaN")
	}
}

func TestSensitivityBeta(t *testing.T) {
	m := modelFor(cluster.Scenario2Omnipath)
	pts := SensitivityBeta(m, []float64{0.4, 0.596, 0.8, 1.0}, 32, 8)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Higher beta = less coupling = steeper count scaling (monotone),
	// until the client ramp caps the top end.
	for i := 1; i < len(pts); i++ {
		if pts[i].Metric < pts[i-1].Metric-1e-9 {
			t.Fatalf("ratio not nondecreasing in beta: %+v", pts)
		}
	}
	// The calibrated beta lands near the paper's 8064/1764 = 4.57.
	if pts[1].Metric < 3.8 || pts[1].Metric > 4.8 {
		t.Fatalf("calibrated ratio = %v, want ~4.4", pts[1].Metric)
	}
}

func TestSensitivityClientGamma(t *testing.T) {
	m := modelFor(cluster.Scenario2Omnipath)
	pts := SensitivityClientGamma(m, []float64{0.3, 0.45, 0.7}, 8, 64)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// A steeper ramp (higher gamma) reaches the ceiling with fewer nodes.
	if !(pts[0].Metric >= pts[1].Metric && pts[1].Metric >= pts[2].Metric) {
		t.Fatalf("plateau position not decreasing in gamma: %+v", pts)
	}
	// The calibrated gamma keeps the count-8 plateau in the paper's
	// 16-64 node range.
	if pts[1].Metric < 16 || pts[1].Metric > 64 {
		t.Fatalf("calibrated plateau = %v nodes, want 16-64", pts[1].Metric)
	}
}
