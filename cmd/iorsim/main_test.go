package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"1", 1, true},
		{"512k", 512 * 1024, true},
		{"1m", 1 << 20, true},
		{"32g", 32 << 30, true},
		{"2G", 2 << 30, true}, // case-insensitive
		{" 4m ", 4 << 20, true},
		{"", 0, false},
		{"-1m", 0, false},
		{"0", 0, false},
		{"x", 0, false},
		{"1t", 0, false}, // unsupported suffix
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if (err == nil) != c.ok {
			t.Errorf("parseSize(%q): err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("parseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run("MPIIO", "1g", "1m", 1, false, true, false, 1, "/x", 1, 2, 2, 2, 1, 1, obsConfig{}, heartbeatConfig{}, hierConfig{}); err == nil {
		t.Fatal("non-POSIX api accepted")
	}
	if err := run("POSIX", "1g", "1m", 1, false, false, false, 1, "/x", 1, 2, 2, 2, 1, 1, obsConfig{}, heartbeatConfig{}, hierConfig{}); err == nil {
		t.Fatal("-w=false accepted")
	}
	if err := run("POSIX", "bogus", "1m", 1, false, true, false, 1, "/x", 1, 2, 2, 2, 1, 1, obsConfig{}, heartbeatConfig{}, hierConfig{}); err == nil {
		t.Fatal("bad block size accepted")
	}
	if err := run("POSIX", "1g", "1m", 1, false, true, false, 1, "/x", 3, 2, 2, 2, 1, 1, obsConfig{}, heartbeatConfig{}, hierConfig{}); err == nil {
		t.Fatal("scenario 3 accepted")
	}
	if err := run("POSIX", "1g", "1m", 1, false, true, false, 1, "/x", 1, 2, 2, 2, 1, 1, obsConfig{}, heartbeatConfig{Timeout: 1}, hierConfig{}); err == nil {
		t.Fatal("heartbeat timeout without interval accepted")
	}
	if err := run("POSIX", "1g", "1m", 1, false, true, false, 1, "/x", 1, 2, 2, 2, 1, 1, obsConfig{}, heartbeatConfig{Interval: -0.5}, hierConfig{}); err == nil {
		t.Fatal("negative heartbeat interval accepted")
	}
	if err := run("POSIX", "1g", "1m", 1, false, true, false, 1, "/x", 1, 2, 2, 2, 1, 1, obsConfig{}, heartbeatConfig{}, hierConfig{Workers: -1}); err == nil {
		t.Fatal("negative -hier accepted")
	}
	if err := run("POSIX", "1g", "1m", 1, false, true, false, 1, "/x", 1, 2, 2, 2, 1, 1, obsConfig{}, heartbeatConfig{}, hierConfig{MaxRelErr: 0.01}); err == nil {
		t.Fatal("-hier-err without -hier accepted")
	}
}

func TestRunEndToEndWithHeartbeats(t *testing.T) {
	// Healthy runs must work identically with the heartbeat state machine on.
	hb := heartbeatConfig{Interval: 0.5, Timeout: 1.0, Offline: 2.5, RPCTimeout: 0.25}
	if err := run("POSIX", "64m", "1m", 1, false, true, true, 2, "/t", 1, 2, 2, 4, 7, 1, obsConfig{}, hb, hierConfig{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEndToEnd(t *testing.T) {
	// A tiny write+read run through the real CLI path, serial and pooled.
	if err := run("POSIX", "64m", "1m", 1, false, true, true, 2, "/t", 1, 2, 2, 4, 7, 1, obsConfig{}, heartbeatConfig{}, hierConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := run("POSIX", "64m", "1m", 1, false, true, true, 4, "/t", 1, 2, 2, 4, 7, 4, obsConfig{}, heartbeatConfig{}, hierConfig{}); err != nil {
		t.Fatal(err)
	}
	// Hierarchical exact mode on PlaFRIM declines the partition (the ramp
	// is the only separator) and must run flat-identically.
	if err := run("POSIX", "64m", "1m", 1, false, true, true, 2, "/t", 1, 2, 2, 4, 7, 1, obsConfig{}, heartbeatConfig{}, hierConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
}
