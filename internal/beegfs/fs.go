// Package beegfs is a behavioural model of the BeeGFS parallel file
// system: management, metadata and storage services, striping, target
// selection heuristics and the client module, wired onto the flow-level
// network of package simnet and the device models of package storagesim.
//
// The model captures everything the paper's evaluation depends on —
// per-directory stripe configuration, the rotating round-robin target
// chooser that shapes Figure 6a, the client-side parallelism limits behind
// lessons 1–3 — while abstracting byte-level wire protocols into fluid
// flows.
package beegfs

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/rng"
	"repro/internal/simkernel"
	"repro/internal/simnet"
	"repro/internal/storagesim"
)

// Config assembles a BeeGFS deployment.
type Config struct {
	// Storage is the device model.
	Storage storagesim.Config
	// Hosts and TargetsPerHost shape the storage side (PlaFRIM: 2 and 4).
	Hosts          int
	TargetsPerHost int
	// ServerNICCapacity is each storage host's network link capacity in
	// MiB/s (after protocol efficiency). Zero means the network is not a
	// bottleneck (no NIC resource is created) — scenario 2's Omnipath is
	// modelled with a high but finite value.
	ServerNICCapacity float64
	// RackHosts groups storage hosts into racks of this many consecutive
	// hosts (registration order) and gives each rack an uplink resource of
	// RackUplinkCapacity MiB/s. Traffic between a client and a storage host
	// in a *different* rack crosses both racks' uplinks; rack-local traffic
	// crosses neither — the fat-tree over-subscription that makes
	// rack-local target allocation matter at datacenter scale. Zero (the
	// default) disables rack modelling entirely: no resources are created
	// and the I/O path pays no overhead. Both fields must be set together.
	RackHosts          int
	RackUplinkCapacity float64
	// CoreCapacity, when positive, adds a single core-switch resource of
	// this many MiB/s that every cross-rack transfer crosses in addition
	// to the rack uplinks. An over-subscribed core couples all racks into
	// one connected flow component — the single-component regime the
	// hierarchical solver (simnet.SetHierarchical) decomposes along the
	// uplink/core separator set. Requires RackHosts; zero (the default)
	// creates no core resource and leaves the I/O path untouched.
	CoreCapacity float64
	// DefaultPattern is the root directory's stripe configuration.
	DefaultPattern StripePattern
	// Chooser is the system-wide target selection heuristic.
	Chooser TargetChooser
	// CreateLatency and OpenLatency are metadata costs in seconds.
	CreateLatency float64
	OpenLatency   float64
	// MDSOpRate is the metadata server's sustained throughput in
	// operations per second (0 = unlimited); see MetaService.ReserveOps.
	MDSOpRate float64
	// TransferLatency is the per-transfer request overhead in seconds,
	// paid serially by each process (drives Figure 2's small-size
	// penalty together with CreateLatency).
	TransferLatency float64
	// PpnSat is the number of processes per node beyond which additional
	// processes add no storage concurrency (the client module serializes;
	// lesson 3). Zero means no limit.
	PpnSat int
	// IntraNodePenalty shrinks each process's concurrency contribution by
	// this fraction per doubling of ppn beyond PpnSat (the "slight
	// degradation" of Figure 5b). Zero disables it.
	IntraNodePenalty float64
	// ClientA and ClientGamma bound the deployment's aggregate
	// client-side throughput to ClientA * N^ClientGamma MiB/s, where N is
	// the number of compute nodes with in-flight writes — the
	// client/TCP-stack and server-connection scaling ramp behind Figures
	// 4a/4b and the count-ordered plateaus of Figure 11. The bound is a
	// single shared resource: concurrent applications split it, which is
	// why their aggregate matches an equivalent single application
	// (Figure 12). ClientA = 0 disables the bound.
	ClientA     float64
	ClientGamma float64
	// RetryTimeout is the virtual-time delay (seconds) before an I/O op
	// aborted by a resource failure is re-issued. Zero disables retries:
	// an aborted or non-issuable op fails immediately.
	RetryTimeout float64
	// RetryBackoffBase seeds the capped exponential backoff added on top
	// of RetryTimeout from the second retry on: retry k waits
	// RetryTimeout + min(RetryBackoffBase·2^(k-2), 60·RetryBackoffBase).
	// Zero falls back to RetryTimeout.
	RetryBackoffBase float64
	// RetryMax bounds the number of re-issues per op; once exhausted the
	// op fails with an *IOFailedError delivered to WriteOp.OnError.
	RetryMax int
	// HeartbeatInterval, when positive, replaces omniscient failure
	// detection with the heartbeat-driven target state machine: storage
	// servers heartbeat every HeartbeatInterval seconds and the mgmtd
	// publishes per-target Reachability from what it hears, so clients act
	// on a *stale* cluster map between a fault firing and its detection.
	// Zero (the default) keeps the legacy instant-detection model.
	HeartbeatInterval float64
	// HeartbeatTimeout is the silence after which a target is demoted to
	// ProbablyOffline (shed for new creates). Zero defaults to
	// 2·HeartbeatInterval.
	HeartbeatTimeout float64
	// OfflineTimeout is the silence after which a target is published
	// Offline (clients stop selecting it; mirror failover applies). Zero
	// defaults to 5·HeartbeatInterval. Must be ≥ HeartbeatTimeout.
	OfflineTimeout float64
	// RPCTimeout is the extra virtual-time penalty a client pays when it
	// issues I/O against a target its stale view says is fine but that is
	// actually dead — the time a real client burns waiting for the RPC to
	// time out before scheduling the retry. Only used with heartbeats
	// enabled.
	RPCTimeout float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Storage.Validate(); err != nil {
		return err
	}
	if c.Hosts <= 0 || c.TargetsPerHost <= 0 {
		return fmt.Errorf("beegfs: need positive Hosts and TargetsPerHost")
	}
	if c.ServerNICCapacity < 0 {
		return fmt.Errorf("beegfs: negative ServerNICCapacity")
	}
	if c.RackHosts < 0 || c.RackUplinkCapacity < 0 {
		return fmt.Errorf("beegfs: negative rack parameters")
	}
	if (c.RackHosts > 0) != (c.RackUplinkCapacity > 0) {
		return fmt.Errorf("beegfs: RackHosts and RackUplinkCapacity must be set together (got %d, %v)",
			c.RackHosts, c.RackUplinkCapacity)
	}
	// NaN and +Inf sail through the sign checks above; a NaN capacity
	// would silently produce rate-NaN flows that never complete.
	if badCap(c.RackUplinkCapacity) || badCap(c.ServerNICCapacity) || badCap(c.CoreCapacity) {
		return fmt.Errorf("beegfs: non-finite capacity (ServerNIC %v, RackUplink %v, Core %v)",
			c.ServerNICCapacity, c.RackUplinkCapacity, c.CoreCapacity)
	}
	if c.CoreCapacity < 0 {
		return fmt.Errorf("beegfs: negative CoreCapacity")
	}
	if c.CoreCapacity > 0 && c.RackHosts == 0 {
		return fmt.Errorf("beegfs: CoreCapacity requires rack modelling (RackHosts)")
	}
	if err := c.DefaultPattern.Validate(); err != nil {
		return err
	}
	if c.Chooser == nil {
		return fmt.Errorf("beegfs: nil Chooser")
	}
	if c.CreateLatency < 0 || c.OpenLatency < 0 || c.TransferLatency < 0 {
		return fmt.Errorf("beegfs: negative latency")
	}
	if c.MDSOpRate < 0 {
		return fmt.Errorf("beegfs: negative MDSOpRate")
	}
	if c.PpnSat < 0 || c.IntraNodePenalty < 0 || c.IntraNodePenalty >= 1 {
		return fmt.Errorf("beegfs: bad intra-node contention parameters")
	}
	if c.ClientA < 0 || c.ClientGamma < 0 || c.ClientGamma > 1 {
		return fmt.Errorf("beegfs: bad client ramp parameters")
	}
	if c.RetryTimeout < 0 || c.RetryBackoffBase < 0 || c.RetryMax < 0 {
		return fmt.Errorf("beegfs: negative retry parameters")
	}
	if c.HeartbeatInterval < 0 || c.HeartbeatTimeout < 0 || c.OfflineTimeout < 0 || c.RPCTimeout < 0 {
		return fmt.Errorf("beegfs: negative heartbeat parameters")
	}
	if c.HeartbeatTimeout > 0 && c.OfflineTimeout > 0 && c.OfflineTimeout < c.HeartbeatTimeout {
		return fmt.Errorf("beegfs: OfflineTimeout %v below HeartbeatTimeout %v", c.OfflineTimeout, c.HeartbeatTimeout)
	}
	if c.HeartbeatInterval == 0 && (c.HeartbeatTimeout > 0 || c.OfflineTimeout > 0) {
		return fmt.Errorf("beegfs: heartbeat timeouts set but HeartbeatInterval is zero")
	}
	return nil
}

// FileSystem is a running BeeGFS deployment bound to a simulation.
type FileSystem struct {
	cfg     Config
	sim     *simkernel.Simulation
	net     *simnet.Network
	storage *storagesim.System
	mgmtd   *Mgmtd
	meta    *MetaService
	// serverNIC maps each storage host to its network link resource
	// (nil when ServerNICCapacity is 0).
	serverNIC map[*storagesim.Host]*simnet.Resource
	// clientRamp is the shared client-stack resource (nil when ClientA
	// is 0); its capacity follows ClientA * activeClients^ClientGamma.
	clientRamp    *simnet.Resource
	activeClients int
	// rackOf maps each storage host to its rack index and rackUplink holds
	// one uplink resource per rack; both are nil/empty when rack modelling
	// is off (Config.RackHosts == 0).
	rackOf     map[*storagesim.Host]int
	rackUplink []*simnet.Resource
	// core is the shared core-switch resource crossed by all cross-rack
	// traffic, nil when Config.CoreCapacity is 0.
	core *simnet.Resource
	// rackShare is issue's per-call scratch (rack → fraction of the op's
	// rate crossing that rack's uplink), indexed by rack so accumulation
	// follows the deterministic target slice order, never map order.
	rackShare []float64
	// mirrorCursor rotates buddy-group selection (CreateMirrored).
	mirrorCursor int
	// nicDown marks storage hosts whose network link is down (fault
	// injection); their NIC resource is pinned to zero capacity and their
	// targets are unavailable to new I/O until the link recovers.
	nicDown map[*storagesim.Host]bool
	// nicSlow holds per-host fail-slow NIC factors in (0,1) (SlowFault);
	// absent = full speed. The factor multiplies the NIC's jittered
	// capacity and survives ReJitter.
	nicSlow map[*storagesim.Host]float64
	// hb is the heartbeat monitor, nil when HeartbeatInterval is 0 (the
	// legacy omniscient model).
	hb *heartbeatMonitor
	// dirty indexes mirrored files with degraded writes awaiting resync.
	dirty map[string]*File
	// hostShare is issue's per-call scratch (host → fraction of the op's
	// rate landing on that host), reused to keep the I/O hot path off the
	// allocator.
	hostShare map[*storagesim.Host]float64
	// usageList is issue's reusable flow-usage list. simnet.Start
	// compiles UsageList into the flow's dense vector synchronously and
	// never reads it again, so one scratch slice serves every op; issue
	// detaches it from the flow right after Start.
	usageList []simnet.ResourceShare
	// resynced accumulates the bytes re-copied by completed resync flows.
	resynced int64
	// runSeq numbers benchmark runs (ior path suffixes) per deployment,
	// so concurrent deployments never share a counter.
	runSeq int
	// stats, when non-nil, receives activity counts (SetStats);
	// opObserver, when non-nil, is fired at every op's terminal point
	// (SetOpObserver).
	stats      *Stats
	opObserver func(ev OpEvent)
}

// NextRunSeq returns a fresh 1-based run number for this deployment. The
// ior runner uses it to give every benchmark run a unique file path.
func (fs *FileSystem) NextRunSeq() int {
	fs.runSeq++
	return fs.runSeq
}

// New builds a deployment. The target registration order is PlaFRIM's when
// the shape is 2 hosts × 4 targets, and host-interleaved otherwise.
func New(sim *simkernel.Simulation, net *simnet.Network, cfg Config) (*FileSystem, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sys, err := storagesim.NewSystem(net, cfg.Storage, cfg.Hosts, cfg.TargetsPerHost)
	if err != nil {
		return nil, err
	}
	var order []*storagesim.Target
	if cfg.Hosts == 2 && cfg.TargetsPerHost == 4 {
		order, err = PlaFRIMOrder(sys)
		if err != nil {
			return nil, err
		}
	} else {
		order = InterleavedOrder(sys)
	}
	mgmtd, err := NewMgmtd(order)
	if err != nil {
		return nil, err
	}
	meta, err := NewMetaService(cfg.DefaultPattern)
	if err != nil {
		return nil, err
	}
	meta.CreateLatency = cfg.CreateLatency
	meta.OpenLatency = cfg.OpenLatency
	meta.OpRate = cfg.MDSOpRate
	fs := &FileSystem{
		cfg:       cfg,
		sim:       sim,
		net:       net,
		storage:   sys,
		mgmtd:     mgmtd,
		meta:      meta,
		serverNIC: make(map[*storagesim.Host]*simnet.Resource),
		nicDown:   make(map[*storagesim.Host]bool),
		nicSlow:   make(map[*storagesim.Host]float64),
		dirty:     make(map[string]*File),
	}
	// A target coming back online may unblock pending mirror resyncs.
	mgmtd.Subscribe(func(t *storagesim.Target, online bool) {
		if online {
			fs.startResyncs()
		}
	})
	mgmtd.SubscribeReach(func(t *storagesim.Target, from, to Reachability) {
		if fs.stats != nil {
			fs.stats.ReachTransitions++
		}
	})
	if cfg.HeartbeatInterval > 0 {
		fs.hb = newHeartbeatMonitor(fs)
	}
	if cfg.ServerNICCapacity > 0 {
		for _, h := range sys.Hosts() {
			fs.serverNIC[h] = net.AddResource(h.Name+"/nic", cfg.ServerNICCapacity)
		}
	}
	if cfg.ClientA > 0 {
		fs.clientRamp = net.AddResource("clientstack", cfg.ClientA)
	}
	if cfg.RackHosts > 0 {
		fs.rackOf = make(map[*storagesim.Host]int)
		hosts := sys.Hosts()
		racks := (len(hosts) + cfg.RackHosts - 1) / cfg.RackHosts
		fs.rackUplink = make([]*simnet.Resource, racks)
		for r := 0; r < racks; r++ {
			fs.rackUplink[r] = net.AddResource(fmt.Sprintf("rack%02d/uplink", r), cfg.RackUplinkCapacity)
		}
		for i, h := range hosts {
			fs.rackOf[h] = i / cfg.RackHosts
		}
		fs.rackShare = make([]float64, racks)
		if cfg.CoreCapacity > 0 {
			fs.core = net.AddResource("core", cfg.CoreCapacity)
		}
	}
	return fs, nil
}

// badCap reports a capacity value the sign checks cannot catch.
func badCap(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// Racks returns the number of storage racks (0 when rack modelling is off).
func (fs *FileSystem) Racks() int { return len(fs.rackUplink) }

// RackUplink returns rack r's uplink resource.
func (fs *FileSystem) RackUplink(r int) *simnet.Resource { return fs.rackUplink[r] }

// Core returns the core-switch resource, nil when CoreCapacity is 0.
func (fs *FileSystem) Core() *simnet.Resource { return fs.core }

// SeparatorResources returns the deployment's fabric aggregates — the
// rack uplinks, the core switch and the client-stack ramp, whichever
// exist — in a deterministic order. These are the resources that couple
// otherwise rack-local flow components; declaring them to
// simnet.SetSeparators lets the hierarchical solver decompose along them.
// Empty when the deployment has no shared aggregates.
func (fs *FileSystem) SeparatorResources() []*simnet.Resource {
	var seps []*simnet.Resource
	seps = append(seps, fs.rackUplink...)
	if fs.core != nil {
		seps = append(seps, fs.core)
	}
	if fs.clientRamp != nil {
		seps = append(seps, fs.clientRamp)
	}
	return seps
}

// RackOf returns the rack index of a storage host (-1 when rack modelling
// is off).
func (fs *FileSystem) RackOf(h *storagesim.Host) int {
	if fs.rackOf == nil {
		return -1
	}
	return fs.rackOf[h]
}

// noteClientOps adjusts a client's in-flight write count and updates the
// shared client-stack capacity when the number of active nodes changes.
func (fs *FileSystem) noteClientOps(c *Client, delta int) {
	if fs.clientRamp == nil {
		return
	}
	before := c.activeOps
	after := before + delta
	if after < 0 {
		panic("beegfs: client op accounting went negative")
	}
	c.activeOps = after
	switch {
	case before == 0 && after > 0:
		fs.activeClients++
		if fs.stats != nil {
			if n := uint64(fs.activeClients); n > fs.stats.ActiveClientsHighWater {
				fs.stats.ActiveClientsHighWater = n
			}
		}
	case before > 0 && after == 0:
		fs.activeClients--
	default:
		return
	}
	n := fs.activeClients
	if n < 1 {
		n = 1 // idle default so a flow arriving this instant sees ClientA
	}
	fs.net.SetCapacity(fs.clientRamp, fs.cfg.ClientA*math.Pow(float64(n), fs.cfg.ClientGamma))
}

// ClientRamp returns the shared client-stack resource (nil when the ramp
// is disabled).
func (fs *FileSystem) ClientRamp() *simnet.Resource { return fs.clientRamp }

// ActiveClients returns the number of compute nodes with in-flight
// writes.
func (fs *FileSystem) ActiveClients() int { return fs.activeClients }

// Config returns the deployment's configuration.
func (fs *FileSystem) Config() Config { return fs.cfg }

// Storage returns the storage subsystem.
func (fs *FileSystem) Storage() *storagesim.System { return fs.storage }

// Mgmtd returns the management service.
func (fs *FileSystem) Mgmtd() *Mgmtd { return fs.mgmtd }

// Meta returns the metadata service.
func (fs *FileSystem) Meta() *MetaService { return fs.meta }

// Network returns the underlying flow network.
func (fs *FileSystem) Network() *simnet.Network { return fs.net }

// Sim returns the simulation clock.
func (fs *FileSystem) Sim() *simkernel.Simulation { return fs.sim }

// ServerNIC returns host's network link resource, or nil when the network
// side is unconstrained.
func (fs *FileSystem) ServerNIC(h *storagesim.Host) *simnet.Resource { return fs.serverNIC[h] }

// Client is a compute node's mount of the file system: it owns the node's
// NIC resource.
type Client struct {
	Name string
	fs   *FileSystem
	nic  *simnet.Resource
	// rack is the compute node's rack index, or -1 when unplaced (or rack
	// modelling is off). I/O from a placed client to a storage host in a
	// different rack crosses both racks' uplinks.
	rack int
	// activeOps counts in-flight I/O ops for the client-stack ramp
	// accounting (noteClientOps).
	activeOps int
}

// NewClient mounts the file system on a compute node with the given NIC
// capacity in MiB/s (0 = unconstrained). The node is unplaced with
// respect to racks; use NewClientInRack to pin it.
func (fs *FileSystem) NewClient(name string, nicCapacity float64) *Client {
	c := &Client{Name: name, fs: fs, rack: -1}
	if nicCapacity > 0 {
		c.nic = fs.net.AddResource(name+"/nic", nicCapacity)
	}
	return c
}

// NewClientInRack mounts the file system on a compute node placed in the
// given rack. Rack modelling must be on and the rack must exist.
func (fs *FileSystem) NewClientInRack(name string, nicCapacity float64, rack int) *Client {
	if rack < 0 || rack >= len(fs.rackUplink) {
		panic(fmt.Sprintf("beegfs: client %q placed in rack %d of %d", name, rack, len(fs.rackUplink)))
	}
	c := fs.NewClient(name, nicCapacity)
	c.rack = rack
	return c
}

// NIC returns the client's network link resource (nil if unconstrained).
func (c *Client) NIC() *simnet.Resource { return c.nic }

// Rack returns the client's rack index, or -1 when unplaced.
func (c *Client) Rack() int { return c.rack }

// Create creates a file at path. The stripe count comes from the pattern
// configured for the containing directory (unless overridden via
// CreateWithPattern); targets are chosen by the system chooser. src
// supplies randomness for stochastic choosers.
func (fs *FileSystem) Create(path string, src *rng.Source) (*File, error) {
	return fs.CreateWithPattern(path, fs.meta.PatternFor(path), src)
}

// CreateWithPattern creates a file with an explicit stripe pattern. When
// fewer targets are online than the pattern requests, the stripe count
// degrades to the online count (BeeGFS behaviour: desired numtargets is a
// maximum, not a requirement); with no online targets at all the create
// fails with a descriptive error.
func (fs *FileSystem) CreateWithPattern(path string, p StripePattern, src *rng.Source) (*File, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	online := fs.mgmtd.Online()
	if fs.hb != nil {
		// With heartbeats the create path consults the hedge: shed
		// ProbablyOffline (and consistency-Bad) targets before the Offline
		// verdict is confirmed. Falls back to Online() when nothing is
		// fully trusted.
		online = fs.mgmtd.CreationCandidates()
	}
	if len(online) == 0 {
		return nil, fmt.Errorf("beegfs: cannot create %q: all %d registered storage targets are offline: %w",
			path, len(fs.mgmtd.All()), ErrAllTargetsOffline)
	}
	if p.Count > len(online) {
		p.Count = len(online)
	}
	targets, err := fs.cfg.Chooser.Choose(p.Count, online, src)
	if err != nil {
		return nil, err
	}
	f := &File{Path: path, Pattern: p, Targets: targets}
	if err := fs.meta.create(path, f); err != nil {
		return nil, err
	}
	return f, nil
}

// CreateWithTargets creates a file striped over an explicit target list,
// bypassing the system chooser — the analog of pinning targets with
// beegfs-ctl --setpattern --storagetargets. The rack-aware scale workload
// uses it for rack-local placement, which the FS-global Chooser cannot
// express. The pattern's Count is forced to len(targets); every target
// must be registered and currently selectable.
func (fs *FileSystem) CreateWithTargets(path string, p StripePattern, targets []*storagesim.Target) (*File, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("beegfs: CreateWithTargets %q: empty target list", path)
	}
	p.Count = len(targets)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for i, t := range targets {
		if t == nil {
			return nil, fmt.Errorf("beegfs: CreateWithTargets %q: nil target at stripe %d", path, i)
		}
		if !fs.replicaAvailable(t) {
			return nil, fmt.Errorf("beegfs: CreateWithTargets %q: target %d is not selectable", path, t.ID)
		}
	}
	f := &File{Path: path, Pattern: p, Targets: append([]*storagesim.Target(nil), targets...)}
	if err := fs.meta.create(path, f); err != nil {
		return nil, err
	}
	return f, nil
}

// Region is a contiguous byte range of a file.
type Region struct {
	Offset int64
	Length int64
}

// WriteOp describes one or more processes on one client node writing
// contiguous regions of a file — the unit of work IOR's N-1 contiguous
// mode generates per rank. Symmetric ranks on the same node may be
// coalesced into a single op (Regions + Procs) for simulation efficiency;
// the fluid-flow behaviour is identical because max-min fair rates of
// identical flows are equal.
type WriteOp struct {
	Client *Client
	File   *File
	Offset int64
	Length int64
	// Regions, when non-empty, replaces Offset/Length with multiple
	// contiguous regions (one per coalesced rank).
	Regions []Region
	// Procs is the number of ranks this op represents (default 1). It
	// scales the concurrency depth and divides the serial per-transfer
	// overhead, which each rank pays in parallel.
	Procs int
	// App identifies the application for target-sharing accounting
	// (Figures 12 and 13).
	App string
	// TransferSize is the request size (IOR "-t"); it sets the in-flight
	// chunk depth per target. Must be positive.
	TransferSize int64
	// RateCap bounds the op's rate in MiB/s (0 = none); for coalesced ops
	// it is the per-process cap times Procs. The workload layer derives it
	// from the client ramp model.
	RateCap float64
	// DepthScale scales the op's concurrency contribution (the workload
	// layer uses it for intra-node contention). Zero means 1.
	DepthScale float64
	// RampWeight scales the op's usage of the shared client-stack
	// resource (>1 for over-subscribed nodes — see Config.RampWeight).
	// Zero means 1.
	RampWeight float64
	// OnComplete fires when the last byte has been written AND the
	// process's serial per-transfer overhead has elapsed.
	OnComplete func(at simkernel.Time)
	// OnError fires when the op fails terminally: its retry budget is
	// exhausted, or a fault aborted it with retries disabled. Exactly one
	// of OnComplete/OnError fires per started op. Ops without a handler
	// fail silently (the benchmark layer always installs one).
	OnError func(err error)

	// attempts counts fault-triggered re-issues of this op.
	attempts int
}

func (op *WriteOp) procs() int {
	if op.Procs <= 0 {
		return 1
	}
	return op.Procs
}

// perTargetDepth returns the request-queue depth the op's processes
// contribute to each target of the file: transfers of TransferSize bytes
// split into chunks spread over Count targets, per process.
func (op *WriteOp) perTargetDepth() float64 {
	p := op.File.Pattern
	inflight := float64(op.TransferSize) / float64(p.ChunkSize)
	if inflight < 1 {
		inflight = 1
	}
	scale := op.DepthScale
	if scale == 0 {
		scale = 1
	}
	return float64(op.procs()) * scale * inflight / float64(p.Count)
}

// StartWrite begins the write. It acquires the file's targets, builds the
// flow's resource usage from the exact striping distribution of the
// region, and schedules OnComplete. It returns the underlying flow.
func (fs *FileSystem) StartWrite(op *WriteOp) (*simnet.Flow, error) {
	return fs.startIO(op, false)
}

// StartRead begins reading a region of the file. The service model is
// symmetric with writes — the paper studies writes only and expects reads
// to behave the same (§III-B, citing Chowdhury et al.); reads share the
// targets' device time and the (half-duplex-modelled) links with writes.
// The region must lie within the file's written size.
func (fs *FileSystem) StartRead(op *WriteOp) (*simnet.Flow, error) {
	return fs.startIO(op, true)
}

// ioPlan captures everything needed to (re-)issue an op's flow after a
// fault-induced abort. The striping distribution is fixed when the op is
// first validated, so a retry re-issues exactly the remaining volume with
// the same per-target proportions.
type ioPlan struct {
	op       *WriteOp
	read     bool
	app      string
	depth    float64
	dist     []int64
	totalLen int64
	maxEnd   int64
	overhead float64
	baseName string
	// startAt is when the op was first issued; carried here (not on the
	// op) because a WriteOp may be reused across sequential ops.
	startAt simkernel.Time
}

func (fs *FileSystem) startIO(op *WriteOp, read bool) (*simnet.Flow, error) {
	if op.Client == nil || op.File == nil {
		return nil, fmt.Errorf("beegfs: write op needs a client and a file")
	}
	if op.TransferSize <= 0 {
		return nil, fmt.Errorf("beegfs: write op needs a positive TransferSize")
	}
	regions := op.Regions
	var one [1]Region
	if len(regions) == 0 {
		one[0] = Region{Offset: op.Offset, Length: op.Length}
		regions = one[:]
	}
	if read {
		for _, reg := range regions {
			if reg.Offset+reg.Length > op.File.Size {
				return nil, fmt.Errorf("beegfs: read of [%d,%d) beyond file size %d",
					reg.Offset, reg.Offset+reg.Length, op.File.Size)
			}
		}
	} else if err := fs.precheckCapacity(op.File, regions); err != nil {
		return nil, err
	}
	plan := fs.getPlan(op.File.Pattern.Count)
	dist := plan.dist
	var totalLen int64
	for _, reg := range regions {
		if reg.Length < 0 || reg.Offset < 0 {
			putPlan(plan)
			return nil, fmt.Errorf("beegfs: negative write region")
		}
		if err := op.File.Pattern.AddRegionDistribution(dist, reg.Offset, reg.Length); err != nil {
			putPlan(plan)
			return nil, err
		}
		totalLen += reg.Length
	}
	app := op.App
	if app == "" {
		app = "default"
	}
	// Per-transfer request overhead is paid serially by each rank, and
	// ranks proceed in parallel, so a coalesced op divides it by Procs.
	nTransfers := (totalLen + op.TransferSize - 1) / op.TransferSize
	var maxEnd int64
	for _, reg := range regions {
		if end := reg.Offset + reg.Length; end > maxEnd {
			maxEnd = end
		}
	}
	// A WriteOp may be reused across sequential ops (ior reissues one op
	// per segment); each StartWrite/StartRead begins a fresh retry budget.
	op.attempts = 0
	plan.op = op
	plan.read = read
	plan.app = app
	plan.depth = op.perTargetDepth()
	plan.totalLen = totalLen
	plan.maxEnd = maxEnd
	plan.overhead = float64(nTransfers) * fs.cfg.TransferLatency / float64(op.procs())
	plan.baseName = fmt.Sprintf("%s/%s@%d", app, op.File.Path, regions[0].Offset)
	plan.startAt = fs.sim.Now()
	if fs.stats != nil {
		if read {
			fs.stats.ReadOps++
		} else {
			fs.stats.WriteOps++
		}
		fs.stats.OpMiB.Observe(uint64(totalLen / MiB))
		width := 0
		for _, b := range dist {
			if b != 0 {
				width++
			}
		}
		fs.stats.StripeWidth.Observe(uint64(width))
	}
	flow, err := fs.issue(plan, float64(totalLen)/float64(MiB))
	if err != nil {
		var unavail *UnavailableError
		if errors.As(err, &unavail) && fs.cfg.RetryTimeout > 0 {
			// Not viable right now: queue the first issue behind the retry
			// machinery instead of failing synchronously. The caller gets a
			// nil flow; completion still arrives via OnComplete/OnError.
			fs.retryLater(plan, float64(totalLen)/float64(MiB), fs.staleExtra(err))
			return nil, nil
		}
		putPlan(plan)
		return nil, err
	}
	return flow, nil
}

// planPool recycles ioPlans (and their stripe-distribution slices)
// across ops and FileSystems; a plan is returned at its op's terminal
// point — completion or terminal failure — and every field is rewritten
// before reuse.
var planPool sync.Pool

func (fs *FileSystem) getPlan(stripes int) *ioPlan {
	pl, _ := planPool.Get().(*ioPlan)
	if pl == nil {
		pl = &ioPlan{}
		if fs.stats != nil {
			fs.stats.PlanPoolMisses++
		}
	} else if fs.stats != nil {
		fs.stats.PlanPoolHits++
	}
	if cap(pl.dist) < stripes {
		pl.dist = make([]int64, stripes)
	} else {
		pl.dist = pl.dist[:stripes]
		clear(pl.dist)
	}
	return pl
}

func putPlan(pl *ioPlan) {
	pl.op = nil
	planPool.Put(pl)
}

// ioAttempt is one issue's in-flight state: the flow object, the replica
// sets it acquired, and the completion/abort callbacks — bound to the
// attempt once, at construction. Attempts are pooled per FileSystem so
// the per-op hot path reuses the flow (and its compiled usage vector),
// the target slices and the callback closures instead of reallocating
// them for every operation. The *simnet.Flow handed back by
// StartWrite/StartRead is therefore valid only until the op's completion
// or terminal-failure callback fires; after that the object is recycled.
type ioAttempt struct {
	fs          *FileSystem
	plan        *ioPlan
	volMiB      float64
	primaries   []*storagesim.Target
	secondaries []*storagesim.Target
	flow        simnet.Flow
	// finishFn is the pre-bound a.finish method value, so completions
	// with transfer overhead schedule it without a fresh closure.
	finishFn func()
}

// attemptPool recycles ioAttempts across every FileSystem: campaigns
// build a fresh deployment per repetition, so a per-FileSystem pool
// would never warm up. Pool contents carry no cross-op state — every
// field is rewritten (or rebuilt, like the flow's usage vector) before
// use — so reuse cannot perturb the simulation's arithmetic, and
// sync.Pool keeps the parallel-campaign path race-free.
var attemptPool sync.Pool

func (fs *FileSystem) getAttempt() *ioAttempt {
	a, _ := attemptPool.Get().(*ioAttempt)
	if a == nil {
		a = &ioAttempt{}
		a.finishFn = a.finish
		a.flow.OnComplete = a.onComplete
		a.flow.OnAbort = a.onAbort
		if fs.stats != nil {
			fs.stats.AttemptPoolMisses++
		}
	} else if fs.stats != nil {
		fs.stats.AttemptPoolHits++
	}
	a.fs = fs
	return a
}

// putAttempt recycles a. Callers must be done with every attempt field;
// the backing arrays of the replica slices are kept for reuse.
func (fs *FileSystem) putAttempt(a *ioAttempt) {
	a.fs = nil
	a.plan = nil
	a.primaries = a.primaries[:0]
	a.secondaries = a.secondaries[:0]
	attemptPool.Put(a)
}

// release undoes the attempt's acquisitions (client op count, target
// sessions).
func (a *ioAttempt) release() {
	fs, plan := a.fs, a.plan
	fs.noteClientOps(plan.op.Client, -1)
	for _, t := range a.primaries {
		if t != nil {
			t.Release(plan.app, plan.depth)
		}
	}
	for _, t := range a.secondaries {
		if t != nil {
			t.Release(plan.app, plan.depth)
		}
	}
}

// onComplete fires when the flow's last byte is transferred; the
// remaining per-transfer request overhead (paid serially by the ranks) is
// waited out before the op completes.
func (a *ioAttempt) onComplete(at simkernel.Time) {
	if a.plan.overhead > 0 {
		a.fs.sim.After(a.plan.overhead, a.finishFn)
		return
	}
	a.finish()
}

// attributeBytes credits volMiB of a write attempt's transferred volume
// to the stats' per-OST byte attribution, split by the plan's striping
// distribution; mirror copies count on their own target. Same frac
// arithmetic as noteDegradedWrite.
func (fs *FileSystem) attributeBytes(plan *ioPlan, primaries, secondaries []*storagesim.Target, volMiB float64) {
	if fs.stats == nil || plan.read || plan.totalLen == 0 || volMiB <= 0 {
		return
	}
	frac := volMiB * float64(MiB) / float64(plan.totalLen)
	if frac > 1 {
		frac = 1
	}
	for i, b := range plan.dist {
		if b == 0 {
			continue
		}
		bytes := uint64(frac * float64(b))
		if i < len(primaries) && primaries[i] != nil {
			fs.stats.BytesByOST[primaries[i].ID] += bytes
		}
		if i < len(secondaries) && secondaries[i] != nil {
			fs.stats.BytesByOST[secondaries[i].ID] += bytes
		}
	}
}

// finish completes the op: releases sessions, accounts the written bytes
// (including degraded-mirror bookkeeping), recycles the attempt and
// delivers the caller's completion callback.
func (a *ioAttempt) finish() {
	fs, plan := a.fs, a.plan
	op := plan.op
	a.release()
	if !plan.read {
		fs.noteDegradedWrite(op.File, plan, a.primaries, a.secondaries, a.volMiB)
		if op.File.Size < plan.maxEnd {
			op.File.Size = plan.maxEnd
			fs.accountStorage(op.File)
		}
	}
	fs.attributeBytes(plan, a.primaries, a.secondaries, a.volMiB)
	fs.putAttempt(a)
	if fs.opObserver != nil {
		fs.opObserver(OpEvent{
			Client: op.Client.Name, App: plan.app, Path: op.File.Path,
			Read: plan.read, Start: plan.startAt, End: fs.sim.Now(),
			MiB: float64(plan.totalLen) / float64(MiB), Attempts: op.attempts,
			EndOffset: plan.maxEnd,
		})
	}
	putPlan(plan)
	if op.OnComplete != nil {
		op.OnComplete(fs.sim.Now())
	}
}

// onAbort fires when the flow is torn down mid-transfer by fault
// injection: the unsent volume goes back through the retry machinery.
func (a *ioAttempt) onAbort(at simkernel.Time) {
	fs, plan := a.fs, a.plan
	a.release()
	rem := a.flow.Remaining()
	// The bytes this attempt did move before the abort stay written.
	fs.attributeBytes(plan, a.primaries, a.secondaries, a.volMiB-rem)
	fs.putAttempt(a)
	fs.retryLater(plan, rem, 0)
}

// issue starts (or re-starts) the flow for volMiB of the plan's volume
// against the currently available replicas. It returns an
// *UnavailableError without side effects when a stripe carrying bytes has
// no available replica.
func (fs *FileSystem) issue(plan *ioPlan, volMiB float64) (*simnet.Flow, error) {
	op := plan.op
	a := fs.getAttempt()
	var err error
	a.primaries, a.secondaries, err = fs.selectReplicas(op.File, plan.read, plan.dist, a.primaries, a.secondaries)
	if err != nil {
		fs.putAttempt(a)
		return nil, err
	}
	if fs.hb != nil {
		// The selection above came from the mgmtd's published (possibly
		// stale) map. Now the RPCs go out and meet ground truth: if any
		// selected replica of a byte-carrying stripe is actually dead, the
		// issue dies like a timed-out RPC — no flow starts, the op re-enters
		// the retry path, and the retry additionally pays RPCTimeout.
		if i, stale := fs.staleStripe(plan, a.primaries, a.secondaries); stale {
			fs.putAttempt(a)
			if fs.stats != nil {
				fs.stats.StaleRPCFailures++
			}
			return nil, &UnavailableError{Path: op.File.Path, Stripe: i, Read: plan.read, Stale: true}
		}
	}
	a.plan = plan
	a.volMiB = volMiB
	primaries, secondaries := a.primaries, a.secondaries
	// Acquire every available target of the file (BeeGFS opens sessions on
	// all stripe targets), even those receiving no bytes from this region.
	for _, t := range primaries {
		if t != nil {
			t.Acquire(plan.app, plan.depth)
		}
	}
	for _, t := range secondaries {
		if t != nil {
			t.Acquire(plan.app, plan.depth)
		}
	}
	usage := fs.usageList[:0]
	total := float64(plan.totalLen)
	if total > 0 {
		// hostShare is per-issue scratch reused across calls; values are
		// fully rewritten before they are read, and the usage list each
		// entry feeds is sorted and duplicate-merged downstream
		// (buildUses), so reuse cannot perturb the arithmetic.
		if fs.hostShare == nil {
			fs.hostShare = make(map[*storagesim.Host]float64)
		}
		hostShare := fs.hostShare
		clear(hostShare)
		// rackShare accumulates in the deterministic target slice order
		// (and is emitted by index below), never in map-iteration order:
		// float accumulation order must not depend on map layout.
		clientRack := op.Client.rack
		rackShare := fs.rackShare
		crossTotal := 0.0
		addSide := func(targets []*storagesim.Target) {
			for i, t := range targets {
				if t == nil || plan.dist[i] == 0 {
					continue
				}
				w := float64(plan.dist[i]) / total
				usage = append(usage, simnet.ResourceShare{Res: t.Resource(), W: w})
				hostShare[t.Host()] += w
				if rackShare != nil {
					if r := fs.rackOf[t.Host()]; r != clientRack {
						rackShare[r] += w
						crossTotal += w
					}
				}
			}
		}
		addSide(primaries)
		// Mirrored writes consume the same bandwidth again on the
		// secondaries (server-side forwarding; the client link carries the
		// data once).
		addSide(secondaries)
		for h, w := range hostShare {
			usage = append(usage, simnet.ResourceShare{Res: h.Controller(), W: w})
			if nic := fs.serverNIC[h]; nic != nil {
				usage = append(usage, simnet.ResourceShare{Res: nic, W: w})
			}
		}
		if rackShare != nil {
			// Cross-rack traffic exits each server rack's uplink with that
			// rack's share, and (for a placed client) enters the client's
			// rack through its own uplink with the summed share. Rack-local
			// traffic never appears here — that asymmetry is what rack-aware
			// target allocation exploits.
			for r, w := range rackShare {
				if w != 0 {
					usage = append(usage, simnet.ResourceShare{Res: fs.rackUplink[r], W: w})
					rackShare[r] = 0
				}
			}
			if clientRack >= 0 && crossTotal != 0 {
				usage = append(usage, simnet.ResourceShare{Res: fs.rackUplink[clientRack], W: crossTotal})
			}
			if fs.core != nil && crossTotal != 0 {
				// Every cross-rack byte also transits the core switch.
				usage = append(usage, simnet.ResourceShare{Res: fs.core, W: crossTotal})
			}
		}
		if op.Client.nic != nil {
			usage = append(usage, simnet.ResourceShare{Res: op.Client.nic, W: 1})
		}
		if fs.clientRamp != nil {
			w := op.RampWeight
			if w == 0 {
				w = 1
			}
			usage = append(usage, simnet.ResourceShare{Res: fs.clientRamp, W: w})
		}
	}
	fs.usageList = usage
	fs.noteClientOps(op.Client, 1)
	name := plan.baseName
	if op.attempts > 0 {
		name = fmt.Sprintf("%s#r%d", plan.baseName, op.attempts)
	}
	flow := &a.flow
	flow.Name = name
	flow.Volume = volMiB
	flow.Cap = op.RateCap
	flow.UsageList = usage
	fs.net.Start(flow)
	// Start has compiled the usage list into the flow's dense vector;
	// detach the scratch slice so the next issue can reuse it.
	flow.UsageList = nil
	return flow, nil
}

// targetAvailable reports whether new I/O may be directed at t: the
// management service considers it online, neither the target nor its host
// has failed, and the host's network link is up.
func (fs *FileSystem) targetAvailable(t *storagesim.Target) bool {
	return fs.mgmtd.IsOnline(t.ID) && !t.Failed() && !t.Host().Failed() && !fs.nicDown[t.Host()]
}

// replicaAvailable is the availability predicate the client applies when
// selecting replicas. With heartbeats disabled it is omniscient
// (targetAvailable); with heartbeats enabled the client can only consult
// the mgmtd's published — and possibly stale — reachability, so a dead
// target looks fine until the state machine demotes it.
func (fs *FileSystem) replicaAvailable(t *storagesim.Target) bool {
	if fs.hb != nil {
		return fs.mgmtd.IsOnline(t.ID)
	}
	return fs.targetAvailable(t)
}

// groundDead reports whether I/O RPCs against t would actually fail right
// now, regardless of what the mgmtd publishes. A data-only partition
// (NIC down with heartbeats spared) still kills data RPCs; a fail-slow
// target does not — it answers, just slowly.
func (fs *FileSystem) groundDead(t *storagesim.Target) bool {
	return t.Failed() || t.Host().Failed() || fs.nicDown[t.Host()]
}

// staleStripe scans an issue's selected replicas for one that ground
// truth says is dead, returning the first such stripe index. Only
// byte-carrying stripes count: session-only targets exchange no data
// RPCs in the model.
func (fs *FileSystem) staleStripe(plan *ioPlan, primaries, secondaries []*storagesim.Target) (int, bool) {
	for i, b := range plan.dist {
		if b == 0 {
			continue
		}
		if i < len(primaries) && primaries[i] != nil && fs.groundDead(primaries[i]) {
			return i, true
		}
		if i < len(secondaries) && secondaries[i] != nil && fs.groundDead(secondaries[i]) {
			return i, true
		}
	}
	return 0, false
}

// selectReplicas returns the replica targets an op may use, as slices
// aligned with the stripe index (nil = that side skipped; an empty
// secondaries slice = no mirror side). Reads apply per-stripe failover
// and return their chosen source in primaries. It errors with an
// *UnavailableError when a stripe carrying bytes has no available
// replica. pBuf and sBuf are reusable backing slices (the attempt's);
// the returned slices alias them when their capacity suffices, so the
// buffers survive both the success and error returns.
func (fs *FileSystem) selectReplicas(f *File, read bool, dist []int64, pBuf, sBuf []*storagesim.Target) ([]*storagesim.Target, []*storagesim.Target, error) {
	n := len(f.Targets)
	primaries := pBuf[:0]
	if cap(primaries) < n {
		primaries = make([]*storagesim.Target, n)
	} else {
		primaries = primaries[:n]
		clear(primaries)
	}
	secondaries := sBuf[:0]
	if !read && f.Mirrored() {
		if cap(secondaries) < n {
			secondaries = make([]*storagesim.Target, n)
		} else {
			secondaries = secondaries[:n]
			clear(secondaries)
		}
	}
	for i, t := range f.Targets {
		pOK := fs.replicaAvailable(t)
		sOK := f.Mirrored() && fs.replicaAvailable(f.mirrors[i])
		carries := i >= len(dist) || dist[i] > 0
		if read {
			switch {
			case pOK:
				primaries[i] = t
			case sOK:
				primaries[i] = f.mirrors[i]
				if fs.stats != nil {
					fs.stats.ReadFailovers++
				}
			case carries:
				return primaries, secondaries, &UnavailableError{Path: f.Path, Stripe: i, Read: true}
			}
			continue
		}
		if pOK {
			primaries[i] = t
		}
		if len(secondaries) != 0 && sOK {
			secondaries[i] = f.mirrors[i]
		}
		if primaries[i] == nil && (len(secondaries) == 0 || secondaries[i] == nil) && carries {
			return primaries, secondaries, &UnavailableError{Path: f.Path, Stripe: i}
		}
	}
	return primaries, secondaries, nil
}

// retryDelay returns the virtual-time wait before re-issue number attempt:
// the plain timeout first, then timeout plus capped exponential backoff.
func (fs *FileSystem) retryDelay(attempt int) float64 {
	if attempt <= 1 {
		return fs.cfg.RetryTimeout
	}
	base := fs.cfg.RetryBackoffBase
	if base <= 0 {
		base = fs.cfg.RetryTimeout
	}
	d := base * math.Pow(2, float64(attempt-2))
	if max := 60 * base; d > max {
		d = max
	}
	return fs.cfg.RetryTimeout + d
}

// retryLater schedules the plan's remaining volume for re-issue after the
// retry delay (plus extra, the stale-RPC timeout penalty when the
// previous issue died against a stale view), or fails the op when retries
// are disabled or exhausted. A re-issue attempt that still finds no
// viable replica consumes another attempt and backs off further.
func (fs *FileSystem) retryLater(plan *ioPlan, remainingMiB, extra float64) {
	op := plan.op
	if fs.cfg.RetryTimeout <= 0 {
		fs.failOp(plan, fmt.Errorf("aborted by resource failure with retries disabled"))
		return
	}
	if op.attempts >= fs.cfg.RetryMax {
		fs.failOp(plan, ErrRetriesExhausted)
		return
	}
	op.attempts++
	if fs.stats != nil {
		fs.stats.RetriesScheduled++
	}
	fs.sim.After(fs.retryDelay(op.attempts)+extra, func() {
		if _, err := fs.issue(plan, remainingMiB); err != nil {
			fs.retryLater(plan, remainingMiB, fs.staleExtra(err))
		}
	})
}

// staleExtra returns the additional delay the next retry must absorb for
// a failed issue: stale-view RPC failures burn Config.RPCTimeout waiting
// for the dead target before the client gives up on the attempt.
func (fs *FileSystem) staleExtra(err error) float64 {
	var unavail *UnavailableError
	if errors.As(err, &unavail) && unavail.Stale {
		return fs.cfg.RPCTimeout
	}
	return 0
}

// failOp delivers the op's terminal error. Without an OnError handler the
// failure is silent (but never a panic): the op simply never completes,
// which the benchmark layer surfaces as a drained simulation.
func (fs *FileSystem) failOp(plan *ioPlan, reason error) {
	op := plan.op
	kind := "write"
	if plan.read {
		kind = "read"
	}
	err := &IOFailedError{Path: op.File.Path, Op: kind, Attempts: op.attempts, Reason: reason}
	if fs.stats != nil {
		fs.stats.FailedOps++
	}
	if fs.opObserver != nil {
		fs.opObserver(OpEvent{
			Client: op.Client.Name, App: plan.app, Path: op.File.Path,
			Read: plan.read, Start: plan.startAt, End: fs.sim.Now(),
			MiB: float64(plan.totalLen) / float64(MiB), Attempts: op.attempts,
			EndOffset: plan.maxEnd, Err: err,
		})
	}
	if op.OnError != nil {
		op.OnError(err)
	}
	putPlan(plan)
}

// noteDegradedWrite records the bytes a completed write could place on
// only one side of a buddy mirror, and kicks off a resync if the missing
// replicas are already back.
func (fs *FileSystem) noteDegradedWrite(f *File, plan *ioPlan, primaries, secondaries []*storagesim.Target, volMiB float64) {
	if !f.Mirrored() {
		return
	}
	frac := 1.0
	if plan.totalLen > 0 {
		frac = volMiB * float64(MiB) / float64(plan.totalLen)
		if frac > 1 {
			frac = 1
		}
	}
	dirtied := false
	for i := range f.Targets {
		if plan.dist[i] == 0 {
			continue
		}
		bytes := int64(frac * float64(plan.dist[i]))
		if bytes == 0 {
			continue
		}
		if primaries[i] == nil || secondaries[i] == nil {
			if f.dirtyP == nil {
				f.dirtyP = make([]int64, len(f.Targets))
				f.dirtyS = make([]int64, len(f.Targets))
			}
			if primaries[i] == nil {
				f.dirtyP[i] += bytes
				_ = fs.mgmtd.SetConsistency(f.Targets[i].ID, NeedsResync)
			}
			if secondaries[i] == nil {
				f.dirtyS[i] += bytes
				_ = fs.mgmtd.SetConsistency(f.mirrors[i].ID, NeedsResync)
			}
			dirtied = true
		}
	}
	if dirtied {
		if fs.stats != nil {
			fs.stats.DegradedWrites++
		}
		fs.dirty[f.Path] = f
		fs.startResync(f)
	}
}

// startResyncs scans dirty files in path order and starts a resync flow
// for each whose replicas are all available again. Fired on every target
// recovery and NIC restoration.
func (fs *FileSystem) startResyncs() {
	paths := make([]string, 0, len(fs.dirty))
	for p := range fs.dirty {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fs.startResync(fs.dirty[p])
	}
}

// startResync re-copies a file's dirtied stripe bytes from the replica
// that took the degraded write to the one that missed it, as a single
// server-side flow loading both replicas (and their hosts). It is a no-op
// while a resync is already running or any needed replica is unavailable.
func (fs *FileSystem) startResync(f *File) {
	if f.resyncing {
		return
	}
	total := f.DirtyBytes()
	if total == 0 {
		delete(fs.dirty, f.Path)
		return
	}
	for i := range f.Targets {
		if f.dirtyP[i] == 0 && f.dirtyS[i] == 0 {
			continue
		}
		// The copy reads the good replica and writes the recovered one, so
		// both sides must be available — in ground truth, in the published
		// map (the resyncer is an mgmtd-driven client too), and neither
		// side condemned Bad.
		if !fs.resyncEligible(f.Targets[i]) || !fs.resyncEligible(f.mirrors[i]) {
			return
		}
	}
	const app = "resync"
	const depth = 1.0
	var acquired []*storagesim.Target
	seen := make(map[*storagesim.Target]bool)
	usage := make(map[*simnet.Resource]float64)
	hostShare := make(map[*storagesim.Host]float64)
	tf := float64(total)
	addPair := func(src, dst *storagesim.Target, bytes int64) {
		if bytes == 0 {
			return
		}
		w := float64(bytes) / tf
		for _, t := range [2]*storagesim.Target{src, dst} {
			usage[t.Resource()] += w
			hostShare[t.Host()] += w
			if !seen[t] {
				seen[t] = true
				acquired = append(acquired, t)
			}
		}
	}
	for i := range f.Targets {
		addPair(f.mirrors[i], f.Targets[i], f.dirtyP[i])
		addPair(f.Targets[i], f.mirrors[i], f.dirtyS[i])
	}
	for h, w := range hostShare {
		usage[h.Controller()] += w
		if nic := fs.serverNIC[h]; nic != nil {
			usage[nic] += w
		}
	}
	for _, t := range acquired {
		t.Acquire(app, depth)
	}
	f.resyncing = true
	clearedP := append([]int64(nil), f.dirtyP...)
	clearedS := append([]int64(nil), f.dirtyS...)
	flow := &simnet.Flow{
		Name:   "resync/" + f.Path,
		Volume: tf / float64(MiB),
		Usage:  usage,
	}
	release := func() {
		for _, t := range acquired {
			t.Release(app, depth)
		}
		f.resyncing = false
	}
	flow.OnComplete = func(at simkernel.Time) {
		release()
		for i := range clearedP {
			f.dirtyP[i] -= clearedP[i]
			f.dirtyS[i] -= clearedS[i]
			if f.dirtyP[i] < 0 {
				f.dirtyP[i] = 0
			}
			if f.dirtyS[i] < 0 {
				f.dirtyS[i] = 0
			}
		}
		fs.resynced += total
		if f.DirtyBytes() == 0 {
			delete(fs.dirty, f.Path)
			fs.refreshConsistency()
			return
		}
		// Concurrent degraded writes dirtied more bytes while we copied.
		fs.startResync(f)
	}
	flow.OnAbort = func(at simkernel.Time) {
		// A fault hit mid-resync; the dirt stays recorded and the next
		// recovery event restarts the copy.
		release()
	}
	if fs.stats != nil {
		fs.stats.ResyncsStarted++
	}
	fs.net.Start(flow)
}

// resyncEligible reports whether a resync flow may read from or write to
// t: available in ground truth, published as usable when heartbeats are
// on (the resyncer acts on the same cluster map as any client), and not
// condemned Bad.
func (fs *FileSystem) resyncEligible(t *storagesim.Target) bool {
	if !fs.targetAvailable(t) {
		return false
	}
	if fs.hb != nil && !fs.mgmtd.IsOnline(t.ID) {
		return false
	}
	return fs.mgmtd.Consistency(t.ID) != Bad
}

// refreshConsistency restores the Good verdict for every NeedsResync
// target no dirty file still depends on. Called when a file's dirt is
// fully cleared (resync completion or unlink); the scan is guarded so
// fault-free runs never pay for it.
func (fs *FileSystem) refreshConsistency() {
	if !fs.mgmtd.hasConsistencyMarks() {
		return
	}
	needed := make(map[int]bool)
	for _, f := range fs.dirty {
		for i := range f.Targets {
			if f.dirtyP[i] > 0 {
				needed[f.Targets[i].ID] = true
			}
			if f.dirtyS[i] > 0 {
				needed[f.mirrors[i].ID] = true
			}
		}
	}
	for _, t := range fs.mgmtd.order {
		if fs.mgmtd.Consistency(t.ID) == NeedsResync && !needed[t.ID] {
			_ = fs.mgmtd.SetConsistency(t.ID, Good)
		}
	}
}

// ResyncedBytes returns the total bytes re-copied by completed mirror
// resyncs.
func (fs *FileSystem) ResyncedBytes() int64 { return fs.resynced }

// DirtyFiles returns the number of mirrored files with writes awaiting
// resync.
func (fs *FileSystem) DirtyFiles() int { return len(fs.dirty) }

// SetNICDown fails (true) or restores (false) a storage host's network
// link: the NIC resource capacity is pinned to zero and the host's targets
// become unavailable to new I/O. Restoring the link re-checks pending
// mirror resyncs.
func (fs *FileSystem) SetNICDown(h *storagesim.Host, down bool) {
	if fs.nicDown[h] == down {
		return
	}
	if down {
		fs.nicDown[h] = true
	} else {
		delete(fs.nicDown, h)
	}
	if nic := fs.serverNIC[h]; nic != nil {
		if down {
			fs.net.SetCapacity(nic, 0)
		} else {
			cap := fs.cfg.ServerNICCapacity
			if f := fs.nicSlow[h]; f != 0 && f != 1 {
				cap *= f
			}
			fs.net.SetCapacity(nic, cap)
		}
	}
	if !down {
		fs.startResyncs()
	}
}

// NICDown reports whether the host's network link is failed.
func (fs *FileSystem) NICDown(h *storagesim.Host) bool { return fs.nicDown[h] }

// SetNICSlow pins (factor in (0,1)) or restores (factor 0 or 1) a host's
// NIC to a fraction of its capacity — the network half of a fail-slow
// gray failure. Unlike SetNICDown it aborts nothing, the host's targets
// stay available, and heartbeats keep flowing: nothing in the control
// plane ever notices. The factor survives ReJitter (the cluster layer
// multiplies it back in) and composes with an overlapping outage.
func (fs *FileSystem) SetNICSlow(h *storagesim.Host, factor float64) {
	old := fs.nicSlow[h]
	if old == 0 {
		old = 1
	}
	if factor == 0 {
		factor = 1
	}
	if factor == old {
		return
	}
	if factor == 1 {
		delete(fs.nicSlow, h)
	} else {
		fs.nicSlow[h] = factor
	}
	if nic := fs.serverNIC[h]; nic != nil && !fs.nicDown[h] {
		fs.net.SetCapacity(nic, nic.Capacity()/old*factor)
	}
}

// NICSlowFactor returns the host's fail-slow NIC factor (1 = full speed).
func (fs *FileSystem) NICSlowFactor(h *storagesim.Host) float64 {
	if f := fs.nicSlow[h]; f != 0 {
		return f
	}
	return 1
}

// precheckCapacity rejects writes that would overflow a stripe target,
// projecting the file's dense size after the regions complete. Concurrent
// in-flight writes that individually pass the check may overshoot
// slightly; the model accepts that (a real PFS reserves chunks lazily
// too).
func (fs *FileSystem) precheckCapacity(f *File, regions []Region) error {
	if fs.cfg.Storage.TargetCapacityBytes == 0 {
		return nil
	}
	projected := f.Size
	for _, reg := range regions {
		if end := reg.Offset + reg.Length; end > projected {
			projected = end
		}
	}
	dist, err := f.Pattern.RegionDistribution(0, projected)
	if err != nil {
		return err
	}
	for i, t := range f.Targets {
		delta := dist[i] - f.StoredOn(i)
		if delta <= 0 {
			continue
		}
		if t.Used()+delta > t.CapacityBytes() {
			return fmt.Errorf("beegfs: no space left on target %d for %q (%d of %d bytes used)",
				t.ID, f.Path, t.Used(), t.CapacityBytes())
		}
	}
	return nil
}

// accountStorage brings the per-target stored bytes up to the file's
// current dense size.
func (fs *FileSystem) accountStorage(f *File) {
	if fs.cfg.Storage.TargetCapacityBytes == 0 {
		return
	}
	dist, err := f.Pattern.RegionDistribution(0, f.Size)
	if err != nil {
		return
	}
	if f.stored == nil {
		f.stored = make([]int64, len(f.Targets))
	}
	for i, t := range f.Targets {
		if delta := dist[i] - f.stored[i]; delta > 0 {
			// Best effort after the precheck; concurrent overshoot is
			// bounded by the in-flight volume.
			_ = t.Store(delta)
			f.stored[i] = dist[i]
		}
	}
	if len(f.mirrors) > 0 {
		if f.storedM == nil {
			f.storedM = make([]int64, len(f.mirrors))
		}
		for i, t := range f.mirrors {
			if delta := dist[i] - f.storedM[i]; delta > 0 {
				_ = t.Store(delta)
				f.storedM[i] = dist[i]
			}
		}
	}
}

// Remove deletes a file: its metadata entry and its chunks' storage
// accounting.
func (fs *FileSystem) Remove(path string) error {
	f := fs.meta.files[path]
	if f == nil {
		return fmt.Errorf("beegfs: file %q does not exist", path)
	}
	for i, t := range f.Targets {
		if i < len(f.stored) && f.stored[i] > 0 {
			t.Free(f.stored[i])
		}
	}
	for i, t := range f.mirrors {
		if i < len(f.storedM) && f.storedM[i] > 0 {
			t.Free(f.storedM[i])
		}
	}
	// A deleted file has nothing left to resync; targets whose only dirt
	// it held go back to Good.
	delete(fs.dirty, path)
	fs.refreshConsistency()
	return fs.meta.Remove(path)
}

// ClientRampCap returns the per-process rate cap (MiB/s) implied by the
// client efficiency model for an application using nodes compute nodes
// with ppn processes each. Zero means "no cap". Processes beyond PpnSat
// pay the intra-node contention penalty (Figure 5b's slight degradation).
func (c Config) ClientRampCap(nodes, ppn int) float64 {
	if c.ClientA == 0 || nodes <= 0 || ppn <= 0 {
		return 0
	}
	aggregate := c.ClientA * math.Pow(float64(nodes), c.ClientGamma)
	if c.PpnSat > 0 && ppn > c.PpnSat && c.IntraNodePenalty > 0 {
		excess := math.Log2(float64(ppn) / float64(c.PpnSat))
		aggregate *= math.Pow(1-c.IntraNodePenalty, excess)
	}
	return aggregate / float64(nodes*ppn)
}

// RampWeight returns the client-stack usage multiplier for a flow issued
// by a node running ppn processes: beyond PpnSat, intra-node contention
// makes the node consume proportionally more of the shared client-stack
// capacity for the same throughput (Figure 5b). The analytic counterpart
// is the penalty factor inside ClientRampCap.
func (c Config) RampWeight(ppn int) float64 {
	if c.PpnSat > 0 && ppn > c.PpnSat && c.IntraNodePenalty > 0 {
		excess := math.Log2(float64(ppn) / float64(c.PpnSat))
		return 1 / math.Pow(1-c.IntraNodePenalty, excess)
	}
	return 1
}

// DepthScale returns the concurrency contribution multiplier for one
// process when ppn processes share a node: processes beyond PpnSat add no
// depth, and IntraNodePenalty shaves the rest (lesson 3 / Figure 5b).
func (c Config) DepthScale(ppn int) float64 {
	if ppn <= 0 {
		return 0
	}
	scale := 1.0
	if c.PpnSat > 0 && ppn > c.PpnSat {
		scale = float64(c.PpnSat) / float64(ppn)
		if c.IntraNodePenalty > 0 {
			excess := math.Log2(float64(ppn) / float64(c.PpnSat))
			scale *= math.Pow(1-c.IntraNodePenalty, excess)
		}
	}
	return scale
}
