// Command figures regenerates every quantitative figure of the paper's
// evaluation section and writes one table per figure to stdout plus a CSV
// under -out.
//
// Usage:
//
//	figures [-fig all|2a|2b|4a|4b|5a|5b|6a|6b|8|10|11|12|13|lessons|extnn|extread|policy|resilience|chaos|scale|hierscale] [-reps N] [-seed S] [-out DIR] [-fast] [-workers N]
//	        [-cpuprofile FILE] [-memprofile FILE]
//	        [-metrics FILE.json] [-prom FILE.prom] [-influx FILE.lp] [-trace FILE.json] [-utilcsv FILE.csv]
//	        [-serve ADDR] [-serve-linger DUR]
//
// The default -reps 100 matches the paper's protocol; -fast shortens the
// (virtual-time) inter-block waits. -workers bounds how many repetitions
// simulate concurrently (0 = one per CPU; results are bit-identical for
// every value). -cpuprofile/-memprofile write pprof profiles of the run.
//
// The observability flags configure sinks on one shared metrics pipeline
// (see internal/obs): -metrics writes the merged counters as JSON (plus a
// summary table on stderr), -prom the same model as OpenMetrics text,
// -influx as InfluxDB line protocol; -trace records one repetition's
// event timeline as Chrome trace-event JSON (load it at
// https://ui.perfetto.dev) and -utilcsv that repetition's per-OST
// utilization timeline. -serve exposes the live pipeline over HTTP while
// the run executes (GET /metrics for an OpenMetrics scrape, GET /runs for
// per-campaign progress with ETA); -serve-linger keeps the server up that
// much longer after the run so a final scrape cannot race completion.
// None of these change the simulated numbers: out/ CSVs are
// byte-identical whatever the sink configuration, at any -workers count.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate (2a 2b 4a 4b 5a 5b 6a 6b 8 10 11 12 13 lessons extnn extread policy resilience chaos scale hierscale all)")
		reps    = flag.Int("reps", 100, "repetitions per experiment (paper: 100)")
		seed    = flag.Uint64("seed", 42, "campaign seed")
		out     = flag.String("out", "out", "directory for CSV output (empty: skip CSV)")
		fast    = flag.Bool("fast", true, "shorten the virtual-time inter-block waits")
		workers = flag.Int("workers", 0, "concurrent repetitions (0 = one per CPU, 1 = serial; same results either way)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file at exit")
		metrics = flag.String("metrics", "", "write merged observability metrics to this JSON file (plus a summary table on stderr)")
		prom    = flag.String("prom", "", "write merged observability metrics to this file as OpenMetrics text")
		influx  = flag.String("influx", "", "write merged observability metrics to this file as InfluxDB line protocol")
		trace   = flag.String("trace", "", "write one repetition's Chrome trace-event JSON to this file (perfetto-loadable)")
		utilCSV = flag.String("utilcsv", "", "write the traced repetition's per-OST utilization timeline to this CSV file")
		serve   = flag.String("serve", "", "serve live /metrics (OpenMetrics) and /runs (progress) on this address while the run executes (e.g. 127.0.0.1:9464, or :0 for an ephemeral port)")
		linger  = flag.Duration("serve-linger", 0, "keep the -serve endpoint up this long after the run finishes")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	opts := experiments.Options{Reps: *reps, Seed: *seed, FastProtocol: *fast, Workers: *workers}
	// Every observability flag configures a sink on one shared pipeline;
	// the campaign streams per-repetition metrics and progress through it.
	var pl *obs.Pipeline
	if *metrics != "" || *prom != "" || *influx != "" || *trace != "" || *utilCSV != "" || *serve != "" {
		pl = obs.NewPipeline()
		if *metrics != "" {
			pl.AddSink(obs.NewJSONSink(*metrics))
		}
		if *prom != "" {
			pl.AddSink(obs.NewPromSink(*prom))
		}
		if *influx != "" {
			pl.AddSink(obs.NewInfluxSink(*influx))
		}
		if *trace != "" {
			pl.AddSink(obs.NewTraceSink(pl, *trace))
		}
		if *utilCSV != "" {
			pl.AddSink(obs.NewUtilCSVSink(pl, *utilCSV, "ost"))
		}
		opts.Pipeline = pl
	}
	var srv *obs.Server
	if *serve != "" {
		s, err := obs.Serve(pl, *serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		srv = s
		fmt.Fprintf(os.Stderr, "figures: serving /metrics and /runs on http://%s\n", srv.Addr())
	}
	err := run(*fig, opts, *out)
	if err == nil && pl != nil {
		err = closeObservability(pl, *metrics, *trace)
	}
	if srv != nil {
		// Give external scrapers a window to collect the final state
		// before the process exits (the CI smoke relies on it).
		time.Sleep(*linger)
		srv.Close()
	}
	if *memProf != "" {
		f, merr := os.Create(*memProf)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "figures:", merr)
			os.Exit(1)
		}
		runtime.GC() // materialize the final live set
		if merr := pprof.WriteHeapProfile(f); merr != nil {
			fmt.Fprintln(os.Stderr, "figures:", merr)
			os.Exit(1)
		}
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(fig string, opts experiments.Options, outDir string) error {
	all := fig == "all"
	did := false
	for _, f := range []struct {
		name string
		fn   func(experiments.Options, string) error
	}{
		{"2a", fig2(cluster.Scenario1Ethernet)},
		{"2b", fig2(cluster.Scenario2Omnipath)},
		{"4a", fig4(cluster.Scenario1Ethernet)},
		{"4b", fig4(cluster.Scenario2Omnipath)},
		{"5a", fig5(cluster.Scenario1Ethernet)},
		{"5b", fig5(cluster.Scenario2Omnipath)},
		{"6a", fig6(cluster.Scenario1Ethernet)},
		{"6b", fig6(cluster.Scenario2Omnipath)},
		{"8", fig8or10(cluster.Scenario1Ethernet)},
		{"10", fig8or10(cluster.Scenario2Omnipath)},
		{"11", fig11},
		{"12", fig12and13},
		{"13", fig12and13},
		{"lessons", lessons},
		{"extnn", extNN},
		{"extread", extRead},
		{"policy", policy},
		{"resilience", resilience},
		{"chaos", chaos},
		{"scale", scale},
		{"hierscale", hierscale},
	} {
		if !all && fig != f.name {
			continue
		}
		did = true
		if err := f.fn(opts, outDir); err != nil {
			return fmt.Errorf("fig %s: %w", f.name, err)
		}
		if f.name == "12" && (all || fig == "12") {
			// fig12and13 covers 13 too; skip the duplicate entry.
			fig13done = true
		}
		if !all {
			break
		}
	}
	if !did {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

var fig13done bool

// closeObservability writes every configured sink's final state (the
// pipeline renders the same snapshot into each) and prints the
// stderr-side summaries the file flags imply.
func closeObservability(pl *obs.Pipeline, metricsPath, tracePath string) error {
	tracer := pl.Tracer()
	if err := pl.Close(); err != nil {
		return fmt.Errorf("closing metric sinks: %w", err)
	}
	if metricsPath != "" {
		fmt.Fprint(os.Stderr, pl.Registry().Summary())
	}
	if tracePath != "" {
		fmt.Fprintf(os.Stderr, "trace: %d events in %s (load at https://ui.perfetto.dev)\n",
			tracer.Events(), tracePath)
	}
	return nil
}

func emit(t *report.Table, outDir, name string) error {
	fmt.Println(t.String())
	if outDir == "" {
		return nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(outDir, name+".csv"), []byte(t.CSV()), 0o644)
}

func scenarioTag(s cluster.Scenario) string {
	if s == cluster.Scenario1Ethernet {
		return "scenario1"
	}
	return "scenario2"
}

func fig2(s cluster.Scenario) func(experiments.Options, string) error {
	return func(opts experiments.Options, outDir string) error {
		pts, err := experiments.Fig2(s, opts)
		if err != nil {
			return err
		}
		t := report.NewTable(
			fmt.Sprintf("Figure 2 (%s): bandwidth vs total data size, 32 procs / 4 nodes, count 4", scenarioTag(s)),
			"size_gib", "mean_mibs", "sd", "min", "max", "n")
		for _, p := range pts {
			t.AddRow(p.X, p.Summary.Mean, p.Summary.SD, p.Summary.Min, p.Summary.Max, p.Summary.N)
		}
		return emit(t, outDir, "fig2_"+scenarioTag(s))
	}
}

func fig4(s cluster.Scenario) func(experiments.Options, string) error {
	return func(opts experiments.Options, outDir string) error {
		pts, err := experiments.Fig4(s, opts)
		if err != nil {
			return err
		}
		t := report.NewTable(
			fmt.Sprintf("Figure 4 (%s): bandwidth vs compute nodes, 8 ppn, count 4", scenarioTag(s)),
			"nodes", "mean_mibs", "sd", "min", "max")
		var labels []string
		var means []float64
		for _, p := range pts {
			t.AddRow(p.X, p.Summary.Mean, p.Summary.SD, p.Summary.Min, p.Summary.Max)
			labels = append(labels, fmt.Sprintf("N=%d", int(p.X)))
			means = append(means, p.Summary.Mean)
		}
		if err := emit(t, outDir, "fig4_"+scenarioTag(s)); err != nil {
			return err
		}
		fmt.Println(report.Bars(labels, means, 50))
		return nil
	}
}

func fig5(s cluster.Scenario) func(experiments.Options, string) error {
	return func(opts experiments.Options, outDir string) error {
		series, err := experiments.Fig5(s, opts)
		if err != nil {
			return err
		}
		t := report.NewTable(
			fmt.Sprintf("Figure 5 (%s): node sweep at 8 vs 16 processes per node", scenarioTag(s)),
			"nodes", "ppn", "mean_mibs", "sd")
		for _, ser := range series {
			for _, p := range ser.Points {
				t.AddRow(p.X, ser.PPN, p.Summary.Mean, p.Summary.SD)
			}
		}
		return emit(t, outDir, "fig5_"+scenarioTag(s))
	}
}

func fig6(s cluster.Scenario) func(experiments.Options, string) error {
	return func(opts experiments.Options, outDir string) error {
		pts, err := experiments.Fig6(s, opts)
		if err != nil {
			return err
		}
		t := report.NewTable(
			fmt.Sprintf("Figure 6 (%s): bandwidth vs stripe count", scenarioTag(s)),
			"count", "mean_mibs", "sd", "min", "max", "bimodal")
		var xs, ys []float64
		for _, p := range pts {
			t.AddRow(p.Count, p.Summary.Mean, p.Summary.SD, p.Summary.Min, p.Summary.Max, p.Bimodal)
			for _, v := range p.Samples {
				xs = append(xs, float64(p.Count))
				ys = append(ys, v)
			}
		}
		if err := emit(t, outDir, "fig6_"+scenarioTag(s)); err != nil {
			return err
		}
		// The paper's dot cloud: one column per stripe count.
		fmt.Println(report.Scatter(xs, ys, 64, 14))
		return nil
	}
}

func fig8or10(s cluster.Scenario) func(experiments.Options, string) error {
	return func(opts experiments.Options, outDir string) error {
		var boxes []experiments.AllocBox
		var err error
		name := "fig8"
		title := "Figure 8 (scenario1): boxplots by (min,max) OST allocation"
		if s == cluster.Scenario2Omnipath {
			boxes, err = experiments.Fig10(opts)
			name = "fig10"
			title = "Figure 10 (scenario2): boxplots by (min,max) OST allocation"
		} else {
			boxes, err = experiments.Fig8(opts)
		}
		if err != nil {
			return err
		}
		t := report.NewTable(title, "alloc", "n", "mean", "min", "q1", "median", "q3", "max")
		lo, hi := boxes[0].Box.Min, boxes[0].Box.Max
		for _, b := range boxes {
			t.AddRow(b.Alloc.String(), b.N, b.Mean, b.Box.Min, b.Box.Q1, b.Box.Median, b.Box.Q3, b.Box.Max)
			if b.Box.Min < lo {
				lo = b.Box.Min
			}
			if b.Box.Max > hi {
				hi = b.Box.Max
			}
		}
		if err := emit(t, outDir, name); err != nil {
			return err
		}
		for _, b := range boxes {
			fmt.Printf("%-6s %s\n", b.Alloc, report.BoxRow(b.Box.Min, b.Box.Q1, b.Box.Median, b.Box.Q3, b.Box.Max, lo, hi, 60))
		}
		fmt.Println()
		return nil
	}
}

func fig11(opts experiments.Options, outDir string) error {
	cells, err := experiments.Fig11(opts)
	if err != nil {
		return err
	}
	t := report.NewTable(
		"Figure 11 (scenario2): mean bandwidth vs nodes for several stripe counts",
		"count", "nodes", "mean_mibs")
	for _, c := range cells {
		t.AddRow(c.Count, c.Nodes, c.Mean)
	}
	return emit(t, outDir, "fig11")
}

func fig12and13(opts experiments.Options, outDir string) error {
	if fig13done {
		return nil
	}
	rows, err := experiments.Fig12(opts)
	if err != nil {
		return err
	}
	t := report.NewTable(
		"Figure 12: concurrent applications vs single-application baselines (scenario 2)",
		"apps", "count", "individual_mean", "solo_mean", "aggregate_mean", "equivalent_single_mean")
	for _, r := range rows {
		t.AddRow(r.Apps, r.Count, r.IndividualMean, r.SoloMean, r.AggregateMean, r.EquivalentSingleMean)
	}
	if err := emit(t, outDir, "fig12"); err != nil {
		return err
	}
	res, err := experiments.Fig13(rows)
	if err != nil {
		return err
	}
	t13 := report.NewTable(
		"Figure 13: 2 apps x 4 OSTs, share-all vs share-none (paper: Welch p = 0.9031)",
		"group", "n", "mean_mibs", "sd", "ks_normality_p")
	sAll, _ := stats.Summarize(res.ShareAll)
	sNone, _ := stats.Summarize(res.ShareNone)
	t13.AddRow("share-all", sAll.N, sAll.Mean, sAll.SD, res.KSAll.P)
	t13.AddRow("share-none", sNone.N, sNone.Mean, sNone.SD, res.KSNone.P)
	if err := emit(t13, outDir, "fig13"); err != nil {
		return err
	}
	fmt.Printf("Welch two-sample t-test: t = %.3f, df = %.1f, p = %.4f\n", res.Welch.T, res.Welch.DF, res.Welch.P)
	fmt.Printf("Mann-Whitney U (nonparametric): U = %.1f, z = %.3f, p = %.4f\n\n", res.MannWhitney.U, res.MannWhitney.Z, res.MannWhitney.P)
	return nil
}

func lessons(opts experiments.Options, outDir string) error {
	// Gather the minimal campaigns needed to evaluate all seven lessons.
	fmt.Println("Evaluating the paper's seven lessons against fresh simulated campaigns...")
	s1, err := experiments.Fig4(cluster.Scenario1Ethernet, opts)
	if err != nil {
		return err
	}
	s2, err := experiments.Fig4(cluster.Scenario2Omnipath, opts)
	if err != nil {
		return err
	}
	toMap := func(pts []experiments.SweepPoint) map[int]float64 {
		m := make(map[int]float64)
		for _, p := range pts {
			m[int(p.X)] = p.Summary.Mean
		}
		return m
	}
	byNodes1, byNodes2 := toMap(s1), toMap(s2)

	f5, err := experiments.Fig5(cluster.Scenario2Omnipath, opts)
	if err != nil {
		return err
	}
	// Below the plateau: N=2 (index 1 of {1,2,4,...}).
	ratioPpn := f5[1].Points[1].Summary.Mean / f5[0].Points[1].Summary.Mean
	ratioNodes := f5[0].Points[2].Summary.Mean / f5[0].Points[1].Summary.Mean

	pts6a, err := experiments.Fig6(cluster.Scenario1Ethernet, opts)
	if err != nil {
		return err
	}
	byAlloc := map[string][]float64{}
	allocs := map[string]core.Allocation{}
	byCount := map[int][]float64{}
	for _, pt := range pts6a {
		byCount[pt.Count] = pt.Samples
		for _, rec := range pt.Records {
			a := rec.Alloc()
			byAlloc[a.Key()] = append(byAlloc[a.Key()], rec.Bandwidth())
			allocs[a.Key()] = a
		}
	}

	pts6b, err := experiments.Fig6(cluster.Scenario2Omnipath, opts)
	if err != nil {
		return err
	}
	means2 := map[int]float64{}
	var balanced, unbalanced float64
	for _, pt := range pts6b {
		means2[pt.Count] = pt.Summary.Mean
	}
	boxes, err := experiments.GroupByAllocation(pts6b)
	if err != nil {
		return err
	}
	for _, b := range boxes {
		switch b.Alloc.String() {
		case "(3,3)":
			balanced = b.Mean
		case "(2,4)":
			unbalanced = b.Mean
		}
	}

	rows12, err := experiments.Fig12(opts)
	if err != nil {
		return err
	}
	res13, err := experiments.Fig13(rows12)
	if err != nil {
		return err
	}

	verdicts := []core.Verdict{
		core.Lesson1(byNodes1, byNodes2),
		core.Lesson2(byNodes1),
		core.Lesson3(ratioPpn, ratioNodes),
		core.Lesson4(byAlloc, allocs),
		core.Lesson5(byCount),
		core.Lesson6(means2, balanced, unbalanced),
		core.Lesson7(res13.ShareAll, res13.ShareNone),
	}
	t := report.NewTable("Lessons learned — programmatic verdicts", "lesson", "holds", "detail")
	for _, v := range verdicts {
		t.AddRow(v.Lesson, v.Holds, v.Detail)
	}
	if err := emit(t, outDir, "lessons"); err != nil {
		return err
	}
	if !verdicts[6].Holds {
		fmt.Println(strings.TrimSpace(`
Note: lesson 7's strict null result is the documented divergence (see
DESIGN.md §6): a deterministic capacity model cannot reproduce Figure 13's
parity while also matching Figures 6b/10. The aggregate-level claim — that
sharing OSTs never degrades total bandwidth relative to the equivalent
single application — does hold (Figure 12).`))
		fmt.Println()
	}
	return nil
}

func extNN(opts experiments.Options, outDir string) error {
	// The full-repetition campaign is expensive for this 12-cell matrix;
	// cap at 20 reps per cell unless fewer were requested.
	if opts.Reps > 20 {
		opts.Reps = 20
	}
	rows, err := experiments.ExtNN(opts)
	if err != nil {
		return err
	}
	t := report.NewTable(
		"Extension: N-1 vs N-N access patterns (scenario 2, count 8; §VI future work)",
		"nodes", "ppn", "shared_n1_mibs", "perproc_nn_mibs", "nn_mds2000_mibs")
	for _, r := range rows {
		t.AddRow(r.Nodes, r.PPN, r.SharedMean, r.PerProcMean, r.PerProcLimitedMean)
	}
	if err := emit(t, outDir, "ext_nn"); err != nil {
		return err
	}
	fmt.Println("N-N matches N-1 while the MDS keeps up; a rate-limited MDS taxes N-N with scale.")
	fmt.Println()
	return nil
}

func extRead(opts experiments.Options, outDir string) error {
	rows, err := experiments.ExtRead(opts)
	if err != nil {
		return err
	}
	t := report.NewTable(
		"Extension: write vs read-back per stripe count (scenario 1; §III-B future work)",
		"count", "write_mibs", "read_mibs", "write_bimodal", "read_bimodal")
	for _, r := range rows {
		t.AddRow(r.Count, r.WriteMean, r.ReadMean, r.WriteBimodal, r.ReadBimodal)
	}
	if err := emit(t, outDir, "ext_read"); err != nil {
		return err
	}
	fmt.Println("Reads track writes and inherit the allocation bimodality, as the paper expected (§III-B).")
	fmt.Println()
	return nil
}

func resilience(opts experiments.Options, outDir string) error {
	// 2 scenarios x 4 fault schemes: cap at 20 reps per cell unless fewer
	// were requested.
	if opts.Reps > 20 {
		opts.Reps = 20
	}
	rows, err := experiments.ExtResilience(opts)
	if err != nil {
		return err
	}
	t := report.NewTable(
		"Extension: write bandwidth and completion time under mid-run faults, by (min,max) allocation",
		"scenario", "fault", "alloc", "n", "bw_mean_mibs", "bw_sd", "sec_mean", "sec_sd")
	for _, r := range rows {
		t.AddRow(r.Scenario, r.Fault, r.Alloc, r.N, r.BWMean, r.BWSD, r.SecMean, r.SecSD)
	}
	if err := emit(t, outDir, "ext_resilience"); err != nil {
		return err
	}
	fmt.Println("Mid-run OST/OSS failures lower mean bandwidth and stretch completion times;")
	fmt.Println("the retry/backoff + mirror-failover path keeps every repetition completing.")
	fmt.Println()
	return nil
}

func chaos(opts experiments.Options, outDir string) error {
	// 2 scenarios x 3 chaos profiles, each repetition draining a full
	// invariant audit: cap at 20 reps per cell unless fewer were requested.
	if opts.Reps > 20 {
		opts.Reps = 20
	}
	rows, err := experiments.ExtChaos(opts)
	if err != nil {
		return err
	}
	t := report.NewTable(
		"Extension: chaos campaign under heartbeat-driven failure detection (invariants audited per repetition)",
		"scenario", "profile", "episodes", "n", "bw_mean_mibs", "bw_sd", "sec_mean", "sec_sd", "failed_side_ops")
	for _, r := range rows {
		t.AddRow(r.Scenario, r.Profile, r.Episodes, r.N, r.BWMean, r.BWSD, r.SecMean, r.SecSD, r.FailedOps)
	}
	if err := emit(t, outDir, "ext_chaos"); err != nil {
		return err
	}
	fmt.Println("Seeded random fault storms — fail-stop, fail-slow, partitions — under heartbeat")
	fmt.Println("detection: every repetition passed the durability/convergence/conservation/")
	fmt.Println("boundedness audit at quiesce.")
	fmt.Println()
	return nil
}

func scale(opts experiments.Options, outDir string) error {
	// Each repetition adds a dozen-plus churn jobs per cell; 40 reps
	// already means thousands of jobs on the large fabric.
	if opts.Reps > 40 {
		opts.Reps = 40
	}
	rows, err := experiments.ExtScale(opts)
	if err != nil {
		return err
	}
	// The CSV carries only the deterministic columns (byte-identical at
	// any -workers); the wall-clock side goes to stdout below.
	t := report.NewTable(
		"Extension: fat-tree job churn at scale — batched vs unbatched solver, identical results",
		"topology", "mode", "racks", "targets", "jobs", "bw_mean_mibs", "bw_min", "bw_max",
		"peak_flows", "events", "solves", "solves_per_event")
	for _, r := range rows {
		t.AddRow(r.Topology, r.Mode, r.Racks, r.Targets, r.Jobs, r.BWMean, r.BWMin, r.BWMax,
			r.PeakFlows, r.Events, r.Solves, r.SolvesPerEvent)
	}
	if err := emit(t, outDir, "ext_scale"); err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("  %-6s %-9s wall %6.2fs  %9.0f events/s  step p50 %6.1fus p99 %6.1fus\n",
			r.Topology, r.Mode, r.WallSec, r.EventsPerSec, r.StepP50us, r.StepP99us)
	}
	fmt.Println()
	fmt.Println("Same-instant event batching collapses the per-event solve cadence to one solve")
	fmt.Println("per dirty component per instant; every simulated number above is bit-identical")
	fmt.Println("between the two modes (enforced in-line by the campaign).")
	fmt.Println()
	return nil
}

func hierscale(opts experiments.Options, outDir string) error {
	if opts.Reps > 40 {
		opts.Reps = 40
	}
	rows, err := experiments.ExtHierScale(opts)
	if err != nil {
		return err
	}
	t := report.NewTable(
		"Extension: core-coupled job churn — flat vs hierarchical solver (exact and bounded-error)",
		"topology", "mode", "racks", "targets", "jobs", "bw_mean_mibs", "bw_min", "bw_max",
		"peak_flows", "events", "solves", "hier_solves", "hier_fallbacks", "outer_rounds", "exact_fallbacks", "max_rel_err")
	for _, r := range rows {
		t.AddRow(r.Topology, r.Mode, r.Racks, r.Targets, r.Jobs, r.BWMean, r.BWMin, r.BWMax,
			r.PeakFlows, r.Events, r.Solves, r.HierSolves, r.HierFallbacks, r.OuterRounds, r.ExactFallbacks, r.MaxRelErr)
	}
	if err := emit(t, outDir, "ext_hierscale"); err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("  %-10s %-11s wall %6.2fs  %9.0f events/s  step p50 %6.1fus p99 %6.1fus\n",
			r.Topology, r.Mode, r.WallSec, r.EventsPerSec, r.StepP50us, r.StepP99us)
	}
	fmt.Println()
	fmt.Println("Cross-rack drain traffic through an over-subscribed core fuses all racks into")
	fmt.Println("one component. hier-exact reproduces the flat solver bit-for-bit (enforced")
	fmt.Println("in-line); hier-approx trades an enforced <=1% rate residual for fewer")
	fmt.Println("coordination passes.")
	fmt.Println()
	return nil
}

func policy(opts experiments.Options, outDir string) error {
	t := report.NewTable(
		"Extension: 'always max stripe count' vs adaptive per-app counts (scenario 2)",
		"apps", "max_count_aggregate", "adapted_aggregate", "max_gain_%")
	for _, apps := range []int{2, 4} {
		o := opts
		o.Seed = opts.Seed + uint64(apps)
		if o.Reps > 25 {
			o.Reps = 25
		}
		res, err := experiments.ComparePolicies(apps, o)
		if err != nil {
			return err
		}
		t.AddRow(apps, res.MaxCountAggregate, res.AdaptedAggregate, res.Gain*100)
	}
	if err := emit(t, outDir, "ext_policy"); err != nil {
		return err
	}
	fmt.Println("Adapting per-application stripe counts to avoid sharing buys nothing (§I/§VI).")
	fmt.Println()
	return nil
}
