package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestLog2HistBuckets(t *testing.T) {
	var h Log2Hist
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1 << 40} {
		h.Observe(v)
	}
	if h.Count != 8 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.Sum != 0+1+2+3+4+7+8+1<<40 {
		t.Fatalf("sum = %d", h.Sum)
	}
	// bits.Len64 buckets: 0 -> 0; 1 -> 1; 2,3 -> 2; 4..7 -> 3; 8 -> 4;
	// 2^40 -> 41.
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 2, 4: 1, 41: 1}
	for i, b := range h.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, b, want[i])
		}
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Add("x", 1)
	r.Max("x", 1)
	r.Observe("x", 1)
	r.MergeHist("x", &Log2Hist{Count: 1})
	if r.Counter("x") != 0 {
		t.Fatal("nil registry returned a counter")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "{}" {
		t.Fatalf("nil WriteJSON = %q", buf.String())
	}
	if r.Summary() != "" {
		t.Fatal("nil Summary non-empty")
	}
}

func TestRegistryAccumulates(t *testing.T) {
	r := NewRegistry()
	r.Add("ops", 3)
	r.Add("ops", 4)
	if got := r.Counter("ops"); got != 7 {
		t.Fatalf("ops = %d", got)
	}
	r.Max("hw", 5)
	r.Max("hw", 3) // lower: ignored
	r.Observe("h", 10)
	var src Log2Hist
	src.Observe(2)
	src.Observe(100)
	r.MergeHist("h", &src)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
		Maxima   map[string]uint64 `json:"maxima"`
		Hists    map[string]struct {
			Count   uint64            `json:"count"`
			Sum     uint64            `json:"sum"`
			Buckets map[string]uint64 `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Counters["ops"] != 7 || doc.Maxima["hw"] != 5 {
		t.Fatalf("doc = %+v", doc)
	}
	h := doc.Hists["h"]
	if h.Count != 3 || h.Sum != 112 {
		t.Fatalf("hist = %+v", h)
	}
	// Empty buckets are omitted; 10 lands in the "15" bucket.
	if h.Buckets["15"] != 1 {
		t.Fatalf("buckets = %+v", h.Buckets)
	}
}

// Two registries filled in different orders (as parallel workers would)
// must serialize byte-identically.
func TestWriteJSONOrderIndependent(t *testing.T) {
	fill := func(r *Registry, reversed bool) {
		ops := [][2]uint64{{1, 10}, {2, 20}, {3, 30}}
		if reversed {
			ops = [][2]uint64{{3, 30}, {2, 20}, {1, 10}}
		}
		for _, op := range ops {
			r.Add("a", op[1])
			r.Max("m", op[1])
			r.Observe("h", op[0])
		}
	}
	a, b := NewRegistry(), NewRegistry()
	fill(a, false)
	fill(b, true)
	var ba, bb bytes.Buffer
	if err := a.WriteJSON(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatalf("order-dependent JSON:\n%s\nvs\n%s", ba.String(), bb.String())
	}
}

func TestSummaryMentionsEverything(t *testing.T) {
	r := NewRegistry()
	r.Add("layer/ops", 1)
	r.Max("layer/hw", 2)
	r.Observe("layer/hist", 3)
	s := r.Summary()
	for _, want := range []string{"layer/ops", "layer/hw", "layer/hist"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}
