package main

import (
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/simnet
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSolve8Flows-4   	    1000	       316.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkSolve64Flows   	    1000	      3557 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig6   	       1	 123456789 ns/op	      2210 MiB/s@count8
PASS
ok  	repro/internal/simnet	0.045s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3", len(doc.Benchmarks))
	}
	// Sorted by name; the -4 GOMAXPROCS suffix is stripped.
	if doc.Benchmarks[0].Name != "BenchmarkFig6" || doc.Benchmarks[1].Name != "BenchmarkSolve64Flows" || doc.Benchmarks[2].Name != "BenchmarkSolve8Flows" {
		t.Fatalf("names = %v %v %v", doc.Benchmarks[0].Name, doc.Benchmarks[1].Name, doc.Benchmarks[2].Name)
	}
	s8 := doc.Benchmarks[2]
	if s8.Iterations != 1000 || s8.Metrics["ns/op"] != 316.2 || s8.Metrics["allocs/op"] != 0 {
		t.Fatalf("solve8 = %+v", s8)
	}
	fig := doc.Benchmarks[0]
	if fig.Metrics["MiB/s@count8"] != 2210 {
		t.Fatalf("custom metric lost: %+v", fig)
	}
	if doc.Context["goos"] != "linux" || doc.Context["cpu"] == "" {
		t.Fatalf("context = %+v", doc.Context)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

func bench(name string, ns float64) Entry {
	return Entry{Name: name, Iterations: 100, Metrics: map[string]float64{"ns/op": ns}}
}

func TestDiffDocsGatesRegressions(t *testing.T) {
	oldDoc := Doc{Benchmarks: []Entry{
		bench("BenchmarkSolve8Flows", 100),
		bench("BenchmarkSolve64Flows", 1000),
		bench("BenchmarkFig6", 500),
	}}
	// Solve64 regresses 50%, Solve8 improves, Fig6 regresses but is
	// filtered out by the match pattern.
	newDoc := Doc{Benchmarks: []Entry{
		bench("BenchmarkSolve8Flows", 80),
		bench("BenchmarkSolve64Flows", 1500),
		bench("BenchmarkFig6", 5000),
	}}
	re := regexp.MustCompile(`^BenchmarkSolve`)
	report, failed, err := diffDocs(oldDoc, newDoc, 25, re)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("50%% regression not gated:\n%s", report)
	}
	if !strings.Contains(report, "FAIL") || !strings.Contains(report, "BenchmarkSolve64Flows") {
		t.Fatalf("report does not name the regression:\n%s", report)
	}
	if strings.Contains(report, "BenchmarkFig6") {
		t.Fatalf("match pattern not applied:\n%s", report)
	}
	// Within threshold: passes.
	if _, failed, _ := diffDocs(oldDoc, newDoc, 60, re); failed {
		t.Fatal("60% threshold should tolerate a 50% regression")
	}
}

func TestDiffDocsHandlesMissingEntries(t *testing.T) {
	oldDoc := Doc{Benchmarks: []Entry{bench("BenchmarkSolve8Flows", 100), bench("BenchmarkOld", 1)}}
	newDoc := Doc{Benchmarks: []Entry{bench("BenchmarkSolve8Flows", 90), bench("BenchmarkNew", 1)}}
	report, failed, err := diffDocs(oldDoc, newDoc, 25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("improvement flagged as regression:\n%s", report)
	}
	if !strings.Contains(report, "BenchmarkNew") || !strings.Contains(report, "BenchmarkOld") {
		t.Fatalf("asymmetric entries not reported:\n%s", report)
	}
	// No overlap at all is an error, not a silent pass.
	if _, _, err := diffDocs(Doc{Benchmarks: []Entry{bench("A", 1)}}, Doc{Benchmarks: []Entry{bench("B", 1)}}, 25, nil); err == nil {
		t.Fatal("disjoint documents compared without error")
	}
}
