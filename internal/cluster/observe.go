package cluster

import (
	"fmt"
	"strings"

	"repro/internal/beegfs"
	"repro/internal/obs"
	"repro/internal/simkernel"
	"repro/internal/simnet"
	"repro/internal/storagesim"
)

// RunStats bundles one repetition's per-layer activity counters. The
// layers update their plain structs behind nil checks while the
// simulation runs single-goroutine; FlushTo merges the totals into a
// shared registry afterwards. Because every merged quantity is a uint64
// sum, max or histogram-bucket addition, the merge is order-independent —
// parallel campaign workers flushing in any order produce the same
// registry, which keeps the exported metrics JSON deterministic.
type RunStats struct {
	Kernel simkernel.Stats
	Net    simnet.Stats
	FS     beegfs.Stats
}

// EnableStats attaches fresh per-layer counters to the deployment and
// returns them. Call once per repetition, before the workload runs.
func (d *Deployment) EnableStats() *RunStats {
	st := &RunStats{}
	d.Sim.SetStats(&st.Kernel)
	d.Net.SetStats(&st.Net)
	d.FS.SetStats(&st.FS)
	return st
}

// FlushTo merges the repetition's counters into a recorder under stable
// "layer/metric" names. The recorder is either the shared Registry
// directly (the plain -metrics path) or a pipeline Collector shard, whose
// later Flush routes the names through the pipeline's rules; the emitted
// names and values are identical either way. Nil receiver or recorder is
// a no-op.
func (st *RunStats) FlushTo(reg obs.Recorder) {
	if st == nil || reg == nil {
		return
	}
	k := &st.Kernel
	reg.Add("simkernel/events_dispatched", k.Dispatched)
	reg.Add("simkernel/events_scheduled", k.Scheduled)
	reg.Add("simkernel/reschedules", k.Reschedules)
	reg.Add("simkernel/requeues", k.Requeues)
	reg.Add("simkernel/cancels", k.Cancels)
	reg.Max("simkernel/heap_high_water", k.HeapHighWater)

	n := &st.Net
	for i, c := range n.Solves {
		reg.Add("simnet/solves/"+simnet.SolveTrigger(i).String(), c)
	}
	reg.Add("simnet/waterfill_passes", n.Passes)
	reg.MergeHist("simnet/freezes_per_pass", &n.FreezesPerPass)
	reg.MergeHist("simnet/component_flows", &n.ComponentFlows)
	reg.Add("simnet/warmstart_hits", n.WarmHits)
	reg.Add("simnet/warmstart_misses", n.WarmMisses)
	reg.Add("simnet/warmstart_replayed_passes", n.WarmReplayedPasses)
	// Batched-mode counters; all zero when SetBatching is off. Like every
	// simnet counter they are worker-count-independent (ParallelSolves is
	// defined by batch shape, not by pool execution), so the registry stays
	// deterministic at any -workers setting.
	reg.Add("simnet/solve_batches", n.SolveBatches)
	reg.Add("simnet/components_dirty", n.ComponentsDirty)
	reg.Add("simnet/parallel_solves", n.ParallelSolves)
	reg.MergeHist("simnet/batch/flush_wave_width", &n.FlushWaveWidth)
	// Hierarchical-mode counters; all zero when SetHierarchical is off.
	reg.Add("simnet/hier_solves", n.HierSolves)
	reg.Add("simnet/hier_fallbacks", n.HierFallbacks)
	reg.Add("simnet/hier_outer_rounds", n.HierOuterRounds)
	reg.Add("simnet/hier_exact_fallbacks", n.HierExactFallbacks)
	reg.MergeHist("simnet/hier_groups", &n.HierGroups)
	reg.MergeHist("simnet/hier_group_flows", &n.HierGroupFlows)
	// The registry carries uint64 quantities, so the measured bounded-mode
	// residual (a float in [0, maxRelErr]) is exported in parts per
	// billion, max-merged like the underlying stat. 0 ppb = exact.
	reg.Max("simnet/hier_max_rel_err", uint64(n.HierMaxRelErr*1e9))
	// Per-solve wall-clock latency is host-dependent; the runtime/
	// namespace keeps it out of the deterministic portion of the export.
	reg.MergeHist(obs.RuntimePrefix+"simnet/solve_latency_ns", &n.SolveLatencyNs)

	f := &st.FS
	reg.Add("beegfs/write_ops", f.WriteOps)
	reg.Add("beegfs/read_ops", f.ReadOps)
	reg.MergeHist("beegfs/op_mib", &f.OpMiB)
	reg.MergeHist("beegfs/stripe_width", &f.StripeWidth)
	for id, b := range f.BytesByOST {
		reg.Add(fmt.Sprintf("beegfs/ost/%d/bytes", id), b)
	}
	reg.Add("beegfs/retries_scheduled", f.RetriesScheduled)
	reg.Add("beegfs/failed_ops", f.FailedOps)
	reg.Add("beegfs/degraded_writes", f.DegradedWrites)
	reg.Add("beegfs/read_failovers", f.ReadFailovers)
	reg.Add("beegfs/resyncs_started", f.ResyncsStarted)
	reg.Add("beegfs/reach_transitions", f.ReachTransitions)
	reg.Add("beegfs/stale_rpc_failures", f.StaleRPCFailures)
	reg.Add("beegfs/heartbeat_sweeps", f.HeartbeatSweeps)
	reg.MergeHist("beegfs/heartbeat_sweep_targets", &f.SweepTargets)
	// sync.Pool hit rates depend on the host's GC and goroutine
	// scheduling, not on the simulation; the runtime/ namespace keeps
	// them out of the deterministic portion of the export.
	reg.Add(obs.RuntimePrefix+"beegfs/plan_pool_hits", f.PlanPoolHits)
	reg.Add(obs.RuntimePrefix+"beegfs/plan_pool_misses", f.PlanPoolMisses)
	reg.Add(obs.RuntimePrefix+"beegfs/attempt_pool_hits", f.AttemptPoolHits)
	reg.Add(obs.RuntimePrefix+"beegfs/attempt_pool_misses", f.AttemptPoolMisses)
	reg.Max("beegfs/active_clients_high_water", f.ActiveClientsHighWater)
}

// AttachTracer wires the deployment's observer hooks to a tracer: solver
// activity as instants on a "solver" track, post-solve OSS/OST loads as
// counter samples (one perfetto counter track per resource — the per-OST
// utilization timeline), and finished client ops as duration slices on
// one track per compute node. Attach to at most one repetition per
// tracer (Tracer.Claim arbitrates).
func (d *Deployment) AttachTracer(t *obs.Tracer) {
	d.Net.ObserveSolves(func(at simkernel.Time, info simnet.SolveInfo) {
		t.Instant("solver", "solve/"+info.Trigger.String(), float64(at), map[string]any{
			"flows":           info.Flows,
			"resources":       info.Resources,
			"live_passes":     info.LivePasses,
			"warm_start":      info.WarmStart,
			"replayed_passes": info.ReplayedPasses,
			"hierarchical":    info.Hierarchical,
			"groups":          info.Groups,
		})
	})
	d.Net.ObserveBatches(func(at simkernel.Time, info simnet.BatchInfo) {
		t.Instant("solver", "batch", float64(at), map[string]any{
			"components": info.Components,
			"workers":    info.Workers,
		})
	})
	d.Net.ObserveResources(func(at simkernel.Time, r *simnet.Resource, load float64) {
		// Server-side resources only: "ost<id>", "oss<h>/ctl", "oss<h>/nic".
		if strings.HasPrefix(r.Name, "ost") || strings.HasPrefix(r.Name, "oss") {
			t.Counter(r.Name, float64(at), load)
		}
	})
	d.FS.Mgmtd().SetReachObserver(func(tg *storagesim.Target, from, to beegfs.Reachability) {
		t.Instant("mgmtd", fmt.Sprintf("target %d %s→%s", tg.ID, from, to), float64(d.Sim.Now()), map[string]any{
			"target": tg.ID,
			"from":   from.String(),
			"to":     to.String(),
		})
	})
	d.FS.SetOpObserver(func(ev beegfs.OpEvent) {
		kind := "write"
		if ev.Read {
			kind = "read"
		}
		args := map[string]any{"app": ev.App, "mib": ev.MiB, "attempts": ev.Attempts}
		if ev.Err != nil {
			args["error"] = ev.Err.Error()
			kind += "-failed"
		}
		t.Slice("client/"+ev.Client, kind+" "+ev.Path, float64(ev.Start), float64(ev.End), args)
	})
}

// DetachObservers removes the tracer hooks installed by AttachTracer, so
// a deployment reused for further repetitions stops recording.
func (d *Deployment) DetachObservers() {
	d.Net.ObserveSolves(nil)
	d.Net.ObserveBatches(nil)
	d.Net.ObserveResources(nil)
	d.FS.Mgmtd().SetReachObserver(nil)
	d.FS.SetOpObserver(nil)
}
