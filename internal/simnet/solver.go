package simnet

// Incremental waterfill.
//
// The reference solver (solveReference) rescans every flow and every
// resource of the component on every pass: O(passes × (flows·uses + res)).
// This file implements the same progressive-filling algorithm with work
// proportional to what can still change:
//
//   - unfrozen: a compacted, order-preserving list of the flows still
//     growing. Frozen flows contribute nothing to any per-pass sum, so
//     skipping them outright performs the exact same floating-point
//     additions in the exact same order as the reference's
//     "if f.frozen { continue }" scan — the per-resource sumW values are
//     bit-identical, not merely close.
//   - cands: the candidate bottleneck resources. A resource whose sumW is
//     zero has no unfrozen user; flows only ever freeze during a solve, so
//     it can never become a bottleneck again and is dropped from the scan.
//     The reference skipped it with a test; dropping it removes the test
//     without changing the comparison sequence of the surviving
//     candidates, so the strict `d < delta` first-wins argmin picks the
//     same bottleneck with the same delta.
//   - capped: the unfrozen capped flows in ascending Cap order. The
//     reference computed capDelta = min over unfrozen capped flows of
//     (Cap - fill); IEEE subtraction is monotonic, so that minimum is
//     attained at the smallest Cap and equals (minCap - fill) bit for
//     bit. The sorted list yields it in O(1), and the freeze sweep
//     "Cap <= fill+1e-12" is a prefix walk instead of a full scan.
//   - resource freeze via the per-resource user index (Resource.users)
//     instead of an O(flows) usesRes scan. Freezing order within a pass
//     has no floating-point effect — freezes only flip flags and assign
//     already-computed rates — so walking users (flow-ordered) matches
//     the reference sweep exactly.
//
// On top of the pass loop, a solve may record its freeze trajectory
// (which flow froze in which pass, at what rate, with per-pass fill,
// step, bottleneck and per-resource load snapshots). The common
// completion event — one flow leaves, nothing else changes — can then
// warm-start: the prefix of passes provably unaffected by the departure
// is replayed from the record instead of recomputed, and the live loop
// resumes where the trajectories genuinely diverge. See warmSolve for
// the proof obligations.

import (
	"math"
	"slices"
)

// fpassNever marks a flow that did not freeze during the last recorded
// solve (never happens on a cleanly terminated solve, where every flow
// freezes, but the sentinel keeps partially recorded state harmless).
const fpassNever = int32(1) << 30

// recordMinFlows is the component size below which rebalances skip
// trajectory recording: the warm start exists to amortize expensive
// solves, and for small components the per-pass load snapshots cost more
// than simply re-solving cold on the next removal. Campaign components
// (one application's in-flight ops) sit well below this; the large
// single-component shapes the warm start targets sit well above.
const recordMinFlows = 48

// trajPass is one recorded waterfill pass.
type trajPass struct {
	step      float64 // fill increment applied this pass
	fill      float64 // fill level after the pass
	minCap    float64 // smallest unfrozen cap entering the pass (0 if none)
	minCapDup bool    // a second unfrozen flow shares minCap
	capFired  bool    // capDelta <= delta: cap freezes ran
	resFired  bool    // delta <= capDelta: bottleneck freezes ran
	// bottleneck is the pass's argmin resource (nil if none had demand).
	bottleneck *Resource
	// frozenEnd is the length of trajectory.frozen after this pass's
	// freezes: frozen[:frozenEnd] is everything frozen in passes <= this.
	frozenEnd int32
}

// frozenRec is one freeze event: which flow, at what rate.
type frozenRec struct {
	f    *Flow
	rate float64
}

// trajectory records a solve so the next single-flow-removal rebalance of
// the same component can replay its unaffected prefix. It is valid only
// if the solve terminated cleanly with every flow frozen and nothing
// about the component (membership, capacities) has changed since, except
// the one removal the warm start accounts for; every other mutation path
// (merge, rebuild, capacity change, warm start itself) invalidates it.
type trajectory struct {
	valid  bool
	nFlows int
	nRes   int
	passes []trajPass
	frozen []frozenRec
	// loads holds len(passes) rows of nRes values: resource loads after
	// each pass, in component resource order. Row p is the handoff state
	// for a warm start that replays passes [0, p].
	loads []float64
}

// solver holds the scratch state of the incremental waterfill. Each
// Network owns one (workers in a parallel campaign have private
// Networks, so scratch must not be package-level); FairShare and tests
// use a throwaway instance via the package-level solve.
type solver struct {
	// unfrozen is the compacted still-growing flow list as indices into
	// the solve's input flow slice, always order-preserving. Indices
	// rather than pointers keep the per-pass compaction writes free of GC
	// write barriers — on small components the barrier traffic of pointer
	// scratch costs more than the solve itself.
	unfrozen []int32
	// capped is the capped flows in ascending (Cap, Name, seq) order;
	// capped[capHead:] starts at the cap frontier. For component solves it
	// aliases the component's incrementally maintained list (never
	// written); frozen entries are not compacted out — the head cursor
	// advances past them, and the freeze prefix walk skips them — so
	// maintaining the frontier costs O(freezes) total rather than
	// O(capped) per pass.
	capped  []*Flow
	capHead int
	// cappedBuf backs capped for ad hoc (FairShare) inputs that arrive
	// without a pre-sorted list.
	cappedBuf []*Flow
	// cands is the compacted candidate bottleneck list as indices into
	// the solve's input resource slice, always order-preserving.
	cands []int32
	// indexed is true when Resource.users is maintained for the input
	// (Network solves); false for ad hoc FairShare flow sets, which fall
	// back to the usesRes scan.
	indexed bool

	fill   float64
	active int

	// stats, when non-nil, receives per-pass activity counts (shared
	// with the owning Network; see Network.SetStats). It never feeds back
	// into the solve's arithmetic.
	stats *Stats
	// lastLive and lastReplayed record the previous solve's cost — live
	// passes run and recorded passes replayed by a warm start — for the
	// Network's solve observer; lastGroups records the rack-local group
	// count when the previous solve took the hierarchical path (0 for flat
	// and warm-started solves).
	lastLive     int
	lastReplayed int
	lastGroups   int
}

// capOrder sorts capped flows by cap, tie-broken by the canonical flow
// order. Ties never influence arithmetic (equal caps produce bitwise
// equal capDeltas and freeze together); the tie-break just keeps the
// layout deterministic.
func capOrder(a, b *Flow) int {
	switch {
	case a.Cap < b.Cap:
		return -1
	case a.Cap > b.Cap:
		return 1
	}
	if a.Name != b.Name {
		if a.Name < b.Name {
			return -1
		}
		return 1
	}
	switch {
	case a.seq < b.seq:
		return -1
	case a.seq > b.seq:
		return 1
	}
	return 0
}

// solve assigns weighted max-min fair rates to the flows in place,
// performing bit-for-bit the same floating-point operations as
// solveReference on the same input. resources must contain every
// resource the flows touch, in registration order. capped, when non-nil,
// must be exactly the flows with Cap > 0 in capOrder (components maintain
// it incrementally; passing it skips a per-solve sort); nil means build
// and sort it here. If rec is non-nil the solve records its trajectory
// there (marking it valid only on clean termination with every flow
// frozen).
func (s *solver) solve(flows []*Flow, resources []*Resource, capped []*Flow, rec *trajectory) {
	if rec != nil {
		rec.valid = false
		rec.passes = rec.passes[:0]
		rec.frozen = rec.frozen[:0]
		rec.loads = rec.loads[:0]
	}
	for _, f := range flows {
		f.frozen = false
		f.rate = 0
		f.fpass = fpassNever
	}
	for _, r := range resources {
		r.load = 0
	}
	s.fill = 0
	s.active = len(flows)
	s.unfrozen = s.unfrozen[:0]
	for i := range flows {
		s.unfrozen = append(s.unfrozen, int32(i))
	}
	if capped != nil {
		s.capped = capped
	} else {
		s.cappedBuf = s.cappedBuf[:0]
		for _, f := range flows {
			if f.Cap > 0 {
				s.cappedBuf = append(s.cappedBuf, f)
			}
		}
		slices.SortFunc(s.cappedBuf, capOrder)
		s.capped = s.cappedBuf
	}
	s.capHead = 0
	s.cands = s.cands[:0]
	for i := range resources {
		s.cands = append(s.cands, int32(i))
	}
	s.run(flows, resources, 0, rec)
}

// run executes waterfill passes starting at pass number iter, against
// already-initialized solver state (fill, active, unfrozen, capped,
// cands, per-resource loads), then assigns the final fill to whatever
// stayed unfrozen. Cold solves enter with iter 0; warm starts enter at
// the first pass after the replayed prefix.
func (s *solver) run(flows []*Flow, resources []*Resource, iter int, rec *trajectory) {
	startIter := iter
	maxIter := len(flows) + len(resources) + 1
	for ; s.active > 0 && iter <= maxIter; iter++ {
		// Per-resource demand of the unfrozen flows, accumulated in flow
		// order — the same addition sequence the reference performs.
		// Flows frozen by the previous pass are compacted out during the
		// same walk (skipping them preserves the addition order), so each
		// pass makes exactly one sweep over the still-growing flows.
		for _, ri := range s.cands {
			resources[ri].sumW = 0
		}
		k := 0
		for _, fi := range s.unfrozen {
			f := flows[fi]
			if f.frozen {
				continue
			}
			s.unfrozen[k] = fi
			k++
			for i := range f.uses {
				f.uses[i].res.sumW += f.uses[i].w
			}
		}
		s.unfrozen = s.unfrozen[:k]
		// Bottleneck search over the surviving candidates; resources with
		// no unfrozen user are dropped for good (flows never unfreeze).
		delta := math.Inf(1)
		var bottleneck *Resource
		k = 0
		for _, ri := range s.cands {
			r := resources[ri]
			if r.sumW == 0 {
				continue
			}
			s.cands[k] = ri
			k++
			if d := (r.capacity - r.load) / r.sumW; d < delta {
				delta = d
				bottleneck = r
			}
		}
		s.cands = s.cands[:k]
		// Cap frontier: advance the head cursor past frozen entries; the
		// head is then the minimum unfrozen cap. IEEE subtraction is
		// monotonic, so minCap - fill equals the reference's minimum over
		// all unfrozen capped flows bit for bit.
		for s.capHead < len(s.capped) && s.capped[s.capHead].frozen {
			s.capHead++
		}
		capDelta := math.Inf(1)
		var minCap float64
		minCapDup := false
		if s.capHead < len(s.capped) {
			minCap = s.capped[s.capHead].Cap
			capDelta = minCap - s.fill
			// A duplicate frontier holder is any other unfrozen flow at the
			// same cap; equal-cap flows freeze in the same pass, so this
			// scan rarely moves more than one entry.
			for j := s.capHead + 1; j < len(s.capped) && s.capped[j].Cap == minCap; j++ {
				if !s.capped[j].frozen {
					minCapDup = true
					break
				}
			}
		}
		if math.IsInf(delta, 1) && math.IsInf(capDelta, 1) {
			// No binding constraint; mirror the reference's guard.
			break
		}
		step := math.Min(delta, capDelta)
		if step < 0 {
			step = 0
		}
		s.fill += step
		for _, ri := range s.cands {
			r := resources[ri]
			r.load += r.sumW * step
		}
		before := s.active
		capFired := capDelta <= delta
		resFired := delta <= capDelta && bottleneck != nil
		if capFired {
			// The capped list is Cap-ascending, so the flows at or below
			// the tolerance form a prefix (some already frozen by earlier
			// resource passes and skipped here).
			for j := s.capHead; j < len(s.capped); j++ {
				f := s.capped[j]
				if f.Cap > s.fill+1e-12 {
					break
				}
				if !f.frozen {
					s.freeze(f, f.Cap, iter, rec)
				}
			}
		}
		if resFired {
			if s.indexed {
				for i := range bottleneck.users {
					if f := bottleneck.users[i].f; !f.frozen {
						s.freeze(f, s.fill, iter, rec)
					}
				}
			} else {
				for _, fi := range s.unfrozen {
					if f := flows[fi]; !f.frozen && f.usesRes(bottleneck) {
						s.freeze(f, s.fill, iter, rec)
					}
				}
			}
		}
		if rec != nil {
			rec.passes = append(rec.passes, trajPass{
				step:       step,
				fill:       s.fill,
				minCap:     minCap,
				minCapDup:  minCapDup,
				capFired:   capFired,
				resFired:   resFired,
				bottleneck: bottleneck,
				frozenEnd:  int32(len(rec.frozen)),
			})
			for _, r := range resources {
				rec.loads = append(rec.loads, r.load)
			}
		}
		if s.stats != nil {
			s.stats.Passes++
			s.stats.FreezesPerPass.Observe(uint64(before - s.active))
		}
		if s.active == before && step == 0 {
			// Nothing froze and the fill did not move: every further pass
			// would replay this state. Same early exit as the reference.
			break
		}
	}
	s.lastLive = iter - startIter
	// Flows frozen by the final pass are compacted lazily, so skip them.
	for _, fi := range s.unfrozen {
		if f := flows[fi]; !f.frozen {
			f.rate = s.fill
		}
	}
	if rec != nil {
		// A trajectory is replayable only if the solve ran to a clean
		// fixpoint with every flow frozen; iteration-cap and stall exits
		// leave unfrozen flows whose recorded state a warm start could
		// not trust.
		rec.valid = s.active == 0
		rec.nFlows = len(flows)
		rec.nRes = len(resources)
	}
}

// freeze pins f at rate, recording the freeze when rec is non-nil.
func (s *solver) freeze(f *Flow, rate float64, pass int, rec *trajectory) {
	f.frozen = true
	f.rate = rate
	s.active--
	if rec != nil {
		f.fpass = int32(pass)
		rec.frozen = append(rec.frozen, frozenRec{f: f, rate: rate})
	}
}

// warmSolve re-solves a component from which exactly one flow (removed)
// has departed since traj was recorded, replaying the prefix of recorded
// passes the departure provably cannot have changed and running the live
// loop only from the first genuinely divergent pass. It returns false —
// leaving all flow state untouched — when no prefix is provably safe and
// the caller must run a cold solve.
//
// Safety argument. Removing a flow can only raise resource headroom:
// with the same fill and the same frozen set (minus removed), every
// resource r the removed flow touched has load' <= load and sumW' <=
// sumW (the per-pass sums lose only non-negative terms from an
// order-preserving summation, and IEEE addition, subtraction and
// division are monotonic), so d' = (cap - load')/sumW' >= d holds
// *bitwise*, while every untouched resource keeps bit-identical load,
// sumW and d. A recorded pass therefore replays exactly unless its
// binding constraint involved the removed flow:
//
//   - resFired with bottleneck in removed's usage vector: the argmin's
//     operands changed. (For any untouched bottleneck b, candidates
//     scanned before b had d > delta strictly — first-wins argmin — and
//     their d only grew, so b stays the first minimum with bit-identical
//     delta.)
//   - capFired while removed was still unfrozen and alone at the cap
//     frontier: capDelta = minCap - fill came from removed.Cap, and the
//     remaining minimum is larger. A duplicate holder keeps capDelta
//     bit-identical, so the pass replays.
//
// The scan stops at the first such pass; everything before it froze the
// same flows (minus removed) at the same rates with the same fill.
func (s *solver) warmSolve(flows []*Flow, resources []*Resource, capped []*Flow, traj *trajectory, removed *Flow) bool {
	if !traj.valid || traj.nRes != len(resources) || traj.nFlows != len(flows)+1 {
		return false
	}
	h := 0
	for h < len(traj.passes) {
		p := &traj.passes[h]
		if p.resFired && removed.usesRes(p.bottleneck) {
			break
		}
		if p.capFired && removed.Cap > 0 && removed.fpass >= int32(h) &&
			removed.Cap <= p.minCap && !p.minCapDup {
			break
		}
		h++
	}
	if h == 0 {
		return false
	}
	// Hand off resource loads as of the end of pass h-1. Resources the
	// removed flow never touched carry bit-identical loads in both
	// trajectories: read them from the snapshot. Touched resources are
	// re-derived exactly as a cold solve on the surviving flows would
	// have built them: per pass, sum the weights of the surviving flows
	// still unfrozen at that pass in canonical flow order (flows is the
	// component list, which is kept in that order), then accumulate
	// sumW·step under the reference's sumW > 0 guard. The freeze passes
	// come from Flow.fpass, recorded by the cold solve and untouched
	// since. sumW doubles as the per-pass accumulator; the live loop
	// re-zeroes it before use.
	for i, r := range resources {
		if !removed.usesRes(r) {
			r.load = traj.loads[(h-1)*traj.nRes+i]
			continue
		}
		r.load = 0
	}
	for p := 0; p < h; p++ {
		for i := range removed.uses {
			removed.uses[i].res.sumW = 0
		}
		for _, f := range flows {
			if f.fpass < int32(p) {
				continue
			}
			for i := range f.uses {
				if r := f.uses[i].res; removed.usesRes(r) {
					r.sumW += f.uses[i].w
				}
			}
		}
		for i := range removed.uses {
			if r := removed.uses[i].res; r.sumW > 0 {
				r.load += r.sumW * traj.passes[p].step
			}
		}
	}
	// Replay the prefix freezes onto the surviving flows.
	for _, f := range flows {
		f.frozen = false
		f.rate = 0
	}
	s.active = len(flows)
	for i := int32(0); i < traj.passes[h-1].frozenEnd; i++ {
		fr := traj.frozen[i]
		if fr.f == removed {
			continue
		}
		fr.f.frozen = true
		fr.f.rate = fr.rate
		s.active--
	}
	s.fill = traj.passes[h-1].fill
	s.unfrozen = s.unfrozen[:0]
	for i, f := range flows {
		if !f.frozen {
			s.unfrozen = append(s.unfrozen, int32(i))
		}
	}
	// The component's cap-ordered list (removed already deleted from it)
	// is the live cap frontier as-is: the head cursor and freeze walk
	// skip the prefix-frozen entries.
	s.capped = capped
	s.capHead = 0
	// The live loop's first pass rebuilds sumW and re-compacts, so the
	// candidate list can simply start as the full resource set.
	s.cands = s.cands[:0]
	for i := range resources {
		s.cands = append(s.cands, int32(i))
	}
	s.lastReplayed = h
	s.run(flows, resources, h, nil)
	return true
}

// solve is the package-level entry point used by FairShare and tests: a
// throwaway unindexed solver, no trajectory, local cap sort.
func solve(flows []*Flow, resources []*Resource) {
	var s solver
	s.solve(flows, resources, nil, nil)
}
