// Package obs is the simulator's observability layer: a metrics registry
// (counters, high-water gauges, log-2 histograms) and a structured event
// tracer emitting Chrome trace-event JSON plus per-resource utilization
// timelines.
//
// Design constraints, in order of importance:
//
//  1. Zero cost when disabled. The simulation packages never call into
//     this package on their hot paths; they keep plain per-deployment
//     Stats structs behind a single nil pointer check, and the glue layer
//     (internal/cluster) merges those structs into a Registry after each
//     repetition. Disabled instrumentation therefore compiles to one
//     pointer comparison per instrumented site.
//  2. Never perturb simulation numerics. Everything here is read-only
//     with respect to simulation state: instruments count events and copy
//     values; they draw no randomness and schedule nothing. out/ CSVs are
//     byte-identical with observability on or off.
//  3. Deterministic output. Exported JSON sorts every name; merging
//     integer-valued observations into float64 or uint64 accumulators is
//     exactly associative below 2^53, so parallel campaign workers
//     flushing in any order produce identical files. The only inherently
//     nondeterministic metrics — wall-clock timings, sync.Pool hit
//     rates — are namespaced under "runtime/" so consumers (and the
//     determinism tests) can filter them.
//
// This package is a leaf: it imports only the standard library, so every
// simulation layer may depend on it without cycles.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
)

// RuntimePrefix namespaces metrics that reflect the host process rather
// than the simulation — wall-clock timings, sync.Pool hit rates — which
// are the only registry contents not reproducible run to run. Determinism
// checks compare registries with this prefix filtered out.
const RuntimePrefix = "runtime/"

// WalltimePrefix namespaces the wall-clock subset of the runtime metrics.
const WalltimePrefix = RuntimePrefix + "walltime/"

// Log2Buckets is the fixed bucket count of every histogram: bucket i
// holds observations v with bits.Len64(v) == i, i.e. upper bounds
// 0, 1, 3, 7, ..., 2^63-1. 65 buckets cover the full uint64 range, so
// bucketing never branches on overflow.
const Log2Buckets = 65

// Log2Hist is a plain (single-goroutine) histogram with fixed log-2
// buckets. Simulation packages embed it in their per-deployment Stats
// structs; it is merged into a shared Registry via Registry.MergeHist
// after the repetition finishes, so the hot path performs two integer
// adds and one increment, with no atomics and no map lookups.
type Log2Hist struct {
	Count   uint64
	Sum     uint64
	Buckets [Log2Buckets]uint64
}

// Observe records one value.
func (h *Log2Hist) Observe(v uint64) {
	h.Count++
	h.Sum += v
	h.Buckets[bits.Len64(v)]++
}

// Merge folds src into h by bucket-wise addition (order-independent, like
// every accumulation in this package).
func (h *Log2Hist) Merge(src *Log2Hist) {
	h.Count += src.Count
	h.Sum += src.Sum
	for i, b := range src.Buckets {
		h.Buckets[i] += b
	}
}

// histogram is the Registry's accumulated (mergeable) histogram state.
type histogram struct {
	count   uint64
	sum     uint64
	buckets [Log2Buckets]uint64
}

// observe records one value (collector-shard hot path; no lock).
func (h *histogram) observe(v uint64) {
	h.count++
	h.sum += v
	h.buckets[bits.Len64(v)]++
}

// Registry accumulates named metrics from any number of repetitions (and
// goroutines). It is not a hot-path structure: simulation packages record
// into plain Stats structs and flush here once per repetition, so a mutex
// around plain maps is both simple and cheap. All methods are safe on a
// nil *Registry (they do nothing), so call sites do not need their own
// enabled checks.
type Registry struct {
	mu       sync.Mutex
	counters map[string]uint64
	maxima   map[string]uint64
	hists    map[string]*histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]uint64),
		maxima:   make(map[string]uint64),
		hists:    make(map[string]*histogram),
	}
}

// Add increments the named counter by v.
func (r *Registry) Add(name string, v uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += v
	r.mu.Unlock()
}

// Max raises the named high-water gauge to v if v exceeds it.
func (r *Registry) Max(name string, v uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if v > r.maxima[name] {
		r.maxima[name] = v
	}
	r.mu.Unlock()
}

// Observe records one value into the named histogram.
func (r *Registry) Observe(name string, v uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &histogram{}
		r.hists[name] = h
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(v)]++
	r.mu.Unlock()
}

// MergeHist folds a repetition's plain histogram into the named registry
// histogram. Bucket-wise uint64 addition is associative, so the merged
// state does not depend on the order parallel workers flush in.
func (r *Registry) MergeHist(name string, src *Log2Hist) {
	if r == nil || src.Count == 0 {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &histogram{}
		r.hists[name] = h
	}
	h.count += src.Count
	h.sum += src.Sum
	for i, b := range src.Buckets {
		h.buckets[i] += b
	}
	r.mu.Unlock()
}

// Counter returns the named counter's current value (0 if absent).
func (r *Registry) Counter(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// MetricValue is one named counter or high-water value in a Snapshot.
type MetricValue struct {
	Name  string
	Value uint64
}

// HistValue is one named histogram in a Snapshot.
type HistValue struct {
	Name    string
	Count   uint64
	Sum     uint64
	Buckets [Log2Buckets]uint64
}

// BucketBound returns the inclusive upper bound of log-2 bucket i — the
// largest v with bits.Len64(v) == i (0 for bucket 0).
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1<<uint(i) - 1
}

// Snapshot is the sorted, immutable export view every sink renders:
// counters, maxima and histograms in ascending name order, plus (when
// taken through a Pipeline) the campaign progress table. The explicit
// slice ordering — rather than Go maps whose iteration order is
// randomized — is what pins every encoder's output byte-for-byte; the
// golden-file tests in this package enforce it per encoding.
type Snapshot struct {
	Counters []MetricValue
	Maxima   []MetricValue
	Hists    []HistValue
	Runs     []RunStatus
}

// Snapshot assembles the registry's sorted export view. Safe on a nil
// registry (returns an empty snapshot).
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap.Counters = make([]MetricValue, 0, len(r.counters))
	for k, v := range r.counters {
		snap.Counters = append(snap.Counters, MetricValue{Name: k, Value: v})
	}
	snap.Maxima = make([]MetricValue, 0, len(r.maxima))
	for k, v := range r.maxima {
		snap.Maxima = append(snap.Maxima, MetricValue{Name: k, Value: v})
	}
	snap.Hists = make([]HistValue, 0, len(r.hists))
	for k, h := range r.hists {
		snap.Hists = append(snap.Hists, HistValue{Name: k, Count: h.count, Sum: h.sum, Buckets: h.buckets})
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Maxima, func(i, j int) bool { return snap.Maxima[i].Name < snap.Maxima[j].Name })
	sort.Slice(snap.Hists, func(i, j int) bool { return snap.Hists[i].Name < snap.Hists[j].Name })
	return snap
}

// WriteJSON writes the registry as a deterministic JSON document. The
// encoder walks the sorted Snapshot and emits every key explicitly — no
// map iteration feeds the output — so two registries with equal contents
// serialize byte-identically regardless of insertion or merge order
// (pinned by TestWriteJSONGolden).
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	return EncodeJSON(w, r.Snapshot())
}

// Summary renders a human-readable metrics table (sorted by name), the
// stderr companion of the JSON export. Histograms show count, mean and
// max-populated bucket bound.
func (r *Registry) Summary() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	names := make([]string, 0, len(r.counters))
	for k := range r.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Fprintf(&b, "%-52s %14s\n", "counter", "value")
		for _, k := range names {
			fmt.Fprintf(&b, "%-52s %14d\n", k, r.counters[k])
		}
	}
	names = names[:0]
	for k := range r.maxima {
		names = append(names, k)
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Fprintf(&b, "%-52s %14s\n", "high-water", "max")
		for _, k := range names {
			fmt.Fprintf(&b, "%-52s %14d\n", k, r.maxima[k])
		}
	}
	names = names[:0]
	for k := range r.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Fprintf(&b, "%-52s %14s %14s %14s\n", "histogram", "count", "mean", "p100<=")
		for _, k := range names {
			h := r.hists[k]
			mean := 0.0
			if h.count > 0 {
				mean = float64(h.sum) / float64(h.count)
			}
			top := 0
			for i, cnt := range h.buckets {
				if cnt > 0 {
					top = i
				}
			}
			var hi uint64
			if top > 0 {
				hi = 1<<uint(top) - 1
			}
			fmt.Fprintf(&b, "%-52s %14d %14.2f %14d\n", k, h.count, mean, hi)
		}
	}
	return b.String()
}
