package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/simnet"
)

// Interference models the "transient events in the machine that would
// temporarily lower network and/or I/O performance" that the execution
// protocol is designed to survive (§III-C item ii): with probability Prob
// per repetition, a randomly chosen server NIC (or, when the platform has
// none, a storage target) loses (1-Severity) of its capacity for Duration
// seconds, starting at a random point inside the run.
type Interference struct {
	// Prob is the per-repetition probability of an interference event.
	Prob float64
	// Severity is the remaining capacity fraction during the event
	// (e.g. 0.5 = half capacity).
	Severity float64
	// Duration is the event length in virtual seconds.
	Duration float64
	// MaxStart bounds the event's random start offset from the run's
	// beginning (default 5 s).
	MaxStart float64
}

// Validate reports configuration errors.
func (i Interference) Validate() error {
	if i.Prob < 0 || i.Prob > 1 {
		return fmt.Errorf("experiments: interference Prob must be in [0,1]")
	}
	if i.Severity <= 0 || i.Severity > 1 {
		return fmt.Errorf("experiments: interference Severity must be in (0,1]")
	}
	if i.Duration < 0 || i.MaxStart < 0 {
		return fmt.Errorf("experiments: negative interference timing")
	}
	return nil
}

// arm schedules at most one interference event for the repetition
// starting now on the repetition's private deployment. It returns
// immediately; the event applies and reverts itself on the simulation
// clock. Capacity is restored to the *current* (jittered) value, so arm
// must run after ReJitter.
func (i Interference) arm(dep *cluster.Deployment, src *rng.Source) {
	if i.Prob == 0 || src.Float64() >= i.Prob {
		return
	}
	// Pick a victim resource: a server NIC when present, else a target.
	var victim *simnet.Resource
	hosts := dep.FS.Storage().Hosts()
	if nic := dep.FS.ServerNIC(hosts[src.Intn(len(hosts))]); nic != nil {
		victim = nic
	} else {
		targets := dep.FS.Storage().Targets()
		victim = targets[src.Intn(len(targets))].Resource()
	}
	maxStart := i.MaxStart
	if maxStart == 0 {
		maxStart = 5
	}
	start := src.UniformRange(0, maxStart)
	sim := dep.Sim
	sim.After(start, func() {
		before := victim.Capacity()
		degraded := before * i.Severity
		dep.Net.SetCapacity(victim, degraded)
		sim.After(i.Duration, func() {
			// Restore only if nothing else (a fault recovery in the same
			// repetition) already rewrote the capacity.
			if victim.Capacity() == degraded {
				dep.Net.SetCapacity(victim, before)
			}
		})
	})
}

// PolicyComparison answers the paper's §I motivation question: would a
// policy that adapts each application's stripe count (to avoid sharing
// targets) beat the simple "everyone uses the maximum" default?
type PolicyComparison struct {
	// MaxCountAggregate is the mean Equation-1 aggregate when every
	// application uses all targets.
	MaxCountAggregate float64
	// AdaptedAggregate is the mean aggregate when each application gets
	// targets/apps targets (disjoint by construction under round-robin).
	AdaptedAggregate float64
	// Gain is MaxCountAggregate/AdaptedAggregate - 1: positive or ~zero
	// means the adaptive policy buys nothing (the paper's conclusion).
	Gain float64
}

// ComparePolicies runs both policies with `apps` concurrent applications
// (8 nodes x 8 ppn, 32 GiB each) on a fresh scenario-2 deployment.
func ComparePolicies(apps int, opts Options) (PolicyComparison, error) {
	if apps <= 1 {
		return PolicyComparison{}, fmt.Errorf("experiments: need at least 2 applications")
	}
	p := cluster.PlaFRIM(scenario2())
	total := p.FS.Hosts * p.FS.TargetsPerHost
	adapted := total / apps
	if adapted < 1 {
		adapted = 1
	}
	cfgs := []Config{
		{Label: "max", Params: baseParams(8, 8, total, 32*gib()), Apps: apps},
		{Label: "adapted", Params: baseParams(8, 8, adapted, 32*gib()), Apps: apps},
	}
	recs, err := Campaign{
		Platform: p, Proto: opts.protocol(), Workers: opts.Workers,
		Metrics: opts.Metrics, Tracer: opts.Tracer,
	}.Run(cfgs)
	if err != nil {
		return PolicyComparison{}, err
	}
	byLabel := GroupByLabel(recs)
	var out PolicyComparison
	out.MaxCountAggregate = meanOf(Aggregates(byLabel["max"]))
	out.AdaptedAggregate = meanOf(Aggregates(byLabel["adapted"]))
	if out.AdaptedAggregate > 0 {
		out.Gain = out.MaxCountAggregate/out.AdaptedAggregate - 1
	}
	return out, nil
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func gib() int64 { return 1 << 30 }

func scenario2() cluster.Scenario { return cluster.Scenario2Omnipath }
