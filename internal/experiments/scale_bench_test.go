package experiments

import (
	"testing"

	"repro/internal/cluster"
)

// churn10kTopo floods the large fat tree: arrivals far faster than
// completions, so nearly every job is still in flight when the last one
// arrives — north of 10k concurrent flows at peak.
var churn10kTopo = scaleTopo{
	name: "churn10k",
	spec: cluster.FatTreeSpec{
		Racks: 12, OSSPerRack: 4, TargetsPerOSS: 8,
		LinkRate: 2500, UplinkRate: 10000,
	},
	meanGap:     0.004,
	nodesBase:   4,
	nodesSpread: 4,
}

const churn10kJobs = 4000

// benchmarkScaleChurn runs the full 10k-flow churn once per iteration and
// reports solver work per simulated event. The acceptance numbers live in
// BENCH_PR7.json as informational entries (not CI-gated — a full churn is
// too long for the bench-smoke job): batched mode must sustain >=10k
// concurrent flows and improve ns per event by >=3x over unbatched.
// Run with -benchtime 1x.
func benchmarkScaleChurn(b *testing.B, mode string, workers int) {
	for i := 0; i < b.N; i++ {
		row, err := runScaleCell(churn10kTopo, mode, workers, churn10kJobs, 17)
		if err != nil {
			b.Fatal(err)
		}
		if row.PeakFlows < 10_000 {
			b.Fatalf("peak concurrent flows = %d, want >= 10000", row.PeakFlows)
		}
		b.ReportMetric(row.WallSec*1e9/float64(row.Events), "ns/event")
		b.ReportMetric(row.SolvesPerEvent, "solves/event")
		b.ReportMetric(float64(row.PeakFlows), "peak-flows")
	}
}

func BenchmarkScaleChurn10k(b *testing.B) {
	b.Run("unbatched", func(b *testing.B) { benchmarkScaleChurn(b, "unbatched", 0) })
	b.Run("batched", func(b *testing.B) { benchmarkScaleChurn(b, "batched", scaleBatchWorkers) })
}
