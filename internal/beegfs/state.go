package beegfs

// Reachability is the management service's per-target liveness verdict, the
// three-state machine real BeeGFS drives from storage-server heartbeats:
//
//	Online ──(HeartbeatTimeout missed)──▶ ProbablyOffline ──(OfflineTimeout)──▶ Offline
//	   ▲                                                                          │
//	   └────────────────────── heartbeat received ────────────────────────────────┘
//
// Only the Offline verdict makes clients stop using a target for in-flight
// I/O; ProbablyOffline is a hedge consulted at file-create time so new files
// avoid a suspect target before the verdict is confirmed. With heartbeats
// disabled (HeartbeatInterval = 0, the default) the injector flips targets
// Online⇄Offline directly and ProbablyOffline never occurs — the legacy
// omniscient model.
type Reachability int

const (
	// Online means heartbeats are arriving on schedule.
	Online Reachability = iota
	// ProbablyOffline means HeartbeatTimeout elapsed without a heartbeat;
	// the target is shed for new creates but still tried for in-flight I/O.
	ProbablyOffline
	// Offline means OfflineTimeout elapsed: the mgmtd publishes the target
	// as down, clients stop selecting it, and buddy-mirror failover applies.
	Offline
)

// String implements fmt.Stringer.
func (r Reachability) String() string {
	switch r {
	case Online:
		return "online"
	case ProbablyOffline:
		return "probably-offline"
	case Offline:
		return "offline"
	default:
		return "unknown-reachability"
	}
}

// Consistency is the management service's per-target data-trust verdict,
// orthogonal to reachability: a target can be reachable yet hold stale
// mirror chunks (NeedsResync after a degraded-write episode) or be
// administratively condemned (Bad). It gates the resync machinery — a
// NeedsResync secondary is rebuilt by a resync flow once both buddies are
// reachable, while a Bad target is never resynced to and never receives
// new files.
type Consistency int

const (
	// Good means the target's chunks are trusted.
	Good Consistency = iota
	// NeedsResync means the target missed writes while unreachable and a
	// buddy resync must run before its mirror chunks are trusted again.
	NeedsResync
	// Bad means the target is condemned: excluded from new files and from
	// resync until an administrator intervenes.
	Bad
)

// String implements fmt.Stringer.
func (c Consistency) String() string {
	switch c {
	case Good:
		return "good"
	case NeedsResync:
		return "needs-resync"
	case Bad:
		return "bad"
	default:
		return "unknown-consistency"
	}
}
