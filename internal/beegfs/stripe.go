package beegfs

import "fmt"

// KiB, MiB and GiB are byte-size helpers used throughout the repo.
const (
	KiB int64 = 1024
	MiB int64 = 1024 * KiB
	GiB int64 = 1024 * MiB
)

// StripePattern describes how a file is striped: the number of storage
// targets used (the stripe count — the paper's central parameter) and the
// chunk size (PlaFRIM default: 512 KiB).
type StripePattern struct {
	Count     int
	ChunkSize int64
}

// Validate reports pattern errors.
func (p StripePattern) Validate() error {
	if p.Count <= 0 {
		return fmt.Errorf("beegfs: stripe count must be positive, got %d", p.Count)
	}
	if p.ChunkSize <= 0 {
		return fmt.Errorf("beegfs: chunk size must be positive, got %d", p.ChunkSize)
	}
	return nil
}

// TargetOfChunk returns the index (into the file's target list) storing the
// given chunk.
func (p StripePattern) TargetOfChunk(chunk int64) int {
	return int(chunk % int64(p.Count))
}

// ChunkOfOffset returns the chunk index containing the byte offset.
func (p StripePattern) ChunkOfOffset(off int64) int64 {
	return off / p.ChunkSize
}

// RegionDistribution returns, for a contiguous byte region [off, off+n) of
// a file striped with pattern p, the number of bytes that land on each of
// the p.Count targets (indexed by position in the file's target list).
//
// The computation is exact — it handles partial first and last chunks and
// regions shorter than one full stripe — because the allocation analysis
// (which server receives which fraction of the traffic) is the paper's key
// quantity.
func (p StripePattern) RegionDistribution(off, n int64) ([]int64, error) {
	dist := make([]int64, p.Count)
	if err := p.AddRegionDistribution(dist, off, n); err != nil {
		return nil, err
	}
	return dist, nil
}

// AddRegionDistribution accumulates the region's per-target byte counts
// into dist (len must be p.Count), sparing hot paths the per-region slice
// RegionDistribution allocates.
func (p StripePattern) AddRegionDistribution(dist []int64, off, n int64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if off < 0 || n < 0 {
		return fmt.Errorf("beegfs: negative region off=%d n=%d", off, n)
	}
	if n == 0 {
		return nil
	}
	stripeWidth := p.ChunkSize * int64(p.Count)
	// Whole stripes fully covered contribute ChunkSize to every target.
	// Work chunk by chunk only on the ragged edges.
	firstChunk := off / p.ChunkSize
	lastChunk := (off + n - 1) / p.ChunkSize
	if lastChunk-firstChunk < 2*int64(p.Count) {
		// Small region: walk the chunks directly.
		for c := firstChunk; c <= lastChunk; c++ {
			lo := c * p.ChunkSize
			hi := lo + p.ChunkSize
			if lo < off {
				lo = off
			}
			if hi > off+n {
				hi = off + n
			}
			dist[p.TargetOfChunk(c)] += hi - lo
		}
		return nil
	}
	// Large region: peel the ragged head up to a stripe boundary, the
	// ragged tail from the last stripe boundary, and account the aligned
	// middle arithmetically.
	headEnd := ((off + stripeWidth - 1) / stripeWidth) * stripeWidth
	tailStart := ((off + n) / stripeWidth) * stripeWidth
	for c := firstChunk; c*p.ChunkSize < headEnd; c++ {
		lo := c * p.ChunkSize
		hi := lo + p.ChunkSize
		if lo < off {
			lo = off
		}
		dist[p.TargetOfChunk(c)] += hi - lo
	}
	for c := tailStart / p.ChunkSize; c <= lastChunk; c++ {
		lo := c * p.ChunkSize
		hi := lo + p.ChunkSize
		if hi > off+n {
			hi = off + n
		}
		dist[p.TargetOfChunk(c)] += hi - lo
	}
	if tailStart > headEnd {
		perTarget := (tailStart - headEnd) / int64(p.Count)
		for i := range dist {
			dist[i] += perTarget
		}
	}
	return nil
}
