// Command benchjson converts `go test -bench` output read from stdin into
// a stable JSON document, so benchmark runs can be archived and diffed
// across commits (BENCH_PR2.json) and smoke-checked in CI:
//
//	go test -bench=. -benchmem -benchtime=1x ./... | benchjson -o BENCH.json
//
// Each benchmark line becomes one entry recording the iteration count and
// every reported metric (ns/op, B/op, allocs/op and custom ones like
// MiB/s@32GiB) keyed by its unit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark result.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the full document.
type Doc struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []Entry           `json:"benchmarks"`
}

func main() {
	var (
		out  = flag.String("o", "", "output file (default stdout)")
		note = flag.String("note", "", "free-form note stored in the context block")
	)
	flag.Parse()
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *note != "" {
		if doc.Context == nil {
			doc.Context = map[string]string{}
		}
		doc.Context["note"] = *note
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output. Benchmark lines have the shape
//
//	BenchmarkName-8   	  1000	  316.2 ns/op	  0 B/op	  12 MiB/s
//
// i.e. a name, an iteration count, then (value, unit) pairs. Context lines
// (goos/goarch/pkg/cpu) are captured; everything else is ignored.
func parse(r io.Reader) (Doc, error) {
	doc := Doc{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if k, v, ok := strings.Cut(line, ": "); ok && (k == "goos" || k == "goarch" || k == "pkg" || k == "cpu") {
			// Several packages repeat goos/goarch/cpu; the last pkg wins is
			// useless, so accumulate pkg values.
			if k == "pkg" && doc.Context["pkg"] != "" {
				doc.Context["pkg"] += " " + v
			} else {
				doc.Context[k] = v
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{
			Name:       strings.TrimSuffix(fields[0], cpuSuffix(fields[0])),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return Doc{}, fmt.Errorf("bad metric value %q in %q", fields[i], line)
			}
			e.Metrics[fields[i+1]] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, e)
	}
	if err := sc.Err(); err != nil {
		return Doc{}, err
	}
	if len(doc.Benchmarks) == 0 {
		return Doc{}, fmt.Errorf("no benchmark lines found on stdin")
	}
	sort.SliceStable(doc.Benchmarks, func(i, j int) bool {
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})
	if len(doc.Context) == 0 {
		doc.Context = nil
	}
	return doc, nil
}

// cpuSuffix returns the trailing "-N" GOMAXPROCS marker of a benchmark
// name, or "" when absent.
func cpuSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i:]
}
