// Package trace records flow-rate timelines from a live simulation — the
// quantitative version of the paper's Figure 9: which server/flow ran at
// what bandwidth, when, and why completion is staggered under unbalanced
// allocations.
//
// Attach a Recorder to a simnet.Network with
//
//	rec := trace.NewRecorder()
//	network.Observe(rec.Hook())
//
// and read back per-flow step series, the aggregate bandwidth timeline,
// and ASCII sparklines after (or during) the run.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/simkernel"
	"repro/internal/simnet"
)

// Point is one step of a rate timeline: the flow (or aggregate) ran at
// Rate from At until the next point's At.
type Point struct {
	At   float64
	Rate float64
}

// Recorder accumulates rate-change events.
type Recorder struct {
	// Filter, when non-nil, limits recording to flows whose name it
	// accepts.
	Filter func(name string) bool

	events map[string][]Point
	order  []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{events: make(map[string][]Point)}
}

// Hook adapts the recorder to simnet.Network.Observe.
func (r *Recorder) Hook() func(at simkernel.Time, f *simnet.Flow, rate float64) {
	return func(at simkernel.Time, f *simnet.Flow, rate float64) {
		r.Record(float64(at), f.Name, rate)
	}
}

// Record adds a rate-change event directly.
func (r *Recorder) Record(at float64, flow string, rate float64) {
	if r.Filter != nil && !r.Filter(flow) {
		return
	}
	if _, ok := r.events[flow]; !ok {
		r.order = append(r.order, flow)
	}
	pts := r.events[flow]
	if n := len(pts); n > 0 && pts[n-1].At == at {
		// Same-instant update supersedes the previous one.
		pts[n-1].Rate = rate
		r.events[flow] = pts
		return
	}
	r.events[flow] = append(pts, Point{At: at, Rate: rate})
}

// Flows returns the recorded flow names in first-seen order.
func (r *Recorder) Flows() []string {
	return append([]string(nil), r.order...)
}

// Series returns the step series of one flow (nil if unknown).
func (r *Recorder) Series(flow string) []Point {
	return append([]Point(nil), r.events[flow]...)
}

// Reset drops all recorded events.
func (r *Recorder) Reset() {
	r.events = make(map[string][]Point)
	r.order = nil
}

// Volume integrates a flow's step series up to time end, returning the
// bytes (in the series' rate unit x seconds) transferred.
func (r *Recorder) Volume(flow string, end float64) float64 {
	pts := r.events[flow]
	total := 0.0
	for i, p := range pts {
		stop := end
		if i+1 < len(pts) && pts[i+1].At < end {
			stop = pts[i+1].At
		}
		if stop > p.At {
			total += p.Rate * (stop - p.At)
		}
	}
	return total
}

// Aggregate returns the total-rate step series across all recorded flows.
func (r *Recorder) Aggregate() []Point {
	// Sweep over all change events in time order, maintaining per-flow
	// current rates.
	type change struct {
		at   float64
		flow string
		rate float64
		seq  int
	}
	// Walk flows in first-seen order, not map order: the sequence number
	// breaks same-timestamp ties, and same-instant float additions are not
	// associative, so a map-order walk could emit different totals for the
	// same recording across runs.
	var changes []change
	seq := 0
	for _, flow := range r.order {
		for _, p := range r.events[flow] {
			changes = append(changes, change{at: p.At, flow: flow, rate: p.Rate, seq: seq})
			seq++
		}
	}
	sort.Slice(changes, func(i, j int) bool {
		if changes[i].at != changes[j].at {
			return changes[i].at < changes[j].at
		}
		return changes[i].seq < changes[j].seq
	})
	current := make(map[string]float64)
	var out []Point
	total := 0.0
	for i, c := range changes {
		total += c.rate - current[c.flow]
		current[c.flow] = c.rate
		// Emit once per timestamp (after the last change at that time).
		if i+1 < len(changes) && changes[i+1].at == c.at {
			continue
		}
		if n := len(out); n > 0 && math.Abs(out[n-1].Rate-total) < 1e-12 {
			continue
		}
		out = append(out, Point{At: c.at, Rate: total})
	}
	return out
}

// Sparkline renders a flow's rate timeline as a fixed-width ASCII strip
// sampled uniformly over [0, end].
func (r *Recorder) Sparkline(flow string, end float64, width int) string {
	pts := r.events[flow]
	if len(pts) == 0 || width <= 0 || end <= 0 {
		return ""
	}
	levels := []byte(" .:-=+*#%@")
	maxRate := 0.0
	for _, p := range pts {
		if p.Rate > maxRate {
			maxRate = p.Rate
		}
	}
	if maxRate == 0 {
		return strings.Repeat(" ", width)
	}
	// Sample times ascend and pts is time-sorted, so one forward cursor
	// serves every column: O(points + width) instead of a full rescan of
	// the series per column.
	var b strings.Builder
	j, rate := 0, 0.0
	for i := 0; i < width; i++ {
		t := end * (float64(i) + 0.5) / float64(width)
		for j < len(pts) && pts[j].At <= t {
			rate = pts[j].Rate
			j++
		}
		lvl := int(rate / maxRate * float64(len(levels)-1))
		if lvl < 0 {
			lvl = 0
		}
		if lvl >= len(levels) {
			lvl = len(levels) - 1
		}
		b.WriteByte(levels[lvl])
	}
	return b.String()
}

// Summary renders one line per flow: name, completion time of its last
// event, transferred volume.
func (r *Recorder) Summary(end float64) string {
	var b strings.Builder
	for _, flow := range r.order {
		pts := r.events[flow]
		last := 0.0
		if len(pts) > 0 {
			last = pts[len(pts)-1].At
		}
		fmt.Fprintf(&b, "%-40s last-change %8.3fs volume %10.1f\n", flow, last, r.Volume(flow, end))
	}
	return b.String()
}
