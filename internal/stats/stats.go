// Package stats implements the statistical toolkit the paper's analysis
// relies on: descriptive summaries, quantiles and boxplot five-number
// summaries (Figures 8 and 10), histograms, a Welch two-sample t-test and
// Kolmogorov–Smirnov tests (Figure 13's "share all vs. share none"
// comparison), and a simple bimodality detector used to verify Figure 6a's
// bi-modal bandwidth distributions.
//
// Everything is implemented from scratch on the standard library.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a computation needs more samples
// than were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	SD     float64 // sample standard deviation (n-1 denominator)
	Var    float64 // sample variance
	Min    float64
	Max    float64
	Median float64
	Q1     float64
	Q3     float64
}

// Summarize computes descriptive statistics. It returns
// ErrInsufficientData for an empty sample; SD and Var are zero for a single
// observation.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrInsufficientData
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Var = ss / float64(s.N-1)
		s.SD = math.Sqrt(s.Var)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantileSorted(sorted, 0.5)
	s.Q1 = quantileSorted(sorted, 0.25)
	s.Q3 = quantileSorted(sorted, 0.75)
	return s, nil
}

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// SD returns the sample standard deviation (n-1), or 0 when fewer than two
// samples are provided.
func SD(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Quantile returns the p-quantile (0 <= p <= 1) using linear interpolation
// between order statistics (R type-7, the R default used by the paper's
// boxplots). It returns NaN for an empty sample and panics for p outside
// [0, 1].
func Quantile(xs []float64, p float64) float64 {
	if p < 0 || p > 1 {
		panic("stats: quantile p outside [0,1]")
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// BoxPlot is a five-number summary plus Tukey whiskers and outliers, as
// drawn in Figures 8 and 10.
type BoxPlot struct {
	Min, Q1, Median, Q3, Max float64
	// LowerWhisker and UpperWhisker are the most extreme data points within
	// 1.5 IQR of the box.
	LowerWhisker, UpperWhisker float64
	Outliers                   []float64
	N                          int
}

// NewBoxPlot computes a Tukey boxplot of the sample.
func NewBoxPlot(xs []float64) (BoxPlot, error) {
	if len(xs) == 0 {
		return BoxPlot{}, ErrInsufficientData
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	b := BoxPlot{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.LowerWhisker = b.Q3
	b.UpperWhisker = b.Q1
	for _, x := range sorted {
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
			continue
		}
		if x < b.LowerWhisker {
			b.LowerWhisker = x
		}
		if x > b.UpperWhisker {
			b.UpperWhisker = x
		}
	}
	return b, nil
}

// Histogram bins the sample into nbins equal-width bins over [min, max].
type Histogram struct {
	Edges  []float64 // len nbins+1
	Counts []int     // len nbins
}

// NewHistogram builds a histogram. nbins must be positive.
func NewHistogram(xs []float64, nbins int) (Histogram, error) {
	if nbins <= 0 {
		return Histogram{}, errors.New("stats: nbins must be positive")
	}
	if len(xs) == 0 {
		return Histogram{}, ErrInsufficientData
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1 // degenerate sample: one bin catches everything
	}
	h := Histogram{Edges: make([]float64, nbins+1), Counts: make([]int, nbins)}
	w := (hi - lo) / float64(nbins)
	for i := range h.Edges {
		h.Edges[i] = lo + w*float64(i)
	}
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		h.Counts[b]++
	}
	return h, nil
}

// Bimodal reports whether the sample looks bi-modal: it bins the data and
// looks for two well-separated populated regions with a sparse valley
// between them. This is deliberately a coarse check — it is used to verify
// the qualitative claim of Figure 6a (counts 2, 3, 5, 6 are bi-modal;
// counts 1, 4, 7, 8 are not), not to do rigorous density estimation.
//
// The test: bin into 10 bins; find the tallest bin, then the tallest bin
// at distance >= 3 bins from it; both peaks must hold >= 15% of the mass,
// some bin between them must hold <= half of the smaller peak, and the
// peaks must sit at least 1.6 sample standard deviations apart (a genuine
// 50/50 two-mode mixture separates its modes by ~2 SD; unimodal noise
// cannot).
func Bimodal(xs []float64) bool {
	if len(xs) < 10 {
		return false
	}
	// Scale bin count with sample size so sparse samples don't fragment a
	// single mode into spurious peaks.
	nbins := len(xs) / 6
	if nbins < 5 {
		nbins = 5
	}
	if nbins > 10 {
		nbins = 10
	}
	h, err := NewHistogram(xs, nbins)
	if err != nil {
		return false
	}
	n := len(xs)
	// Tallest bin.
	p1 := 0
	for i, c := range h.Counts {
		if c > h.Counts[p1] {
			p1 = i
		}
	}
	// Tallest bin at least 3 bins away.
	p2 := -1
	for i, c := range h.Counts {
		d := i - p1
		if d < 0 {
			d = -d
		}
		if d >= 3 && (p2 < 0 || c > h.Counts[p2]) {
			p2 = i
		}
	}
	if p2 < 0 {
		return false
	}
	minPeak := h.Counts[p1]
	if h.Counts[p2] < minPeak {
		minPeak = h.Counts[p2]
	}
	if float64(minPeak) < 0.15*float64(n) {
		return false
	}
	// Peak separation in SD units.
	binWidth := h.Edges[1] - h.Edges[0]
	sep := math.Abs(float64(p1-p2)) * binWidth
	if sd := SD(xs); sd > 0 && sep < 1.6*sd {
		return false
	}
	lo, hi := p1, p2
	if lo > hi {
		lo, hi = hi, lo
	}
	valley := n
	for i := lo + 1; i < hi; i++ {
		if h.Counts[i] < valley {
			valley = h.Counts[i]
		}
	}
	return float64(valley) <= 0.5*float64(minPeak)
}
