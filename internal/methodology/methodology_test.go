package methodology

import (
	"testing"

	"repro/internal/beegfs"
	"repro/internal/cluster"
)

func fastOpts(reps int, seed uint64) Options {
	return Options{Reps: reps, Seed: seed, FastProtocol: true, MaxNodes: 8, MaxSizeGiB: 64}
}

func TestRunOnPlaFRIMScenario1(t *testing.T) {
	rep, err := Run(cluster.PlaFRIM(cluster.Scenario1Ethernet), fastOpts(12, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Stage 1: the paper chose 32 GiB; any stabilized size 8-64 is
	// acceptable for the pipeline.
	if rep.ChosenSizeGiB < 8 {
		t.Fatalf("chosen size %d GiB too small to be stabilized", rep.ChosenSizeGiB)
	}
	// Stage 2: the scenario-1 plateau arrives by ~4 nodes.
	if rep.PlateauNodes < 2 || rep.PlateauNodes > 8 {
		t.Fatalf("plateau nodes = %d, want 2-8", rep.PlateauNodes)
	}
	if rep.NodeGain < 0.4 {
		t.Fatalf("node gain = %.0f%%, want > 40%% (paper: 64%%)", rep.NodeGain*100)
	}
	// Stage 3: the paper's recommendation.
	if rep.RecommendedCount != 8 {
		t.Fatalf("recommended count = %d, want 8", rep.RecommendedCount)
	}
	if rep.GainOverDefault < 0.3 {
		t.Fatalf("gain over default = %.0f%%, want > 30%%", rep.GainOverDefault*100)
	}
	// Lesson 4's signature appears on the network-limited platform.
	if !rep.BalanceGoverned {
		t.Fatal("balance-governed signature not detected in scenario 1")
	}
	// Structural sanity.
	if len(rep.SizeSweep) == 0 || len(rep.NodeSweep) == 0 || len(rep.CountSweep) != 8 {
		t.Fatalf("sweeps incomplete: %d/%d/%d", len(rep.SizeSweep), len(rep.NodeSweep), len(rep.CountSweep))
	}
	for _, row := range rep.CountSweep {
		if len(row.Classes) == 0 {
			t.Fatalf("count %d has no allocation classes", row.Count)
		}
		if row.Worst > row.Best {
			t.Fatalf("count %d: worst %v > best %v", row.Count, row.Worst, row.Best)
		}
	}
	// Bimodality shows up at some count under round-robin.
	anyBimodal := false
	for _, row := range rep.CountSweep {
		if row.Bimodal {
			anyBimodal = true
		}
	}
	if !anyBimodal {
		t.Fatal("no bimodal count found in stage 3")
	}
	// Confidence intervals bracket the means.
	for _, pt := range rep.NodeSweep {
		if pt.CILow > pt.Mean || pt.CIHigh < pt.Mean {
			t.Fatalf("CI [%v,%v] does not bracket mean %v", pt.CILow, pt.CIHigh, pt.Mean)
		}
	}
}

func TestRunOnCustomPlatform(t *testing.T) {
	// The methodology generalizes: a 3-host system with a balanced
	// chooser still recommends the maximum count.
	p, err := cluster.Custom("tri", 3, 2, 2500, &beegfs.BalancedChooser{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(p, fastOpts(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CountSweep) != 6 {
		t.Fatalf("count sweep rows = %d, want 6", len(rep.CountSweep))
	}
	if rep.RecommendedCount != 6 {
		t.Fatalf("recommended = %d, want the maximum 6", rep.RecommendedCount)
	}
}

func TestChooseSize(t *testing.T) {
	sizes := []int64{1, 2, 4, 8}
	sweep := []SweepPoint{{Mean: 500}, {Mean: 900}, {Mean: 1000}, {Mean: 1010}}
	if g := chooseSize(sizes, sweep, 0.03); g != 4 {
		t.Fatalf("chose %d, want 4 (first within 3%% of all larger)", g)
	}
	// Never stabilizes: falls back to the largest.
	sweep = []SweepPoint{{Mean: 100}, {Mean: 200}, {Mean: 400}, {Mean: 800}}
	if g := chooseSize(sizes, sweep, 0.03); g != 8 {
		t.Fatalf("chose %d, want 8", g)
	}
}

func TestChoosePlateau(t *testing.T) {
	nodes := []int{1, 2, 4, 8}
	sweep := []SweepPoint{{Mean: 880}, {Mean: 1200}, {Mean: 1450}, {Mean: 1460}}
	n, gain := choosePlateau(nodes, sweep, 0.03)
	if n != 4 {
		t.Fatalf("plateau = %d, want 4", n)
	}
	if gain < 0.6 || gain > 0.7 {
		t.Fatalf("gain = %v, want ~0.66", gain)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Reps != 100 || o.MaxNodes != 32 || o.MaxSizeGiB != 64 || o.PPN != 8 {
		t.Fatalf("defaults = %+v", o)
	}
}
