// Stripetuning: apply the paper's tuning methodology end to end — sweep
// the stripe count with the IOR-equivalent workload under the §III-C
// protocol, group results by (min,max) allocation, and compare the
// measurement with the recommender's closed-form advice (lessons 4/6).
package main

import (
	"fmt"
	"log"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ior"
	"repro/internal/report"
)

func main() {
	scenario := cluster.Scenario1Ethernet
	platform := cluster.PlaFRIM(scenario)

	// Build one experiment per stripe count: 8 nodes x 8 ppn, 32 GiB
	// shared file, exactly the Figure 6a configuration.
	var cfgs []experiments.Config
	for count := 1; count <= 8; count++ {
		cfgs = append(cfgs, experiments.Config{
			Label: fmt.Sprintf("count%d", count),
			Params: ior.Params{
				Nodes: 8, PPN: 8,
				TransferSize: 1 * beegfs.MiB,
				StripeCount:  count,
			}.WithTotalSize(32 * beegfs.GiB),
		})
	}
	proto := experiments.Protocol{
		Repetitions: 40, BlockSize: 10,
		MinWait: 1, MaxWait: 5, // virtual-time waits between blocks
		Seed: 2022,
	}
	recs, err := experiments.Campaign{Platform: platform, Proto: proto}.Run(cfgs)
	if err != nil {
		log.Fatal(err)
	}

	// Group by allocation, as in Figure 8.
	byAlloc := map[string][]float64{}
	allocs := map[string]core.Allocation{}
	for _, r := range recs {
		a := r.Alloc()
		byAlloc[a.Key()] = append(byAlloc[a.Key()], r.Bandwidth())
		allocs[a.Key()] = a
	}
	t := report.NewTable("measured bandwidth by OST allocation (Figure 8 methodology)",
		"alloc", "min/max", "n", "mean_mibs")
	for _, key := range sortedKeys(allocs) {
		a := allocs[key]
		t.AddRow(a.String(), a.BalanceRatio(), len(byAlloc[key]), mean(byAlloc[key]))
	}
	fmt.Println(t.String())

	// Lesson-4 check on the fresh data.
	v := core.Lesson4(byAlloc, allocs)
	fmt.Printf("lesson 4 (balance governs network-limited performance): holds=%v — %s\n\n", v.Holds, v.Detail)

	// Ask the recommender for the default stripe count.
	m := core.Model{FS: platform.FS, ClientNIC: platform.ClientNICCapacity}
	order := []int{0, 1, 1, 1, 1, 0, 0, 0} // PlaFRIM registration order
	rec, err := core.Recommend(m, order, "roundrobin", 4, 8, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recommended default stripe count: %d (expected gain over the count-4 default: %+.0f%%)\n",
		rec.BestCount, rec.Gain*100)
	fmt.Println("the paper's administrators applied this change on PlaFRIM (§I: up to +40%).")
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func sortedKeys(allocs map[string]core.Allocation) []string {
	keys := make([]string, 0, len(allocs))
	for k := range allocs {
		keys = append(keys, k)
	}
	// Order by count then balance (core.Allocation.Less).
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && allocs[keys[j]].Less(allocs[keys[j-1]]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
