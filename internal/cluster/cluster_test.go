package cluster

import (
	"errors"
	"math"
	"testing"

	"repro/internal/beegfs"
	"repro/internal/rng"
)

func TestScenarioString(t *testing.T) {
	if Scenario1Ethernet.String() != "scenario1-ethernet" {
		t.Fatal(Scenario1Ethernet.String())
	}
	if Scenario2Omnipath.String() != "scenario2-omnipath" {
		t.Fatal(Scenario2Omnipath.String())
	}
	if Scenario(9).String() == "" {
		t.Fatal("unknown scenario produced empty string")
	}
}

func TestPlaFRIMScenario1(t *testing.T) {
	p := PlaFRIM(Scenario1Ethernet)
	if p.FS.Hosts != 2 || p.FS.TargetsPerHost != 4 {
		t.Fatalf("shape = %dx%d, want 2x4", p.FS.Hosts, p.FS.TargetsPerHost)
	}
	// 10 GbE at 88% protocol efficiency = 1100 MiB/s.
	if p.FS.ServerNICCapacity != 1100 {
		t.Fatalf("server NIC = %v, want 1100", p.FS.ServerNICCapacity)
	}
	if p.ClientNICCapacity != 1100 {
		t.Fatalf("client NIC = %v", p.ClientNICCapacity)
	}
	if p.FS.DefaultPattern.Count != 4 || p.FS.DefaultPattern.ChunkSize != 512*beegfs.KiB {
		t.Fatalf("default pattern = %+v, want PlaFRIM's count 4 / 512 KiB", p.FS.DefaultPattern)
	}
	if p.FS.Chooser.Name() != "roundrobin" {
		t.Fatalf("chooser = %s, want roundrobin", p.FS.Chooser.Name())
	}
	if p.FS.ClientA == 0 {
		t.Fatal("scenario 1 needs the client ramp")
	}
}

func TestPlaFRIMScenario2(t *testing.T) {
	p := PlaFRIM(Scenario2Omnipath)
	if p.FS.ServerNICCapacity != 11000 {
		t.Fatalf("server NIC = %v, want 11000 (100 Gbit x 0.88)", p.FS.ServerNICCapacity)
	}
	if p.FS.ClientA != 1631 {
		t.Fatalf("scenario-2 client ramp A = %v, want 1631 (Fig 4b's one-node bandwidth)", p.FS.ClientA)
	}
	if p.FS.IntraNodePenalty == 0 {
		t.Fatal("scenario 2 should carry the intra-node penalty (Fig 5b)")
	}
}

func TestPlaFRIMUnknownScenarioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown scenario did not panic")
		}
	}()
	PlaFRIM(Scenario(42))
}

func TestDeployAndNodes(t *testing.T) {
	dep, err := PlaFRIM(Scenario1Ethernet).Deploy()
	if err != nil {
		t.Fatal(err)
	}
	n8 := dep.Nodes(8)
	if len(n8) != 8 {
		t.Fatalf("Nodes(8) = %d", len(n8))
	}
	// Node pool persists: asking for fewer returns the same clients.
	n4 := dep.Nodes(4)
	for i := range n4 {
		if n4[i] != n8[i] {
			t.Fatal("node pool not stable")
		}
	}
	n16 := dep.Nodes(16)
	if len(n16) != 16 || n16[0] != n8[0] {
		t.Fatal("node pool did not grow in place")
	}
	if n16[0].NIC() == nil {
		t.Fatal("client NIC missing")
	}
}

func TestReJitterMovesServerNIC(t *testing.T) {
	dep, err := PlaFRIM(Scenario1Ethernet).Deploy()
	if err != nil {
		t.Fatal(err)
	}
	h := dep.FS.Storage().Hosts()[0]
	nic := dep.FS.ServerNIC(h)
	if nic == nil {
		t.Fatal("no server NIC in scenario 1")
	}
	base := nic.Capacity()
	src := rng.New(3)
	changed := false
	for i := 0; i < 10 && !changed; i++ {
		dep.ReJitter(src)
		if nic.Capacity() != base {
			changed = true
		}
	}
	if !changed {
		t.Fatal("ReJitter never moved the server NIC capacity")
	}
	dep.ResetJitter()
	if nic.Capacity() != base {
		t.Fatalf("ResetJitter left capacity at %v, want %v", nic.Capacity(), base)
	}
}

func TestCustomPlatform(t *testing.T) {
	p, err := Custom("quad", 4, 4, 2500, &beegfs.BalancedChooser{})
	if err != nil {
		t.Fatal(err)
	}
	if p.FS.Hosts != 4 {
		t.Fatalf("hosts = %d", p.FS.Hosts)
	}
	if p.FS.ServerNICCapacity != 2500*0.88 {
		t.Fatalf("server NIC = %v", p.FS.ServerNICCapacity)
	}
	dep, err := p.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(dep.FS.Storage().Targets()); got != 16 {
		t.Fatalf("targets = %d, want 16", got)
	}
}

func TestCustomClampsDefaultCount(t *testing.T) {
	p, err := Custom("tiny", 1, 2, 1250, &beegfs.RoundRobinChooser{})
	if err != nil {
		t.Fatal(err)
	}
	if p.FS.DefaultPattern.Count != 2 {
		t.Fatalf("default count = %d, want clamped to 2", p.FS.DefaultPattern.Count)
	}
	if _, err := p.Deploy(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	s := Spec{
		Name: "my-cluster", Base: "scenario1",
		Chooser: "balanced", DefaultStripeCount: 8, ChunkSizeKiB: 1024,
		MDSOpRate: 5000,
	}
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip changed spec: %+v vs %+v", back, s)
	}
	p, err := back.Platform()
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "my-cluster" || p.FS.Chooser.Name() != "balanced" {
		t.Fatalf("platform = %+v", p.Name)
	}
	if p.FS.DefaultPattern.Count != 8 || p.FS.DefaultPattern.ChunkSize != 1024*1024 {
		t.Fatalf("pattern = %+v", p.FS.DefaultPattern)
	}
	if p.FS.MDSOpRate != 5000 {
		t.Fatalf("MDSOpRate = %v", p.FS.MDSOpRate)
	}
	if _, err := p.Deploy(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecCustomBase(t *testing.T) {
	s := Spec{Name: "lab", Base: "custom", Hosts: 3, TargetsPerHost: 2, LinkRateMiBs: 2500}
	p, err := s.Platform()
	if err != nil {
		t.Fatal(err)
	}
	if p.FS.Hosts != 3 || p.FS.TargetsPerHost != 2 {
		t.Fatalf("shape = %d/%d", p.FS.Hosts, p.FS.TargetsPerHost)
	}
	if p.FS.ServerNICCapacity != 2500*0.88 {
		t.Fatalf("NIC = %v", p.FS.ServerNICCapacity)
	}
}

func TestSpecErrors(t *testing.T) {
	if _, err := (Spec{Base: "nope"}).Platform(); err == nil {
		t.Fatal("unknown base accepted")
	}
	if _, err := (Spec{Base: "custom"}).Platform(); err == nil {
		t.Fatal("custom without link rate accepted")
	}
	if _, err := (Spec{Base: "scenario1", Chooser: "magic"}).Platform(); err == nil {
		t.Fatal("unknown chooser accepted")
	}
	if _, err := (Spec{Base: "scenario1", DefaultStripeCount: 99}).Platform(); err == nil {
		t.Fatal("oversized stripe count accepted")
	}
	if _, err := ParseSpec([]byte(`{"base":"scenario1","typo_field":1}`)); err == nil {
		t.Fatal("unknown JSON field accepted")
	}
	if _, err := ParseSpec([]byte(`{bad json`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestSpecOf(t *testing.T) {
	p := PlaFRIM(Scenario2Omnipath)
	s := SpecOf(p, "scenario2")
	if s.Chooser != "roundrobin" || s.Hosts != 2 || s.DefaultStripeCount != 4 {
		t.Fatalf("spec = %+v", s)
	}
	p2, err := s.Platform()
	if err != nil {
		t.Fatal(err)
	}
	if p2.FS.ServerNICCapacity != p.FS.ServerNICCapacity {
		t.Fatal("base calibration lost in round trip")
	}
}

func TestCustomRejectsBadShapes(t *testing.T) {
	cases := []struct {
		name  string
		do    func() (Platform, error)
		field string
	}{
		{"zero hosts", func() (Platform, error) { return Custom("x", 0, 4, 2500, &beegfs.RoundRobinChooser{}) }, "hosts"},
		{"zero targets", func() (Platform, error) { return Custom("x", 2, 0, 2500, &beegfs.RoundRobinChooser{}) }, "targets per host"},
		{"zero link", func() (Platform, error) { return Custom("x", 2, 4, 0, &beegfs.RoundRobinChooser{}) }, "link rate"},
		{"nil chooser", func() (Platform, error) { return Custom("x", 2, 4, 2500, nil) }, "chooser"},
	}
	for _, tc := range cases {
		_, err := tc.do()
		var se *ShapeError
		if !errors.As(err, &se) {
			t.Fatalf("%s: error = %v, want *ShapeError", tc.name, err)
		}
		if se.Field != tc.field {
			t.Fatalf("%s: field = %q, want %q", tc.name, se.Field, tc.field)
		}
	}
}

func TestFatTreePlatform(t *testing.T) {
	p, err := FatTree("dc", FatTreeSpec{
		Racks: 4, OSSPerRack: 3, TargetsPerOSS: 4,
		LinkRate: 2500, UplinkRate: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.FS.Hosts != 12 || p.FS.RackHosts != 3 {
		t.Fatalf("hosts = %d rackHosts = %d, want 12/3", p.FS.Hosts, p.FS.RackHosts)
	}
	if p.FS.ClientA != 0 {
		t.Fatal("fat-tree preset must not enable the global client ramp")
	}
	dep, err := p.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	if got := dep.FS.Racks(); got != 4 {
		t.Fatalf("racks = %d, want 4", got)
	}
	if got := len(dep.FS.Storage().Targets()); got != 48 {
		t.Fatalf("targets = %d, want 48", got)
	}
	nodes := dep.NodesInRack(2, 3)
	if len(nodes) != 3 || nodes[0].Rack() != 2 {
		t.Fatalf("NodesInRack gave %d nodes, rack %d", len(nodes), nodes[0].Rack())
	}
	// Pooled: asking again returns the same clients.
	again := dep.NodesInRack(2, 2)
	if again[0] != nodes[0] || again[1] != nodes[1] {
		t.Fatal("NodesInRack did not reuse pooled clients")
	}

	if _, err := FatTree("bad", FatTreeSpec{Racks: 0, OSSPerRack: 1, TargetsPerOSS: 1, LinkRate: 1, UplinkRate: 1}); err == nil {
		t.Fatal("zero racks accepted")
	}
	var se *ShapeError
	if _, err := FatTree("bad", FatTreeSpec{Racks: 2, OSSPerRack: 2, TargetsPerOSS: 2, LinkRate: 2500, UplinkRate: 0}); !errors.As(err, &se) {
		t.Fatalf("zero uplink: error = %v, want *ShapeError", err)
	}
}

// TestFatTreeRejectsNonFiniteRates pins the validation hole a plain sign
// check leaves open: NaN and +Inf uplink/link/core rates pass `<= 0` and
// would deploy a fabric whose flows run at rate NaN (or uncapped) and
// never complete. All must come back as *ShapeError.
func TestFatTreeRejectsNonFiniteRates(t *testing.T) {
	base := FatTreeSpec{Racks: 2, OSSPerRack: 2, TargetsPerOSS: 2, LinkRate: 2500, UplinkRate: 5000}
	cases := []struct {
		name  string
		mut   func(*FatTreeSpec)
		field string
	}{
		{"NaN uplink", func(s *FatTreeSpec) { s.UplinkRate = math.NaN() }, "uplink rate"},
		{"+Inf uplink", func(s *FatTreeSpec) { s.UplinkRate = math.Inf(1) }, "uplink rate"},
		{"NaN link", func(s *FatTreeSpec) { s.LinkRate = math.NaN() }, "link rate"},
		{"+Inf link", func(s *FatTreeSpec) { s.LinkRate = math.Inf(1) }, "link rate"},
		{"NaN core", func(s *FatTreeSpec) { s.CoreRate = math.NaN() }, "core rate"},
		{"+Inf core", func(s *FatTreeSpec) { s.CoreRate = math.Inf(1) }, "core rate"},
		{"negative core", func(s *FatTreeSpec) { s.CoreRate = -1 }, "core rate"},
	}
	for _, tc := range cases {
		spec := base
		tc.mut(&spec)
		_, err := FatTree("bad", spec)
		var se *ShapeError
		if !errors.As(err, &se) {
			t.Fatalf("%s: error = %v, want *ShapeError", tc.name, err)
		}
		if se.Field != tc.field {
			t.Fatalf("%s: field = %q, want %q", tc.name, se.Field, tc.field)
		}
	}
}

// TestFatTreeCore checks the over-subscribed preset: a default core at a
// quarter of the aggregate uplink rate, surfaced as a deployment-wide
// separator set alongside the uplinks.
func TestFatTreeCore(t *testing.T) {
	p, err := FatTreeCore("dc-core", FatTreeSpec{
		Racks: 4, OSSPerRack: 2, TargetsPerOSS: 2,
		LinkRate: 2500, UplinkRate: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCore := 4 * 5000.0 / 4 * protocolEfficiency
	if p.FS.CoreCapacity != wantCore {
		t.Fatalf("core capacity = %v, want %v", p.FS.CoreCapacity, wantCore)
	}
	dep, err := p.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	if dep.FS.Core() == nil {
		t.Fatal("deployment has no core resource")
	}
	seps := dep.FS.SeparatorResources()
	if len(seps) != 5 { // 4 uplinks + core
		t.Fatalf("separator set has %d resources, want 5", len(seps))
	}
	// An explicit CoreRate wins over the preset default.
	p2, err := FatTreeCore("dc-core2", FatTreeSpec{
		Racks: 2, OSSPerRack: 2, TargetsPerOSS: 2,
		LinkRate: 2500, UplinkRate: 5000, CoreRate: 1234,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p2.FS.CoreCapacity != 1234*protocolEfficiency {
		t.Fatalf("explicit core capacity = %v, want %v", p2.FS.CoreCapacity, 1234*protocolEfficiency)
	}
}
