// Job-churn scale campaign: datacenter-sized fat-tree topologies under
// Poisson job arrivals, run once per (topology, solver mode) cell. The
// campaign serves two purposes at once. As an *experiment* it measures the
// paper's metrics at a scale PlaFRIM cannot reach — per-job bandwidth
// under rack-local placement, peak in-flight flow counts, solver work per
// simulated event. As a *differential test* it re-runs the identical
// workload with same-instant event batching off and on: every simulated
// quantity (job bandwidths, completion instants, peak concurrency) must
// come out bit-identical, extending the PR 3/4 oracle methodology from
// single solves to whole campaigns. Only the wall-clock fields (events/s,
// per-event step-time percentiles) may differ between modes — they are
// what the batching exists to improve.
package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/simkernel"
	"repro/internal/stats"
	"repro/internal/storagesim"
)

// scaleBatchWorkers is the flush worker-pool width of the batched mode.
// Fixed (not tied to Options.Workers, which governs cell concurrency) so
// the campaign's rows are identical at any -workers setting.
const scaleBatchWorkers = 4

// ExtScaleRow is one (topology, mode) cell of the scale campaign.
type ExtScaleRow struct {
	Topology string
	Mode     string // "unbatched" or "batched"
	// Racks and Targets describe the deployed fabric.
	Racks   int
	Targets int
	// Jobs is the number of completed jobs; job bandwidth is the paper's
	// per-application metric (volume / makespan, MiB/s).
	Jobs      int
	BWMean    float64
	BWMin     float64
	BWMax     float64
	PeakFlows int
	// Events and Solves count dispatched kernel events and component
	// waterfill solves; SolvesPerEvent is their ratio — the quantity
	// batching collapses.
	Events         uint64
	Solves         uint64
	SolvesPerEvent float64
	// Wall-clock measurements. Nondeterministic by nature (host load, GC):
	// excluded from the determinism comparison (see Deterministic) and
	// from the CSV, reported on stdout only.
	WallSec      float64
	EventsPerSec float64
	StepP50us    float64
	StepP99us    float64
}

// Deterministic returns the row with its wall-clock fields zeroed — the
// portion that must be bit-identical across -workers settings and, except
// for the solver-work counters, across solver modes.
func (r ExtScaleRow) Deterministic() ExtScaleRow {
	r.WallSec, r.EventsPerSec, r.StepP50us, r.StepP99us = 0, 0, 0, 0
	return r
}

// scaleTopo is one fabric size of the campaign.
type scaleTopo struct {
	name string
	spec cluster.FatTreeSpec
	// jobsPerRep scales the churn length with Options.Reps.
	jobsPerRep int
	// meanGap is the Poisson mean inter-arrival time in seconds; smaller
	// gaps pile up more concurrent jobs.
	meanGap float64
	// nodesBase/nodesSpread draw each job's node count as
	// base + Intn(spread); zero values default to 2 + Intn(3).
	nodesBase   int
	nodesSpread int
}

func scaleTopos(reps int) []scaleTopo {
	topos := []scaleTopo{{
		name: "small",
		spec: cluster.FatTreeSpec{
			Racks: 4, OSSPerRack: 2, TargetsPerOSS: 4,
			LinkRate: 2500, UplinkRate: 5000,
		},
		jobsPerRep: 12,
		meanGap:    0.4,
	}}
	if reps >= 20 {
		topos = append(topos, scaleTopo{
			name: "large",
			spec: cluster.FatTreeSpec{
				Racks: 12, OSSPerRack: 4, TargetsPerOSS: 8,
				LinkRate: 2500, UplinkRate: 10000,
			},
			jobsPerRep: 30,
			meanGap:    0.12,
		})
	}
	return topos
}

// scaleJob is one application of the churn: a handful of same-rack
// compute nodes writing a rack-locally striped file.
type scaleJob struct {
	rack    int
	nodes   int
	ppn     int
	perNode float64 // MiB written by each node
	startAt simkernel.Time
	pending int
}

// runScaleCell simulates one (topology, mode) cell and returns its row.
func runScaleCell(topo scaleTopo, mode string, batchWorkers, jobs int, seed uint64) (ExtScaleRow, error) {
	p, err := cluster.FatTree("scale-"+topo.name, topo.spec)
	if err != nil {
		return ExtScaleRow{}, err
	}
	dep, err := p.Deploy()
	if err != nil {
		return ExtScaleRow{}, err
	}
	dep.Net.SetBatching(batchWorkers)
	st := dep.EnableStats()

	// Rack-local placement state: targets grouped by rack (registration
	// order) with a rotating per-rack cursor — the beegfs-ctl
	// --storagetargets analog of the rotating round-robin chooser.
	racks := dep.FS.Racks()
	rackTargets := make([][]*storagesim.Target, racks)
	for _, tg := range dep.FS.Mgmtd().All() {
		r := dep.FS.RackOf(tg.Host())
		rackTargets[r] = append(rackTargets[r], tg)
	}
	cursor := make([]int, racks)
	pick := func(rack, width int) []*storagesim.Target {
		pool := rackTargets[rack]
		if width > len(pool) {
			width = len(pool)
		}
		out := make([]*storagesim.Target, width)
		for i := range out {
			out[i] = pool[(cursor[rack]+i)%len(pool)]
		}
		cursor[rack] = (cursor[rack] + width) % len(pool)
		return out
	}

	src := rng.New(seed)
	var (
		bws       []float64
		active    int
		peak      int
		submitted int
		jobSeq    int
	)
	startJob := func(job *scaleJob) error {
		jobSeq++
		f, err := dep.FS.CreateWithTargets(
			fmt.Sprintf("/scale/job%05d", jobSeq),
			beegfs.StripePattern{ChunkSize: 512 * beegfs.KiB},
			pick(job.rack, 4),
		)
		if err != nil {
			return err
		}
		job.startAt = dep.Sim.Now()
		job.pending = job.nodes
		total := job.perNode * float64(job.nodes)
		for _, client := range dep.NodesInRack(job.rack, job.nodes) {
			op := &beegfs.WriteOp{
				Client: client, File: f,
				Length:       int64(job.perNode) * beegfs.MiB,
				TransferSize: beegfs.MiB,
				Procs:        job.ppn,
				App:          f.Path,
				OnComplete: func(at simkernel.Time) {
					active--
					job.pending--
					if job.pending == 0 {
						bws = append(bws, total/float64(at-job.startAt))
					}
				},
				OnError: func(err error) {
					panic(fmt.Sprintf("experiments: scale job failed: %v", err))
				},
			}
			if _, err := dep.FS.StartWrite(op); err != nil {
				return err
			}
			active++
			if active > peak {
				peak = active
			}
		}
		return nil
	}
	// Poisson arrival chain: each arrival draws the next one, stopping
	// after the target job count. All rng draws happen in arrival events
	// at distinct instants, so the stream is identical in both modes.
	nodesBase, nodesSpread := topo.nodesBase, topo.nodesSpread
	if nodesBase == 0 {
		nodesBase, nodesSpread = 2, 3
	}
	var arrive func()
	arrive = func() {
		job := &scaleJob{
			rack:    src.Intn(racks),
			nodes:   nodesBase + src.Intn(nodesSpread),
			ppn:     4,
			perNode: 256 + float64(src.Intn(4))*128,
		}
		if err := startJob(job); err != nil {
			panic(fmt.Sprintf("experiments: scale job submit: %v", err))
		}
		submitted++
		if submitted < jobs {
			dep.Sim.After(src.Exp(topo.meanGap), arrive)
		}
	}
	dep.Sim.After(0.01, arrive)

	// Manual step loop instead of Sim.Run: per-event wall timing feeds the
	// step-time histogram the row's percentiles come from.
	var stepNanos obs.Log2Hist
	begin := time.Now()
	prev := begin
	for dep.Sim.Step() {
		now := time.Now()
		stepNanos.Observe(uint64(now.Sub(prev)))
		prev = now
		if dep.Sim.Executed() > 200_000_000 {
			return ExtScaleRow{}, fmt.Errorf("experiments: scale cell %s/%s runaway event loop", topo.name, mode)
		}
	}
	wall := time.Since(begin).Seconds()
	if len(bws) != jobs {
		return ExtScaleRow{}, fmt.Errorf("experiments: scale cell %s/%s finished %d of %d jobs", topo.name, mode, len(bws), jobs)
	}
	sum, err := stats.Summarize(bws)
	if err != nil {
		return ExtScaleRow{}, err
	}
	var solves uint64
	for _, c := range st.Net.Solves {
		solves += c
	}
	events := st.Kernel.Dispatched
	return ExtScaleRow{
		Topology:       topo.name,
		Mode:           mode,
		Racks:          racks,
		Targets:        len(dep.FS.Mgmtd().All()),
		Jobs:           len(bws),
		BWMean:         sum.Mean,
		BWMin:          sum.Min,
		BWMax:          sum.Max,
		PeakFlows:      peak,
		Events:         events,
		Solves:         solves,
		SolvesPerEvent: float64(solves) / float64(events),
		WallSec:        wall,
		EventsPerSec:   float64(events) / wall,
		StepP50us:      histQuantileUS(&stepNanos, 0.50),
		StepP99us:      histQuantileUS(&stepNanos, 0.99),
	}, nil
}

// histQuantileUS estimates a quantile of a nanosecond-valued Log2Hist in
// microseconds, using each bucket's geometric midpoint. Log-2 resolution
// is plenty for a wall-clock reporting field.
func histQuantileUS(h *obs.Log2Hist, q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.Count)))
	var seen uint64
	for i, b := range h.Buckets {
		seen += b
		if b > 0 && seen >= rank {
			if i == 0 {
				return 0
			}
			mid := math.Sqrt(math.Exp2(float64(i-1)) * math.Exp2(float64(i)))
			return mid / 1e3
		}
	}
	return 0
}

// ExtScale runs the scale campaign: every topology in both solver modes.
// Beyond returning the rows it enforces the equivalence contract in-line:
// within a topology, the batched cell must reproduce the unbatched cell's
// simulated results (bandwidths, peak concurrency, job count) exactly —
// a mismatch is an error, not a row.
func ExtScale(opts Options) ([]ExtScaleRow, error) {
	reps := opts.Reps
	if reps <= 0 {
		reps = 4
	}
	topos := scaleTopos(reps)
	modes := []struct {
		name    string
		workers int
	}{
		{"unbatched", 0},
		{"batched", scaleBatchWorkers},
	}
	rows := make([]ExtScaleRow, len(topos)*len(modes))
	err := forEachCell(len(rows), opts.Workers, func(cell int) error {
		topo := topos[cell/len(modes)]
		m := modes[cell%len(modes)]
		jobs := topo.jobsPerRep * reps
		seed := opts.Seed*977 + uint64(cell/len(modes))*53
		row, err := runScaleCell(topo, m.name, m.workers, jobs, seed)
		if err != nil {
			return err
		}
		rows[cell] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i+1 < len(rows); i += 2 {
		a, b := rows[i], rows[i+1]
		if a.Jobs != b.Jobs || a.PeakFlows != b.PeakFlows ||
			math.Float64bits(a.BWMean) != math.Float64bits(b.BWMean) ||
			math.Float64bits(a.BWMin) != math.Float64bits(b.BWMin) ||
			math.Float64bits(a.BWMax) != math.Float64bits(b.BWMax) {
			return nil, fmt.Errorf("experiments: scale topology %s: batched results diverge from unbatched (bw %v vs %v)",
				a.Topology, a.BWMean, b.BWMean)
		}
	}
	return rows, nil
}
