package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// -update regenerates the golden files from the current encoders. The
// goldens pin every sink encoding byte-for-byte: any change to an
// encoder's output format must show up as a reviewed testdata diff.
var update = flag.Bool("update", false, "rewrite the golden files")

// fixtureSnapshot builds a small but representative snapshot: counters,
// a high-water gauge, two histograms (one in the runtime/ namespace) and
// a campaign progress entry, with names that exercise the Prometheus and
// Influx escaping rules.
func fixtureSnapshot() *Snapshot {
	r := NewRegistry()
	r.Add("beegfs/write_ops", 64)
	r.Add("simnet/waterfill_passes", 123)
	r.Add("experiments/repetitions", 3)
	r.Max("simkernel/heap_high_water", 40)
	r.Max("simnet/hier_max_rel_err", 250000)
	var h Log2Hist
	for _, v := range []uint64{0, 1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	r.MergeHist("beegfs/op_mib", &h)
	r.Observe(RuntimePrefix+"simnet/solve_latency_ns", 4096)
	snap := r.Snapshot()
	snap.Runs = []RunStatus{
		{Label: "fig4/N=8", Done: 3, Total: 100},
		{Label: "fig6 count=2", Done: 100, Total: 100},
	}
	return snap
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestWriteJSONGolden pins the registry JSON export byte-for-byte
// (including map-order independence: the encoder walks the sorted
// snapshot, never a Go map).
func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, fixtureSnapshot()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.json.golden", buf.Bytes())
	// The export must stay parseable as the PR 5 schema consumers expect.
	var doc map[string]map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	for _, key := range []string{"counters", "histograms", "maxima"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("export lost top-level %q", key)
		}
	}
}

// TestEncodePromGolden pins the OpenMetrics exposition byte-for-byte.
func TestEncodePromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeProm(&buf, fixtureSnapshot()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.prom.golden", buf.Bytes())
	out := buf.String()
	for _, want := range []string{
		"beegfsim_beegfs_write_ops_total 64",
		"beegfsim_simkernel_heap_high_water 40",
		`beegfsim_beegfs_op_mib_bucket{le="+Inf"} 6`,
		`beegfsim_campaign_reps_completed{label="fig4/N=8"} 3`,
		"# EOF\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition lacks %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatal("exposition does not end with the OpenMetrics terminator")
	}
}

// TestEncodeInfluxGolden pins the line-protocol rendering byte-for-byte
// (no timestamps by default — reproducible files).
func TestEncodeInfluxGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeInflux(&buf, fixtureSnapshot(), 0); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.influx.golden", buf.Bytes())
	if strings.Contains(buf.String(), " 1") && strings.Contains(buf.String(), "u 1") {
		t.Fatal("timestamps leaked into the default rendering")
	}
	// Opt-in timestamps are appended to every line.
	var ts bytes.Buffer
	if err := EncodeInflux(&ts, fixtureSnapshot(), 1234567890); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(ts.String()), "\n") {
		if !strings.HasSuffix(line, " 1234567890") {
			t.Fatalf("line lacks timestamp: %q", line)
		}
	}
}

// TestCollectorMergeOrderIndependent is the tentpole's determinism
// contract: any permutation of collector flushes produces the same merged
// model, and therefore byte-identical sink output.
func TestCollectorMergeOrderIndependent(t *testing.T) {
	render := func(perm []int) string {
		p := NewPipeline()
		shards := make([]*Collector, 3)
		for i := range shards {
			c := p.Collector()
			c.Add("a/count", uint64(1+i))
			c.Max("a/max", uint64(10*i))
			c.Observe("a/hist", uint64(1<<i))
			var h Log2Hist
			h.Observe(uint64(i))
			c.MergeHist("a/merged", &h)
			c.Emit(Point{Name: "a/point", Kind: KindCount, Value: 2})
			c.Emit(Point{Name: "a/pmax", Kind: KindMax, Value: uint64(i)})
			c.Emit(Point{Name: "a/psample", Kind: KindSample, Value: uint64(i * 7)})
			shards[i] = c
		}
		for _, i := range perm {
			shards[i].Flush()
		}
		var buf bytes.Buffer
		if err := EncodeJSON(&buf, p.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	want := render([]int{0, 1, 2})
	for _, perm := range [][]int{{0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}} {
		if got := render(perm); got != want {
			t.Fatalf("flush order %v changed the rendered snapshot:\n%s\nvs\n%s", perm, got, want)
		}
	}
}

// TestRouterRules checks first-match-wins prefix routing: drop, rewrite,
// and pass-through.
func TestRouterRules(t *testing.T) {
	p := NewPipeline()
	p.SetRules([]Rule{
		{Prefix: "drop/", Drop: true},
		{Prefix: "old/", Rewrite: "new/"},
		{Prefix: "old/", Drop: true}, // unreachable: first match wins
	})
	c := p.Collector()
	c.Add("drop/me", 1)
	c.Add("old/name", 2)
	c.Max("old/peak", 7)
	c.Observe("old/hist", 3)
	c.Add("keep/name", 4)
	c.Flush()
	reg := p.Registry()
	if got := reg.Counter("drop/me"); got != 0 {
		t.Fatalf("dropped metric leaked: %d", got)
	}
	if got := reg.Counter("new/name"); got != 2 {
		t.Fatalf("rewrite failed: new/name = %d", got)
	}
	if got := reg.Counter("old/name"); got != 0 {
		t.Fatalf("original name survived rewrite: %d", got)
	}
	if got := reg.Counter("keep/name"); got != 4 {
		t.Fatalf("pass-through failed: keep/name = %d", got)
	}
	snap := p.Snapshot()
	for _, m := range snap.Maxima {
		if m.Name == "new/peak" && m.Value == 7 {
			goto histCheck
		}
	}
	t.Fatal("max did not route to new/peak")
histCheck:
	for _, h := range snap.Hists {
		if h.Name == "new/hist" && h.Count == 1 {
			return
		}
	}
	t.Fatal("histogram did not route to new/hist")
}

// TestNilPipelineSafe: the disabled path must be inert at every call
// site — nil pipeline, nil collector, nil registry writes.
func TestNilPipelineSafe(t *testing.T) {
	var p *Pipeline
	p.SetRules([]Rule{{Drop: true}})
	p.AddSink(NewJSONSink(filepath.Join(t.TempDir(), "x.json")))
	p.StartRun("x", 5)
	p.RepDone("x")
	if got := p.Runs(); got != nil {
		t.Fatalf("nil pipeline reported runs: %v", got)
	}
	if err := p.FlushSinks(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	c := p.Collector()
	if c != nil {
		t.Fatal("nil pipeline handed out a non-nil collector")
	}
	c.Add("a", 1)
	c.Max("a", 1)
	c.Observe("a", 1)
	c.MergeHist("a", &Log2Hist{Count: 1})
	c.Emit(Point{Name: "a", Kind: KindCount, Value: 1})
	c.Flush()
	c.Release()
	if p.Tracer() != nil || p.EnableTrace() != nil || p.Registry() != nil {
		t.Fatal("nil pipeline materialized state")
	}
	if snap := p.Snapshot(); len(snap.Counters) != 0 {
		t.Fatal("nil pipeline snapshot not empty")
	}
}

// TestCollectorPoolReuse: Release returns the shard to the pool cleared,
// so a recycled collector cannot leak a previous repetition's values.
func TestCollectorPoolReuse(t *testing.T) {
	p := NewPipeline()
	c := p.Collector()
	c.Add("x", 5)
	c.Release()
	c2 := p.Collector()
	if c2 != c {
		t.Fatal("pool did not recycle the released collector")
	}
	c2.Flush()
	if got := p.Registry().Counter("x"); got != 5 {
		t.Fatalf("release did not flush: x = %d", got)
	}
	c3 := p.Collector()
	_ = c3
	// Flushing the recycled shard again must contribute nothing.
	c2.Flush()
	if got := p.Registry().Counter("x"); got != 5 {
		t.Fatalf("recycled shard re-contributed: x = %d", got)
	}
}

// TestFileSinksWriteOnFlushAndClose: every file sink rewrites its file to
// the snapshot's rendering on each flush, and Close leaves the final
// state behind.
func TestFileSinksWriteOnFlushAndClose(t *testing.T) {
	dir := t.TempDir()
	p := NewPipeline()
	jsonPath := filepath.Join(dir, "m.json")
	promPath := filepath.Join(dir, "m.prom")
	influxPath := filepath.Join(dir, "m.lp")
	p.AddSink(NewJSONSink(jsonPath))
	p.AddSink(NewPromSink(promPath))
	p.AddSink(NewInfluxSink(influxPath))
	c := p.Collector()
	c.Add("a/first", 1)
	c.Release()
	if err := p.FlushSinks(); err != nil {
		t.Fatal(err)
	}
	mid, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mid), `"a/first": 1`) {
		t.Fatalf("intermediate flush missing counter:\n%s", mid)
	}
	c = p.Collector()
	c.Add("a/first", 1)
	c.Release()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{jsonPath, promPath, influxPath} {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(b), "2") {
			t.Fatalf("%s does not show the final merged value:\n%s", path, b)
		}
	}
}

// TestRunProgressAndServe drives the live introspection end to end: a
// real HTTP server, a /metrics scrape returning OpenMetrics with the
// pipeline's contents, and /runs returning the progress table.
func TestRunProgressAndServe(t *testing.T) {
	p := NewPipeline()
	p.StartRun("campaign", 4)
	p.StartRun("campaign", 4) // idempotent
	p.RepDone("campaign")
	p.RepDone("campaign")
	c := p.Collector()
	c.Add("beegfs/write_ops", 9)
	c.Observe("simnet/hist", 3)
	c.Release()

	srv, err := Serve(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != PromContentType {
		t.Fatalf("content type = %q", got)
	}
	for _, want := range []string{
		"beegfsim_beegfs_write_ops_total 9",
		`beegfsim_campaign_reps_completed{label="campaign"} 2`,
		`beegfsim_campaign_reps_total{label="campaign"} 4`,
		"# EOF",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics lacks %q:\n%s", want, body)
		}
	}

	resp, err = http.Get("http://" + srv.Addr() + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	var runs []RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&runs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := []struct {
		label       string
		done, total uint64
	}{{"campaign", 2, 4}}
	if len(runs) != len(want) {
		t.Fatalf("runs = %+v", runs)
	}
	for i, w := range want {
		if runs[i].Label != w.label || runs[i].Done != w.done || runs[i].Total != w.total {
			t.Fatalf("run %d = %+v, want %+v", i, runs[i], w)
		}
	}
	// ETA/rate fields exist only on the live view, never in snapshots.
	if snap := p.Snapshot(); len(snap.Runs) != 1 || snap.Runs[0].RateRepsPerS != 0 || snap.Runs[0].EtaS != 0 {
		t.Fatalf("snapshot progress carries wall-clock derivatives: %+v", snap.Runs)
	}
}

// TestTraceAndUtilSinks: constructing the trace-backed sinks enables the
// pipeline's tracer, and Close renders the trace JSON and utilization
// CSV.
func TestTraceAndUtilSinks(t *testing.T) {
	dir := t.TempDir()
	p := NewPipeline()
	tracePath := filepath.Join(dir, "trace.json")
	utilPath := filepath.Join(dir, "util.csv")
	p.AddSink(NewTraceSink(p, tracePath))
	p.AddSink(NewUtilCSVSink(p, utilPath, "ost"))
	tr := p.Tracer()
	if tr == nil {
		t.Fatal("sinks did not enable the tracer")
	}
	if !tr.Claim() {
		t.Fatal("fresh tracer not claimable")
	}
	tr.Counter("ost1", 0, 1.5)
	tr.Counter("ost1", 2, 0)
	tr.Instant("solver", "solve/start", 0, nil)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	csv, err := os.ReadFile(utilPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csv), "ost1") {
		t.Fatalf("utilization CSV lacks the counter track:\n%s", csv)
	}
}

// TestSnapshotSortedInvariant: every snapshot section is sorted by name,
// whatever order metrics were recorded in.
func TestSnapshotSortedInvariant(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z", "a", "m", "b/x", "b/a"} {
		r.Add(n, 1)
		r.Max(n, 1)
		r.Observe(n, 1)
	}
	snap := r.Snapshot()
	sorted := func(names []string) bool {
		for i := 1; i < len(names); i++ {
			if names[i-1] >= names[i] {
				return false
			}
		}
		return true
	}
	var cn, mn, hn []string
	for _, v := range snap.Counters {
		cn = append(cn, v.Name)
	}
	for _, v := range snap.Maxima {
		mn = append(mn, v.Name)
	}
	for _, h := range snap.Hists {
		hn = append(hn, h.Name)
	}
	if !sorted(cn) || !sorted(mn) || !sorted(hn) {
		t.Fatalf("snapshot not sorted: %v %v %v", cn, mn, hn)
	}
	if !reflect.DeepEqual(cn, mn) || !reflect.DeepEqual(cn, hn) {
		t.Fatalf("sections disagree: %v %v %v", cn, mn, hn)
	}
}

// TestBucketBound pins the log-2 bucket bounds the encoders render.
func TestBucketBound(t *testing.T) {
	cases := map[int]uint64{0: 0, 1: 1, 2: 3, 3: 7, 10: 1023, 64: 1<<64 - 1}
	for i, want := range cases {
		if got := BucketBound(i); got != want {
			t.Fatalf("BucketBound(%d) = %d, want %d", i, got, want)
		}
	}
	var h Log2Hist
	for i := 0; i < Log2Buckets; i++ {
		b := BucketBound(i)
		h = Log2Hist{}
		h.Observe(b)
		if h.Buckets[i] != 1 {
			t.Fatalf("bound %d of bucket %d landed elsewhere: %v", b, i, h.Buckets[:i+2])
		}
	}
}

func ExampleEncodeInflux() {
	r := NewRegistry()
	r.Add("simnet/waterfill_passes", 7)
	_ = EncodeInflux(os.Stdout, r.Snapshot(), 0)
	// Output:
	// beegfsim,metric=simnet/waterfill_passes,type=counter value=7u
}

var _ = fmt.Sprintf // keep fmt for Example docs
