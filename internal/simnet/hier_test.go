package simnet

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/simkernel"
)

// hierScenario is a decoded hierarchical fuzz input: a miniature fat tree
// (racks of local resources behind per-rack uplinks that share one core)
// plus a time-ordered op script. About half the ops land on the same
// instant as their predecessor so the batched flush paths get real
// same-instant clusters.
type hierScenario struct {
	nRacks   int
	nLocals  int
	localCap []float64
	upCap    []float64
	coreCap  float64
	ops      []fop
}

func decodeHierScenario(data []byte) hierScenario {
	r := &fzReader{data: data}
	var sc hierScenario
	sc.nRacks = 2 + int(r.byte()%3)
	sc.nLocals = 1 + int(r.byte()%3)
	sc.localCap = make([]float64, sc.nRacks*sc.nLocals)
	for i := range sc.localCap {
		sc.localCap[i] = 25.0 * float64(1+int(r.byte()%40))
	}
	sc.upCap = make([]float64, sc.nRacks)
	for i := range sc.upCap {
		sc.upCap[i] = 50.0 * float64(1+int(r.byte()%20))
	}
	sc.coreCap = 75.0 * float64(1+int(r.byte()%16))
	t := simkernel.Time(0.25)
	for len(sc.ops) < 56 && !r.done() {
		if r.byte()&1 == 0 {
			t += simkernel.Time(0.25 + 0.25*float64(r.byte()%24))
		}
		k := r.byte() % 8
		op := fop{at: t}
		switch {
		case k <= 4:
			op.kind = fopStart
			op.a, op.b, op.c = r.byte(), r.byte(), r.byte()
		case k == 5:
			op.kind = fopAbort
			op.a = r.byte()
		default:
			op.kind = fopSetCap
			op.a, op.b = r.byte(), r.byte()
		}
		sc.ops = append(sc.ops, op)
	}
	return sc
}

// buildHierWorld constructs a world over sc's fat-tree topology. The
// resource layout in w.res is locals (rack-major), then uplinks, then the
// core. hierWorkers > 0 declares the uplinks and core as separators and
// enables hierarchical solving with the given error bound, lowering the
// size cutoff to zero so the partition machinery runs on fuzz-sized
// components; batchWorkers configures same-instant batching as in
// buildWorld.
func buildHierWorld(sc hierScenario, hierWorkers int, maxRelErr float64, batchWorkers int) *fzWorld {
	w := &fzWorld{sim: simkernel.New()}
	w.net = New(w.sim)
	w.net.SetBatching(batchWorkers)
	for r := 0; r < sc.nRacks; r++ {
		for l := 0; l < sc.nLocals; l++ {
			w.res = append(w.res, w.net.AddResource(fmt.Sprintf("rack%d/l%d", r, l), sc.localCap[r*sc.nLocals+l]))
		}
	}
	var seps []*Resource
	for r := 0; r < sc.nRacks; r++ {
		u := w.net.AddResource(fmt.Sprintf("rack%d/up", r), sc.upCap[r])
		w.res = append(w.res, u)
		seps = append(seps, u)
	}
	core := w.net.AddResource("core", sc.coreCap)
	w.res = append(w.res, core)
	seps = append(seps, core)
	if hierWorkers > 0 {
		w.net.SetSeparators(seps...)
		w.net.SetHierarchical(hierWorkers, maxRelErr)
		w.net.hier.minFlows = 0
	}
	w.net.Observe(func(at simkernel.Time, f *Flow, rate float64) {
		w.log = append(w.log, fmt.Sprintf("obs %x %s %x", math.Float64bits(float64(at)), f.Name, math.Float64bits(rate)))
	})
	for _, op := range sc.ops {
		op := op
		w.sim.At(op.at, func() { applyHier(w, sc, op) })
	}
	return w
}

// applyHier performs one scenario op. Flow shapes: rack-local (locals of
// one rack only), cross-rack (rack locals plus that rack's uplink and the
// core), and drain (uplink plus core only — a separator-only flow,
// exercising the partition's dedicated extra group).
func applyHier(w *fzWorld, sc hierScenario, op fop) {
	switch op.kind {
	case fopStart:
		rack := int(op.a) % sc.nRacks
		local := func(l int) *Resource { return w.res[rack*sc.nLocals+l%sc.nLocals] }
		uplink := w.res[sc.nRacks*sc.nLocals+rack]
		core := w.res[len(w.res)-1]
		f := &Flow{
			Name:   fmt.Sprintf("f%03d", len(w.started)),
			Volume: 4.0 * float64(1+int(op.a)%24),
			Usage:  map[*Resource]float64{},
		}
		switch kind := int(op.c) % 8; {
		case kind == 7:
			f.Usage[uplink] = 0.5 + 0.25*float64(int(op.b)%3)
			f.Usage[core] = 1
		case kind >= 4:
			f.Usage[local(int(op.b))] = 0.25 * float64(1+int(op.b)%4)
			f.Usage[uplink] = 1
			f.Usage[core] = 0.5
		default:
			f.Usage[local(int(op.b))] = 0.25 * float64(1+int(op.b)%4)
			if op.b>>6&1 == 1 {
				f.Usage[local(int(op.b)+1)] = 0.5
			}
		}
		if op.c%4 == 0 {
			f.Cap = 10.0 * float64(1+int(op.c)%16)
		}
		f.OnComplete = func(at simkernel.Time) {
			w.log = append(w.log, fmt.Sprintf("done %x %s", math.Float64bits(float64(at)), f.Name))
		}
		f.OnAbort = func(at simkernel.Time) {
			w.log = append(w.log, fmt.Sprintf("abort %x %s %x", math.Float64bits(float64(at)), f.Name, math.Float64bits(f.Remaining())))
		}
		w.started = append(w.started, f)
		w.net.Start(f)
	case fopAbort:
		if len(w.started) == 0 {
			return
		}
		f := w.started[int(op.a)%len(w.started)]
		if f.inNet {
			w.net.Abort(f)
		}
	case fopSetCap:
		w.net.SetCapacity(w.res[int(op.a)%len(w.res)], 25.0*float64(int(op.b)%40))
	}
}

// FuzzHierarchicalVsFlatSolve drives random fat-tree scenarios through
// the flat solver and the exact hierarchical solver and demands bitwise
// agreement, two ways. Unbatched: the two worlds run in instant lockstep
// and must agree on every flow's rate, remaining volume and liveness at
// 0 ULP at every instant boundary; verifyNet additionally re-solves the
// hierarchical world's components with the retained reference oracle at
// each boundary. Batched: a serial-flush flat world and a parallel-flush
// hierarchical world share the same event cadence, so their complete
// observable logs — every rate change, completion and abort, float bits
// spelled out — must be byte-identical.
func FuzzHierarchicalVsFlatSolve(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x10, 0x20, 0x30, 0x15, 0x08, 0x0c, 0x00, 0x04, 0x41, 0x07, 0x13, 0x00, 0x02, 0x25, 0x33, 0x04, 0x12, 0x60, 0x09})
	f.Add([]byte{0x02, 0x00, 0x01, 0x05, 0x09, 0x11, 0x22, 0x07, 0x00, 0x00, 0x81, 0x3f, 0x06, 0x02, 0x00, 0x17, 0x28, 0x00, 0x01, 0x44, 0x55, 0x66, 0x04, 0x77, 0x1f})
	f.Add([]byte{0x03, 0x04, 0x07, 0x0e, 0x1c, 0x38, 0x70, 0x60, 0x05, 0x01, 0x00, 0x27, 0x13, 0x02, 0x01, 0x39, 0x51, 0x00, 0x03, 0x0b, 0x2d, 0x04, 0x00, 0x1a})
	f.Add([]byte{0x00, 0x01, 0x03, 0x27, 0x09, 0x30, 0x0a, 0x02, 0x00, 0x04, 0xc1, 0x17, 0x00, 0x00, 0x91, 0x27, 0x02, 0x04, 0x61, 0x47, 0x01, 0x02, 0x05, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		sc := decodeHierScenario(data[1:])
		if len(sc.ops) == 0 {
			return
		}
		workers := 1 + int(data[0]%4)
		flat := buildHierWorld(sc, 0, 0, 0)
		hier := buildHierWorld(sc, workers, 0, 0)
		runInstantLockstep(t, flat, hier, "flat vs hierarchical", func() { verifyNet(t, hier.net) })

		batFlat := buildHierWorld(sc, 0, 0, 1)
		batHier := buildHierWorld(sc, workers, 0, 2+int(data[0]%3))
		if err := batFlat.sim.Run(); err != nil {
			t.Fatalf("batched flat run: %v", err)
		}
		if err := batHier.sim.Run(); err != nil {
			t.Fatalf("batched hierarchical run: %v", err)
		}
		if len(batFlat.log) != len(batHier.log) {
			t.Fatalf("batched flat log has %d entries, hierarchical %d\nflat: %v\nhier: %v",
				len(batFlat.log), len(batHier.log), batFlat.log, batHier.log)
		}
		for i := range batFlat.log {
			if batFlat.log[i] != batHier.log[i] {
				t.Fatalf("batched logs diverge at %d: flat %q, hierarchical %q", i, batFlat.log[i], batHier.log[i])
			}
		}
	})
}

// hierTestTopo is the hand-built two-rack topology the white-box tests
// share: one local resource per rack, per-rack uplinks, one core.
type hierTestTopo struct {
	sim            *simkernel.Simulation
	net            *Network
	l0, l1, u0, u1 *Resource
	core           *Resource
	st             Stats
}

func newHierTestTopo(t *testing.T, workers int, maxRelErr float64, localCap, upCap, coreCap float64) *hierTestTopo {
	t.Helper()
	tp := &hierTestTopo{sim: simkernel.New()}
	tp.net = New(tp.sim)
	tp.net.SetStats(&tp.st)
	tp.l0 = tp.net.AddResource("rack0/l0", localCap)
	tp.l1 = tp.net.AddResource("rack1/l0", localCap)
	tp.u0 = tp.net.AddResource("rack0/up", upCap)
	tp.u1 = tp.net.AddResource("rack1/up", upCap)
	tp.core = tp.net.AddResource("core", coreCap)
	tp.net.SetSeparators(tp.u0, tp.u1, tp.core)
	tp.net.SetHierarchical(workers, maxRelErr)
	tp.net.hier.minFlows = 0
	return tp
}

func (tp *hierTestTopo) start(name string, usage map[*Resource]float64) *Flow {
	f := &Flow{Name: name, Volume: 1e6, Usage: usage}
	tp.net.Start(f)
	return f
}

// TestHierExactPathUsed pins down that the exact hierarchical path
// actually runs (rather than silently falling back flat, which would make
// the differential fuzzer vacuous) and that a one-rack component falls
// back with the fallback counter ticking.
func TestHierExactPathUsed(t *testing.T) {
	tp := newHierTestTopo(t, 2, 0, 1000, 80, 120)
	tp.start("loc0", map[*Resource]float64{tp.l0: 1})
	tp.start("loc1", map[*Resource]float64{tp.l1: 1})
	tp.start("cross0", map[*Resource]float64{tp.l0: 0.25, tp.u0: 1, tp.core: 1})
	tp.start("cross1", map[*Resource]float64{tp.l1: 0.25, tp.u1: 1, tp.core: 1})
	tp.start("drain", map[*Resource]float64{tp.u0: 0.5, tp.core: 1})
	if tp.st.HierSolves == 0 {
		t.Fatalf("no hierarchical solves on a two-rack component: %+v", tp.st)
	}
	verifyNet(t, tp.net)

	// A component confined to one rack has a single local group: the
	// partition is degenerate and the flat solver must run instead.
	tp2 := newHierTestTopo(t, 2, 0, 1000, 80, 120)
	tp2.start("only", map[*Resource]float64{tp2.l0: 1, tp2.u0: 1})
	if tp2.st.HierSolves != 0 {
		t.Fatalf("one-rack component took the hierarchical path: %+v", tp2.st)
	}
	if tp2.st.HierFallbacks == 0 {
		t.Fatal("degenerate partition did not count a fallback")
	}
	verifyNet(t, tp2.net)
}

// TestHierBoundedConverges runs bounded-error mode on a core-contended
// two-rack topology: nine coupled flows in rack 0 against one in rack 1.
// The weighted coordination must converge within the bound, report a
// residual no larger than the bound, keep every resource feasible, and
// land near the true max-min allocation (all ten core flows at ~1/10 of
// the core) rather than the rack-equal split a per-rack share would give.
func TestHierBoundedConverges(t *testing.T) {
	tp := newHierTestTopo(t, 2, 0.01, 1e6, 1e6, 100)
	var flows []*Flow
	for i := 0; i < 9; i++ {
		flows = append(flows, tp.start(fmt.Sprintf("a%d", i), map[*Resource]float64{tp.l0: 0.01, tp.u0: 1, tp.core: 1}))
	}
	flows = append(flows, tp.start("b0", map[*Resource]float64{tp.l1: 0.01, tp.u1: 1, tp.core: 1}))
	if tp.st.HierSolves == 0 {
		t.Fatalf("bounded mode never took the hierarchical path: %+v", tp.st)
	}
	if tp.st.HierMaxRelErr > 0.01 {
		t.Fatalf("measured residual %v exceeds the configured bound 0.01", tp.st.HierMaxRelErr)
	}
	// Feasibility: recompute separator loads from the rates.
	coreLoad := 0.0
	for _, f := range flows {
		coreLoad += f.rate
	}
	if coreLoad > 100*(1+1e-9) {
		t.Fatalf("core overloaded: %v > 100", coreLoad)
	}
	// Near max-min: every flow within 25%% of the fair 10 MiB/s share.
	for _, f := range flows {
		if f.rate < 7.5 || f.rate > 12.5 {
			t.Fatalf("flow %s rate %v far from the max-min share 10", f.Name, f.rate)
		}
	}
}

// TestHierBoundedErrMetricFires is the mutation test for
// simnet/hier_max_rel_err: with the outer loop truncated to one
// coordination round (the forceOuter knob suppresses the exact fallback
// that normally guarantees the bound), the imbalanced topology above
// cannot converge, and the measured residual must actually fire — proving
// the metric detects truncation rather than sitting at zero.
func TestHierBoundedErrMetricFires(t *testing.T) {
	tp := newHierTestTopo(t, 2, 1e-9, 1e6, 1e6, 100)
	tp.net.hier.forceOuter = 1
	for i := 0; i < 9; i++ {
		tp.start(fmt.Sprintf("a%d", i), map[*Resource]float64{tp.l0: 0.01, tp.u0: 1, tp.core: 1})
	}
	tp.start("b0", map[*Resource]float64{tp.l1: 0.01, tp.u1: 1, tp.core: 1})
	if tp.st.HierSolves == 0 {
		t.Fatalf("truncated bounded mode never took the hierarchical path: %+v", tp.st)
	}
	if tp.st.HierExactFallbacks != 0 {
		t.Fatalf("forceOuter must suppress the exact fallback, got %d", tp.st.HierExactFallbacks)
	}
	if tp.st.HierMaxRelErr < 0.05 {
		t.Fatalf("hier_max_rel_err did not fire under truncation: residual %v", tp.st.HierMaxRelErr)
	}
}

// TestHierBoundedFallsBackExactly checks the bound guarantee's other
// half: without the test knob, a bounded solve that exhausts its round
// cap re-runs exactly, counts the fallback, and reports zero residual.
func TestHierBoundedFallsBackExactly(t *testing.T) {
	tp := newHierTestTopo(t, 2, 0, 1000, 80, 120)
	// Reconfigure as bounded with an unreachable bound so every solve
	// exhausts the cap and falls back.
	tp.net.SetHierarchical(2, math.SmallestNonzeroFloat64)
	tp.net.hier.minFlows = 0
	for i := 0; i < 3; i++ {
		tp.start(fmt.Sprintf("a%d", i), map[*Resource]float64{tp.l0: 1, tp.u0: 1, tp.core: 1})
		tp.start(fmt.Sprintf("b%d", i), map[*Resource]float64{tp.l1: 1, tp.u1: 1, tp.core: 1})
	}
	if tp.st.HierSolves == 0 {
		t.Fatalf("no hierarchical solves: %+v", tp.st)
	}
	if tp.st.HierMaxRelErr > math.SmallestNonzeroFloat64 {
		t.Fatalf("residual %v exceeds the bound despite the exact fallback", tp.st.HierMaxRelErr)
	}
	// The exact fallback leaves reference-identical state.
	verifyNet(t, tp.net)
}

// TestHierSetupValidation covers the configuration guards.
func TestHierSetupValidation(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	sim := simkernel.New()
	net := New(sim)
	r := net.AddResource("r", 100)
	expectPanic("negative workers", func() { net.SetHierarchical(-1, 0) })
	expectPanic("negative bound", func() { net.SetHierarchical(1, -0.5) })
	expectPanic("NaN bound", func() { net.SetHierarchical(1, math.NaN()) })
	net.SetHierarchical(2, 0)
	if net.Hierarchical() != 2 {
		t.Fatalf("Hierarchical() = %d, want 2", net.Hierarchical())
	}
	net.SetHierarchical(0, 0)
	if net.Hierarchical() != 0 {
		t.Fatalf("Hierarchical() = %d after disable, want 0", net.Hierarchical())
	}
	f := &Flow{Name: "f", Volume: 10, Usage: map[*Resource]float64{r: 1}}
	net.Start(f)
	expectPanic("in-flight separators", func() { net.SetSeparators(r) })
	expectPanic("in-flight enable", func() { net.SetHierarchical(1, 0) })
}
