package experiments

import (
	"fmt"
	"sort"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/stats"
)

// FaultScheme pairs a label with a fault schedule that the campaign arms
// at the start of every repetition.
type FaultScheme struct {
	Name     string
	Schedule faults.Schedule
}

// DefaultFaultSchemes returns the resilience campaign's four operating
// points: the healthy baseline, a single-OST failure with recovery, a
// whole storage-server (OSS) failure with recovery, and a transient NIC
// flap. Times are relative to each repetition's start; target 201 / host 2
// sit in the middle of PlaFRIM's registration order, so every stripe-count-4
// allocation class is hit in some repetitions.
func DefaultFaultSchemes() []FaultScheme {
	return []FaultScheme{
		{Name: "healthy"},
		{Name: "ost-fail", Schedule: faults.Schedule{
			{At: 2.0, Kind: faults.TargetFault, ID: 201, Action: faults.Fail},
			{At: 8.0, Kind: faults.TargetFault, ID: 201, Action: faults.Recover},
		}},
		{Name: "oss-fail", Schedule: faults.Schedule{
			{At: 2.0, Kind: faults.HostFault, ID: 2, Action: faults.Fail},
			{At: 10.0, Kind: faults.HostFault, ID: 2, Action: faults.Recover},
		}},
		{Name: "nic-flap", Schedule: faults.Schedule{
			{At: 2.0, Kind: faults.NICFault, ID: 2, Action: faults.Fail},
			{At: 3.5, Kind: faults.NICFault, ID: 2, Action: faults.Recover},
		}},
	}
}

// ExtResilienceRow summarizes one (scenario, fault scheme, allocation
// class) cell of the resilience campaign.
type ExtResilienceRow struct {
	Scenario string
	Fault    string
	// Alloc is the "(min,max)" allocation class, or "all" for the
	// scheme-wide aggregate row.
	Alloc string
	N     int
	// BWMean/BWSD summarize the IOR-reported write bandwidth (MiB/s).
	BWMean float64
	BWSD   float64
	// SecMean/SecSD summarize the run completion time in virtual seconds
	// (failures stretch runs even when bandwidth is computed over the
	// stretched window).
	SecMean float64
	SecSD   float64
}

// ExtResilience measures how mid-run failures shift the paper's
// (min,max)-ordered write bandwidth: the scenario-1/2 baseline geometry
// (8 nodes x 8 ppn, stripe count 4, 32 GiB) under each fault scheme. Runs
// survive via the client retry/backoff path — a campaign that aborts is a
// bug, not a result.
func ExtResilience(opts Options) ([]ExtResilienceRow, error) {
	scens := []cluster.Scenario{cluster.Scenario1Ethernet, cluster.Scenario2Omnipath}
	schemes := DefaultFaultSchemes()
	// The (scenario, scheme) cells are independent campaigns; run them on
	// the cell pool and stitch the per-cell rows back in nested-loop order.
	cellRows := make([][]ExtResilienceRow, len(scens)*len(schemes))
	err := forEachCell(len(cellRows), opts.Workers, func(cell int) error {
		scen := scens[cell/len(schemes)]
		si := cell % len(schemes)
		scheme := schemes[si]
		o := opts
		o.Seed = opts.Seed*97 + uint64(int(scen))*31 + uint64(si)
		recs, err := Campaign{
			Platform: cluster.PlaFRIM(scen),
			Proto:    o.protocol(),
			Workers:  o.Workers,
			Faults:   scheme.Schedule,
			Metrics:  o.Metrics,
			Tracer:   o.Tracer,
		}.Run([]Config{{Label: scheme.Name, Params: baseParams(8, 8, 4, 32*beegfs.GiB)}})
		if err != nil {
			return fmt.Errorf("resilience %s/%s: %w", scen, scheme.Name, err)
		}
		byAlloc := map[string][]Record{}
		var keys []string
		for _, r := range recs {
			k := r.Alloc().String()
			if _, ok := byAlloc[k]; !ok {
				keys = append(keys, k)
			}
			byAlloc[k] = append(byAlloc[k], r)
		}
		sort.Strings(keys)
		addRow := func(alloc string, rs []Record) error {
			var bws, secs []float64
			for _, r := range rs {
				bws = append(bws, r.Bandwidth())
				res := r.Apps[0].Result
				secs = append(secs, float64(res.End-res.Start))
			}
			sb, err := stats.Summarize(bws)
			if err != nil {
				return err
			}
			ss, err := stats.Summarize(secs)
			if err != nil {
				return err
			}
			cellRows[cell] = append(cellRows[cell], ExtResilienceRow{
				Scenario: scen.String(),
				Fault:    scheme.Name,
				Alloc:    alloc,
				N:        sb.N,
				BWMean:   sb.Mean,
				BWSD:     sb.SD,
				SecMean:  ss.Mean,
				SecSD:    ss.SD,
			})
			return nil
		}
		for _, k := range keys {
			if err := addRow(k, byAlloc[k]); err != nil {
				return err
			}
		}
		return addRow("all", recs)
	})
	if err != nil {
		return nil, err
	}
	var out []ExtResilienceRow
	for _, rows := range cellRows {
		out = append(out, rows...)
	}
	return out, nil
}
