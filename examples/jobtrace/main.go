// Jobtrace: replay a day-in-the-life job mix through the FCFS scheduler
// and ask the paper's §IV-D question at schedule scale: when many
// I/O-intensive jobs come and go, does letting everyone use the maximum
// stripe count hurt anyone? The example replays the same trace twice —
// every job at count 8 vs every job at count 2 — and compares per-job
// bandwidth and makespan.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/cluster"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/workload"
)

func main() {
	// A synthetic but plausible mix: bursts of checkpoints, a steady
	// stream of mid-size writers, an occasional huge job.
	src := rng.New(2022)
	var jobs []workload.Job
	arrival := 0.0
	for i := 0; i < 14; i++ {
		arrival += src.Exp(6)
		j := workload.Job{
			ID:       fmt.Sprintf("job%02d", i+1),
			Arrival:  arrival,
			Nodes:    []int{4, 8, 8, 16}[src.Intn(4)],
			PPN:      8,
			TotalGiB: []float64{8, 16, 32}[src.Intn(3)],
		}
		jobs = append(jobs, j)
	}

	platform := cluster.PlaFRIM(cluster.Scenario2Omnipath)
	const pool = 32

	type outcome struct {
		count   int
		results []workload.Result
	}
	var outcomes []outcome
	for _, count := range []int{2, 8} {
		trace := make([]workload.Job, len(jobs))
		copy(trace, jobs)
		for i := range trace {
			trace[i].StripeCount = count
		}
		results, err := workload.Replay(platform, pool, trace, 7)
		if err != nil {
			log.Fatal(err)
		}
		outcomes = append(outcomes, outcome{count: count, results: results})
	}

	t := report.NewTable(
		fmt.Sprintf("14-job trace on a %d-node pool: stripe count 2 vs 8 for every job", pool),
		"job", "nodes", "gib", "bw_count2", "bw_count8", "stretch_c2", "stretch_c8")
	byID := func(o outcome) map[string]workload.Result {
		m := map[string]workload.Result{}
		for _, r := range o.results {
			m[r.Job.ID] = r
		}
		return m
	}
	m2, m8 := byID(outcomes[0]), byID(outcomes[1])
	ids := make([]string, 0, len(jobs))
	for _, j := range jobs {
		ids = append(ids, j.ID)
	}
	sort.Strings(ids)
	var make2, make8 float64
	for _, id := range ids {
		r2, r8 := m2[id], m8[id]
		t.AddRow(id, r2.Job.Nodes, r2.Job.TotalGiB, r2.Bandwidth, r8.Bandwidth, r2.Stretch(), r8.Stretch())
		if float64(r2.End) > make2 {
			make2 = float64(r2.End)
		}
		if float64(r8.End) > make8 {
			make8 = float64(r8.End)
		}
	}
	fmt.Println(t.String())
	fmt.Printf("schedule makespan: count 2 = %.1fs, count 8 = %.1fs (%.0f%% shorter with max striping)\n",
		make2, make8, (1-make8/make2)*100)
	fmt.Println()
	fmt.Println("with every job on the maximum stripe count, jobs finish faster and")
	fmt.Println("vacate nodes sooner; target sharing never degrades the schedule —")
	fmt.Println("lesson 7's operational consequence, now at job-trace scale.")
}
