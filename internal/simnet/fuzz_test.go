package simnet

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/simkernel"
)

// fzReader hands out fuzz bytes sequentially, returning zero once the
// input is exhausted so every byte slice decodes to a valid scenario.
type fzReader struct {
	data []byte
	i    int
}

func (r *fzReader) done() bool { return r.i >= len(r.data) }

func (r *fzReader) byte() byte {
	if r.i >= len(r.data) {
		return 0
	}
	b := r.data[r.i]
	r.i++
	return b
}

const (
	fopStart = iota
	fopAbort
	fopSetCap
)

// fop is one decoded script operation, applied identically to every world.
type fop struct {
	kind    int
	a, b, c byte
	at      simkernel.Time
}

// fzScenario is a fully decoded fuzz input: a resource set and a time-
// ordered op script, interpretable against any Network implementation.
type fzScenario struct {
	caps   []float64
	shared bool
	ops    []fop
}

func decodeScenario(data []byte) fzScenario {
	r := &fzReader{data: data}
	var sc fzScenario
	nRes := 3 + int(r.byte()%6)
	sc.caps = make([]float64, nRes)
	for i := range sc.caps {
		sc.caps[i] = 25.0 * float64(1+int(r.byte()%40))
	}
	sc.shared = r.byte()&1 == 1
	t := simkernel.Time(0)
	for len(sc.ops) < 48 && !r.done() {
		k := r.byte() % 4
		t += simkernel.Time(0.25 + 0.25*float64(r.byte()%32))
		op := fop{at: t}
		switch {
		case k <= 1:
			op.kind = fopStart
			op.a, op.b, op.c = r.byte(), r.byte(), r.byte()
		case k == 2:
			op.kind = fopAbort
			op.a = r.byte()
		default:
			op.kind = fopSetCap
			op.a, op.b = r.byte(), r.byte()
		}
		sc.ops = append(sc.ops, op)
	}
	return sc
}

// fzWorld is one independent simulation executing a scenario. Two worlds
// built from the same scenario perform the same script at the same virtual
// times; their logs record every observable (observer callbacks,
// completions, aborts) with float bits spelled out so comparison is exact.
type fzWorld struct {
	sim     *simkernel.Simulation
	net     *Network
	res     []*Resource
	started []*Flow
	log     []string
}

func buildWorld(sc fzScenario, forceGlobal bool, batchWorkers int, onOp func(w *fzWorld)) *fzWorld {
	w := &fzWorld{sim: simkernel.New()}
	w.net = New(w.sim)
	w.net.forceGlobal = forceGlobal
	w.net.SetBatching(batchWorkers)
	for i, c := range sc.caps {
		w.res = append(w.res, w.net.AddResource(fmt.Sprintf("r%d", i), c))
	}
	w.net.Observe(func(at simkernel.Time, f *Flow, rate float64) {
		w.log = append(w.log, fmt.Sprintf("obs %x %s %x", math.Float64bits(float64(at)), f.Name, math.Float64bits(rate)))
	})
	for _, op := range sc.ops {
		op := op
		w.sim.At(op.at, func() {
			w.apply(sc, op)
			if onOp != nil {
				onOp(w)
			}
		})
	}
	return w
}

func (w *fzWorld) apply(sc fzScenario, op fop) {
	switch op.kind {
	case fopStart:
		f := &Flow{
			Name:   fmt.Sprintf("f%02d", len(w.started)),
			Volume: 4.0 * float64(1+int(op.a)%32),
			Usage:  map[*Resource]float64{},
		}
		if sc.shared {
			f.Usage[w.res[0]] = 1
		}
		for j := 0; j < len(w.res) && j < 8; j++ {
			if op.b>>uint(j)&1 == 1 {
				f.Usage[w.res[j]] = 0.25 * float64(1+(int(op.a)+j)%4)
			}
		}
		if len(f.Usage) == 0 {
			f.Usage[w.res[int(op.b)%len(w.res)]] = 1
		}
		if op.c%4 == 0 {
			f.Cap = 10.0 * float64(1+int(op.c)%16)
		}
		f.OnComplete = func(at simkernel.Time) {
			w.log = append(w.log, fmt.Sprintf("done %x %s", math.Float64bits(float64(at)), f.Name))
		}
		f.OnAbort = func(at simkernel.Time) {
			w.log = append(w.log, fmt.Sprintf("abort %x %s %x", math.Float64bits(float64(at)), f.Name, math.Float64bits(f.Remaining())))
		}
		w.started = append(w.started, f)
		w.net.Start(f)
	case fopAbort:
		if len(w.started) == 0 {
			return
		}
		f := w.started[int(op.a)%len(w.started)]
		if f.inNet {
			w.net.Abort(f)
		}
	case fopSetCap:
		w.net.SetCapacity(w.res[int(op.a)%len(w.res)], 25.0*float64(int(op.b)%40))
	}
}

// verifyNet is the incremental-path oracle, run after every script op:
//
//  1. Membership: components must partition the active flows; each
//     component's registries must be sorted, mutually consistent and
//     refcount-correct; a non-stale component must be exactly one true
//     connected component of the flow↔resource graph (recomputed here from
//     scratch), and a stale one a disjoint union of true components.
//  2. Rates: re-running the retained reference solver on each component's
//     own flow/resource lists must reproduce the stored rates to 0 ULP —
//     the incremental bookkeeping may never change what gets solved.
//  3. Completion events: every in-flight flow's pending event must sit at
//     exactly the instant scheduleCompletion derives from its settled
//     volume and rate.
func verifyNet(t *testing.T, n *Network) {
	t.Helper()

	// Gather every in-flight flow from the component registries (the
	// network no longer keeps a global list).
	var allFlows []*Flow
	for _, c := range n.comps {
		allFlows = append(allFlows, c.flows...)
	}

	// Recompute true connectivity from scratch (union-find over resources,
	// joined through each active flow's usage vector).
	parent := map[*Resource]*Resource{}
	var find func(r *Resource) *Resource
	find = func(r *Resource) *Resource {
		p, ok := parent[r]
		if !ok || p == r {
			parent[r] = r
			return r
		}
		root := find(p)
		parent[r] = root
		return root
	}
	for _, f := range allFlows {
		r0 := find(f.uses[0].res)
		for i := 1; i < len(f.uses); i++ {
			parent[find(f.uses[i].res)] = r0
			r0 = find(r0)
		}
	}

	totalFlows := 0
	for _, c := range n.comps {
		totalFlows += len(c.flows)
		for i, f := range c.flows {
			if f.comp != c {
				t.Fatalf("flow %s in comp it does not point to", f.Name)
			}
			if i > 0 && !flowBefore(c.flows[i-1], f) {
				t.Fatalf("comp flow list out of order at %s", f.Name)
			}
		}
		roots := map[*Resource]bool{}
		for i, r := range c.resources {
			if r.comp != c {
				t.Fatalf("resource %s in comp it does not point to", r.Name)
			}
			if i > 0 && c.resources[i-1].idx >= r.idx {
				t.Fatalf("comp resource list out of idx order at %s", r.Name)
			}
			active := 0
			for _, f := range allFlows {
				if f.usesRes(r) {
					active++
				}
			}
			if r.nActive != active {
				t.Fatalf("resource %s nActive=%d, %d active flows use it", r.Name, r.nActive, active)
			}
			if active == 0 {
				t.Fatalf("resource %s registered with no active flow", r.Name)
			}
			// The per-resource user index must hold exactly the active
			// flows touching r, with the compiled weights and consistent
			// back-indices (the index itself is unordered).
			if len(r.users) != active {
				t.Fatalf("resource %s user index has %d entries, %d active flows use it", r.Name, len(r.users), active)
			}
			seen := make(map[*Flow]bool, len(r.users))
			for j := range r.users {
				u := r.users[j]
				if seen[u.f] {
					t.Fatalf("resource %s user index lists %s twice", r.Name, u.f.Name)
				}
				seen[u.f] = true
				if int(u.ui) >= len(u.f.uses) || u.f.uses[u.ui].res != r {
					t.Fatalf("resource %s user index back-link ui=%d for %s does not point at r", r.Name, u.ui, u.f.Name)
				}
				if u.f.uses[u.ui].upos != int32(j) {
					t.Fatalf("resource %s user %s has upos=%d, index position %d", r.Name, u.f.Name, u.f.uses[u.ui].upos, j)
				}
				if u.w != u.f.uses[u.ui].w {
					t.Fatalf("resource %s user index weight %v for %s, usage vector says %v", r.Name, u.w, u.f.Name, u.f.uses[u.ui].w)
				}
			}
			roots[find(r)] = true
		}
		if !c.stale && len(roots) != 1 {
			t.Fatalf("non-stale component spans %d true components", len(roots))
		}
		// Every flow's resources must stay inside this component.
		for _, f := range c.flows {
			for i := range f.uses {
				if f.uses[i].res.comp != c {
					t.Fatalf("flow %s uses resource outside its component", f.Name)
				}
			}
		}
	}
	if totalFlows != n.nActive {
		t.Fatalf("components hold %d flows, ActiveFlows says %d", totalFlows, n.nActive)
	}

	// Reference solve per component: 0 ULP against stored rates, then
	// completion events at exactly the derived instants.
	for _, c := range n.comps {
		want := make([]uint64, len(c.flows))
		for i, f := range c.flows {
			want[i] = math.Float64bits(f.rate)
		}
		solveReference(c.flows, c.resources)
		for i, f := range c.flows {
			if got := math.Float64bits(f.rate); got != want[i] {
				t.Fatalf("flow %s rate %x diverged from reference solve %x", f.Name, want[i], got)
			}
		}
		verifyKKT(t, c.flows, c.resources)
		for _, f := range c.flows {
			switch {
			case f.remaining <= 0:
				if f.event == nil || !f.event.Scheduled() || f.event.When() != f.settledAt {
					t.Fatalf("flow %s drained but completion not pending now", f.Name)
				}
			case f.rate <= 0:
				if f.event != nil && f.event.Scheduled() {
					t.Fatalf("flow %s stalled but still has a completion event", f.Name)
				}
			default:
				at := f.settledAt + simkernel.Time(f.remaining/f.rate)
				if f.event == nil || !f.event.Scheduled() {
					t.Fatalf("flow %s running without a completion event", f.Name)
				}
				if f.event.When() != at {
					t.Fatalf("flow %s completion at %v, settled state says %v", f.Name, f.event.When(), at)
				}
			}
		}
	}
}

// FuzzSolveLargeSingleComponent exercises the incremental solver at
// campaign scale, in its own target so its ~0.1-0.2 s executions never
// starve the cheap whole-script differential above. Each input drives
// 256-1024 flows all riding one shared resource (a single connected
// component, like every campaign via the client-stack ramp) plus
// per-group resources, with at most 32 distinct cap values so the pass
// count stays bounded. All flows start up front (cold solves over a
// growing set), then the run drains through completions — every other
// one a warm start — with deterministic mid-run aborts; verifyNet
// re-checks rates against the reference solver at 0 ULP at checkpoints.
func FuzzSolveLargeSingleComponent(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0x03, 0x01, 0x07, 0x13, 0x2a, 0x05, 0x19, 0x40, 0x77, 0x02})
	f.Add([]byte{0x09, 0x01, 0x05, 0x02, 0x61, 0x0e, 0x55, 0x23, 0x31, 0x12, 0x43, 0x09, 0x28, 0x16})
	f.Add([]byte{0x11, 0x02, 0x01, 0x03, 0x66, 0x04, 0x39, 0x51, 0x7f, 0x20, 0x0b, 0x2d})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		fzLargeSingleComponent(t, data)
	})
}

func fzLargeSingleComponent(t *testing.T, data []byte) {
	nFlows := 256 + int(data[1]%3)*384
	sim := simkernel.New()
	net := New(sim)
	shared := net.AddResource("ramp", 2000+100*float64(data[2]%8))
	nExtra := 8 + int(data[3]%4)
	extras := make([]*Resource, nExtra)
	for i := range extras {
		extras[i] = net.AddResource(fmt.Sprintf("x%02d", i), 100+25*float64(int(data[4+i%(len(data)-4)])%24))
	}
	flows := make([]*Flow, nFlows)
	completed := 0
	checkEvery := nFlows / 6
	for i := range flows {
		b := int(data[(5+i)%len(data)])
		f := &Flow{
			Name:   fmt.Sprintf("L%04d", i),
			Volume: 8 + float64(b%64),
			Usage: map[*Resource]float64{
				shared:           0.125,
				extras[i%nExtra]: 0.25 + 0.25*float64(b%4),
			},
		}
		if i%3 != 0 {
			f.Cap = 4 * float64(1+(i*7+b)%32)
		}
		f.OnComplete = func(simkernel.Time) {
			completed++
			if completed%checkEvery != 0 {
				return
			}
			verifyNet(t, net)
			// Abort one survivor so the abort-side warm start runs at
			// scale too.
			for _, g := range flows {
				if g.inNet {
					net.Abort(g)
					return
				}
			}
		}
		flows[i] = f
		net.Start(f)
	}
	verifyNet(t, net)
	if err := sim.Run(); err != nil {
		t.Fatalf("large topology run: %v", err)
	}
	for _, f := range flows {
		if f.inNet {
			t.Fatalf("flow %s still in flight after the queue drained", f.Name)
		}
	}
}

// decodeClusteredScenario is decodeScenario with event clustering: only
// about a quarter of the ops advance virtual time, so most land on the
// same instant as their predecessor — exactly the same-instant arrival/
// completion/capacity clusters the batched flush coalesces. Events that
// actually collide at one instant are what distinguishes the batched and
// event-at-a-time code paths; the spread-out decodeScenario script almost
// never produces them.
func decodeClusteredScenario(data []byte) fzScenario {
	r := &fzReader{data: data}
	var sc fzScenario
	nRes := 3 + int(r.byte()%6)
	sc.caps = make([]float64, nRes)
	for i := range sc.caps {
		sc.caps[i] = 25.0 * float64(1+int(r.byte()%40))
	}
	sc.shared = r.byte()&1 == 1
	t := simkernel.Time(0.25)
	for len(sc.ops) < 48 && !r.done() {
		if r.byte()%4 == 0 {
			t += simkernel.Time(0.25 + 0.25*float64(r.byte()%32))
		}
		k := r.byte() % 4
		op := fop{at: t}
		switch {
		case k <= 1:
			op.kind = fopStart
			op.a, op.b, op.c = r.byte(), r.byte(), r.byte()
		case k == 2:
			op.kind = fopAbort
			op.a = r.byte()
		default:
			op.kind = fopSetCap
			op.a, op.b = r.byte(), r.byte()
		}
		sc.ops = append(sc.ops, op)
	}
	return sc
}

// runInstantLockstep drives two worlds built from the same scenario one
// whole virtual instant at a time and compares the complete per-flow
// state — rate, lazily settled remaining volume, done/in-flight — at
// every instant boundary, with exact float bits. The two worlds may
// differ in intra-instant event cadence (that is the point: batching
// solves once per instant), but at each boundary they must agree to
// 0 ULP, including on when the next event fires at all.
func runInstantLockstep(t *testing.T, a, b *fzWorld, label string, checkB func()) {
	t.Helper()
	for {
		atA, okA := a.sim.NextAt()
		atB, okB := b.sim.NextAt()
		if okA != okB || (okA && math.Float64bits(float64(atA)) != math.Float64bits(float64(atB))) {
			t.Fatalf("%s: event queues desynchronized: next %v/%v vs %v/%v", label, atA, okA, atB, okB)
		}
		if !okA {
			return
		}
		if err := a.sim.RunUntil(atA); err != nil {
			t.Fatalf("%s: world A: %v", label, err)
		}
		if err := b.sim.RunUntil(atB); err != nil {
			t.Fatalf("%s: world B: %v", label, err)
		}
		for i, fa := range a.started {
			fb := b.started[i]
			if math.Float64bits(fa.Rate()) != math.Float64bits(fb.Rate()) ||
				math.Float64bits(fa.Remaining()) != math.Float64bits(fb.Remaining()) ||
				fa.Done() != fb.Done() || fa.inNet != fb.inNet {
				t.Fatalf("%s: flow %s diverged at t=%v: rate %x vs %x, remaining %x vs %x, done %v vs %v, inNet %v vs %v",
					label, fa.Name, atA,
					math.Float64bits(fa.Rate()), math.Float64bits(fb.Rate()),
					math.Float64bits(fa.Remaining()), math.Float64bits(fb.Remaining()),
					fa.Done(), fb.Done(), fa.inNet, fb.inNet)
			}
		}
		if checkB != nil {
			checkB()
		}
	}
}

// FuzzBatchedVsSequentialEvents drives same-instant event clusters
// through three worlds: the event-at-a-time path, the batched path with
// a serial flush, and the batched path with a fuzzed worker count. The
// sequential and serial-batched worlds must agree on full flow state at
// every instant boundary at 0 ULP (verifyNet additionally re-checks the
// batched world's rates against the retained reference oracle at each
// boundary, when it is clean). The two batched worlds share the same
// event cadence, so their complete observable logs — every rate change,
// completion and abort, float bits spelled out — must be byte-identical:
// the component-id-ordered merge makes worker count invisible.
func FuzzBatchedVsSequentialEvents(f *testing.F) {
	f.Add([]byte{0x03, 0x10, 0x20, 0x30, 0x01, 0x00, 0x00, 0x04, 0x40, 0x07, 0x00, 0x02, 0x00, 0x00, 0x06, 0x81, 0x05})
	f.Add([]byte{0x05, 0x08, 0x18, 0x28, 0x38, 0x48, 0x01, 0x00, 0x01, 0x03, 0x22, 0x33, 0x00, 0x44, 0x02, 0x05, 0x07, 0x00, 0x03, 0x06, 0x11})
	f.Add([]byte{0xa1, 0x33, 0x07, 0x1f, 0x40, 0x00, 0x00, 0x00, 0x51, 0x2a, 0x00, 0x00, 0x62, 0x0d, 0x00, 0x00, 0x73, 0x18, 0x04, 0x00, 0x09})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		sc := decodeClusteredScenario(data[1:])
		if len(sc.ops) == 0 {
			return
		}
		workers := 2 + int(data[0]%3)
		seq := buildWorld(sc, false, 0, nil)
		bat := buildWorld(sc, false, 1, nil)
		par := buildWorld(sc, false, workers, nil)
		runInstantLockstep(t, seq, bat, "sequential vs batched", func() { verifyNet(t, bat.net) })
		if err := par.sim.Run(); err != nil {
			t.Fatalf("parallel-batched run: %v", err)
		}
		if len(bat.log) != len(par.log) {
			t.Fatalf("serial-batched log has %d entries, %d-worker log %d\nserial: %v\nparallel: %v",
				len(bat.log), workers, len(par.log), bat.log, par.log)
		}
		for i := range bat.log {
			if bat.log[i] != par.log[i] {
				t.Fatalf("batched logs diverge at %d with %d workers: %q vs %q", i, workers, bat.log[i], par.log[i])
			}
		}
		for i, fb := range bat.started {
			fp := par.started[i]
			if math.Float64bits(fb.Rate()) != math.Float64bits(fp.Rate()) ||
				math.Float64bits(fb.Remaining()) != math.Float64bits(fp.Remaining()) ||
				fb.Done() != fp.Done() {
				t.Fatalf("flow %s final state differs between 1 and %d workers", fb.Name, workers)
			}
		}
	})
}

// FuzzIncrementalVsGlobalSolve drives random topologies through random
// start/abort/SetCapacity scripts and checks the incremental
// component-scoped engine two ways. Always: after every op, component
// membership is re-derived from scratch and each component's rates and
// completion events are re-checked against the retained reference solver
// (0 ULP). When the decoded scenario routes every flow through a shared
// resource (one connected component — the shape every campaign has, via
// the client stack ramp), the same script also runs on a forceGlobal twin
// network that reproduces the historical always-global solve, and the two
// worlds' full observable logs — every rate change, completion and abort,
// with exact float bits — must be identical.
func FuzzIncrementalVsGlobalSolve(f *testing.F) {
	f.Add([]byte{0x03, 0x10, 0x20, 0x30, 0x01, 0x00, 0x04, 0x40, 0x07, 0x02, 0x00, 0x06, 0x81, 0x05})
	f.Add([]byte{0x05, 0x08, 0x18, 0x28, 0x38, 0x48, 0x00, 0x01, 0x03, 0x22, 0x33, 0x44, 0x02, 0x05, 0x07, 0x03, 0x06, 0x11})
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, 0x00})
	f.Add([]byte{0x04, 0x01, 0x02, 0x03, 0x04, 0x05, 0x01, 0x01, 0x10, 0x03, 0x01, 0x01, 0x20, 0x0c, 0x01, 0x01, 0x30, 0x30, 0x02, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := decodeScenario(data)
		if len(sc.ops) == 0 {
			return
		}
		inc := buildWorld(sc, false, 0, func(w *fzWorld) { verifyNet(t, w.net) })
		if err := inc.sim.Run(); err != nil {
			t.Fatalf("incremental run: %v", err)
		}
		verifyNet(t, inc.net)

		if !sc.shared {
			return
		}
		ref := buildWorld(sc, true, 0, nil)
		if err := ref.sim.Run(); err != nil {
			t.Fatalf("reference run: %v", err)
		}
		if len(inc.log) != len(ref.log) {
			t.Fatalf("incremental log has %d entries, global reference %d\ninc: %v\nref: %v",
				len(inc.log), len(ref.log), inc.log, ref.log)
		}
		for i := range inc.log {
			if inc.log[i] != ref.log[i] {
				t.Fatalf("log diverges at %d: incremental %q, global reference %q", i, inc.log[i], ref.log[i])
			}
		}
		for i, fi := range inc.started {
			fr := ref.started[i]
			if math.Float64bits(fi.Rate()) != math.Float64bits(fr.Rate()) ||
				math.Float64bits(fi.Remaining()) != math.Float64bits(fr.Remaining()) ||
				fi.Done() != fr.Done() {
				t.Fatalf("flow %s final state diverged: rate %v vs %v, remaining %v vs %v, done %v vs %v",
					fi.Name, fi.Rate(), fr.Rate(), fi.Remaining(), fr.Remaining(), fi.Done(), fr.Done())
			}
		}
	})
}
