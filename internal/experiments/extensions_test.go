package experiments

import (
	"math"
	"testing"
)

func TestExtNN(t *testing.T) {
	rows, err := ExtNN(Options{Reps: 6, Seed: 1, FastProtocol: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// With an unconstrained MDS, N-N tracks N-1 within 15% (same
		// striping math, slightly different chooser state).
		ratio := r.PerProcMean / r.SharedMean
		if ratio < 0.8 || ratio > 1.2 {
			t.Errorf("%dx%d: N-N/N-1 = %v, want ~1", r.Nodes, r.PPN, ratio)
		}
		// The rate-limited MDS costs N-N bandwidth, more at larger scale.
		if r.PerProcLimitedMean >= r.PerProcMean {
			t.Errorf("%dx%d: MDS limit did not slow N-N (%v vs %v)", r.Nodes, r.PPN, r.PerProcLimitedMean, r.PerProcMean)
		}
	}
	// Metadata toll grows with process count: 16x16 loses more than 4x8.
	lossSmall := 1 - rows[0].PerProcLimitedMean/rows[0].PerProcMean
	lossBig := 1 - rows[3].PerProcLimitedMean/rows[3].PerProcMean
	if lossBig <= lossSmall {
		t.Fatalf("metadata toll not growing with scale: %.1f%% -> %.1f%%", lossSmall*100, lossBig*100)
	}
}

func TestExtRead(t *testing.T) {
	rows, err := ExtRead(Options{Reps: 20, Seed: 1, FastProtocol: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Symmetric service model: read within 10% of write (reads skip
		// the setup overhead, so slightly faster).
		ratio := r.ReadMean / r.WriteMean
		if ratio < 0.9 || ratio > 1.15 {
			t.Errorf("count %d: read/write = %v, want ~1", r.Count, ratio)
		}
		// The Figure 6a bimodality carries over to reads (the allocation
		// is a property of the file, not the direction).
		if r.WriteBimodal != r.ReadBimodal {
			t.Errorf("count %d: bimodality differs between write (%v) and read (%v)",
				r.Count, r.WriteBimodal, r.ReadBimodal)
		}
	}
	// Count-8 reads reach the same peak as writes.
	if math.Abs(rows[7].ReadMean-rows[7].WriteMean)/rows[7].WriteMean > 0.1 {
		t.Fatalf("count-8 read %v vs write %v", rows[7].ReadMean, rows[7].WriteMean)
	}
}
