package core

import (
	"fmt"
	"math"

	"repro/internal/beegfs"
)

// Model is the closed-form analytic performance model of DESIGN.md §3. It
// predicts the deterministic (jitter-free, setup-free) write bandwidth of
// an IOR-style N-1 run for a given allocation, mirroring exactly the
// constraints the flow simulator enforces — the cross-validation tests in
// model_test.go check the two agree.
type Model struct {
	// FS carries the storage device model, server NIC capacity and client
	// ramp parameters.
	FS beegfs.Config
	// ClientNIC is each compute node's link capacity (0 = unconstrained).
	ClientNIC float64
	// TransferSize is the request size (sets per-target queue depth);
	// defaults to 1 MiB when zero.
	TransferSize int64
}

// targetDepth returns the total request-queue depth per target for an
// application with the given geometry.
func (m Model) targetDepth(alloc Allocation, nodes, ppn int) float64 {
	k := alloc.Count()
	transfer := m.TransferSize
	if transfer == 0 {
		transfer = 1 * beegfs.MiB
	}
	inflight := float64(transfer) / float64(m.FS.DefaultPattern.ChunkSize)
	if inflight < 1 {
		inflight = 1
	}
	scale := m.FS.DepthScale(ppn)
	return float64(nodes*ppn) * scale * inflight / float64(k)
}

// ServerSideBandwidth returns the bandwidth bound imposed by the storage
// servers (devices + controllers + server NICs) for the allocation: the
// striping sends share m_i/k to server i, so completion is set by the
// slowest server and BW = k · min_i hostRate(m_i)/m_i.
func (m Model) ServerSideBandwidth(alloc Allocation, nodes, ppn int) float64 {
	k := alloc.Count()
	if k == 0 {
		return 0
	}
	depth := m.targetDepth(alloc, nodes, ppn)
	sat := 1.0
	if m.FS.Storage.SatHalf > 0 {
		sat = depth / (depth + m.FS.Storage.SatHalf)
	}
	targetRate := m.FS.Storage.SingleTargetRate * sat
	best := math.Inf(1)
	for _, mi := range alloc.PerHost {
		if mi == 0 {
			continue
		}
		hostRate := math.Min(float64(mi)*targetRate, m.FS.Storage.HostCapacity(mi))
		if m.FS.ServerNICCapacity > 0 {
			hostRate = math.Min(hostRate, m.FS.ServerNICCapacity)
		}
		if r := hostRate / float64(mi); r < best {
			best = r
		}
	}
	return float64(k) * best
}

// ClientSideBandwidth returns the bound imposed by the compute side: node
// NICs and the client-stack ramp.
func (m Model) ClientSideBandwidth(nodes, ppn int) float64 {
	bw := math.Inf(1)
	if m.ClientNIC > 0 {
		bw = float64(nodes) * m.ClientNIC
	}
	if cap := m.FS.ClientRampCap(nodes, ppn); cap > 0 {
		bw = math.Min(bw, cap*float64(nodes*ppn))
	}
	return bw
}

// Bandwidth predicts the deterministic aggregate write bandwidth (MiB/s).
func (m Model) Bandwidth(alloc Allocation, nodes, ppn int) float64 {
	if alloc.Count() == 0 || nodes <= 0 || ppn <= 0 {
		return 0
	}
	return math.Min(m.ServerSideBandwidth(alloc, nodes, ppn), m.ClientSideBandwidth(nodes, ppn))
}

// NetworkLimitedBandwidth is the pure §IV-C1 formula (Figure 9): when the
// per-server link of capacity B is the bottleneck, bandwidth is B divided
// by the largest per-server data share. Exposed separately because it is
// the paper's headline explanation for Figure 8.
func NetworkLimitedBandwidth(alloc Allocation, linkCapacity float64) float64 {
	share := alloc.MaxShare()
	if share == 0 {
		return 0
	}
	return linkCapacity / share
}

// HostTimeline describes one server's part in a write — the Figure 9
// timeline: the server receives Share of the volume at Rate and finishes
// at Finish.
type HostTimeline struct {
	Host    int     // index in the allocation's sorted PerHost
	Targets int     // targets on this server
	Share   float64 // fraction of the file's bytes
	Rate    float64 // MiB/s the server sustains
	Finish  float64 // seconds until this server is done
}

// Timeline reproduces Figure 9 quantitatively: for a volume (MiB) written
// over the allocation with per-server rate bounds, it returns each
// server's share, rate and finish time. The aggregate bandwidth is
// volume / max(Finish).
func (m Model) Timeline(alloc Allocation, volumeMiB float64, nodes, ppn int) ([]HostTimeline, error) {
	k := alloc.Count()
	if k == 0 {
		return nil, fmt.Errorf("core: empty allocation")
	}
	if volumeMiB <= 0 {
		return nil, fmt.Errorf("core: non-positive volume")
	}
	depth := m.targetDepth(alloc, nodes, ppn)
	sat := 1.0
	if m.FS.Storage.SatHalf > 0 {
		sat = depth / (depth + m.FS.Storage.SatHalf)
	}
	targetRate := m.FS.Storage.SingleTargetRate * sat
	out := make([]HostTimeline, 0, len(alloc.PerHost))
	for i, mi := range alloc.PerHost {
		ht := HostTimeline{Host: i, Targets: mi}
		if mi == 0 {
			out = append(out, ht)
			continue
		}
		rate := math.Min(float64(mi)*targetRate, m.FS.Storage.HostCapacity(mi))
		if m.FS.ServerNICCapacity > 0 {
			rate = math.Min(rate, m.FS.ServerNICCapacity)
		}
		ht.Share = float64(mi) / float64(k)
		ht.Rate = rate
		ht.Finish = ht.Share * volumeMiB / rate
		out = append(out, ht)
	}
	return out, nil
}
