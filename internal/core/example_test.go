package core_test

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
)

// The paper's (min,max) notation for OST allocations (§IV-C, Figure 7).
func ExampleAllocation() {
	a := core.NewAllocation([]int{3, 1}) // 1 target on one server, 3 on the other
	fmt.Println(a, "balanced:", a.Balanced(), "ratio:", a.BalanceRatio())
	b := core.NewAllocation([]int{2, 2})
	fmt.Println(b, "balanced:", b.Balanced(), "ratio:", b.BalanceRatio())
	// Output:
	// (1,3) balanced: false ratio: 0.3333333333333333
	// (2,2) balanced: true ratio: 1
}

// Figure 9's arithmetic: with per-server links of capacity B, bandwidth is
// B divided by the largest per-server data share.
func ExampleNetworkLimitedBandwidth() {
	b := 1100.0 // PlaFRIM's effective 10 GbE link
	for _, perHost := range [][]int{{1, 1}, {1, 3}, {0, 2}} {
		a := core.NewAllocation(perHost)
		fmt.Printf("%s -> %.0f MiB/s\n", a, core.NetworkLimitedBandwidth(a, b))
	}
	// Output:
	// (1,1) -> 2200 MiB/s
	// (1,3) -> 1467 MiB/s
	// (0,2) -> 1100 MiB/s
}

// The analytic model predicts the paper's headline numbers closed-form.
func ExampleModel_Bandwidth() {
	p := cluster.PlaFRIM(cluster.Scenario1Ethernet)
	m := core.Model{FS: p.FS, ClientNIC: p.ClientNICCapacity}
	// 8 nodes x 8 ppn, the Figure 6a geometry.
	fmt.Printf("round-robin count 4 (1,3): %.0f MiB/s\n", m.Bandwidth(core.NewAllocation([]int{1, 3}), 8, 8))
	fmt.Printf("count 8 (4,4):            %.0f MiB/s\n", m.Bandwidth(core.NewAllocation([]int{4, 4}), 8, 8))
	// Output:
	// round-robin count 4 (1,3): 1467 MiB/s
	// count 8 (4,4):            2200 MiB/s
}

// The rotating round-robin chooser's allocation distribution on PlaFRIM's
// registration order: stripe count 4 is ALWAYS (1,3) — §IV-C1's key
// observation.
func ExampleRoundRobinDistribution() {
	order := []int{0, 1, 1, 1, 1, 0, 0, 0} // 101,201,202,203,204,102,103,104
	for _, k := range []int{2, 4, 8} {
		dist, _ := core.RoundRobinDistribution(order, k)
		fmt.Printf("count %d:", k)
		for _, ap := range dist {
			fmt.Printf(" %s p=%.2f", ap.Alloc, ap.P)
		}
		fmt.Println()
	}
	// Output:
	// count 2: (0,2) p=0.50 (1,1) p=0.50
	// count 4: (1,3) p=1.00
	// count 8: (4,4) p=1.00
}
