// Command iorsim is an IOR-lookalike front-end to the simulator: it takes
// (a subset of) IOR's flags, runs the workload against a simulated
// platform, and prints an IOR-style summary. It exists so that people who
// know the original tool can drive the reproduction with familiar muscle
// memory:
//
//	iorsim -b 1g -t 1m -i 10 -scenario 1 -nodes 8 -ppn 8 -count 4
//	iorsim -F -w -r -b 256m -t 1m -nodes 4 -ppn 4
//
// Sizes accept k/m/g suffixes (KiB/MiB/GiB), as in IOR. Repetitions are
// independent simulations and run concurrently under -workers; the
// reported numbers are identical for every worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ior"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/stats"
)

func main() {
	var (
		api      = flag.String("a", "POSIX", "API (POSIX only, as in the paper)")
		bStr     = flag.String("b", "1g", "block size per task (accepts k/m/g)")
		tStr     = flag.String("t", "1m", "transfer size (accepts k/m/g)")
		segments = flag.Int("s", 1, "segment count")
		fpp      = flag.Bool("F", false, "file-per-process (N-N) instead of shared file (N-1)")
		write    = flag.Bool("w", true, "write benchmark")
		read     = flag.Bool("r", false, "read back after the write phase")
		reps     = flag.Int("i", 1, "repetitions")
		out      = flag.String("o", "/iorsim.dat", "output file path")
		scenario = flag.Int("scenario", 1, "PlaFRIM scenario: 1 (Ethernet) or 2 (Omnipath)")
		nodes    = flag.Int("nodes", 8, "compute nodes")
		ppn      = flag.Int("ppn", 8, "processes per node")
		count    = flag.Int("count", 0, "stripe count (0 = directory default)")
		seed     = flag.Uint64("seed", 1, "seed")
		workers  = flag.Int("workers", 0, "concurrent repetitions (0 = one per CPU, 1 = serial; same results either way)")
		metrics  = flag.String("metrics", "", "write merged observability metrics to this JSON file (plus a summary table on stderr)")
		prom     = flag.String("prom", "", "write merged observability metrics to this file as OpenMetrics text")
		influx   = flag.String("influx", "", "write merged observability metrics to this file as InfluxDB line protocol")
		trace    = flag.String("trace", "", "write one repetition's Chrome trace-event JSON to this file (perfetto-loadable)")
		utilCSV  = flag.String("utilcsv", "", "write the traced repetition's per-OST utilization timeline to this CSV file")
		serve    = flag.String("serve", "", "serve live /metrics (OpenMetrics) and /runs (progress) on this address while the run executes (e.g. 127.0.0.1:9464, or :0)")
		linger   = flag.Duration("serve-linger", 0, "keep the -serve endpoint up this long after the run finishes")
		// Heartbeat-driven failure detection (0 = the default omniscient
		// model; healthy runs report identical numbers either way).
		hbInterval = flag.Float64("hb-interval", 0, "management heartbeat interval in seconds (0 = omniscient failure detection)")
		hbTimeout  = flag.Float64("hb-timeout", 0, "silence before a target is probably-offline (default 2x -hb-interval)")
		hbOffline  = flag.Float64("hb-offline", 0, "silence before a target is declared offline (default 5x -hb-interval)")
		rpcTimeout = flag.Float64("rpc-timeout", 0, "extra delay a client pays per RPC issued against a stale target view")

		hier    = flag.Int("hier", 0, "hierarchical solver workers (0 = off; exact mode is bit-identical to the flat solver)")
		hierErr = flag.Float64("hier-err", 0, "hierarchical bounded-error mode: max relative rate error (0 = exact; needs -hier > 0)")
	)
	flag.Parse()
	hb := heartbeatConfig{Interval: *hbInterval, Timeout: *hbTimeout, Offline: *hbOffline, RPCTimeout: *rpcTimeout}
	hc := hierConfig{Workers: *hier, MaxRelErr: *hierErr}
	oc := obsConfig{Metrics: *metrics, Prom: *prom, Influx: *influx, Trace: *trace, UtilCSV: *utilCSV, Serve: *serve, Linger: *linger}
	if err := run(*api, *bStr, *tStr, *segments, *fpp, *write, *read, *reps, *out, *scenario, *nodes, *ppn, *count, *seed, *workers, oc, hb, hc); err != nil {
		fmt.Fprintln(os.Stderr, "iorsim:", err)
		os.Exit(1)
	}
}

// obsConfig carries the observability flags: each non-empty path becomes
// one sink on the run's metrics pipeline, and Serve exposes the live
// /metrics and /runs endpoints while repetitions execute.
type obsConfig struct {
	Metrics, Prom, Influx, Trace, UtilCSV string
	Serve                                 string
	Linger                                time.Duration
}

func (oc obsConfig) enabled() bool {
	return oc.Metrics != "" || oc.Prom != "" || oc.Influx != "" || oc.Trace != "" || oc.UtilCSV != "" || oc.Serve != ""
}

// pipeline builds the sink set the flags describe (nil when no
// observability flag was given).
func (oc obsConfig) pipeline() *obs.Pipeline {
	if !oc.enabled() {
		return nil
	}
	pl := obs.NewPipeline()
	if oc.Metrics != "" {
		pl.AddSink(obs.NewJSONSink(oc.Metrics))
	}
	if oc.Prom != "" {
		pl.AddSink(obs.NewPromSink(oc.Prom))
	}
	if oc.Influx != "" {
		pl.AddSink(obs.NewInfluxSink(oc.Influx))
	}
	if oc.Trace != "" {
		pl.AddSink(obs.NewTraceSink(pl, oc.Trace))
	}
	if oc.UtilCSV != "" {
		pl.AddSink(obs.NewUtilCSVSink(pl, oc.UtilCSV, "ost"))
	}
	return pl
}

// heartbeatConfig carries the optional heartbeat-detection flags into the
// deployed platform.
type heartbeatConfig struct {
	Interval, Timeout, Offline, RPCTimeout float64
}

// hierConfig carries the optional hierarchical-solver flags. On the
// single-fabric PlaFRIM platforms the only declared separator is the
// client-stack ramp, so the solver usually declines the partition and
// falls back flat — the flags mainly exist so the exact mode's
// bit-identity contract can be spot-checked from the command line.
type hierConfig struct {
	Workers   int
	MaxRelErr float64
}

func run(api, bStr, tStr string, segments int, fpp, write, read bool, reps int, out string, scenario, nodes, ppn, count int, seed uint64, workers int, oc obsConfig, hb heartbeatConfig, hc hierConfig) error {
	if !strings.EqualFold(api, "POSIX") {
		return fmt.Errorf("only -a POSIX is supported (the paper's configuration)")
	}
	if !write {
		return fmt.Errorf("-w=false: nothing to do (reads need written data first; combine -w -r)")
	}
	block, err := parseSize(bStr)
	if err != nil {
		return fmt.Errorf("-b: %w", err)
	}
	transfer, err := parseSize(tStr)
	if err != nil {
		return fmt.Errorf("-t: %w", err)
	}
	var scen cluster.Scenario
	switch scenario {
	case 1:
		scen = cluster.Scenario1Ethernet
	case 2:
		scen = cluster.Scenario2Omnipath
	default:
		return fmt.Errorf("-scenario must be 1 or 2")
	}
	platform := cluster.PlaFRIM(scen)
	if hb.Interval > 0 {
		platform.FS.HeartbeatInterval = hb.Interval
		platform.FS.HeartbeatTimeout = hb.Timeout
		platform.FS.OfflineTimeout = hb.Offline
		platform.FS.RPCTimeout = hb.RPCTimeout
	} else if hb.Interval < 0 {
		return fmt.Errorf("-hb-interval must be positive")
	} else if hb.Timeout > 0 || hb.Offline > 0 || hb.RPCTimeout > 0 {
		return fmt.Errorf("-hb-timeout/-hb-offline/-rpc-timeout need -hb-interval > 0")
	}
	if hc.Workers < 0 {
		return fmt.Errorf("-hier must be >= 0")
	}
	if hc.MaxRelErr < 0 || (hc.MaxRelErr > 0 && hc.Workers == 0) {
		return fmt.Errorf("-hier-err needs -hier > 0 and a non-negative bound")
	}
	params := ior.Params{
		Nodes: nodes, PPN: ppn,
		BlockSize:    block,
		TransferSize: transfer,
		Segments:     segments,
		StripeCount:  count,
		Path:         out,
		ReadBack:     read,
		SetupMean:    platform.SetupMean,
		SetupCV:      platform.SetupCV,
	}
	if fpp {
		params.Pattern = ior.FilePerProcess
	}
	if err := params.Validate(); err != nil {
		return err
	}

	fmt.Printf("iorsim — simulated IOR (paper: Boito/Pallez/Teylo, CLUSTER'22)\n")
	fmt.Printf("platform    : %s\n", platform.Name)
	fmt.Printf("api         : POSIX, access: %s\n", params.Pattern)
	fmt.Printf("clients     : %d nodes x %d ppn = %d tasks\n", nodes, ppn, nodes*ppn)
	fmt.Printf("block/xfer  : %s / %s, segments: %d\n", bStr, tStr, segments)
	fmt.Printf("aggregate   : %.1f GiB\n", float64(params.TotalBytes())/float64(beegfs.GiB))
	fmt.Printf("repetitions : %d\n\n", reps)

	// Each repetition is an isolated simulation: a private rng stream split
	// by repetition index, a fresh deployment, and the round-robin cursor
	// position the serial loop would have reached (one file per rep for N-1,
	// one per task for N-N). The worker pool therefore reproduces the
	// serial numbers bit-for-bit, merged back in repetition order.
	src := rng.New(seed)
	nTargets := platform.FS.Hosts * platform.FS.TargetsPerHost
	effCount := count
	if effCount <= 0 {
		effCount = platform.FS.DefaultPattern.Count
	}
	if effCount > nTargets {
		effCount = nTargets
	}
	files := 1
	if fpp {
		files = nodes * ppn
	}
	pl := oc.pipeline()
	pl.StartRun("iorsim", reps)
	var srv *obs.Server
	if oc.Serve != "" {
		s, err := obs.Serve(pl, oc.Serve)
		if err != nil {
			return err
		}
		srv = s
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "iorsim: serving /metrics and /runs on http://%s\n", srv.Addr())
	}
	results := make([]ior.Result, reps)
	runRep := func(rep int) error {
		repSrc := src.Split(uint64(rep))
		p := platform
		if cl, ok := p.FS.Chooser.(beegfs.CloneChooser); ok {
			p.FS.Chooser = cl.Clone()
		}
		dep, err := p.Deploy()
		if err != nil {
			return err
		}
		if hc.Workers > 0 {
			dep.Net.SetHierarchical(hc.Workers, hc.MaxRelErr)
		}
		// A nil pipeline hands out a nil collector whose methods no-op, so
		// the disabled path stays a pointer check per site.
		col := pl.Collector()
		var st *cluster.RunStats
		if col != nil {
			st = dep.EnableStats()
		}
		if tr := pl.Tracer(); tr.Claim() {
			dep.AttachTracer(tr)
		}
		if cc, ok := p.FS.Chooser.(beegfs.CursorChooser); ok {
			cc.SetCursor(rep * files * effCount % nTargets)
		}
		dep.ReJitter(repSrc)
		res, err := ior.Execute(dep.FS, dep.Nodes(nodes), params, repSrc)
		if err != nil {
			return err
		}
		st.FlushTo(col)
		col.Release()
		pl.RepDone("iorsim")
		if err := pl.FlushSinks(); err != nil {
			return err
		}
		results[rep] = res
		return nil
	}
	if err := forEachRep(reps, workers, runRep); err != nil {
		return err
	}
	if pl != nil {
		tracer := pl.Tracer()
		if err := pl.Close(); err != nil {
			return err
		}
		if oc.Metrics != "" {
			fmt.Fprint(os.Stderr, pl.Registry().Summary())
		}
		if oc.Trace != "" {
			fmt.Fprintf(os.Stderr, "trace: %d events in %s (load at https://ui.perfetto.dev)\n",
				tracer.Events(), oc.Trace)
		}
	}
	if srv != nil {
		time.Sleep(oc.Linger)
	}

	var writes, reads []float64
	fmt.Printf("%-4s  %12s  %12s  %-8s\n", "rep", "write(MiB/s)", "read(MiB/s)", "alloc")
	for rep, res := range results {
		writes = append(writes, res.Bandwidth)
		alloc := core.FromPerHostMap(res.PerHost, platform.FS.Hosts)
		readCol := "-"
		if read {
			reads = append(reads, res.ReadBandwidth)
			readCol = fmt.Sprintf("%.2f", res.ReadBandwidth)
		}
		fmt.Printf("%-4d  %12.2f  %12s  %-8s\n", rep+1, res.Bandwidth, readCol, alloc)
	}
	fmt.Println()
	printSummary("write", writes)
	if read {
		printSummary("read", reads)
	}
	return nil
}

// forEachRep runs fn(0..n-1) on up to `workers` goroutines (0 = one per
// CPU; <=1 inline). On failure the lowest-index error wins — the one the
// serial loop would have hit first.
func forEachRep(n, workers int, fn func(int) error) error {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var minErr atomic.Int64
	minErr.Store(int64(n))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if int64(i) > minErr.Load() {
					continue
				}
				if err := fn(i); err != nil {
					errs[i] = err
					for {
						cur := minErr.Load()
						if int64(i) >= cur || minErr.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if m := minErr.Load(); m < int64(n) {
		return errs[m]
	}
	return nil
}

func printSummary(op string, samples []float64) {
	s, err := stats.Summarize(samples)
	if err != nil {
		return
	}
	fmt.Printf("Max %-5s: %10.2f MiB/sec\n", op, s.Max)
	fmt.Printf("Min %-5s: %10.2f MiB/sec\n", op, s.Min)
	fmt.Printf("Mean %-4s: %10.2f MiB/sec (sd %.2f)\n", op, s.Mean, s.SD)
}

func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return 0, fmt.Errorf("empty size")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k':
		mult, s = beegfs.KiB, s[:len(s)-1]
	case 'm':
		mult, s = beegfs.MiB, s[:len(s)-1]
	case 'g':
		mult, s = beegfs.GiB, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	if v <= 0 {
		return 0, fmt.Errorf("size must be positive")
	}
	return v * mult, nil
}
