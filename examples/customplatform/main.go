// Customplatform: the paper's §VI future work — apply the methodology to
// a *different* deployment: four storage hosts with four OSTs each on a
// 25 GbE fabric, comparing target choosers. It shows the generality of
// both the simulator and the recommendation ("use the maximum stripe
// count; balance across servers").
package main

import (
	"fmt"
	"log"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ior"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/stats"
)

func main() {
	const (
		hosts   = 4
		perHost = 4
		link    = 3125.0 // 25 GbE in MiB/s
	)
	for _, chooser := range []beegfs.TargetChooser{
		&beegfs.RoundRobinChooser{},
		beegfs.RandomChooser{},
		&beegfs.BalancedChooser{},
	} {
		p, err := cluster.Custom("quad-oss", hosts, perHost, link, chooser)
		if err != nil {
			log.Fatal(err)
		}
		dep, err := p.Deploy()
		if err != nil {
			log.Fatal(err)
		}
		src := rng.New(11)
		t := report.NewTable(
			fmt.Sprintf("quad-OSS platform (4 hosts x 4 OSTs, 25 GbE), chooser %s", chooser.Name()),
			"count", "mean_mibs", "sd", "worst", "best")
		for _, count := range []int{2, 4, 8, 12, 16} {
			params := ior.Params{
				Nodes: 16, PPN: 8,
				TransferSize: 1 * beegfs.MiB,
				StripeCount:  count,
				SetupMean:    p.SetupMean, SetupCV: p.SetupCV,
			}.WithTotalSize(32 * beegfs.GiB)
			var samples []float64
			for rep := 0; rep < 12; rep++ {
				dep.ReJitter(src)
				res, err := ior.Execute(dep.FS, dep.Nodes(16), params, src)
				if err != nil {
					log.Fatal(err)
				}
				samples = append(samples, res.Bandwidth)
			}
			s, err := stats.Summarize(samples)
			if err != nil {
				log.Fatal(err)
			}
			t.AddRow(count, s.Mean, s.SD, s.Min, s.Max)
		}
		fmt.Println(t.String())
	}

	// The closed-form recommender handles the 4-host layout too.
	p, err := cluster.Custom("quad-oss", hosts, perHost, link, &beegfs.RoundRobinChooser{})
	if err != nil {
		log.Fatal(err)
	}
	m := core.Model{FS: p.FS, ClientNIC: p.ClientNICCapacity}
	// Host-interleaved registration order: 0,1,2,3,0,1,2,3,...
	order := make([]int, hosts*perHost)
	for i := range order {
		order[i] = i % hosts
	}
	rec, err := core.Recommend(m, order, "roundrobin", 4, 16, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recommender on the quad-OSS platform: default stripe count %d (gain %+.0f%% over count 4)\n",
		rec.BestCount, rec.Gain*100)
	fmt.Println("the paper's conclusion generalizes: maximum stripe count, balanced placement.")
}
