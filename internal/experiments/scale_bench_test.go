package experiments

import (
	"testing"

	"repro/internal/cluster"
)

// churn10kTopo floods the large fat tree: arrivals far faster than
// completions, so nearly every job is still in flight when the last one
// arrives — north of 10k concurrent flows at peak.
var churn10kTopo = scaleTopo{
	name: "churn10k",
	spec: cluster.FatTreeSpec{
		Racks: 12, OSSPerRack: 4, TargetsPerOSS: 8,
		LinkRate: 2500, UplinkRate: 10000,
	},
	meanGap:     0.004,
	nodesBase:   4,
	nodesSpread: 4,
}

const churn10kJobs = 4000

// benchmarkScaleChurn runs the full 10k-flow churn once per iteration and
// reports solver work per simulated event. The acceptance numbers live in
// BENCH_PR7.json as informational entries (not CI-gated — a full churn is
// too long for the bench-smoke job): batched mode must sustain >=10k
// concurrent flows and improve ns per event by >=3x over unbatched.
// Run with -benchtime 1x.
func benchmarkScaleChurn(b *testing.B, mode string, workers int) {
	for i := 0; i < b.N; i++ {
		row, err := runScaleCell(churn10kTopo, mode, workers, churn10kJobs, 17)
		if err != nil {
			b.Fatal(err)
		}
		if row.PeakFlows < 10_000 {
			b.Fatalf("peak concurrent flows = %d, want >= 10000", row.PeakFlows)
		}
		b.ReportMetric(row.WallSec*1e9/float64(row.Events), "ns/event")
		b.ReportMetric(row.SolvesPerEvent, "solves/event")
		b.ReportMetric(float64(row.PeakFlows), "peak-flows")
	}
}

// churnCoreTopo is the oversubscribed FatTreeCore shape: every rack
// uplink shares the core switch, so the drain-pair traffic fuses the
// whole fabric into ONE component and per-component batching cannot help
// — the case the hierarchical solver exists for.
var churnCoreTopo = hierScaleTopo{
	name: "churn-core",
	spec: cluster.FatTreeSpec{
		Racks: 16, OSSPerRack: 4, TargetsPerOSS: 8,
		LinkRate: 2500, UplinkRate: 10000,
	},
	meanGap:     0.004,
	nodesBase:   4,
	nodesSpread: 4,
}

const churnCoreJobs = 2600

// benchmarkScaleChurnCore runs the single-component core churn once flat
// and once hierarchically (exact mode, 8 workers) per iteration, reports
// both per-event costs, and FAILS below the 3x improvement floor — the
// PR's acceptance gate, enforced as a wall-clock ratio on the same run so
// it holds on any hardware. Run with -benchtime 1x.
func benchmarkScaleChurnCore(b *testing.B, hierWorkers int) {
	for i := 0; i < b.N; i++ {
		flat, err := runHierScaleCell(churnCoreTopo, "flat", 0, 0, 0, churnCoreJobs, 17)
		if err != nil {
			b.Fatal(err)
		}
		hier, err := runHierScaleCell(churnCoreTopo, "hier-exact", 0, hierWorkers, 0, churnCoreJobs, 17)
		if err != nil {
			b.Fatal(err)
		}
		if hier.PeakFlows < 10_000 {
			b.Fatalf("peak concurrent flows = %d, want >= 10000", hier.PeakFlows)
		}
		if hier.HierSolves == 0 {
			b.Fatal("hierarchical mode never engaged on the fused component")
		}
		if hier.Events != flat.Events || hier.BWMean != flat.BWMean {
			b.Fatalf("exact mode diverged from flat: events %d vs %d, bw %v vs %v",
				hier.Events, flat.Events, hier.BWMean, flat.BWMean)
		}
		imp := flat.WallSec / hier.WallSec
		b.ReportMetric(hier.WallSec*1e9/float64(hier.Events), "ns/event")
		b.ReportMetric(flat.WallSec*1e9/float64(flat.Events), "flat-ns/event")
		b.ReportMetric(imp, "improvement")
		b.ReportMetric(float64(hier.PeakFlows), "peak-flows")
		if imp < 3 {
			b.Fatalf("hierarchical improvement %.2fx on the core churn, want >= 3x", imp)
		}
	}
}

func BenchmarkScaleChurn10k(b *testing.B) {
	b.Run("unbatched", func(b *testing.B) { benchmarkScaleChurn(b, "unbatched", 0) })
	b.Run("batched", func(b *testing.B) { benchmarkScaleChurn(b, "batched", scaleBatchWorkers) })
	b.Run("core-hier8", func(b *testing.B) { benchmarkScaleChurnCore(b, 8) })
}
