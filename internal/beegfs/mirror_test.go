package beegfs

import (
	"testing"

	"repro/internal/simkernel"
	"repro/internal/simnet"
	"repro/internal/storagesim"
)

func TestBuddyGroupsPairAcrossHosts(t *testing.T) {
	_, fs := newFS(t, testConfig())
	groups, err := BuddyGroups(fs.Storage())
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(groups))
	}
	for _, g := range groups {
		if g.Primary.Host() == g.Secondary.Host() {
			t.Fatalf("group %d pairs targets on the same host", g.ID)
		}
	}
	// Pairing is positional: 101<->201, 102<->202, ...
	if groups[0].Primary.ID != 101 || groups[0].Secondary.ID != 201 {
		t.Fatalf("group 1 = %d/%d", groups[0].Primary.ID, groups[0].Secondary.ID)
	}
}

func TestBuddyGroupsRejectOddHosts(t *testing.T) {
	sim := simkernel.New()
	net := simnet.New(sim)
	sys, err := storagesim.NewSystem(net, storagesim.PlaFRIMConfig(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuddyGroups(sys); err == nil {
		t.Fatal("odd host count accepted")
	}
}

func TestCreateMirrored(t *testing.T) {
	_, fs := newFS(t, testConfig())
	f, err := fs.CreateMirrored("/m", 2, 512*KiB)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Mirrored() {
		t.Fatal("file not mirrored")
	}
	if len(f.Targets) != 2 || len(f.MirrorIDs()) != 2 {
		t.Fatalf("targets/mirrors = %d/%d", len(f.Targets), len(f.MirrorIDs()))
	}
	// Primary and mirror of each stripe sit on different hosts.
	for i, tg := range f.Targets {
		if tg.ID == f.MirrorIDs()[i] {
			t.Fatal("stripe mirrors itself")
		}
	}
	if _, err := fs.CreateMirrored("/bad", 99, 512*KiB); err == nil {
		t.Fatal("oversized mirrored count accepted")
	}
}

// Mirrored writes consume double server-side bandwidth: a write that
// takes 1s unmirrored takes 2s through the same single pair of targets.
func TestMirroredWriteHalvesBandwidth(t *testing.T) {
	sim, fs := newFS(t, testConfig())
	client := fs.NewClient("n1", 0)
	f, err := fs.CreateMirrored("/m", 1, 512*KiB)
	if err != nil {
		t.Fatal(err)
	}
	var done simkernel.Time
	if _, err := fs.StartWrite(&WriteOp{
		Client: client, File: f, Length: 1764 * MiB, TransferSize: MiB,
		OnComplete: func(at simkernel.Time) { done = at },
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Count 1 mirrored: the chunk goes to 101 AND 201 simultaneously;
	// each runs at SingleTargetRate, so the flow still moves 1764 MiB at
	// 1764 MiB/s? No: the flow's rate r consumes r on BOTH targets; each
	// target caps at 1764, so r = 1764 and completion is 1s — the cost
	// shows up as double *load*, not lower single-flow rate.
	if !almost(float64(done), 1, 1e-6) {
		t.Fatalf("mirrored single write finished at %v, want 1s", done)
	}
	// The double load becomes visible with two concurrent mirrored files
	// sharing a buddy pair's hosts: see TestMirroredLoadDoubles.
	for _, tg := range f.Targets {
		if tg.Writers() != 0 {
			t.Fatal("primary not released")
		}
	}
	if mid := f.MirrorIDs()[0]; fs.Storage().TargetByID(mid).Writers() != 0 {
		t.Fatal("mirror not released")
	}
}

// The aggregate cost of mirroring: striping over 4 buddy groups loads all
// 8 targets with the full volume each — so the balanced peak of an
// 8-target unmirrored file (2 x C(4)) becomes the ceiling for HALF the
// logical bytes.
func TestMirroredLoadDoubles(t *testing.T) {
	cfg := testConfig()
	sim, fs := newFS(t, cfg)
	client := fs.NewClient("n1", 0)
	f, err := fs.CreateMirrored("/m", 4, 512*KiB)
	if err != nil {
		t.Fatal(err)
	}
	vol := int64(4032) * MiB
	var done simkernel.Time
	if _, err := fs.StartWrite(&WriteOp{
		Client: client, File: f, Length: vol, TransferSize: MiB,
		OnComplete: func(at simkernel.Time) { done = at },
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 buddy groups = all 8 targets active, each carrying vol/4 bytes:
	// per host C(4) = 4032 serves 4 streams of (vol/4)/C... total
	// physical bytes = 2*vol over aggregate capacity 2*C(4):
	// completion = 2*4032 MiB / 8064 MiB/s = 1s; logical bandwidth 4032.
	bw := float64(vol) / float64(MiB) / float64(done)
	want := 4032.0
	if bw < want*0.95 || bw > want*1.05 {
		t.Fatalf("mirrored count-4 bandwidth = %v, want ~%v (half the unmirrored 8064)", bw, want)
	}
}

func TestMirroredReadFailover(t *testing.T) {
	sim, fs := newFS(t, testConfig())
	client := fs.NewClient("n1", 0)
	f, err := fs.CreateMirrored("/m", 2, 512*KiB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.StartWrite(&WriteOp{Client: client, File: f, Length: 512 * MiB, TransferSize: MiB}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Fail the first primary: reads must still work via the mirror.
	if err := fs.Mgmtd().SetOnline(f.Targets[0].ID, false); err != nil {
		t.Fatal(err)
	}
	ok := false
	if _, err := fs.StartRead(&WriteOp{Client: client, File: f, Length: 512 * MiB, TransferSize: MiB,
		OnComplete: func(simkernel.Time) { ok = true }}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("failover read did not complete")
	}
	// Fail the mirror too: the stripe has no replica left.
	if err := fs.Mgmtd().SetOnline(f.MirrorIDs()[0], false); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.StartRead(&WriteOp{Client: client, File: f, Length: 512 * MiB, TransferSize: MiB}); err == nil {
		t.Fatal("read with no online replica accepted")
	}
}

func TestMirroredCapacityDoubleAccounted(t *testing.T) {
	cfg := testConfig()
	cfg.Storage.TargetCapacityBytes = 10 * GiB
	sim, fs := newFS(t, cfg)
	client := fs.NewClient("n1", 0)
	f, err := fs.CreateMirrored("/m", 1, 512*KiB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.StartWrite(&WriteOp{Client: client, File: f, Length: 1 * GiB, TransferSize: MiB}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if used := f.Targets[0].Used(); used != 1*GiB {
		t.Fatalf("primary used %d", used)
	}
	mirror := fs.Storage().TargetByID(f.MirrorIDs()[0])
	if used := mirror.Used(); used != 1*GiB {
		t.Fatalf("mirror used %d", used)
	}
	if err := fs.Remove("/m"); err != nil {
		t.Fatal(err)
	}
	if f.Targets[0].Used() != 0 || mirror.Used() != 0 {
		t.Fatal("mirrored space not freed")
	}
}

// Degraded-mode write failover: with the primary down, writes land on the
// buddy secondary alone, the file accumulates dirty (un-replicated) bytes,
// and recovery triggers a resync that copies them back to the primary.
func TestMirroredWriteFailover(t *testing.T) {
	sim, fs := newFS(t, testConfig())
	client := fs.NewClient("n1", 0)
	f, err := fs.CreateMirrored("/m", 1, 512*KiB)
	if err != nil {
		t.Fatal(err)
	}
	primary := f.Targets[0]
	secondary := fs.Storage().TargetByID(f.MirrorIDs()[0])

	// Take the primary down before the write starts.
	if err := fs.Mgmtd().SetOnline(primary.ID, false); err != nil {
		t.Fatal(err)
	}
	primary.SetFailed(true)

	vol := int64(1764) * MiB
	var done simkernel.Time
	if _, err := fs.StartWrite(&WriteOp{
		Client: client, File: f, Length: vol, TransferSize: MiB,
		OnComplete: func(at simkernel.Time) { done = at },
		OnError:    func(err error) { t.Errorf("degraded write failed: %v", err) },
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// One surviving replica at SingleTargetRate: 1764 MiB in 1s — the
	// degraded write is NOT slowed by the dead primary.
	if !almost(float64(done), 1, 1e-6) {
		t.Fatalf("degraded write finished at %v, want 1s", done)
	}
	if f.DirtyBytes() != vol {
		t.Fatalf("dirty bytes = %d, want %d", f.DirtyBytes(), vol)
	}
	if fs.DirtyFiles() != 1 {
		t.Fatalf("dirty files = %d, want 1", fs.DirtyFiles())
	}
	if primary.Writers() != 0 || secondary.Writers() != 0 {
		t.Fatal("writers not released after degraded write")
	}

	// Recovery: the mgmtd subscription kicks off the resync, which copies
	// the dirty bytes from the secondary back to the primary.
	primary.SetFailed(false)
	if err := fs.Mgmtd().SetOnline(primary.ID, true); err != nil {
		t.Fatal(err)
	}
	resyncStart := sim.Now()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if f.DirtyBytes() != 0 || fs.DirtyFiles() != 0 {
		t.Fatalf("post-resync dirty = %d bytes in %d files", f.DirtyBytes(), fs.DirtyFiles())
	}
	if fs.ResyncedBytes() != vol {
		t.Fatalf("resynced bytes = %d, want %d", fs.ResyncedBytes(), vol)
	}
	// Source and sink both run at SingleTargetRate: the copy takes 1s.
	if !almost(float64(sim.Now()-resyncStart), 1, 1e-6) {
		t.Fatalf("resync took %v, want 1s", sim.Now()-resyncStart)
	}
	if primary.Writers() != 0 || secondary.Writers() != 0 {
		t.Fatal("writers not released after resync")
	}
}
