package beegfs

import (
	"errors"
	"fmt"
)

// Sentinel errors for errors.Is/errors.As matching. Both travel wrapped:
// ErrAllTargetsOffline inside the create-path error, ErrRetriesExhausted
// as the Reason of the *IOFailedError delivered to OnError.
var (
	// ErrAllTargetsOffline means a create found no usable storage target
	// in the published cluster map.
	ErrAllTargetsOffline = errors.New("all storage targets offline")
	// ErrRetriesExhausted means an op burned through its RetryMax budget
	// without completing.
	ErrRetriesExhausted = errors.New("retry budget exhausted")
)

// UnavailableError reports that an I/O op cannot be issued right now
// because a stripe carrying bytes has no available replica. With retries
// enabled the client backs off and re-checks; with retries disabled the
// error surfaces to the caller immediately.
type UnavailableError struct {
	Path   string
	Stripe int
	Read   bool
	// Stale marks the heartbeat-model variant: the client's view of the
	// cluster map said the replica was fine, the issue went out, and the
	// RPC died against a dead target. Stale failures additionally pay
	// Config.RPCTimeout before the retry backoff.
	Stale bool
}

// Error implements error.
func (e *UnavailableError) Error() string {
	kind := "write"
	if e.Read {
		kind = "read"
	}
	if e.Stale {
		return fmt.Sprintf("beegfs: stripe %d of %q: RPC to stale-viewed replica timed out for %s", e.Stripe, e.Path, kind)
	}
	return fmt.Sprintf("beegfs: stripe %d of %q has no available replica for %s", e.Stripe, e.Path, kind)
}

// IOFailedError is the structured terminal error of a write or read whose
// retry budget is exhausted, or that was aborted by a fault with retries
// disabled. It is delivered through WriteOp.OnError — mid-run I/O failures
// never panic.
type IOFailedError struct {
	Path     string
	Op       string // "write" or "read"
	Attempts int
	Reason   error
}

// Error implements error.
func (e *IOFailedError) Error() string {
	return fmt.Sprintf("beegfs: %s of %q failed after %d retries: %v", e.Op, e.Path, e.Attempts, e.Reason)
}

// Unwrap exposes the underlying reason.
func (e *IOFailedError) Unwrap() error { return e.Reason }
