package beegfs

import (
	"testing"
	"testing/quick"
)

// naiveDistribution walks every chunk of the region — the obviously
// correct reference implementation.
func naiveDistribution(p StripePattern, off, n int64) []int64 {
	dist := make([]int64, p.Count)
	for pos := off; pos < off+n; {
		chunk := pos / p.ChunkSize
		end := (chunk + 1) * p.ChunkSize
		if end > off+n {
			end = off + n
		}
		dist[p.TargetOfChunk(chunk)] += end - pos
		pos = end
	}
	return dist
}

func TestPatternValidate(t *testing.T) {
	if err := (StripePattern{Count: 4, ChunkSize: 512 * KiB}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (StripePattern{Count: 0, ChunkSize: 1}).Validate(); err == nil {
		t.Fatal("count 0 accepted")
	}
	if err := (StripePattern{Count: 1, ChunkSize: 0}).Validate(); err == nil {
		t.Fatal("chunk 0 accepted")
	}
}

func TestTargetOfChunkCycles(t *testing.T) {
	p := StripePattern{Count: 3, ChunkSize: 1}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for c, w := range want {
		if got := p.TargetOfChunk(int64(c)); got != w {
			t.Fatalf("TargetOfChunk(%d) = %d, want %d", c, got, w)
		}
	}
}

func TestRegionDistributionAlignedStripe(t *testing.T) {
	p := StripePattern{Count: 4, ChunkSize: 512 * KiB}
	// Exactly one full stripe: every target gets one chunk.
	dist, err := p.RegionDistribution(0, 4*512*KiB)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dist {
		if d != 512*KiB {
			t.Fatalf("target %d got %d bytes, want %d", i, d, 512*KiB)
		}
	}
}

func TestRegionDistributionUnalignedStart(t *testing.T) {
	p := StripePattern{Count: 2, ChunkSize: 100}
	// Region [150, 350): chunk1 [150,200)=50 -> t1; chunk2 [200,300)=100 -> t0;
	// chunk3 [300,350)=50 -> t1.
	dist, err := p.RegionDistribution(150, 200)
	if err != nil {
		t.Fatal(err)
	}
	if dist[0] != 100 || dist[1] != 100 {
		t.Fatalf("dist = %v, want [100 100]", dist)
	}
}

func TestRegionDistributionTinyRegion(t *testing.T) {
	p := StripePattern{Count: 8, ChunkSize: 512 * KiB}
	dist, err := p.RegionDistribution(512*KiB+7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if dist[1] != 10 {
		t.Fatalf("dist = %v, want 10 bytes on target 1", dist)
	}
}

func TestRegionDistributionZeroLength(t *testing.T) {
	p := StripePattern{Count: 4, ChunkSize: 512 * KiB}
	dist, err := p.RegionDistribution(12345, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dist {
		if d != 0 {
			t.Fatalf("zero-length region distributed bytes: %v", dist)
		}
	}
}

func TestRegionDistributionErrors(t *testing.T) {
	p := StripePattern{Count: 4, ChunkSize: 512 * KiB}
	if _, err := p.RegionDistribution(-1, 10); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := p.RegionDistribution(0, -10); err == nil {
		t.Fatal("negative length accepted")
	}
	if _, err := (StripePattern{}).RegionDistribution(0, 10); err == nil {
		t.Fatal("invalid pattern accepted")
	}
}

// Property: the fast path equals the naive chunk walk, and distributions
// sum to the region length.
func TestRegionDistributionMatchesNaive(t *testing.T) {
	check := func(count8 uint8, chunkSel uint8, offRaw, nRaw uint32) bool {
		count := int(count8%8) + 1
		chunks := []int64{7, 512, 4096, 512 * KiB}
		chunk := chunks[int(chunkSel)%len(chunks)]
		p := StripePattern{Count: count, ChunkSize: chunk}
		// Keep the naive reference walk (n/chunk steps) fast.
		off := int64(offRaw) % (1000 * chunk)
		n := int64(nRaw) % (5000 * chunk)
		got, err := p.RegionDistribution(off, n)
		if err != nil {
			return false
		}
		want := naiveDistribution(p, off, n)
		sum := int64(0)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
			sum += got[i]
		}
		return sum == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// The paper's setup: 1 MiB transfers with 512 KiB chunks means every
// transfer spans two targets ("large enough ... to require more than one
// OST to be accessed for each request", §III-B).
func TestPaperTransferSpansTwoTargets(t *testing.T) {
	p := StripePattern{Count: 4, ChunkSize: 512 * KiB}
	dist, err := p.RegionDistribution(0, 1*MiB)
	if err != nil {
		t.Fatal(err)
	}
	touched := 0
	for _, d := range dist {
		if d > 0 {
			touched++
		}
	}
	if touched != 2 {
		t.Fatalf("1 MiB transfer touched %d targets, want 2", touched)
	}
}

func BenchmarkRegionDistributionLarge(b *testing.B) {
	p := StripePattern{Count: 8, ChunkSize: 512 * KiB}
	for i := 0; i < b.N; i++ {
		if _, err := p.RegionDistribution(3*GiB+12345, 4*GiB); err != nil {
			b.Fatal(err)
		}
	}
}
