package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// InfluxDB line-protocol rendering of a Snapshot.
//
// Schema: one measurement per metric class, the registry name carried as
// the `metric` tag (escaped per the protocol), values as uint64 fields:
//
//	beegfsim,metric=simnet/waterfill_passes,type=counter value=123u
//	beegfsim,metric=simkernel/heap_high_water,type=max value=40u
//	beegfsim,metric=beegfs/op_mib,type=hist count=64u,sum=8192u
//	beegfsim_bucket,metric=beegfs/op_mib,le=127 count=64u
//	beegfsim_campaign,label=fig4/N=8 completed=3u,total=100u
//
// Bucket lines carry cumulative counts (mirroring the Prometheus
// rendering) keyed by the log-2 inclusive upper bound. Lines are emitted
// in snapshot order with no timestamp by default — equal snapshots render
// byte-identical files (the golden-file test pins this); a collection
// timestamp can be stamped per-sink for real ingestion.

// EncodeInflux writes snap as InfluxDB line protocol. ts, when nonzero,
// is appended to every line as the nanosecond timestamp.
func EncodeInflux(w io.Writer, snap *Snapshot, ts int64) error {
	b := bufio.NewWriter(w)
	stamp := ""
	if ts != 0 {
		stamp = " " + strconv.FormatInt(ts, 10)
	}
	for _, c := range snap.Counters {
		b.WriteString("beegfsim,metric=")
		b.WriteString(influxTag(c.Name))
		b.WriteString(",type=counter value=")
		b.WriteString(strconv.FormatUint(c.Value, 10))
		b.WriteString("u")
		b.WriteString(stamp)
		b.WriteByte('\n')
	}
	for _, m := range snap.Maxima {
		b.WriteString("beegfsim,metric=")
		b.WriteString(influxTag(m.Name))
		b.WriteString(",type=max value=")
		b.WriteString(strconv.FormatUint(m.Value, 10))
		b.WriteString("u")
		b.WriteString(stamp)
		b.WriteByte('\n')
	}
	for i := range snap.Hists {
		h := &snap.Hists[i]
		tag := influxTag(h.Name)
		b.WriteString("beegfsim,metric=")
		b.WriteString(tag)
		b.WriteString(",type=hist count=")
		b.WriteString(strconv.FormatUint(h.Count, 10))
		b.WriteString("u,sum=")
		b.WriteString(strconv.FormatUint(h.Sum, 10))
		b.WriteString("u")
		b.WriteString(stamp)
		b.WriteByte('\n')
		var cum uint64
		for bi, cnt := range h.Buckets {
			if cnt == 0 {
				continue
			}
			cum += cnt
			b.WriteString("beegfsim_bucket,metric=")
			b.WriteString(tag)
			b.WriteString(",le=")
			b.WriteString(strconv.FormatUint(BucketBound(bi), 10))
			b.WriteString(" count=")
			b.WriteString(strconv.FormatUint(cum, 10))
			b.WriteString("u")
			b.WriteString(stamp)
			b.WriteByte('\n')
		}
	}
	for _, r := range snap.Runs {
		b.WriteString("beegfsim_campaign,label=")
		b.WriteString(influxTag(r.Label))
		b.WriteString(" completed=")
		b.WriteString(strconv.FormatUint(r.Done, 10))
		b.WriteString("u,total=")
		b.WriteString(strconv.FormatUint(r.Total, 10))
		b.WriteString("u")
		b.WriteString(stamp)
		b.WriteByte('\n')
	}
	return b.Flush()
}

// influxTag escapes a tag value: commas, spaces and equals signs are the
// protocol's tag metacharacters.
func influxTag(v string) string {
	v = strings.ReplaceAll(v, `,`, `\,`)
	v = strings.ReplaceAll(v, ` `, `\ `)
	return strings.ReplaceAll(v, `=`, `\=`)
}

// NewInfluxSink returns a sink writing the snapshot as InfluxDB line
// protocol to path on every flush. The default (no timestamp) output is
// deterministic; SetTimestamp stamps lines for real ingestion.
func NewInfluxSink(path string) *InfluxSink {
	s := &InfluxSink{}
	s.name = "influx:" + path
	s.path = path
	s.enc = func(w io.Writer, snap *Snapshot) error { return EncodeInflux(w, snap, s.ts) }
	return s
}

// InfluxSink is the line-protocol file sink (see NewInfluxSink).
type InfluxSink struct {
	fileSink
	ts int64
}

// SetTimestamp stamps every subsequently written line with the given
// nanosecond timestamp. Zero (the default) omits timestamps and keeps the
// file bit-reproducible run to run.
func (s *InfluxSink) SetTimestamp(ns int64) { s.ts = ns }
