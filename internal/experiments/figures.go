package experiments

import (
	"fmt"
	"sort"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ior"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Options tunes a figure regeneration. The paper's protocol uses 100
// repetitions; tests use fewer.
type Options struct {
	Reps int
	Seed uint64
	// FastProtocol shortens the inter-block waits (tests); the default
	// reproduces the paper's 1-30 minute waits.
	FastProtocol bool
	// Workers bounds how many repetitions (and independent figure cells)
	// simulate concurrently. 0 selects runtime.NumCPU(); 1 is fully
	// serial. Results are bit-identical for every value.
	Workers int
	// Metrics and Tracer, when non-nil, are threaded into every campaign
	// a figure runs (Campaign.Metrics / Campaign.Tracer). The figure
	// numbers are bit-identical with or without them.
	Metrics *obs.Registry
	Tracer  *obs.Tracer
	// Pipeline, when non-nil, supersedes Metrics and Tracer (see
	// Campaign.Pipeline): repetitions record through collector shards and
	// stream progress to the pipeline's sinks and live endpoints.
	Pipeline *obs.Pipeline
}

func (o Options) protocol() Protocol {
	p := DefaultProtocol(o.Seed)
	if o.Reps > 0 {
		p.Repetitions = o.Reps
	}
	if o.FastProtocol {
		p.MinWait, p.MaxWait = 0.5, 2
	}
	return p
}

func (o Options) campaign(scenario cluster.Scenario) Campaign {
	return Campaign{
		Platform: cluster.PlaFRIM(scenario), Proto: o.protocol(), Workers: o.Workers,
		Metrics: o.Metrics, Tracer: o.Tracer, Pipeline: o.Pipeline,
	}
}

func baseParams(nodes, ppn, count int, total int64) ior.Params {
	return ior.Params{
		Nodes: nodes, PPN: ppn,
		TransferSize: 1 * beegfs.MiB,
		StripeCount:  count,
	}.WithTotalSize(total)
}

// SweepPoint is one x-position of a sweep figure with its samples.
type SweepPoint struct {
	X       float64
	Label   string
	Samples []float64
	Summary stats.Summary
}

func summarizePoint(x float64, label string, samples []float64) (SweepPoint, error) {
	s, err := stats.Summarize(samples)
	if err != nil {
		return SweepPoint{}, err
	}
	return SweepPoint{X: x, Label: label, Samples: samples, Summary: s}, nil
}

// Fig2 regenerates Figure 2: I/O bandwidth vs total data size (1-64 GiB)
// with 32 processes on 4 nodes and stripe count 4. Small sizes show lower
// bandwidth and higher variability; performance stabilizes by 16-32 GiB.
func Fig2(scenario cluster.Scenario, opts Options) ([]SweepPoint, error) {
	sizes := []int64{1, 2, 4, 8, 16, 32, 64}
	var cfgs []Config
	for _, g := range sizes {
		cfgs = append(cfgs, Config{
			Label:  fmt.Sprintf("size%02dGiB", g),
			Params: baseParams(4, 8, 4, g*beegfs.GiB),
		})
	}
	recs, err := opts.campaign(scenario).Run(cfgs)
	if err != nil {
		return nil, err
	}
	byLabel := GroupByLabel(recs)
	var out []SweepPoint
	for i, g := range sizes {
		p, err := summarizePoint(float64(g), cfgs[i].Label, Bandwidths(byLabel[cfgs[i].Label]))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// nodeSweep returns the node counts used per scenario (Figure 4's x-axes
// differ between the plots).
func nodeSweep(scenario cluster.Scenario) []int {
	if scenario == cluster.Scenario1Ethernet {
		return []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	return []int{1, 2, 4, 8, 16, 32}
}

// Fig4 regenerates Figure 4: bandwidth vs number of compute nodes at 8
// processes per node and stripe count 4.
func Fig4(scenario cluster.Scenario, opts Options) ([]SweepPoint, error) {
	return nodeSweepFigure(scenario, 8, opts)
}

func nodeSweepFigure(scenario cluster.Scenario, ppn int, opts Options) ([]SweepPoint, error) {
	nodes := nodeSweep(scenario)
	var cfgs []Config
	for _, n := range nodes {
		cfgs = append(cfgs, Config{
			Label:  fmt.Sprintf("n%02d.ppn%02d", n, ppn),
			Params: baseParams(n, ppn, 4, 32*beegfs.GiB),
		})
	}
	recs, err := opts.campaign(scenario).Run(cfgs)
	if err != nil {
		return nil, err
	}
	byLabel := GroupByLabel(recs)
	var out []SweepPoint
	for i, n := range nodes {
		p, err := summarizePoint(float64(n), cfgs[i].Label, Bandwidths(byLabel[cfgs[i].Label]))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Fig5Series is one processes-per-node series of Figure 5.
type Fig5Series struct {
	PPN    int
	Points []SweepPoint
}

// Fig5 regenerates Figure 5: the node sweep at 8 and 16 processes per
// node. The behaviours coincide, with a slight degradation at 16 ppn in
// scenario 2 (intra-node contention, lesson 3).
func Fig5(scenario cluster.Scenario, opts Options) ([]Fig5Series, error) {
	ppns := []int{8, 16}
	out := make([]Fig5Series, len(ppns))
	err := forEachCell(len(ppns), opts.Workers, func(i int) error {
		ppn := ppns[i]
		o := opts
		o.Seed = opts.Seed*2 + uint64(ppn)
		pts, err := nodeSweepFigure(scenario, ppn, o)
		if err != nil {
			return err
		}
		out[i] = Fig5Series{PPN: ppn, Points: pts}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CountPoint is one stripe count of Figure 6, keeping the full records so
// Figures 8/10 can regroup them by allocation.
type CountPoint struct {
	Count   int
	Samples []float64
	Summary stats.Summary
	Bimodal bool
	Records []Record
}

// Fig6 regenerates Figure 6: bandwidth for stripe counts 1-8 (scenario 1:
// 8 nodes; scenario 2: 32 nodes; 8 ppn; 100 individual executions drawn as
// dots in the paper).
func Fig6(scenario cluster.Scenario, opts Options) ([]CountPoint, error) {
	nodes := 8
	if scenario == cluster.Scenario2Omnipath {
		nodes = 32
	}
	var cfgs []Config
	for count := 1; count <= 8; count++ {
		cfgs = append(cfgs, Config{
			Label:  fmt.Sprintf("count%d", count),
			Params: baseParams(nodes, 8, count, 32*beegfs.GiB),
		})
	}
	recs, err := opts.campaign(scenario).Run(cfgs)
	if err != nil {
		return nil, err
	}
	byLabel := GroupByLabel(recs)
	var out []CountPoint
	for count := 1; count <= 8; count++ {
		rs := byLabel[fmt.Sprintf("count%d", count)]
		samples := Bandwidths(rs)
		s, err := stats.Summarize(samples)
		if err != nil {
			return nil, err
		}
		out = append(out, CountPoint{
			Count:   count,
			Samples: samples,
			Summary: s,
			Bimodal: stats.Bimodal(samples),
			Records: rs,
		})
	}
	return out, nil
}

// AllocBox is one allocation class of Figures 8/10.
type AllocBox struct {
	Alloc core.Allocation
	Box   stats.BoxPlot
	N     int
	Mean  float64
}

// GroupByAllocation regroups Figure 6 data into the paper's Figure 8/10
// boxplots: one box per (min,max) allocation, ordered by stripe count
// then balance.
func GroupByAllocation(points []CountPoint) ([]AllocBox, error) {
	byAlloc := make(map[string][]float64)
	allocs := make(map[string]core.Allocation)
	for _, pt := range points {
		for _, rec := range pt.Records {
			a := rec.Alloc()
			byAlloc[a.Key()] = append(byAlloc[a.Key()], rec.Bandwidth())
			allocs[a.Key()] = a
		}
	}
	var out []AllocBox
	for key, samples := range byAlloc {
		box, err := stats.NewBoxPlot(samples)
		if err != nil {
			return nil, err
		}
		out = append(out, AllocBox{Alloc: allocs[key], Box: box, N: len(samples), Mean: stats.Mean(samples)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Alloc.Less(out[j].Alloc) })
	return out, nil
}

// Fig8 regenerates Figure 8 (scenario 1 boxplots by allocation) from
// fresh Figure 6a data.
func Fig8(opts Options) ([]AllocBox, error) {
	pts, err := Fig6(cluster.Scenario1Ethernet, opts)
	if err != nil {
		return nil, err
	}
	return GroupByAllocation(pts)
}

// Fig10 regenerates Figure 10 (scenario 2 boxplots by allocation).
func Fig10(opts Options) ([]AllocBox, error) {
	pts, err := Fig6(cluster.Scenario2Omnipath, opts)
	if err != nil {
		return nil, err
	}
	return GroupByAllocation(pts)
}

// Fig11Cell is one (stripe count, node count) mean of Figure 11.
type Fig11Cell struct {
	Count int
	Nodes int
	Mean  float64
}

// Fig11 regenerates Figure 11: scenario-2 mean bandwidth vs nodes for
// stripe counts 2, 4, 6, 8 — more targets offer a higher peak but need
// more compute nodes to reach it (lesson 6).
func Fig11(opts Options) ([]Fig11Cell, error) {
	counts := []int{2, 4, 6, 8}
	nodes := []int{1, 2, 4, 8, 16, 32}
	var cfgs []Config
	for _, c := range counts {
		for _, n := range nodes {
			cfgs = append(cfgs, Config{
				Label:  fmt.Sprintf("c%d.n%02d", c, n),
				Params: baseParams(n, 8, c, 32*beegfs.GiB),
			})
		}
	}
	recs, err := opts.campaign(cluster.Scenario2Omnipath).Run(cfgs)
	if err != nil {
		return nil, err
	}
	byLabel := GroupByLabel(recs)
	var out []Fig11Cell
	for _, c := range counts {
		for _, n := range nodes {
			label := fmt.Sprintf("c%d.n%02d", c, n)
			out = append(out, Fig11Cell{Count: c, Nodes: n, Mean: stats.Mean(Bandwidths(byLabel[label]))})
		}
	}
	return out, nil
}

// Fig12Row is one (apps, stripe count) cell of Figure 12.
type Fig12Row struct {
	Apps  int
	Count int
	// IndividualMean is the mean per-application bandwidth in the
	// concurrent runs.
	IndividualMean float64
	// AggregateMean is the mean Equation-1 aggregate.
	AggregateMean float64
	// SoloMean is a single application with the same geometry, run alone
	// (the paper's left/blue reference for individual bars).
	SoloMean float64
	// EquivalentSingleMean is one application with Apps x nodes and
	// Apps x count targets (capped at 8) — the paper's right/blue
	// reference for the aggregate.
	EquivalentSingleMean float64
	// Records keeps the concurrent runs for Figure 13's analysis.
	Records []Record
}

// Fig12 regenerates Figure 12: 2, 3 and 4 concurrent applications, each
// on 8 dedicated nodes, with 2, 4 or 8 targets per application, against
// single-application baselines. Background metadata activity (other jobs
// creating files) advances the round-robin cursor between the apps' file
// creations, which is what makes target overlap possible at all — exactly
// the production-system effect behind the paper's "two thirds / one
// third" split (§IV-D).
func Fig12(opts Options) ([]Fig12Row, error) {
	appsList := []int{2, 3, 4}
	counts := []int{2, 4, 8}
	var cfgs []Config
	for _, apps := range appsList {
		for _, c := range counts {
			cfgs = append(cfgs, Config{
				Label:  fmt.Sprintf("a%d.c%d", apps, c),
				Params: baseParams(8, 8, c, 32*beegfs.GiB),
				Apps:   apps,
			})
		}
	}
	// Baselines: solo app with the same geometry, and the equivalent
	// single application.
	for _, c := range counts {
		cfgs = append(cfgs, Config{
			Label:  fmt.Sprintf("solo.c%d", c),
			Params: baseParams(8, 8, c, 32*beegfs.GiB),
		})
	}
	for _, apps := range appsList {
		for _, c := range counts {
			eq := apps * c
			if eq > 8 {
				eq = 8
			}
			cfgs = append(cfgs, Config{
				Label:  fmt.Sprintf("equiv.a%d.c%d", apps, c),
				Params: baseParams(8*apps, 8, eq, int64(apps)*32*beegfs.GiB),
			})
		}
	}
	camp := opts.campaign(cluster.Scenario2Omnipath)
	camp.BackgroundCreateRate = 4
	recs, err := camp.Run(cfgs)
	if err != nil {
		return nil, err
	}
	byLabel := GroupByLabel(recs)
	var out []Fig12Row
	for _, apps := range appsList {
		for _, c := range counts {
			conc := byLabel[fmt.Sprintf("a%d.c%d", apps, c)]
			var indiv []float64
			for _, r := range conc {
				for _, a := range r.Apps {
					indiv = append(indiv, a.Result.Bandwidth)
				}
			}
			row := Fig12Row{
				Apps:                 apps,
				Count:                c,
				IndividualMean:       stats.Mean(indiv),
				AggregateMean:        stats.Mean(Aggregates(conc)),
				SoloMean:             stats.Mean(Bandwidths(byLabel[fmt.Sprintf("solo.c%d", c)])),
				EquivalentSingleMean: stats.Mean(Bandwidths(byLabel[fmt.Sprintf("equiv.a%d.c%d", apps, c)])),
				Records:              conc,
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// Fig13Result regenerates Figure 13 and its statistical test: individual
// application bandwidth when two concurrent applications use 4 OSTs each,
// split by whether the two applications landed on all-the-same or
// all-different targets, compared with a Welch two-sample t-test after
// Kolmogorov–Smirnov normality screening (paper: p-value 0.9031).
type Fig13Result struct {
	ShareAll  []float64
	ShareNone []float64
	Welch     stats.WelchTResult
	// MannWhitney is the nonparametric complement, robust to the
	// distributions' shapes.
	MannWhitney stats.MannWhitneyResult
	KSAll       stats.KSResult
	KSNone      stats.KSResult
	// Mixed counts repetitions with partial overlap (impossible with the
	// PlaFRIM round-robin at count 4, as the paper notes).
	Mixed int
}

// Fig13 derives the Figure 13 analysis from Figure 12 rows (it needs the
// apps=2, count=4 cell). Run Fig12 first and pass its output.
func Fig13(rows []Fig12Row) (Fig13Result, error) {
	var cell *Fig12Row
	for i := range rows {
		if rows[i].Apps == 2 && rows[i].Count == 4 {
			cell = &rows[i]
			break
		}
	}
	if cell == nil {
		return Fig13Result{}, fmt.Errorf("experiments: Fig12 rows lack the apps=2,count=4 cell")
	}
	var res Fig13Result
	for _, rec := range cell.Records {
		switch rec.SharedTargets {
		case 4:
			for _, a := range rec.Apps {
				res.ShareAll = append(res.ShareAll, a.Result.Bandwidth)
			}
		case 0:
			for _, a := range rec.Apps {
				res.ShareNone = append(res.ShareNone, a.Result.Bandwidth)
			}
		default:
			res.Mixed++
		}
	}
	if len(res.ShareAll) < 2 || len(res.ShareNone) < 2 {
		return res, fmt.Errorf("experiments: not enough data in one group (share-all %d, share-none %d)",
			len(res.ShareAll), len(res.ShareNone))
	}
	var err error
	if res.Welch, err = stats.WelchT(res.ShareAll, res.ShareNone); err != nil {
		return res, err
	}
	if res.MannWhitney, err = stats.MannWhitneyU(res.ShareAll, res.ShareNone); err != nil {
		return res, err
	}
	if res.KSAll, err = stats.KSNormal(res.ShareAll); err != nil {
		return res, err
	}
	if res.KSNone, err = stats.KSNormal(res.ShareNone); err != nil {
		return res, err
	}
	return res, nil
}
