// Package core implements the paper's primary contribution: the analysis
// of storage-target allocation. It provides
//
//   - the (min,max) allocation notation of §IV-C (Figure 7) and helpers to
//     derive it from target placements;
//   - a closed-form analytic performance model for both the
//     network-limited and storage-limited regimes, cross-validated against
//     the discrete-event simulator;
//   - allocation distributions induced by each target-selection heuristic
//     (why round-robin at stripe count 4 is always (1,3) on PlaFRIM);
//   - the stripe-count recommender encoding the paper's conclusions
//     (lessons 4 and 6: use the maximum stripe count by default) and its
//     transparent-gain estimate (§I: up to +40% on PlaFRIM);
//   - programmatic verdicts for the seven "lessons learned".
package core

import (
	"fmt"
	"sort"

	"repro/internal/storagesim"
)

// Allocation is the paper's (min,max) notation for how a file's stripe
// targets split across two storage servers, generalized to S servers as
// the sorted vector of per-server target counts. For the two-server
// PlaFRIM case, Min and Max recover the paper's notation exactly.
type Allocation struct {
	// PerHost holds the number of the file's targets on each host, sorted
	// ascending. Hosts holding zero targets are included, so the vector
	// length equals the number of storage servers.
	PerHost []int
}

// NewAllocation builds an allocation from per-host target counts (in any
// order).
func NewAllocation(perHost []int) Allocation {
	sorted := append([]int(nil), perHost...)
	sort.Ints(sorted)
	return Allocation{PerHost: sorted}
}

// FromTargets derives the allocation of a target list over the hosts of
// its storage system.
func FromTargets(targets []*storagesim.Target, sys *storagesim.System) Allocation {
	counts := make(map[*storagesim.Host]int)
	for _, t := range targets {
		counts[t.Host()]++
	}
	perHost := make([]int, 0, len(sys.Hosts()))
	for _, h := range sys.Hosts() {
		perHost = append(perHost, counts[h])
	}
	return NewAllocation(perHost)
}

// FromPerHostMap derives an allocation from a host-name → count map,
// padding to nHosts servers (hosts absent from the map hold zero).
func FromPerHostMap(m map[string]int, nHosts int) Allocation {
	perHost := make([]int, 0, nHosts)
	for _, n := range m {
		perHost = append(perHost, n)
	}
	for len(perHost) < nHosts {
		perHost = append(perHost, 0)
	}
	return NewAllocation(perHost)
}

// Min returns the smallest per-server count (the paper's "min").
func (a Allocation) Min() int {
	if len(a.PerHost) == 0 {
		return 0
	}
	return a.PerHost[0]
}

// Max returns the largest per-server count (the paper's "max").
func (a Allocation) Max() int {
	if len(a.PerHost) == 0 {
		return 0
	}
	return a.PerHost[len(a.PerHost)-1]
}

// Count returns the total number of targets (the stripe count).
func (a Allocation) Count() int {
	n := 0
	for _, c := range a.PerHost {
		n += c
	}
	return n
}

// Balanced reports whether every server holding targets holds the same
// number, and no server is idle — the paper's best case.
func (a Allocation) Balanced() bool {
	if len(a.PerHost) == 0 {
		return false
	}
	return a.Min() == a.Max()
}

// BalanceRatio returns min/max, the paper's §IV-C1 predictor of
// network-limited performance. A (0,x) allocation has ratio 0; balanced
// allocations have ratio 1.
func (a Allocation) BalanceRatio() float64 {
	if a.Max() == 0 {
		return 0
	}
	return float64(a.Min()) / float64(a.Max())
}

// MaxShare returns the largest fraction of the file's data a single
// server receives — the quantity that bounds network-limited bandwidth
// (Figure 9).
func (a Allocation) MaxShare() float64 {
	k := a.Count()
	if k == 0 {
		return 0
	}
	return float64(a.Max()) / float64(k)
}

// String renders the paper's notation: "(1,3)" for two servers, and the
// full sorted vector "(1,2,3)" for more.
func (a Allocation) String() string {
	if len(a.PerHost) == 0 {
		return "()"
	}
	s := "("
	for i, c := range a.PerHost {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(c)
	}
	return s + ")"
}

// Key returns a map-friendly canonical identifier.
func (a Allocation) Key() string { return a.String() }

// Equal reports allocation equality.
func (a Allocation) Equal(b Allocation) bool {
	if len(a.PerHost) != len(b.PerHost) {
		return false
	}
	for i := range a.PerHost {
		if a.PerHost[i] != b.PerHost[i] {
			return false
		}
	}
	return true
}

// Less orders allocations by stripe count, then lexicographically — the
// order used for Figure 8/10-style tables.
func (a Allocation) Less(b Allocation) bool {
	if a.Count() != b.Count() {
		return a.Count() < b.Count()
	}
	for i := 0; i < len(a.PerHost) && i < len(b.PerHost); i++ {
		if a.PerHost[i] != b.PerHost[i] {
			return a.PerHost[i] < b.PerHost[i]
		}
	}
	return len(a.PerHost) < len(b.PerHost)
}
