// Package cluster provides platform presets: ready-to-deploy topologies
// matching the paper's two PlaFRIM scenarios, and a generic builder for
// applying the same methodology to other systems (the paper's §VI future
// work).
//
// Scenario 1 connects compute nodes and storage hosts over 10 Gbit/s
// Ethernet — the network is slower than the storage, so OST *placement*
// dominates (Figures 6a, 8). Scenario 2 uses the 100 Gbit/s Omnipath — the
// storage is the bottleneck, so OST *count* dominates (Figures 6b, 10).
package cluster

import (
	"fmt"
	"math"

	"repro/internal/beegfs"
	"repro/internal/rng"
	"repro/internal/simkernel"
	"repro/internal/simnet"
	"repro/internal/storagesim"
)

// Scenario selects the network fabric of the PlaFRIM presets.
type Scenario int

const (
	// Scenario1Ethernet is the 10 GbE configuration: network-limited.
	Scenario1Ethernet Scenario = 1
	// Scenario2Omnipath is the 100 Gbit Omnipath configuration:
	// storage-limited.
	Scenario2Omnipath Scenario = 2
)

// String implements fmt.Stringer.
func (s Scenario) String() string {
	switch s {
	case Scenario1Ethernet:
		return "scenario1-ethernet"
	case Scenario2Omnipath:
		return "scenario2-omnipath"
	default:
		return fmt.Sprintf("scenario(%d)", int(s))
	}
}

// Protocol efficiency: the paper's measured scenario-1 peak is ~2200 MiB/s
// over two 1250 MiB/s links, i.e. ~88% of raw line rate — typical TCP/IP +
// BeeGFS framing overhead. We apply it directly to link capacities.
const protocolEfficiency = 0.88

// Raw line rates in MiB/s.
const (
	ethernetLineRate = 1250  // 10 Gbit/s
	omnipathLineRate = 12500 // 100 Gbit/s
)

// Platform is a deployable description of a system: the BeeGFS
// configuration plus the compute-side network properties.
type Platform struct {
	Name string
	// FS is the file-system/storage configuration.
	FS beegfs.Config
	// ClientNICCapacity is each compute node's link capacity in MiB/s
	// (after protocol efficiency). Zero = unconstrained.
	ClientNICCapacity float64
	// ServerNICJitterCV adds per-run lognormal jitter to the storage
	// hosts' NIC capacities (transient network events, §III-C item ii).
	ServerNICJitterCV float64
	// SetupMean and SetupCV parameterize the per-run setup overhead
	// (file create, connection establishment, first-write warmup) in
	// seconds. This drives the small-data-size penalty of Figure 2.
	SetupMean float64
	SetupCV   float64
}

// PlaFRIM returns the Bora + BeeGFS 7.2.3 platform of the paper in the
// given network scenario, with the device model calibrated per DESIGN.md
// §3. The chooser is PlaFRIM's rotating round-robin; replace FS.Chooser to
// study alternatives (Figure 6a discussion, ablation benches).
func PlaFRIM(s Scenario) Platform {
	fs := beegfs.Config{
		Storage:        storagesim.PlaFRIMConfig(),
		Hosts:          2,
		TargetsPerHost: 4,
		DefaultPattern: beegfs.StripePattern{Count: 4, ChunkSize: 512 * beegfs.KiB},
		Chooser:        &beegfs.RoundRobinChooser{},
		CreateLatency:  0.02,
		OpenLatency:    0.005,
		PpnSat:         8,
		// Client retry policy under fault injection: first re-issue after
		// 0.5 s of virtual time, then capped exponential backoff, up to 8
		// attempts (~65 s budget — outlasts transient outages, fails fast
		// on permanent ones).
		RetryTimeout:     0.5,
		RetryBackoffBase: 0.5,
		RetryMax:         8,
	}
	p := Platform{
		FS:                fs,
		ServerNICJitterCV: 0.02,
		SetupMean:         0.15,
		SetupCV:           0.5,
	}
	switch s {
	case Scenario1Ethernet:
		p.Name = "plafrim-scenario1"
		p.FS.ServerNICCapacity = ethernetLineRate * protocolEfficiency
		p.ClientNICCapacity = ethernetLineRate * protocolEfficiency
		// Client/TCP-stack ramp fitted to Figure 4a: one node reaches
		// ~880 MiB/s; the plateau (~1460) arrives around 4 nodes.
		p.FS.ClientA = 880
		p.FS.ClientGamma = 0.45
	case Scenario2Omnipath:
		p.Name = "plafrim-scenario2"
		p.FS.ServerNICCapacity = omnipathLineRate * protocolEfficiency
		p.ClientNICCapacity = omnipathLineRate * protocolEfficiency
		// Client ramp fitted to Figure 4b: one node reaches ~1631 MiB/s,
		// and the aggregate grows as 1631·N^0.45 until a stripe count's
		// storage ceiling is hit — which is what makes higher stripe
		// counts need more nodes (Figure 11, lesson 6). ppn=16 pays a
		// small intra-node contention penalty (Figure 5b).
		p.FS.ClientA = 1631
		p.FS.ClientGamma = 0.45
		p.FS.IntraNodePenalty = 0.1
	default:
		panic(fmt.Sprintf("cluster: unknown scenario %d", s))
	}
	return p
}

// ShapeError reports an invalid topology dimension passed to a platform
// builder (Custom, FatTree). Builders return it instead of panicking so
// CLIs and spec files can tell the user which dimension was wrong.
type ShapeError struct {
	// Builder is the platform builder that rejected the shape.
	Builder string
	// Field is the offending dimension and Value its rejected value.
	Field string
	Value float64
}

// Error implements error.
func (e *ShapeError) Error() string {
	return fmt.Sprintf("cluster: %s: %s = %g is out of range", e.Builder, e.Field, e.Value)
}

// checkShape validates the dimensions common to all platform builders.
// Rates are rejected when non-positive or non-finite: NaN passes a plain
// `<= 0` check and would deploy a platform whose flows run at rate NaN
// and never complete.
func checkShape(builder string, nHosts, targetsPerHost int, linkRate float64, chooser beegfs.TargetChooser) error {
	switch {
	case nHosts <= 0:
		return &ShapeError{Builder: builder, Field: "hosts", Value: float64(nHosts)}
	case targetsPerHost <= 0:
		return &ShapeError{Builder: builder, Field: "targets per host", Value: float64(targetsPerHost)}
	case !positiveRate(linkRate):
		return &ShapeError{Builder: builder, Field: "link rate", Value: linkRate}
	case chooser == nil:
		return &ShapeError{Builder: builder, Field: "chooser", Value: 0}
	}
	return nil
}

// positiveRate reports whether v is a usable capacity: positive and
// finite.
func positiveRate(v float64) bool {
	return v > 0 && !math.IsInf(v, 1)
}

// Custom builds a platform for an arbitrary deployment: nHosts storage
// hosts with targetsPerHost OSTs each, and symmetric client/server links
// of linkRate MiB/s (raw; protocol efficiency is applied). The storage
// device model reuses the PlaFRIM calibration. Used by
// examples/customplatform to exercise the paper's methodology elsewhere.
// An out-of-range shape returns a *ShapeError instead of deploying a
// platform that would only fail (or panic) later.
func Custom(name string, nHosts, targetsPerHost int, linkRate float64, chooser beegfs.TargetChooser) (Platform, error) {
	if err := checkShape("Custom", nHosts, targetsPerHost, linkRate, chooser); err != nil {
		return Platform{}, err
	}
	fs := beegfs.Config{
		Storage:           storagesim.PlaFRIMConfig(),
		Hosts:             nHosts,
		TargetsPerHost:    targetsPerHost,
		DefaultPattern:    beegfs.StripePattern{Count: 4, ChunkSize: 512 * beegfs.KiB},
		Chooser:           chooser,
		CreateLatency:     0.02,
		OpenLatency:       0.005,
		PpnSat:            8,
		ServerNICCapacity: linkRate * protocolEfficiency,
		RetryTimeout:      0.5,
		RetryBackoffBase:  0.5,
		RetryMax:          8,
	}
	if fs.DefaultPattern.Count > nHosts*targetsPerHost {
		fs.DefaultPattern.Count = nHosts * targetsPerHost
	}
	return Platform{
		Name:              name,
		FS:                fs,
		ClientNICCapacity: linkRate * protocolEfficiency,
		ServerNICJitterCV: 0.02,
		SetupMean:         0.25,
		SetupCV:           0.4,
	}, nil
}

// Deployment is a live simulated instance of a platform: a simulation
// clock, a flow network, a mounted file system and a pool of compute
// nodes.
type Deployment struct {
	Platform Platform
	Sim      *simkernel.Simulation
	Net      *simnet.Network
	FS       *beegfs.FileSystem

	clients []*beegfs.Client
	// rackClients pools the rack-placed nodes of NodesInRack.
	rackClients map[int][]*beegfs.Client
	// base capacities for jitter restoration
	serverNICBase float64
}

// Deploy instantiates the platform.
func (p Platform) Deploy() (*Deployment, error) {
	sim := simkernel.New()
	net := simnet.New(sim)
	fs, err := beegfs.New(sim, net, p.FS)
	if err != nil {
		return nil, err
	}
	// Declare the fabric aggregates (rack uplinks, core switch, client
	// ramp) as separators up front. The declaration is inert until a
	// campaign opts into simnet.SetHierarchical, so every existing
	// deployment is byte-identical with or without it.
	if seps := fs.SeparatorResources(); len(seps) > 0 {
		net.SetSeparators(seps...)
	}
	return &Deployment{
		Platform:      p,
		Sim:           sim,
		Net:           net,
		FS:            fs,
		serverNICBase: p.FS.ServerNICCapacity,
	}, nil
}

// Nodes returns n compute nodes, creating them on first use so that NIC
// resources persist across repetitions.
func (d *Deployment) Nodes(n int) []*beegfs.Client {
	for len(d.clients) < n {
		name := fmt.Sprintf("node%03d", len(d.clients)+1)
		d.clients = append(d.clients, d.FS.NewClient(name, d.Platform.ClientNICCapacity))
	}
	return d.clients[:n]
}

// ReJitter redraws the per-run variability: storage device multipliers and
// (optionally) server NIC capacities. The experiment protocol calls it
// before every repetition.
func (d *Deployment) ReJitter(src *rng.Source) {
	d.FS.Storage().ReJitter(src)
	if d.serverNICBase > 0 && d.Platform.ServerNICJitterCV > 0 {
		for _, h := range d.FS.Storage().Hosts() {
			if d.FS.NICDown(h) {
				// A failed link stays at zero capacity; the jitter draw is
				// still consumed so the rng stream (and hence determinism)
				// does not depend on fault timing.
				src.LogNormal(1, d.Platform.ServerNICJitterCV)
				continue
			}
			if nic := d.FS.ServerNIC(h); nic != nil {
				c := d.serverNICBase * src.LogNormal(1, d.Platform.ServerNICJitterCV)
				// A fail-slow pin survives re-jittering: the link keeps its
				// degraded fraction of whatever capacity was drawn.
				if f := d.FS.NICSlowFactor(h); f != 1 {
					c *= f
				}
				d.Net.SetCapacity(nic, c)
			}
		}
	}
}

// ResetJitter restores deterministic capacities.
func (d *Deployment) ResetJitter() {
	d.FS.Storage().ResetJitter()
	if d.serverNICBase > 0 {
		for _, h := range d.FS.Storage().Hosts() {
			if d.FS.NICDown(h) {
				continue
			}
			if nic := d.FS.ServerNIC(h); nic != nil {
				c := d.serverNICBase
				if f := d.FS.NICSlowFactor(h); f != 1 {
					c *= f
				}
				d.Net.SetCapacity(nic, c)
			}
		}
	}
}
