// Timeline: the paper's Figure 9, live. Attach a trace recorder to the
// simulation, write one file per allocation class over the two storage
// servers, and render each server's bandwidth timeline — showing why the
// (1,1) allocation finishes in half the time of (0,2), and why (1,3)
// leaves one server idle for three quarters of the run.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/simkernel"
	"repro/internal/trace"
)

func main() {
	for _, tc := range []struct {
		name    string
		targets []int // paper-style OST ids
	}{
		{"(1,1) balanced", []int{101, 201}},
		{"(0,2) single-server", []int{201, 202}},
		{"(1,3) round-robin count 4", []int{101, 201, 202, 203}},
		{"(2,2) what random *can* give", []int{101, 102, 201, 202}},
	} {
		if err := runCase(tc.name, tc.targets); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("reading: '@' = server at full NIC rate, ' ' = idle.")
	fmt.Println("Unbalanced allocations under-use one server's link for the whole")
	fmt.Println("run while the other saturates — the paper's Figure 9 and lesson 4:")
	fmt.Println("peak bandwidth needs the same number of targets on every server.")
}

func runCase(name string, targetIDs []int) error {
	dep, err := cluster.PlaFRIM(cluster.Scenario1Ethernet).Deploy()
	if err != nil {
		return err
	}
	fs := dep.FS
	rec := trace.NewRecorder()
	dep.Net.Observe(rec.Hook())

	// Build the file on the exact targets of the case (bypassing the
	// chooser, which is the variable under study here).
	file := &beegfs.File{Path: "/timeline.dat", Pattern: beegfs.StripePattern{Count: len(targetIDs), ChunkSize: 512 * beegfs.KiB}}
	for _, id := range targetIDs {
		t := fs.Storage().TargetByID(id)
		if t == nil {
			return fmt.Errorf("no target %d", id)
		}
		file.Targets = append(file.Targets, t)
	}
	alloc := core.FromTargets(file.Targets, fs.Storage())

	// A full 8-node x 8-ppn application: one coalesced op per node, so the
	// client-stack ramp sees 8 active nodes (as in the paper's runs).
	var done simkernel.Time
	pending := 8
	for n := 0; n < 8; n++ {
		node := fs.NewClient(fmt.Sprintf("node%03d", n+1), 0)
		if _, err := fs.StartWrite(&beegfs.WriteOp{
			Client: node, File: file,
			Offset:       int64(n) * beegfs.GiB,
			Length:       1 * beegfs.GiB,
			TransferSize: 1 * beegfs.MiB,
			Procs:        8,
			OnComplete: func(at simkernel.Time) {
				pending--
				if pending == 0 {
					done = at
				}
			},
		}); err != nil {
			return err
		}
	}
	if err := dep.Sim.Run(); err != nil {
		return err
	}
	end := float64(done)
	bw := 8 * 1024 / end

	fmt.Printf("%-28s alloc %s  ->  %5.0f MiB/s (%.1fs)\n", name, alloc, bw, end)
	// Per-server NIC utilization: with fluid striping the flow feeds every
	// server for the whole run, at rate proportional to its target share —
	// the paper's Figure 9 bars.
	flowRate := 8 * 1024 / end
	perHost := map[string]int{}
	for _, t := range file.Targets {
		perHost[t.Host().Name]++
	}
	for _, h := range fs.Storage().Hosts() {
		nic := fs.ServerNIC(h)
		share := float64(perHost[h.Name]) / float64(len(file.Targets))
		util := 0.0
		if nic != nil && nic.Capacity() > 0 {
			util = flowRate * share / nic.Capacity()
		}
		fmt.Printf("  %-6s |%s| %3.0f%% of NIC (%.0f MiB/s)\n",
			h.Name, utilStrip(util, 48), util*100, flowRate*share)
	}
	// One writer node's rate timeline from the live trace.
	if flows := rec.Flows(); len(flows) > 0 {
		fmt.Printf("  node1  |%s| rate over time\n", rec.Sparkline(flows[0], end, 48))
	}
	fmt.Println()
	return nil
}

// utilStrip renders a constant utilization level as a 0..9 density strip.
func utilStrip(util float64, width int) string {
	levels := " .:-=+*#%@"
	idx := int(util * float64(len(levels)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(levels) {
		idx = len(levels) - 1
	}
	return strings.Repeat(string(levels[idx]), width)
}
