package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Claim() {
		t.Fatal("nil tracer claimed")
	}
	tr.Slice("a", "x", 0, 1, nil)
	tr.Instant("a", "x", 0, nil)
	tr.Counter("a", 0, 1)
	if tr.Events() != 0 {
		t.Fatal("nil tracer has events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil trace JSON invalid: %v", err)
	}
	buf.Reset()
	if err := tr.WriteUtilCSV(&buf, "ost"); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "time_s,resource,mib_per_s\n" {
		t.Fatalf("nil util CSV = %q", buf.String())
	}
}

func TestClaimIsExclusive(t *testing.T) {
	tr := NewTracer()
	if !tr.Claim() {
		t.Fatal("first claim failed")
	}
	if tr.Claim() {
		t.Fatal("second claim succeeded")
	}
}

// jsonTraceEvent mirrors the wire form for decoding in tests.
type jsonTraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

func decodeTrace(t *testing.T, tr *Tracer) []jsonTraceEvent {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []jsonTraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v\n%s", err, buf.String())
	}
	return doc.TraceEvents
}

func TestWriteJSONShape(t *testing.T) {
	tr := NewTracer()
	tr.Slice("client/node001", "write /f", 1, 3, map[string]any{"mib": 32.0})
	tr.Instant("solver", "solve/start", 2, nil)
	tr.Counter("ost101", 2.5, 440)
	if tr.Events() != 3 {
		t.Fatalf("events = %d", tr.Events())
	}
	evs := decodeTrace(t, tr)
	// process_name metadata, two thread_name metadata, then the events.
	if evs[0].Ph != "M" || evs[0].Name != "process_name" {
		t.Fatalf("first event = %+v", evs[0])
	}
	names := map[string]bool{}
	var slices, instants, counters int
	for _, e := range evs {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				names[e.Args["name"].(string)] = true
			}
		case "X":
			slices++
			// Virtual seconds become microseconds.
			if e.Ts != 1e6 || e.Dur != 2e6 {
				t.Fatalf("slice ts/dur = %v/%v", e.Ts, e.Dur)
			}
		case "i":
			instants++
			if e.S != "t" {
				t.Fatalf("instant scope = %q", e.S)
			}
		case "C":
			counters++
			if e.Name != "ost101" || e.Ts != 2.5e6 {
				t.Fatalf("counter = %+v", e)
			}
		default:
			t.Fatalf("unknown phase %q", e.Ph)
		}
	}
	if slices != 1 || instants != 1 || counters != 1 {
		t.Fatalf("slices/instants/counters = %d/%d/%d", slices, instants, counters)
	}
	if !names["client/node001"] || !names["solver"] {
		t.Fatalf("thread names = %v", names)
	}
}

func TestWriteUtilCSVFiltersAndSorts(t *testing.T) {
	tr := NewTracer()
	tr.Counter("ost102", 2, 300)
	tr.Counter("ost101", 1, 100)
	tr.Counter("oss1/ctl", 1, 999) // filtered out by prefix
	tr.Counter("ost101", 2, 200)
	var buf bytes.Buffer
	if err := tr.WriteUtilCSV(&buf, "ost"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := []string{
		"time_s,resource,mib_per_s",
		"1.000000000,ost101,100.000000",
		"2.000000000,ost101,200.000000",
		"2.000000000,ost102,300.000000",
	}
	if len(lines) != len(want) {
		t.Fatalf("lines = %q", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}
