// Quickstart: deploy the simulated PlaFRIM BeeGFS, mount it from a
// compute node, write a striped file and inspect where its stripes landed
// — the minimal tour of the public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/simkernel"
)

func main() {
	// 1. Deploy the paper's platform (scenario 1: 10 GbE).
	dep, err := cluster.PlaFRIM(cluster.Scenario1Ethernet).Deploy()
	if err != nil {
		log.Fatal(err)
	}
	fs := dep.FS
	fmt.Printf("deployed %s: %d storage hosts, %d OSTs\n",
		dep.Platform.Name, len(fs.Storage().Hosts()), len(fs.Storage().Targets()))

	// 2. Mount from one compute node.
	node := fs.NewClient("node001", dep.Platform.ClientNICCapacity)

	// 3. Create a file. The directory default (stripe count 4, chunk
	//    512 KiB) and PlaFRIM's round-robin chooser decide the targets.
	src := rng.New(7)
	file, err := fs.Create("/scratch/quickstart.dat", src)
	if err != nil {
		log.Fatal(err)
	}
	alloc := core.FromTargets(file.Targets, fs.Storage())
	fmt.Printf("created %s: stripe count %d, chunk %d KiB\n",
		file.Path, file.Pattern.Count, file.Pattern.ChunkSize/1024)
	fmt.Printf("  targets %v -> allocation %s (the paper's (min,max) notation)\n",
		file.TargetIDs(), alloc)

	// 4. Write 4 GiB and let the simulation run to completion.
	var done simkernel.Time
	if _, err := fs.StartWrite(&beegfs.WriteOp{
		Client:       node,
		File:         file,
		Length:       4 * beegfs.GiB,
		TransferSize: 1 * beegfs.MiB,
		OnComplete:   func(at simkernel.Time) { done = at },
	}); err != nil {
		log.Fatal(err)
	}
	if err := dep.Sim.Run(); err != nil {
		log.Fatal(err)
	}
	bw := 4 * 1024 / float64(done)
	fmt.Printf("wrote 4 GiB in %.2fs of virtual time -> %.0f MiB/s\n", float64(done), bw)

	// 5. The analytic model predicts the same number closed-form.
	m := core.Model{FS: dep.Platform.FS, ClientNIC: dep.Platform.ClientNICCapacity}
	fmt.Printf("analytic model for %s at 1 node x 1 proc: %.0f MiB/s\n",
		alloc, m.Bandwidth(alloc, 1, 1))
	fmt.Println("\nnext: examples/stripetuning applies the paper's methodology;")
	fmt.Println("      cmd/figures regenerates every figure of the evaluation.")
}
