// Package simnet implements a flow-level network simulator with weighted
// max-min fair bandwidth sharing.
//
// Instead of simulating individual packets, each I/O stream is a Flow with
// a volume to transfer and a usage vector describing which resources
// (links, NICs, storage devices — anything with a capacity) it consumes and
// in what proportion. A flow transferring at rate r consumes r·w on every
// resource where its weight is w. This captures striping: a client process
// writing a file striped over k targets at rate r puts r on its own NIC but
// only r·(m_i/k) on storage host i's NIC, where m_i is the number of that
// host's targets in the stripe pattern — exactly the accounting behind the
// paper's Figure 9 timeline and the (min,max) allocation results.
//
// Rates are assigned by weighted max-min fairness (progressive filling):
// all flows grow a common fill level until some resource saturates or a
// flow hits its rate cap; saturated flows freeze and filling continues.
// This is the standard fluid approximation for TCP-like fair sharing and
// for request-level fair queueing inside storage servers.
package simnet

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/simkernel"
)

// Resource is anything with a capacity that flows compete for: a network
// link, a NIC, a storage device, a host I/O controller.
type Resource struct {
	Name     string
	capacity float64 // MiB/s

	// idx is the 1-based registration order within a Network; 0 for
	// resources constructed outside a Network (FairShare-only use). It
	// gives the solver a stable, allocation-free resource ordering.
	idx int

	// nActive counts in-flight flows whose usage vector touches this
	// resource; the Network keeps a resource in its solver registry
	// exactly while nActive > 0.
	nActive int

	// scratch used by the solver
	load float64
	sumW float64
}

// Capacity returns the resource's current capacity in MiB/s.
func (r *Resource) Capacity() float64 { return r.capacity }

// use is one dense entry of a flow's usage vector: a resource and the
// fraction of the flow's rate consumed on it.
type use struct {
	res *Resource
	w   float64
}

// Flow is a data stream with a fixed volume routed over a set of resources.
type Flow struct {
	Name   string
	Volume float64 // MiB to transfer in total

	// Cap, when positive, bounds the flow's rate (MiB/s) regardless of
	// resource availability. Used for per-process client-side limits.
	Cap float64

	// Usage maps each resource the flow touches to the fraction of the
	// flow's rate consumed on it (usually 1 for its own NIC, m_i/k for a
	// storage host's share of a striped write). It is the construction
	// API; Start compiles it into a dense slice the solver iterates
	// without map lookups.
	Usage map[*Resource]float64

	// OnComplete, if non-nil, fires when the last byte is transferred.
	OnComplete func(at simkernel.Time)

	// OnAbort, if non-nil, fires when the flow is removed via Abort before
	// completion (fault injection). The flow's Remaining() is settled to
	// the abort instant, so callers can re-issue exactly the unsent volume.
	// Exactly one of OnComplete/OnAbort fires per started flow.
	OnAbort func(at simkernel.Time)

	// uses is the dense, (idx, name)-sorted compilation of Usage, built
	// once per Start so the solver's hot loops touch no maps.
	uses []use

	remaining float64
	rate      float64
	started   simkernel.Time
	done      bool
	inNet     bool
	seq       uint64 // start order; tie-break for equal names
	event     *simkernel.Event

	frozen bool // solver scratch
}

// Rate returns the flow's current fair-share rate in MiB/s.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the volume not yet transferred, in MiB.
func (f *Flow) Remaining() float64 { return f.remaining }

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// Started returns the virtual time the flow was started.
func (f *Flow) Started() simkernel.Time { return f.started }

// usesRes reports whether the flow's compiled usage vector touches r.
func (f *Flow) usesRes(r *Resource) bool {
	for i := range f.uses {
		if f.uses[i].res == r {
			return true
		}
	}
	return false
}

// buildUses compiles f.Usage into the dense uses slice, validating weights.
// The slice is ordered by (registration idx, name) so solver iteration
// order never depends on map iteration.
func (f *Flow) buildUses() {
	f.uses = f.uses[:0]
	for r, w := range f.Usage {
		if w <= 0 {
			panic(fmt.Sprintf("simnet: non-positive usage weight %v on %s", w, r.Name))
		}
		f.uses = append(f.uses, use{res: r, w: w})
	}
	sort.Slice(f.uses, func(i, j int) bool {
		a, b := f.uses[i].res, f.uses[j].res
		if a.idx != b.idx {
			return a.idx < b.idx
		}
		return a.Name < b.Name
	})
}

// Network couples a set of resources and active flows to a simulation
// clock. All mutation methods must be called from within the simulation's
// event loop (or before it starts).
//
// The in-flight state is kept in persistent, incrementally maintained
// sorted slices (active flows by name, touched resources by registration
// order), so steady-state rebalancing performs no heap allocations: no map
// collection, no per-call sorting, and completion events are rescheduled
// in place rather than reallocated.
type Network struct {
	sim       *simkernel.Simulation
	resources []*Resource

	// active holds the in-flight flows sorted by (Name, seq): the solver
	// input order, maintained incrementally by Start/Abort/complete.
	active []*Flow

	// touched holds the resources used by at least one in-flight flow,
	// sorted by registration idx; this is the solver's resource registry.
	touched []*Resource

	// oldRates is observer scratch reused across rebalances.
	oldRates []float64

	nextSeq    uint64
	lastSettle simkernel.Time
	observer   func(at simkernel.Time, f *Flow, rate float64)
}

// Observe registers a callback invoked whenever a flow's fair-share rate
// changes: at flow start, at every re-balance that moves its rate, and
// with rate 0 at completion or abort. Used by the trace recorder to build
// bandwidth timelines (Figure 9 style) from live simulations. Pass nil to
// remove the observer.
func (n *Network) Observe(fn func(at simkernel.Time, f *Flow, rate float64)) {
	n.observer = fn
}

// New creates an empty network bound to the simulation clock.
func New(sim *simkernel.Simulation) *Network {
	return &Network{sim: sim}
}

// AddResource registers a resource with the given capacity (MiB/s).
func (n *Network) AddResource(name string, capacity float64) *Resource {
	if capacity < 0 {
		panic(fmt.Sprintf("simnet: negative capacity %v for %s", capacity, name))
	}
	r := &Resource{Name: name, capacity: capacity, idx: len(n.resources) + 1}
	n.resources = append(n.resources, r)
	return r
}

// SetCapacity changes a resource's capacity and immediately re-balances all
// flows. Used by the storage model when the number of active targets on a
// host changes (concave controller capacity) and by the interference
// injector.
func (n *Network) SetCapacity(r *Resource, capacity float64) {
	if capacity < 0 {
		panic(fmt.Sprintf("simnet: negative capacity %v for %s", capacity, r.Name))
	}
	if r.capacity == capacity {
		return
	}
	n.settle()
	r.capacity = capacity
	n.rebalance()
}

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.active) }

// insertActive places f into the name-sorted active slice. Flows with equal
// names stay in start order (seq), matching the FIFO intuition.
func (n *Network) insertActive(f *Flow) {
	i := sort.Search(len(n.active), func(i int) bool { return n.active[i].Name > f.Name })
	n.active = append(n.active, nil)
	copy(n.active[i+1:], n.active[i:])
	n.active[i] = f
}

// removeActive deletes f from the active slice by identity.
func (n *Network) removeActive(f *Flow) {
	i := sort.Search(len(n.active), func(i int) bool { return n.active[i].Name >= f.Name })
	for ; i < len(n.active); i++ {
		if n.active[i] == f {
			copy(n.active[i:], n.active[i+1:])
			n.active[len(n.active)-1] = nil
			n.active = n.active[:len(n.active)-1]
			return
		}
	}
}

// retain bumps the refcount of every resource f touches, registering newly
// touched resources in idx order.
func (n *Network) retain(f *Flow) {
	for i := range f.uses {
		r := f.uses[i].res
		if r.nActive == 0 {
			j := sort.Search(len(n.touched), func(j int) bool { return n.touched[j].idx > r.idx })
			n.touched = append(n.touched, nil)
			copy(n.touched[j+1:], n.touched[j:])
			n.touched[j] = r
		}
		r.nActive++
	}
}

// release drops the refcounts taken by retain, deregistering resources no
// in-flight flow touches any more.
func (n *Network) release(f *Flow) {
	for i := range f.uses {
		r := f.uses[i].res
		r.nActive--
		if r.nActive == 0 {
			j := sort.Search(len(n.touched), func(j int) bool { return n.touched[j].idx >= r.idx })
			if j < len(n.touched) && n.touched[j] == r {
				copy(n.touched[j:], n.touched[j+1:])
				n.touched[len(n.touched)-1] = nil
				n.touched = n.touched[:len(n.touched)-1]
			}
		}
	}
}

// Start begins transferring a flow. The flow's Volume, Usage and optional
// Cap/OnComplete must be set; Start panics on a zero-usage flow with
// positive volume, which would never finish.
func (n *Network) Start(f *Flow) {
	if f.Volume < 0 {
		panic("simnet: negative flow volume")
	}
	if len(f.Usage) == 0 && f.Cap <= 0 && f.Volume > 0 {
		panic("simnet: flow with no resource usage and no cap cannot be paced")
	}
	if f.inNet {
		panic(fmt.Sprintf("simnet: flow %s started while already in flight", f.Name))
	}
	f.buildUses()
	f.remaining = f.Volume
	f.started = n.sim.Now()
	f.done = false
	f.seq = n.nextSeq
	n.nextSeq++
	n.settle()
	n.insertActive(f)
	n.retain(f)
	f.inNet = true
	n.rebalance()
}

// Abort removes a flow before completion without firing OnComplete. The
// flow's OnAbort hook (if any) fires after the remaining flows have been
// re-balanced, with the flow's unsent volume settled to the abort instant.
func (n *Network) Abort(f *Flow) {
	if !f.inNet {
		return
	}
	n.settle()
	n.removeActive(f)
	n.release(f)
	f.inNet = false
	if f.event != nil {
		n.sim.Cancel(f.event)
		f.event = nil
	}
	f.rate = 0
	if n.observer != nil {
		n.observer(n.sim.Now(), f, 0)
	}
	n.rebalance()
	if f.OnAbort != nil {
		f.OnAbort(n.sim.Now())
	}
}

// FlowsUsing returns the in-flight flows whose usage vector touches r, in
// deterministic (name-sorted) order. Fault injection uses it to abort
// everything riding a failed resource. Allocates a fresh slice; hot paths
// should use AppendFlowsUsing with a reusable buffer instead.
func (n *Network) FlowsUsing(r *Resource) []*Flow {
	return n.AppendFlowsUsing(nil, r)
}

// AppendFlowsUsing appends the in-flight flows touching r to dst (which may
// be nil or a recycled buffer) and returns the extended slice. Output is in
// deterministic name-sorted order because the active list is kept sorted.
func (n *Network) AppendFlowsUsing(dst []*Flow, r *Resource) []*Flow {
	for _, f := range n.active {
		if f.usesRes(r) {
			dst = append(dst, f)
		}
	}
	return dst
}

// AppendFlowsUsingAny appends the in-flight flows touching any resource in
// rs to dst, each flow at most once, in deterministic name-sorted order.
// The fault injector uses it to collect every flow riding a failed host's
// resources in one pass without a dedup map.
func (n *Network) AppendFlowsUsingAny(dst []*Flow, rs ...*Resource) []*Flow {
	for _, f := range n.active {
		for _, r := range rs {
			if f.usesRes(r) {
				dst = append(dst, f)
				break
			}
		}
	}
	return dst
}

// settle integrates transferred volume for all flows since the last rate
// change.
func (n *Network) settle() {
	now := n.sim.Now()
	dt := float64(now - n.lastSettle)
	if dt > 0 {
		for _, f := range n.active {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				// Completion events fire exactly at the predicted time, so
				// any negative residue is floating-point noise.
				f.remaining = 0
			}
		}
	}
	n.lastSettle = now
}

// rebalance recomputes fair-share rates and reschedules completion events.
// In steady state (buffers warmed up, every flow already carrying its
// completion event) this performs zero heap allocations.
func (n *Network) rebalance() {
	if len(n.active) == 0 {
		return
	}
	if n.observer != nil {
		if cap(n.oldRates) < len(n.active) {
			n.oldRates = make([]float64, len(n.active))
		}
		n.oldRates = n.oldRates[:len(n.active)]
		for i, f := range n.active {
			n.oldRates[i] = f.rate
		}
	}
	solve(n.active, n.touched)
	now := n.sim.Now()
	for i, f := range n.active {
		n.scheduleCompletion(f, now)
		if n.observer != nil && f.rate != n.oldRates[i] {
			n.observer(now, f, f.rate)
		}
	}
}

func (n *Network) scheduleCompletion(f *Flow, now simkernel.Time) {
	var at simkernel.Time
	switch {
	case f.remaining <= 0:
		at = now
	case f.rate <= 0:
		at = simkernel.Never
	default:
		at = now + simkernel.Time(f.remaining/f.rate)
	}
	if at == simkernel.Never {
		if f.event != nil {
			n.sim.Cancel(f.event)
		}
		return
	}
	if f.event == nil {
		// First schedule for this flow: allocate the event and its
		// callback once; later rate changes move it in place.
		f.event = n.sim.At(at, func() { n.complete(f) })
		return
	}
	if f.event.Scheduled() && f.event.When() == at {
		return
	}
	n.sim.Reschedule(f.event, at)
}

func (n *Network) complete(f *Flow) {
	if !f.inNet {
		return
	}
	n.settle()
	n.removeActive(f)
	n.release(f)
	f.inNet = false
	f.event = nil
	f.done = true
	f.remaining = 0
	f.rate = 0
	if n.observer != nil {
		n.observer(n.sim.Now(), f, 0)
	}
	n.rebalance()
	if f.OnComplete != nil {
		f.OnComplete(n.sim.Now())
	}
}

// solve assigns weighted max-min fair rates to the flows in place. The
// resources slice must contain every resource touched by the flows with
// zeroed registration-order duplicates removed; the Network passes its
// incrementally maintained registry, FairShare builds one ad hoc.
// Exposed via FairShare for direct testing.
func solve(flows []*Flow, resources []*Resource) {
	for _, f := range flows {
		f.frozen = false
		f.rate = 0
	}
	for _, r := range resources {
		r.load = 0
	}
	active := len(flows)
	fill := 0.0
	for iter := 0; active > 0 && iter <= len(flows)+len(resources)+1; iter++ {
		// Per-resource demand of the unfrozen flows.
		for _, r := range resources {
			r.sumW = 0
		}
		for _, f := range flows {
			if f.frozen {
				continue
			}
			for i := range f.uses {
				f.uses[i].res.sumW += f.uses[i].w
			}
		}
		// Maximum additional fill before some resource saturates.
		delta := math.Inf(1)
		var bottleneck *Resource
		for _, r := range resources {
			if r.sumW == 0 {
				continue
			}
			d := (r.capacity - r.load) / r.sumW
			if d < delta {
				delta = d
				bottleneck = r
			}
		}
		// Maximum additional fill before some flow hits its cap.
		capDelta := math.Inf(1)
		for _, f := range flows {
			if !f.frozen && f.Cap > 0 {
				if d := f.Cap - fill; d < capDelta {
					capDelta = d
				}
			}
		}
		if math.IsInf(delta, 1) && math.IsInf(capDelta, 1) {
			// No binding constraint: flows without usage or caps — should
			// not happen given Start's validation, but guard anyway.
			break
		}
		step := math.Min(delta, capDelta)
		if step < 0 {
			step = 0
		}
		fill += step
		for _, r := range resources {
			if r.sumW > 0 {
				r.load += r.sumW * step
			}
		}
		// Freeze flows that hit the binding constraint.
		if capDelta <= delta {
			for _, f := range flows {
				if !f.frozen && f.Cap > 0 && f.Cap <= fill+1e-12 {
					f.frozen = true
					f.rate = f.Cap
					active--
				}
			}
		}
		if delta <= capDelta && bottleneck != nil {
			for _, f := range flows {
				if !f.frozen && f.usesRes(bottleneck) {
					f.frozen = true
					f.rate = fill
					active--
				}
			}
		}
	}
	for _, f := range flows {
		if !f.frozen {
			f.rate = fill
		}
	}
}

// FairShare computes weighted max-min fair rates for a standalone set of
// flows (no clock involved) and returns the rate per flow in input order.
// It does not modify remaining volumes. Intended for tests and for the
// analytic model's cross-validation; unlike the Network's internal path it
// allocates (it must discover the resource set from the usage maps).
func FairShare(flows []*Flow) []float64 {
	seen := make(map[*Resource]struct{})
	var resources []*Resource
	for _, f := range flows {
		f.buildUses()
		for i := range f.uses {
			r := f.uses[i].res
			if _, ok := seen[r]; !ok {
				seen[r] = struct{}{}
				resources = append(resources, r)
			}
		}
	}
	sort.Slice(resources, func(i, j int) bool {
		if resources[i].idx != resources[j].idx {
			return resources[i].idx < resources[j].idx
		}
		return resources[i].Name < resources[j].Name
	})
	solve(flows, resources)
	rates := make([]float64, len(flows))
	for i, f := range flows {
		rates[i] = f.rate
	}
	return rates
}
