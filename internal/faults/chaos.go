package faults

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Profile parameterizes the chaos schedule generator: which fault kinds to
// draw from, how many episodes to attempt, and the outage-length and
// slow-factor ranges. A Profile plus an rng seed fully determines the
// generated Schedule, so chaos campaigns replay bit-identically.
type Profile struct {
	// Name labels the profile in campaign output.
	Name string
	// Duration is the window (seconds) fault starts are drawn from.
	Duration float64
	// Episodes is the number of fault episodes attempted. Episodes whose
	// component is already busy with an overlapping episode are dropped
	// (never reshuffled — that keeps the draw sequence fixed), so the
	// schedule may contain fewer.
	Episodes int
	// Kinds is the fault-kind pool, drawn uniformly per episode. Kinds
	// the deployment can't express (see NICs / Heartbeats) are filtered
	// out up front.
	Kinds []Kind
	// MinOutage and MaxOutage bound the Fail→Recover gap in seconds.
	MinOutage, MaxOutage float64
	// MinFactor and MaxFactor bound SlowFault capacity fractions; both in
	// (0,1), used only when Kinds includes SlowFault.
	MinFactor, MaxFactor float64
	// TargetIDs is the pool for target-addressed episodes.
	TargetIDs []int
	// Hosts is the number of storage hosts (1-based indexes 1..Hosts).
	Hosts int
	// NICs reports whether the deployment models server NICs; without
	// them NICFault, NIC-side SlowFault and data-plane partitions are
	// excluded.
	NICs bool
	// Heartbeats reports whether the deployment runs heartbeat detection;
	// without it PartitionFault is excluded.
	Heartbeats bool
}

// Validate reports profile errors.
func (p Profile) Validate() error {
	if p.Duration <= 0 {
		return fmt.Errorf("faults: chaos profile needs a positive Duration")
	}
	if p.Episodes < 0 {
		return fmt.Errorf("faults: negative Episodes")
	}
	if len(p.Kinds) == 0 {
		return fmt.Errorf("faults: chaos profile needs at least one Kind")
	}
	if p.MinOutage <= 0 || p.MaxOutage < p.MinOutage {
		return fmt.Errorf("faults: bad outage range [%v,%v]", p.MinOutage, p.MaxOutage)
	}
	for _, k := range p.Kinds {
		switch k {
		case TargetFault, HostFault, NICFault, SlowFault, PartitionFault:
		default:
			return fmt.Errorf("faults: chaos profile has unknown kind %d", int(k))
		}
		if k == SlowFault && !(p.MinFactor > 0 && p.MinFactor <= p.MaxFactor && p.MaxFactor < 1) {
			return fmt.Errorf("faults: bad slow-factor range [%v,%v]", p.MinFactor, p.MaxFactor)
		}
	}
	if len(p.TargetIDs) == 0 && p.Hosts <= 0 {
		return fmt.Errorf("faults: chaos profile needs TargetIDs or Hosts")
	}
	return nil
}

// usable filters the kind pool down to what the deployment can express.
func (p Profile) usable() []Kind {
	out := make([]Kind, 0, len(p.Kinds))
	for _, k := range p.Kinds {
		switch k {
		case NICFault:
			if !p.NICs || p.Hosts <= 0 {
				continue
			}
		case PartitionFault:
			if !p.Heartbeats || p.Hosts <= 0 {
				continue
			}
		case HostFault:
			if p.Hosts <= 0 {
				continue
			}
		case TargetFault:
			if len(p.TargetIDs) == 0 {
				continue
			}
		case SlowFault:
			if len(p.TargetIDs) == 0 && !(p.NICs && p.Hosts > 0) {
				continue
			}
		}
		out = append(out, k)
	}
	return out
}

// Chaos generates a closed fault schedule (every Fail paired with a
// Recover) from a seeded source. The same source state and profile yield
// the same schedule. Episodes are drawn independently; an episode that
// would overlap an earlier one on the same host (targets conflict with
// their host and vice versa) is dropped rather than redrawn, keeping the
// consumption of src fixed per episode. The generated schedule always
// passes Validate on a deployment matching the profile's capabilities.
func Chaos(src *rng.Source, p Profile) (Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	kinds := p.usable()
	if len(kinds) == 0 {
		return nil, fmt.Errorf("faults: chaos profile %q has no usable kinds for this deployment", p.Name)
	}
	type interval struct{ start, end float64 }
	busy := make(map[int][]interval) // 1-based host index → episodes
	overlaps := func(host int, start, end float64) bool {
		for _, iv := range busy[host] {
			if start < iv.end && iv.start < end {
				return true
			}
		}
		return false
	}
	hostOf := func(targetID int) int { return targetID / 100 }
	var out Schedule
	for ep := 0; ep < p.Episodes; ep++ {
		// Draw everything up front so a dropped episode consumes exactly
		// as much randomness as a kept one.
		kind := kinds[src.Intn(len(kinds))]
		targetPick := 0
		if len(p.TargetIDs) > 0 {
			targetPick = p.TargetIDs[src.Intn(len(p.TargetIDs))]
		}
		hostPick := 1
		if p.Hosts > 0 {
			hostPick = 1 + src.Intn(p.Hosts)
		}
		start := src.UniformRange(0, p.Duration)
		outage := src.UniformRange(p.MinOutage, p.MaxOutage)
		factor := 0.0
		if p.MinFactor > 0 {
			factor = src.UniformRange(p.MinFactor, p.MaxFactor)
		}
		coin := src.Intn(2)

		fail := Event{At: start, Kind: kind, Action: Fail}
		switch kind {
		case TargetFault:
			fail.ID = targetPick
		case HostFault, NICFault:
			fail.ID = hostPick
		case SlowFault:
			fail.Factor = factor
			// Prefer a target pin; flip a coin toward the NIC when both
			// sides are expressible.
			if p.NICs && p.Hosts > 0 && (len(p.TargetIDs) == 0 || coin == 0) {
				fail.NIC = true
				fail.ID = hostPick
			} else {
				fail.ID = targetPick
			}
		case PartitionFault:
			fail.ID = hostPick
			// Data-plane partitions need NICs; otherwise always control.
			if p.NICs && coin == 1 {
				fail.Plane = PlaneData
			} else {
				fail.Plane = PlaneControl
			}
		}
		host := fail.ID
		if kind == TargetFault || (kind == SlowFault && !fail.NIC) {
			host = hostOf(fail.ID)
		}
		if overlaps(host, start, start+outage) {
			continue
		}
		busy[host] = append(busy[host], interval{start, start + outage})
		rec := fail
		rec.At = start + outage
		rec.Action = Recover
		rec.Factor = 0
		out = append(out, fail, rec)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].At < out[b].At })
	return out, nil
}
