package core

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Verdict is a programmatic check of one of the paper's seven "lessons
// learned" against measured data.
type Verdict struct {
	Lesson  int
	Holds   bool
	Detail  string
	Metrics map[string]float64
}

func verdict(lesson int, holds bool, format string, args ...any) Verdict {
	return Verdict{Lesson: lesson, Holds: holds, Detail: fmt.Sprintf(format, args...), Metrics: map[string]float64{}}
}

// Lesson1 — "the number of compute nodes can limit I/O performance
// regardless of the network speed": the node sweep must rise from its
// 1-node value to a materially higher plateau in BOTH scenarios, with a
// heavier impact in the storage-limited one (paper: +64% vs +270%).
// byNodesS1/byNodesS2 map node counts to mean bandwidth.
func Lesson1(byNodesS1, byNodesS2 map[int]float64) Verdict {
	g1 := sweepGain(byNodesS1)
	g2 := sweepGain(byNodesS2)
	v := verdict(1, g1 > 0.25 && g2 > 1.0 && g2 > g1,
		"node-count gain: scenario1 +%.0f%%, scenario2 +%.0f%% (paper: +64%%, +270%%)", g1*100, g2*100)
	v.Metrics["gain_s1"] = g1
	v.Metrics["gain_s2"] = g2
	return v
}

func sweepGain(byNodes map[int]float64) float64 {
	if len(byNodes) == 0 {
		return 0
	}
	minN := 0
	var first, best float64
	for n := range byNodes {
		if minN == 0 || n < minN {
			minN = n
		}
	}
	first = byNodes[minN]
	for _, bw := range byNodes {
		if bw > best {
			best = bw
		}
	}
	if first == 0 {
		return 0
	}
	return best/first - 1
}

// Lesson2 — finding the node plateau must precede parameter studies: the
// plateau node count must exceed the minimum tested, i.e. a 1-node (or
// smallest) evaluation underestimates achievable bandwidth by a material
// margin.
func Lesson2(byNodes map[int]float64) Verdict {
	g := sweepGain(byNodes)
	v := verdict(2, g > 0.25,
		"evaluating at the smallest node count hides %.0f%% of achievable bandwidth", g*100)
	v.Metrics["hidden_fraction"] = g
	return v
}

// Lesson3 — nodes and processes-per-node have independent effects:
// doubling ppn at fixed nodes must NOT reproduce the gain of doubling
// nodes at fixed ppn. ratioPpn = BW(N, 2p)/BW(N, p); ratioNodes =
// BW(2N, p)/BW(N, p), measured below the plateau.
func Lesson3(ratioPpn, ratioNodes float64) Verdict {
	v := verdict(3, ratioPpn < 1.1 && ratioNodes > ratioPpn+0.1,
		"doubling ppn changes bandwidth x%.2f while doubling nodes changes it x%.2f", ratioPpn, ratioNodes)
	v.Metrics["ratio_ppn"] = ratioPpn
	v.Metrics["ratio_nodes"] = ratioNodes
	return v
}

// Lesson4 — scenario 1: bandwidth is ordered by the allocation's min/max
// balance ratio, not by the target count; balanced allocations reach the
// peak. byAlloc maps allocations to bandwidth samples.
func Lesson4(byAlloc map[string][]float64, allocs map[string]Allocation) Verdict {
	type row struct {
		ratio float64
		mean  float64
		count int
	}
	var rows []row
	for key, samples := range byAlloc {
		a, ok := allocs[key]
		if !ok || len(samples) == 0 {
			continue
		}
		rows = append(rows, row{ratio: a.BalanceRatio(), mean: stats.Mean(samples), count: a.Count()})
	}
	if len(rows) < 3 {
		return verdict(4, false, "not enough allocation classes (%d)", len(rows))
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].ratio != rows[j].ratio {
			return rows[i].ratio < rows[j].ratio
		}
		return rows[i].mean < rows[j].mean
	})
	// Mean bandwidth must be nondecreasing in balance ratio (2% slack),
	// independent of count. Rows sharing a ratio are peers: each row is
	// compared against the best mean of every strictly lower ratio, so the
	// verdict does not depend on how ties happen to be ordered.
	holds := true
	bestBelow := 0.0
	for i := 0; i < len(rows); {
		j := i
		groupMax := rows[i].mean
		for ; j < len(rows) && rows[j].ratio == rows[i].ratio; j++ {
			if rows[j].mean > groupMax {
				groupMax = rows[j].mean
			}
		}
		if i > 0 && rows[i].mean < bestBelow*0.98 {
			holds = false
		}
		if groupMax > bestBelow {
			bestBelow = groupMax
		}
		i = j
	}
	v := verdict(4, holds, "bandwidth ordered by min/max ratio across %d allocation classes", len(rows))
	v.Metrics["classes"] = float64(len(rows))
	return v
}

// Lesson5 — summarizing by mean hides behaviour: at least one stripe
// count must show a bimodal bandwidth distribution whose mean sits in the
// sparse valley between the modes. byCount maps stripe counts to samples.
func Lesson5(byCount map[int][]float64) Verdict {
	// Walk counts in sorted order so the reported class does not depend on
	// map iteration: the verdict (and lessons.csv) must be reproducible.
	counts := make([]int, 0, len(byCount))
	for c := range byCount {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	for _, count := range counts {
		samples := byCount[count]
		if !stats.Bimodal(samples) {
			continue
		}
		m := stats.Mean(samples)
		// The mean is "misleading" if <20% of samples fall within 5% of it.
		near := 0
		for _, s := range samples {
			if s > 0.95*m && s < 1.05*m {
				near++
			}
		}
		if float64(near) < 0.2*float64(len(samples)) {
			v := verdict(5, true,
				"stripe count %d is bimodal: only %d/%d samples lie near the mean %.0f", count, near, len(samples), m)
			v.Metrics["count"] = float64(count)
			return v
		}
	}
	return verdict(5, false, "no bimodal count found whose mean misrepresents the data")
}

// Lesson6 — scenario 2: more OSTs means more bandwidth (contradicting
// Chowdhury et al.), and balanced placements still win at equal count.
// meansByCount maps stripe count to mean bandwidth; balanced/unbalanced
// are same-count means (e.g. (3,3) vs (2,4)); zero values skip the check.
func Lesson6(meansByCount map[int]float64, balanced, unbalanced float64) Verdict {
	counts := make([]int, 0, len(meansByCount))
	for c := range meansByCount {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	monotone := true
	for i := 1; i < len(counts); i++ {
		if meansByCount[counts[i]] < meansByCount[counts[i-1]]*0.98 {
			monotone = false
		}
	}
	placement := balanced == 0 || unbalanced == 0 || balanced > unbalanced
	v := verdict(6, monotone && placement,
		"bandwidth monotone over %d counts; balanced/unbalanced = %.3f (paper: 1.10)",
		len(counts), safeRatio(balanced, unbalanced))
	v.Metrics["balanced_ratio"] = safeRatio(balanced, unbalanced)
	return v
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Lesson7 — sharing OSTs does not significantly impact performance: the
// Welch t-test between "apps share all targets" and "apps share none"
// must not reject equal means (paper: p = 0.9031).
func Lesson7(shareAll, shareNone []float64) Verdict {
	res, err := stats.WelchT(shareAll, shareNone)
	if err != nil {
		return verdict(7, false, "t-test failed: %v", err)
	}
	v := verdict(7, res.P > 0.05,
		"Welch t-test share-all vs share-none: t=%.3f df=%.1f p=%.4f (paper: p=0.9031)", res.T, res.DF, res.P)
	v.Metrics["p"] = res.P
	v.Metrics["t"] = res.T
	return v
}
