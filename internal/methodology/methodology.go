// Package methodology automates the paper's §III/§IV evaluation pipeline
// so it "can be applied in other systems to gather insights about their
// PFS" (the paper's stated third contribution):
//
//	stage 1 — data-size sweep (Figure 2): find the smallest total size
//	          that reaches the platform's steady state;
//	stage 2 — node sweep (Figure 4, lessons 1-2): find the number of
//	          compute nodes where bandwidth plateaus, so later stages are
//	          not hidden by client-side limits;
//	stage 3 — stripe-count sweep at the plateau (Figures 6/8/10,
//	          lessons 4-6): measure every count, group by (min,max)
//	          allocation, and recommend the default stripe count.
//
// The output is a Report with every intermediate measurement, the chosen
// parameters and the recommendation — the same deliverable the paper
// handed PlaFRIM's administrators (§I: "our conclusions led the system
// administrators ... to change its default BeeGFS parameters").
package methodology

import (
	"fmt"
	"sort"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ior"
	"repro/internal/stats"
)

// Options tunes the pipeline.
type Options struct {
	// Reps per configuration (the paper used 100).
	Reps int
	Seed uint64
	// MaxNodes bounds the node sweep (default 32).
	MaxNodes int
	// MaxSizeGiB bounds the data-size sweep (default 64).
	MaxSizeGiB int64
	// PPN is the processes per node (default 8, the paper's choice).
	PPN int
	// PlateauTolerance: a point is "at the plateau" when within this
	// fraction of the sweep maximum (default 0.03).
	PlateauTolerance float64
	// FastProtocol shortens inter-block waits (tests).
	FastProtocol bool
	// Workers bounds the campaign worker pool (0 = one per CPU).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Reps <= 0 {
		o.Reps = 100
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 32
	}
	if o.MaxSizeGiB <= 0 {
		o.MaxSizeGiB = 64
	}
	if o.PPN <= 0 {
		o.PPN = 8
	}
	if o.PlateauTolerance <= 0 {
		o.PlateauTolerance = 0.03
	}
	return o
}

// SweepPoint is one measurement of a sweep stage.
type SweepPoint struct {
	X       float64 // size in GiB (stage 1) or nodes (stage 2)
	Mean    float64
	SD      float64
	CILow   float64
	CIHigh  float64
	Samples int
}

// CountRow is one stripe count of stage 3.
type CountRow struct {
	Count   int
	Mean    float64
	Worst   float64 // worst allocation-class mean
	Best    float64 // best allocation-class mean
	Bimodal bool
	Classes []AllocClass
}

// AllocClass is one (min,max) allocation class observed at a count.
type AllocClass struct {
	Alloc core.Allocation
	N     int
	Mean  float64
}

// Report is the pipeline's outcome.
type Report struct {
	Platform string
	// Stage 1.
	SizeSweep     []SweepPoint
	ChosenSizeGiB int64
	// Stage 2.
	NodeSweep    []SweepPoint
	PlateauNodes int
	NodeGain     float64 // plateau over 1-node mean, minus 1 (lesson 1)
	// Stage 3 runs at Stage3Nodes = 2 x PlateauNodes (capped at
	// MaxNodes): the paper uses twice the count-4 plateau for its count
	// sweeps (8 for scenario 1, 32 for scenario 2) because higher stripe
	// counts need more compute nodes (lesson 6).
	Stage3Nodes      int
	CountSweep       []CountRow
	RecommendedCount int
	// GainOverDefault compares the recommendation against the platform's
	// configured default (the paper's "up to 40%" estimate).
	GainOverDefault float64
	// BalanceGoverned reports whether same-ratio allocation classes
	// cluster together (lesson 4's signature, network-limited platforms).
	BalanceGoverned bool
}

// Run executes the three stages; each campaign deploys its own fresh
// instances of the platform (one per repetition worker).
func Run(p cluster.Platform, opts Options) (Report, error) {
	opts = opts.withDefaults()
	rep := Report{Platform: p.Name}

	// ---- Stage 1: data size (Figure 2). 4 nodes x PPN, default count.
	stage1Nodes := 4
	if stage1Nodes > opts.MaxNodes {
		stage1Nodes = opts.MaxNodes
	}
	var sizes []int64
	for g := int64(1); g <= opts.MaxSizeGiB; g *= 2 {
		sizes = append(sizes, g)
	}
	var cfgs []experiments.Config
	for _, g := range sizes {
		cfgs = append(cfgs, experiments.Config{
			Label:  fmt.Sprintf("size%03d", g),
			Params: params(stage1Nodes, opts.PPN, 0, g*beegfs.GiB),
		})
	}
	recs, err := campaign(p, opts, 1).Run(cfgs)
	if err != nil {
		return rep, err
	}
	byLabel := experiments.GroupByLabel(recs)
	for _, g := range sizes {
		pt, err := point(float64(g), experiments.Bandwidths(byLabel[fmt.Sprintf("size%03d", g)]))
		if err != nil {
			return rep, err
		}
		rep.SizeSweep = append(rep.SizeSweep, pt)
	}
	rep.ChosenSizeGiB = chooseSize(sizes, rep.SizeSweep, opts.PlateauTolerance)

	// ---- Stage 2: node sweep (Figure 4) at the chosen size.
	var nodes []int
	for n := 1; n <= opts.MaxNodes; n *= 2 {
		nodes = append(nodes, n)
	}
	cfgs = cfgs[:0]
	for _, n := range nodes {
		cfgs = append(cfgs, experiments.Config{
			Label:  fmt.Sprintf("n%03d", n),
			Params: params(n, opts.PPN, 0, rep.ChosenSizeGiB*beegfs.GiB),
		})
	}
	recs, err = campaign(p, opts, 2).Run(cfgs)
	if err != nil {
		return rep, err
	}
	byLabel = experiments.GroupByLabel(recs)
	for _, n := range nodes {
		pt, err := point(float64(n), experiments.Bandwidths(byLabel[fmt.Sprintf("n%03d", n)]))
		if err != nil {
			return rep, err
		}
		rep.NodeSweep = append(rep.NodeSweep, pt)
	}
	rep.PlateauNodes, rep.NodeGain = choosePlateau(nodes, rep.NodeSweep, opts.PlateauTolerance)

	// ---- Stage 3: stripe-count sweep (Figures 6/8/10), at twice the
	// plateau so higher counts are not client-limited (lesson 6; the
	// paper's own choice of 8 and 32 nodes).
	rep.Stage3Nodes = 2 * rep.PlateauNodes
	if rep.Stage3Nodes > opts.MaxNodes {
		rep.Stage3Nodes = opts.MaxNodes
	}
	total := p.FS.Hosts * p.FS.TargetsPerHost
	cfgs = cfgs[:0]
	for k := 1; k <= total; k++ {
		cfgs = append(cfgs, experiments.Config{
			Label:  fmt.Sprintf("count%02d", k),
			Params: params(rep.Stage3Nodes, opts.PPN, k, rep.ChosenSizeGiB*beegfs.GiB),
		})
	}
	recs, err = campaign(p, opts, 3).Run(cfgs)
	if err != nil {
		return rep, err
	}
	byLabel = experiments.GroupByLabel(recs)
	hostCount := p.FS.Hosts
	ratioMeans := map[string][]float64{} // balance-ratio bucket -> class means
	for k := 1; k <= total; k++ {
		rs := byLabel[fmt.Sprintf("count%02d", k)]
		samples := experiments.Bandwidths(rs)
		row := CountRow{Count: k, Mean: stats.Mean(samples), Bimodal: stats.Bimodal(samples)}
		classes := map[string][]float64{}
		allocs := map[string]core.Allocation{}
		for _, r := range rs {
			a := r.Alloc()
			classes[a.Key()] = append(classes[a.Key()], r.Bandwidth())
			allocs[a.Key()] = a
		}
		for key, vals := range classes {
			c := AllocClass{Alloc: allocs[key], N: len(vals), Mean: stats.Mean(vals)}
			row.Classes = append(row.Classes, c)
			ratioKey := fmt.Sprintf("%.3f", allocs[key].BalanceRatio())
			ratioMeans[ratioKey] = append(ratioMeans[ratioKey], c.Mean)
			if row.Worst == 0 || c.Mean < row.Worst {
				row.Worst = c.Mean
			}
			if c.Mean > row.Best {
				row.Best = c.Mean
			}
		}
		sort.Slice(row.Classes, func(i, j int) bool { return row.Classes[i].Alloc.Less(row.Classes[j].Alloc) })
		rep.CountSweep = append(rep.CountSweep, row)
	}
	_ = hostCount

	// Recommendation: best mean; ties to the better worst case, then to
	// the larger count (the paper's rule).
	best := rep.CountSweep[0]
	for _, row := range rep.CountSweep[1:] {
		switch {
		case row.Mean > best.Mean*1.01:
			best = row
		case row.Mean > best.Mean*0.99 && row.Worst > best.Worst*1.01:
			best = row
		case row.Mean > best.Mean*0.99 && row.Worst > best.Worst*0.99 && row.Count > best.Count:
			best = row
		}
	}
	rep.RecommendedCount = best.Count
	defaultCount := p.FS.DefaultPattern.Count
	if defaultCount >= 1 && defaultCount <= len(rep.CountSweep) {
		if m := rep.CountSweep[defaultCount-1].Mean; m > 0 {
			rep.GainOverDefault = best.Mean/m - 1
		}
	}
	// Lesson-4 signature: classes sharing a balance ratio lie within 10%
	// of each other, for at least one multi-class ratio bucket.
	for _, means := range ratioMeans {
		if len(means) < 2 {
			continue
		}
		lo, hi := means[0], means[0]
		for _, m := range means {
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
		}
		if hi <= lo*1.1 {
			rep.BalanceGoverned = true
			break
		}
	}
	return rep, nil
}

func params(nodes, ppn, count int, total int64) ior.Params {
	return ior.Params{
		Nodes: nodes, PPN: ppn,
		TransferSize: 1 * beegfs.MiB,
		StripeCount:  count,
	}.WithTotalSize(total)
}

func campaign(p cluster.Platform, opts Options, stage uint64) experiments.Campaign {
	// Round repetitions up to whole blocks. Beyond protocol fidelity this
	// preserves a subtle invariant of the rotating round-robin chooser:
	// a block of 10 same-count creations advances the cursor by 10k — an
	// even shift on PlaFRIM's 8-target cycle — so count-4 files keep
	// landing on the paper's two (1,3) windows. A partial odd block would
	// let odd cursor positions (and allocations the paper never observed,
	// like (0,4)) leak into later experiments.
	reps := (opts.Reps + 9) / 10 * 10
	proto := experiments.Protocol{
		Repetitions: reps, BlockSize: 10,
		MinWait: 60, MaxWait: 1800,
		Seed: opts.Seed*17 + stage,
	}
	if opts.FastProtocol {
		proto.MinWait, proto.MaxWait = 0.5, 2
	}
	return experiments.Campaign{Platform: p, Proto: proto, Workers: opts.Workers}
}

func point(x float64, samples []float64) (SweepPoint, error) {
	s, err := stats.Summarize(samples)
	if err != nil {
		return SweepPoint{}, err
	}
	pt := SweepPoint{X: x, Mean: s.Mean, SD: s.SD, Samples: s.N}
	if lo, hi, err := stats.MeanCI(samples, 0.95); err == nil {
		pt.CILow, pt.CIHigh = lo, hi
	}
	return pt, nil
}

// chooseSize picks the smallest size whose mean is within tol of every
// larger size's mean (the Figure 2 "performance stabilizes" criterion).
func chooseSize(sizes []int64, sweep []SweepPoint, tol float64) int64 {
	for i := range sweep {
		ok := true
		for j := i + 1; j < len(sweep); j++ {
			diff := sweep[j].Mean - sweep[i].Mean
			if diff < 0 {
				diff = -diff
			}
			if diff > tol*sweep[j].Mean {
				ok = false
				break
			}
		}
		if ok {
			return sizes[i]
		}
	}
	return sizes[len(sizes)-1]
}

// choosePlateau returns the smallest node count within tol of the sweep
// maximum, plus the lesson-1 gain over the smallest node count.
func choosePlateau(nodes []int, sweep []SweepPoint, tol float64) (int, float64) {
	maxMean := 0.0
	for _, pt := range sweep {
		if pt.Mean > maxMean {
			maxMean = pt.Mean
		}
	}
	plateau := nodes[len(nodes)-1]
	for i, pt := range sweep {
		if pt.Mean >= (1-tol)*maxMean {
			plateau = nodes[i]
			break
		}
	}
	gain := 0.0
	if sweep[0].Mean > 0 {
		gain = maxMean/sweep[0].Mean - 1
	}
	return plateau, gain
}
