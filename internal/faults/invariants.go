// Invariant checking for fault campaigns: a Checker records every
// acknowledged operation during a run and, at a quiesce point (simulation
// drained, faults recovered), asserts the safety properties no fault
// schedule may break:
//
//  1. Durability — no acknowledged write loses bytes: every surviving
//     file's size covers the largest acknowledged write end.
//  2. Convergence — mirrors are consistent after recovery + resync: no
//     file still carries dirty (unresynced) bytes, and per-stripe mirror
//     accounting matches the primary's.
//  3. Conservation — per-OST byte accounting balances: each target's used
//     bytes equal the sum of what the surviving files account on it
//     (aborts, retries and failovers must not leak or double-count).
//  4. Boundedness — no op retried past its RetryMax budget.
//
// The checker observes through the file system's op-observer slot,
// composing with (not displacing) an already-attached tracer.
package faults

import (
	"fmt"
	"strings"

	"repro/internal/beegfs"
)

// Checker accumulates acknowledged-op evidence for invariant checking.
type Checker struct {
	fs *beegfs.FileSystem
	// ackedEnd is the largest acknowledged write end-offset per path.
	ackedEnd map[string]int64
	// maxAttempts is the largest attempt count seen at any op's terminal
	// point.
	maxAttempts int
	// failedOps counts terminally failed ops (allowed — chaos may
	// legitimately exhaust budgets — but they must carry structured
	// errors; see FailedOps).
	failedOps int
}

// NewChecker attaches a checker to the deployment's op-observer slot,
// chaining to any observer already installed (the tracer's, typically).
// Attach it after observability setup and before the workload starts.
func NewChecker(fs *beegfs.FileSystem) *Checker {
	c := &Checker{fs: fs, ackedEnd: make(map[string]int64)}
	prev := fs.OpObserver()
	fs.SetOpObserver(func(ev beegfs.OpEvent) {
		if prev != nil {
			prev(ev)
		}
		if ev.Attempts > c.maxAttempts {
			c.maxAttempts = ev.Attempts
		}
		if ev.Err != nil {
			c.failedOps++
			return
		}
		if !ev.Read && ev.EndOffset > c.ackedEnd[ev.Path] {
			c.ackedEnd[ev.Path] = ev.EndOffset
		}
	})
	return c
}

// FailedOps returns the number of terminally failed ops observed.
func (c *Checker) FailedOps() int { return c.failedOps }

// Check asserts the invariants at a quiesce point: the simulation must be
// drained and every scripted fault recovered, so resyncs have had their
// chance to converge. It returns an error joining every violation found
// (nil = all invariants hold).
func (c *Checker) Check() error {
	var violations []string
	fail := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	files := c.fs.Meta().Files()
	byPath := make(map[string]*beegfs.File, len(files))
	for _, f := range files {
		byPath[f.Path] = f
	}

	// 1. Durability: acknowledged writes must be covered by the file size.
	// Paths since unlinked are exempt — deletion is the caller's choice,
	// not data loss.
	for _, f := range files {
		if end, ok := c.ackedEnd[f.Path]; ok && f.Size < end {
			fail("durability: %q has size %d below acknowledged write end %d", f.Path, f.Size, end)
		}
	}

	// 2. Convergence: no surviving dirt, and mirrored accounting matches.
	if n := c.fs.DirtyFiles(); n > 0 {
		fail("convergence: %d file(s) still carry unresynced mirror bytes at quiesce", n)
	}
	for _, f := range files {
		if !f.Mirrored() {
			continue
		}
		if d := f.DirtyBytes(); d > 0 {
			fail("convergence: %q has %d dirty bytes at quiesce", f.Path, d)
		}
		for i := range f.Targets {
			if p, m := f.StoredOn(i), f.MirrorStoredOn(i); p != m {
				fail("convergence: %q stripe %d stores %d bytes on the primary but %d on the mirror", f.Path, i, p, m)
			}
		}
	}

	// 3. Conservation: per-target used bytes equal the files' accounting.
	// Only meaningful when capacity accounting is on.
	if c.fs.Config().Storage.TargetCapacityBytes > 0 {
		for _, t := range c.fs.Mgmtd().All() {
			var sum int64
			for _, f := range files {
				for i, ft := range f.Targets {
					if ft.ID == t.ID {
						sum += f.StoredOn(i)
					}
				}
				for i, id := range f.MirrorIDs() {
					if id == t.ID {
						sum += f.MirrorStoredOn(i)
					}
				}
			}
			if used := t.Used(); used != sum {
				fail("conservation: target %d accounts %d used bytes but files sum to %d", t.ID, used, sum)
			}
		}
	}

	// 4. Boundedness: the retry machinery must respect RetryMax.
	if max := c.fs.Config().RetryMax; max > 0 && c.maxAttempts > max {
		fail("boundedness: an op recorded %d attempts, above RetryMax %d", c.maxAttempts, max)
	}

	if len(violations) == 0 {
		return nil
	}
	return fmt.Errorf("faults: %d invariant violation(s):\n  %s", len(violations), strings.Join(violations, "\n  "))
}
