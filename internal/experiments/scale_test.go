package experiments

import (
	"math"
	"testing"
)

// TestExtScaleModesAgreeAndBatchingHelps runs the small-topology churn
// and checks both halves of the campaign's contract: the batched cell
// reproduces the unbatched cell's simulated results exactly, while doing
// strictly less solver work per event.
func TestExtScaleModesAgreeAndBatchingHelps(t *testing.T) {
	rows, err := ExtScale(Options{Reps: 3, Seed: 9, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (small topology, two modes)", len(rows))
	}
	un, ba := rows[0], rows[1]
	if un.Mode != "unbatched" || ba.Mode != "batched" {
		t.Fatalf("mode order = %q, %q", un.Mode, ba.Mode)
	}
	if un.Jobs != 36 || ba.Jobs != 36 {
		t.Fatalf("jobs = %d/%d, want 36", un.Jobs, ba.Jobs)
	}
	if math.Float64bits(un.BWMean) != math.Float64bits(ba.BWMean) {
		t.Fatalf("mean job bandwidth diverged: %v vs %v", un.BWMean, ba.BWMean)
	}
	if un.PeakFlows != ba.PeakFlows || un.PeakFlows < 8 {
		t.Fatalf("peak flows = %d/%d, want equal and non-trivial", un.PeakFlows, ba.PeakFlows)
	}
	if ba.Solves >= un.Solves {
		t.Fatalf("batched solves %d not below unbatched %d", ba.Solves, un.Solves)
	}
	if ba.SolvesPerEvent >= un.SolvesPerEvent {
		t.Fatalf("batched solves/event %.3f not below unbatched %.3f", ba.SolvesPerEvent, un.SolvesPerEvent)
	}
	if un.BWMean <= 0 || un.BWMin <= 0 || un.BWMax < un.BWMean {
		t.Fatalf("implausible bandwidth summary: %+v", un)
	}
	if un.Racks != 4 || un.Targets != 32 {
		t.Fatalf("topology = %d racks / %d targets, want 4/32", un.Racks, un.Targets)
	}
}
