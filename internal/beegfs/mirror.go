package beegfs

import (
	"fmt"

	"repro/internal/storagesim"
)

// BuddyGroup pairs a primary and a secondary target on different storage
// hosts — BeeGFS's "buddy mirror group". Files created with a mirrored
// stripe pattern write every chunk to both members; reads prefer the
// primary and fall back to the secondary when the primary is offline.
//
// The paper does not evaluate mirroring; the feature is here because a
// production BeeGFS deployment offers it, and because it makes a clean
// ablation: mirroring doubles the storage-side load per byte, so the
// paper's allocation arithmetic applies with the allocation of the
// combined target set.
type BuddyGroup struct {
	ID        int
	Primary   *storagesim.Target
	Secondary *storagesim.Target
}

// BuddyGroups pairs the system's targets across hosts: the i-th target of
// host 2j is paired with the i-th target of host 2j+1. It errors when the
// topology cannot be paired host-symmetrically (odd host count or uneven
// targets per host).
func BuddyGroups(sys *storagesim.System) ([]BuddyGroup, error) {
	hosts := sys.Hosts()
	if len(hosts)%2 != 0 {
		return nil, fmt.Errorf("beegfs: buddy mirroring needs an even number of hosts, got %d", len(hosts))
	}
	var groups []BuddyGroup
	id := 1
	for h := 0; h < len(hosts); h += 2 {
		a, b := hosts[h], hosts[h+1]
		if len(a.Targets()) != len(b.Targets()) {
			return nil, fmt.Errorf("beegfs: hosts %s and %s have different target counts", a.Name, b.Name)
		}
		for i := range a.Targets() {
			groups = append(groups, BuddyGroup{ID: id, Primary: a.Targets()[i], Secondary: b.Targets()[i]})
			id++
		}
	}
	return groups, nil
}

// CreateMirrored creates a file striped over `count` buddy groups chosen
// round-robin over the group list. Each chunk lands on both members of
// its group, so the file's write traffic doubles and its effective
// allocation is balanced by construction (each group spans both hosts of
// its pair).
func (fs *FileSystem) CreateMirrored(path string, count int, chunkSize int64) (*File, error) {
	groups, err := BuddyGroups(fs.storage)
	if err != nil {
		return nil, err
	}
	if count <= 0 || count > len(groups) {
		return nil, fmt.Errorf("beegfs: mirrored stripe count %d out of range (1..%d)", count, len(groups))
	}
	pattern := StripePattern{Count: count, ChunkSize: chunkSize}
	if err := pattern.Validate(); err != nil {
		return nil, err
	}
	// Rotate group selection with the same cursor discipline as the
	// round-robin chooser.
	start := fs.mirrorCursor % len(groups)
	fs.mirrorCursor = (fs.mirrorCursor + count) % len(groups)
	f := &File{Path: path, Pattern: pattern}
	for i := 0; i < count; i++ {
		g := groups[(start+i)%len(groups)]
		f.Targets = append(f.Targets, g.Primary)
		f.mirrors = append(f.mirrors, g.Secondary)
	}
	if err := fs.meta.create(path, f); err != nil {
		return nil, err
	}
	return f, nil
}

// Mirrored reports whether the file carries buddy mirrors.
func (f *File) Mirrored() bool { return len(f.mirrors) > 0 }

// MirrorIDs returns the secondary targets' IDs in stripe order (empty for
// unmirrored files).
func (f *File) MirrorIDs() []int {
	ids := make([]int, len(f.mirrors))
	for i, t := range f.mirrors {
		ids[i] = t.ID
	}
	return ids
}

// Read failover (primaries with per-stripe fallback to the secondary) and
// degraded-write selection both live in FileSystem.selectReplicas (fs.go),
// which also consults target/host failure state and NIC health.
