package beegfs

import (
	"fmt"
	"sort"

	"repro/internal/simkernel"
	"repro/internal/storagesim"
)

// Mgmtd models the BeeGFS management service: the registry of storage
// targets, their registration order (which drives the round-robin chooser)
// and their published per-target state — Reachability driven by heartbeats
// (or flipped directly by the omniscient injector when heartbeats are
// disabled) and Consistency gating mirror resync. Clients always act on
// this *published* view, never on device ground truth, which is what makes
// stale-view I/O possible between a fault firing and the mgmtd noticing.
type Mgmtd struct {
	order []*storagesim.Target
	// reach holds each target's published reachability; absent = Online.
	reach map[int]Reachability
	// consistency holds each target's data-trust verdict; absent = Good.
	consistency map[int]Consistency
	subscribers []func(t *storagesim.Target, online bool)
	reachSubs   []func(t *storagesim.Target, from, to Reachability)
	// reachObserver is the tracer's single detachable slot, fired after the
	// subscribers on every reachability transition.
	reachObserver func(t *storagesim.Target, from, to Reachability)
}

// NewMgmtd registers the targets in the given order. The order matters:
// it is the round-robin chooser's iteration order, and PlaFRIM's order is
// what produces the paper's two (1,3) allocations at stripe count 4.
func NewMgmtd(order []*storagesim.Target) (*Mgmtd, error) {
	if len(order) == 0 {
		return nil, fmt.Errorf("beegfs: mgmtd needs at least one target")
	}
	seen := make(map[int]bool, len(order))
	for _, t := range order {
		if seen[t.ID] {
			return nil, fmt.Errorf("beegfs: duplicate target %d in registration order", t.ID)
		}
		seen[t.ID] = true
	}
	return &Mgmtd{
		order:       append([]*storagesim.Target(nil), order...),
		reach:       make(map[int]Reachability),
		consistency: make(map[int]Consistency),
	}, nil
}

// PlaFRIMOrder returns the registration order reported by the paper for
// PlaFRIM's two-host, four-targets-each deployment:
// 101, 201, 202, 203, 204, 102, 103, 104.
// With this order, a rotating round-robin at stripe count 4 yields exactly
// the two allocations (101,201,202,203) and (204,102,103,104) (§IV-C1).
func PlaFRIMOrder(sys *storagesim.System) ([]*storagesim.Target, error) {
	ids := []int{101, 201, 202, 203, 204, 102, 103, 104}
	out := make([]*storagesim.Target, 0, len(ids))
	for _, id := range ids {
		t := sys.TargetByID(id)
		if t == nil {
			return nil, fmt.Errorf("beegfs: PlaFRIM order needs target %d (system is not 2 hosts x 4 targets)", id)
		}
		out = append(out, t)
	}
	return out, nil
}

// InterleavedOrder returns a generic host-interleaved registration order
// (host1[0], host2[0], ..., host1[1], host2[1], ...) for arbitrary
// systems.
func InterleavedOrder(sys *storagesim.System) []*storagesim.Target {
	hosts := sys.Hosts()
	max := 0
	for _, h := range hosts {
		if len(h.Targets()) > max {
			max = len(h.Targets())
		}
	}
	var out []*storagesim.Target
	for i := 0; i < max; i++ {
		for _, h := range hosts {
			if i < len(h.Targets()) {
				out = append(out, h.Targets()[i])
			}
		}
	}
	return out
}

// Online returns the non-Offline targets in registration order. A
// ProbablyOffline target is still published as usable — the suspicion is
// only consulted by CreationCandidates.
func (m *Mgmtd) Online() []*storagesim.Target {
	out := make([]*storagesim.Target, 0, len(m.order))
	for _, t := range m.order {
		if m.reach[t.ID] != Offline {
			out = append(out, t)
		}
	}
	return out
}

// CreationCandidates returns the targets a new file should stripe over:
// fully Online, not consistency-Bad, in registration order. When the hedge
// would leave nothing (every target at least suspect), it falls back to
// Online() — BeeGFS would rather place a file on a suspect target than
// fail the create while the cluster map still lists usable targets.
func (m *Mgmtd) CreationCandidates() []*storagesim.Target {
	out := make([]*storagesim.Target, 0, len(m.order))
	for _, t := range m.order {
		if m.reach[t.ID] == Online && m.consistency[t.ID] != Bad {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		return m.Online()
	}
	return out
}

// All returns every registered target in registration order.
func (m *Mgmtd) All() []*storagesim.Target {
	return append([]*storagesim.Target(nil), m.order...)
}

// IsOnline reports whether the target with the given ID is published as
// usable (anything but Offline). Unknown IDs report false.
func (m *Mgmtd) IsOnline(id int) bool {
	if m.reach[id] == Offline {
		return false
	}
	return m.find(id) != nil
}

// Reachability returns the published reachability of a target. Unknown IDs
// report Offline.
func (m *Mgmtd) Reachability(id int) Reachability {
	if m.find(id) == nil {
		return Offline
	}
	return m.reach[id]
}

// Consistency returns the published consistency of a target. Unknown IDs
// report Bad.
func (m *Mgmtd) Consistency(id int) Consistency {
	if m.find(id) == nil {
		return Bad
	}
	return m.consistency[id]
}

// SetConsistency publishes a target's consistency verdict. Unknown IDs
// return an error.
func (m *Mgmtd) SetConsistency(id int, c Consistency) error {
	if m.find(id) == nil {
		return fmt.Errorf("beegfs: unknown target %d", id)
	}
	if c == Good {
		delete(m.consistency, id)
	} else {
		m.consistency[id] = c
	}
	return nil
}

// hasConsistencyMarks reports whether any target is currently published as
// other than Good — a cheap guard so the Good-restoring rescan only runs
// when there is something to restore.
func (m *Mgmtd) hasConsistencyMarks() bool { return len(m.consistency) > 0 }

func (m *Mgmtd) find(id int) *storagesim.Target {
	for _, t := range m.order {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Subscribe registers a callback fired whenever a target crosses the
// Offline boundary in either direction (transitions between Online and
// ProbablyOffline do not fire, and redundant updates do not fire). The
// file system uses it to kick off mirror resyncs on recovery.
func (m *Mgmtd) Subscribe(fn func(t *storagesim.Target, online bool)) {
	m.subscribers = append(m.subscribers, fn)
}

// SubscribeReach registers a callback fired on every effective
// reachability transition, including the Online⇄ProbablyOffline hops the
// legacy Subscribe cannot see.
func (m *Mgmtd) SubscribeReach(fn func(t *storagesim.Target, from, to Reachability)) {
	m.reachSubs = append(m.reachSubs, fn)
}

// SetReachObserver installs (or with nil removes) the tracer's transition
// observer. Unlike SubscribeReach it is a single replaceable slot, so the
// observability layer can detach cleanly between repetitions.
func (m *Mgmtd) SetReachObserver(fn func(t *storagesim.Target, from, to Reachability)) {
	m.reachObserver = fn
}

// SetReachability publishes a new reachability verdict for a target.
// Redundant updates are no-ops; effective ones notify the reach
// subscribers, the tracer observer, and — when the Offline boundary is
// crossed — the legacy online/offline subscribers. Unknown IDs return an
// error.
func (m *Mgmtd) SetReachability(id int, to Reachability) error {
	t := m.find(id)
	if t == nil {
		return fmt.Errorf("beegfs: unknown target %d", id)
	}
	from := m.reach[id]
	if from == to {
		return nil
	}
	if to == Online {
		delete(m.reach, id)
	} else {
		m.reach[id] = to
	}
	for _, fn := range m.reachSubs {
		fn(t, from, to)
	}
	if m.reachObserver != nil {
		m.reachObserver(t, from, to)
	}
	if (from == Offline) != (to == Offline) {
		online := to != Offline
		for _, fn := range m.subscribers {
			fn(t, online)
		}
	}
	return nil
}

// SetOnline marks a target fully Online (true) or Offline (false) — the
// omniscient entry point used when heartbeats are disabled. Unknown IDs
// return an error.
func (m *Mgmtd) SetOnline(id int, online bool) error {
	to := Offline
	if online {
		to = Online
	}
	return m.SetReachability(id, to)
}

// File is a file's metadata: its stripe pattern and the targets its chunks
// live on (in stripe order).
type File struct {
	Path    string
	Pattern StripePattern
	Targets []*storagesim.Target
	Size    int64
	// stored tracks the bytes accounted on each target (stripe order) for
	// capacity bookkeeping; files are accounted dense up to Size.
	stored []int64
	// mirrors holds the buddy-mirror secondaries (stripe order) for files
	// created with CreateMirrored; storedM mirrors the accounting.
	mirrors []*storagesim.Target
	storedM []int64
	// dirtyP/dirtyS track bytes written while the primary/secondary replica
	// of stripe i was unavailable (degraded writes). A resync flow re-copies
	// them once both replicas are back.
	dirtyP []int64
	dirtyS []int64
	// resyncing marks an in-flight resync flow for the file, so recovery
	// events don't start a second one.
	resyncing bool
}

// DirtyBytes returns the total bytes awaiting mirror resync.
func (f *File) DirtyBytes() int64 {
	var sum int64
	for _, b := range f.dirtyP {
		sum += b
	}
	for _, b := range f.dirtyS {
		sum += b
	}
	return sum
}

// StoredOn returns the bytes accounted on the i-th stripe target.
func (f *File) StoredOn(i int) int64 {
	if i < 0 || i >= len(f.stored) {
		return 0
	}
	return f.stored[i]
}

// MirrorStoredOn returns the bytes accounted on the i-th stripe's buddy
// mirror (0 for unmirrored files).
func (f *File) MirrorStoredOn(i int) int64 {
	if i < 0 || i >= len(f.storedM) {
		return 0
	}
	return f.storedM[i]
}

// TargetIDs returns the file's target IDs in stripe order.
func (f *File) TargetIDs() []int {
	ids := make([]int, len(f.Targets))
	for i, t := range f.Targets {
		ids[i] = t.ID
	}
	return ids
}

// MetaService models one BeeGFS metadata server (MDS) with its metadata
// target (MDT). It owns the file-system tree, per-directory stripe
// defaults, and charges a fixed virtual-time cost per metadata operation
// (consumed by the workload layer when timing runs, since IOR's reported
// bandwidth includes open/create).
type MetaService struct {
	files map[string]*File
	dirs  map[string]StripePattern
	// CreateLatency and OpenLatency are the virtual-time costs (seconds)
	// of creating and opening a file.
	CreateLatency float64
	OpenLatency   float64
	// OpRate is the MDS's sustained metadata throughput in operations per
	// second (0 = unlimited). Bursts of operations beyond it queue — the
	// mechanism that makes file-per-process runs with many ranks
	// metadata-bound (I/O interference is "connected to metadata
	// intensity", §IV-D citing Yang et al. [31]).
	OpRate float64
	// Ops counts metadata operations by kind, for the metadata-intensity
	// analysis extension.
	Ops map[string]int

	busyUntil simkernel.Time
}

// ReserveOps books n metadata operations starting at virtual time now and
// returns the delay until the last one has been serviced. With OpRate = 0
// the MDS is infinitely fast and the delay is zero. The MDS is a single
// FIFO queue: bursts from concurrent applications serialize.
func (m *MetaService) ReserveOps(now simkernel.Time, n int) float64 {
	if m.OpRate <= 0 || n <= 0 {
		return 0
	}
	start := now
	if m.busyUntil > start {
		start = m.busyUntil
	}
	dur := float64(n) / m.OpRate
	m.busyUntil = start + simkernel.Time(dur)
	return float64(start-now) + dur
}

// BusyUntil returns the time the MDS queue drains.
func (m *MetaService) BusyUntil() simkernel.Time { return m.busyUntil }

// NewMetaService returns an empty metadata service with a root directory
// carrying the given default pattern.
func NewMetaService(defaultPattern StripePattern) (*MetaService, error) {
	if err := defaultPattern.Validate(); err != nil {
		return nil, err
	}
	return &MetaService{
		files: make(map[string]*File),
		dirs:  map[string]StripePattern{"/": defaultPattern},
		Ops:   make(map[string]int),
	}, nil
}

// SetDirPattern sets the default stripe pattern for files created under
// dir. In BeeGFS striping is configured per directory by the administrator
// (not per file by users, unlike Lustre) — the reason the paper argues the
// system-wide default matters so much.
func (m *MetaService) SetDirPattern(dir string, p StripePattern) error {
	if err := p.Validate(); err != nil {
		return err
	}
	m.dirs[dir] = p
	return nil
}

// PatternFor returns the stripe pattern that applies to path: the longest
// registered directory prefix wins.
func (m *MetaService) PatternFor(path string) StripePattern {
	best := m.dirs["/"]
	bestLen := 0
	for dir, p := range m.dirs {
		if len(dir) > bestLen && hasDirPrefix(path, dir) {
			best = p
			bestLen = len(dir)
		}
	}
	return best
}

func hasDirPrefix(path, dir string) bool {
	if dir == "/" {
		return true
	}
	if len(path) < len(dir) || path[:len(dir)] != dir {
		return false
	}
	return len(path) == len(dir) || path[len(dir)] == '/'
}

// Lookup returns the file at path, or nil.
func (m *MetaService) Lookup(path string) *File {
	m.Ops["stat"]++
	return m.files[path]
}

// Files returns every tracked file in path-sorted order. Unlike Lookup it
// does not count a metadata operation — it is an inspection hook for the
// invariant checker, not a simulated client call.
func (m *MetaService) Files() []*File {
	out := make([]*File, 0, len(m.files))
	for _, p := range m.Paths() {
		out = append(out, m.files[p])
	}
	return out
}

// FileCount returns the number of files the MDS tracks.
func (m *MetaService) FileCount() int { return len(m.files) }

// Paths returns all file paths in sorted order.
func (m *MetaService) Paths() []string {
	out := make([]string, 0, len(m.files))
	for p := range m.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func (m *MetaService) create(path string, f *File) error {
	if _, exists := m.files[path]; exists {
		return fmt.Errorf("beegfs: file %q already exists", path)
	}
	m.files[path] = f
	m.Ops["create"]++
	return nil
}

// Remove deletes a file's metadata entry.
func (m *MetaService) Remove(path string) error {
	if _, ok := m.files[path]; !ok {
		return fmt.Errorf("beegfs: file %q does not exist", path)
	}
	delete(m.files, path)
	m.Ops["unlink"]++
	return nil
}
