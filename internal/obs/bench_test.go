package obs

import "testing"

// benchStats mimics the per-deployment Stats structs the simulation layers
// keep: plain fields behind one nil pointer check. The Disabled benchmark
// measures what every instrumented hot-path site costs when observability
// is off — it should be indistinguishable from the bare loop.
type benchStats struct {
	events    uint64
	highWater uint64
	hist      Log2Hist
}

var sinkU64 uint64

func BenchmarkStatsSiteDisabled(b *testing.B) {
	var st *benchStats
	var depth uint64
	for i := 0; i < b.N; i++ {
		depth = uint64(i) & 1023
		if st != nil {
			st.events++
			if depth > st.highWater {
				st.highWater = depth
			}
		}
	}
	sinkU64 = depth
}

func BenchmarkStatsSiteEnabled(b *testing.B) {
	st := &benchStats{}
	var depth uint64
	for i := 0; i < b.N; i++ {
		depth = uint64(i) & 1023
		if st != nil {
			st.events++
			if depth > st.highWater {
				st.highWater = depth
			}
		}
	}
	sinkU64 = st.events + depth
}

func BenchmarkLog2HistObserve(b *testing.B) {
	var h Log2Hist
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
	sinkU64 = h.Sum
}

func BenchmarkRegistryAdd(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < b.N; i++ {
		r.Add("bench/counter", 1)
	}
	sinkU64 = r.Counter("bench/counter")
}

func BenchmarkRegistryAddNil(b *testing.B) {
	var r *Registry
	for i := 0; i < b.N; i++ {
		r.Add("bench/counter", 1)
	}
}

func BenchmarkRegistryMergeHist(b *testing.B) {
	r := NewRegistry()
	var h Log2Hist
	for v := uint64(0); v < 1000; v++ {
		h.Observe(v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.MergeHist("bench/hist", &h)
	}
}

// TestPipelineDisabledZeroCost is the pipeline's cost contract when
// observability is off: a nil pipeline hands out a nil collector whose
// entire surface must complete without a single heap allocation.
func TestPipelineDisabledZeroCost(t *testing.T) {
	var p *Pipeline
	c := p.Collector()
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add("simnet/solves", 1)
		c.Max("simkernel/heap_high_water", 64)
		c.Observe("beegfs/op_mib", 8)
		c.Emit(Point{Name: "simnet/solves", Kind: KindCount, Value: 1})
		c.Flush()
		c.Release()
	})
	if allocs != 0 {
		t.Fatalf("disabled collector path allocates %v times per run, want 0", allocs)
	}
}

// TestPipelineEmitSteadyStateZeroAlloc pins the enabled-path contract the
// bench-regression gate watches via BenchmarkPipelineEmit: once a
// collector's cells exist, recording into them is allocation-free.
func TestPipelineEmitSteadyStateZeroAlloc(t *testing.T) {
	p := NewPipeline()
	c := p.Collector()
	// Warm the cells so the steady state is measured, not map growth.
	c.Add("simnet/solves", 1)
	c.Max("simkernel/heap_high_water", 1)
	c.Observe("beegfs/op_mib", 1)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add("simnet/solves", 1)
		c.Max("simkernel/heap_high_water", 64)
		c.Observe("beegfs/op_mib", 8)
	})
	if allocs != 0 {
		t.Fatalf("warm collector emit allocates %v times per run, want 0", allocs)
	}
}

// BenchmarkPipelineEmit measures the enabled hot path: counter, gauge and
// histogram updates into a warm per-worker collector. This is what every
// instrumented simulation site pays per record when the pipeline is on.
// Gate: 0 allocs/op.
func BenchmarkPipelineEmit(b *testing.B) {
	p := NewPipeline()
	c := p.Collector()
	c.Add("simnet/solves", 1)
	c.Max("simkernel/heap_high_water", 1)
	c.Observe("beegfs/op_mib", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := uint64(i) & 1023
		c.Add("simnet/solves", 1)
		c.Max("simkernel/heap_high_water", v)
		c.Observe("beegfs/op_mib", v)
	}
	b.StopTimer()
	c.Flush()
	sinkU64 = p.Registry().Counter("simnet/solves")
}

// BenchmarkPipelineEmitDisabled measures the same sites against a nil
// pipeline — the cost every run pays when no observability flag is set.
func BenchmarkPipelineEmitDisabled(b *testing.B) {
	var p *Pipeline
	c := p.Collector()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := uint64(i) & 1023
		c.Add("simnet/solves", 1)
		c.Max("simkernel/heap_high_water", v)
		c.Observe("beegfs/op_mib", v)
	}
}
