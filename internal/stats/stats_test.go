package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasics(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if !almost(s.Mean, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", s.Mean)
	}
	// Sample SD with n-1: variance = 32/7.
	if !almost(s.Var, 32.0/7, 1e-12) {
		t.Fatalf("Var = %v, want %v", s.Var, 32.0/7)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if !almost(s.Median, 4.5, 1e-12) {
		t.Fatalf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrInsufficientData {
		t.Fatalf("err = %v, want ErrInsufficientData", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if s.SD != 0 || s.Mean != 3 || s.Median != 3 {
		t.Fatalf("single-sample summary wrong: %+v", s)
	}
}

func TestMeanEmptyIsNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestQuantileType7(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	// R type-7: quantile(x, .25) = 1.75
	if q := Quantile(xs, 0.25); !almost(q, 1.75, 1e-12) {
		t.Fatalf("Q1 = %v, want 1.75", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("Q0 = %v, want 1", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("Q1.0 = %v, want 4", q)
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(p=2) did not panic")
		}
	}()
	Quantile([]float64{1}, 2)
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestBoxPlotWhiskersAndOutliers(t *testing.T) {
	// Data with one clear upper outlier.
	xs := []float64{10, 11, 12, 13, 14, 15, 16, 17, 18, 100}
	b, err := NewBoxPlot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Fatalf("Outliers = %v, want [100]", b.Outliers)
	}
	if b.UpperWhisker != 18 {
		t.Fatalf("UpperWhisker = %v, want 18", b.UpperWhisker)
	}
	if b.LowerWhisker != 10 {
		t.Fatalf("LowerWhisker = %v, want 10", b.LowerWhisker)
	}
	if b.Max != 100 {
		t.Fatalf("Max = %v, want 100", b.Max)
	}
}

func TestBoxPlotPropertyOrdering(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		size := int(n%100) + 1
		src := rng.New(seed)
		xs := make([]float64, size)
		for i := range xs {
			xs[i] = src.Normal(100, 25)
		}
		b, err := NewBoxPlot(xs)
		if err != nil {
			return false
		}
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max &&
			b.LowerWhisker >= b.Q1-1.5*(b.Q3-b.Q1)-1e-9 &&
			b.UpperWhisker <= b.Q3+1.5*(b.Q3-b.Q1)+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramCountsSum(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	h, err := NewHistogram(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram counts sum to %d, want %d", total, len(xs))
	}
	if len(h.Edges) != 6 {
		t.Fatalf("edges = %d, want 6", len(h.Edges))
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h, err := NewHistogram([]float64{5, 5, 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("degenerate histogram lost samples: %v", h.Counts)
	}
}

func TestHistogramBadBins(t *testing.T) {
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Fatal("nbins=0 accepted")
	}
}

func TestBimodalDetectsTwoModes(t *testing.T) {
	src := rng.New(1)
	var xs []float64
	for i := 0; i < 50; i++ {
		xs = append(xs, src.Normal(1100, 20))
	}
	for i := 0; i < 50; i++ {
		xs = append(xs, src.Normal(2200, 20))
	}
	if !Bimodal(xs) {
		t.Fatal("clear two-mode sample not detected as bimodal")
	}
}

func TestBimodalRejectsUnimodal(t *testing.T) {
	src := rng.New(2)
	var xs []float64
	for i := 0; i < 100; i++ {
		xs = append(xs, src.Normal(1500, 50))
	}
	if Bimodal(xs) {
		t.Fatal("unimodal sample flagged as bimodal")
	}
}

func TestBimodalSmallSample(t *testing.T) {
	if Bimodal([]float64{1, 2}) {
		t.Fatal("tiny sample flagged as bimodal")
	}
}

func TestWelchTEqualMeans(t *testing.T) {
	src := rng.New(3)
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = src.Normal(50, 5)
		b[i] = src.Normal(50, 8)
	}
	res, err := WelchT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Fatalf("equal-mean samples rejected: p = %v", res.P)
	}
}

func TestWelchTDifferentMeans(t *testing.T) {
	src := rng.New(4)
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		a[i] = src.Normal(50, 5)
		b[i] = src.Normal(60, 5)
	}
	res, err := WelchT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Fatalf("10-sigma-apart samples not rejected: p = %v", res.P)
	}
	if res.T > 0 {
		t.Fatalf("T should be negative when mean(a) < mean(b): %v", res.T)
	}
}

func TestWelchTKnownValue(t *testing.T) {
	// Hand-computed: a = {1..5}: mean 3, var 2.5; b = 2a: mean 6, var 10.
	// t = (3-6)/sqrt(2.5/5 + 10/5) = -3/sqrt(2.5) = -1.89737.
	// df = 2.5^2 / ((0.5^2)/4 + (2^2)/4) = 6.25/1.0625 = 5.88235.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	res, err := WelchT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.T, -3/math.Sqrt(2.5), 1e-9) {
		t.Fatalf("T = %v, want %v", res.T, -3/math.Sqrt(2.5))
	}
	if !almost(res.DF, 6.25/1.0625, 1e-9) {
		t.Fatalf("DF = %v, want %v", res.DF, 6.25/1.0625)
	}
	// Two-sided p for |t|=1.897 at ~5.9 df sits near 0.107.
	if res.P < 0.09 || res.P > 0.13 {
		t.Fatalf("P = %v, want ~0.107", res.P)
	}
}

func TestWelchTConstantSamples(t *testing.T) {
	res, err := WelchT([]float64{5, 5, 5}, []float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Fatalf("identical constants: p = %v, want 1", res.P)
	}
	res, err = WelchT([]float64{5, 5, 5}, []float64{6, 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Fatalf("different constants: p = %v, want 0", res.P)
	}
}

func TestWelchTInsufficient(t *testing.T) {
	if _, err := WelchT([]float64{1}, []float64{1, 2}); err != ErrInsufficientData {
		t.Fatalf("err = %v", err)
	}
}

func TestWelchTSymmetry(t *testing.T) {
	check := func(seed uint64) bool {
		src := rng.New(seed)
		a := make([]float64, 30)
		b := make([]float64, 40)
		for i := range a {
			a[i] = src.Normal(10, 2)
		}
		for i := range b {
			b[i] = src.Normal(11, 3)
		}
		r1, err1 := WelchT(a, b)
		r2, err2 := WelchT(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return almost(r1.P, r2.P, 1e-12) && almost(r1.T, -r2.T, 1e-12)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKSNormalAcceptsNormal(t *testing.T) {
	src := rng.New(6)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = src.Normal(100, 10)
	}
	res, err := KSNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Fatalf("normal sample rejected by KS: p = %v (D = %v)", res.P, res.D)
	}
}

func TestKSNormalRejectsBimodal(t *testing.T) {
	src := rng.New(7)
	xs := make([]float64, 0, 200)
	for i := 0; i < 100; i++ {
		xs = append(xs, src.Normal(0, 1))
	}
	for i := 0; i < 100; i++ {
		xs = append(xs, src.Normal(10, 1))
	}
	res, err := KSNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.01 {
		t.Fatalf("strongly bimodal sample accepted as normal: p = %v", res.P)
	}
}

func TestKSNormalConstant(t *testing.T) {
	res, err := KSNormal([]float64{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Fatalf("constant sample: p = %v, want 0", res.P)
	}
}

func TestKSTwoSampleSameDistribution(t *testing.T) {
	src := rng.New(8)
	a := make([]float64, 150)
	b := make([]float64, 150)
	for i := range a {
		a[i] = src.Normal(5, 1)
		b[i] = src.Normal(5, 1)
	}
	res, err := KSTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Fatalf("same-distribution samples rejected: p = %v", res.P)
	}
}

func TestKSTwoSampleDifferent(t *testing.T) {
	src := rng.New(9)
	a := make([]float64, 150)
	b := make([]float64, 150)
	for i := range a {
		a[i] = src.Normal(5, 1)
		b[i] = src.Normal(8, 1)
	}
	res, err := KSTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Fatalf("3-sigma-apart samples not rejected: p = %v", res.P)
	}
}

func TestKSTwoSampleEmpty(t *testing.T) {
	if _, err := KSTwoSample(nil, []float64{1}); err != ErrInsufficientData {
		t.Fatalf("err = %v", err)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if v := regIncBeta(2, 3, 0); v != 0 {
		t.Fatalf("I_0 = %v, want 0", v)
	}
	if v := regIncBeta(2, 3, 1); v != 1 {
		t.Fatalf("I_1 = %v, want 1", v)
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if v := regIncBeta(1, 1, x); !almost(v, x, 1e-10) {
			t.Fatalf("I_%v(1,1) = %v, want %v", x, v, x)
		}
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	if v := normalCDF(0); !almost(v, 0.5, 1e-12) {
		t.Fatalf("Phi(0) = %v", v)
	}
	if v := normalCDF(1.96); !almost(v, 0.975, 1e-3) {
		t.Fatalf("Phi(1.96) = %v", v)
	}
	if v := normalCDF(-1.96); !almost(v, 0.025, 1e-3) {
		t.Fatalf("Phi(-1.96) = %v", v)
	}
}

func TestStudentTSFKnownValues(t *testing.T) {
	// With df -> large, t-dist ~ normal: P(T > 1.96) ~ 0.025.
	if v := studentTSF(1.96, 10000); !almost(v, 0.025, 1e-3) {
		t.Fatalf("SF(1.96, 1e4) = %v", v)
	}
	// t(1) is Cauchy: P(T > 1) = 0.25.
	if v := studentTSF(1, 1); !almost(v, 0.25, 1e-6) {
		t.Fatalf("SF(1, 1) = %v, want 0.25", v)
	}
}

func BenchmarkSummarize(b *testing.B) {
	src := rng.New(1)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = src.Normal(1000, 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Summarize(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWelchT(b *testing.B) {
	src := rng.New(1)
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = src.Normal(1000, 100)
		ys[i] = src.Normal(1050, 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WelchT(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMeanCICoversTrueMean(t *testing.T) {
	// Frequentist check: ~95% of 95% CIs cover the true mean.
	src := rng.New(41)
	covered := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		xs := make([]float64, 30)
		for j := range xs {
			xs[j] = src.Normal(100, 15)
		}
		lo, hi, err := MeanCI(xs, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if lo <= 100 && 100 <= hi {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.90 || rate > 0.99 {
		t.Fatalf("95%% CI covered the mean %.1f%% of the time", rate*100)
	}
}

func TestMeanCIErrors(t *testing.T) {
	if _, _, err := MeanCI([]float64{1}, 0.95); err != ErrInsufficientData {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := MeanCI([]float64{1, 2}, 1.5); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestStudentTQuantileKnownValues(t *testing.T) {
	// t_{0.975, inf} = 1.96; t_{0.975, 10} = 2.228.
	if v := studentTQuantile(0.975, 1e6); !almost(v, 1.96, 0.01) {
		t.Fatalf("q(0.975, inf) = %v", v)
	}
	if v := studentTQuantile(0.975, 10); !almost(v, 2.228, 0.01) {
		t.Fatalf("q(0.975, 10) = %v", v)
	}
	if v := studentTQuantile(0.5, 10); v != 0 {
		t.Fatalf("median quantile = %v", v)
	}
}

func TestMannWhitneySameDistribution(t *testing.T) {
	src := rng.New(51)
	a := make([]float64, 80)
	b := make([]float64, 80)
	for i := range a {
		a[i] = src.Normal(10, 2)
		b[i] = src.Normal(10, 2)
	}
	res, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Fatalf("same-distribution samples rejected: p = %v", res.P)
	}
}

func TestMannWhitneyShifted(t *testing.T) {
	src := rng.New(52)
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		a[i] = src.Normal(10, 2)
		b[i] = src.Normal(13, 2)
	}
	res, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-4 {
		t.Fatalf("1.5-sigma shift not detected: p = %v", res.P)
	}
}

func TestMannWhitneyWorksOnBimodalData(t *testing.T) {
	// The reason it exists here: two bimodal samples with the SAME mixture
	// are accepted; shifting one mode is detected.
	src := rng.New(53)
	mk := func(lo, hi float64) []float64 {
		xs := make([]float64, 0, 60)
		for i := 0; i < 30; i++ {
			xs = append(xs, src.Normal(lo, 20), src.Normal(hi, 20))
		}
		return xs
	}
	same1, same2 := mk(1100, 2200), mk(1100, 2200)
	res, err := MannWhitneyU(same1, same2)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Fatalf("identical mixtures rejected: p = %v", res.P)
	}
	shifted := mk(1100, 2600)
	res, err = MannWhitneyU(same1, shifted)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.05 {
		t.Fatalf("shifted mode not detected: p = %v", res.P)
	}
}

func TestMannWhitneyKnownSmallCase(t *testing.T) {
	// Hand-computed: a = {1,2}, b = {3,4}: ranks of a = 1,2 -> Ra = 3,
	// U = 3 - 3 = 0.
	res, err := MannWhitneyU([]float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 0 {
		t.Fatalf("U = %v, want 0", res.U)
	}
}

func TestMannWhitneyAllTied(t *testing.T) {
	res, err := MannWhitneyU([]float64{5, 5, 5}, []float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Fatalf("all-tied p = %v, want 1", res.P)
	}
}

func TestMannWhitneyInsufficient(t *testing.T) {
	if _, err := MannWhitneyU([]float64{1}, []float64{2, 3}); err != ErrInsufficientData {
		t.Fatalf("err = %v", err)
	}
}
