package experiments

import (
	"math"
	"testing"
)

// TestExtHierScaleModes runs the core-coupled churn and checks the
// campaign's three-way contract: the hierarchical exact mode reproduces
// the flat solver bit-for-bit while actually taking the partitioned path,
// and the bounded-error mode completes the same jobs with its measured
// residual inside the bound. The in-line enforcement inside ExtHierScale
// already fails on violations; the test re-asserts the interesting fields
// so a contract relaxation inside the campaign cannot pass silently.
func TestExtHierScaleModes(t *testing.T) {
	rows, err := ExtHierScale(Options{Reps: 2, Seed: 9, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (small topology, three modes)", len(rows))
	}
	flat, exact, approx := rows[0], rows[1], rows[2]
	if flat.Mode != "flat" || exact.Mode != "hier-exact" || approx.Mode != "hier-approx" {
		t.Fatalf("mode order = %q, %q, %q", flat.Mode, exact.Mode, approx.Mode)
	}
	if flat.Jobs != 24 || exact.Jobs != 24 || approx.Jobs != 24 {
		t.Fatalf("jobs = %d/%d/%d, want 24", flat.Jobs, exact.Jobs, approx.Jobs)
	}
	if flat.HierSolves != 0 || flat.HierFallbacks != 0 {
		t.Fatalf("flat mode recorded hierarchical work: %+v", flat)
	}
	if exact.HierSolves == 0 {
		t.Fatalf("hier-exact never engaged: %+v", exact)
	}
	if math.Float64bits(exact.BWMean) != math.Float64bits(flat.BWMean) ||
		math.Float64bits(exact.BWMin) != math.Float64bits(flat.BWMin) ||
		math.Float64bits(exact.BWMax) != math.Float64bits(flat.BWMax) ||
		exact.PeakFlows != flat.PeakFlows || exact.Events != flat.Events {
		t.Fatalf("hier-exact diverged from flat:\nflat  %+v\nexact %+v", flat.Deterministic(), exact.Deterministic())
	}
	if approx.HierSolves == 0 || approx.OuterRounds == 0 {
		t.Fatalf("hier-approx never ran the coordination loop: %+v", approx)
	}
	if approx.MaxRelErr > hierScaleBound {
		t.Fatalf("hier-approx residual %g exceeds bound %g", approx.MaxRelErr, hierScaleBound)
	}
	if flat.BWMean <= 0 || flat.BWMin <= 0 || flat.BWMax < flat.BWMean {
		t.Fatalf("implausible bandwidth summary: %+v", flat)
	}
	if flat.Racks != 4 || flat.Targets != 32 {
		t.Fatalf("topology = %d racks / %d targets, want 4/32", flat.Racks, flat.Targets)
	}
}
