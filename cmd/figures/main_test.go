package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func tinyOpts() experiments.Options {
	return experiments.Options{Reps: 3, Seed: 1, FastProtocol: true}
}

func TestRunSingleFigureWritesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run("6a", tinyOpts(), dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6_scenario1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	csv := string(data)
	if !strings.HasPrefix(csv, "count,mean_mibs") {
		t.Fatalf("unexpected CSV header: %q", csv[:40])
	}
	if lines := strings.Count(csv, "\n"); lines != 9 { // header + 8 counts
		t.Fatalf("CSV lines = %d, want 9", lines)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run("99z", tinyOpts(), ""); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunFig8WithoutCSV(t *testing.T) {
	// Empty out dir skips CSV but still renders.
	if err := run("8", tinyOpts(), ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunExtensionFigures(t *testing.T) {
	dir := t.TempDir()
	for _, fig := range []string{"extread", "policy"} {
		if err := run(fig, tinyOpts(), dir); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "ext_policy.csv")); err != nil {
		t.Fatal(err)
	}
}
