package simnet

// Hierarchical waterfill: rack-local solving coupled via separator
// aggregates.
//
// PR 7's parallelism fans *components* over workers, which collapses on an
// oversubscribed fat tree whose rack uplinks share a core switch: the
// fabric is one connected component, so the flush solves it serially. This
// file decomposes such a component along a declared separator set (the
// rack-uplink and core resources, see SetSeparators): deleting the
// separators from the flow↔resource graph splits it into rack-local
// groups, and the solver treats each group as an almost-independent
// subproblem coupled only through the separators.
//
// Two modes share the partition machinery:
//
// Exact mode (SetHierarchical(workers, 0)) runs ONE waterfill whose passes
// are synchronized across groups — a regrouping of solveReference's
// arithmetic, not an approximation:
//
//   - Per-resource demand sums: a local (non-separator) resource is used
//     only by flows of its own group, and a group's flow list is an
//     order-preserving subsequence of the component's canonical (Name,
//     seq) flow order, so accumulating sumW group-locally performs the
//     exact same IEEE additions in the exact same order as the
//     reference's global sweep. Separator sums are accumulated by the
//     coordinator over the separator-touching flows, again in canonical
//     order. Additions to different resources never interact, so
//     splitting one global sweep into per-group sweeps plus a separator
//     sweep is bitwise identical.
//   - The bottleneck argmin combines exactly across the partition: the
//     reference's first-wins strict `d < delta` scan over idx-ordered
//     resources picks the smallest-idx resource among those with the
//     bitwise-smallest d, so taking each group's local argmin (its
//     resources are idx-ordered) and combining by (d, idx) lexicographic
//     minimum reproduces the same bottleneck and the same delta bits.
//   - The cap frontier minimum over per-group cap-sorted frontiers equals
//     the global frontier minimum (a plain float min of unchanged Cap
//     values), and IEEE subtraction keeps capDelta = minCap - fill
//     bit-identical.
//   - Everything else (step = min, fill accumulation, load += sumW·step,
//     the `Cap <= fill+1e-12` freeze tolerance, the stall and iteration-cap
//     exits) is the same code on the same values.
//
// The speedup comes from incrementality ACROSS passes: a group whose
// frozen set did not change since its last accumulation keeps its sumW
// values as-is — re-summing an identical ordered operand sequence would
// reproduce identical bits, so skipping the re-sum is sound — and the
// separator sweep reruns only when a separator-touching flow froze. The
// flat solver re-sums every unfrozen flow every pass; here each pass
// re-sums only the groups the previous pass's freezes touched, and large
// re-sum passes fan the touched groups over the worker pool. When the
// partition is degenerate (no separators in the component, fewer than two
// rack-local groups, or a tiny component) trySolve reports false and the
// caller runs the flat solver — the fallback is invisible in the output
// because exact mode is bit-identical anyway.
//
// Bounded-error mode (SetHierarchical(workers, maxRelErr) with maxRelErr >
// 0) is a genuine decomposition, per the ROADMAP's "approximate fast path
// is fine if opt-in, bounded, measured" rule: each group is solved
// INDEPENDENTLY (in parallel) against private clones of the separator
// resources, and an outer coordination loop waterfills each separator's
// capacity over the groups' measured aggregate demands, re-tightens the
// clone capacities, and re-solves until the max relative rate change
// between consecutive rounds is <= maxRelErr. The measured residual is
// reported via Stats.HierMaxRelErr (exported as simnet/hier_max_rel_err).
// If the loop hits its round cap without converging it re-runs the exact
// solve, so the reported residual never exceeds the configured bound; the
// forceOuter test knob truncates the loop without that fallback to prove
// the metric fires (see hier_test.go).
//
// Group membership is tracked by a union-find over non-separator
// resources, updated on every retain (flow start). Removals never split
// it: a stale-coarse partition is still a correct decomposition — each
// non-separator resource and each flow still lands in exactly one group —
// it just couples groups that have since disconnected. On rack-local
// workloads no flow ever bridges two racks' local resources, so the
// partition stays exactly per-rack forever.

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"
)

// hsepBit flags, inside Flow.hgroup, a flow whose usage vector touches at
// least one separator resource.
const hsepBit = int32(1) << 30

const (
	// hierMinFlowsDefault is the component size below which trySolve
	// declines without even partitioning: the partition walk costs
	// O(flows + resources) per solve, which only pays against large flat
	// solves. Exact mode makes the threshold a pure performance choice.
	hierMinFlowsDefault = 192
	// hierParMinWork is the minimum number of unfrozen flows across the
	// pass's touched groups before the re-accumulation fans out over the
	// worker pool; below it the goroutine handoff costs more than the sums.
	hierParMinWork = 2048
	// hierOuterCap bounds bounded-error coordination rounds; hitting it
	// falls back to the exact solve so the error bound still holds.
	hierOuterCap = 32
)

// hierGroup is one rack-local subproblem of the current partition: the
// flows and non-separator resources of one connected group, in canonical
// order (flows by (Name, seq), resources by idx), plus the group's share
// of the solve scratch.
type hierGroup struct {
	flows  []*Flow
	res    []*Resource
	capped []*Flow // cap-ordered subsequence of the component's capped list

	// Exact-mode pass scratch, mirroring the flat solver's compacted
	// lists but scoped to the group.
	unfrozen []int32
	cands    []int32
	capHead  int
	// touched marks that a member flow froze since the last sumW
	// accumulation, so the sums must be recomputed before the next argmin.
	touched bool

	// Bounded-mode state: per-separator-slot capacity clones (nil where
	// the group's flows never touch that separator), a pool recycling the
	// clone structs across solves, the group's aggregate flow weight on
	// each separator (the coordination waterfill's per-group weight, so
	// capacity splits in proportion to flow population rather than one
	// equal share per rack), and the locals+clones resource list the
	// group-local solver runs against.
	clones    []*Resource
	clonePool []*Resource
	cloneUsed int
	sepW      []float64
	resAll    []*Resource
	hasClones bool
	passes    int
}

func (g *hierGroup) reset() {
	g.flows = g.flows[:0]
	g.res = g.res[:0]
	g.capped = g.capped[:0]
	g.unfrozen = g.unfrozen[:0]
	g.cands = g.cands[:0]
	g.capHead = 0
	g.touched = false
	g.hasClones = false
}

// hierDemand is one group's measured demand on one separator during
// bounded-mode coordination: the clone's observed load, the group's
// aggregate flow weight on the separator, and whether the clone saturated
// (demand clipped by the current allocation rather than by the group's
// own locals).
type hierDemand struct {
	d       float64
	w       float64
	slot    int32
	elastic bool
}

// hierState holds the hierarchical mode's configuration and reusable
// scratch. One per Network (parallel campaign workers own private
// Networks); the mutex serializes trySolve when a parallel flush hands
// multiple dirty components to it concurrently.
type hierState struct {
	n         *Network
	workers   int
	maxRelErr float64
	// minFlows is hierMinFlowsDefault, lowered by tests that need the
	// partition exercised on small components.
	minFlows int
	// forceOuter, when > 0, runs exactly that many bounded-mode
	// coordination rounds and reports the measured residual without the
	// exact fallback — the mutation-test knob proving hier_max_rel_err
	// fires when the loop is truncated.
	forceOuter int

	mu sync.Mutex

	// parent is the union-find over resource idx (1-based) joining
	// non-separator resources that share a flow. It only ever coarsens;
	// see the package comment for why that stays correct.
	parent []int32
	// slotOf/slotEpoch map a union-find root to its group slot for the
	// current partition; the epoch stamp makes resets O(1).
	slotOf    []int32
	slotEpoch []uint32
	epoch     uint32

	groups  []hierGroup
	ngroups int
	// sepRes is the component's separator resources in idx order;
	// sepFlows the separator-touching flows in canonical flow order,
	// compacted as they freeze.
	sepRes     []*Resource
	sepFlows   []*Flow
	sepCands   []int32
	sepTouched bool

	active       int
	touchedSlots []int32

	// Bounded-mode scratch.
	psv       []solver
	prevRates []float64
	demands   []hierDemand
	lastErr   float64
}

// SetSeparators declares separator resources: fabric aggregates (rack
// uplinks, the core switch) the hierarchical solver coordinates across
// rather than assigning to any rack-local group. The declaration is
// additive and must happen before any flow starts; it is inert unless
// SetHierarchical enables the mode.
func (n *Network) SetSeparators(rs ...*Resource) {
	if n.nActive > 0 || n.flushArmed {
		panic("simnet: SetSeparators while flows are in flight")
	}
	for _, r := range rs {
		r.sep = true
	}
}

// SetHierarchical configures hierarchical solving. workers == 0 disables
// the mode (the default). workers >= 1 enables it: components that
// partition into two or more rack-local groups along the declared
// separator set are solved hierarchically, large re-accumulation passes
// fanning over up to that many goroutines.
//
// maxRelErr == 0 selects exact mode: bit-identical to the flat solver
// (and so to solveReference) on every input, with automatic flat fallback
// on degenerate partitions. maxRelErr > 0 selects the opt-in
// bounded-error mode: groups solve independently against separator
// capacity allocations and an outer loop re-coordinates until the max
// relative rate change between rounds is <= maxRelErr; the measured
// residual is reported via Stats.HierMaxRelErr and never exceeds the
// bound (non-convergent components re-run exactly).
//
// Like SetBatching, the mode may only change while no flow is in flight,
// and cannot be combined with the forceGlobal test mode.
func (n *Network) SetHierarchical(workers int, maxRelErr float64) {
	if workers < 0 {
		panic(fmt.Sprintf("simnet: negative hierarchical worker count %d", workers))
	}
	if maxRelErr < 0 || math.IsNaN(maxRelErr) {
		panic(fmt.Sprintf("simnet: invalid hierarchical error bound %v", maxRelErr))
	}
	if n.nActive > 0 || n.flushArmed {
		panic("simnet: SetHierarchical while flows are in flight")
	}
	if workers == 0 {
		n.hier = nil
		return
	}
	if n.forceGlobal {
		panic("simnet: SetHierarchical is incompatible with the forceGlobal test mode")
	}
	h := &hierState{
		n:         n,
		workers:   workers,
		maxRelErr: maxRelErr,
		minFlows:  hierMinFlowsDefault,
	}
	h.growParent(len(n.resources))
	h.psv = make([]solver, workers)
	n.hier = h
}

// Hierarchical reports the configured hierarchical worker count (0 = off).
func (n *Network) Hierarchical() int {
	if n.hier == nil {
		return 0
	}
	return n.hier.workers
}

// SetHierarchicalMinFlows overrides the component size below which the
// hierarchical path falls back to the flat solver (default 192 — sized so
// the partition bookkeeping only engages where it can pay for itself).
// Campaigns that study the mode's correctness or error bound at modest
// scale lower it so small components still exercise the partitioned path.
// Requires SetHierarchical first, and like it may only change while no
// flow is in flight.
func (n *Network) SetHierarchicalMinFlows(min int) {
	if n.hier == nil {
		panic("simnet: SetHierarchicalMinFlows before SetHierarchical")
	}
	if min < 0 {
		panic(fmt.Sprintf("simnet: negative hierarchical minFlows %d", min))
	}
	if n.nActive > 0 || n.flushArmed {
		panic("simnet: SetHierarchicalMinFlows while flows are in flight")
	}
	n.hier.minFlows = min
}

// growParent extends the union-find (and the root→slot maps) to cover
// resource idx values up to maxIdx, each new entry its own root.
func (h *hierState) growParent(maxIdx int) {
	for len(h.parent) <= maxIdx {
		h.parent = append(h.parent, int32(len(h.parent)))
		h.slotOf = append(h.slotOf, 0)
		h.slotEpoch = append(h.slotEpoch, 0)
	}
}

// find returns the union-find root of idx, halving the path as it walks.
func (h *hierState) find(idx int32) int32 {
	for h.parent[idx] != idx {
		h.parent[idx] = h.parent[h.parent[idx]]
		idx = h.parent[idx]
	}
	return idx
}

// unionFlow joins the non-separator resources of a starting flow into one
// group. Called from retain, so every in-flight flow's local resources
// share a root by the time any solve partitions them. It also compiles the
// flow's hierarchical scratch (hroot, hsep, the locals/separators split of
// huses) so the per-solve partition and the per-pass re-accumulations
// never walk f.uses again.
func (h *hierState) unionFlow(f *Flow) {
	root := int32(-1)
	f.hsep = false
	f.huses = f.huses[:0]
	for i := range f.uses {
		r := f.uses[i].res
		if r.sep {
			f.hsep = true
			continue
		}
		f.huses = append(f.huses, f.uses[i])
		if r.idx >= len(h.parent) {
			h.growParent(r.idx)
		}
		x := h.find(int32(r.idx))
		if root < 0 {
			root = x
		} else if x != root {
			h.parent[x] = root
		}
	}
	f.hnlocal = int32(len(f.huses))
	if f.hsep {
		for i := range f.uses {
			if f.uses[i].res.sep {
				f.huses = append(f.huses, f.uses[i])
			}
		}
	}
	f.hroot = root
}

// group returns slot's group, growing the slice as needed; callers must
// not hold *hierGroup pointers across calls (append may relocate).
func (h *hierState) group(slot int) *hierGroup {
	for len(h.groups) <= slot {
		h.groups = append(h.groups, hierGroup{})
	}
	return &h.groups[slot]
}

// partition splits component c along the separator set: group slots for
// the connected non-separator subgraphs (each resource's slot cached in
// Resource.uf, each flow's in Flow.hgroup), the separator list (slot in
// Resource.uf), and the separator-touching flow list. Returns false when
// the decomposition is degenerate — no separators or locals in the
// component, or fewer than two rack-local groups — in which case no solve
// state has been touched and the caller should run the flat solver.
func (h *hierState) partition(c *component) bool {
	h.sepRes = h.sepRes[:0]
	nLocal := 0
	for _, r := range c.resources {
		if r.sep {
			r.uf = int32(len(h.sepRes))
			h.sepRes = append(h.sepRes, r)
		} else {
			nLocal++
		}
	}
	if len(h.sepRes) == 0 || nLocal == 0 {
		return false
	}
	h.growParent(len(h.n.resources))
	h.epoch++
	ng := 0
	for _, r := range c.resources {
		if r.sep {
			continue
		}
		root := h.find(int32(r.idx))
		if h.slotEpoch[root] != h.epoch {
			h.slotEpoch[root] = h.epoch
			h.slotOf[root] = int32(ng)
			h.group(ng).reset()
			ng++
		}
		slot := h.slotOf[root]
		r.uf = slot
		g := &h.groups[slot]
		g.res = append(g.res, r)
	}
	if ng < 2 {
		return false
	}
	// Flows: the group of a flow's local resources (they all share a
	// union-find root, so the cached hroot handle resolves it in one
	// find); flows touching only separators collect in a dedicated extra
	// group with no local resources, so the cap frontier and final fill
	// assignment cover them.
	sepOnly := -1
	h.sepFlows = h.sepFlows[:0]
	for _, f := range c.flows {
		var slot int32
		if f.hroot >= 0 {
			slot = h.slotOf[h.find(f.hroot)]
		} else {
			if sepOnly < 0 {
				sepOnly = ng
				h.group(ng).reset()
				ng++
			}
			slot = int32(sepOnly)
		}
		f.hgroup = slot
		if f.hsep {
			f.hgroup |= hsepBit
			h.sepFlows = append(h.sepFlows, f)
		}
		h.groups[slot].flows = append(h.groups[slot].flows, f)
	}
	for _, f := range c.capped {
		h.groups[f.hgroup&^hsepBit].capped = append(h.groups[f.hgroup&^hsepBit].capped, f)
	}
	h.ngroups = ng
	return true
}

// trySolve attempts a hierarchical solve of c, returning false (with no
// state touched) when the mode should fall back to the flat solver. On
// success it leaves the same post-solve state a flat solve would: rates
// and frozen flags on the flows, loads on the resources. sv receives the
// pass count for the solve observer; par allows internal parallelism
// (false inside the parallel flush, whose workers already own the cores).
func (h *hierState) trySolve(c *component, sv *solver, st *Stats, par bool) bool {
	if len(c.flows) < h.minFlows {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.partition(c) {
		if st != nil {
			st.HierFallbacks++
		}
		return false
	}
	var passes int
	if h.maxRelErr > 0 {
		passes = h.runBounded(c, st, par)
	} else {
		passes = h.runExact(c.flows, c.resources, st, par)
	}
	sv.lastLive = passes
	sv.lastGroups = h.ngroups
	if st != nil {
		st.HierSolves++
		st.HierGroups.Observe(uint64(h.ngroups))
		for slot := 0; slot < h.ngroups; slot++ {
			st.HierGroupFlows.Observe(uint64(len(h.groups[slot].flows)))
		}
	}
	return true
}

// runExact executes the pass-synchronized hierarchical waterfill — the
// same arithmetic as the flat solver, regrouped (see the package comment
// for the bit-identity argument). Returns the number of passes run.
func (h *hierState) runExact(flows []*Flow, resources []*Resource, st *Stats, par bool) int {
	for _, f := range flows {
		f.frozen = false
		f.rate = 0
		f.fpass = fpassNever
	}
	for _, r := range resources {
		r.load = 0
	}
	for slot := 0; slot < h.ngroups; slot++ {
		g := &h.groups[slot]
		g.unfrozen = g.unfrozen[:0]
		for i := range g.flows {
			g.unfrozen = append(g.unfrozen, int32(i))
		}
		g.cands = g.cands[:0]
		for i := range g.res {
			g.cands = append(g.cands, int32(i))
		}
		g.capHead = 0
		g.touched = true
	}
	h.sepCands = h.sepCands[:0]
	for i := range h.sepRes {
		h.sepCands = append(h.sepCands, int32(i))
	}
	h.sepTouched = true
	h.active = len(flows)
	fill := 0.0
	maxIter := len(flows) + len(resources) + 1
	iter := 0
	for ; h.active > 0 && iter <= maxIter; iter++ {
		// Re-accumulate the groups the previous pass's freezes touched;
		// everything else keeps sums whose operand sequences are unchanged.
		h.touchedSlots = h.touchedSlots[:0]
		work := 0
		for slot := 0; slot < h.ngroups; slot++ {
			g := &h.groups[slot]
			if g.touched {
				h.touchedSlots = append(h.touchedSlots, int32(slot))
				work += len(g.unfrozen)
			}
		}
		if par && h.workers > 1 && len(h.touchedSlots) > 1 && work >= hierParMinWork {
			h.recomputeParallel()
		} else {
			for _, slot := range h.touchedSlots {
				h.groups[slot].recompute()
			}
		}
		if h.sepTouched {
			h.recomputeSep()
		}
		// Bottleneck argmin: per-group first-wins minima combined by
		// (d, idx) lexicographic order — exactly the reference's global
		// first-wins scan over idx-ordered resources.
		delta := math.Inf(1)
		var bneck *Resource
		for slot := 0; slot < h.ngroups; slot++ {
			g := &h.groups[slot]
			for _, ri := range g.cands {
				r := g.res[ri]
				if d := (r.capacity - r.load) / r.sumW; d < delta || (d == delta && bneck != nil && r.idx < bneck.idx) {
					delta = d
					bneck = r
				}
			}
		}
		for _, si := range h.sepCands {
			r := h.sepRes[si]
			if d := (r.capacity - r.load) / r.sumW; d < delta || (d == delta && bneck != nil && r.idx < bneck.idx) {
				delta = d
				bneck = r
			}
		}
		// Cap frontier: the global minimum unfrozen cap is the min of the
		// per-group cap-sorted frontiers.
		capDelta := math.Inf(1)
		var minCap float64
		haveCap := false
		for slot := 0; slot < h.ngroups; slot++ {
			g := &h.groups[slot]
			for g.capHead < len(g.capped) && g.capped[g.capHead].frozen {
				g.capHead++
			}
			if g.capHead < len(g.capped) {
				if c := g.capped[g.capHead].Cap; !haveCap || c < minCap {
					minCap = c
					haveCap = true
				}
			}
		}
		if haveCap {
			capDelta = minCap - fill
		}
		if math.IsInf(delta, 1) && math.IsInf(capDelta, 1) {
			break
		}
		step := math.Min(delta, capDelta)
		if step < 0 {
			step = 0
		}
		fill += step
		for slot := 0; slot < h.ngroups; slot++ {
			g := &h.groups[slot]
			for _, ri := range g.cands {
				r := g.res[ri]
				r.load += r.sumW * step
			}
		}
		for _, si := range h.sepCands {
			r := h.sepRes[si]
			r.load += r.sumW * step
		}
		before := h.active
		capFired := capDelta <= delta
		resFired := delta <= capDelta && bneck != nil
		if capFired {
			for slot := 0; slot < h.ngroups; slot++ {
				g := &h.groups[slot]
				for j := g.capHead; j < len(g.capped); j++ {
					f := g.capped[j]
					if f.Cap > fill+1e-12 {
						break
					}
					if !f.frozen {
						h.freezeExact(f, f.Cap)
					}
				}
			}
		}
		if resFired {
			for i := range bneck.users {
				if f := bneck.users[i].f; !f.frozen {
					h.freezeExact(f, fill)
				}
			}
		}
		if st != nil {
			st.Passes++
			st.FreezesPerPass.Observe(uint64(before - h.active))
		}
		if h.active == before && step == 0 {
			break
		}
	}
	for slot := 0; slot < h.ngroups; slot++ {
		g := &h.groups[slot]
		for _, fi := range g.unfrozen {
			if f := g.flows[fi]; !f.frozen {
				f.rate = fill
			}
		}
	}
	return iter
}

// freezeExact pins f at rate and marks its group (and, for a
// separator-touching flow, the separator sweep) for re-accumulation.
func (h *hierState) freezeExact(f *Flow, rate float64) {
	f.frozen = true
	f.rate = rate
	h.active--
	h.groups[f.hgroup&^hsepBit].touched = true
	if f.hgroup&hsepBit != 0 {
		h.sepTouched = true
	}
}

// recompute rebuilds the group's per-resource demand sums from its
// unfrozen flows (compacting both lists), in canonical flow order — the
// same addition sequence the flat solver's global sweep performs for
// these resources.
func (g *hierGroup) recompute() {
	for _, ri := range g.cands {
		g.res[ri].sumW = 0
	}
	k := 0
	for _, fi := range g.unfrozen {
		f := g.flows[fi]
		if f.frozen {
			continue
		}
		g.unfrozen[k] = fi
		k++
		// huses[:hnlocal] is the locals segment of the flow's compiled
		// usage vector, in original uses order — the same additions the
		// flat solver's sweep performs for these resources.
		for i := range f.huses[:f.hnlocal] {
			u := &f.huses[i]
			u.res.sumW += u.w
		}
	}
	g.unfrozen = g.unfrozen[:k]
	k = 0
	for _, ri := range g.cands {
		if g.res[ri].sumW == 0 {
			continue
		}
		g.cands[k] = ri
		k++
	}
	g.cands = g.cands[:k]
	g.touched = false
}

// recomputeParallel fans the touched groups' recomputes over the worker
// pool. Groups write only their own resources' sums and their own lists,
// so the tasks are disjoint; the result is bitwise identical to the
// serial loop.
func (h *hierState) recomputeParallel() {
	workers := h.workers
	if workers > len(h.touchedSlots) {
		workers = len(h.touchedSlots)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(h.touchedSlots) {
					return
				}
				h.groups[h.touchedSlots[i]].recompute()
			}
		}()
	}
	wg.Wait()
}

// recomputeSep rebuilds the separator demand sums from the unfrozen
// separator-touching flows in canonical flow order, compacting the flow
// list and the candidate list.
func (h *hierState) recomputeSep() {
	for _, si := range h.sepCands {
		h.sepRes[si].sumW = 0
	}
	k := 0
	for _, f := range h.sepFlows {
		if f.frozen {
			continue
		}
		h.sepFlows[k] = f
		k++
		// huses[hnlocal:] is the separator segment; its entries are copies
		// that always point at the real separators regardless of any
		// bounded-mode clone swap still recorded in f.uses.
		for i := f.hnlocal; i < int32(len(f.huses)); i++ {
			u := &f.huses[i]
			u.res.sumW += u.w
		}
	}
	h.sepFlows = h.sepFlows[:k]
	k = 0
	for _, si := range h.sepCands {
		if h.sepRes[si].sumW == 0 {
			continue
		}
		h.sepCands[k] = si
		k++
	}
	h.sepCands = h.sepCands[:k]
	h.sepTouched = false
}

// runBounded executes the decomposed outer loop: independent group-local
// solves against separator capacity clones, coordinated by waterfilling
// each separator over the groups' measured demands, until the residual
// (max relative rate change between consecutive rounds) is within the
// bound. Returns the total waterfill passes across all local solves.
func (h *hierState) runBounded(c *component, st *Stats, par bool) int {
	h.attachClones()
	// Round 0 is optimistic: every group sees the full separator
	// capacity, so the measured clone loads are unconstrained demands.
	for slot := 0; slot < h.ngroups; slot++ {
		g := &h.groups[slot]
		for si, cl := range g.clones {
			if cl != nil {
				cl.capacity = h.sepRes[si].capacity
			}
		}
	}
	passes := h.solveLocals(par, true)
	limit := h.forceOuter
	if limit <= 0 {
		limit = hierOuterCap
	}
	outer := 0
	fellBack := false
	var err float64
	for {
		h.savePrev(c)
		h.coordinate()
		passes += h.solveLocals(par, false)
		outer++
		err = h.residual(c)
		if err <= h.maxRelErr {
			break
		}
		if outer >= limit {
			fellBack = h.forceOuter <= 0
			break
		}
	}
	h.restoreUses()
	if fellBack {
		// Convergence stalled within the round cap: re-solve exactly so
		// the caller still gets rates within (indeed, at) the bound.
		if st != nil {
			st.HierExactFallbacks++
		}
		passes += h.runExact(c.flows, c.resources, st, par)
		err = 0
	} else {
		// Fold the clone loads back onto the real separators so resource
		// observers and any later flat solve see consistent loads.
		for si, s := range h.sepRes {
			load := 0.0
			for slot := 0; slot < h.ngroups; slot++ {
				if cl := h.groups[slot].clones[si]; cl != nil {
					load += cl.load
				}
			}
			s.load = load
		}
	}
	h.lastErr = err
	if st != nil {
		st.HierOuterRounds += uint64(outer)
		if err > st.HierMaxRelErr {
			st.HierMaxRelErr = err
		}
	}
	return passes
}

// attachClones gives each group a private capacity clone of every
// separator its flows touch, swaps the flows' separator usage entries to
// point at the clones (each flow belongs to exactly one group, so the
// swap is race-free under parallel local solves), and builds each group's
// locals+clones resource list in idx order.
func (h *hierState) attachClones() {
	for slot := 0; slot < h.ngroups; slot++ {
		g := &h.groups[slot]
		if cap(g.clones) < len(h.sepRes) {
			g.clones = make([]*Resource, len(h.sepRes))
			g.sepW = make([]float64, len(h.sepRes))
		}
		g.clones = g.clones[:len(h.sepRes)]
		g.sepW = g.sepW[:len(h.sepRes)]
		clear(g.clones)
		clear(g.sepW)
		g.cloneUsed = 0
		g.hasClones = false
	}
	for _, f := range h.sepFlows {
		g := &h.groups[f.hgroup&^hsepBit]
		for i := range f.uses {
			r := f.uses[i].res
			if !r.sep {
				continue
			}
			si := r.uf
			g.sepW[si] += f.uses[i].w
			cl := g.clones[si]
			if cl == nil {
				if g.cloneUsed < len(g.clonePool) {
					cl = g.clonePool[g.cloneUsed]
				} else {
					cl = &Resource{}
					g.clonePool = append(g.clonePool, cl)
				}
				g.cloneUsed++
				cl.Name = r.Name
				cl.idx = r.idx
				cl.uf = si
				cl.sep = true
				g.clones[si] = cl
				g.hasClones = true
			}
			f.uses[i].res = cl
		}
	}
	for slot := 0; slot < h.ngroups; slot++ {
		g := &h.groups[slot]
		g.resAll = g.resAll[:0]
		ci := 0
		for _, r := range g.res {
			for ci < len(g.clones) {
				cl := g.clones[ci]
				if cl == nil {
					ci++
					continue
				}
				if cl.idx >= r.idx {
					break
				}
				g.resAll = append(g.resAll, cl)
				ci++
			}
			g.resAll = append(g.resAll, r)
		}
		for ; ci < len(g.clones); ci++ {
			if cl := g.clones[ci]; cl != nil {
				g.resAll = append(g.resAll, cl)
			}
		}
	}
}

// restoreUses swaps the separator usage entries back from the clones to
// the real separator resources.
func (h *hierState) restoreUses() {
	for _, f := range h.sepFlows {
		for i := range f.uses {
			if r := f.uses[i].res; r.sep {
				f.uses[i].res = h.sepRes[r.uf]
			}
		}
	}
}

// solveLocals runs the group-local waterfills — all groups on the first
// round, only separator-coupled groups afterwards (a purely local group's
// inputs never change across rounds, so its round-0 rates stand). The
// solves are independent: disjoint flows, disjoint resources (locals plus
// private clones), per-worker solver scratch.
func (h *hierState) solveLocals(par bool, first bool) int {
	workers := 1
	if par {
		workers = h.workers
		if workers > h.ngroups {
			workers = h.ngroups
		}
	}
	run := func(sv *solver, slot int) {
		g := &h.groups[slot]
		if !first && !g.hasClones {
			g.passes = 0
			return
		}
		sv.indexed = false
		sv.stats = nil
		sv.solve(g.flows, g.resAll, g.capped, nil)
		g.passes = sv.lastLive
	}
	if workers <= 1 {
		sv := &h.psv[0]
		for slot := 0; slot < h.ngroups; slot++ {
			run(sv, slot)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				sv := &h.psv[w]
				for {
					slot := int(next.Add(1)) - 1
					if slot >= h.ngroups {
						return
					}
					run(sv, slot)
				}
			}(w)
		}
		wg.Wait()
	}
	passes := 0
	for slot := 0; slot < h.ngroups; slot++ {
		passes += h.groups[slot].passes
	}
	return passes
}

// savePrev snapshots the component's rates in canonical flow order for
// the next residual measurement.
func (h *hierState) savePrev(c *component) {
	if cap(h.prevRates) < len(c.flows) {
		h.prevRates = make([]float64, len(c.flows))
	}
	h.prevRates = h.prevRates[:len(c.flows)]
	for i, f := range c.flows {
		h.prevRates[i] = f.rate
	}
}

// residual returns the max relative rate change versus the last savePrev:
// |new - old| / max(new, old), 0 when both are 0.
func (h *hierState) residual(c *component) float64 {
	maxErr := 0.0
	for i, f := range c.flows {
		old := h.prevRates[i]
		den := f.rate
		if old > den {
			den = old
		}
		if den <= 0 {
			continue
		}
		if e := math.Abs(f.rate-old) / den; e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

// coordinate waterfills each separator's capacity over the groups'
// measured aggregate demands, weighted by each group's aggregate flow
// weight on the separator, and writes the allocations into the clone
// capacities. A group whose clone saturated is elastic — its demand was
// clipped by its current allocation, so it shares the waterfill level in
// proportion to its weight (which approximates flow-level max-min: a rack
// with nine coupled flows gets nine shares, not one); an unsaturated
// group's demand is genuine (its own locals bound it) and is granted
// outright. Leftover capacity spreads weight-proportionally over all
// takers so demand suppressed by an earlier round's tight allocation can
// re-emerge.
func (h *hierState) coordinate() {
	for si, s := range h.sepRes {
		h.demands = h.demands[:0]
		wTot := 0.0
		for slot := 0; slot < h.ngroups; slot++ {
			g := &h.groups[slot]
			cl := g.clones[si]
			if cl == nil {
				continue
			}
			h.demands = append(h.demands, hierDemand{
				d:       cl.load,
				w:       g.sepW[si],
				slot:    int32(slot),
				elastic: cl.load >= cl.capacity*(1-1e-9),
			})
			wTot += g.sepW[si]
		}
		if len(h.demands) == 0 {
			continue
		}
		// Inelastic demands ascending by per-weight demand d/w (compared
		// cross-multiplied), elastic (effectively infinite demand) after
		// them; slot breaks ties deterministically.
		slices.SortFunc(h.demands, func(a, b hierDemand) int {
			if a.elastic != b.elastic {
				if a.elastic {
					return 1
				}
				return -1
			}
			switch {
			case a.d*b.w < b.d*a.w:
				return -1
			case a.d*b.w > b.d*a.w:
				return 1
			case a.slot < b.slot:
				return -1
			case a.slot > b.slot:
				return 1
			}
			return 0
		})
		// Grant ascending inelastic demands outright while each fits under
		// the running weighted fair level; everyone from the first misfit
		// (or the first elastic group) on shares the remaining capacity in
		// proportion to weight.
		rem := s.capacity
		wRem := wTot
		cut := len(h.demands)
		for i := range h.demands {
			dm := &h.demands[i]
			if dm.elastic || dm.d*wRem > rem*dm.w {
				cut = i
				break
			}
			rem -= dm.d
			wRem -= dm.w
		}
		var level, bonus float64
		if cut < len(h.demands) {
			level = rem / wRem
		} else if rem > 0 {
			// Everything fit with room to spare and nobody is elastic:
			// spread the slack so suppressed demand can grow next round.
			bonus = rem / wTot
		}
		for i := range h.demands {
			dm := &h.demands[i]
			cl := h.groups[dm.slot].clones[si]
			if i < cut {
				cl.capacity = dm.d + bonus*dm.w
			} else {
				cl.capacity = level * dm.w
			}
		}
	}
}
