// Package faults injects deterministic mid-run failures into a simulated
// BeeGFS deployment: storage targets (OSTs), storage hosts (OSSes) and
// server network links can fail and recover at scripted virtual times.
//
// A failure does three things, in order: (1) it marks the component
// offline in the management service so new files avoid it and new I/O
// treats it as unavailable; (2) it pins the component's simnet resource
// capacities to zero, so nothing can sneak bytes through it; (3) it aborts
// every in-flight flow touching the failed resources, handing control to
// the client retry path (beegfs.Config.RetryTimeout et al.). Recovery
// reverses the state and lets the management service's subscription
// machinery kick off pending mirror resyncs.
//
// Determinism contract: the same seed plus the same schedule replays
// bit-identically — events fire in slice order at their scheduled times,
// and flow aborts happen in name-sorted order (simnet.FlowsUsing).
package faults

import (
	"fmt"

	"repro/internal/beegfs"
	"repro/internal/simnet"
)

// Kind selects the failed component class.
type Kind int

const (
	// TargetFault fails a single OST, addressed by its paper-style target
	// ID (e.g. 201).
	TargetFault Kind = iota
	// HostFault fails a whole storage server (all its targets, its I/O
	// controller and its network link), addressed by 1-based host index.
	HostFault
	// NICFault fails only a storage server's network link (the targets
	// stay healthy but unreachable), addressed by 1-based host index.
	NICFault
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case TargetFault:
		return "target"
	case HostFault:
		return "host"
	case NICFault:
		return "nic"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Action is what happens to the component.
type Action int

const (
	// Fail takes the component down.
	Fail Action = iota
	// Recover brings it back.
	Recover
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case Fail:
		return "fail"
	case Recover:
		return "recover"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Event is one scripted state change.
type Event struct {
	// At is the virtual time (seconds) relative to when the schedule is
	// armed.
	At float64
	// Kind selects the component class.
	Kind Kind
	// ID addresses the component: a target ID for TargetFault, a 1-based
	// host index for HostFault and NICFault.
	ID int
	// Action fails or recovers the component.
	Action Action
}

// Schedule is a deterministic script of fault events. Events are applied
// in slice order; same-time events therefore have a well-defined order.
type Schedule []Event

// Validate checks the schedule against a deployment: non-negative times,
// known kinds and actions, existing targets and host indexes. NIC events
// additionally require the deployment to model server NICs
// (Config.ServerNICCapacity > 0), since failing a link that is not a
// resource would be a silent no-op.
func (s Schedule) Validate(fs *beegfs.FileSystem) error {
	for i, e := range s {
		if e.At < 0 {
			return fmt.Errorf("faults: event %d has negative time %v", i, e.At)
		}
		if e.Action != Fail && e.Action != Recover {
			return fmt.Errorf("faults: event %d has unknown action %d", i, int(e.Action))
		}
		switch e.Kind {
		case TargetFault:
			if fs.Storage().TargetByID(e.ID) == nil {
				return fmt.Errorf("faults: event %d addresses unknown target %d", i, e.ID)
			}
		case HostFault, NICFault:
			if e.ID < 1 || e.ID > len(fs.Storage().Hosts()) {
				return fmt.Errorf("faults: event %d addresses host %d of %d", i, e.ID, len(fs.Storage().Hosts()))
			}
			if e.Kind == NICFault && fs.Config().ServerNICCapacity <= 0 {
				return fmt.Errorf("faults: event %d is a NIC fault but the deployment has no server NIC resources", i)
			}
		default:
			return fmt.Errorf("faults: event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// Stats counts injector activity for the observability layer. Like the
// other layers' Stats it is plain, nil-gated and side-effect-free: fault
// events fire at scripted times regardless, counting them cannot change
// what they do.
type Stats struct {
	// Injections and Recoveries count applied Fail / Recover events.
	Injections uint64
	Recoveries uint64
	// AbortedFlows counts in-flight flows torn down by fault events.
	AbortedFlows uint64
}

// Injector applies fault events to a deployment.
type Injector struct {
	fs *beegfs.FileSystem

	// Stats, when non-nil, receives injector activity counts.
	Stats *Stats

	// doomed is a reusable buffer for the flows collected in
	// abortFlowsOn, so repeated fault events allocate nothing.
	doomed []*simnet.Flow
}

// NewInjector binds an injector to a deployment.
func NewInjector(fs *beegfs.FileSystem) *Injector {
	return &Injector{fs: fs}
}

// Arm validates the schedule and registers every event on the simulation
// clock, relative to the current virtual time. Arm may be called once per
// campaign repetition: each call schedules a fresh copy of the script.
func (inj *Injector) Arm(s Schedule) error {
	if err := s.Validate(inj.fs); err != nil {
		return err
	}
	sim := inj.fs.Sim()
	for _, e := range s {
		e := e
		sim.After(e.At, func() { inj.Apply(e) })
	}
	return nil
}

// Apply executes one event immediately. Events from Arm land here; tests
// may also call it directly. Invalid events are a no-op (Arm validates).
func (inj *Injector) Apply(e Event) {
	if inj.Stats != nil {
		if e.Action == Fail {
			inj.Stats.Injections++
		} else {
			inj.Stats.Recoveries++
		}
	}
	switch e.Kind {
	case TargetFault:
		inj.applyTarget(e)
	case HostFault:
		inj.applyHost(e)
	case NICFault:
		inj.applyNIC(e)
	}
}

func (inj *Injector) applyTarget(e Event) {
	t := inj.fs.Storage().TargetByID(e.ID)
	if t == nil {
		return
	}
	if e.Action == Fail {
		_ = inj.fs.Mgmtd().SetOnline(e.ID, false)
		t.SetFailed(true)
		inj.abortFlowsOn(t.Resource())
		return
	}
	// Restore capacity before announcing the target online, so resyncs
	// triggered by the subscription see a usable device.
	t.SetFailed(false)
	_ = inj.fs.Mgmtd().SetOnline(e.ID, true)
}

func (inj *Injector) applyHost(e Event) {
	h := inj.fs.Storage().Hosts()[e.ID-1]
	if e.Action == Fail {
		for _, t := range h.Targets() {
			_ = inj.fs.Mgmtd().SetOnline(t.ID, false)
			t.SetFailed(true)
		}
		h.SetFailed(true)
		inj.fs.SetNICDown(h, true)
		resources := []*simnet.Resource{h.Controller()}
		if nic := inj.fs.ServerNIC(h); nic != nil {
			resources = append(resources, nic)
		}
		for _, t := range h.Targets() {
			resources = append(resources, t.Resource())
		}
		inj.abortFlowsOn(resources...)
		return
	}
	h.SetFailed(false)
	inj.fs.SetNICDown(h, false)
	for _, t := range h.Targets() {
		t.SetFailed(false)
		_ = inj.fs.Mgmtd().SetOnline(t.ID, true)
	}
}

func (inj *Injector) applyNIC(e Event) {
	h := inj.fs.Storage().Hosts()[e.ID-1]
	if e.Action == Fail {
		inj.fs.SetNICDown(h, true)
		if nic := inj.fs.ServerNIC(h); nic != nil {
			inj.abortFlowsOn(nic)
		}
		return
	}
	inj.fs.SetNICDown(h, false)
}

// abortFlowsOn aborts every in-flight flow touching any of the resources,
// each at most once, in name-sorted order (deterministic replay). Resync
// flows riding a failed resource are aborted like any other; their dirty
// accounting survives and the next recovery restarts them. The collection
// reuses the injector's buffer and scans only the components the failed
// resources belong to — flows in unrelated components are never visited —
// with no per-event allocation. Each Abort then re-solves just the
// aborted flow's own component.
func (inj *Injector) abortFlowsOn(resources ...*simnet.Resource) {
	net := inj.fs.Network()
	inj.doomed = net.AppendFlowsUsingAny(inj.doomed[:0], resources...)
	if inj.Stats != nil {
		inj.Stats.AbortedFlows += uint64(len(inj.doomed))
	}
	for _, f := range inj.doomed {
		net.Abort(f)
	}
}
