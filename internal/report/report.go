// Package report renders experiment results as aligned text tables, CSV
// files and ASCII plots — the repo's stand-ins for the paper's figures.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with %.1f.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = trimFloat(x)
		case float32:
			row[i] = trimFloat(float64(x))
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(x float64) string {
	if math.IsNaN(x) {
		return "NaN"
	}
	if x == math.Trunc(x) && math.Abs(x) < 1e12 {
		return fmt.Sprintf("%.0f", x)
	}
	if math.Abs(x) >= 100 {
		return fmt.Sprintf("%.1f", x)
	}
	return fmt.Sprintf("%.3f", x)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return fmt.Sprintf("report: %v", err)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes cells containing
// commas, quotes or newlines).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Bars renders a horizontal ASCII bar chart: one labelled bar per value,
// scaled to width characters at the maximum.
func Bars(labels []string, values []float64, width int) string {
	if len(labels) != len(values) || len(labels) == 0 || width <= 0 {
		return ""
	}
	maxV := values[0]
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	var b strings.Builder
	for i, v := range values {
		n := int(math.Round(v / maxV * float64(width)))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%-*s |%s %s\n", maxL, labels[i], strings.Repeat("#", n), trimFloat(v))
	}
	return b.String()
}

// BoxRow renders one boxplot line ("|--[==|==]--|") scaled into
// [lo, hi] over width characters, for the Figure 8/10 reproductions.
func BoxRow(min, q1, median, q3, max, lo, hi float64, width int) string {
	if width < 10 || hi <= lo {
		return ""
	}
	pos := func(v float64) int {
		p := int((v - lo) / (hi - lo) * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	row := []byte(strings.Repeat(" ", width))
	for i := pos(min); i <= pos(max); i++ {
		row[i] = '-'
	}
	for i := pos(q1); i <= pos(q3); i++ {
		row[i] = '='
	}
	row[pos(min)] = '|'
	row[pos(max)] = '|'
	row[pos(q1)] = '['
	row[pos(q3)] = ']'
	row[pos(median)] = 'O'
	return string(row)
}

// Scatter renders an x/y scatter plot as ASCII (the paper's Figure 6 dot
// clouds). Points are binned into a w x h character grid; denser cells get
// darker marks. Returns "" for empty or degenerate input.
func Scatter(xs, ys []float64, w, h int) string {
	if len(xs) == 0 || len(xs) != len(ys) || w < 2 || h < 2 {
		return ""
	}
	minX, maxX := xs[0], xs[0]
	minY, maxY := ys[0], ys[0]
	for i := range xs {
		if xs[i] < minX {
			minX = xs[i]
		}
		if xs[i] > maxX {
			maxX = xs[i]
		}
		if ys[i] < minY {
			minY = ys[i]
		}
		if ys[i] > maxY {
			maxY = ys[i]
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([]int, w*h)
	for i := range xs {
		cx := int((xs[i] - minX) / (maxX - minX) * float64(w-1))
		cy := int((ys[i] - minY) / (maxY - minY) * float64(h-1))
		grid[(h-1-cy)*w+cx]++
	}
	marks := []byte{' ', '.', 'o', 'O', '@'}
	var b strings.Builder
	for row := 0; row < h; row++ {
		label := ""
		switch row {
		case 0:
			label = trimFloat(maxY)
		case h - 1:
			label = trimFloat(minY)
		}
		fmt.Fprintf(&b, "%8s |", label)
		for col := 0; col < w; col++ {
			n := grid[row*w+col]
			idx := n
			if idx >= len(marks) {
				idx = len(marks) - 1
			}
			b.WriteByte(marks[idx])
		}
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "%8s  %s%s\n", "", trimFloat(minX), strings.Repeat(" ", max(1, w-len(trimFloat(minX))-len(trimFloat(maxX))))+trimFloat(maxX))
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Markdown renders the table as a GitHub-flavoured Markdown table, for
// pasting campaign results into EXPERIMENTS.md-style documents.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
