package simnet

// Same-instant event batching and parallel per-component solving.
//
// Unbatched, every event (flow start, completion, abort, capacity change)
// settles and re-solves the component it touches immediately. Events
// clustered at one virtual instant therefore re-solve the same component
// once per event: a shared client ramp ramping N clients at t=0 costs
// O(N) full-component waterfills for rates only the last solve keeps.
//
// Batched (SetBatching), an event still performs all its O(1) membership
// work eagerly — settle (a same-instant re-settle is a dt=0 no-op),
// insert/remove, union/rebuild, capacity write — but instead of solving
// it marks the touched component dirty and arms a single flush event at
// the current instant. The flush is the instant's solve barrier: arming
// re-queues an already-fired event, which the kernel assigns a fresh
// sequence number, so the flush always fires after every event already
// queued at this instant. Events that cascade from the flush itself
// (completions it re-schedules to the same instant, OnComplete handlers
// starting new flows) re-arm the flush, forming another wave; the instant
// drains with each dirty component solved once per wave instead of once
// per event.
//
// Equivalence to the unbatched path, at instant granularity: membership
// operations are identical and eager; intra-instant settles are dt=0
// no-ops in both modes; and the flush's per-component solve is the same
// cold (or warm-started) waterfill the last unbatched event would have
// run on the same final membership — bit-identical rates, remainders and
// completion instants at every instant boundary. What batching does NOT
// preserve is mid-instant observable order: rate observers fire once per
// flush instead of once per event, and equal-instant completion events
// may fire in a different sequence within the instant. The differential
// fuzzer (FuzzBatchedVsSequentialEvents) therefore compares full flow
// state at instant boundaries, at 0 ULP.
//
// When SetBatching is given more than one worker, a flush with several
// dirty components fans the solves over that many goroutines. Components
// are disjoint by construction — a resource and a flow belong to exactly
// one component — so the solves touch disjoint memory, and the finish
// phase (completion scheduling, observers, stats) replays the outcomes
// serially in component-id order. Output is byte-identical to the serial
// flush at any worker count.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simkernel"
)

// SetBatching configures same-instant event batching. workers == 0
// disables batching (the default: every event re-solves immediately,
// preserving the historical per-event cadence byte for byte). workers == 1
// batches with serial flush solves; workers > 1 additionally solves
// independent dirty components on that many goroutines. Output at instant
// boundaries is bit-identical across all settings.
//
// The mode may only change while no flow is in flight and no flush is
// pending; it cannot be combined with the forceGlobal test mode (a single
// global component has nothing to batch per-component).
func (n *Network) SetBatching(workers int) {
	if workers < 0 {
		panic(fmt.Sprintf("simnet: negative batch worker count %d", workers))
	}
	if n.nActive > 0 || n.flushArmed {
		panic("simnet: SetBatching while flows are in flight")
	}
	if n.forceGlobal && workers > 0 {
		panic("simnet: SetBatching is incompatible with the forceGlobal test mode")
	}
	n.batchWorkers = workers
	if workers > 1 && len(n.psv) < workers {
		n.psv = make([]solver, workers)
		n.workerStats = make([]Stats, workers)
	}
}

// Batching reports the configured batch worker count (0 = batching off).
func (n *Network) Batching() int { return n.batchWorkers }

// markDirty queues c for the instant's flush. The first mark of an
// instant records the triggering event kind (for stats classification)
// and the removed flow, which the flush uses as its warm-start hint; any
// further event on the same component clears the hint — the trajectory
// replay is only valid for exactly one departure.
func (n *Network) markDirty(c *component, removed *Flow, trig SolveTrigger) {
	if !c.dirty {
		c.dirty = true
		c.pendEvents = 0
		c.pendRemoved = nil
		c.pendTrig = trig
		n.dirtyComps = append(n.dirtyComps, c)
	}
	c.pendEvents++
	if c.pendEvents == 1 {
		c.pendRemoved = removed
	} else {
		c.pendRemoved = nil
	}
	n.armFlush()
}

// armFlush schedules (or re-queues) the flush event at the current
// instant. Re-queueing a fired event assigns a fresh kernel sequence
// number, so the flush fires after every event currently queued at this
// instant — the wave barrier batching is built on.
func (n *Network) armFlush() {
	if n.flushArmed {
		return
	}
	n.flushArmed = true
	now := n.sim.Now()
	if n.flushEvent == nil {
		if n.flushFn == nil {
			n.flushFn = n.flush
		}
		n.flushEvent = n.sim.At(now, n.flushFn)
		return
	}
	n.sim.Reschedule(n.flushEvent, now)
}

// flush solves every dirty component once and re-derives its completion
// events. Components dropped (emptied or merged away) since their mark
// had their dirty flag cleared by reset, so the flag doubles as the
// dedup: each component is collected at most once no matter how many
// stale list entries point at it.
func (n *Network) flush() {
	n.flushArmed = false
	now := n.sim.Now()
	comps := n.flushComps[:0]
	for _, c := range n.dirtyComps {
		if c.dirty {
			c.dirty = false
			comps = append(comps, c)
		}
	}
	clear(n.dirtyComps)
	n.dirtyComps = n.dirtyComps[:0]
	n.flushComps = comps
	if len(comps) == 0 {
		return
	}
	// Component-id order: the deterministic merge order for everything the
	// finish phase emits (completion events, observer callbacks, stats).
	insertionSortByID(comps)
	if n.stats != nil {
		n.stats.SolveBatches++
		n.stats.ComponentsDirty += uint64(len(comps))
		n.stats.FlushWaveWidth.Observe(uint64(len(comps)))
		if len(comps) > 1 {
			n.stats.ParallelSolves += uint64(len(comps))
		}
	}
	if n.batchObserver != nil {
		n.batchObserver(now, BatchInfo{Components: len(comps), Workers: n.batchWorkers})
	}
	if n.batchWorkers > 1 && len(comps) > 1 {
		n.flushParallel(comps, now)
	} else {
		for _, c := range comps {
			removed := c.pendRemoved
			c.pendEvents, c.pendRemoved = 0, nil
			n.rebalanceComp(c, now, removed, c.pendTrig)
		}
	}
	for i := range comps {
		comps[i] = nil
	}
}

// insertionSortByID sorts components by creation id. Flush batches are
// small (one entry per dirty component); insertion sort keeps the flush
// free of sort.Slice closure allocations.
func insertionSortByID(comps []*component) {
	for i := 1; i < len(comps); i++ {
		c := comps[i]
		j := i
		for ; j > 0 && comps[j-1].id > c.id; j-- {
			comps[j] = comps[j-1]
		}
		comps[j] = c
	}
}

// flushParallel runs the batch's component solves on up to
// n.batchWorkers goroutines, then replays the finish phase serially in
// component-id order. The solve phase touches only component-local state
// (flow rates, resource loads, the component's trajectory) plus a
// per-worker solver and stats sink, so the only cross-goroutine
// coordination is the work-stealing counter. Per-component outcomes
// (warm-start hit, pass counts) are captured by slot so the serial finish
// emits exactly what the serial flush would have.
func (n *Network) flushParallel(comps []*component, now simkernel.Time) {
	if cap(n.warmDone) < len(comps) {
		n.warmDone = make([]bool, len(comps))
		n.hierOf = make([]bool, len(comps))
		n.livePasses = make([]int, len(comps))
		n.replayedOf = make([]int, len(comps))
		n.groupsOf = make([]int, len(comps))
	}
	warmDone := n.warmDone[:len(comps)]
	hierOf := n.hierOf[:len(comps)]
	livePasses := n.livePasses[:len(comps)]
	replayed := n.replayedOf[:len(comps)]
	groupsOf := n.groupsOf[:len(comps)]
	// Old rates for the rate observer must be captured before any solve
	// runs; one flat buffer with per-component offsets replaces the serial
	// path's per-rebalance capture.
	var rateOff []int
	if n.observer != nil {
		rateOff = append(n.rateOff[:0], 0)
		rates := n.batchRates[:0]
		for _, c := range comps {
			for _, f := range c.flows {
				rates = append(rates, f.rate)
			}
			rateOff = append(rateOff, len(rates))
		}
		n.rateOff, n.batchRates = rateOff, rates
	}
	workers := n.batchWorkers
	if workers > len(comps) {
		workers = len(comps)
	}
	recordStats := n.stats != nil
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			sv := &n.psv[w]
			sv.indexed = true
			if recordStats {
				n.workerStats[w] = Stats{}
				sv.stats = &n.workerStats[w]
			} else {
				sv.stats = nil
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(comps) {
					return
				}
				c := comps[i]
				removed := c.pendRemoved
				var solveStart time.Time
				if recordStats {
					solveStart = time.Now()
				}
				sv.lastGroups = 0
				done := false
				if removed != nil && c.traj.valid {
					done = sv.warmSolve(c.flows, c.resources, c.capped, &c.traj, removed)
				}
				c.traj.valid = false
				hier := false
				if !done {
					sv.lastReplayed = 0
					if n.hier != nil {
						// Internal parallelism stays off here — the flush
						// workers already own the cores — and trySolve's
						// mutex serializes the shared partition scratch.
						// The outcome is identical either way: neither the
						// worker count nor the solve order changes the
						// hierarchical arithmetic.
						hier = n.hier.trySolve(c, sv, sv.stats, false)
					}
					if !hier {
						rec := &c.traj
						if len(c.flows) < recordMinFlows {
							rec = nil
						}
						sv.solve(c.flows, c.resources, c.capped, rec)
					}
				}
				if recordStats {
					sv.stats.SolveLatencyNs.Observe(uint64(time.Since(solveStart)))
				}
				warmDone[i] = done
				hierOf[i] = hier
				livePasses[i] = sv.lastLive
				replayed[i] = sv.lastReplayed
				groupsOf[i] = sv.lastGroups
			}
		}(w)
	}
	wg.Wait()
	if recordStats {
		// Stats.merge folds each worker's shard field-wise: counters by
		// addition, histograms by bucket-wise addition, HierMaxRelErr by
		// max. Every fold is order-independent, so the merged stats match
		// the serial flush regardless of which worker solved which
		// component.
		for w := 0; w < workers; w++ {
			n.stats.merge(&n.workerStats[w])
		}
	}
	// Serial finish in component-id order: completion events, observers
	// and stats come out exactly as the serial flush emits them.
	for i, c := range comps {
		removed := c.pendRemoved
		c.pendEvents, c.pendRemoved = 0, nil
		if n.stats != nil {
			n.stats.Solves[c.pendTrig]++
			n.stats.ComponentFlows.Observe(uint64(len(c.flows)))
			if removed != nil {
				if warmDone[i] {
					n.stats.WarmHits++
					n.stats.WarmReplayedPasses += uint64(replayed[i])
				} else {
					n.stats.WarmMisses++
				}
			}
		}
		for j, f := range c.flows {
			n.scheduleCompletion(f, now)
			if n.observer != nil && f.rate != n.batchRates[rateOff[i]+j] {
				n.observer(now, f, f.rate)
			}
		}
		if n.resObserver != nil {
			for _, r := range c.resources {
				n.resObserver(now, r, r.load)
			}
		}
		if n.solveObserver != nil {
			n.solveObserver(now, SolveInfo{
				Trigger:        c.pendTrig,
				Flows:          len(c.flows),
				Resources:      len(c.resources),
				LivePasses:     livePasses[i],
				WarmStart:      warmDone[i],
				ReplayedPasses: replayed[i],
				Hierarchical:   hierOf[i],
				Groups:         groupsOf[i],
			})
		}
	}
}
