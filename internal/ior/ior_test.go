package ior

import (
	"errors"
	"math"
	"testing"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func deploy(t *testing.T, s cluster.Scenario) *cluster.Deployment {
	t.Helper()
	dep, err := cluster.PlaFRIM(s).Deploy()
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func baseParams(nodes, count int) Params {
	return Params{
		Nodes: nodes, PPN: 8,
		TransferSize: 1 * beegfs.MiB,
		StripeCount:  count,
	}.WithTotalSize(32 * beegfs.GiB)
}

func TestParamsValidate(t *testing.T) {
	good := baseParams(4, 4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Params){
		func(p *Params) { p.Nodes = 0 },
		func(p *Params) { p.PPN = 0 },
		func(p *Params) { p.BlockSize = 0 },
		func(p *Params) { p.TransferSize = 0 },
		func(p *Params) { p.Segments = -1 },
		func(p *Params) { p.StripeCount = -1 },
		func(p *Params) { p.SetupMean = -1 },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestWithTotalSize(t *testing.T) {
	p := Params{Nodes: 4, PPN: 8, TransferSize: beegfs.MiB}.WithTotalSize(32 * beegfs.GiB)
	if p.BlockSize != beegfs.GiB {
		t.Fatalf("BlockSize = %d, want 1 GiB per process", p.BlockSize)
	}
	if p.TotalBytes() != 32*beegfs.GiB {
		t.Fatalf("TotalBytes = %d", p.TotalBytes())
	}
	// With segments.
	p.Segments = 4
	p = p.WithTotalSize(32 * beegfs.GiB)
	if p.TotalBytes() != 32*beegfs.GiB {
		t.Fatalf("TotalBytes with segments = %d", p.TotalBytes())
	}
}

func TestExecuteSingleRun(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	res, err := Execute(dep.FS, dep.Nodes(8), baseParams(8, 4), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Bandwidth <= 0 {
		t.Fatalf("bandwidth = %v", res.Bandwidth)
	}
	if len(res.TargetIDs) != 4 {
		t.Fatalf("targets = %v, want 4 ids", res.TargetIDs)
	}
	if res.End <= res.Start {
		t.Fatalf("End %v <= Start %v", res.End, res.Start)
	}
	// Round-robin count 4 on PlaFRIM order: always a (1,3) split.
	counts := []int{res.PerHost["oss1"], res.PerHost["oss2"]}
	if !(counts[0] == 1 && counts[1] == 3 || counts[0] == 3 && counts[1] == 1) {
		t.Fatalf("per-host counts = %v, want a (1,3)", counts)
	}
}

// Scenario 1, 8 nodes, count 4: the paper reports ~1460 MiB/s (Figure 4a
// plateau). Allow the jittered run a generous band.
func TestScenario1Count4Bandwidth(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	src := rng.New(7)
	dep.ReJitter(src)
	p := baseParams(8, 4)
	p.SetupMean, p.SetupCV = dep.Platform.SetupMean, dep.Platform.SetupCV
	res, err := Execute(dep.FS, dep.Nodes(8), p, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bandwidth < 1250 || res.Bandwidth > 1600 {
		t.Fatalf("scenario-1 count-4 bandwidth = %v, want ~1460", res.Bandwidth)
	}
}

// Scenario 1, count 8 always reaches the balanced peak ~2200 (lesson 4).
func TestScenario1Count8Peak(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	src := rng.New(8)
	for rep := 0; rep < 5; rep++ {
		dep.ReJitter(src)
		res, err := Execute(dep.FS, dep.Nodes(8), baseParams(8, 8), src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Bandwidth < 2000 || res.Bandwidth > 2400 {
			t.Fatalf("rep %d: count-8 bandwidth = %v, want ~2200", rep, res.Bandwidth)
		}
	}
}

// Scenario 2: bandwidth grows with stripe count (lesson 6).
func TestScenario2CountMonotone(t *testing.T) {
	dep := deploy(t, cluster.Scenario2Omnipath)
	src := rng.New(9)
	prev := 0.0
	for _, count := range []int{1, 2, 4, 8} {
		res, err := Execute(dep.FS, dep.Nodes(32), baseParams(32, count), src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Bandwidth <= prev {
			t.Fatalf("count %d bandwidth %v not above previous %v", count, res.Bandwidth, prev)
		}
		prev = res.Bandwidth
	}
	// Count 8 approaches the calibrated ceiling 2*C(4) ~ 8064.
	if prev < 6800 || prev > 8400 {
		t.Fatalf("count-8 bandwidth = %v, want near 8064", prev)
	}
}

// Persistent deployment + rotating chooser: stripe count 2 alternates
// (1,1) and (0,2) across repetitions — the root of Figure 6a's bimodality.
func TestRoundRobinAlternatesAcrossReps(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	src := rng.New(10)
	seen := make(map[[2]int]int)
	for rep := 0; rep < 8; rep++ {
		res, err := Execute(dep.FS, dep.Nodes(8), baseParams(8, 2), src)
		if err != nil {
			t.Fatal(err)
		}
		a, b := res.PerHost["oss1"], res.PerHost["oss2"]
		if a > b {
			a, b = b, a
		}
		seen[[2]int{a, b}]++
	}
	if seen[[2]int{1, 1}] != 4 || seen[[2]int{0, 2}] != 4 {
		t.Fatalf("allocation mix = %v, want 4x(1,1) and 4x(0,2)", seen)
	}
}

func TestNodeSweepScenario1MatchesPaperShape(t *testing.T) {
	// Figure 4a: ~880 at N=1 rising to a ~1460 plateau by N=4.
	dep := deploy(t, cluster.Scenario1Ethernet)
	var bw []float64
	for _, n := range []int{1, 2, 4, 8} {
		res, err := Execute(dep.FS, dep.Nodes(n), baseParams(n, 4), rng.New(uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		bw = append(bw, res.Bandwidth)
	}
	if bw[0] < 780 || bw[0] > 980 {
		t.Fatalf("N=1 bandwidth = %v, want ~880", bw[0])
	}
	for i := 1; i < len(bw); i++ {
		if bw[i] < bw[i-1]*0.98 {
			t.Fatalf("bandwidth not (weakly) increasing with nodes: %v", bw)
		}
	}
	if bw[2] < 1350 || bw[3] > 1600 {
		t.Fatalf("plateau = %v/%v, want ~1460", bw[2], bw[3])
	}
	// Lesson 1's magnitude: +64% from 1 node to the plateau.
	gain := bw[3]/bw[0] - 1
	if gain < 0.45 || gain > 0.85 {
		t.Fatalf("node gain = %.0f%%, paper reports ~64%%", gain*100)
	}
}

func TestNodeSweepScenario2NeedsMoreNodes(t *testing.T) {
	// Lesson 1: in scenario 2 the impact of nodes is heavier (~270%).
	dep := deploy(t, cluster.Scenario2Omnipath)
	bwAt := func(n int) float64 {
		res, err := Execute(dep.FS, dep.Nodes(n), baseParams(n, 4), rng.New(uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		return res.Bandwidth
	}
	b1, b4, b16 := bwAt(1), bwAt(4), bwAt(16)
	if b4 <= b1 || b16 <= b4 {
		t.Fatalf("scenario-2 bandwidth not rising: %v %v %v", b1, b4, b16)
	}
	gain := b16/b1 - 1
	if gain < 1.5 {
		t.Fatalf("scenario-2 node gain = %.0f%%, want > 150%% (paper ~270%%)", gain*100)
	}
}

// Lesson 3 / Figure 5: doubling ppn does not replace nodes; scenario 2
// shows a slight degradation at ppn=16.
func TestPpn16SimilarButSlightlyWorseScenario2(t *testing.T) {
	// Compare below the plateau (4 nodes), where the client stack is the
	// binding constraint and the intra-node penalty is visible.
	dep := deploy(t, cluster.Scenario2Omnipath)
	p8 := baseParams(4, 4)
	res8, err := Execute(dep.FS, dep.Nodes(4), p8, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	p16 := Params{Nodes: 4, PPN: 16, TransferSize: beegfs.MiB, StripeCount: 4}.WithTotalSize(32 * beegfs.GiB)
	res16, err := Execute(dep.FS, dep.Nodes(4), p16, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	ratio := res16.Bandwidth / res8.Bandwidth
	if ratio >= 1.0 || ratio < 0.85 {
		t.Fatalf("ppn16/ppn8 = %v, want slight degradation (0.85..1.0)", ratio)
	}
}

func TestFilePerProcess(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	p := Params{
		Nodes: 2, PPN: 2, TransferSize: beegfs.MiB,
		Pattern: FilePerProcess, StripeCount: 2,
	}.WithTotalSize(1 * beegfs.GiB)
	res, err := Execute(dep.FS, dep.Nodes(2), p, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TargetIDs) != 4*2 {
		t.Fatalf("N-N with 4 procs x count 2: %d target ids, want 8", len(res.TargetIDs))
	}
	if dep.FS.Meta().FileCount() != 4 {
		t.Fatalf("file count = %d, want 4", dep.FS.Meta().FileCount())
	}
	if res.Bandwidth <= 0 {
		t.Fatal("zero bandwidth")
	}
}

func TestSegmentsAreSequential(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	// Same total volume with 1 vs 4 segments: segmented run cannot be
	// faster (sequential issue adds sync points), and both must write the
	// same bytes.
	p1 := Params{Nodes: 2, PPN: 4, TransferSize: beegfs.MiB, StripeCount: 8, Segments: 1}.WithTotalSize(4 * beegfs.GiB)
	r1, err := Execute(dep.FS, dep.Nodes(2), p1, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	p4 := Params{Nodes: 2, PPN: 4, TransferSize: beegfs.MiB, StripeCount: 8, Segments: 4}.WithTotalSize(4 * beegfs.GiB)
	r4, err := Execute(dep.FS, dep.Nodes(2), p4, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if p1.TotalBytes() != p4.TotalBytes() {
		t.Fatalf("total bytes differ: %d vs %d", p1.TotalBytes(), p4.TotalBytes())
	}
	if r4.Bandwidth > r1.Bandwidth*1.05 {
		t.Fatalf("segmented run faster than contiguous: %v vs %v", r4.Bandwidth, r1.Bandwidth)
	}
}

func TestSmallSizePenalty(t *testing.T) {
	// Figure 2: small total sizes yield lower bandwidth than 32 GiB.
	dep := deploy(t, cluster.Scenario1Ethernet)
	src := rng.New(6)
	bwFor := func(total int64) float64 {
		p := Params{Nodes: 4, PPN: 8, TransferSize: beegfs.MiB, StripeCount: 4,
			SetupMean: dep.Platform.SetupMean, SetupCV: dep.Platform.SetupCV}.WithTotalSize(total)
		res, err := Execute(dep.FS, dep.Nodes(4), p, src)
		if err != nil {
			t.Fatal(err)
		}
		return res.Bandwidth
	}
	small := bwFor(1 * beegfs.GiB)
	large := bwFor(32 * beegfs.GiB)
	if small >= large*0.92 {
		t.Fatalf("1 GiB (%v) not visibly slower than 32 GiB (%v)", small, large)
	}
}

func TestStartRequiresEnoughClients(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	if _, err := Start(dep.FS, dep.Nodes(2), baseParams(4, 4), rng.New(1), nil); err == nil {
		t.Fatal("4-node run accepted with 2 clients")
	}
}

func TestConcurrentRuns(t *testing.T) {
	// Two applications on disjoint node sets, run simultaneously in one
	// simulation — the Figure 12 mechanic.
	dep := deploy(t, cluster.Scenario2Omnipath)
	nodes := dep.Nodes(16)
	var done int
	p := Params{Nodes: 8, PPN: 8, TransferSize: beegfs.MiB, StripeCount: 4}.WithTotalSize(16 * beegfs.GiB)
	pa, pb := p, p
	pa.App, pb.App = "appA", "appB"
	ra, err := Start(dep.FS, nodes[:8], pa, rng.New(1), func(Result) { done++ })
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Start(dep.FS, nodes[8:], pb, rng.New(2), func(Result) { done++ })
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 2 || !ra.Done() || !rb.Done() {
		t.Fatalf("runs incomplete: done=%d", done)
	}
	// Concurrent equal apps should finish with similar individual
	// bandwidth (symmetric resources).
	ba, bb := ra.Result().Bandwidth, rb.Result().Bandwidth
	if math.Abs(ba-bb)/ba > 0.25 {
		t.Fatalf("symmetric concurrent apps diverged: %v vs %v", ba, bb)
	}
}

func TestBandwidthAccountsSetup(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	p := baseParams(8, 8)
	p.SetupMean = 5 // exaggerated setup must depress reported bandwidth
	res, err := Execute(dep.FS, dep.Nodes(8), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	noSetup := baseParams(8, 8)
	res2, err := Execute(dep.FS, dep.Nodes(8), noSetup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bandwidth >= res2.Bandwidth {
		t.Fatalf("setup not reflected in bandwidth: %v vs %v", res.Bandwidth, res2.Bandwidth)
	}
}

func BenchmarkExecute8Nodes(b *testing.B) {
	dep, err := cluster.PlaFRIM(cluster.Scenario1Ethernet).Deploy()
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	for i := 0; i < b.N; i++ {
		res, err := Execute(dep.FS, dep.Nodes(8), baseParams(8, 4), src)
		if err != nil {
			b.Fatal(err)
		}
		// Delete the test file, as IOR does, so long bench runs do not
		// fill the simulated 16 TB targets.
		for _, path := range res.Paths {
			if err := dep.FS.Remove(path); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestReadBackPhase(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	p := baseParams(8, 8)
	p.ReadBack = true
	res, err := Execute(dep.FS, dep.Nodes(8), p, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadBandwidth <= 0 {
		t.Fatal("read-back produced no read bandwidth")
	}
	if res.WriteEnd <= res.Start || res.End <= res.WriteEnd {
		t.Fatalf("phase bounds broken: start %v writeEnd %v end %v", res.Start, res.WriteEnd, res.End)
	}
	// Symmetric service model: read and write bandwidth within 20%
	// (write pays setup, read does not).
	ratio := res.ReadBandwidth / res.Bandwidth
	if ratio < 0.8 || ratio > 1.3 {
		t.Fatalf("read/write ratio = %v, want ~1 (symmetric model)", ratio)
	}
}

func TestReadBackDisabledByDefault(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	res, err := Execute(dep.FS, dep.Nodes(4), baseParams(4, 4), rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadBandwidth != 0 {
		t.Fatalf("ReadBandwidth = %v without ReadBack", res.ReadBandwidth)
	}
	if res.WriteEnd != res.End {
		t.Fatalf("WriteEnd %v != End %v without read phase", res.WriteEnd, res.End)
	}
}

func TestReadBackNN(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	p := Params{
		Nodes: 2, PPN: 2, TransferSize: beegfs.MiB,
		Pattern: FilePerProcess, StripeCount: 2, ReadBack: true,
	}.WithTotalSize(1 * beegfs.GiB)
	res, err := Execute(dep.FS, dep.Nodes(2), p, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadBandwidth <= 0 {
		t.Fatal("N-N read-back produced no read bandwidth")
	}
}

func TestMDSRateLimitDelaysStart(t *testing.T) {
	// An artificially slow MDS (10 ops/s) makes a 4-proc N-N run pay
	// (2*4 ops)/10 = 0.8s of metadata time before writing.
	p := cluster.PlaFRIM(cluster.Scenario1Ethernet)
	p.FS.MDSOpRate = 10
	p.SetupMean = 0
	dep, err := p.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	params := Params{
		Nodes: 2, PPN: 2, TransferSize: beegfs.MiB,
		Pattern: FilePerProcess, StripeCount: 2,
	}.WithTotalSize(512 * beegfs.MiB)
	slow, err := Execute(dep.FS, dep.Nodes(2), params, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2 := cluster.PlaFRIM(cluster.Scenario1Ethernet)
	p2.SetupMean = 0
	dep2, err := p2.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Execute(dep2.FS, dep2.Nodes(2), params, nil)
	if err != nil {
		t.Fatal(err)
	}
	delta := float64(slow.End-slow.Start) - float64(fast.End-fast.Start)
	if delta < 0.75 || delta > 0.9 {
		t.Fatalf("MDS queue added %vs, want ~0.8s", delta)
	}
}

func TestMDSQueueSerializesBursts(t *testing.T) {
	// Two back-to-back reservations: the second waits for the first.
	p := cluster.PlaFRIM(cluster.Scenario1Ethernet)
	p.FS.MDSOpRate = 100
	dep, err := p.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	m := dep.FS.Meta()
	d1 := m.ReserveOps(0, 50) // 0.5s
	d2 := m.ReserveOps(0, 50) // queued behind: total 1.0s
	if !almost(d1, 0.5, 1e-9) || !almost(d2, 1.0, 1e-9) {
		t.Fatalf("delays = %v/%v, want 0.5/1.0", d1, d2)
	}
	// A reservation after the queue drained pays only its own time.
	if d := m.ReserveOps(5, 10); !almost(d, 0.1, 1e-9) {
		t.Fatalf("post-drain delay = %v, want 0.1", d)
	}
	if m.ReserveOps(0, 0) != 0 {
		t.Fatal("zero ops reserved time")
	}
}

func TestChunkSizeOverride(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	p := Params{
		Nodes: 1, PPN: 1, TransferSize: beegfs.MiB,
		StripeCount: 4, ChunkSize: 1 * beegfs.MiB,
	}.WithTotalSize(256 * beegfs.MiB)
	if _, err := Start(dep.FS, dep.Nodes(1), p, rng.New(1), nil); err != nil {
		t.Fatal(err)
	}
	if err := dep.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	paths := dep.FS.Meta().Paths()
	if len(paths) != 1 {
		t.Fatalf("files = %v", paths)
	}
	f := dep.FS.Meta().Lookup(paths[0])
	if f.Pattern.ChunkSize != 1*beegfs.MiB {
		t.Fatalf("chunk = %d, want 1 MiB", f.Pattern.ChunkSize)
	}
}

// A run whose file creation fails mid-run (all targets offline) surfaces
// the failure through Result.Err / Execute's error — never a panic.
func TestRunSurfacesCreateFailure(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	for _, tg := range dep.FS.Mgmtd().All() {
		if err := dep.FS.Mgmtd().SetOnline(tg.ID, false); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Execute(dep.FS, dep.Nodes(2), baseParams(2, 4), rng.New(3))
	if err == nil || res.Err == nil {
		t.Fatalf("offline deployment: err=%v res.Err=%v, want errors", err, res.Err)
	}
	if res.End < res.Start {
		t.Fatalf("failed run has no end stamp: %+v", res)
	}
}

// A permanent mid-run storage loss exhausts the retry budget and fails the
// run with a structured error; the simulation still converges.
func TestRunSurfacesMidRunIOFailure(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	inj := faults.NewInjector(dep.FS)
	if err := inj.Arm(faults.Schedule{
		{At: 2.0, Kind: faults.HostFault, ID: 1, Action: faults.Fail},
		{At: 2.0, Kind: faults.HostFault, ID: 2, Action: faults.Fail},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := Execute(dep.FS, dep.Nodes(2), baseParams(2, 4), rng.New(3))
	if err == nil || res.Err == nil {
		t.Fatal("permanent storage loss did not fail the run")
	}
	var ioErr *beegfs.IOFailedError
	if !errors.As(res.Err, &ioErr) {
		t.Fatalf("Err = %v, want a wrapped *beegfs.IOFailedError", res.Err)
	}
}
