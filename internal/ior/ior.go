// Package ior is an IOR-equivalent benchmark workload generator for the
// simulated file system: it reproduces the parameter space of the IOR tool
// the paper uses (§III-B) — API, block size, transfer size, segment count,
// shared-file (N-1) vs file-per-process (N-N) — and reports bandwidth the
// way IOR does: total bytes over wall time from first open to last close.
package ior

import (
	"fmt"
	"sync"

	"repro/internal/beegfs"
	"repro/internal/rng"
	"repro/internal/simkernel"
)

// AccessPattern selects how processes map to files.
type AccessPattern int

const (
	// SharedFile is IOR's N-1 mode: all processes write disjoint
	// contiguous regions of one file. The paper uses it throughout "to
	// limit the impact of metadata overhead" (§III-B).
	SharedFile AccessPattern = iota
	// FilePerProcess is IOR's N-N mode (the paper's future work §VI).
	FilePerProcess
)

// String implements fmt.Stringer.
func (a AccessPattern) String() string {
	if a == SharedFile {
		return "N-1"
	}
	return "N-N"
}

// Params mirrors an IOR invocation.
type Params struct {
	// Nodes and PPN define the client side: Nodes compute nodes with PPN
	// processes each.
	Nodes int
	PPN   int
	// BlockSize is the contiguous amount written per process per segment
	// (IOR -b), in bytes.
	BlockSize int64
	// TransferSize is the request size (IOR -t), in bytes. The paper uses
	// 1 MiB.
	TransferSize int64
	// Segments is the IOR -s segment count (default 1).
	Segments int
	// Pattern selects N-1 or N-N.
	Pattern AccessPattern
	// StripeCount overrides the directory default when positive.
	StripeCount int
	// ChunkSize overrides the directory default stripe size when positive
	// (the paper fixes 512 KiB; this enables stripe-size studies).
	ChunkSize int64
	// Path is the output file path ("/ior.dat" by default); N-N appends a
	// per-rank suffix.
	Path string
	// App identifies the application for target-sharing accounting
	// (empty: "ior").
	App string
	// SetupMean and SetupCV parameterize the per-run setup overhead in
	// seconds (cluster presets provide values).
	SetupMean float64
	SetupCV   float64
	// ReadBack, when true, reads the written data back after a barrier
	// (IOR's combined -w -r mode) and reports the read bandwidth too —
	// the paper's §III-B future work, modelled with symmetric service
	// rates.
	ReadBack bool
}

// WithTotalSize returns a copy of p whose per-process BlockSize is set so
// the run writes total bytes in aggregate — the paper keeps the total at
// 32 GiB and divides it across processes (§IV-A).
func (p Params) WithTotalSize(total int64) Params {
	procs := int64(p.Nodes * p.PPN)
	segs := int64(p.Segments)
	if segs <= 0 {
		segs = 1
	}
	p.BlockSize = total / (procs * segs)
	return p
}

// TotalBytes returns the aggregate volume the run writes.
func (p Params) TotalBytes() int64 {
	segs := int64(p.Segments)
	if segs <= 0 {
		segs = 1
	}
	return int64(p.Nodes*p.PPN) * p.BlockSize * segs
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.Nodes <= 0 || p.PPN <= 0 {
		return fmt.Errorf("ior: need positive Nodes and PPN, got %d/%d", p.Nodes, p.PPN)
	}
	if p.BlockSize <= 0 {
		return fmt.Errorf("ior: BlockSize must be positive, got %d", p.BlockSize)
	}
	if p.TransferSize <= 0 {
		return fmt.Errorf("ior: TransferSize must be positive, got %d", p.TransferSize)
	}
	if p.Segments < 0 {
		return fmt.Errorf("ior: negative Segments")
	}
	if p.StripeCount < 0 {
		return fmt.Errorf("ior: negative StripeCount")
	}
	if p.ChunkSize < 0 {
		return fmt.Errorf("ior: negative ChunkSize")
	}
	if p.SetupMean < 0 || p.SetupCV < 0 {
		return fmt.Errorf("ior: negative setup parameters")
	}
	return nil
}

func (p Params) path() string {
	if p.Path == "" {
		return "/ior.dat"
	}
	return p.Path
}

func (p Params) app() string {
	if p.App == "" {
		return "ior"
	}
	return p.App
}

// Result is one benchmark execution's outcome.
type Result struct {
	// Bandwidth is the IOR-reported write bandwidth in MiB/s:
	// TotalBytes / (End - Start).
	Bandwidth float64
	// Start and End are the run's wall-clock bounds in virtual time
	// (Start includes setup, as IOR's timing does).
	Start, End simkernel.Time
	// TargetIDs are the stripe targets of the shared file (N-1), or of
	// every created file concatenated (N-N).
	TargetIDs []int
	// Paths lists the file(s) the run created, so callers can remove them
	// afterwards (IOR deletes its test file unless -k is given; campaigns
	// that never clean up eventually fill the storage targets).
	Paths []string
	// PerHost maps "oss1"-style host names to how many of the run's
	// targets they own (N-1 only; used for the (min,max) analysis).
	PerHost map[string]int
	// WriteEnd is when the write phase finished (== End without
	// ReadBack).
	WriteEnd simkernel.Time
	// ReadBandwidth is the read-back phase's bandwidth in MiB/s (0 when
	// ReadBack is off).
	ReadBandwidth float64
	// Params echoes the run's parameters.
	Params Params
	// Err is set when the run failed mid-flight — a create or I/O that
	// could not complete (e.g. retry budget exhausted under fault
	// injection). A failed run still fires onDone, with Bandwidth 0.
	Err error
}

// Run is an in-flight benchmark execution.
type Run struct {
	fs        *beegfs.FileSystem
	params    Params
	result    Result
	pending   int
	done      bool
	onDone    func(Result)
	readPhase bool
	// readLaunchers start each unit's read-back chain after the
	// write-phase barrier.
	readLaunchers []func()
}

// Done reports whether the run has finished.
func (r *Run) Done() bool { return r.done }

// fail terminates the run with an error: remaining I/O callbacks are
// ignored and onDone fires once with Result.Err set. Mid-run failures
// (offline targets, exhausted retries) land here instead of panicking.
func (r *Run) fail(err error) {
	if r.done {
		return
	}
	r.done = true
	r.result.Err = err
	r.result.End = r.fs.Sim().Now()
	if r.onDone != nil {
		r.onDone(r.result)
	}
}

// Result returns the run's outcome; valid once Done.
func (r *Run) Result() Result { return r.result }

// Start launches a benchmark run inside the file system's simulation. The
// returned Run completes asynchronously; onDone (optional) fires when the
// last process finishes. Drive the simulation (fs.Sim().Run()) to make
// progress. src supplies per-run randomness (setup jitter, stochastic
// choosers).
func Start(fs *beegfs.FileSystem, clients []*beegfs.Client, params Params, src *rng.Source, onDone func(Result)) (*Run, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(clients) < params.Nodes {
		return nil, fmt.Errorf("ior: %d clients provided for %d nodes", len(clients), params.Nodes)
	}
	if params.Segments == 0 {
		params.Segments = 1
	}
	sim := fs.Sim()
	r := &Run{fs: fs, params: params, onDone: onDone}
	r.result.Params = params
	r.result.Start = sim.Now()
	r.result.PerHost = make(map[string]int)

	setup := fs.Config().CreateLatency
	if params.SetupMean > 0 && src != nil {
		setup += src.LogNormal(params.SetupMean, params.SetupCV)
	} else {
		setup += params.SetupMean
	}

	pathBase := fmt.Sprintf("%s.run%d", params.path(), fs.NextRunSeq())

	pattern := fs.Meta().PatternFor(pathBase)
	if params.StripeCount > 0 {
		pattern.Count = params.StripeCount
	}
	if params.ChunkSize > 0 {
		pattern.ChunkSize = params.ChunkSize
	}

	procs := params.Nodes * params.PPN
	rampWeight := fs.Config().RampWeight(params.PPN)
	depthScale := fs.Config().DepthScale(params.PPN)
	if params.Pattern == SharedFile {
		// Symmetric ranks on one node are coalesced into a single flow
		// per node (identical max-min rates), so pending counts nodes.
		r.pending = params.Nodes
	} else {
		r.pending = procs
	}

	// Metadata cost: one create (N-1) or one per rank (N-N), plus one
	// open per rank, serviced by the (possibly rate-limited) MDS queue.
	metaOps := 1 + procs
	if params.Pattern == FilePerProcess {
		metaOps = 2 * procs
	}
	sim.After(setup, func() {
		if d := fs.Meta().ReserveOps(sim.Now(), metaOps); d > 0 {
			sim.After(d, func() { r.launch(fs, clients, pattern, pathBase, src, rampWeight, depthScale) })
			return
		}
		r.launch(fs, clients, pattern, pathBase, src, rampWeight, depthScale)
	})
	return r, nil
}

// launch creates the run's file(s) and starts the write phase.
func (r *Run) launch(fs *beegfs.FileSystem, clients []*beegfs.Client, pattern beegfs.StripePattern, pathBase string, src *rng.Source, rampWeight, depthScale float64) {
	params := r.params
	procs := params.Nodes * params.PPN
	{
		if params.Pattern == SharedFile {
			file, err := fs.CreateWithPattern(pathBase, pattern, src)
			if err != nil {
				r.fail(fmt.Errorf("ior: create failed mid-run: %w", err))
				return
			}
			r.result.Paths = append(r.result.Paths, file.Path)
			r.recordTargets(file)
			for node := 0; node < params.Nodes; node++ {
				node := node
				r.startNodeGroup(file, clients[node], node, rampWeight, depthScale, false)
				if params.ReadBack {
					r.readLaunchers = append(r.readLaunchers, func() {
						r.startNodeGroup(file, clients[node], node, rampWeight, depthScale, true)
					})
				}
			}
			return
		}
		for rank := 0; rank < procs; rank++ {
			file, err := fs.CreateWithPattern(fmt.Sprintf("%s.%08d", pathBase, rank), pattern, src)
			if err != nil {
				r.fail(fmt.Errorf("ior: create failed mid-run: %w", err))
				return
			}
			r.result.Paths = append(r.result.Paths, file.Path)
			r.recordTargets(file)
			client := clients[rank%params.Nodes]
			r.startProcess(file, client, rampWeight, depthScale, false)
			if params.ReadBack {
				file := file
				r.readLaunchers = append(r.readLaunchers, func() {
					r.startProcess(file, client, rampWeight, depthScale, true)
				})
			}
		}
	}
}

func (r *Run) recordTargets(f *beegfs.File) {
	r.result.TargetIDs = append(r.result.TargetIDs, f.TargetIDs()...)
	for _, t := range f.Targets {
		r.result.PerHost[t.Host().Name]++
	}
}

// startNodeGroup issues one coalesced write per segment for all of a
// node's ranks in the shared-file mode. Segments run sequentially (IOR
// semantics: a task moves to its next segment only after finishing the
// previous one), and rank r lives on node r % Nodes.
func (r *Run) startNodeGroup(file *beegfs.File, client *beegfs.Client, node int, rampWeight, depthScale float64, read bool) {
	p := &r.params
	g := getGroupIO()
	g.r, g.node, g.read = r, node, read
	g.op = beegfs.WriteOp{
		Client:       client,
		File:         file,
		Procs:        p.PPN,
		App:          p.app(),
		TransferSize: p.TransferSize,
		RampWeight:   rampWeight,
		DepthScale:   depthScale,
		OnComplete:   g.onCompleteFn,
		OnError:      g.onErrorFn,
	}
	if cap(g.regions) < p.PPN {
		g.regions = make([]beegfs.Region, p.PPN)
	} else {
		g.regions = g.regions[:p.PPN]
	}
	g.op.Regions = g.regions
	g.issue()
}

// groupIO drives the sequential segments of one node's coalesced ranks
// (shared-file mode) or of one rank against its own file (N-N mode, no
// coalescing: regions empty). Segments run strictly sequentially, so one
// op, one regions slice and one callback pair serve the whole chain: the
// beegfs layer derives its plan from the regions synchronously at issue
// time and never reads them again, so rewriting the offsets for the next
// segment is safe.
type groupIO struct {
	r       *Run
	node    int
	seg     int
	read    bool
	op      beegfs.WriteOp
	regions []beegfs.Region // active segment regions; empty in N-N mode

	// Bound once per object so reuse from the pool does not re-allocate
	// the method-value closures handed to the op.
	onCompleteFn func(simkernel.Time)
	onErrorFn    func(error)
}

// groupPool recycles groupIO objects across ranks and repetitions.
// Campaigns build a fresh Run per repetition, so a per-Run pool would
// never warm up; a package-level sync.Pool amortizes the op, regions
// and callback allocations across the whole campaign (and stays safe
// under parallel repetitions). A groupIO is returned to the pool only
// after its final segment's completion callback, at which point the
// beegfs layer has fully detached from the op.
var groupPool sync.Pool

func getGroupIO() *groupIO {
	g, _ := groupPool.Get().(*groupIO)
	if g == nil {
		g = &groupIO{}
		g.onCompleteFn = g.onComplete
		g.onErrorFn = g.onError
	}
	return g
}

func putGroupIO(g *groupIO) {
	g.r = nil
	g.node, g.seg = 0, 0
	g.read = false
	g.op = beegfs.WriteOp{}
	g.regions = g.regions[:0]
	groupPool.Put(g)
}

func (g *groupIO) issue() {
	r, p := g.r, &g.r.params
	if len(g.regions) > 0 {
		procs := p.Nodes * p.PPN
		for i := 0; i < p.PPN; i++ {
			rank := g.node + i*p.Nodes
			g.regions[i] = beegfs.Region{
				Offset: int64(g.seg*procs+rank) * p.BlockSize,
				Length: p.BlockSize,
			}
		}
	} else {
		g.op.Offset = int64(g.seg) * p.BlockSize
	}
	if err := r.startOp(&g.op, g.read); err != nil {
		r.fail(fmt.Errorf("ior: I/O failed mid-run: %w", err))
	}
}

func (g *groupIO) onComplete(at simkernel.Time) {
	g.seg++
	if g.seg < g.r.params.Segments {
		g.issue()
		return
	}
	r := g.r
	putGroupIO(g)
	r.processDone(at)
}

func (g *groupIO) onError(err error) { g.r.fail(err) }

// startOp dispatches to the write or read path.
func (r *Run) startOp(op *beegfs.WriteOp, read bool) error {
	if read {
		_, err := r.fs.StartRead(op)
		return err
	}
	_, err := r.fs.StartWrite(op)
	return err
}

// startProcess issues one rank's segments sequentially against its own
// file (N-N mode).
func (r *Run) startProcess(file *beegfs.File, client *beegfs.Client, rampWeight, depthScale float64, read bool) {
	p := &r.params
	g := getGroupIO()
	g.r, g.read = r, read
	g.op = beegfs.WriteOp{
		Client:       client,
		File:         file,
		Length:       p.BlockSize,
		App:          p.app(),
		TransferSize: p.TransferSize,
		RampWeight:   rampWeight,
		DepthScale:   depthScale,
		OnComplete:   g.onCompleteFn,
		OnError:      g.onErrorFn,
	}
	g.regions = g.regions[:0]
	g.issue()
}

func (r *Run) processDone(at simkernel.Time) {
	if r.done {
		// The run already failed; late completions of surviving ops are
		// ignored.
		return
	}
	r.pending--
	if r.pending > 0 {
		return
	}
	if !r.readPhase {
		// Write-phase barrier reached.
		r.result.WriteEnd = at + simkernel.Time(r.fs.Config().OpenLatency)
		elapsed := float64(r.result.WriteEnd - r.result.Start)
		if elapsed > 0 {
			r.result.Bandwidth = float64(r.params.TotalBytes()) / float64(beegfs.MiB) / elapsed
		}
		if r.params.ReadBack && len(r.readLaunchers) > 0 {
			r.readPhase = true
			r.pending = len(r.readLaunchers)
			for _, launch := range r.readLaunchers {
				launch()
			}
			return
		}
		r.finish(r.result.WriteEnd)
		return
	}
	// Read phase done.
	end := at + simkernel.Time(r.fs.Config().OpenLatency)
	if elapsed := float64(end - r.result.WriteEnd); elapsed > 0 {
		r.result.ReadBandwidth = float64(r.params.TotalBytes()) / float64(beegfs.MiB) / elapsed
	}
	r.finish(end)
}

// finish marks the run complete at virtual time end (the last I/O
// completion plus the close metadata latency). The callback fires at
// exactly that time, so resources freed by this run (e.g. scheduler
// nodes) are reused only after the close is accounted.
func (r *Run) finish(end simkernel.Time) {
	sim := r.fs.Sim()
	fire := func() {
		if r.done {
			return
		}
		r.done = true
		r.result.End = end
		if r.onDone != nil {
			r.onDone(r.result)
		}
	}
	if end > sim.Now() {
		sim.At(end, fire)
		return
	}
	fire()
}

// Execute runs a single benchmark to completion and returns its result. It
// drives the simulation until the run finishes, leaving any other queued
// events untouched.
func Execute(fs *beegfs.FileSystem, clients []*beegfs.Client, params Params, src *rng.Source) (Result, error) {
	r, err := Start(fs, clients, params, src, nil)
	if err != nil {
		return Result{}, err
	}
	sim := fs.Sim()
	for !r.done {
		if !sim.Step() {
			return Result{}, fmt.Errorf("ior: simulation drained before run completed (%d processes pending)", r.pending)
		}
	}
	return r.result, r.result.Err
}
