// Command benchjson converts `go test -bench` output read from stdin into
// a stable JSON document, so benchmark runs can be archived and diffed
// across commits (BENCH_PR2.json, BENCH_PR3.json) and smoke-checked in CI:
//
//	go test -bench=. -benchmem -benchtime=1x ./... | benchjson -o BENCH.json
//
// Each benchmark line becomes one entry recording the iteration count and
// every reported metric (ns/op, B/op, allocs/op and custom ones like
// MiB/s@32GiB) keyed by its unit.
//
// With -compare the command instead diffs two archived documents and acts
// as a regression gate:
//
//	benchjson -compare old.json -threshold 25 -match '^BenchmarkSolve' new.json
//
// exits non-zero when any benchmark present in both files and matching the
// -match pattern got slower (ns/op) by more than the threshold percentage.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark result.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the full document.
type Doc struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []Entry           `json:"benchmarks"`
}

func main() {
	var (
		out       = flag.String("o", "", "output file (default stdout)")
		note      = flag.String("note", "", "free-form note stored in the context block")
		compare   = flag.String("compare", "", "baseline JSON file; the new JSON file follows as a positional argument")
		threshold = flag.Float64("threshold", 25, "with -compare: fail on ns/op regressions above this percentage")
		match     = flag.String("match", "", "with -compare: only gate benchmarks whose name matches this regexp")
	)
	flag.Parse()
	if *compare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly one positional argument (the new JSON file)")
			os.Exit(2)
		}
		report, failed, err := compareFiles(*compare, flag.Arg(0), *threshold, *match)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		os.Stdout.WriteString(report)
		if failed {
			os.Exit(1)
		}
		return
	}
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *note != "" {
		if doc.Context == nil {
			doc.Context = map[string]string{}
		}
		doc.Context["note"] = *note
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output. Benchmark lines have the shape
//
//	BenchmarkName-8   	  1000	  316.2 ns/op	  0 B/op	  12 MiB/s
//
// i.e. a name, an iteration count, then (value, unit) pairs. Context lines
// (goos/goarch/pkg/cpu) are captured; everything else is ignored.
func parse(r io.Reader) (Doc, error) {
	doc := Doc{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if k, v, ok := strings.Cut(line, ": "); ok && (k == "goos" || k == "goarch" || k == "pkg" || k == "cpu") {
			// Several packages repeat goos/goarch/cpu; the last pkg wins is
			// useless, so accumulate pkg values.
			if k == "pkg" && doc.Context["pkg"] != "" {
				doc.Context["pkg"] += " " + v
			} else {
				doc.Context[k] = v
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{
			Name:       strings.TrimSuffix(fields[0], cpuSuffix(fields[0])),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return Doc{}, fmt.Errorf("bad metric value %q in %q", fields[i], line)
			}
			e.Metrics[fields[i+1]] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, e)
	}
	if err := sc.Err(); err != nil {
		return Doc{}, err
	}
	if len(doc.Benchmarks) == 0 {
		return Doc{}, fmt.Errorf("no benchmark lines found on stdin")
	}
	sort.SliceStable(doc.Benchmarks, func(i, j int) bool {
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})
	if len(doc.Context) == 0 {
		doc.Context = nil
	}
	return doc, nil
}

// compareFiles loads two benchjson documents and renders a regression
// report over the benchmarks present in both (optionally narrowed by the
// pattern). It returns failed=true when any common benchmark's ns/op grew
// by more than thresholdPct percent. Benchmarks present in only one file
// are listed but never gate: a baseline may cover more than a smoke run.
func compareFiles(oldPath, newPath string, thresholdPct float64, pattern string) (report string, failed bool, err error) {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		return "", false, err
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		return "", false, err
	}
	var re *regexp.Regexp
	if pattern != "" {
		if re, err = regexp.Compile(pattern); err != nil {
			return "", false, fmt.Errorf("bad -match pattern: %v", err)
		}
	}
	return diffDocs(oldDoc, newDoc, thresholdPct, re)
}

func loadDoc(path string) (Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Doc{}, err
	}
	var doc Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return Doc{}, fmt.Errorf("%s: %v", path, err)
	}
	return doc, nil
}

// diffDocs is the pure comparison core, split out for testing.
func diffDocs(oldDoc, newDoc Doc, thresholdPct float64, match *regexp.Regexp) (string, bool, error) {
	oldBy := map[string]Entry{}
	for _, e := range oldDoc.Benchmarks {
		oldBy[e.Name] = e
	}
	var b strings.Builder
	failed := false
	compared := 0
	for _, e := range newDoc.Benchmarks {
		if match != nil && !match.MatchString(e.Name) {
			continue
		}
		old, ok := oldBy[e.Name]
		delete(oldBy, e.Name)
		if !ok {
			fmt.Fprintf(&b, "  new   %-44s %12.1f ns/op (no baseline)\n", e.Name, e.Metrics["ns/op"])
			continue
		}
		oldNs, newNs := old.Metrics["ns/op"], e.Metrics["ns/op"]
		if oldNs <= 0 {
			continue
		}
		compared++
		pct := (newNs - oldNs) / oldNs * 100
		verdict := "ok    "
		if pct > thresholdPct {
			verdict = "FAIL  "
			failed = true
		}
		fmt.Fprintf(&b, "  %s%-44s %12.1f -> %12.1f ns/op  %+7.1f%%\n", verdict, e.Name, oldNs, newNs, pct)
	}
	if match != nil {
		for name := range oldBy {
			if !match.MatchString(name) {
				delete(oldBy, name)
			}
		}
	}
	gone := make([]string, 0, len(oldBy))
	for name := range oldBy {
		gone = append(gone, name)
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(&b, "  gone  %-44s (in baseline only)\n", name)
	}
	if compared == 0 {
		return "", false, fmt.Errorf("no common benchmarks to compare")
	}
	head := fmt.Sprintf("benchjson: compared %d benchmarks, threshold %+.0f%% ns/op\n", compared, thresholdPct)
	return head + b.String(), failed, nil
}

// cpuSuffix returns the trailing "-N" GOMAXPROCS marker of a benchmark
// name, or "" when absent.
func cpuSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i:]
}
