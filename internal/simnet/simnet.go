// Package simnet implements a flow-level network simulator with weighted
// max-min fair bandwidth sharing.
//
// Instead of simulating individual packets, each I/O stream is a Flow with
// a volume to transfer and a usage vector describing which resources
// (links, NICs, storage devices — anything with a capacity) it consumes and
// in what proportion. A flow transferring at rate r consumes r·w on every
// resource where its weight is w. This captures striping: a client process
// writing a file striped over k targets at rate r puts r on its own NIC but
// only r·(m_i/k) on storage host i's NIC, where m_i is the number of that
// host's targets in the stripe pattern — exactly the accounting behind the
// paper's Figure 9 timeline and the (min,max) allocation results.
//
// Rates are assigned by weighted max-min fairness (progressive filling):
// all flows grow a common fill level until some resource saturates or a
// flow hits its rate cap; saturated flows freeze and filling continues.
// This is the standard fluid approximation for TCP-like fair sharing and
// for request-level fair queueing inside storage servers.
package simnet

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/simkernel"
)

// Resource is anything with a capacity that flows compete for: a network
// link, a NIC, a storage device, a host I/O controller.
type Resource struct {
	Name     string
	capacity float64 // MiB/s

	// scratch used by the solver
	load float64
	sumW float64
}

// Capacity returns the resource's current capacity in MiB/s.
func (r *Resource) Capacity() float64 { return r.capacity }

// Flow is a data stream with a fixed volume routed over a set of resources.
type Flow struct {
	Name   string
	Volume float64 // MiB to transfer in total

	// Cap, when positive, bounds the flow's rate (MiB/s) regardless of
	// resource availability. Used for per-process client-side limits.
	Cap float64

	// Usage maps each resource the flow touches to the fraction of the
	// flow's rate consumed on it (usually 1 for its own NIC, m_i/k for a
	// storage host's share of a striped write).
	Usage map[*Resource]float64

	// OnComplete, if non-nil, fires when the last byte is transferred.
	OnComplete func(at simkernel.Time)

	// OnAbort, if non-nil, fires when the flow is removed via Abort before
	// completion (fault injection). The flow's Remaining() is settled to
	// the abort instant, so callers can re-issue exactly the unsent volume.
	// Exactly one of OnComplete/OnAbort fires per started flow.
	OnAbort func(at simkernel.Time)

	remaining float64
	rate      float64
	started   simkernel.Time
	done      bool
	event     *simkernel.Event

	frozen bool // solver scratch
}

// Rate returns the flow's current fair-share rate in MiB/s.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the volume not yet transferred, in MiB.
func (f *Flow) Remaining() float64 { return f.remaining }

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// Started returns the virtual time the flow was started.
func (f *Flow) Started() simkernel.Time { return f.started }

// Network couples a set of resources and active flows to a simulation
// clock. All mutation methods must be called from within the simulation's
// event loop (or before it starts).
type Network struct {
	sim        *simkernel.Simulation
	resources  []*Resource
	flows      map[*Flow]struct{}
	lastSettle simkernel.Time
	observer   func(at simkernel.Time, f *Flow, rate float64)
}

// Observe registers a callback invoked whenever a flow's fair-share rate
// changes: at flow start, at every re-balance that moves its rate, and
// with rate 0 at completion or abort. Used by the trace recorder to build
// bandwidth timelines (Figure 9 style) from live simulations. Pass nil to
// remove the observer.
func (n *Network) Observe(fn func(at simkernel.Time, f *Flow, rate float64)) {
	n.observer = fn
}

// New creates an empty network bound to the simulation clock.
func New(sim *simkernel.Simulation) *Network {
	return &Network{sim: sim, flows: make(map[*Flow]struct{})}
}

// AddResource registers a resource with the given capacity (MiB/s).
func (n *Network) AddResource(name string, capacity float64) *Resource {
	if capacity < 0 {
		panic(fmt.Sprintf("simnet: negative capacity %v for %s", capacity, name))
	}
	r := &Resource{Name: name, capacity: capacity}
	n.resources = append(n.resources, r)
	return r
}

// SetCapacity changes a resource's capacity and immediately re-balances all
// flows. Used by the storage model when the number of active targets on a
// host changes (concave controller capacity) and by the interference
// injector.
func (n *Network) SetCapacity(r *Resource, capacity float64) {
	if capacity < 0 {
		panic(fmt.Sprintf("simnet: negative capacity %v for %s", capacity, r.Name))
	}
	if r.capacity == capacity {
		return
	}
	n.settle()
	r.capacity = capacity
	n.rebalance()
}

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// Start begins transferring a flow. The flow's Volume, Usage and optional
// Cap/OnComplete must be set; Start panics on a zero-usage flow with
// positive volume, which would never finish.
func (n *Network) Start(f *Flow) {
	if f.Volume < 0 {
		panic("simnet: negative flow volume")
	}
	if len(f.Usage) == 0 && f.Cap <= 0 && f.Volume > 0 {
		panic("simnet: flow with no resource usage and no cap cannot be paced")
	}
	for r, w := range f.Usage {
		if w <= 0 {
			panic(fmt.Sprintf("simnet: non-positive usage weight %v on %s", w, r.Name))
		}
	}
	f.remaining = f.Volume
	f.started = n.sim.Now()
	f.done = false
	n.settle()
	n.flows[f] = struct{}{}
	n.rebalance()
}

// Abort removes a flow before completion without firing OnComplete. The
// flow's OnAbort hook (if any) fires after the remaining flows have been
// re-balanced, with the flow's unsent volume settled to the abort instant.
func (n *Network) Abort(f *Flow) {
	if _, ok := n.flows[f]; !ok {
		return
	}
	n.settle()
	delete(n.flows, f)
	if f.event != nil {
		n.sim.Cancel(f.event)
		f.event = nil
	}
	f.rate = 0
	if n.observer != nil {
		n.observer(n.sim.Now(), f, 0)
	}
	n.rebalance()
	if f.OnAbort != nil {
		f.OnAbort(n.sim.Now())
	}
}

// FlowsUsing returns the in-flight flows whose usage vector touches r, in
// deterministic (name-sorted) order. Fault injection uses it to abort
// everything riding a failed resource.
func (n *Network) FlowsUsing(r *Resource) []*Flow {
	var out []*Flow
	for f := range n.flows {
		if _, ok := f.Usage[r]; ok {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// settle integrates transferred volume for all flows since the last rate
// change.
func (n *Network) settle() {
	now := n.sim.Now()
	dt := float64(now - n.lastSettle)
	if dt > 0 {
		for f := range n.flows {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				// Completion events fire exactly at the predicted time, so
				// any negative residue is floating-point noise.
				f.remaining = 0
			}
		}
	}
	n.lastSettle = now
}

// rebalance recomputes fair-share rates and reschedules completion events.
func (n *Network) rebalance() {
	if len(n.flows) == 0 {
		return
	}
	flows := make([]*Flow, 0, len(n.flows))
	for f := range n.flows {
		flows = append(flows, f)
	}
	// Deterministic solver input order regardless of map iteration.
	sort.Slice(flows, func(i, j int) bool { return flows[i].Name < flows[j].Name })
	var oldRates []float64
	if n.observer != nil {
		oldRates = make([]float64, len(flows))
		for i, f := range flows {
			oldRates[i] = f.rate
		}
	}
	solve(flows)
	now := n.sim.Now()
	for i, f := range flows {
		n.scheduleCompletion(f, now)
		if n.observer != nil && f.rate != oldRates[i] {
			n.observer(now, f, f.rate)
		}
	}
}

func (n *Network) scheduleCompletion(f *Flow, now simkernel.Time) {
	var at simkernel.Time
	switch {
	case f.remaining <= 0:
		at = now
	case f.rate <= 0:
		at = simkernel.Never
	default:
		at = now + simkernel.Time(f.remaining/f.rate)
	}
	if f.event != nil {
		n.sim.Cancel(f.event)
		f.event = nil
	}
	if at == simkernel.Never {
		return
	}
	f.event = n.sim.At(at, func() { n.complete(f) })
}

func (n *Network) complete(f *Flow) {
	if _, ok := n.flows[f]; !ok {
		return
	}
	n.settle()
	delete(n.flows, f)
	f.event = nil
	f.done = true
	f.remaining = 0
	f.rate = 0
	if n.observer != nil {
		n.observer(n.sim.Now(), f, 0)
	}
	n.rebalance()
	if f.OnComplete != nil {
		f.OnComplete(n.sim.Now())
	}
}

// solve assigns weighted max-min fair rates to the flows in place.
// Exposed via FairShare for direct testing.
func solve(flows []*Flow) {
	for _, f := range flows {
		f.frozen = false
		f.rate = 0
	}
	// Collect the resources in play.
	resSet := make(map[*Resource]struct{})
	for _, f := range flows {
		for r := range f.Usage {
			resSet[r] = struct{}{}
		}
	}
	resources := make([]*Resource, 0, len(resSet))
	for r := range resSet {
		r.load = 0
		resources = append(resources, r)
	}
	sort.Slice(resources, func(i, j int) bool { return resources[i].Name < resources[j].Name })

	active := len(flows)
	fill := 0.0
	for iter := 0; active > 0 && iter <= len(flows)+len(resources)+1; iter++ {
		// Maximum additional fill before some resource saturates.
		delta := math.Inf(1)
		var bottleneck *Resource
		for _, r := range resources {
			r.sumW = 0
			for _, f := range flows {
				if !f.frozen {
					if w, ok := f.Usage[r]; ok {
						r.sumW += w
					}
				}
			}
			if r.sumW == 0 {
				continue
			}
			d := (r.capacity - r.load) / r.sumW
			if d < delta {
				delta = d
				bottleneck = r
			}
		}
		// Maximum additional fill before some flow hits its cap.
		capDelta := math.Inf(1)
		for _, f := range flows {
			if !f.frozen && f.Cap > 0 {
				if d := f.Cap - fill; d < capDelta {
					capDelta = d
				}
			}
		}
		if math.IsInf(delta, 1) && math.IsInf(capDelta, 1) {
			// No binding constraint: flows without usage or caps — should
			// not happen given Start's validation, but guard anyway.
			break
		}
		step := math.Min(delta, capDelta)
		if step < 0 {
			step = 0
		}
		fill += step
		for _, r := range resources {
			if r.sumW > 0 {
				r.load += r.sumW * step
			}
		}
		// Freeze flows that hit the binding constraint.
		if capDelta <= delta {
			for _, f := range flows {
				if !f.frozen && f.Cap > 0 && f.Cap <= fill+1e-12 {
					f.frozen = true
					f.rate = f.Cap
					active--
				}
			}
		}
		if delta <= capDelta && bottleneck != nil {
			for _, f := range flows {
				if !f.frozen {
					if _, ok := f.Usage[bottleneck]; ok {
						f.frozen = true
						f.rate = fill
						active--
					}
				}
			}
		}
	}
	for _, f := range flows {
		if !f.frozen {
			f.rate = fill
		}
	}
}

// FairShare computes weighted max-min fair rates for a standalone set of
// flows (no clock involved) and returns the rate per flow in input order.
// It does not modify remaining volumes. Intended for tests and for the
// analytic model's cross-validation.
func FairShare(flows []*Flow) []float64 {
	solve(flows)
	rates := make([]float64, len(flows))
	for i, f := range flows {
		rates[i] = f.rate
	}
	return rates
}
