package experiments

import (
	"testing"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/ior"
	"repro/internal/stats"
)

func TestDefaultFaultSchemesValidate(t *testing.T) {
	dep, err := cluster.PlaFRIM(cluster.Scenario1Ethernet).Deploy()
	if err != nil {
		t.Fatal(err)
	}
	schemes := DefaultFaultSchemes()
	if len(schemes) != 4 || schemes[0].Name != "healthy" || len(schemes[0].Schedule) != 0 {
		t.Fatalf("unexpected schemes: %+v", schemes)
	}
	for _, s := range schemes {
		if err := s.Schedule.Validate(dep.FS); err != nil {
			t.Errorf("scheme %s invalid: %v", s.Name, err)
		}
	}
}

func resilienceCampaign(t *testing.T, sched faults.Schedule, seed uint64) []Record {
	t.Helper()
	cfg := Config{
		Label:  "r",
		Params: ior.Params{Nodes: 4, PPN: 8, TransferSize: beegfs.MiB, StripeCount: 4}.WithTotalSize(8 * beegfs.GiB),
	}
	proto := Protocol{Repetitions: 6, BlockSize: 3, MinWait: 0.5, MaxWait: 2, Seed: seed}
	recs, err := Campaign{Platform: cluster.PlaFRIM(cluster.Scenario1Ethernet), Proto: proto, Faults: sched}.Run([]Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// Same seed, same fault schedule — bit-equal bandwidths. The deterministic
// fault replay contract at campaign scale.
func TestResilienceCampaignDeterminism(t *testing.T) {
	sched := DefaultFaultSchemes()[1].Schedule // ost-fail
	x := Bandwidths(resilienceCampaign(t, sched, 42))
	y := Bandwidths(resilienceCampaign(t, sched, 42))
	if len(x) != len(y) {
		t.Fatalf("lengths differ: %d vs %d", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("rep %d differs: %v vs %v", i, x[i], y[i])
		}
	}
}

// A mid-run single-OST failure measurably lowers mean write bandwidth —
// and every repetition still completes through the retry path.
func TestOSTFailureLowersBandwidthWithoutAborting(t *testing.T) {
	healthy := resilienceCampaign(t, nil, 42)
	faulty := resilienceCampaign(t, DefaultFaultSchemes()[1].Schedule, 42)
	hs, err := stats.Summarize(Bandwidths(healthy))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := stats.Summarize(Bandwidths(faulty))
	if err != nil {
		t.Fatal(err)
	}
	if fs.Mean >= hs.Mean {
		t.Fatalf("ost-fail mean %.1f not below healthy mean %.1f", fs.Mean, hs.Mean)
	}
	for _, r := range faulty {
		if r.Bandwidth() <= 0 {
			t.Fatalf("rep %d aborted under fault injection", r.Rep)
		}
	}
}

// ExtResilience produces the full scenario x scheme x allocation grid with
// an "all" aggregate row per cell.
func TestExtResilienceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full resilience grid")
	}
	rows, err := ExtResilience(testOpts(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	type cell struct{ scen, fault string }
	agg := map[cell]bool{}
	for _, r := range rows {
		if r.N <= 0 || r.BWMean <= 0 || r.SecMean <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		if r.Alloc == "all" {
			agg[cell{r.Scenario, r.Fault}] = true
			if r.N != 2 {
				t.Fatalf("aggregate row N = %d, want 2: %+v", r.N, r)
			}
		}
	}
	if len(agg) != 8 {
		t.Fatalf("aggregate cells = %d, want 2 scenarios x 4 schemes", len(agg))
	}
}
