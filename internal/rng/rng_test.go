package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("children with different ids produced identical first draw")
	}
	// Same id twice, before consuming the parent, must be reproducible.
	p2 := New(7)
	d1 := p2.Split(1)
	e1 := New(7).Split(1)
	if d1.Uint64() != e1.Uint64() {
		t.Fatal("Split is not stable for equal (seed, id)")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	seen := make(map[int]int)
	for i := 0; i < 60000; i++ {
		v := s.Intn(6)
		if v < 0 || v >= 6 {
			t.Fatalf("Intn(6) out of range: %d", v)
		}
		seen[v]++
	}
	for k := 0; k < 6; k++ {
		if seen[k] < 9000 || seen[k] > 11000 {
			t.Fatalf("Intn(6) value %d drawn %d times; expected ~10000", k, seen[k])
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(sd-2) > 0.05 {
		t.Fatalf("normal sd = %v, want ~2", sd)
	}
}

func TestLogNormalMeanAndCV(t *testing.T) {
	s := New(17)
	const n = 400000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.LogNormal(1.0, 0.08)
		if v <= 0 {
			t.Fatalf("lognormal produced non-positive value %v", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-1.0) > 0.01 {
		t.Fatalf("lognormal mean = %v, want ~1.0", mean)
	}
	if math.Abs(sd/mean-0.08) > 0.01 {
		t.Fatalf("lognormal cv = %v, want ~0.08", sd/mean)
	}
}

func TestLogNormalZeroCV(t *testing.T) {
	s := New(1)
	if v := s.LogNormal(3.5, 0); v != 3.5 {
		t.Fatalf("LogNormal with cv=0 = %v, want exactly the mean", v)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	s := New(19)
	for i := 0; i < 10000; i++ {
		v := s.TruncNormal(0, 1, -0.5, 0.5)
		if v < -0.5 || v > 0.5 {
			t.Fatalf("TruncNormal escaped bounds: %v", v)
		}
	}
}

func TestTruncNormalDegenerate(t *testing.T) {
	s := New(19)
	if v := s.TruncNormal(10, 0, 0, 1); v != 1 {
		t.Fatalf("TruncNormal(sd=0) clamp = %v, want 1", v)
	}
}

func TestExpMean(t *testing.T) {
	s := New(23)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(5)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-5) > 0.1 {
		t.Fatalf("exponential mean = %v, want ~5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		p := New(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformity(t *testing.T) {
	// First element of Perm(4) should be ~uniform over 0..3.
	s := New(29)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[s.Perm(4)[0]]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Perm(4) first element %d drawn %d times; expected ~10000", v, c)
		}
	}
}

func TestShuffleMatchesPermSemantics(t *testing.T) {
	vals := []int{0, 1, 2, 3, 4, 5}
	New(31).Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, 6)
	for _, v := range vals {
		if seen[v] {
			t.Fatalf("Shuffle duplicated element %d", v)
		}
		seen[v] = true
	}
}

func TestUniformRange(t *testing.T) {
	s := New(37)
	for i := 0; i < 10000; i++ {
		v := s.UniformRange(60, 1800)
		if v < 60 || v >= 1800 {
			t.Fatalf("UniformRange out of bounds: %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkLogNormal(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.LogNormal(1, 0.08)
	}
}
