package beegfs

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/simkernel"
)

// With every registered target offline, creation fails with a descriptive
// error instead of a chooser panic or a zero-target file.
func TestCreateAllTargetsOfflineError(t *testing.T) {
	_, fs := newFS(t, testConfig())
	for _, tg := range fs.Mgmtd().All() {
		if err := fs.Mgmtd().SetOnline(tg.ID, false); err != nil {
			t.Fatal(err)
		}
	}
	_, err := fs.CreateWithPattern("/f", StripePattern{Count: 4, ChunkSize: 512 * KiB}, nil)
	if err == nil {
		t.Fatal("create succeeded with all targets offline")
	}
	if !errors.Is(err, ErrAllTargetsOffline) {
		t.Fatalf("error %q does not wrap ErrAllTargetsOffline", err)
	}
	if !strings.Contains(err.Error(), "8") {
		t.Fatalf("error %q does not name the offline target count", err)
	}
}

// With fewer online targets than the requested stripe count, the pattern
// shrinks to the survivors instead of failing the create.
func TestCreateShrinksStripeCountToOnline(t *testing.T) {
	_, fs := newFS(t, testConfig())
	for _, id := range []int{101, 102, 103, 201, 202} {
		if err := fs.Mgmtd().SetOnline(id, false); err != nil {
			t.Fatal(err)
		}
	}
	f, err := fs.CreateWithPattern("/f", StripePattern{Count: 8, ChunkSize: 512 * KiB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Pattern.Count != 3 || len(f.Targets) != 3 {
		t.Fatalf("pattern count = %d, targets = %d, want 3", f.Pattern.Count, len(f.Targets))
	}
	for _, id := range f.TargetIDs() {
		if !fs.Mgmtd().IsOnline(id) {
			t.Fatalf("offline target %d allocated", id)
		}
	}
}

// abortTargetAt scripts the bare fault mechanics (what internal/faults
// does, without the import cycle): fail the target and abort its flows.
func abortTargetAt(sim *simkernel.Simulation, fs *FileSystem, id int, at float64) {
	sim.After(at, func() {
		_ = fs.Mgmtd().SetOnline(id, false)
		tg := fs.Storage().TargetByID(id)
		tg.SetFailed(true)
		for _, fl := range fs.Network().FlowsUsing(tg.Resource()) {
			fs.Network().Abort(fl)
		}
	})
}

// With retries disabled, a mid-run abort surfaces a structured error
// through OnError — the op neither panics nor completes.
func TestAbortWithRetriesDisabledSurfacesError(t *testing.T) {
	sim, fs := newFS(t, testConfig()) // testConfig has no retry policy
	client := fs.NewClient("n1", 0)
	f, err := fs.CreateWithPattern("/f", StripePattern{Count: 1, ChunkSize: 512 * KiB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var opErr error
	completed := false
	if _, err := fs.StartWrite(&WriteOp{
		Client: client, File: f, Length: 1764 * MiB, TransferSize: MiB,
		OnComplete: func(simkernel.Time) { completed = true },
		OnError:    func(err error) { opErr = err },
	}); err != nil {
		t.Fatal(err)
	}
	abortTargetAt(sim, fs, f.Targets[0].ID, 0.25)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if completed {
		t.Fatal("aborted op completed")
	}
	var ioErr *IOFailedError
	if !errors.As(opErr, &ioErr) {
		t.Fatalf("error = %v, want *IOFailedError", opErr)
	}
	if ioErr.Attempts != 0 || ioErr.Op != "write" {
		t.Fatalf("IOFailedError = %+v", ioErr)
	}
}

// With retries enabled, the remaining volume is re-issued after the fault
// clears: half the bytes land before the fault, half after recovery, and
// the completion time reflects the outage plus the retry timeout.
func TestRetryReissuesRemainingVolume(t *testing.T) {
	cfg := testConfig()
	cfg.RetryTimeout = 0.5
	cfg.RetryBackoffBase = 0.5
	cfg.RetryMax = 8
	sim, fs := newFS(t, cfg)
	client := fs.NewClient("n1", 0)
	f, err := fs.CreateWithPattern("/f", StripePattern{Count: 1, ChunkSize: 512 * KiB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	id := f.Targets[0].ID
	var done simkernel.Time
	var opErr error
	if _, err := fs.StartWrite(&WriteOp{
		Client: client, File: f, Length: 1764 * MiB, TransferSize: MiB,
		OnComplete: func(at simkernel.Time) { done = at },
		OnError:    func(err error) { opErr = err },
	}); err != nil {
		t.Fatal(err)
	}
	// Down at 0.5s (half the volume written), back at 0.75s. The first
	// retry probe at 0.5+RetryTimeout=1.0s finds the target recovered and
	// re-issues the remaining 882 MiB: completion at 1.0+0.5 = 1.5s.
	abortTargetAt(sim, fs, id, 0.5)
	sim.After(0.75, func() {
		fs.Storage().TargetByID(id).SetFailed(false)
		_ = fs.Mgmtd().SetOnline(id, true)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if opErr != nil {
		t.Fatalf("retryable fault surfaced error: %v", opErr)
	}
	if !almost(float64(done), 1.5, 1e-6) {
		t.Fatalf("write finished at %v, want 1.5s", done)
	}
	if fs.Storage().TargetByID(id).Writers() != 0 {
		t.Fatal("target not released after retried write")
	}
}
