package simkernel

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := New()
	var seen []Time
	s.At(1.5, func() { seen = append(seen, s.Now()) })
	s.At(4.25, func() { seen = append(seen, s.Now()) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if seen[0] != 1.5 || seen[1] != 4.25 {
		t.Fatalf("clock readings = %v", seen)
	}
	if s.Now() != 4.25 {
		t.Fatalf("final clock = %v, want 4.25", s.Now())
	}
}

func TestAfterIsRelative(t *testing.T) {
	s := New()
	var fired Time
	s.At(10, func() {
		s.After(2.5, func() { fired = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 12.5 {
		t.Fatalf("After fired at %v, want 12.5", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(1, func() {})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeAfterPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(1, func() { fired = true })
	if !s.Cancel(e) {
		t.Fatal("Cancel of pending event returned false")
	}
	if s.Cancel(e) {
		t.Fatal("second Cancel returned true")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelNil(t *testing.T) {
	s := New()
	if s.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestReschedulePending(t *testing.T) {
	s := New()
	var order []string
	e := s.At(10, func() { order = append(order, "moved") })
	s.At(5, func() { order = append(order, "fixed") })
	s.Reschedule(e, 1)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "moved" || order[1] != "fixed" {
		t.Fatalf("order = %v, want [moved fixed]", order)
	}
}

// TestRescheduleKeepsFIFORank pins the contract the component-scoped
// rebalancer relies on: rescheduling a pending event — even to a time
// where other events already sit, even to its own current time — keeps
// its original scheduling sequence, so equal-time tie-breaks are decided
// by when the events were first scheduled, not by who was rescheduled
// last. This is what makes "skip the Reschedule when the completion
// instant is unchanged" indistinguishable from calling it.
func TestRescheduleKeepsFIFORank(t *testing.T) {
	s := New()
	var order []string
	a := s.At(10, func() { order = append(order, "a") })
	b := s.At(10, func() { order = append(order, "b") })
	s.At(10, func() { order = append(order, "c") })
	// Move b away and back, and reschedule a to its current time: the
	// original a, b, c scheduling order must survive both.
	s.Reschedule(b, 20)
	s.Reschedule(b, 10)
	s.Reschedule(a, 10)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v, want [a b c]", order)
	}
}

// TestRescheduleFiredEventGetsFreshRank is the contract's flip side: a
// fired event that is re-queued is a new scheduling decision and fires
// after events already waiting at the same time.
func TestRescheduleFiredEventGetsFreshRank(t *testing.T) {
	s := New()
	var order []string
	var e *Event
	e = s.At(1, func() { order = append(order, "requeued") })
	s.At(2, func() {
		s.At(5, func() { order = append(order, "waiting") })
		s.Reschedule(e, 5)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"requeued", "waiting", "requeued"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestRescheduleFiredEventRequeues(t *testing.T) {
	s := New()
	count := 0
	var e *Event
	e = s.At(1, func() { count++ })
	s.At(2, func() { s.Reschedule(e, 3) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("event fired %d times, want 2 (original + requeued)", count)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, tt := range []Time{1, 2, 3, 4, 5} {
		tt := tt
		s.At(tt, func() { fired = append(fired, tt) })
	}
	if err := s.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Fatalf("RunUntil(3) fired %d events, want 3", len(fired))
	}
	if s.Now() != 3 {
		t.Fatalf("clock after RunUntil = %v, want 3", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
}

func TestRunUntilAdvancesToDeadlineWhenIdle(t *testing.T) {
	s := New()
	if err := s.RunUntil(42); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 42 {
		t.Fatalf("idle RunUntil left clock at %v, want 42", s.Now())
	}
}

func TestMaxEventsGuard(t *testing.T) {
	s := New()
	s.MaxEvents = 10
	var loop func()
	loop = func() { s.After(1, loop) }
	s.After(1, loop)
	if err := s.Run(); err == nil {
		t.Fatal("runaway loop did not trip MaxEvents")
	}
}

func TestExecutedCount(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.At(Time(i), func() {})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Executed() != 7 {
		t.Fatalf("Executed = %d, want 7", s.Executed())
	}
}

// Property: for any set of non-negative times, events fire in nondecreasing
// time order and the final clock equals the max time.
func TestPropertyMonotoneFiring(t *testing.T) {
	check := func(raw []uint16) bool {
		s := New()
		var fired []Time
		var maxT Time
		for _, r := range raw {
			tt := Time(r) / 8
			if tt > maxT {
				maxT = tt
			}
			s.At(tt, func() { fired = append(fired, tt) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(raw) == 0 || s.Now() == maxT
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.At(Time(j%97), func() {})
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRequeueBarrier pins the property simnet's batched flush is built
// on: re-queueing a fired event at the *current* instant gives it a
// fresh sequence number, so it fires after every event already queued at
// that instant — it is a same-instant barrier. Cascading events that
// re-arm the barrier form successive waves within the one instant.
func TestRequeueBarrier(t *testing.T) {
	s := New()
	var order []string
	var barrier *Event
	barrier = s.At(0, func() { order = append(order, "flush") })
	// Three same-instant events queued after the barrier's first firing
	// each "arm" it again by re-queueing it at now.
	for _, name := range []string{"a", "b", "c"} {
		s.At(1, func() {
			order = append(order, name)
			s.Reschedule(barrier, s.Now())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// The barrier fires once at t=0, then exactly once more at t=1, after
	// all three events — the last two re-arms re-queue a *pending* event
	// to its current time, which is a no-op on its rank.
	want := []string{"flush", "a", "b", "c", "flush"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 1 {
		t.Fatalf("clock = %v, want 1", s.Now())
	}
}

// TestNextAt checks the earliest-pending-time probe used by the
// instant-lockstep differential harnesses.
func TestNextAt(t *testing.T) {
	s := New()
	if _, ok := s.NextAt(); ok {
		t.Fatal("NextAt on empty queue reported an event")
	}
	s.At(3, func() {})
	s.At(1, func() {
		s.At(1, func() {}) // same-instant cascade keeps NextAt at now
	})
	if at, ok := s.NextAt(); !ok || at != 1 {
		t.Fatalf("NextAt = %v, %v; want 1, true", at, ok)
	}
	s.Step()
	if at, ok := s.NextAt(); !ok || at != 1 {
		t.Fatalf("NextAt after cascade = %v, %v; want 1, true", at, ok)
	}
	s.Step()
	if at, ok := s.NextAt(); !ok || at != 3 {
		t.Fatalf("NextAt = %v, %v; want 3, true", at, ok)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.NextAt(); ok {
		t.Fatal("NextAt after drain reported an event")
	}
}

// TestReservePreservesOrderAndGrows checks that pre-sizing the heap spine
// is invisible to the determinism contract: a reserved queue fires the
// same order as an unreserved one, Reserve mid-stream keeps pending
// events, and undersized or repeated calls are no-ops.
func TestReservePreservesOrderAndGrows(t *testing.T) {
	run := func(reserve int) []int {
		s := New()
		if reserve > 0 {
			s.Reserve(reserve)
		}
		var order []int
		for j := 0; j < 200; j++ {
			j := j
			s.At(Time(j%13), func() { order = append(order, j) })
			if j == 100 {
				// Mid-stream growth must carry the queued half over.
				s.Reserve(4 * reserve)
			}
		}
		s.Reserve(1) // undersized: no-op
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	base := run(0)
	reserved := run(64)
	if len(base) != 200 || len(reserved) != 200 {
		t.Fatalf("fired %d/%d events, want 200", len(base), len(reserved))
	}
	for i := range base {
		if base[i] != reserved[i] {
			t.Fatalf("order diverged at %d: %d vs %d", i, base[i], reserved[i])
		}
	}
}

// heapChurn drives the queue through the access pattern the scale
// campaigns generate: build up a large pending set, then interleave
// reschedules (the rebalancer's hot call) with dispatch until drained.
func heapChurn(b *testing.B, n int, reserve bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		if reserve {
			s.Reserve(n)
		}
		// Deterministic xorshift times; no rand dependency in the hot loop.
		state := uint64(0x9e3779b97f4a7c15)
		next := func() Time {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return Time(state % 1000)
		}
		events := make([]*Event, n)
		for j := range events {
			events[j] = s.At(next(), func() {})
		}
		for _, e := range events {
			s.Reschedule(e, e.When()+next())
		}
		for s.Step() {
		}
	}
}

// BenchmarkHeapChurn100k measures queue maintenance at the scale
// campaign's high-water mark; the Reserved variant pre-sizes the spine.
func BenchmarkHeapChurn100k(b *testing.B)         { heapChurn(b, 100_000, false) }
func BenchmarkHeapChurn100kReserved(b *testing.B) { heapChurn(b, 100_000, true) }
