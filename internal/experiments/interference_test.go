package experiments

import (
	"testing"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/ior"
	"repro/internal/stats"
)

func TestInterferenceValidate(t *testing.T) {
	good := Interference{Prob: 0.5, Severity: 0.5, Duration: 5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Interference{
		{Prob: -0.1, Severity: 0.5, Duration: 1},
		{Prob: 1.5, Severity: 0.5, Duration: 1},
		{Prob: 0.5, Severity: 0, Duration: 1},
		{Prob: 0.5, Severity: 1.5, Duration: 1},
		{Prob: 0.5, Severity: 0.5, Duration: -1},
	}
	for i, b := range bad {
		if b.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestInterferenceWidensSpread(t *testing.T) {
	run := func(inj *Interference) []float64 {
		cfg := Config{
			Label:  "x",
			Params: ior.Params{Nodes: 8, PPN: 8, TransferSize: beegfs.MiB, StripeCount: 8}.WithTotalSize(32 * beegfs.GiB),
		}
		proto := Protocol{Repetitions: 30, BlockSize: 10, MinWait: 0.5, MaxWait: 2, Seed: 9}
		recs, err := Campaign{Platform: cluster.PlaFRIM(cluster.Scenario1Ethernet), Proto: proto, Interference: inj}.Run([]Config{cfg})
		if err != nil {
			t.Fatal(err)
		}
		return Bandwidths(recs)
	}
	clean := run(nil)
	// Hit half the runs with a 60%-capacity loss on one server NIC for a
	// good chunk of the ~15 s run.
	noisy := run(&Interference{Prob: 0.5, Severity: 0.4, Duration: 10, MaxStart: 3})
	cleanSD := stats.SD(clean)
	noisySD := stats.SD(noisy)
	if noisySD < cleanSD*1.5 {
		t.Fatalf("interference did not widen the spread: sd %v vs %v", noisySD, cleanSD)
	}
	// Interference only slows runs down.
	if stats.Mean(noisy) >= stats.Mean(clean) {
		t.Fatalf("interference increased mean bandwidth: %v vs %v", stats.Mean(noisy), stats.Mean(clean))
	}
	// The protocol still recovers the clean behaviour in the upper tail:
	// unaffected repetitions reach the usual peak.
	if stats.Quantile(noisy, 0.9) < stats.Quantile(clean, 0.1)*0.95 {
		t.Fatalf("no unaffected repetitions visible: p90 %v vs clean p10 %v",
			stats.Quantile(noisy, 0.9), stats.Quantile(clean, 0.1))
	}
}

func TestInterferenceBadConfigSurfacesError(t *testing.T) {
	cfg := Config{
		Label:  "x",
		Params: ior.Params{Nodes: 1, PPN: 1, TransferSize: beegfs.MiB, StripeCount: 1}.WithTotalSize(beegfs.GiB),
	}
	proto := Protocol{Repetitions: 1, BlockSize: 1, Seed: 1}
	bad := &Interference{Prob: 2, Severity: 0.5, Duration: 1}
	if _, err := (Campaign{Platform: cluster.PlaFRIM(cluster.Scenario1Ethernet), Proto: proto, Interference: bad}).Run([]Config{cfg}); err == nil {
		t.Fatal("invalid interference config accepted")
	}
}

func TestComparePolicies(t *testing.T) {
	res, err := ComparePolicies(2, Options{Reps: 10, Seed: 3, FastProtocol: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxCountAggregate <= 0 || res.AdaptedAggregate <= 0 {
		t.Fatalf("aggregates = %+v", res)
	}
	// The paper's conclusion: adapting per-application stripe counts to
	// avoid target sharing does NOT beat "everyone uses the maximum".
	if res.Gain < -0.05 {
		t.Fatalf("adaptive policy beat max-count by %.1f%% — contradicts lesson 7's consequence", -res.Gain*100)
	}
}

func TestComparePoliciesRejectsSingleApp(t *testing.T) {
	if _, err := ComparePolicies(1, Options{Reps: 1}); err == nil {
		t.Fatal("apps=1 accepted")
	}
}
