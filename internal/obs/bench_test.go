package obs

import "testing"

// benchStats mimics the per-deployment Stats structs the simulation layers
// keep: plain fields behind one nil pointer check. The Disabled benchmark
// measures what every instrumented hot-path site costs when observability
// is off — it should be indistinguishable from the bare loop.
type benchStats struct {
	events    uint64
	highWater uint64
	hist      Log2Hist
}

var sinkU64 uint64

func BenchmarkStatsSiteDisabled(b *testing.B) {
	var st *benchStats
	var depth uint64
	for i := 0; i < b.N; i++ {
		depth = uint64(i) & 1023
		if st != nil {
			st.events++
			if depth > st.highWater {
				st.highWater = depth
			}
		}
	}
	sinkU64 = depth
}

func BenchmarkStatsSiteEnabled(b *testing.B) {
	st := &benchStats{}
	var depth uint64
	for i := 0; i < b.N; i++ {
		depth = uint64(i) & 1023
		if st != nil {
			st.events++
			if depth > st.highWater {
				st.highWater = depth
			}
		}
	}
	sinkU64 = st.events + depth
}

func BenchmarkLog2HistObserve(b *testing.B) {
	var h Log2Hist
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
	sinkU64 = h.Sum
}

func BenchmarkRegistryAdd(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < b.N; i++ {
		r.Add("bench/counter", 1)
	}
	sinkU64 = r.Counter("bench/counter")
}

func BenchmarkRegistryAddNil(b *testing.B) {
	var r *Registry
	for i := 0; i < b.N; i++ {
		r.Add("bench/counter", 1)
	}
}

func BenchmarkRegistryMergeHist(b *testing.B) {
	r := NewRegistry()
	var h Log2Hist
	for v := uint64(0); v < 1000; v++ {
		h.Observe(v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.MergeHist("bench/hist", &h)
	}
}
