package ior_test

import (
	"fmt"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/ior"
)

// The paper's core experiment as three calls: deploy PlaFRIM, build the
// IOR invocation (8 nodes x 8 ppn, 32 GiB shared file, 1 MiB transfers),
// execute. Deterministic platform (no jitter source) for a stable output.
func ExampleExecute() {
	dep, err := cluster.PlaFRIM(cluster.Scenario1Ethernet).Deploy()
	if err != nil {
		fmt.Println(err)
		return
	}
	params := ior.Params{
		Nodes: 8, PPN: 8,
		TransferSize: 1 * beegfs.MiB,
		StripeCount:  4, // PlaFRIM's default -> always a (1,3) allocation
	}.WithTotalSize(32 * beegfs.GiB)
	res, err := ior.Execute(dep.FS, dep.Nodes(8), params, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%.0f MiB/s on targets %v\n", res.Bandwidth, res.TargetIDs)
	// Output:
	// 1465 MiB/s on targets [101 201 202 203]
}
