package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/simnet
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSolve8Flows-4   	    1000	       316.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkSolve64Flows   	    1000	      3557 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig6   	       1	 123456789 ns/op	      2210 MiB/s@count8
PASS
ok  	repro/internal/simnet	0.045s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3", len(doc.Benchmarks))
	}
	// Sorted by name; the -4 GOMAXPROCS suffix is stripped.
	if doc.Benchmarks[0].Name != "BenchmarkFig6" || doc.Benchmarks[1].Name != "BenchmarkSolve64Flows" || doc.Benchmarks[2].Name != "BenchmarkSolve8Flows" {
		t.Fatalf("names = %v %v %v", doc.Benchmarks[0].Name, doc.Benchmarks[1].Name, doc.Benchmarks[2].Name)
	}
	s8 := doc.Benchmarks[2]
	if s8.Iterations != 1000 || s8.Metrics["ns/op"] != 316.2 || s8.Metrics["allocs/op"] != 0 {
		t.Fatalf("solve8 = %+v", s8)
	}
	fig := doc.Benchmarks[0]
	if fig.Metrics["MiB/s@count8"] != 2210 {
		t.Fatalf("custom metric lost: %+v", fig)
	}
	if doc.Context["goos"] != "linux" || doc.Context["cpu"] == "" {
		t.Fatalf("context = %+v", doc.Context)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("empty bench output accepted")
	}
}
