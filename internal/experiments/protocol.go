// Package experiments implements the paper's experimental campaign: the
// randomized execution protocol of §III-C, concurrent-application runs
// (§IV-D, Equation 1) and the per-figure experiment definitions that
// regenerate every quantitative figure of the evaluation.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/ior"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/simkernel"
)

// Protocol is the §III-C execution protocol:
//
//  1. generate a list of all benchmark runs (Repetitions per experiment);
//  2. divide the list into blocks of BlockSize executions;
//  3. execute the blocks in random order, one run at a time;
//  4. impose a random wait (MinWait..MaxWait seconds of virtual time)
//     between blocks.
//
// Randomized block order and inter-block waits decorrelate repetitions
// from transient system state; in the simulator, the "system state" is the
// per-run capacity jitter redrawn by ReJitter. Because only time
// *differences* enter any result (bandwidth = volume / (end - start)), the
// inter-block waits provably cannot change a record; the engine therefore
// keeps the wait parameters for protocol fidelity but does not burn
// virtual time on them.
type Protocol struct {
	Repetitions int
	BlockSize   int
	MinWait     float64 // seconds
	MaxWait     float64
	Seed        uint64
}

// DefaultProtocol reproduces the paper: 100 repetitions, blocks of 10,
// waits of 1-30 minutes.
func DefaultProtocol(seed uint64) Protocol {
	return Protocol{Repetitions: 100, BlockSize: 10, MinWait: 60, MaxWait: 1800, Seed: seed}
}

// Validate reports protocol errors.
func (p Protocol) Validate() error {
	if p.Repetitions <= 0 {
		return fmt.Errorf("experiments: Repetitions must be positive")
	}
	if p.BlockSize <= 0 {
		return fmt.Errorf("experiments: BlockSize must be positive")
	}
	if p.MinWait < 0 || p.MaxWait < p.MinWait {
		return fmt.Errorf("experiments: bad wait range [%v,%v]", p.MinWait, p.MaxWait)
	}
	return nil
}

// Config is one experiment: an IOR parameter set, optionally run as
// several concurrent applications on disjoint node sets.
type Config struct {
	Label string
	// Params describes ONE application's workload. With Apps > 1, each
	// application runs these parameters on its own Params.Nodes nodes.
	Params ior.Params
	// Apps is the number of concurrent applications (default 1).
	Apps int
}

func (c Config) apps() int {
	if c.Apps <= 0 {
		return 1
	}
	return c.Apps
}

// AppResult is one application's outcome within a (possibly concurrent)
// run.
type AppResult struct {
	App    string
	Result ior.Result
	Alloc  core.Allocation
}

// Record is one repetition's outcome.
type Record struct {
	Label string
	Rep   int
	// Apps holds each application's result (one entry for single-app
	// experiments).
	Apps []AppResult
	// Aggregate is the Equation-1 aggregate bandwidth:
	// sum(vol_i) / (max(end_i) - min(start_i)). For a single application
	// it equals the IOR-reported bandwidth.
	Aggregate float64
	// SharedTargets is the number of storage targets used by more than
	// one application (0 for single-app runs).
	SharedTargets int
}

// Bandwidth returns the single-app bandwidth (first app's) — a
// convenience for single-application campaigns.
func (r Record) Bandwidth() float64 {
	if len(r.Apps) == 0 {
		return 0
	}
	return r.Apps[0].Result.Bandwidth
}

// Alloc returns the first app's allocation.
func (r Record) Alloc() core.Allocation {
	if len(r.Apps) == 0 {
		return core.Allocation{}
	}
	return r.Apps[0].Alloc
}

// Campaign executes experiments on a platform under a protocol.
//
// Every repetition is an independent simulation: the engine deploys a
// private cluster/file-system instance per repetition, seeds it with a
// pre-split rng stream and the round-robin cursor position the serial
// §III-C protocol would have reached, and runs repetitions concurrently on
// a worker pool. Results are merged back in execution order (the
// randomized block order), so the output is bit-equal for every worker
// count — Workers only changes wall-clock time.
type Campaign struct {
	// Platform describes the system under test. Each repetition deploys
	// a fresh instance (its own clock, flow network and file system), so
	// no mutable state is shared between repetitions.
	Platform cluster.Platform
	Proto    Protocol
	// Workers bounds how many repetitions simulate concurrently.
	// 0 selects runtime.NumCPU(); 1 runs everything inline on the
	// calling goroutine (the serial path). Results are identical for
	// every value.
	Workers int
	// Interference, when non-nil, injects transient capacity-loss events
	// (§III-C item ii) with the configured probability per repetition.
	Interference *Interference
	// Faults, when non-empty, is armed at the start of every repetition
	// with times relative to the repetition's beginning: each run then
	// experiences the same mid-run failure/recovery script (the resilience
	// campaign's operating mode). Runs survive via the client retry path;
	// a run whose retry budget is exhausted fails the campaign with a
	// structured error.
	Faults faults.Schedule
	// BackgroundCreateRate, when positive, emulates other users of the
	// production system creating files (at this rate per second of
	// virtual time) while an experiment's applications are opening
	// theirs. Each creation advances the round-robin chooser's cursor, so
	// two concurrent applications can land on overlapping target sets —
	// without it, back-to-back creations at stripe count 4 on PlaFRIM's
	// 8-target cycle are always complementary and never share (§IV-D).
	BackgroundCreateRate float64
	// Setup, when non-nil, runs on every repetition's fresh deployment
	// before the repetition starts (e.g. pre-failing a target). It may be
	// called from worker goroutines concurrently; it must only touch the
	// deployment it is handed.
	Setup func(*cluster.Deployment) error
	// Quiesce, when non-nil, runs after a repetition's applications have
	// finished and results are gathered but BEFORE benchmark files are
	// removed: the hook's chance to drain remaining simulation activity
	// (fault recoveries, pending resyncs) and assert invariants against the
	// still-present files. Same concurrency caveat as Setup.
	Quiesce func(*cluster.Deployment, *Record) error
	// Inspect, when non-nil, runs right after a repetition finishes, with
	// the repetition's deployment and completed record (post-cleanup
	// assertions, extra metrics). Same concurrency caveat as Setup.
	Inspect func(*cluster.Deployment, *Record) error
	// Metrics, when non-nil, enables per-repetition activity counters on
	// every deployment and merges them into the registry after each
	// repetition. Every merged quantity is order-independent, so the
	// registry contents do not depend on Workers; only the host-process
	// metrics (namespaced under obs.RuntimePrefix: wall-clock timings,
	// pool hit rates) vary between runs. The simulated numbers are
	// bit-identical with or without it.
	Metrics *obs.Registry
	// Tracer, when non-nil, records one repetition's full event timeline
	// (the first repetition to start claims it; with Workers <= 1 that is
	// deterministically the first scheduled unit).
	Tracer *obs.Tracer
	// Pipeline, when non-nil, supersedes Metrics and Tracer: each
	// repetition records into a private collector shard whose flush routes
	// metric names through the pipeline's rules and folds values into the
	// pipeline's registry (order-independently, so files stay identical at
	// any Workers). Repetition completions stream to the progress table
	// (StartRun/RepDone) and intermediate snapshots to the pipeline's
	// sinks, which is what the live /metrics and /runs endpoints serve.
	// The tracer, if any sink enabled one, claims one repetition exactly
	// as the plain Tracer field does.
	Pipeline *obs.Pipeline
}

// recorder returns the per-repetition metric sink: a pipeline collector
// shard (released by the caller) when the pipeline is attached, else the
// plain shared registry. Both may be nil (observability off).
func (c Campaign) recorder() (obs.Recorder, *obs.Collector) {
	if c.Pipeline != nil {
		col := c.Pipeline.Collector()
		return col, col
	}
	if c.Metrics != nil {
		return c.Metrics, nil
	}
	return nil, nil
}

// tracer returns the event tracer in effect: the pipeline's (when a trace
// or utilization sink enabled one), else the plain Tracer field. May be
// nil; Tracer.Claim is nil-safe.
func (c Campaign) tracer() *obs.Tracer {
	if c.Pipeline != nil {
		return c.Pipeline.Tracer()
	}
	return c.Tracer
}

// unit is one repetition of one configuration, annotated during phase 1
// with everything it needs to run as an isolated simulation.
type unit struct {
	cfg int
	rep int
	// src is the unit's private rng stream, split from the campaign
	// source at a fixed point so it does not depend on scheduling.
	src *rng.Source
	// cursor is the round-robin chooser position at the unit's start,
	// precomputed by replaying the serial protocol's create sequence.
	cursor int
}

// Run executes the full randomized campaign and returns one Record per
// (experiment, repetition) in execution order — the §III-C randomized
// block order, independent of Workers.
func (c Campaign) Run(cfgs []Config) ([]Record, error) {
	if err := c.Proto.Validate(); err != nil {
		return nil, err
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("experiments: no configurations")
	}
	if c.Interference != nil {
		if err := c.Interference.Validate(); err != nil {
			return nil, err
		}
	}
	src := rng.New(c.Proto.Seed)
	// Step 1: the full run list, per experiment.
	var list []unit
	for ci := range cfgs {
		for rep := 0; rep < c.Proto.Repetitions; rep++ {
			list = append(list, unit{cfg: ci, rep: rep})
		}
	}
	// Step 2: blocks of BlockSize.
	var blocks [][]unit
	for start := 0; start < len(list); start += c.Proto.BlockSize {
		end := start + c.Proto.BlockSize
		if end > len(list) {
			end = len(list)
		}
		blocks = append(blocks, list[start:end])
	}
	// Step 3: random block order, flattened into the execution schedule.
	order := src.Perm(len(blocks))
	exec := make([]unit, 0, len(list))
	for _, oi := range order {
		exec = append(exec, blocks[oi]...)
	}
	// Phase 1 (serial, cheap): derive each unit's private rng stream and
	// its round-robin cursor seed by walking the execution order once.
	// Splitting is keyed by (cfg, rep) so a unit's stream is a pure
	// function of the campaign seed and its identity; the cursor replays
	// the serial protocol's file-creation arithmetic (each create
	// advances the cursor by its stripe count, background creates
	// included), which is the cross-repetition coupling behind Figure
	// 6a's bimodality.
	nTargets := c.Platform.FS.Hosts * c.Platform.FS.TargetsPerHost
	cursor := 0
	for i := range exec {
		u := &exec[i]
		u.src = src.Split(uint64(u.cfg)<<32 | uint64(u.rep))
		u.cursor = cursor
		cursor = (cursor + c.cursorAdvance(cfgs[u.cfg], u, nTargets)) % nTargets
	}
	// Progress tracking: one run per experiment label, with the total
	// known up front so /runs can estimate completion.
	for _, cfg := range cfgs {
		c.Pipeline.StartRun(cfg.Label, c.Proto.Repetitions)
	}
	// Phase 2: run the units on the worker pool, each as an isolated
	// simulation, and merge results by execution position.
	return c.runUnits(cfgs, exec)
}

// cursorAdvance returns how far one unit's file creations move the
// round-robin cursor: one create of the effective stripe count per
// application file (one for shared-file runs, one per rank for
// file-per-process), plus one default-pattern create per background
// arrival. Background arrivals are replayed from a probe split of the
// unit's stream — Split does not consume parent state, so the runtime draw
// sees the identical sequence.
func (c Campaign) cursorAdvance(cfg Config, u *unit, nTargets int) int {
	if nTargets <= 0 {
		return 0
	}
	clamp := func(k int) int {
		if k > nTargets {
			return nTargets
		}
		return k
	}
	k := cfg.Params.StripeCount
	if k <= 0 {
		k = c.Platform.FS.DefaultPattern.Count
	}
	files := 1
	if cfg.Params.Pattern == ior.FilePerProcess {
		files = cfg.Params.Nodes * cfg.Params.PPN
	}
	advance := cfg.apps() * files * clamp(k)
	if c.BackgroundCreateRate > 0 {
		probe := u.src.Split(bgSplitID)
		kbg := clamp(c.Platform.FS.DefaultPattern.Count)
		for t := probe.Exp(1 / c.BackgroundCreateRate); t < 1.0; t += probe.Exp(1 / c.BackgroundCreateRate) {
			advance += kbg
		}
	}
	return advance % nTargets
}

// Child-stream ids within a unit's source. Fixed and disjoint, so adding a
// consumer never perturbs the others.
const (
	interferenceSplitID = 2
	bgSplitID           = 3
	appSplitBase        = 16
)

// runUnits executes the schedule on min(Workers, len(exec)) goroutines.
// Each worker claims the next unclaimed execution position (an atomic
// counter), runs it on a private deployment, and stores the result in its
// slot. On error the first failing unit *by execution position* wins —
// exactly the error the serial run would have returned — and positions
// after it are skipped (they cannot change the outcome).
func (c Campaign) runUnits(cfgs []Config, exec []unit) ([]Record, error) {
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(exec) {
		workers = len(exec)
	}
	if workers <= 1 {
		// Serial path: identical semantics, no goroutines.
		out := make([]Record, 0, len(exec))
		for i := range exec {
			rec, err := c.runUnit(cfgs[exec[i].cfg], &exec[i])
			if err != nil {
				return nil, err
			}
			out = append(out, rec)
		}
		return out, nil
	}
	recs := make([]Record, len(exec))
	errs := make([]error, len(exec))
	var next atomic.Int64
	next.Store(-1)
	minErr := atomic.Int64{}
	minErr.Store(math.MaxInt64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(exec) {
					return
				}
				if int64(i) > minErr.Load() {
					// A unit after the earliest known error cannot be
					// reported; skipping it keeps the returned error
					// deterministic and saves work.
					continue
				}
				rec, err := c.runUnit(cfgs[exec[i].cfg], &exec[i])
				if err != nil {
					errs[i] = err
					for {
						cur := minErr.Load()
						if int64(i) >= cur || minErr.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					continue
				}
				recs[i] = rec
			}
		}()
	}
	wg.Wait()
	if m := minErr.Load(); m != math.MaxInt64 {
		return nil, errs[m]
	}
	return recs, nil
}

// deployUnit instantiates a private deployment for one unit: the platform
// with a cloned chooser (so concurrent units share no chooser state),
// cursor-seeded to the unit's scheduled position.
func (c Campaign) deployUnit(u *unit) (*cluster.Deployment, error) {
	p := c.Platform
	if cl, ok := p.FS.Chooser.(beegfs.CloneChooser); ok {
		p.FS.Chooser = cl.Clone()
	}
	dep, err := p.Deploy()
	if err != nil {
		return nil, err
	}
	if cc, ok := p.FS.Chooser.(beegfs.CursorChooser); ok {
		cc.SetCursor(u.cursor)
	}
	return dep, nil
}

// runUnit executes one repetition on a fresh deployment: redraw system
// state, then run the experiment's application(s) concurrently and gather
// Equation 1.
func (c Campaign) runUnit(cfg Config, u *unit) (Record, error) {
	dep, err := c.deployUnit(u)
	if err != nil {
		return Record{}, err
	}
	// Observability: per-repetition counters merge into the recorder (a
	// pipeline collector shard, or the shared registry directly) at the
	// end of the repetition; the tracer attaches to the first repetition
	// that claims it.
	var st *cluster.RunStats
	var fstats faults.Stats
	var wallStart time.Time
	mrec, col := c.recorder()
	if mrec != nil {
		st = dep.EnableStats()
		wallStart = time.Now()
	}
	if tr := c.tracer(); tr.Claim() {
		dep.AttachTracer(tr)
	}
	if c.Setup != nil {
		if err := c.Setup(dep); err != nil {
			return Record{}, err
		}
	}
	rep := u.rep
	apps := cfg.apps()
	// Split all child streams before any direct draw on u.src (the
	// repo-wide "split first, draw later" contract).
	interSrc := u.src.Split(interferenceSplitID)
	bgSrc := u.src.Split(bgSplitID)
	appSrcs := make([]*rng.Source, apps)
	for a := range appSrcs {
		appSrcs[a] = u.src.Split(appSplitBase + uint64(a))
	}
	dep.ReJitter(u.src)
	if c.Interference != nil {
		c.Interference.arm(dep, interSrc)
	}
	if len(c.Faults) > 0 {
		inj := faults.NewInjector(dep.FS)
		if st != nil {
			inj.Stats = &fstats
		}
		if err := inj.Arm(c.Faults); err != nil {
			return Record{}, err
		}
	}
	nodesPerApp := cfg.Params.Nodes
	nodes := dep.Nodes(apps * nodesPerApp)
	rec := Record{Label: cfg.Label, Rep: rep}

	runs := make([]*ior.Run, apps)
	remaining := apps
	for a := 0; a < apps; a++ {
		p := cfg.Params
		p.SetupMean = dep.Platform.SetupMean
		p.SetupCV = dep.Platform.SetupCV
		p.App = fmt.Sprintf("%s/app%d", cfg.Label, a+1)
		p.Path = fmt.Sprintf("/%s/app%d/data", cfg.Label, a+1)
		slice := nodes[a*nodesPerApp : (a+1)*nodesPerApp]
		run, err := ior.Start(dep.FS, slice, p, appSrcs[a], func(ior.Result) { remaining-- })
		if err != nil {
			return Record{}, err
		}
		runs[a] = run
	}
	sim := dep.Sim
	if c.BackgroundCreateRate > 0 {
		// Other users' metadata traffic during the window in which the
		// experiment's applications create their files (~the setup phase).
		bgSeq := 0
		for t := bgSrc.Exp(1 / c.BackgroundCreateRate); t < 1.0; t += bgSrc.Exp(1 / c.BackgroundCreateRate) {
			bgSeq++
			path := fmt.Sprintf("/background/f%08d", bgSeq)
			sim.After(t, func() {
				// Ignore errors: a duplicate path or exhausted target set
				// only means this background create is a no-op.
				_, _ = dep.FS.Create(path, bgSrc)
			})
		}
	}
	for remaining > 0 {
		if !sim.Step() {
			return Record{}, fmt.Errorf("experiments: simulation drained with %d apps pending", remaining)
		}
	}
	// Gather results, Equation 1 and target sharing.
	var volSum float64
	var minStart, maxEnd simkernel.Time
	targetUse := make(map[int]int)
	for a, run := range runs {
		res := run.Result()
		if res.Err != nil {
			return Record{}, fmt.Errorf("experiments: %s rep %d app %d failed: %w", cfg.Label, rep, a+1, res.Err)
		}
		ar := AppResult{
			App:    res.Params.App,
			Result: res,
			Alloc:  core.FromPerHostMap(res.PerHost, dep.Platform.FS.Hosts),
		}
		rec.Apps = append(rec.Apps, ar)
		volSum += float64(res.Params.TotalBytes()) / float64(1<<20)
		if a == 0 || res.Start < minStart {
			minStart = res.Start
		}
		if res.End > maxEnd {
			maxEnd = res.End
		}
		seen := make(map[int]bool)
		for _, id := range res.TargetIDs {
			if !seen[id] {
				seen[id] = true
				targetUse[id]++
			}
		}
	}
	for _, n := range targetUse {
		if n > 1 {
			rec.SharedTargets++
		}
	}
	if maxEnd > minStart {
		rec.Aggregate = volSum / float64(maxEnd-minStart)
	}
	if c.Quiesce != nil {
		if err := c.Quiesce(dep, &rec); err != nil {
			return Record{}, err
		}
	}
	// Clean up the benchmark files (as IOR does by default) so campaigns
	// of hundreds of 32 GiB repetitions do not fill the storage targets.
	for _, run := range runs {
		for _, path := range run.Result().Paths {
			if err := dep.FS.Remove(path); err != nil {
				return Record{}, fmt.Errorf("experiments: cleanup of %q failed: %w", path, err)
			}
		}
	}
	if c.Inspect != nil {
		if err := c.Inspect(dep, &rec); err != nil {
			return Record{}, err
		}
	}
	if st != nil {
		st.FlushTo(mrec)
		mrec.Add("faults/injections", fstats.Injections)
		mrec.Add("faults/recoveries", fstats.Recoveries)
		mrec.Add("faults/aborted_flows", fstats.AbortedFlows)
		mrec.Add("faults/noops", fstats.Noops)
		mrec.Add("experiments/repetitions", 1)
		// Per-application and aggregate bandwidths, rounded to MiB/s. The
		// simulated bandwidths are deterministic, so these histograms live
		// in the deterministic portion of the export.
		for _, ar := range rec.Apps {
			mrec.Observe("experiments/"+cfg.Label+"/app_bw_mibs", uint64(math.Round(ar.Result.Bandwidth)))
		}
		mrec.Observe("experiments/"+cfg.Label+"/aggregate_bw_mibs", uint64(math.Round(rec.Aggregate)))
		// Wall-clock cost is inherently run-dependent; the prefix lets
		// determinism checks filter it out.
		us := uint64(time.Since(wallStart).Microseconds())
		mrec.Add(obs.WalltimePrefix+cfg.Label+"/rep_us", us)
		mrec.Observe(obs.WalltimePrefix+cfg.Label+"/rep_us_hist", us)
	}
	if c.Pipeline != nil {
		// Fold the shard into the registry, stream the completion to the
		// progress table, and refresh the live sinks' view. Folds are
		// commutative, so any Release/RepDone interleaving across workers
		// yields the same final state.
		col.Release()
		c.Pipeline.RepDone(cfg.Label)
		if err := c.Pipeline.FlushSinks(); err != nil {
			return Record{}, err
		}
	}
	return rec, nil
}

// GroupByLabel indexes records by experiment label.
func GroupByLabel(recs []Record) map[string][]Record {
	out := make(map[string][]Record)
	for _, r := range recs {
		out[r.Label] = append(out[r.Label], r)
	}
	return out
}

// Bandwidths extracts single-app bandwidths from a record set.
func Bandwidths(recs []Record) []float64 {
	out := make([]float64, 0, len(recs))
	for _, r := range recs {
		out = append(out, r.Bandwidth())
	}
	return out
}

// Aggregates extracts Equation-1 aggregates from a record set.
func Aggregates(recs []Record) []float64 {
	out := make([]float64, 0, len(recs))
	for _, r := range recs {
		out = append(out, r.Aggregate)
	}
	return out
}
