package core

import (
	"math"
	"testing"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/ior"
	"repro/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func modelFor(s cluster.Scenario) Model {
	p := cluster.PlaFRIM(s)
	return Model{FS: p.FS, ClientNIC: p.ClientNICCapacity}
}

func TestNetworkLimitedBandwidthFormula(t *testing.T) {
	// Figure 9: (1,1) -> 2B; (0,2) -> B.
	b := 1100.0
	if got := NetworkLimitedBandwidth(NewAllocation([]int{1, 1}), b); !almost(got, 2*b, 1e-9) {
		t.Fatalf("(1,1) = %v, want %v", got, 2*b)
	}
	if got := NetworkLimitedBandwidth(NewAllocation([]int{0, 2}), b); !almost(got, b, 1e-9) {
		t.Fatalf("(0,2) = %v, want %v", got, b)
	}
	// (1,3): B / (3/4) = 4B/3 — the paper's count-4 ceiling.
	if got := NetworkLimitedBandwidth(NewAllocation([]int{1, 3}), b); !almost(got, 4*b/3, 1e-6) {
		t.Fatalf("(1,3) = %v, want %v", got, 4*b/3)
	}
	if got := NetworkLimitedBandwidth(Allocation{}, b); got != 0 {
		t.Fatalf("empty allocation = %v", got)
	}
}

// §IV-C1: "(3,3) ... increases bandwidth by more than 49%" over the
// round-robin (1,3).
func TestPaper49PercentClaim(t *testing.T) {
	b := 1100.0
	gain := NetworkLimitedBandwidth(NewAllocation([]int{3, 3}), b)/
		NetworkLimitedBandwidth(NewAllocation([]int{1, 3}), b) - 1
	if gain < 0.49 || gain > 0.51 {
		t.Fatalf("(3,3) over (1,3) gain = %.1f%%, paper says >49%%", gain*100)
	}
}

func TestModelScenario1Plateau(t *testing.T) {
	m := modelFor(cluster.Scenario1Ethernet)
	// 8 nodes x 8 ppn at (1,3): the server NIC dominates: 4/3 * 1100.
	got := m.Bandwidth(NewAllocation([]int{1, 3}), 8, 8)
	if !almost(got, 4.0/3.0*1100, 20) {
		t.Fatalf("scenario-1 (1,3) = %v, want ~1467", got)
	}
	// Balanced allocations reach the 2200 peak.
	for _, alloc := range [][]int{{1, 1}, {3, 3}, {4, 4}} {
		got := m.Bandwidth(NewAllocation(alloc), 8, 8)
		if !almost(got, 2200, 60) {
			t.Fatalf("scenario-1 %v = %v, want ~2200", alloc, got)
		}
	}
	// Single-server allocations are stuck at one link.
	for _, alloc := range [][]int{{0, 1}, {0, 2}, {0, 3}} {
		got := m.Bandwidth(NewAllocation(alloc), 8, 8)
		if !almost(got, 1100, 40) {
			t.Fatalf("scenario-1 %v = %v, want ~1100", alloc, got)
		}
	}
}

// Figure 8's grouping: same balance ratio => same bandwidth regardless of
// count: (1,2) == (2,4); (1,1) == (3,3) == (4,4).
func TestModelScenario1RatioGroups(t *testing.T) {
	m := modelFor(cluster.Scenario1Ethernet)
	b12 := m.Bandwidth(NewAllocation([]int{1, 2}), 8, 8)
	b24 := m.Bandwidth(NewAllocation([]int{2, 4}), 8, 8)
	if !almost(b12, b24, 1) {
		t.Fatalf("(1,2)=%v != (2,4)=%v", b12, b24)
	}
	b11 := m.Bandwidth(NewAllocation([]int{1, 1}), 8, 8)
	b33 := m.Bandwidth(NewAllocation([]int{3, 3}), 8, 8)
	if !almost(b11, b33, 1) {
		t.Fatalf("(1,1)=%v != (3,3)=%v", b11, b33)
	}
}

func TestModelScenario2BalancedBeatsUnbalanced(t *testing.T) {
	m := modelFor(cluster.Scenario2Omnipath)
	b33 := m.Bandwidth(NewAllocation([]int{3, 3}), 32, 8)
	b24 := m.Bandwidth(NewAllocation([]int{2, 4}), 32, 8)
	gain := b33/b24 - 1
	// Paper: +10.15%. The concave-controller model gives ~12%.
	if gain < 0.05 || gain > 0.2 {
		t.Fatalf("(3,3)/(2,4) gain = %.1f%%, want ~10%%", gain*100)
	}
}

func TestModelScenario2MonotoneInCount(t *testing.T) {
	m := modelFor(cluster.Scenario2Omnipath)
	prev := 0.0
	for k := 1; k <= 8; k++ {
		alloc, err := BalancedDistribution(2, k)
		if err != nil {
			t.Fatal(err)
		}
		bw := m.Bandwidth(alloc[0].Alloc, 32, 8)
		if bw <= prev {
			t.Fatalf("count %d: %v not above count %d", k, bw, k-1)
		}
		prev = bw
	}
	if prev < 7000 || prev > 8100 {
		t.Fatalf("count-8 prediction = %v, want near 8064", prev)
	}
}

func TestModelClientRamp(t *testing.T) {
	m := modelFor(cluster.Scenario1Ethernet)
	a13 := NewAllocation([]int{1, 3})
	// One node is client-limited at ~880.
	if got := m.Bandwidth(a13, 1, 8); !almost(got, 880, 10) {
		t.Fatalf("N=1 = %v, want 880", got)
	}
	// Growth to the plateau: model must be nondecreasing in N.
	prev := 0.0
	for _, n := range []int{1, 2, 3, 4, 8} {
		got := m.Bandwidth(a13, n, 8)
		if got < prev-1e-9 {
			t.Fatalf("bandwidth decreased with more nodes at N=%d", n)
		}
		prev = got
	}
}

func TestModelDegenerateInputs(t *testing.T) {
	m := modelFor(cluster.Scenario1Ethernet)
	if m.Bandwidth(Allocation{}, 8, 8) != 0 {
		t.Fatal("empty allocation nonzero")
	}
	if m.Bandwidth(NewAllocation([]int{1, 1}), 0, 8) != 0 {
		t.Fatal("0 nodes nonzero")
	}
}

func TestTimeline(t *testing.T) {
	m := modelFor(cluster.Scenario1Ethernet)
	tl, err := m.Timeline(NewAllocation([]int{1, 3}), 32768, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 2 {
		t.Fatalf("timeline hosts = %d", len(tl))
	}
	// Host 0 (1 target) gets 1/4, host 1 (3 targets) gets 3/4, both at
	// the NIC rate, so host 1 finishes 3x later.
	if !almost(tl[0].Share, 0.25, 1e-9) || !almost(tl[1].Share, 0.75, 1e-9) {
		t.Fatalf("shares = %v/%v", tl[0].Share, tl[1].Share)
	}
	if !almost(tl[1].Finish/tl[0].Finish, 3, 1e-6) {
		t.Fatalf("finish ratio = %v, want 3", tl[1].Finish/tl[0].Finish)
	}
	// Aggregate bandwidth recovers the model prediction.
	bw := 32768 / tl[1].Finish
	if !almost(bw, m.Bandwidth(NewAllocation([]int{1, 3}), 8, 8), 1) {
		t.Fatalf("timeline bandwidth %v disagrees with model", bw)
	}
	if _, err := m.Timeline(Allocation{}, 100, 8, 8); err == nil {
		t.Fatal("empty allocation accepted")
	}
	if _, err := m.Timeline(NewAllocation([]int{1, 1}), 0, 8, 8); err == nil {
		t.Fatal("zero volume accepted")
	}
}

// Cross-validation: for deterministic platforms (no jitter, no setup),
// the analytic model and the discrete-event simulator agree within 2% on
// every allocation x node-count combination.
func TestModelMatchesSimulator(t *testing.T) {
	for _, scenario := range []cluster.Scenario{cluster.Scenario1Ethernet, cluster.Scenario2Omnipath} {
		p := cluster.PlaFRIM(scenario)
		// Strip stochastic elements.
		p.FS.Storage.HostJitterCV = 0
		p.FS.Storage.TargetJitterCV = 0
		p.ServerNICJitterCV = 0
		p.SetupMean, p.SetupCV = 0, 0
		p.FS.CreateLatency, p.FS.OpenLatency = 0, 0
		m := Model{FS: p.FS, ClientNIC: p.ClientNICCapacity}
		for _, tc := range []struct {
			count, nodes int
		}{{1, 8}, {2, 8}, {4, 8}, {8, 8}, {4, 1}, {4, 32}, {8, 32}, {6, 16}} {
			dep, err := p.Deploy()
			if err != nil {
				t.Fatal(err)
			}
			params := ior.Params{
				Nodes: tc.nodes, PPN: 8, TransferSize: 1 * beegfs.MiB,
				StripeCount: tc.count,
			}.WithTotalSize(32 * beegfs.GiB)
			res, err := ior.Execute(dep.FS, dep.Nodes(tc.nodes), params, rng.New(1))
			if err != nil {
				t.Fatal(err)
			}
			alloc := FromPerHostMap(res.PerHost, 2)
			want := m.Bandwidth(alloc, tc.nodes, 8)
			if math.Abs(res.Bandwidth-want)/want > 0.02 {
				t.Errorf("%v count=%d nodes=%d alloc=%s: sim %.0f vs model %.0f",
					scenario, tc.count, tc.nodes, alloc, res.Bandwidth, want)
			}
		}
	}
}
