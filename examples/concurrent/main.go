// Concurrent: the §IV-D question — does letting every application use
// every OST hurt when several I/O-intensive applications run at once?
// Three applications write 32 GiB each on disjoint node sets while
// sharing (or not) storage targets; the example prints individual and
// Equation-1 aggregate bandwidth against the single-application baseline.
package main

import (
	"fmt"
	"log"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/ior"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	platform := cluster.PlaFRIM(cluster.Scenario2Omnipath)

	const apps = 3
	params := ior.Params{
		Nodes: 8, PPN: 8,
		TransferSize: 1 * beegfs.MiB,
	}.WithTotalSize(32 * beegfs.GiB)

	t := report.NewTable(
		"3 concurrent applications (8 nodes each) vs running alone — scenario 2",
		"count", "solo_mibs", "individual_mibs", "slowdown_%", "aggregate_mibs", "equivalent_single_mibs")

	for _, count := range []int{2, 4, 8} {
		p := params
		p.StripeCount = count
		proto := experiments.Protocol{Repetitions: 25, BlockSize: 5, MinWait: 1, MaxWait: 4, Seed: uint64(100 + count)}
		camp := experiments.Campaign{Platform: platform, Proto: proto, BackgroundCreateRate: 4}

		eq := apps * count
		if eq > 8 {
			eq = 8
		}
		recs, err := camp.Run([]experiments.Config{
			{Label: "concurrent", Params: p, Apps: apps},
			{Label: "solo", Params: p},
			{Label: "equivalent", Params: ior.Params{
				Nodes: 8 * apps, PPN: 8,
				TransferSize: 1 * beegfs.MiB,
				StripeCount:  eq,
			}.WithTotalSize(apps * 32 * beegfs.GiB)},
		})
		if err != nil {
			log.Fatal(err)
		}
		byLabel := experiments.GroupByLabel(recs)
		var indiv []float64
		for _, r := range byLabel["concurrent"] {
			for _, a := range r.Apps {
				indiv = append(indiv, a.Result.Bandwidth)
			}
		}
		solo := stats.Mean(experiments.Bandwidths(byLabel["solo"]))
		ind := stats.Mean(indiv)
		agg := stats.Mean(experiments.Aggregates(byLabel["concurrent"]))
		equiv := stats.Mean(experiments.Bandwidths(byLabel["equivalent"]))
		t.AddRow(count, solo, ind, (1-ind/solo)*100, agg, equiv)
	}
	fmt.Println(t.String())
	fmt.Println("reading the table (paper §IV-D / lesson 7):")
	fmt.Println(" * individual bandwidth drops because the applications split the")
	fmt.Println("   available bandwidth — not because they share targets;")
	fmt.Println(" * the aggregate matches one application with 3x the nodes and")
	fmt.Println("   targets, so a policy restricting per-application stripe counts")
	fmt.Println("   would not improve anything: default to the maximum stripe count.")
}
