package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"time"
)

// Live introspection: an HTTP server exposing the pipeline's merged
// metric model while a run is in flight.
//
//	GET /metrics  OpenMetrics text exposition of the current snapshot
//	              (scrape-compatible with Prometheus).
//	GET /runs     JSON progress table: per-campaign repetitions
//	              completed/total with wall-clock rate and ETA.
//
// The server reads through Pipeline.Snapshot()/Runs(), which take the
// registry and pipeline locks briefly per request — scrapes never block
// collector emission (lock-free shards) and only contend with flushes for
// the duration of a snapshot copy. Serving is read-only and off the
// simulation's deterministic path: whether and when /metrics is scraped
// cannot change any exported file (the CI smoke pins this by diffing
// out/ CSVs with and without a scrape).

// Server serves a pipeline's live metrics over HTTP.
type Server struct {
	pl  *Pipeline
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server for p on addr (e.g. "127.0.0.1:9464", or
// ":0" for an ephemeral port — read the chosen address back from Addr).
func Serve(p *Pipeline, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{pl: p, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/runs", s.handleRuns)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the address the server is listening on.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", PromContentType)
	_ = EncodeProm(w, s.pl.Snapshot())
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	runs := s.pl.Runs()
	if runs == nil {
		runs = []RunStatus{}
	}
	_ = json.NewEncoder(w).Encode(runs)
}
