// Package faults injects deterministic mid-run failures into a simulated
// BeeGFS deployment: storage targets (OSTs), storage hosts (OSSes) and
// server network links can fail and recover at scripted virtual times,
// targets and NICs can be pinned to a fraction of their capacity
// (fail-slow gray failures), and a host's heartbeat or data path can be
// partitioned independently.
//
// A binary failure does three things, in order: (1) it flips the
// component's device state (and, when heartbeats are disabled, marks it
// offline in the management service instantly — the omniscient legacy
// model; with heartbeats enabled the mgmtd finds out the hard way,
// through missed heartbeats); (2) it pins the component's simnet resource
// capacities to zero, so nothing can sneak bytes through it; (3) it
// aborts every in-flight flow touching the failed resources, handing
// control to the client retry path (beegfs.Config.RetryTimeout et al.).
// Recovery reverses the state; the management service's subscription
// machinery kicks off pending mirror resyncs once it *publishes* the
// recovery.
//
// Determinism contract: the same seed plus the same schedule replays
// bit-identically — events fire in time order (slice order among
// same-time events), and flow aborts happen in name-sorted order
// (simnet.FlowsUsing).
package faults

import (
	"fmt"
	"sort"

	"repro/internal/beegfs"
	"repro/internal/simnet"
)

// Kind selects the failed component class.
type Kind int

const (
	// TargetFault fails a single OST, addressed by its paper-style target
	// ID (e.g. 201).
	TargetFault Kind = iota
	// HostFault fails a whole storage server (all its targets, its I/O
	// controller and its network link), addressed by 1-based host index.
	HostFault
	// NICFault fails only a storage server's network link (the targets
	// stay healthy but unreachable), addressed by 1-based host index.
	NICFault
	// SlowFault pins a target (ID = target ID) or, with Event.NIC set, a
	// host's network link (ID = 1-based host index) to Event.Factor of
	// its capacity: a fail-slow gray failure. Nothing is marked failed,
	// no flows abort, and heartbeats keep arriving — the control plane
	// never notices, only throughput does.
	SlowFault
	// PartitionFault splits a host's control plane from its data plane,
	// addressed by 1-based host index. Event.Plane selects the direction:
	// PlaneControl loses the host's heartbeats while the data path keeps
	// moving bytes (the mgmtd declares healthy targets dead — a false
	// positive); PlaneData kills the data path while heartbeats survive
	// (the mgmtd keeps publishing Online while every I/O fails — a false
	// negative). Requires heartbeats enabled: the omniscient model has no
	// separate control plane to partition.
	PartitionFault
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case TargetFault:
		return "target"
	case HostFault:
		return "host"
	case NICFault:
		return "nic"
	case SlowFault:
		return "slow"
	case PartitionFault:
		return "partition"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Action is what happens to the component.
type Action int

const (
	// Fail takes the component down (or pins it slow).
	Fail Action = iota
	// Recover brings it back.
	Recover
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case Fail:
		return "fail"
	case Recover:
		return "recover"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Plane selects a PartitionFault's direction.
type Plane int

const (
	// PlaneControl partitions heartbeats away from the mgmtd; data flows
	// survive.
	PlaneControl Plane = iota
	// PlaneData partitions the data path (the host's NIC); heartbeats
	// survive.
	PlaneData
)

// String implements fmt.Stringer.
func (p Plane) String() string {
	switch p {
	case PlaneControl:
		return "control"
	case PlaneData:
		return "data"
	default:
		return fmt.Sprintf("plane(%d)", int(p))
	}
}

// Event is one scripted state change.
type Event struct {
	// At is the virtual time (seconds) relative to when the schedule is
	// armed.
	At float64
	// Kind selects the component class.
	Kind Kind
	// ID addresses the component: a target ID for TargetFault and
	// SlowFault (unless NIC is set), a 1-based host index for HostFault,
	// NICFault, PartitionFault and NIC-side SlowFault.
	ID int
	// Action fails or recovers the component.
	Action Action
	// Factor is the SlowFault capacity fraction, required in (0,1) for
	// Fail and ignored for Recover.
	Factor float64
	// NIC redirects a SlowFault at a host's network link instead of a
	// target (ID becomes a 1-based host index).
	NIC bool
	// Plane selects a PartitionFault's direction.
	Plane Plane
}

// Schedule is a deterministic script of fault events. Events fire in time
// order; same-time events fire in slice order.
type Schedule []Event

// Validate checks the schedule against a deployment.
//
// Per-event checks: non-negative times, known kinds/actions/planes,
// existing targets and host indexes, SlowFault factors in (0,1). Events
// that need a resource or mechanism the deployment doesn't model are
// rejected rather than silently no-opping: NIC faults, NIC-side slow
// faults and data-plane partitions require server NIC resources
// (Config.ServerNICCapacity > 0), and both partition planes require
// heartbeats (Config.HeartbeatInterval > 0).
//
// Cross-event semantics are *idempotent*: Fail on an already-failed
// component and Recover on a component that never failed (or was already
// recovered wholesale by its host's recovery) are accepted no-ops — the
// injector applies them without effect and counts them as Noops. A
// HostFault Recover restores the whole enclosure: its targets, NIC and
// any individually-scripted faults under it. What Validate rejects is
// the genuinely contradictory: claiming to restore service on a
// sub-component while its enclosing host is still failed (a recovered
// target inside a dead server serves nothing), and driving one NIC down
// through two different mechanisms at once (a NICFault and a data-plane
// partition would fight over the link's recovery).
func (s Schedule) Validate(fs *beegfs.FileSystem) error {
	hosts := fs.Storage().Hosts()
	hb := fs.Config().HeartbeatInterval > 0
	nics := fs.Config().ServerNICCapacity > 0
	for i, e := range s {
		if e.At < 0 {
			return fmt.Errorf("faults: event %d has negative time %v", i, e.At)
		}
		if e.Action != Fail && e.Action != Recover {
			return fmt.Errorf("faults: event %d has unknown action %d", i, int(e.Action))
		}
		switch e.Kind {
		case TargetFault:
			if fs.Storage().TargetByID(e.ID) == nil {
				return fmt.Errorf("faults: event %d addresses unknown target %d", i, e.ID)
			}
		case HostFault, NICFault, PartitionFault:
			if e.ID < 1 || e.ID > len(hosts) {
				return fmt.Errorf("faults: event %d addresses host %d of %d", i, e.ID, len(hosts))
			}
			if e.Kind == NICFault && !nics {
				return fmt.Errorf("faults: event %d is a NIC fault but the deployment has no server NIC resources", i)
			}
			if e.Kind == PartitionFault {
				if e.Plane != PlaneControl && e.Plane != PlaneData {
					return fmt.Errorf("faults: event %d has unknown partition plane %d", i, int(e.Plane))
				}
				if !hb {
					return fmt.Errorf("faults: event %d is a partition but the deployment has no heartbeats (HeartbeatInterval = 0)", i)
				}
				if e.Plane == PlaneData && !nics {
					return fmt.Errorf("faults: event %d is a data-plane partition but the deployment has no server NIC resources", i)
				}
			}
		case SlowFault:
			if e.NIC {
				if e.ID < 1 || e.ID > len(hosts) {
					return fmt.Errorf("faults: event %d addresses host %d of %d", i, e.ID, len(hosts))
				}
				if !nics {
					return fmt.Errorf("faults: event %d is a NIC slow fault but the deployment has no server NIC resources", i)
				}
			} else if fs.Storage().TargetByID(e.ID) == nil {
				return fmt.Errorf("faults: event %d addresses unknown target %d", i, e.ID)
			}
			if e.Action == Fail && (e.Factor <= 0 || e.Factor >= 1) {
				return fmt.Errorf("faults: event %d has slow factor %v outside (0,1)", i, e.Factor)
			}
		default:
			return fmt.Errorf("faults: event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	return s.validateStateful(fs)
}

// validateStateful replays the schedule against a per-host state model in
// firing order and rejects the contradictions documented on Validate.
func (s Schedule) validateStateful(fs *beegfs.FileSystem) error {
	hosts := fs.Storage().Hosts()
	hostIndexOf := func(targetID int) int {
		for hi, h := range hosts {
			for _, t := range h.Targets() {
				if t.ID == targetID {
					return hi
				}
			}
		}
		return -1
	}
	type hostState struct {
		failed   bool
		nicFault bool // NIC down via NICFault
		dataCut  bool // NIC down via a data-plane partition
	}
	st := make([]hostState, len(hosts))
	// Firing order: time order, slice order among ties (Arm's contract).
	order := make([]int, len(s))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return s[order[a]].At < s[order[b]].At })
	for _, i := range order {
		e := s[i]
		switch e.Kind {
		case TargetFault:
			hi := hostIndexOf(e.ID)
			if e.Action == Recover && st[hi].failed {
				return fmt.Errorf("faults: event %d recovers target %d while its host is failed", i, e.ID)
			}
		case HostFault:
			h := &st[e.ID-1]
			if e.Action == Fail {
				h.failed = true
			} else {
				// Host recovery restores the enclosure wholesale, including
				// an individually-scripted NIC fault under it.
				h.failed = false
				h.nicFault = false
			}
		case NICFault:
			h := &st[e.ID-1]
			if e.Action == Fail {
				if h.dataCut {
					return fmt.Errorf("faults: event %d fails host %d's NIC already held down by a data-plane partition", i, e.ID)
				}
				h.nicFault = true
			} else {
				if h.failed {
					return fmt.Errorf("faults: event %d recovers host %d's NIC while the host is failed", i, e.ID)
				}
				h.nicFault = false
			}
		case SlowFault:
			// Slow pins are orthogonal to binary state; redefinition and
			// recover-without-fail are both fine.
		case PartitionFault:
			if e.Plane != PlaneData {
				break
			}
			h := &st[e.ID-1]
			if e.Action == Fail {
				if h.failed || h.nicFault {
					return fmt.Errorf("faults: event %d data-partitions host %d whose NIC is already down", i, e.ID)
				}
				h.dataCut = true
			} else {
				if h.failed {
					return fmt.Errorf("faults: event %d heals host %d's data partition while the host is failed", i, e.ID)
				}
				h.dataCut = false
			}
		}
	}
	return nil
}

// Stats counts injector activity for the observability layer. Like the
// other layers' Stats it is plain, nil-gated and side-effect-free: fault
// events fire at scripted times regardless, counting them cannot change
// what they do.
type Stats struct {
	// Injections and Recoveries count *effective* Fail / Recover events —
	// ones that actually changed component state.
	Injections uint64
	Recoveries uint64
	// Noops counts applied events that found their component already in
	// the requested state (the idempotent semantics Validate accepts).
	Noops uint64
	// AbortedFlows counts in-flight flows torn down by fault events.
	AbortedFlows uint64
}

// Injector applies fault events to a deployment.
type Injector struct {
	fs *beegfs.FileSystem

	// Stats, when non-nil, receives injector activity counts.
	Stats *Stats

	// doomed is a reusable buffer for the flows collected in
	// abortFlowsOn, so repeated fault events allocate nothing.
	doomed []*simnet.Flow
}

// NewInjector binds an injector to a deployment.
func NewInjector(fs *beegfs.FileSystem) *Injector {
	return &Injector{fs: fs}
}

// Arm validates the schedule and registers every event on the simulation
// clock, relative to the current virtual time. Arm may be called once per
// campaign repetition: each call schedules a fresh copy of the script.
func (inj *Injector) Arm(s Schedule) error {
	if err := s.Validate(inj.fs); err != nil {
		return err
	}
	sim := inj.fs.Sim()
	for _, e := range s {
		e := e
		sim.After(e.At, func() { inj.Apply(e) })
	}
	return nil
}

// Apply executes one event immediately. Events from Arm land here; tests
// may also call it directly. Invalid events are a no-op (Arm validates).
// After every event the heartbeat monitor is kicked so detection can
// begin (a no-op when heartbeats are disabled).
func (inj *Injector) Apply(e Event) {
	var effective bool
	switch e.Kind {
	case TargetFault:
		effective = inj.applyTarget(e)
	case HostFault:
		effective = inj.applyHost(e)
	case NICFault:
		effective = inj.applyNIC(e)
	case SlowFault:
		effective = inj.applySlow(e)
	case PartitionFault:
		effective = inj.applyPartition(e)
	}
	if inj.Stats != nil {
		switch {
		case !effective:
			inj.Stats.Noops++
		case e.Action == Fail:
			inj.Stats.Injections++
		default:
			inj.Stats.Recoveries++
		}
	}
	inj.fs.HeartbeatKick()
}

// omniscient reports whether the injector should flip the management
// service's view directly (legacy instant detection). With heartbeats
// enabled the mgmtd learns about device state the honest way.
func (inj *Injector) omniscient() bool { return !inj.fs.HeartbeatsEnabled() }

func (inj *Injector) applyTarget(e Event) bool {
	t := inj.fs.Storage().TargetByID(e.ID)
	if t == nil {
		return false
	}
	if e.Action == Fail {
		if t.Failed() {
			return false
		}
		if inj.omniscient() {
			_ = inj.fs.Mgmtd().SetOnline(e.ID, false)
		}
		t.SetFailed(true)
		inj.abortFlowsOn(t.Resource())
		return true
	}
	if !t.Failed() {
		return false
	}
	// Restore capacity before announcing the target online, so resyncs
	// triggered by the subscription see a usable device.
	t.SetFailed(false)
	if inj.omniscient() {
		_ = inj.fs.Mgmtd().SetOnline(e.ID, true)
	}
	return true
}

func (inj *Injector) applyHost(e Event) bool {
	h := inj.fs.Storage().Hosts()[e.ID-1]
	if e.Action == Fail {
		if h.Failed() {
			return false
		}
		for _, t := range h.Targets() {
			if inj.omniscient() {
				_ = inj.fs.Mgmtd().SetOnline(t.ID, false)
			}
			t.SetFailed(true)
		}
		h.SetFailed(true)
		inj.fs.SetNICDown(h, true)
		resources := []*simnet.Resource{h.Controller()}
		if nic := inj.fs.ServerNIC(h); nic != nil {
			resources = append(resources, nic)
		}
		for _, t := range h.Targets() {
			resources = append(resources, t.Resource())
		}
		inj.abortFlowsOn(resources...)
		return true
	}
	if !h.Failed() {
		return false
	}
	h.SetFailed(false)
	inj.fs.SetNICDown(h, false)
	for _, t := range h.Targets() {
		t.SetFailed(false)
		if inj.omniscient() {
			_ = inj.fs.Mgmtd().SetOnline(t.ID, true)
		}
	}
	return true
}

func (inj *Injector) applyNIC(e Event) bool {
	h := inj.fs.Storage().Hosts()[e.ID-1]
	if e.Action == Fail {
		if inj.fs.NICDown(h) {
			return false
		}
		inj.fs.SetNICDown(h, true)
		if nic := inj.fs.ServerNIC(h); nic != nil {
			inj.abortFlowsOn(nic)
		}
		return true
	}
	if !inj.fs.NICDown(h) {
		return false
	}
	inj.fs.SetNICDown(h, false)
	return true
}

func (inj *Injector) applySlow(e Event) bool {
	factor := e.Factor
	if e.Action == Recover {
		factor = 1
	}
	if e.NIC {
		h := inj.fs.Storage().Hosts()[e.ID-1]
		if inj.fs.NICSlowFactor(h) == factor {
			return false
		}
		inj.fs.SetNICSlow(h, factor)
		return true
	}
	t := inj.fs.Storage().TargetByID(e.ID)
	if t == nil || t.SlowFactor() == factor {
		return false
	}
	t.SetSlow(factor)
	return true
}

func (inj *Injector) applyPartition(e Event) bool {
	h := inj.fs.Storage().Hosts()[e.ID-1]
	if e.Plane == PlaneControl {
		if e.Action == Fail {
			if inj.fs.HeartbeatCut(h) {
				return false
			}
			inj.fs.SetHeartbeatCut(h, true)
			return true
		}
		if !inj.fs.HeartbeatCut(h) {
			return false
		}
		inj.fs.SetHeartbeatCut(h, false)
		return true
	}
	// Data plane: the NIC goes down like a NICFault, but the heartbeat
	// path is spared, so the mgmtd never notices.
	if e.Action == Fail {
		if inj.fs.DataOnlyPartition(h) {
			return false
		}
		inj.fs.SetDataOnlyPartition(h, true)
		inj.fs.SetNICDown(h, true)
		if nic := inj.fs.ServerNIC(h); nic != nil {
			inj.abortFlowsOn(nic)
		}
		return true
	}
	if !inj.fs.DataOnlyPartition(h) {
		return false
	}
	inj.fs.SetNICDown(h, false)
	inj.fs.SetDataOnlyPartition(h, false)
	return true
}

// abortFlowsOn aborts every in-flight flow touching any of the resources,
// each at most once, in name-sorted order (deterministic replay). Resync
// flows riding a failed resource are aborted like any other; their dirty
// accounting survives and the next recovery restarts them. The collection
// reuses the injector's buffer and scans only the components the failed
// resources belong to — flows in unrelated components are never visited —
// with no per-event allocation. Each Abort then re-solves just the
// aborted flow's own component.
func (inj *Injector) abortFlowsOn(resources ...*simnet.Resource) {
	net := inj.fs.Network()
	inj.doomed = net.AppendFlowsUsingAny(inj.doomed[:0], resources...)
	if inj.Stats != nil {
		inj.Stats.AbortedFlows += uint64(len(inj.doomed))
	}
	for _, f := range inj.doomed {
		net.Abort(f)
	}
}
