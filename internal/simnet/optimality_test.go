package simnet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/simkernel"
)

// verifyKKT checks the weighted max-min optimality conditions against the
// definition rather than against another implementation: no resource may
// be overloaded, and every flow must either sit at its cap or be
// bottlenecked on a saturated resource on which no flow runs at a higher
// rate (so its rate cannot be raised without lowering a flow that is no
// better off — the max-min KKT argument). Loads are recomputed here from
// the flows' current rates, so the helper is independent of any solver
// scratch state.
func verifyKKT(t *testing.T, flows []*Flow, resources []*Resource) {
	t.Helper()
	load := make(map[*Resource]float64, len(resources))
	maxRate := make(map[*Resource]float64, len(resources))
	for _, f := range flows {
		for i := range f.uses {
			r := f.uses[i].res
			load[r] += f.rate * f.uses[i].w
			if f.rate > maxRate[r] {
				maxRate[r] = f.rate
			}
		}
	}
	const rel = 1e-9
	for _, r := range resources {
		if load[r] > r.capacity*(1+rel)+1e-9 {
			t.Fatalf("resource %s overloaded: load %v > capacity %v", r.Name, load[r], r.capacity)
		}
	}
	for _, f := range flows {
		if f.Cap > 0 && f.rate >= f.Cap-rel*f.Cap-1e-12 {
			continue // pinned at its own cap
		}
		bottlenecked := false
		for i := range f.uses {
			r := f.uses[i].res
			saturated := load[r] >= r.capacity*(1-rel)-1e-9
			maximal := maxRate[r] <= f.rate+rel*(1+f.rate)
			if saturated && maximal {
				bottlenecked = true
				break
			}
		}
		if !bottlenecked {
			t.Fatalf("flow %s at rate %v (cap %v) is neither capped nor bottlenecked on a saturated resource it maximally uses",
				f.Name, f.rate, f.Cap)
		}
	}
}

// TestSolveOptimalityKKT checks the solver against the max-min definition
// on hand-built shapes with known closed-form answers, then sweeps seeded
// random topologies, verifying the KKT conditions and diffing the
// incremental solver against the retained reference at 0 ULP on the
// unindexed (FairShare) path.
func TestSolveOptimalityKKT(t *testing.T) {
	t.Run("closedForm", func(t *testing.T) {
		a := &Resource{Name: "a", capacity: 100}
		b := &Resource{Name: "b", capacity: 30}
		f1 := &Flow{Name: "f1", Usage: map[*Resource]float64{a: 1, b: 1}}
		f2 := &Flow{Name: "f2", Usage: map[*Resource]float64{a: 1}}
		f3 := &Flow{Name: "f3", Usage: map[*Resource]float64{a: 1}, Cap: 20}
		rates := FairShare([]*Flow{f1, f2, f3})
		// f1 bottlenecks on b at 30; f3 caps at 20; f2 takes the rest of a.
		if rates[0] != 30 || rates[2] != 20 || rates[1] != 50 {
			t.Fatalf("closed-form rates wrong: got %v, want [30 50 20]", rates)
		}
		verifyKKT(t, []*Flow{f1, f2, f3}, []*Resource{a, b})
	})

	// uplinkCoupled sweeps seeded random fat-tree topologies — rack-local
	// resources coupled through declared separator uplinks and a core —
	// solved by the exact hierarchical path, verifying the max-min KKT
	// conditions from the definition and diffing against the retained
	// reference at 0 ULP. This is the separator-topology extension of the
	// sweep below: the resources are Network-registered (the hierarchical
	// solver needs the separator flags and user indexes), and the solve
	// under test is the one Start triggers.
	t.Run("uplinkCoupled", func(t *testing.T) {
		rng := rand.New(rand.NewSource(47))
		for cse := 0; cse < 120; cse++ {
			sim := simkernel.New()
			net := New(sim)
			var st Stats
			net.SetStats(&st)
			nRacks := 2 + rng.Intn(3)
			nLocals := 1 + rng.Intn(2)
			var resources, seps []*Resource
			locals := make([][]*Resource, nRacks)
			for r := 0; r < nRacks; r++ {
				for l := 0; l < nLocals; l++ {
					res := net.AddResource(fmt.Sprintf("rack%d/l%d", r, l), 10*float64(1+rng.Intn(50)))
					locals[r] = append(locals[r], res)
					resources = append(resources, res)
				}
			}
			uplinks := make([]*Resource, nRacks)
			for r := 0; r < nRacks; r++ {
				uplinks[r] = net.AddResource(fmt.Sprintf("rack%d/up", r), 20*float64(1+rng.Intn(30)))
				resources = append(resources, uplinks[r])
				seps = append(seps, uplinks[r])
			}
			core := net.AddResource("core", 30*float64(1+rng.Intn(20)))
			resources = append(resources, core)
			seps = append(seps, core)
			net.SetSeparators(seps...)
			net.SetHierarchical(1+rng.Intn(3), 0)
			net.hier.minFlows = 0
			nFlows := 4 + rng.Intn(32)
			flows := make([]*Flow, nFlows)
			for i := range flows {
				rack := rng.Intn(nRacks)
				f := &Flow{Name: fmt.Sprintf("f%02d", i), Volume: 1e6, Usage: map[*Resource]float64{}}
				switch rng.Intn(4) {
				case 0: // rack-local
					f.Usage[locals[rack][rng.Intn(nLocals)]] = 0.25 * float64(1+rng.Intn(8))
				case 1: // separator-only drain
					f.Usage[uplinks[rack]] = 0.25 * float64(1+rng.Intn(4))
					f.Usage[core] = 1
				default: // cross-rack
					f.Usage[locals[rack][rng.Intn(nLocals)]] = 0.25 * float64(1+rng.Intn(8))
					f.Usage[uplinks[rack]] = 1
					f.Usage[core] = 0.5
				}
				if rng.Intn(3) == 0 {
					f.Cap = 5 * float64(1+rng.Intn(24))
				}
				flows[i] = f
				net.Start(f)
			}
			verifyKKT(t, flows, resources)
			want := make([]uint64, nFlows)
			for i, f := range flows {
				want[i] = math.Float64bits(f.rate)
			}
			// Reference re-solve per component (solving a disjoint union
			// jointly is bit-identical, but membership is per-component).
			for _, c := range net.comps {
				solveReference(c.flows, c.resources)
			}
			for i, f := range flows {
				if got := math.Float64bits(f.rate); got != want[i] {
					t.Fatalf("case %d: flow %s hierarchical rate bits %x, reference %x", cse, f.Name, want[i], got)
				}
			}
		}
	})

	t.Run("randomSweep", func(t *testing.T) {
		rng := rand.New(rand.NewSource(42))
		for cse := 0; cse < 250; cse++ {
			nRes := 1 + rng.Intn(8)
			resources := make([]*Resource, nRes)
			for i := range resources {
				resources[i] = &Resource{Name: fmt.Sprintf("r%d", i), capacity: 10 * float64(1+rng.Intn(50))}
			}
			nFlows := 1 + rng.Intn(40)
			flows := make([]*Flow, nFlows)
			for i := range flows {
				f := &Flow{Name: fmt.Sprintf("f%02d", i), Usage: map[*Resource]float64{}}
				for _, j := range rng.Perm(nRes)[:1+rng.Intn(nRes)] {
					f.Usage[resources[j]] = 0.25 * float64(1+rng.Intn(8))
				}
				if rng.Intn(3) == 0 {
					f.Cap = 5 * float64(1+rng.Intn(24))
				}
				flows[i] = f
			}
			rates := FairShare(flows)
			verifyKKT(t, flows, resources)

			// Differential: the retained reference must agree bit for bit.
			// Rebuild the resource list exactly as FairShare does (first-use
			// order, then registration/name sort) and re-solve.
			seen := map[*Resource]bool{}
			var used []*Resource
			for _, f := range flows {
				for i := range f.uses {
					if r := f.uses[i].res; !seen[r] {
						seen[r] = true
						used = append(used, r)
					}
				}
			}
			sort.Slice(used, func(i, j int) bool {
				if used[i].idx != used[j].idx {
					return used[i].idx < used[j].idx
				}
				return used[i].Name < used[j].Name
			})
			solveReference(flows, used)
			for i, f := range flows {
				if math.Float64bits(f.rate) != math.Float64bits(rates[i]) {
					t.Fatalf("case %d: flow %s incremental rate %v, reference %v", cse, f.Name, rates[i], f.rate)
				}
			}
		}
	})
}
