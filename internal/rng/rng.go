// Package rng provides deterministic, splittable pseudo-random number
// streams for the simulator.
//
// Reproducibility is a first-class requirement of the experiment protocol
// (the paper repeats every configuration 100 times and the repetitions must
// be independently seedable). A Source is a xoshiro256** generator; Split
// derives statistically independent child streams via SplitMix64 so that
// adding a new consumer of randomness never perturbs existing streams.
package rng

import "math"

// Source is a xoshiro256** pseudo-random generator. The zero value is not
// valid; obtain a Source with New or Split.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via SplitMix64, so that any seed —
// including 0 — produces a well-mixed internal state.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

// Split derives an independent child stream identified by id. Splitting is
// stable: the child depends only on the parent's seed material and id, not
// on how much the parent has been consumed.
func (s *Source) Split(id uint64) *Source {
	// Mix the parent's initial-state fingerprint with the id. We use the
	// current state; callers that need consumption-independent splits should
	// split before drawing (documented contract used throughout the repo:
	// split first, draw later).
	return New(s.s[0] ^ rotl(s.s[2], 17) ^ (id * 0xd1342543de82ef95))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be overkill
	// here; modulo bias is negligible for the small n used by the
	// experiment protocol, but we still reject to keep draws exact.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := s.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// NormFloat64 returns a standard normal variate (polar Marsaglia method).
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Normal returns a normal variate with the given mean and standard
// deviation.
func (s *Source) Normal(mean, sd float64) float64 {
	return mean + sd*s.NormFloat64()
}

// LogNormal returns a lognormal variate whose *mean* is mean and whose
// coefficient of variation is cv. This parameterization is convenient for
// multiplicative performance jitter: LogNormal(1, 0.08) has expectation 1
// and ~8% relative spread.
func (s *Source) LogNormal(mean, cv float64) float64 {
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(mu + math.Sqrt(sigma2)*s.NormFloat64())
}

// TruncNormal returns a normal variate truncated (by rejection) to
// [lo, hi]. It panics if lo > hi.
func (s *Source) TruncNormal(mean, sd, lo, hi float64) float64 {
	if lo > hi {
		panic("rng: TruncNormal with lo > hi")
	}
	if sd <= 0 {
		return math.Min(math.Max(mean, lo), hi)
	}
	for i := 0; i < 1000; i++ {
		v := s.Normal(mean, sd)
		if v >= lo && v <= hi {
			return v
		}
	}
	// Pathological truncation window: fall back to clamping.
	return math.Min(math.Max(mean, lo), hi)
}

// Exp returns an exponential variate with the given mean.
func (s *Source) Exp(mean float64) float64 {
	return -mean * math.Log(1-s.Float64())
}

// UniformRange returns a uniform float64 in [lo, hi).
func (s *Source) UniformRange(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
