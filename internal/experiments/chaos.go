package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/simkernel"
	"repro/internal/stats"
)

// ChaosPlatform returns the PlaFRIM platform with heartbeat-driven
// failure detection enabled: the management service learns about
// failures from missed heartbeats (interval 0.5 s, suspicion after 1 s,
// declared offline after 2.5 s) instead of omnisciently, and clients
// acting on a stale view pay an RPC timeout before retrying. All other
// parameters match the baseline platform, so healthy repetitions behave
// identically.
func ChaosPlatform(scen cluster.Scenario) cluster.Platform {
	p := cluster.PlaFRIM(scen)
	p.FS.HeartbeatInterval = 0.5
	p.FS.HeartbeatTimeout = 1.0
	p.FS.OfflineTimeout = 2.5
	p.FS.RPCTimeout = 0.25
	return p
}

// chaosTargets is PlaFRIM's full target set (2 hosts x 4 targets).
func chaosTargets() []int {
	return []int{101, 102, 103, 104, 201, 202, 203, 204}
}

// ChaosProfiles returns the chaos campaign's operating points. Outages
// are kept within 2-6 s so every episode resolves well inside the client
// retry budget (~65 s): the campaign measures degradation and recovery,
// not data loss — an aborted repetition is a bug, not a result.
func ChaosProfiles() []faults.Profile {
	return []faults.Profile{
		// Fail-slow: targets and NICs pinned to a fraction of their
		// capacity, plus clean target outages. The hardest case for
		// detection — a slow target still heartbeats.
		{
			Name: "failslow", Duration: 12, Episodes: 4,
			Kinds:     []faults.Kind{faults.SlowFault, faults.TargetFault},
			MinOutage: 2, MaxOutage: 6, MinFactor: 0.15, MaxFactor: 0.6,
			TargetIDs: chaosTargets(), Hosts: 2, NICs: true, Heartbeats: true,
		},
		// Partitions: control-plane heartbeat loss with the data path
		// surviving (false-positive pressure) and data-plane cuts with
		// heartbeats surviving (stale-view RPC failures), plus NIC flaps.
		{
			Name: "partition", Duration: 12, Episodes: 3,
			Kinds:     []faults.Kind{faults.PartitionFault, faults.NICFault},
			MinOutage: 2, MaxOutage: 5,
			TargetIDs: chaosTargets(), Hosts: 2, NICs: true, Heartbeats: true,
		},
		// Everything at once.
		{
			Name: "mixed", Duration: 14, Episodes: 5,
			Kinds: []faults.Kind{
				faults.TargetFault, faults.HostFault, faults.NICFault,
				faults.SlowFault, faults.PartitionFault,
			},
			MinOutage: 2, MaxOutage: 6, MinFactor: 0.2, MaxFactor: 0.7,
			TargetIDs: chaosTargets(), Hosts: 2, NICs: true, Heartbeats: true,
		},
	}
}

// ExtChaosRow summarizes one (scenario, chaos profile) cell.
type ExtChaosRow struct {
	Scenario string
	Profile  string
	// Episodes is the number of fault episodes the generated schedule
	// kept (overlapping draws are dropped).
	Episodes int
	N        int
	// BWMean/BWSD summarize the IOR-reported write bandwidth (MiB/s).
	BWMean float64
	BWSD   float64
	// SecMean/SecSD summarize run completion time in virtual seconds.
	SecMean float64
	SecSD   float64
	// FailedOps counts side-workload ops that terminally exhausted their
	// retry budget across all repetitions (allowed under chaos; the
	// invariant checker verifies they did not acknowledge lost bytes).
	FailedOps int
}

// Side-workload geometry: a mirrored file written in slices across the
// chaos window, so the invariant checker always has mirrored state and
// mid-outage acknowledgements to audit.
const (
	chaosSideWrites    = 6
	chaosSideWriteMiB  = 64
	chaosSideSpacing   = 2.0 // seconds between side-write starts
	chaosSideFirstAt   = 0.5
	chaosSideStripeCnt = 2
)

// ExtChaos runs the chaos campaign: the baseline 8x8 stripe-count-4
// geometry on the heartbeat-enabled platform, with a seeded random fault
// schedule per (scenario, profile) cell and a mirrored side-workload. At
// every repetition's quiesce point — simulation drained, all faults
// recovered — the faults.Checker invariants are asserted: acknowledged
// writes lost no bytes, mirrors converged, per-OST accounting conserves,
// and no op out-retried its budget. Any violation aborts the campaign.
func ExtChaos(opts Options) ([]ExtChaosRow, error) {
	scens := []cluster.Scenario{cluster.Scenario1Ethernet, cluster.Scenario2Omnipath}
	profiles := ChaosProfiles()
	rows := make([]ExtChaosRow, len(scens)*len(profiles))
	err := forEachCell(len(rows), opts.Workers, func(cell int) error {
		scen := scens[cell/len(profiles)]
		pi := cell % len(profiles)
		prof := profiles[pi]
		cellSeed := opts.Seed*131 + uint64(int(scen))*31 + uint64(pi)
		sched, err := faults.Chaos(rng.New(cellSeed), prof)
		if err != nil {
			return fmt.Errorf("chaos %s/%s: %w", scen, prof.Name, err)
		}
		// Per-deployment invariant checkers: Setup installs one on each
		// repetition's private deployment, Quiesce collects it. The map is
		// keyed by deployment pointer because repetitions run concurrently.
		var checkers sync.Map
		var failedOps atomic.Int64
		o := opts
		o.Seed = cellSeed
		recs, err := Campaign{
			Platform: ChaosPlatform(scen),
			Proto:    o.protocol(),
			Workers:  o.Workers,
			Faults:   sched,
			Metrics:  o.Metrics,
			Tracer:   o.Tracer,
			Setup: func(dep *cluster.Deployment) error {
				ck := faults.NewChecker(dep.FS)
				checkers.Store(dep, ck)
				f, err := dep.FS.CreateMirrored("/chaos/side", chaosSideStripeCnt, 512*beegfs.KiB)
				if err != nil {
					return err
				}
				client := dep.Nodes(1)[0]
				for i := 0; i < chaosSideWrites; i++ {
					off := int64(i) * chaosSideWriteMiB * beegfs.MiB
					dep.Sim.After(chaosSideFirstAt+float64(i)*chaosSideSpacing, func() {
						_, err := dep.FS.StartWrite(&beegfs.WriteOp{
							Client: client, File: f,
							Offset: off, Length: chaosSideWriteMiB * beegfs.MiB,
							TransferSize: beegfs.MiB, App: "chaos-side",
							OnComplete: func(simkernel.Time) {},
							// Terminal failures are legal under chaos; the
							// checker independently counts them and verifies
							// no acknowledged byte went missing.
							OnError: func(error) {},
						})
						if err != nil {
							panic(fmt.Sprintf("experiments: chaos side write: %v", err))
						}
					})
				}
				return nil
			},
			Quiesce: func(dep *cluster.Deployment, _ *Record) error {
				// Drain everything still pending — fault recoveries, mirror
				// resyncs, side writes and their retries — then audit.
				dep.Sim.Run()
				v, ok := checkers.LoadAndDelete(dep)
				if !ok {
					return fmt.Errorf("experiments: chaos quiesce without a checker")
				}
				ck := v.(*faults.Checker)
				if err := ck.Check(); err != nil {
					return fmt.Errorf("chaos %s/%s: %w", scen, prof.Name, err)
				}
				failedOps.Add(int64(ck.FailedOps()))
				return nil
			},
		}.Run([]Config{{Label: "chaos-" + prof.Name, Params: baseParams(8, 8, 4, 32*beegfs.GiB)}})
		if err != nil {
			return fmt.Errorf("chaos %s/%s: %w", scen, prof.Name, err)
		}
		var bws, secs []float64
		for _, r := range recs {
			bws = append(bws, r.Bandwidth())
			res := r.Apps[0].Result
			secs = append(secs, float64(res.End-res.Start))
		}
		sb, err := stats.Summarize(bws)
		if err != nil {
			return err
		}
		ss, err := stats.Summarize(secs)
		if err != nil {
			return err
		}
		rows[cell] = ExtChaosRow{
			Scenario: scen.String(),
			Profile:  prof.Name,
			Episodes: len(sched) / 2,
			N:        sb.N,
			BWMean:   sb.Mean,
			BWSD:     sb.SD,
			SecMean:  ss.Mean,
			SecSD:    ss.SD,
			FailedOps: int(failedOps.Load()),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
