package faults_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/ior"
	"repro/internal/rng"
	"repro/internal/simkernel"
)

// deployHB deploys PlaFRIM with heartbeat-driven failure detection (the
// chaos campaign's platform parameters).
func deployHB(t *testing.T, s cluster.Scenario) *cluster.Deployment {
	t.Helper()
	p := cluster.PlaFRIM(s)
	p.FS.HeartbeatInterval = 0.5
	p.FS.HeartbeatTimeout = 1.0
	p.FS.OfflineTimeout = 2.5
	p.FS.RPCTimeout = 0.25
	dep, err := p.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func hbProfile(kinds ...faults.Kind) faults.Profile {
	return faults.Profile{
		Name: "test", Duration: 10, Episodes: 4, Kinds: kinds,
		MinOutage: 2, MaxOutage: 5, MinFactor: 0.25, MaxFactor: 0.75,
		TargetIDs: []int{101, 102, 103, 104, 201, 202, 203, 204},
		Hosts:     2, NICs: true, Heartbeats: true,
	}
}

// Under heartbeats the mgmtd learns about a failed target with detection
// latency: the stale window produces stale-RPC failures, the write still
// completes via the retry path, and the run drains.
func TestHeartbeatTargetFaultStaleWindow(t *testing.T) {
	dep := deployHB(t, cluster.Scenario1Ethernet)
	var st beegfs.Stats
	dep.FS.SetStats(&st)
	inj := faults.NewInjector(dep.FS)
	if err := inj.Arm(faults.Schedule{
		{At: 1.0, Kind: faults.TargetFault, ID: 201, Action: faults.Fail},
		{At: 8.0, Kind: faults.TargetFault, ID: 201, Action: faults.Recover},
	}); err != nil {
		t.Fatal(err)
	}
	params := ior.Params{Nodes: 2, PPN: 4, TransferSize: beegfs.MiB, StripeCount: 8}.WithTotalSize(4 * beegfs.GiB)
	res, err := ior.Execute(dep.FS, dep.Nodes(2), params, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	// Execute only steps until the benchmark completes; drain the tail
	// (recovery, final sweeps). The lazy sweep chain must let this return.
	if err := dep.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if st.ReachTransitions == 0 {
		t.Fatal("no reachability transitions recorded")
	}
	if st.StaleRPCFailures == 0 {
		t.Fatal("no stale-RPC failures: the detection window should catch in-flight retries")
	}
	if st.HeartbeatSweeps == 0 {
		t.Fatal("no heartbeat sweeps ran")
	}
	if dep.Sim.Step() {
		t.Fatal("simulation queue did not drain (sweep chain still live)")
	}
}

// A control-plane partition is a pure false positive: heartbeats stop,
// the mgmtd demotes perfectly healthy targets to Offline, and the heal
// brings them back Online. The workload rides it out.
func TestControlPartitionFalsePositive(t *testing.T) {
	dep := deployHB(t, cluster.Scenario1Ethernet)
	var st beegfs.Stats
	dep.FS.SetStats(&st)
	inj := faults.NewInjector(dep.FS)
	if err := inj.Arm(faults.Schedule{
		{At: 1.0, Kind: faults.PartitionFault, ID: 2, Plane: faults.PlaneControl, Action: faults.Fail},
		{At: 7.0, Kind: faults.PartitionFault, ID: 2, Plane: faults.PlaneControl, Action: faults.Recover},
	}); err != nil {
		t.Fatal(err)
	}
	params := ior.Params{Nodes: 2, PPN: 4, TransferSize: beegfs.MiB, StripeCount: 8}.WithTotalSize(4 * beegfs.GiB)
	res, err := ior.Execute(dep.FS, dep.Nodes(2), params, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	if err := dep.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Host 2's four targets each went down the ladder and came back.
	if st.ReachTransitions < 8 {
		t.Fatalf("ReachTransitions = %d, want >= 8 (4 targets x down+up)", st.ReachTransitions)
	}
	for _, id := range []int{201, 202, 203, 204} {
		if dep.FS.Mgmtd().Reachability(id) != beegfs.Online {
			t.Fatalf("target %d not back online after the heal", id)
		}
		if dep.FS.Storage().TargetByID(id).Failed() {
			t.Fatalf("target %d marked failed by a control-plane-only partition", id)
		}
	}
	if dep.Sim.Step() {
		t.Fatal("simulation queue did not drain")
	}
}

// The converse partition — data path cut, heartbeats surviving — keeps
// the mgmtd publishing Online targets that every RPC dies against: stale
// failures accumulate until the heal, and the run still completes.
func TestDataPartitionStaleFailures(t *testing.T) {
	dep := deployHB(t, cluster.Scenario1Ethernet)
	var st beegfs.Stats
	dep.FS.SetStats(&st)
	inj := faults.NewInjector(dep.FS)
	if err := inj.Arm(faults.Schedule{
		{At: 1.0, Kind: faults.PartitionFault, ID: 2, Plane: faults.PlaneData, Action: faults.Fail},
		{At: 6.0, Kind: faults.PartitionFault, ID: 2, Plane: faults.PlaneData, Action: faults.Recover},
	}); err != nil {
		t.Fatal(err)
	}
	params := ior.Params{Nodes: 2, PPN: 4, TransferSize: beegfs.MiB, StripeCount: 8}.WithTotalSize(4 * beegfs.GiB)
	res, err := ior.Execute(dep.FS, dep.Nodes(2), params, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	if err := dep.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if st.StaleRPCFailures == 0 {
		t.Fatal("no stale-RPC failures: the mgmtd never learned, every issue should die stale")
	}
	// Heartbeats kept arriving, so the mgmtd never demoted the targets.
	if st.ReachTransitions != 0 {
		t.Fatalf("ReachTransitions = %d, want 0 (heartbeats survived the data cut)", st.ReachTransitions)
	}
	if dep.Sim.Step() {
		t.Fatal("simulation queue did not drain")
	}
}

// Partition faults are rejected on deployments without heartbeats: the
// omniscient model has no control plane to cut.
func TestPartitionRequiresHeartbeats(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	s := faults.Schedule{{At: 1, Kind: faults.PartitionFault, ID: 1, Action: faults.Fail}}
	err := s.Validate(dep.FS)
	if err == nil {
		t.Fatal("partition accepted without heartbeats")
	}
	if !strings.Contains(err.Error(), "heartbeat") {
		t.Fatalf("error %q does not explain the heartbeat requirement", err)
	}
}

// The same seed and profile always yield the same chaos schedule, and the
// generated schedule is valid for a matching deployment.
func TestChaosDeterminismAndValidity(t *testing.T) {
	dep := deployHB(t, cluster.Scenario1Ethernet)
	prof := hbProfile(faults.TargetFault, faults.HostFault, faults.NICFault, faults.SlowFault, faults.PartitionFault)
	a, err := faults.Chaos(rng.New(99), prof)
	if err != nil {
		t.Fatal(err)
	}
	b, err := faults.Chaos(rng.New(99), prof)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%+v\n%+v", a, b)
	}
	if len(a) == 0 || len(a)%2 != 0 {
		t.Fatalf("schedule has %d events, want a positive even count (closed episodes)", len(a))
	}
	if err := a.Validate(dep.FS); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	c, err := faults.Chaos(rng.New(100), prof)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// Chaos profile validation rejects the documented bad shapes.
func TestChaosProfileValidation(t *testing.T) {
	bad := []faults.Profile{
		{},
		{Duration: 10, Episodes: 2},                                                         // no kinds
		{Duration: 10, Episodes: 2, Kinds: []faults.Kind{faults.TargetFault}},               // no outage range
		{Duration: 10, Episodes: 2, Kinds: []faults.Kind{faults.Kind(9)}, MinOutage: 1, MaxOutage: 2, Hosts: 2}, // unknown kind
		{Duration: 10, Episodes: 2, Kinds: []faults.Kind{faults.SlowFault}, MinOutage: 1, MaxOutage: 2,
			MinFactor: 0.5, MaxFactor: 1.5, TargetIDs: []int{101}}, // factor >= 1
		{Duration: 10, Episodes: 2, Kinds: []faults.Kind{faults.TargetFault}, MinOutage: 1, MaxOutage: 2}, // no targets or hosts
	}
	for i, p := range bad {
		if _, err := faults.Chaos(rng.New(1), p); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
	// A profile whose only kind the deployment can't express is an error,
	// not an empty schedule.
	p := hbProfile(faults.PartitionFault)
	p.Heartbeats = false
	if _, err := faults.Chaos(rng.New(1), p); err == nil {
		t.Error("profile with no usable kinds accepted")
	}
}

// A chaos run replays bit-identically: same seed, same schedule, same
// per-rank timings.
func TestChaosReplayDeterminism(t *testing.T) {
	prof := hbProfile(faults.TargetFault, faults.SlowFault, faults.PartitionFault)
	run := func() ior.Result {
		dep := deployHB(t, cluster.Scenario1Ethernet)
		sched, err := faults.Chaos(rng.New(42), prof)
		if err != nil {
			t.Fatal(err)
		}
		if err := faults.NewInjector(dep.FS).Arm(sched); err != nil {
			t.Fatal(err)
		}
		params := ior.Params{Nodes: 4, PPN: 4, TransferSize: beegfs.MiB, StripeCount: 4}.WithTotalSize(8 * beegfs.GiB)
		res, err := ior.Execute(dep.FS, dep.Nodes(4), params, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatalf("run failed: %v", res.Err)
		}
		return res
	}
	a, b := run(), run()
	if a.Bandwidth != b.Bandwidth || a.Start != b.Start || a.End != b.End {
		t.Fatalf("replay diverged: %v/%v/%v vs %v/%v/%v",
			a.Bandwidth, a.Start, a.End, b.Bandwidth, b.Start, b.End)
	}
}

// runAudited drives a mirrored side-write workload under a fault schedule
// with an invariant checker attached, drains the simulation, and returns
// the checker.
func runAudited(t *testing.T, dep *cluster.Deployment, sched faults.Schedule) *faults.Checker {
	t.Helper()
	ck := faults.NewChecker(dep.FS)
	if err := faults.NewInjector(dep.FS).Arm(sched); err != nil {
		t.Fatal(err)
	}
	f, err := dep.FS.CreateMirrored("/audit/side", 2, 512*beegfs.KiB)
	if err != nil {
		t.Fatal(err)
	}
	client := dep.Nodes(1)[0]
	for i := 0; i < 4; i++ {
		off := int64(i) * 64 * beegfs.MiB
		dep.Sim.After(0.5+float64(i)*2.0, func() {
			_, err := dep.FS.StartWrite(&beegfs.WriteOp{
				Client: client, File: f, Offset: off, Length: 64 * beegfs.MiB,
				TransferSize: beegfs.MiB, App: "audit",
				OnComplete: func(simkernel.Time) {},
				OnError:    func(error) {},
			})
			if err != nil {
				t.Errorf("side write: %v", err)
			}
		})
	}
	if err := dep.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	return ck
}

// The invariants hold across a full chaos storm on the heartbeat
// platform.
func TestInvariantsHoldUnderChaos(t *testing.T) {
	dep := deployHB(t, cluster.Scenario1Ethernet)
	sched, err := faults.Chaos(rng.New(7),
		hbProfile(faults.TargetFault, faults.HostFault, faults.NICFault, faults.SlowFault, faults.PartitionFault))
	if err != nil {
		t.Fatal(err)
	}
	ck := runAudited(t, dep, sched)
	if err := ck.Check(); err != nil {
		t.Fatalf("invariants violated: %v", err)
	}
}

// The checker actually catches violations: deliberately corrupting state
// after a clean run must fail the corresponding invariant (a mutation
// test of the checker itself).
func TestInvariantCheckerCatchesMutations(t *testing.T) {
	mk := func(t *testing.T) (*cluster.Deployment, *faults.Checker) {
		dep := deployHB(t, cluster.Scenario1Ethernet)
		ck := runAudited(t, dep, faults.Schedule{
			{At: 1.0, Kind: faults.TargetFault, ID: 201, Action: faults.Fail},
			{At: 4.0, Kind: faults.TargetFault, ID: 201, Action: faults.Recover},
		})
		if err := ck.Check(); err != nil {
			t.Fatalf("clean run violated invariants: %v", err)
		}
		return dep, ck
	}

	t.Run("conservation", func(t *testing.T) {
		dep, ck := mk(t)
		// Phantom bytes on a target no file accounts for.
		if err := dep.FS.Storage().TargetByID(101).Store(123); err != nil {
			t.Fatal(err)
		}
		err := ck.Check()
		if err == nil || !strings.Contains(err.Error(), "conservation") {
			t.Fatalf("tampered byte accounting not caught: %v", err)
		}
	})
	t.Run("durability", func(t *testing.T) {
		dep, ck := mk(t)
		// Shrink the file below its largest acknowledged write.
		files := dep.FS.Meta().Files()
		if len(files) == 0 {
			t.Fatal("no surviving files")
		}
		files[0].Size -= 1
		err := ck.Check()
		if err == nil || !strings.Contains(err.Error(), "durability") {
			t.Fatalf("lost acknowledged byte not caught: %v", err)
		}
	})
}

// ErrRetriesExhausted travels as the IOFailedError's reason, matchable
// with errors.Is across the faults layer.
func TestRetryExhaustionSentinel(t *testing.T) {
	dep := deploy(t, cluster.Scenario2Omnipath)
	inj := faults.NewInjector(dep.FS)
	if err := inj.Arm(faults.Schedule{
		{At: 0.5, Kind: faults.TargetFault, ID: 201, Action: faults.Fail},
	}); err != nil {
		t.Fatal(err)
	}
	f, err := dep.FS.CreateWithPattern("/f", beegfs.StripePattern{Count: 8, ChunkSize: 512 * beegfs.KiB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var opErr error
	if _, err := dep.FS.StartWrite(&beegfs.WriteOp{
		Client: dep.Nodes(1)[0], File: f, Length: 4096 * beegfs.MiB,
		TransferSize: beegfs.MiB,
		OnComplete:   func(simkernel.Time) { t.Error("op completed under a permanent fault") },
		OnError:      func(err error) { opErr = err },
	}); err != nil {
		t.Fatal(err)
	}
	if err := dep.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(opErr, beegfs.ErrRetriesExhausted) {
		t.Fatalf("error %v does not wrap beegfs.ErrRetriesExhausted", opErr)
	}
}

// FuzzChaosInvariants: whatever profile shape the fuzzer proposes, the
// generated storm must preserve the invariants — no acked byte lost, all
// mirrors converged, byte accounting conserved, retries bounded — and the
// simulation must drain.
func FuzzChaosInvariants(f *testing.F) {
	f.Add(uint64(1), uint8(0b11111), uint8(3))
	f.Add(uint64(99), uint8(0b00101), uint8(5))
	f.Add(uint64(7), uint8(0b10000), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, kindMask, episodes uint8) {
		all := []faults.Kind{faults.TargetFault, faults.HostFault, faults.NICFault, faults.SlowFault, faults.PartitionFault}
		var kinds []faults.Kind
		for i, k := range all {
			if kindMask&(1<<i) != 0 {
				kinds = append(kinds, k)
			}
		}
		if len(kinds) == 0 {
			kinds = []faults.Kind{faults.TargetFault}
		}
		prof := hbProfile(kinds...)
		prof.Episodes = int(episodes % 6)
		sched, err := faults.Chaos(rng.New(seed), prof)
		if err != nil {
			t.Fatal(err)
		}
		dep := deployHB(t, cluster.Scenario1Ethernet)
		if err := sched.Validate(dep.FS); err != nil {
			t.Fatalf("generated schedule invalid: %v", err)
		}
		ck := runAudited(t, dep, sched)
		if err := ck.Check(); err != nil {
			t.Fatalf("invariants violated (seed %d, mask %b, episodes %d): %v", seed, kindMask, episodes, err)
		}
	})
}
