// Package repro's root benchmark harness: one benchmark per figure of the
// paper's evaluation (regenerating the figure's data and reporting its
// headline number as a custom metric), plus ablation benchmarks for the
// design choices called out in DESIGN.md.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks use a reduced repetition count per iteration;
// cmd/figures regenerates the full 100-repetition campaigns.
package repro

import (
	"testing"

	"fmt"
	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ior"

	"repro/internal/rng"
	"repro/internal/simkernel"
	"repro/internal/simnet"
	"repro/internal/stats"
)

func benchOpts(i int) experiments.Options {
	return experiments.Options{Reps: 5, Seed: uint64(i + 1), FastProtocol: true}
}

// BenchmarkFig2 regenerates Figure 2a (bandwidth vs data size, scenario 1)
// and reports the 32 GiB mean.
func BenchmarkFig2(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig2(cluster.Scenario1Ethernet, benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		mean = pts[5].Summary.Mean
	}
	b.ReportMetric(mean, "MiB/s@32GiB")
}

// BenchmarkFig4 regenerates Figure 4a (node sweep, scenario 1) and
// reports the plateau bandwidth.
func BenchmarkFig4(b *testing.B) {
	var plateau float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig4(cluster.Scenario1Ethernet, benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		plateau = pts[len(pts)-1].Summary.Mean
	}
	b.ReportMetric(plateau, "MiB/s@plateau")
}

// BenchmarkFig5 regenerates Figure 5b (ppn 8 vs 16, scenario 2) and
// reports the ppn16/ppn8 ratio below the plateau.
func BenchmarkFig5(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig5(cluster.Scenario2Omnipath, benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		ratio = series[1].Points[2].Summary.Mean / series[0].Points[2].Summary.Mean
	}
	b.ReportMetric(ratio, "ppn16/ppn8")
}

// BenchmarkFig6 regenerates Figure 6a (stripe-count sweep, scenario 1)
// and reports the count-8 mean (the paper's always-peak configuration).
func BenchmarkFig6(b *testing.B) {
	var count8 float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig6(cluster.Scenario1Ethernet, benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		count8 = pts[7].Summary.Mean
	}
	b.ReportMetric(count8, "MiB/s@count8")
}

// BenchmarkFig8 regenerates the Figure 8 allocation boxplots and reports
// the (3,3)-over-(1,3) gain (paper: >49%).
func BenchmarkFig8(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		boxes, err := experiments.Fig8(experiments.Options{Reps: 12, Seed: uint64(i + 1), FastProtocol: true})
		if err != nil {
			b.Fatal(err)
		}
		var m33, m13 float64
		for _, bx := range boxes {
			switch bx.Alloc.String() {
			case "(3,3)":
				m33 = bx.Mean
			case "(1,3)":
				m13 = bx.Mean
			}
		}
		if m13 > 0 {
			gain = m33/m13 - 1
		}
	}
	b.ReportMetric(gain*100, "gain%(3,3)/(1,3)")
}

// BenchmarkFig10 regenerates the Figure 10 boxplots and reports the
// (3,3)-over-(2,4) gain (paper: 10.15%).
func BenchmarkFig10(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		boxes, err := experiments.Fig10(experiments.Options{Reps: 12, Seed: uint64(i + 1), FastProtocol: true})
		if err != nil {
			b.Fatal(err)
		}
		var m33, m24 float64
		for _, bx := range boxes {
			switch bx.Alloc.String() {
			case "(3,3)":
				m33 = bx.Mean
			case "(2,4)":
				m24 = bx.Mean
			}
		}
		if m24 > 0 {
			gain = m33/m24 - 1
		}
	}
	b.ReportMetric(gain*100, "gain%(3,3)/(2,4)")
}

// BenchmarkFig11 regenerates Figure 11 and reports the count-8 gain from
// 16 to 32 nodes (the "more nodes for more targets" signature).
func BenchmarkFig11(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Fig11(experiments.Options{Reps: 3, Seed: uint64(i + 1), FastProtocol: true})
		if err != nil {
			b.Fatal(err)
		}
		var m16, m32 float64
		for _, c := range cells {
			if c.Count == 8 && c.Nodes == 16 {
				m16 = c.Mean
			}
			if c.Count == 8 && c.Nodes == 32 {
				m32 = c.Mean
			}
		}
		if m16 > 0 {
			gain = m32/m16 - 1
		}
	}
	b.ReportMetric(gain*100, "gain%16to32@count8")
}

// BenchmarkFig12 regenerates Figure 12 and reports the aggregate-over-
// equivalent-single ratio for 2 apps x 4 OSTs (paper: ~1.0).
func BenchmarkFig12(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12(experiments.Options{Reps: 5, Seed: uint64(i + 1), FastProtocol: true})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Apps == 2 && r.Count == 4 {
				ratio = r.AggregateMean / r.EquivalentSingleMean
			}
		}
	}
	b.ReportMetric(ratio, "agg/equiv")
}

// BenchmarkFig13 regenerates the Figure 13 analysis and reports the Welch
// p-value (paper: 0.9031; DESIGN.md §6 documents why the simulator's is
// lower).
func BenchmarkFig13(b *testing.B) {
	var p float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12(experiments.Options{Reps: 25, Seed: uint64(i + 1), FastProtocol: true})
		if err != nil {
			b.Fatal(err)
		}
		res, err := experiments.Fig13(rows)
		if err != nil {
			b.Fatal(err)
		}
		p = res.Welch.P
	}
	b.ReportMetric(p, "welch-p")
}

// --- Ablation benchmarks (DESIGN.md §4) ---

// BenchmarkAblationChooser compares the three target choosers at stripe
// count 4 in scenario 1 and reports the random chooser's coefficient of
// variation (the paper's "best case as likely as the worst case").
func BenchmarkAblationChooser(b *testing.B) {
	for _, tc := range []struct {
		name    string
		chooser func() beegfs.TargetChooser
	}{
		{"roundrobin", func() beegfs.TargetChooser { return &beegfs.RoundRobinChooser{} }},
		{"random", func() beegfs.TargetChooser { return beegfs.RandomChooser{} }},
		{"balanced", func() beegfs.TargetChooser { return &beegfs.BalancedChooser{} }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var cv float64
			for i := 0; i < b.N; i++ {
				p := cluster.PlaFRIM(cluster.Scenario1Ethernet)
				p.FS.Chooser = tc.chooser()
				dep, err := p.Deploy()
				if err != nil {
					b.Fatal(err)
				}
				src := rng.New(uint64(i + 1))
				var samples []float64
				params := ior.Params{Nodes: 8, PPN: 8, TransferSize: beegfs.MiB, StripeCount: 4}.WithTotalSize(32 * beegfs.GiB)
				for rep := 0; rep < 20; rep++ {
					dep.ReJitter(src)
					res, err := ior.Execute(dep.FS, dep.Nodes(8), params, src)
					if err != nil {
						b.Fatal(err)
					}
					samples = append(samples, res.Bandwidth)
				}
				cv = stats.SD(samples) / stats.Mean(samples)
			}
			b.ReportMetric(cv*100, "cv%")
		})
	}
}

// BenchmarkAblationContention turns the counterfactual per-target sharing
// penalty on and reruns the Figure 12 2-apps cell: with a strong
// SharePenalty sharing OSTs WOULD hurt (a 0.5 per-sharer factor drops the
// shared per-target rate below the host-controller bound, so it becomes
// the bottleneck) — quantifying exactly the effect the paper's lesson 7
// rules out.
func BenchmarkAblationContention(b *testing.B) {
	for _, tc := range []struct {
		name    string
		penalty float64
	}{
		{"off", 0},
		{"penalty0.5", 0.5},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var indiv float64
			for i := 0; i < b.N; i++ {
				p := cluster.PlaFRIM(cluster.Scenario2Omnipath)
				p.FS.Storage.SharePenalty = tc.penalty
				// Two apps forced onto the same 4 targets by pinning the
				// directory default and creating back-to-back after a full
				// cursor wrap.
				proto := experiments.Protocol{Repetitions: 10, BlockSize: 5, MinWait: 0.5, MaxWait: 1, Seed: uint64(i + 1)}
				camp := experiments.Campaign{Platform: p, Proto: proto, BackgroundCreateRate: 4}
				params := ior.Params{Nodes: 8, PPN: 8, TransferSize: beegfs.MiB, StripeCount: 4}.WithTotalSize(32 * beegfs.GiB)
				recs, err := camp.Run([]experiments.Config{{Label: "conc", Params: params, Apps: 2}})
				if err != nil {
					b.Fatal(err)
				}
				var shared []float64
				for _, r := range recs {
					if r.SharedTargets > 0 {
						for _, a := range r.Apps {
							shared = append(shared, a.Result.Bandwidth)
						}
					}
				}
				if len(shared) > 0 {
					indiv = stats.Mean(shared)
				}
			}
			b.ReportMetric(indiv, "MiB/s-shared")
		})
	}
}

// BenchmarkAblationBeta sweeps the host-controller concavity exponent and
// reports the count-8 / count-1 bandwidth ratio: beta shapes Figure 6b's
// slope.
func BenchmarkAblationBeta(b *testing.B) {
	for _, beta := range []float64{0.4, 0.596, 0.8, 1.0} {
		b.Run(betaName(beta), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				p := cluster.PlaFRIM(cluster.Scenario2Omnipath)
				p.FS.Storage.Beta = beta
				m := core.Model{FS: p.FS, ClientNIC: p.ClientNICCapacity}
				c1 := m.Bandwidth(core.NewAllocation([]int{0, 1}), 32, 8)
				c8 := m.Bandwidth(core.NewAllocation([]int{4, 4}), 32, 8)
				ratio = c8 / c1
			}
			b.ReportMetric(ratio, "count8/count1")
		})
	}
}

func betaName(beta float64) string {
	switch beta {
	case 0.4:
		return "beta0.4"
	case 0.596:
		return "beta0.596-calibrated"
	case 0.8:
		return "beta0.8"
	default:
		return "beta1.0-linear"
	}
}

// BenchmarkAblationSolver measures the weighted max-min fair-share solver
// itself — the inner loop of every simulated byte.
func BenchmarkAblationSolver(b *testing.B) {
	for _, nFlows := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("flows%d", nFlows), func(b *testing.B) {
			src := rng.New(1)
			net := simnet.New(simkernel.New())
			resources := make([]*simnet.Resource, 12)
			for i := range resources {
				resources[i] = net.AddResource(fmt.Sprintf("r%d", i), 100+src.Float64()*1000)
			}
			flows := make([]*simnet.Flow, nFlows)
			for i := range flows {
				usage := make(map[*simnet.Resource]float64)
				for _, j := range src.Perm(len(resources))[:3] {
					usage[resources[j]] = 0.25 + src.Float64()*0.75
				}
				flows[i] = &simnet.Flow{Name: fmt.Sprintf("f%d", i), Usage: usage}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				simnet.FairShare(flows)
			}
		})
	}
}

// BenchmarkAblationChunkSize sweeps the stripe size (the paper fixes
// 512 KiB) and reports scenario-1 count-4 bandwidth: larger chunks reduce
// how many targets each transfer touches but do not move the allocation
// bottleneck.
func BenchmarkAblationChunkSize(b *testing.B) {
	for _, chunkKiB := range []int64{128, 512, 2048} {
		b.Run(fmt.Sprintf("chunk%dKiB", chunkKiB), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				dep, err := cluster.PlaFRIM(cluster.Scenario1Ethernet).Deploy()
				if err != nil {
					b.Fatal(err)
				}
				src := rng.New(uint64(i + 1))
				var samples []float64
				params := ior.Params{
					Nodes: 8, PPN: 8, TransferSize: beegfs.MiB,
					StripeCount: 4, ChunkSize: chunkKiB * beegfs.KiB,
				}.WithTotalSize(32 * beegfs.GiB)
				for rep := 0; rep < 10; rep++ {
					dep.ReJitter(src)
					res, err := ior.Execute(dep.FS, dep.Nodes(8), params, src)
					if err != nil {
						b.Fatal(err)
					}
					samples = append(samples, res.Bandwidth)
				}
				mean = stats.Mean(samples)
			}
			b.ReportMetric(mean, "MiB/s")
		})
	}
}

// BenchmarkAblationMirroring quantifies buddy mirroring's write cost: the
// logical bandwidth of a mirrored count-4 file (all 8 targets active,
// every byte written twice) against the unmirrored count-8 peak.
func BenchmarkAblationMirroring(b *testing.B) {
	for _, mirrored := range []bool{false, true} {
		name := "unmirrored-count8"
		if mirrored {
			name = "mirrored-count4"
		}
		b.Run(name, func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				p := cluster.PlaFRIM(cluster.Scenario2Omnipath)
				p.FS.Storage.HostJitterCV = 0
				p.FS.Storage.TargetJitterCV = 0
				dep, err := p.Deploy()
				if err != nil {
					b.Fatal(err)
				}
				fsys := dep.FS
				var file *beegfs.File
				if mirrored {
					file, err = fsys.CreateMirrored("/m", 4, 512*beegfs.KiB)
				} else {
					file, err = fsys.CreateWithPattern("/m", beegfs.StripePattern{Count: 8, ChunkSize: 512 * beegfs.KiB}, nil)
				}
				if err != nil {
					b.Fatal(err)
				}
				var done float64
				pending := 32
				for n := 0; n < 32; n++ {
					client := fsys.NewClient(fmt.Sprintf("n%02d", n), 0)
					if _, err := fsys.StartWrite(&beegfs.WriteOp{
						Client: client, File: file,
						Offset: int64(n) * beegfs.GiB, Length: 1 * beegfs.GiB,
						TransferSize: beegfs.MiB, Procs: 8,
						OnComplete: func(at simkernel.Time) {
							pending--
							if pending == 0 {
								done = float64(at)
							}
						},
					}); err != nil {
						b.Fatal(err)
					}
				}
				if err := dep.Sim.Run(); err != nil {
					b.Fatal(err)
				}
				bw = 32 * 1024 / done
			}
			b.ReportMetric(bw, "MiB/s")
		})
	}
}
