package obs

import (
	"errors"
	"strings"
	"sync"
	"time"
)

// This file is the collector→router→sink pipeline the rest of the
// observability layer hangs off (modelled on ClusterCockpit's
// cc-metric-collector split of concerns):
//
//	instrumented layers ─▶ Collector (per-worker shard)
//	                          │ Flush (once per repetition)
//	                          ▼
//	                       Router (relabel / filter rules)
//	                          ▼
//	                       Registry (commutatively merged model)
//	                          ▼ Snapshot
//	                       Sinks (JSON · Prometheus · Influx · trace · CSV)
//
// Determinism is the design driver, exactly as for the PR 5 registry:
//
//   - Collectors are single-goroutine shards. A campaign worker records a
//     whole repetition into its private collector and flushes once; the
//     flush folds counters (addition), maxima (max) and histograms
//     (bucket-wise addition) into the shared registry. Every fold is
//     commutative and associative, so the merged model — and therefore
//     every file a sink writes — is identical at any worker count and any
//     flush interleaving.
//   - The router rewrites or drops metric *names* only; it never touches
//     values, so routing cannot break the commutativity argument.
//   - Sinks render Snapshots: fully sorted, immutable copies of the
//     merged model. Two equal models render byte-identical files in every
//     encoding (JSON, Prometheus exposition, Influx line protocol).
//   - Wall-clock-derived quantities stay confined to the RuntimePrefix
//     namespace; progress ETAs (inherently wall-clock) are served by the
//     live endpoints only and never written to deterministic exports.
//
// Everything is nil-safe: a nil *Pipeline hands out nil *Collectors whose
// methods return immediately, so call sites need no enabled checks and
// the disabled path costs one pointer comparison (asserted by
// TestPipelineDisabledZeroCost and BenchmarkPipelineEmitDisabled).

// Kind classifies a metric point.
type Kind uint8

const (
	// KindCount accumulates by addition (monotone counter).
	KindCount Kind = iota
	// KindMax accumulates by maximum (high-water gauge).
	KindMax
	// KindSample accumulates into a log-2 histogram.
	KindSample
)

// Point is one typed metric observation. Points carry uint64 values like
// the registry they merge into; quantities that are conceptually floats
// (rates, residuals) are scaled to integers by their emitters so that
// merging stays exactly associative.
type Point struct {
	Name  string
	Kind  Kind
	Value uint64
}

// Recorder is the write interface shared by the Registry (direct,
// mutex-guarded) and the Collector (single-goroutine shard). Layers that
// flush per-repetition stats take a Recorder so the same code serves both
// the plain -metrics path and the pipeline.
type Recorder interface {
	Add(name string, v uint64)
	Max(name string, v uint64)
	Observe(name string, v uint64)
	MergeHist(name string, src *Log2Hist)
}

// Rule is one router rule, matched by metric-name prefix. The first
// matching rule wins: Drop discards the point, otherwise Rewrite (when
// non-empty) replaces the matched prefix. A zero Prefix matches every
// name.
type Rule struct {
	Prefix  string
	Drop    bool
	Rewrite string
}

// route applies the first matching rule. The returned bool is false when
// the point should be dropped.
func route(rules []Rule, name string) (string, bool) {
	for _, r := range rules {
		if !strings.HasPrefix(name, r.Prefix) {
			continue
		}
		if r.Drop {
			return "", false
		}
		if r.Rewrite != "" {
			return r.Rewrite + name[len(r.Prefix):], true
		}
		return name, true
	}
	return name, true
}

// runState tracks one campaign's live progress: repetitions completed out
// of a known total. Completions accumulate by addition, so progress is as
// order-independent as every other pipeline quantity; the wall-clock
// start (for ETA estimation) is live-endpoint-only state.
type runState struct {
	label     string
	total     uint64
	done      uint64
	wallStart time.Time
}

// RunStatus is the exported view of one campaign's progress. EtaS and
// RateRepsPerS derive from wall-clock time and are therefore only
// populated by live introspection (Pipeline.Runs, the /runs endpoint) —
// deterministic exports carry Done/Total only.
type RunStatus struct {
	Label string `json:"label"`
	Done  uint64 `json:"completed"`
	Total uint64 `json:"total"`
	// RateRepsPerS is the mean completion rate since the run started.
	RateRepsPerS float64 `json:"rate_reps_per_s,omitempty"`
	// EtaS estimates the remaining seconds at the mean rate (0 when done
	// or unknown).
	EtaS float64 `json:"eta_s,omitempty"`
}

// Sink consumes snapshots of the merged metric model. Flush may be called
// any number of times with intermediate snapshots (live file tailing);
// Close receives the final snapshot and must release resources. Sinks are
// called with the pipeline's sink mutex held, never concurrently.
type Sink interface {
	Name() string
	Flush(snap *Snapshot) error
	Close(snap *Snapshot) error
}

// Pipeline owns the merged registry, the optional tracer, the router
// rules, the sink set and the campaign progress table. All methods are
// safe on a nil *Pipeline.
type Pipeline struct {
	reg *Registry

	mu     sync.Mutex
	rules  []Rule
	sinks  []Sink
	tracer *Tracer
	runs   map[string]*runState
	order  []string
	free   []*Collector
}

// NewPipeline returns an empty pipeline with a fresh registry, no rules
// and no sinks.
func NewPipeline() *Pipeline {
	return &Pipeline{
		reg:  NewRegistry(),
		runs: make(map[string]*runState),
	}
}

// Registry returns the pipeline's merged metric model (nil for a nil
// pipeline). Direct registry writes bypass the router; they are how
// pre-pipeline call sites keep working unchanged.
func (p *Pipeline) Registry() *Registry {
	if p == nil {
		return nil
	}
	return p.reg
}

// EnableTrace creates (once) and returns the pipeline's tracer. Trace and
// utilization-CSV sinks call it when configured; without such a sink the
// pipeline carries no tracer and repetitions skip event recording.
func (p *Pipeline) EnableTrace() *Tracer {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tracer == nil {
		p.tracer = NewTracer()
	}
	return p.tracer
}

// Tracer returns the pipeline's tracer, nil unless EnableTrace ran.
func (p *Pipeline) Tracer() *Tracer {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tracer
}

// SetRules installs the router's relabel/filter rules. Install before
// emission starts; rules are applied at collector flush time.
func (p *Pipeline) SetRules(rules []Rule) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.rules = rules
	p.mu.Unlock()
}

// AddSink appends a sink to the fan-out set.
func (p *Pipeline) AddSink(s Sink) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.sinks = append(p.sinks, s)
	p.mu.Unlock()
}

// Collector hands out a collector shard (recycled from the flushed pool
// when possible). A nil pipeline returns a nil collector, whose methods
// all no-op — the disabled path.
func (p *Pipeline) Collector() *Collector {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return c
	}
	p.mu.Unlock()
	return &Collector{
		p:        p,
		counters: make(map[string]uint64),
		maxima:   make(map[string]uint64),
		hists:    make(map[string]*histogram),
	}
}

// StartRun registers (idempotently) a campaign label with its total
// repetition count for progress tracking.
func (p *Pipeline) StartRun(label string, total int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.runs[label]; ok {
		return
	}
	p.runs[label] = &runState{label: label, total: uint64(total), wallStart: time.Now()}
	p.order = append(p.order, label)
}

// RepDone streams one completed repetition for the labelled run. Safe to
// call from any campaign worker; completions merge by addition.
func (p *Pipeline) RepDone(label string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if r := p.runs[label]; r != nil {
		r.done++
	}
	p.mu.Unlock()
}

// Runs returns the live progress table in StartRun order, with wall-clock
// rate and ETA estimates filled in (the /runs endpoint's payload).
func (p *Pipeline) Runs() []RunStatus {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]RunStatus, 0, len(p.order))
	for _, label := range p.order {
		r := p.runs[label]
		st := RunStatus{Label: r.label, Done: r.done, Total: r.total}
		if elapsed := time.Since(r.wallStart).Seconds(); elapsed > 0 && r.done > 0 {
			st.RateRepsPerS = float64(r.done) / elapsed
			if r.done < r.total {
				st.EtaS = float64(r.total-r.done) / st.RateRepsPerS
			}
		}
		out = append(out, st)
	}
	return out
}

// Snapshot assembles the sorted, immutable view of the merged model plus
// the progress table (Done/Total only — no wall-clock derivatives).
func (p *Pipeline) Snapshot() *Snapshot {
	if p == nil {
		return &Snapshot{}
	}
	snap := p.reg.Snapshot()
	p.mu.Lock()
	for _, label := range p.order {
		r := p.runs[label]
		snap.Runs = append(snap.Runs, RunStatus{Label: r.label, Done: r.done, Total: r.total})
	}
	p.mu.Unlock()
	return snap
}

// FlushSinks renders the current snapshot into every sink (live file
// tailing between repetitions; final state is written by Close).
func (p *Pipeline) FlushSinks() error {
	if p == nil {
		return nil
	}
	snap := p.Snapshot()
	p.mu.Lock()
	defer p.mu.Unlock()
	var errs []error
	for _, s := range p.sinks {
		if err := s.Flush(snap); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Close renders the final snapshot into every sink and closes them. The
// pipeline must not be used afterwards.
func (p *Pipeline) Close() error {
	if p == nil {
		return nil
	}
	snap := p.Snapshot()
	p.mu.Lock()
	sinks := p.sinks
	p.sinks = nil
	p.mu.Unlock()
	var errs []error
	for _, s := range sinks {
		if err := s.Close(snap); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Collector is a per-worker metric shard: a single goroutine records a
// repetition's points into plain maps (no locks, no atomics), then Flush
// routes and folds them into the pipeline's registry in one critical
// section. The hot emit path performs zero allocations once a metric's
// cell exists (BenchmarkPipelineEmit); all methods no-op on a nil
// receiver.
type Collector struct {
	p        *Pipeline
	counters map[string]uint64
	maxima   map[string]uint64
	hists    map[string]*histogram
}

// Emit records one typed point.
func (c *Collector) Emit(pt Point) {
	if c == nil {
		return
	}
	switch pt.Kind {
	case KindCount:
		c.counters[pt.Name] += pt.Value
	case KindMax:
		if pt.Value > c.maxima[pt.Name] {
			c.maxima[pt.Name] = pt.Value
		}
	case KindSample:
		c.hist(pt.Name).observe(pt.Value)
	}
}

// Add increments the named counter by v.
func (c *Collector) Add(name string, v uint64) {
	if c == nil {
		return
	}
	c.counters[name] += v
}

// Max raises the named high-water gauge to v if v exceeds it.
func (c *Collector) Max(name string, v uint64) {
	if c == nil {
		return
	}
	if v > c.maxima[name] {
		c.maxima[name] = v
	}
}

// Observe records one histogram sample.
func (c *Collector) Observe(name string, v uint64) {
	if c == nil {
		return
	}
	c.hist(name).observe(v)
}

// MergeHist folds a repetition-local histogram into the shard.
func (c *Collector) MergeHist(name string, src *Log2Hist) {
	if c == nil || src.Count == 0 {
		return
	}
	h := c.hist(name)
	h.count += src.Count
	h.sum += src.Sum
	for i, b := range src.Buckets {
		h.buckets[i] += b
	}
}

func (c *Collector) hist(name string) *histogram {
	h := c.hists[name]
	if h == nil {
		h = &histogram{}
		c.hists[name] = h
	}
	return h
}

// Flush routes the shard's contents through the pipeline's rules and
// folds them into the shared registry, then clears the shard for reuse.
// Folding is commutative (add/max/bucket-add), so concurrent workers may
// flush in any order and produce the same merged model.
func (c *Collector) Flush() {
	if c == nil || c.p == nil {
		return
	}
	p := c.p
	p.mu.Lock()
	rules := p.rules
	p.mu.Unlock()
	r := p.reg
	r.mu.Lock()
	for k, v := range c.counters {
		if name, ok := route(rules, k); ok {
			r.counters[name] += v
		}
	}
	for k, v := range c.maxima {
		if name, ok := route(rules, k); ok {
			if v > r.maxima[name] {
				r.maxima[name] = v
			}
		}
	}
	for k, h := range c.hists {
		name, ok := route(rules, k)
		if !ok {
			continue
		}
		dst := r.hists[name]
		if dst == nil {
			dst = &histogram{}
			r.hists[name] = dst
		}
		dst.count += h.count
		dst.sum += h.sum
		for i, b := range h.buckets {
			dst.buckets[i] += b
		}
	}
	r.mu.Unlock()
	clear(c.counters)
	clear(c.maxima)
	clear(c.hists)
}

// Release flushes the shard and returns it to the pipeline's pool.
func (c *Collector) Release() {
	if c == nil || c.p == nil {
		return
	}
	c.Flush()
	p := c.p
	p.mu.Lock()
	p.free = append(p.free, c)
	p.mu.Unlock()
}
