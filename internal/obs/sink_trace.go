package obs

import (
	"fmt"
	"os"
)

// Trace-backed sinks: unlike the snapshot sinks, these render the
// pipeline's event tracer rather than the merged metric model. They are
// write-once — trace events accumulate across the whole run and are only
// complete at Close — so Flush is a no-op and the file is produced
// exactly once. Constructing either sink enables the pipeline's tracer,
// which is what turns event recording on; without one of these sinks the
// pipeline carries no tracer and the simulation skips event capture
// entirely (the zero-cost contract).

// traceSink writes the Chrome trace-event JSON document at Close.
type traceSink struct {
	t    *Tracer
	path string
}

// NewTraceSink enables p's tracer and returns a sink that writes the
// Chrome trace-event JSON (chrome://tracing, Perfetto) to path when the
// pipeline closes.
func NewTraceSink(p *Pipeline, path string) Sink {
	return &traceSink{t: p.EnableTrace(), path: path}
}

func (s *traceSink) Name() string               { return "trace:" + s.path }
func (s *traceSink) Flush(snap *Snapshot) error { return nil }

func (s *traceSink) Close(snap *Snapshot) error {
	f, err := os.Create(s.path)
	if err != nil {
		return err
	}
	if err := s.t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// utilCSVSink writes per-resource utilization timelines (derived from the
// tracer's counter tracks) as one CSV per matched resource prefix.
type utilCSVSink struct {
	t    *Tracer
	path string
	// prefix selects which counter tracks render ("ost/", "oss/", ...).
	prefix string
}

// NewUtilCSVSink enables p's tracer and returns a sink that writes the
// utilization timeline CSV for counter tracks matching prefix to path
// when the pipeline closes. This is the -utilcsv flag's implementation:
// the bespoke writer the CLIs used to carry is now just a sink
// configuration.
func NewUtilCSVSink(p *Pipeline, path, prefix string) Sink {
	return &utilCSVSink{t: p.EnableTrace(), path: path, prefix: prefix}
}

func (s *utilCSVSink) Name() string               { return fmt.Sprintf("utilcsv:%s:%s", s.prefix, s.path) }
func (s *utilCSVSink) Flush(snap *Snapshot) error { return nil }

func (s *utilCSVSink) Close(snap *Snapshot) error {
	f, err := os.Create(s.path)
	if err != nil {
		return err
	}
	if err := s.t.WriteUtilCSV(f, s.prefix); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
