package simnet

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/simkernel"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func res(name string, c float64) *Resource { return &Resource{Name: name, capacity: c} }

func TestFairShareSingleBottleneck(t *testing.T) {
	l := res("link", 100)
	f1 := &Flow{Name: "a", Usage: map[*Resource]float64{l: 1}}
	f2 := &Flow{Name: "b", Usage: map[*Resource]float64{l: 1}}
	rates := FairShare([]*Flow{f1, f2})
	if !almost(rates[0], 50, 1e-9) || !almost(rates[1], 50, 1e-9) {
		t.Fatalf("rates = %v, want [50 50]", rates)
	}
}

func TestFairShareClassicMaxMin(t *testing.T) {
	// Classic 3-flow example: links L1 (cap 10) and L2 (cap 8).
	// f1 uses L1 only; f2 uses L2 only; f3 uses both.
	// Progressive filling: fill to 4 (L2 saturates: f2+f3), then f1 grows
	// to 6 on L1.
	l1 := res("L1", 10)
	l2 := res("L2", 8)
	f1 := &Flow{Name: "f1", Usage: map[*Resource]float64{l1: 1}}
	f2 := &Flow{Name: "f2", Usage: map[*Resource]float64{l2: 1}}
	f3 := &Flow{Name: "f3", Usage: map[*Resource]float64{l1: 1, l2: 1}}
	rates := FairShare([]*Flow{f1, f2, f3})
	if !almost(rates[0], 6, 1e-9) || !almost(rates[1], 4, 1e-9) || !almost(rates[2], 4, 1e-9) {
		t.Fatalf("rates = %v, want [6 4 4]", rates)
	}
}

func TestFairShareWeightedUsage(t *testing.T) {
	// A flow that puts only half its rate on a link can go twice as fast
	// when that link is the bottleneck.
	l := res("srv", 100)
	full := &Flow{Name: "full", Usage: map[*Resource]float64{l: 1}}
	half := &Flow{Name: "half", Usage: map[*Resource]float64{l: 0.5}}
	rates := FairShare([]*Flow{full, half})
	// Common fill t: t*1 + t*0.5 = 100 -> t = 66.67 for both flows.
	if !almost(rates[0], 100.0/1.5, 1e-9) || !almost(rates[1], 100.0/1.5, 1e-9) {
		t.Fatalf("rates = %v", rates)
	}
	// Link fully used: 66.67 + 33.33 = 100.
	used := rates[0]*1 + rates[1]*0.5
	if !almost(used, 100, 1e-9) {
		t.Fatalf("link usage = %v, want 100", used)
	}
}

func TestFairShareRespectsCaps(t *testing.T) {
	l := res("link", 100)
	capped := &Flow{Name: "capped", Cap: 10, Usage: map[*Resource]float64{l: 1}}
	free := &Flow{Name: "free", Usage: map[*Resource]float64{l: 1}}
	rates := FairShare([]*Flow{capped, free})
	if !almost(rates[0], 10, 1e-9) {
		t.Fatalf("capped rate = %v, want 10", rates[0])
	}
	if !almost(rates[1], 90, 1e-9) {
		t.Fatalf("free flow should take the slack: %v, want 90", rates[1])
	}
}

func TestFairShareStripedAccounting(t *testing.T) {
	// Paper Figure 9: one writer striping over allocation (1,3) across two
	// server NICs of capacity B. Host 2 carries 3/4 of the traffic, so the
	// flow rate is limited to B/(3/4) = 4B/3.
	b := 1250.0
	s1 := res("oss1", b)
	s2 := res("oss2", b)
	f := &Flow{Name: "w", Usage: map[*Resource]float64{s1: 0.25, s2: 0.75}}
	rates := FairShare([]*Flow{f})
	if !almost(rates[0], 4*b/3, 1e-6) {
		t.Fatalf("rate = %v, want %v", rates[0], 4*b/3)
	}
	// Balanced (2,2) reaches 2B.
	f2 := &Flow{Name: "w2", Usage: map[*Resource]float64{s1: 0.5, s2: 0.5}}
	rates = FairShare([]*Flow{f2})
	if !almost(rates[0], 2*b, 1e-6) {
		t.Fatalf("balanced rate = %v, want %v", rates[0], 2*b)
	}
}

func TestFairShareNoConstraint(t *testing.T) {
	// Flow with a cap but no resources: rate = cap.
	f := &Flow{Name: "f", Cap: 42}
	rates := FairShare([]*Flow{f})
	if !almost(rates[0], 42, 1e-9) {
		t.Fatalf("rate = %v, want 42", rates[0])
	}
}

func TestFairShareZeroCapacityResource(t *testing.T) {
	l := res("dead", 0)
	f := &Flow{Name: "f", Usage: map[*Resource]float64{l: 1}}
	rates := FairShare([]*Flow{f})
	if rates[0] != 0 {
		t.Fatalf("rate over dead link = %v, want 0", rates[0])
	}
}

// Property: max-min rates never oversubscribe any resource, and every flow
// is bottlenecked somewhere (rate can't be raised without violating a
// constraint).
func TestFairSharePropertyFeasibleAndMaximal(t *testing.T) {
	check := func(seed uint64) bool {
		src := rng.New(seed)
		nRes := 1 + src.Intn(5)
		resources := make([]*Resource, nRes)
		for i := range resources {
			resources[i] = res(string(rune('A'+i)), 10+src.Float64()*990)
		}
		nFlows := 1 + src.Intn(8)
		flows := make([]*Flow, nFlows)
		for i := range flows {
			usage := make(map[*Resource]float64)
			for _, j := range src.Perm(nRes)[:1+src.Intn(nRes)] {
				usage[resources[j]] = 0.1 + src.Float64()*0.9
			}
			flows[i] = &Flow{Name: string(rune('a' + i)), Usage: usage}
			if src.Float64() < 0.3 {
				flows[i].Cap = 1 + src.Float64()*500
			}
		}
		rates := FairShare(flows)
		// Feasibility.
		for _, r := range resources {
			load := 0.0
			for i, f := range flows {
				if w, ok := f.Usage[r]; ok {
					load += w * rates[i]
				}
			}
			if load > r.capacity+1e-6 {
				return false
			}
		}
		// Maximality: each flow is at cap or uses a saturated resource.
		for i, f := range flows {
			if f.Cap > 0 && almost(rates[i], f.Cap, 1e-6) {
				continue
			}
			saturated := false
			for r := range f.Usage {
				load := 0.0
				for j, g := range flows {
					if w, ok := g.Usage[r]; ok {
						load += w * rates[j]
					}
				}
				if load >= r.capacity-1e-6 {
					saturated = true
					break
				}
			}
			if !saturated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkSingleFlowCompletion(t *testing.T) {
	sim := simkernel.New()
	n := New(sim)
	l := n.AddResource("link", 100)
	var doneAt simkernel.Time
	f := &Flow{
		Name:   "f",
		Volume: 500,
		Usage:  map[*Resource]float64{l: 1},
		OnComplete: func(at simkernel.Time) {
			doneAt = at
		},
	}
	n.Start(f)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(doneAt), 5, 1e-9) {
		t.Fatalf("500 MiB at 100 MiB/s finished at %v, want 5", doneAt)
	}
	if !f.Done() {
		t.Fatal("flow not marked done")
	}
}

func TestNetworkTwoFlowsShareThenSpeedUp(t *testing.T) {
	// Two equal flows on a 100 MiB/s link, one 100 MiB and one 300 MiB.
	// Phase 1: both at 50 until t=2 (first finishes). Phase 2: second at
	// 100 for its remaining 200 -> finishes at t=4.
	sim := simkernel.New()
	n := New(sim)
	l := n.AddResource("link", 100)
	var t1, t2 simkernel.Time
	f1 := &Flow{Name: "a", Volume: 100, Usage: map[*Resource]float64{l: 1},
		OnComplete: func(at simkernel.Time) { t1 = at }}
	f2 := &Flow{Name: "b", Volume: 300, Usage: map[*Resource]float64{l: 1},
		OnComplete: func(at simkernel.Time) { t2 = at }}
	n.Start(f1)
	n.Start(f2)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(t1), 2, 1e-9) {
		t.Fatalf("first flow finished at %v, want 2", t1)
	}
	if !almost(float64(t2), 4, 1e-9) {
		t.Fatalf("second flow finished at %v, want 4", t2)
	}
}

func TestNetworkLateArrival(t *testing.T) {
	// Flow A (300 MiB) alone on a 100 link from t=0. At t=1, flow B
	// (100 MiB) arrives. A transferred 100 by then; both then run at 50.
	// B finishes at t=3; A has 100 left, finishes at t=4.
	sim := simkernel.New()
	n := New(sim)
	l := n.AddResource("link", 100)
	var ta, tb simkernel.Time
	fa := &Flow{Name: "a", Volume: 300, Usage: map[*Resource]float64{l: 1},
		OnComplete: func(at simkernel.Time) { ta = at }}
	n.Start(fa)
	sim.At(1, func() {
		fb := &Flow{Name: "b", Volume: 100, Usage: map[*Resource]float64{l: 1},
			OnComplete: func(at simkernel.Time) { tb = at }}
		n.Start(fb)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(tb), 3, 1e-9) {
		t.Fatalf("B finished at %v, want 3", tb)
	}
	if !almost(float64(ta), 4, 1e-9) {
		t.Fatalf("A finished at %v, want 4", ta)
	}
}

func TestNetworkAbort(t *testing.T) {
	sim := simkernel.New()
	n := New(sim)
	l := n.AddResource("link", 100)
	completed := false
	fa := &Flow{Name: "a", Volume: 1000, Usage: map[*Resource]float64{l: 1},
		OnComplete: func(simkernel.Time) { completed = true }}
	fb := &Flow{Name: "b", Volume: 100, Usage: map[*Resource]float64{l: 1}}
	n.Start(fa)
	n.Start(fb)
	sim.At(0.5, func() { n.Abort(fa) })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if completed {
		t.Fatal("aborted flow fired OnComplete")
	}
	if !fb.Done() {
		t.Fatal("remaining flow did not finish")
	}
	// After abort at t=0.5, b had 75 left at rate 100: done at 1.25.
	if !almost(float64(sim.Now()), 1.25, 1e-9) {
		t.Fatalf("sim ended at %v, want 1.25", sim.Now())
	}
}

func TestNetworkSetCapacity(t *testing.T) {
	// 100 MiB over a 100 link; at t=0.5 capacity halves. 50 transferred,
	// remaining 50 at 50 MiB/s -> finishes at 1.5.
	sim := simkernel.New()
	n := New(sim)
	l := n.AddResource("link", 100)
	var done simkernel.Time
	f := &Flow{Name: "f", Volume: 100, Usage: map[*Resource]float64{l: 1},
		OnComplete: func(at simkernel.Time) { done = at }}
	n.Start(f)
	sim.At(0.5, func() { n.SetCapacity(l, 50) })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(done), 1.5, 1e-9) {
		t.Fatalf("finished at %v, want 1.5", done)
	}
}

func TestNetworkZeroVolumeFlow(t *testing.T) {
	sim := simkernel.New()
	n := New(sim)
	l := n.AddResource("link", 100)
	fired := false
	f := &Flow{Name: "f", Volume: 0, Usage: map[*Resource]float64{l: 1},
		OnComplete: func(simkernel.Time) { fired = true }}
	n.Start(f)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("zero-volume flow never completed")
	}
	if sim.Now() != 0 {
		t.Fatalf("zero-volume flow advanced the clock to %v", sim.Now())
	}
}

func TestNetworkStalledFlowResumesOnCapacity(t *testing.T) {
	sim := simkernel.New()
	n := New(sim)
	l := n.AddResource("link", 0)
	var done simkernel.Time
	f := &Flow{Name: "f", Volume: 100, Usage: map[*Resource]float64{l: 1},
		OnComplete: func(at simkernel.Time) { done = at }}
	n.Start(f)
	sim.At(2, func() { n.SetCapacity(l, 100) })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(done), 3, 1e-9) {
		t.Fatalf("finished at %v, want 3 (stalled 2s + 1s transfer)", done)
	}
}

func TestNetworkInvalidFlowPanics(t *testing.T) {
	sim := simkernel.New()
	n := New(sim)
	defer func() {
		if recover() == nil {
			t.Fatal("flow without usage or cap accepted")
		}
	}()
	n.Start(&Flow{Name: "bad", Volume: 10})
}

func TestNetworkNegativeUsagePanics(t *testing.T) {
	sim := simkernel.New()
	n := New(sim)
	l := n.AddResource("l", 10)
	defer func() {
		if recover() == nil {
			t.Fatal("negative usage weight accepted")
		}
	}()
	n.Start(&Flow{Name: "bad", Volume: 10, Usage: map[*Resource]float64{l: -1}})
}

func TestNetworkConservation(t *testing.T) {
	// Total volume transferred equals sum of flow volumes, and the
	// makespan matches an independent hand computation for a small case.
	sim := simkernel.New()
	n := New(sim)
	l := n.AddResource("link", 10)
	vols := []float64{10, 20, 30, 40}
	finished := 0
	for i, v := range vols {
		f := &Flow{Name: string(rune('a' + i)), Volume: v,
			Usage:      map[*Resource]float64{l: 1},
			OnComplete: func(simkernel.Time) { finished++ }}
		n.Start(f)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != len(vols) {
		t.Fatalf("finished = %d, want %d", finished, len(vols))
	}
	// A single bottleneck link at 10 MiB/s moving 100 MiB total takes 10s
	// regardless of fair-sharing details.
	if !almost(float64(sim.Now()), 10, 1e-9) {
		t.Fatalf("makespan = %v, want 10", sim.Now())
	}
}

// Property: on a single shared link, makespan == totalVolume / capacity for
// any set of flow volumes (work conservation of max-min fairness).
func TestNetworkPropertyWorkConservation(t *testing.T) {
	check := func(seed uint64) bool {
		src := rng.New(seed)
		sim := simkernel.New()
		n := New(sim)
		capacity := 50 + src.Float64()*200
		l := n.AddResource("link", capacity)
		total := 0.0
		nf := 1 + src.Intn(10)
		for i := 0; i < nf; i++ {
			v := 1 + src.Float64()*100
			total += v
			n.Start(&Flow{Name: string(rune('a' + i)), Volume: v,
				Usage: map[*Resource]float64{l: 1}})
		}
		if err := sim.Run(); err != nil {
			return false
		}
		return almost(float64(sim.Now()), total/capacity, 1e-6)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFairShare64Flows(b *testing.B) {
	src := rng.New(1)
	resources := make([]*Resource, 10)
	for i := range resources {
		resources[i] = res(string(rune('A'+i)), 100+src.Float64()*1000)
	}
	flows := make([]*Flow, 64)
	for i := range flows {
		usage := make(map[*Resource]float64)
		for _, j := range src.Perm(10)[:3] {
			usage[resources[j]] = 0.25 + src.Float64()*0.75
		}
		flows[i] = &Flow{Name: string(rune('a' + i)), Usage: usage}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FairShare(flows)
	}
}

// Exactly one of OnComplete/OnAbort fires: Abort settles the transferred
// volume, then hands the remainder to OnAbort.
func TestAbortFiresOnAbortWithRemaining(t *testing.T) {
	sim := simkernel.New()
	n := New(sim)
	l := n.AddResource("link", 100)
	completed := false
	var abortedAt simkernel.Time
	var remaining float64
	f := &Flow{Name: "a", Volume: 1000, Usage: map[*Resource]float64{l: 1},
		OnComplete: func(simkernel.Time) { completed = true }}
	f.OnAbort = func(at simkernel.Time) { abortedAt = at; remaining = f.Remaining() }
	n.Start(f)
	sim.At(2, func() { n.Abort(f) })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if completed {
		t.Fatal("aborted flow fired OnComplete")
	}
	if !almost(float64(abortedAt), 2, 1e-9) {
		t.Fatalf("OnAbort at %v, want 2", abortedAt)
	}
	// 200 MiB moved before the abort.
	if !almost(remaining, 800, 1e-9) {
		t.Fatalf("remaining = %v, want 800", remaining)
	}
}

func TestFlowsUsingIsNameSorted(t *testing.T) {
	sim := simkernel.New()
	n := New(sim)
	l1 := n.AddResource("l1", 100)
	l2 := n.AddResource("l2", 100)
	for _, name := range []string{"c", "a", "b"} {
		u := map[*Resource]float64{l1: 1}
		if name == "b" {
			u = map[*Resource]float64{l2: 1}
		}
		n.Start(&Flow{Name: name, Volume: 1000, Usage: u})
	}
	got := n.FlowsUsing(l1)
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "c" {
		t.Fatalf("FlowsUsing(l1) = %v", got)
	}
	if len(n.FlowsUsing(l2)) != 1 {
		t.Fatal("FlowsUsing(l2) wrong")
	}
}

// TestAbortRebalanceObserverOrder pins the exact observer callback and
// completion/abort hook sequence around an Abort that races a completion:
// fa and fb share a 100 MiB/s link; an abort event scheduled before either
// flow started fires at t=2, the same instant fb's own completion is due
// (fb's event carries a later FIFO rank, so the abort settles first and
// drives fb.remaining to exactly 0 while fb's completion event is still
// queued). The re-balance after the abort must still report fb's rate
// change (50 -> 100) even though fb has nothing left to send, must not
// move fb's already-correct completion event (same time, same FIFO rank),
// and fb must complete at t=2 after fa's OnAbort ran inline. The
// incremental component-scoped path has to reproduce this sequence
// bit-for-bit; it is easy to silently reorder when completion reschedules
// are skipped.
func TestAbortRebalanceObserverOrder(t *testing.T) {
	sim := simkernel.New()
	n := New(sim)
	l := n.AddResource("link", 100)
	var log []string
	n.Observe(func(at simkernel.Time, f *Flow, rate float64) {
		log = append(log, fmt.Sprintf("obs t=%v %s rate=%v", at, f.Name, rate))
	})
	fa := &Flow{Name: "fa", Volume: 1000, Usage: map[*Resource]float64{l: 1}}
	fa.OnAbort = func(at simkernel.Time) {
		log = append(log, fmt.Sprintf("abort t=%v fa rem=%v", at, fa.Remaining()))
	}
	fb := &Flow{Name: "fb", Volume: 100, Usage: map[*Resource]float64{l: 1}}
	fb.OnComplete = func(at simkernel.Time) {
		log = append(log, fmt.Sprintf("done t=%v fb", at))
	}
	// Schedule the abort before the flows start so it outranks fb's
	// completion event in the t=2 FIFO tie-break.
	sim.At(2, func() { n.Abort(fa) })
	n.Start(fa)
	n.Start(fb)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"obs t=0 fa rate=100",
		"obs t=0 fa rate=50",
		"obs t=0 fb rate=50",
		"obs t=2 fa rate=0",
		"obs t=2 fb rate=100",
		"abort t=2 fa rem=900",
		"obs t=2 fb rate=0",
		"done t=2 fb",
	}
	if len(log) != len(want) {
		t.Fatalf("callback sequence:\n%s\nwant:\n%s", strings.Join(log, "\n"), strings.Join(want, "\n"))
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("callback %d = %q, want %q (full sequence:\n%s)", i, log[i], want[i], strings.Join(log, "\n"))
		}
	}
	if !fb.Done() {
		t.Fatal("fb did not complete")
	}
	if got := sim.Now(); got != 2 {
		t.Fatalf("simulation ended at %v, want 2", got)
	}
}

// TestDisjointComponentObserverSilence pins the component-scoping
// guarantee from the observer's point of view: events in one connected
// component — starts, aborts, capacity changes — must not fire observer
// callbacks for flows in another, because their rates provably cannot
// change. Before component tracking, every rebalance walked all active
// flows and stayed silent only by the rate-unchanged check; now the
// disjoint flows are not even visited.
func TestDisjointComponentObserverSilence(t *testing.T) {
	sim := simkernel.New()
	n := New(sim)
	la := n.AddResource("link-a", 100)
	lb := n.AddResource("link-b", 100)
	var log []string
	n.Observe(func(at simkernel.Time, f *Flow, rate float64) {
		log = append(log, fmt.Sprintf("obs t=%v %s rate=%v", at, f.Name, rate))
	})
	b := &Flow{Name: "b", Volume: 1000, Usage: map[*Resource]float64{lb: 1}}
	a1 := &Flow{Name: "a1", Volume: 400, Usage: map[*Resource]float64{la: 1}}
	a2 := &Flow{Name: "a2", Volume: 400, Usage: map[*Resource]float64{la: 1}}
	n.Start(b)
	n.Start(a1)
	n.Start(a2)
	sim.At(1, func() { n.Abort(a1) })
	sim.At(2, func() { n.SetCapacity(la, 50) })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// b is mentioned exactly twice: its own start and its own completion.
	// Every a-side event (the shared start at t=0, the abort at t=1, the
	// capacity change at t=2, a2's completion) leaves b unobserved.
	want := []string{
		"obs t=0 b rate=100",
		"obs t=0 a1 rate=100",
		"obs t=0 a1 rate=50",
		"obs t=0 a2 rate=50",
		"obs t=1 a1 rate=0",
		"obs t=1 a2 rate=100",
		"obs t=2 a2 rate=50",
		"obs t=7 a2 rate=0",
		"obs t=10 b rate=0",
	}
	if len(log) != len(want) {
		t.Fatalf("callback sequence:\n%s\nwant:\n%s", strings.Join(log, "\n"), strings.Join(want, "\n"))
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("callback %d = %q, want %q (full sequence:\n%s)", i, log[i], want[i], strings.Join(log, "\n"))
		}
	}
	if !b.Done() || !a2.Done() {
		t.Fatal("flows did not complete")
	}
}
