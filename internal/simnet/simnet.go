// Package simnet implements a flow-level network simulator with weighted
// max-min fair bandwidth sharing.
//
// Instead of simulating individual packets, each I/O stream is a Flow with
// a volume to transfer and a usage vector describing which resources
// (links, NICs, storage devices — anything with a capacity) it consumes and
// in what proportion. A flow transferring at rate r consumes r·w on every
// resource where its weight is w. This captures striping: a client process
// writing a file striped over k targets at rate r puts r on its own NIC but
// only r·(m_i/k) on storage host i's NIC, where m_i is the number of that
// host's targets in the stripe pattern — exactly the accounting behind the
// paper's Figure 9 timeline and the (min,max) allocation results.
//
// Rates are assigned by weighted max-min fairness (progressive filling):
// all flows grow a common fill level until some resource saturates or a
// flow hits its rate cap; saturated flows freeze and filling continues.
// This is the standard fluid approximation for TCP-like fair sharing and
// for request-level fair queueing inside storage servers.
package simnet

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"time"

	"repro/internal/simkernel"
)

// Resource is anything with a capacity that flows compete for: a network
// link, a NIC, a storage device, a host I/O controller.
type Resource struct {
	Name     string
	capacity float64 // MiB/s

	// idx is the 1-based registration order within a Network; 0 for
	// resources constructed outside a Network (FairShare-only use). It
	// gives the solver a stable, allocation-free resource ordering.
	idx int

	// nActive counts in-flight flows whose usage vector touches this
	// resource; the resource belongs to a component exactly while
	// nActive > 0.
	nActive int

	// comp is the connected component the resource currently belongs to,
	// nil while no in-flight flow touches it.
	comp *component

	// uf is rebuild scratch: the resource's position within its
	// component's resource list during a union-find pass. The
	// hierarchical solver reuses it between rebuilds as the resource's
	// partition slot (group index for locals, separator-list index for
	// separators); both users fully re-derive it before reading.
	uf int32

	// sep marks a declared separator resource (see Network.SetSeparators):
	// a fabric aggregate — rack uplink, core switch — the hierarchical
	// solver coordinates across instead of solving inside any one
	// rack-local subproblem. Plain solves ignore the flag entirely.
	sep bool

	// users is the list of in-flight flows whose usage vector touches this
	// resource, with their weights — the transpose of Flow.uses. It is
	// maintained by retain/release in O(1) per edge (append on insert,
	// swap-remove via the back-indices below) and gives the solver
	// O(users) bottleneck freezing (instead of scanning every flow) and
	// the fault injector O(matches) flow lookup. The list is unordered:
	// freeze order within a pass has no floating-point effect, and the
	// fault-injection accessors sort their output.
	users []resUse

	// usersInline is the initial backing array of users (see insertUser):
	// it keeps the index heap-allocation-free for the common resource
	// that never has more than a few concurrent users.
	usersInline [4]resUse

	// scratch used by the solver
	load float64
	sumW float64
}

// resUse is one entry of a resource's user index: an in-flight flow
// touching the resource and the fraction of the flow's rate it consumes
// here. ui is the index of this resource in f.uses, so a swap-remove can
// repair the displaced entry's back-index in O(1).
type resUse struct {
	f  *Flow
	w  float64
	ui int32
}

// insertUser appends the ui-th usage-vector entry of f to the user index
// and records the position in the entry's back-index. The index starts
// in the resource's inline backing array: deployments (and so resources)
// are churned every campaign repetition, and most resources never see
// more than a handful of concurrent users, so staying inline keeps the
// index allocation-free for them; append spills busier resources (the
// shared client ramp) to the heap transparently.
func (r *Resource) insertUser(f *Flow, ui int) {
	if r.users == nil {
		r.users = r.usersInline[:0]
	}
	f.uses[ui].upos = int32(len(r.users))
	r.users = append(r.users, resUse{f: f, w: f.uses[ui].w, ui: int32(ui)})
}

// removeUser deletes the ui-th usage-vector entry of f from the user
// index by swap-remove, repairing the back-index of the entry moved into
// the vacated slot.
func (r *Resource) removeUser(f *Flow, ui int) {
	pos := int(f.uses[ui].upos)
	last := len(r.users) - 1
	if pos != last {
		moved := r.users[last]
		r.users[pos] = moved
		moved.f.uses[moved.ui].upos = int32(pos)
	}
	r.users[last] = resUse{}
	r.users = r.users[:last]
}

// Capacity returns the resource's current capacity in MiB/s.
func (r *Resource) Capacity() float64 { return r.capacity }

// ResourceShare is one entry of a flow's dense usage vector: a resource
// and the fraction of the flow's rate consumed on it.
type ResourceShare struct {
	Res *Resource
	W   float64
}

// use is one dense entry of a flow's usage vector: a resource and the
// fraction of the flow's rate consumed on it. upos is the entry's current
// position in res.users while the flow is in flight (maintained by
// retain/release).
type use struct {
	res  *Resource
	w    float64
	upos int32
}

// Flow is a data stream with a fixed volume routed over a set of resources.
type Flow struct {
	Name   string
	Volume float64 // MiB to transfer in total

	// Cap, when positive, bounds the flow's rate (MiB/s) regardless of
	// resource availability. Used for per-process client-side limits.
	Cap float64

	// Usage maps each resource the flow touches to the fraction of the
	// flow's rate consumed on it (usually 1 for its own NIC, m_i/k for a
	// storage host's share of a striped write). It is the construction
	// API; Start compiles it into a dense slice the solver iterates
	// without map lookups.
	Usage map[*Resource]float64

	// UsageList is the allocation-light alternative to Usage: a dense
	// list of (resource, weight) entries, taking precedence over Usage
	// when non-nil. Entries may repeat a resource; their weights add, in
	// list order, exactly as repeated `Usage[r] += w` insertions would.
	// Start compiles the list synchronously and never reads it again, so
	// a caller issuing many flows may reuse one backing slice, detaching
	// it (UsageList = nil) once Start returns.
	UsageList []ResourceShare

	// OnComplete, if non-nil, fires when the last byte is transferred.
	OnComplete func(at simkernel.Time)

	// OnAbort, if non-nil, fires when the flow is removed via Abort before
	// completion (fault injection). The flow's Remaining() is settled to
	// the abort instant, so callers can re-issue exactly the unsent volume.
	// Exactly one of OnComplete/OnAbort fires per started flow.
	OnAbort func(at simkernel.Time)

	// uses is the dense, (idx, name)-sorted compilation of Usage, built
	// once per Start so the solver's hot loops touch no maps.
	uses []use

	// remaining is the unsent volume as of settledAt; the live value is
	// remaining - rate·(now - settledAt). Settlement is lazy: the network
	// integrates a flow only when an event touches its component, so the
	// cost of keeping volumes current scales with the component, not with
	// the whole active set.
	remaining float64
	settledAt simkernel.Time

	rate    float64
	started simkernel.Time
	done    bool
	inNet   bool
	seq     uint64 // start order; tie-break for equal names
	event   *simkernel.Event
	comp    *component
	net     *Network

	frozen bool // solver scratch

	// fpass is solver scratch: the waterfill pass this flow froze in
	// during the last trajectory-recorded solve (fpassNever while
	// unfrozen). The warm-start path reads it to reconstruct, bit for
	// bit, the bottleneck sums a re-solve without the departed flow
	// would have formed.
	fpass int32

	// hgroup is hierarchical-solver scratch: the flow's rack-local group
	// slot for the current partition, with hsepBit set when the flow's
	// usage vector touches a separator. Re-derived by every partition.
	hgroup int32

	// Hierarchical-mode per-flow compilation, built once per Start by
	// unionFlow (only when the mode is on) so every subsequent partition
	// and re-accumulation pass skips the uses walk:
	//
	//   hroot  — union-find handle of the flow's local (non-separator)
	//            resources: any member's root at start time. The union-find
	//            only coarsens, so find(hroot) always yields the flow's
	//            current group root; -1 for separator-only flows.
	//   hsep   — static flag: the usage vector touches >= 1 separator.
	//   huses  — the uses entries regrouped locals-first (huses[:hnlocal])
	//            then separators (huses[hnlocal:]), each segment in original
	//            uses order so per-resource accumulation order — and hence
	//            every IEEE sum — is unchanged. The entries are copies:
	//            bounded-mode clone swaps rewrite f.uses only, so the
	//            separator segment always points at the real separators,
	//            which is exactly what the exact solve wants.
	hroot   int32
	hsep    bool
	huses   []use
	hnlocal int32
}

// Rate returns the flow's current fair-share rate in MiB/s.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the volume not yet transferred, in MiB. Settlement is
// lazy, so for an in-flight flow the stored volume is integrated up to the
// current virtual time on access — without disturbing the stored state, so
// observing a flow cannot perturb the simulation's arithmetic.
func (f *Flow) Remaining() float64 {
	if f.inNet && f.net != nil {
		if dt := float64(f.net.sim.Now() - f.settledAt); dt > 0 && f.rate > 0 {
			rem := f.remaining - f.rate*dt
			if rem < 0 {
				rem = 0
			}
			return rem
		}
	}
	return f.remaining
}

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// Started returns the virtual time the flow was started.
func (f *Flow) Started() simkernel.Time { return f.started }

// usesRes reports whether the flow's compiled usage vector touches r.
func (f *Flow) usesRes(r *Resource) bool {
	for i := range f.uses {
		if f.uses[i].res == r {
			return true
		}
	}
	return false
}

// buildUses compiles f.UsageList (or, when that is nil, f.Usage) into the
// dense uses slice, validating weights. The slice is ordered by
// (registration idx, name) so solver iteration order never depends on map
// iteration.
func (f *Flow) buildUses() {
	n := len(f.Usage)
	if f.UsageList != nil {
		n = len(f.UsageList)
	}
	if cap(f.uses) < n {
		f.uses = make([]use, 0, n)
	} else {
		f.uses = f.uses[:0]
	}
	if f.UsageList != nil {
		for _, e := range f.UsageList {
			if e.W <= 0 {
				panic(fmt.Sprintf("simnet: non-positive usage weight %v on %s", e.W, e.Res.Name))
			}
			f.uses = append(f.uses, use{res: e.Res, w: e.W})
		}
	} else {
		for r, w := range f.Usage {
			if w <= 0 {
				panic(fmt.Sprintf("simnet: non-positive usage weight %v on %s", w, r.Name))
			}
			f.uses = append(f.uses, use{res: r, w: w})
		}
	}
	// Insertion sort into (idx, Name) order: usage vectors are small (one
	// entry per touched resource), and an inlined sort keeps Start off the
	// sort.Slice closure allocation. The sort is stable (strict-greater
	// shifts only), which the duplicate merge below relies on.
	for i := 1; i < len(f.uses); i++ {
		u := f.uses[i]
		j := i
		for ; j > 0; j-- {
			a, b := f.uses[j-1].res, u.res
			if a.idx < b.idx || (a.idx == b.idx && a.Name <= b.Name) {
				break
			}
			f.uses[j] = f.uses[j-1]
		}
		f.uses[j] = u
	}
	if f.UsageList != nil {
		// A list may name a resource more than once where a map insert
		// would have accumulated in place. Stable sort keeps duplicates in
		// list order, so summing adjacent runs adds the weights in exactly
		// the sequence repeated map insertions would have.
		k := 0
		for i := 0; i < len(f.uses); i++ {
			if k > 0 && f.uses[k-1].res == f.uses[i].res {
				f.uses[k-1].w += f.uses[i].w
				continue
			}
			f.uses[k] = f.uses[i]
			k++
		}
		f.uses = f.uses[:k]
	}
}

// Network couples a set of resources and active flows to a simulation
// clock. All mutation methods must be called from within the simulation's
// event loop (or before it starts).
//
// The in-flight state is kept in persistent, incrementally maintained
// sorted registries, partitioned into connected components of the
// flow↔resource graph. An event (flow start, completion, abort, capacity
// change) settles, re-solves and reschedules only the component it
// touches; every other component's rates, unsent volumes and completion
// events are left untouched. Steady-state rebalancing performs no heap
// allocations: no map collection, no per-call sorting, and completion
// events are rescheduled in place rather than reallocated.
type Network struct {
	sim       *simkernel.Simulation
	resources []*Resource

	// nActive counts in-flight flows; the flows themselves live only in
	// their component's (Name, seq)-sorted registry, which backs both the
	// solver and the public queries (FlowsUsing and friends).
	nActive int

	// comps holds the live connected components in creation order.
	comps []*component

	// compPool recycles emptied component structs.
	compPool []*component

	// oldRates is observer scratch reused across rebalances.
	oldRates []float64

	// Scratch buffers for component merge, rebuild and Start, reused
	// across events so the steady state stays off the allocator.
	mergeFlows  []*Flow
	mergeRes    []*Resource
	mergeCapped []*Flow
	ufParent    []int32
	fragOf      []int32
	frags       []*component
	startComps  []*component

	// forceGlobal, when set before any flow starts, keeps every flow in
	// one component so each event settles and re-solves the whole active
	// set — the historical global-solve behavior. It exists for
	// benchmarks and differential tests; campaigns never set it.
	forceGlobal bool

	// sv is the incremental waterfill's scratch state. Each Network owns
	// its own: parallel campaigns give every worker a private Network, so
	// solver scratch must never be package-level.
	sv solver

	// hier, when non-nil, holds the hierarchical solve mode's state and
	// scratch (see hier.go). Components whose resource graph splits into
	// two or more rack-local groups along the declared separator set are
	// solved by partition; everything else falls back to sv.
	hier *hierState

	// Batched-mode state (see batch.go). batchWorkers > 0 enables
	// same-instant event batching; > 1 additionally fans independent dirty
	// components over that many solver goroutines at flush time.
	batchWorkers int
	nextCompID   uint64
	dirtyComps   []*component
	flushComps   []*component
	flushEvent   *simkernel.Event
	flushArmed   bool
	flushFn      func()
	// Parallel-flush scratch: per-worker solvers (+ private stats merged
	// after the join) and per-component solve outcomes, all indexed so the
	// serial finish phase replays them in component-id order.
	psv         []solver
	workerStats []Stats
	warmDone    []bool
	hierOf      []bool
	livePasses  []int
	replayedOf  []int
	groupsOf    []int
	batchRates  []float64
	rateOff     []int

	batchObserver func(at simkernel.Time, info BatchInfo)

	nextSeq  uint64
	observer func(at simkernel.Time, f *Flow, rate float64)

	// stats, when non-nil, receives solver activity counts (see SetStats).
	stats *Stats
	// solveObserver and resObserver are the tracing hooks (see
	// ObserveSolves and ObserveResources). Like observer, they are
	// read-only taps: the network never lets them influence arithmetic.
	solveObserver func(at simkernel.Time, info SolveInfo)
	resObserver   func(at simkernel.Time, r *Resource, load float64)
}

// Components returns the number of live connected components: the unit of
// work for an incremental rebalance. Exposed for tests and diagnostics.
func (n *Network) Components() int { return len(n.comps) }

// Observe registers a callback invoked whenever a flow's fair-share rate
// changes: at flow start, at every re-balance that moves its rate, and
// with rate 0 at completion or abort. Used by the trace recorder to build
// bandwidth timelines (Figure 9 style) from live simulations. Pass nil to
// remove the observer.
func (n *Network) Observe(fn func(at simkernel.Time, f *Flow, rate float64)) {
	n.observer = fn
}

// New creates an empty network bound to the simulation clock.
func New(sim *simkernel.Simulation) *Network {
	return &Network{sim: sim}
}

// AddResource registers a resource with the given capacity (MiB/s).
func (n *Network) AddResource(name string, capacity float64) *Resource {
	if capacity < 0 {
		panic(fmt.Sprintf("simnet: negative capacity %v for %s", capacity, name))
	}
	r := &Resource{Name: name, capacity: capacity, idx: len(n.resources) + 1}
	n.resources = append(n.resources, r)
	return r
}

// SetCapacity changes a resource's capacity and immediately re-balances
// the connected component of flows riding it; flows in other components
// are not settled, re-solved or rescheduled. Used by the storage model
// when the number of active targets on a host changes (concave controller
// capacity) and by the interference injector.
func (n *Network) SetCapacity(r *Resource, capacity float64) {
	if capacity < 0 {
		panic(fmt.Sprintf("simnet: negative capacity %v for %s", capacity, r.Name))
	}
	if r.capacity == capacity {
		return
	}
	if r.comp == nil {
		// No in-flight flow touches r, so no rate can change — but the
		// historical solver settled and rescheduled every flow on every
		// capacity change, and completion instants drift by ULPs with the
		// settlement cadence. Reproduce that cadence so runs stay
		// bit-identical to the global-solve implementation.
		r.capacity = capacity
		n.settleRescheduleAll()
		return
	}
	// A stale component (one that may have split since the last flow
	// removal) is deliberately NOT rebuilt here: solving the still-merged
	// union is equally correct and deterministic, and membership is only
	// re-derived when a Start actually needs it. See detach.
	now := n.sim.Now()
	n.settleComp(r.comp, now)
	r.capacity = capacity
	if n.batchWorkers > 0 {
		n.markDirty(r.comp, nil, TriggerCapacity)
		return
	}
	n.rebalanceComp(r.comp, now, nil, TriggerCapacity)
}

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return n.nActive }

// retain bumps the refcount of every resource f touches, registering
// newly touched resources in c's idx-ordered resource list.
func (n *Network) retain(f *Flow, c *component) {
	for i := range f.uses {
		r := f.uses[i].res
		if r.nActive == 0 {
			r.comp = c
			c.insertResource(r)
		}
		r.nActive++
		r.insertUser(f, i)
	}
	if n.hier != nil {
		n.hier.unionFlow(f)
	}
}

// release drops the refcounts taken by retain, removing resources no
// in-flight flow touches any more from their component.
func (n *Network) release(f *Flow) {
	for i := range f.uses {
		r := f.uses[i].res
		r.nActive--
		r.removeUser(f, i)
		if r.nActive == 0 {
			r.comp.removeResource(r)
			r.comp = nil
			if n.resObserver != nil {
				// The departing flow was the resource's last user: close
				// its utilization timeline with an explicit zero sample.
				n.resObserver(n.sim.Now(), r, 0)
			}
		}
	}
}

// Start begins transferring a flow. The flow's Volume, Usage and optional
// Cap/OnComplete must be set; Start panics on a zero-usage flow with
// positive volume, which would never finish.
//
// Start unions the components of every resource the flow touches into
// one, settles and re-solves that merged component, and leaves all other
// components alone.
func (n *Network) Start(f *Flow) {
	if f.Volume < 0 {
		panic("simnet: negative flow volume")
	}
	if len(f.Usage) == 0 && len(f.UsageList) == 0 && f.Cap <= 0 && f.Volume > 0 {
		panic("simnet: flow with no resource usage and no cap cannot be paced")
	}
	if f.inNet {
		panic(fmt.Sprintf("simnet: flow %s started while already in flight", f.Name))
	}
	f.buildUses()
	now := n.sim.Now()
	f.remaining = f.Volume
	f.started = now
	f.settledAt = now
	f.done = false
	f.net = n
	f.seq = n.nextSeq
	n.nextSeq++
	// Settle the components about to merge, rebuilding stale ones whose
	// accumulated removals have earned an O(component) union-find pass;
	// rebuild fragments that do not carry any of f's resources re-solve
	// immediately and take no further part in the start.
	n.collectStartComps(f)
	for _, c := range n.startComps {
		n.settleComp(c, now)
	}
	split := false
	for _, c := range n.startComps {
		if !c.stale || 2*c.removals < len(c.flows) {
			continue
		}
		frags := n.rebuildComp(c)
		if len(frags) == 1 {
			continue
		}
		split = true
		for i := range f.uses {
			if rc := f.uses[i].res.comp; rc != nil {
				rc.mark = true
			}
		}
		for _, frag := range frags {
			if frag.mark {
				continue
			}
			if n.batchWorkers > 0 {
				// Deferred mode: the fragment's solve joins the instant's
				// batch. A fragment split off a component that was already
				// dirty inherits its own mark here, so no pending work is
				// lost across the split.
				n.markDirty(frag, nil, TriggerStart)
				continue
			}
			n.rebalanceComp(frag, now, nil, TriggerStart)
		}
		for i := range f.uses {
			if rc := f.uses[i].res.comp; rc != nil {
				rc.mark = false
			}
		}
	}
	// If a rebuild split membership, re-collect the target components;
	// then union them, preferring the largest as the merge destination
	// (ties break to collection order, which is deterministic).
	if split {
		n.collectStartComps(f)
	}
	var target *component
	if len(n.startComps) == 0 {
		target = n.newComp()
	} else {
		target = n.startComps[0]
		for _, c := range n.startComps {
			if len(c.flows) > len(target.flows) {
				target = c
			}
		}
		for _, c := range n.startComps {
			if c != target {
				n.mergeComp(target, c)
			}
		}
	}
	target.insertFlow(f)
	f.comp = target
	n.nActive++
	n.retain(f, target)
	f.inNet = true
	if n.batchWorkers > 0 {
		n.markDirty(target, nil, TriggerStart)
		return
	}
	n.rebalanceComp(target, now, nil, TriggerStart)
}

// collectStartComps gathers the distinct live components of f's resources
// into the startComps scratch slice — every component of the whole
// network when forceGlobal is set.
func (n *Network) collectStartComps(f *Flow) {
	n.startComps = n.startComps[:0]
	if n.forceGlobal {
		n.startComps = append(n.startComps, n.comps...)
		return
	}
	for i := range f.uses {
		if c := f.uses[i].res.comp; c != nil && !c.mark {
			c.mark = true
			n.startComps = append(n.startComps, c)
		}
	}
	for _, c := range n.startComps {
		c.mark = false
	}
}

// Abort removes a flow before completion without firing OnComplete. The
// flow's OnAbort hook (if any) fires after the rest of its component has
// been re-balanced, with the flow's unsent volume settled to the abort
// instant. Other components are untouched.
func (n *Network) Abort(f *Flow) {
	if !f.inNet {
		return
	}
	now := n.sim.Now()
	c := n.detach(f, now)
	if f.event != nil {
		n.sim.Cancel(f.event)
		f.event = nil
	}
	f.rate = 0
	if n.observer != nil {
		n.observer(now, f, 0)
	}
	if len(c.flows) == 0 {
		n.dropComp(c)
	} else if n.batchWorkers > 0 {
		n.markDirty(c, f, TriggerAbort)
	} else {
		n.rebalanceComp(c, now, f, TriggerAbort)
	}
	if f.OnAbort != nil {
		f.OnAbort(now)
	}
}

// detach settles f's component, then removes f from the component and the
// active registry. It returns the component f was removed from, with f's
// departure recorded as a possible split point.
//
// A component left stale by an earlier removal is not rebuilt here:
// removal and re-solve are correct on the still-merged union, and the
// union-find pass costs more than it saves on workloads whose graph never
// actually splits (every campaign, via the shared client ramp). Membership
// is re-derived only when a Start touching the component needs it.
func (n *Network) detach(f *Flow, now simkernel.Time) *component {
	c := f.comp
	n.settleComp(c, now)
	n.nActive--
	c.removeFlow(f)
	n.release(f)
	c.removals++
	if len(f.uses) > 1 && !n.forceGlobal {
		// Removing a flow that bridged two or more resources may have
		// disconnected the remainder; re-derive membership lazily once
		// enough removals accumulate. Single-resource flows cannot split
		// a component.
		c.stale = true
	}
	f.inNet = false
	f.comp = nil
	return c
}

// FlowsUsing returns the in-flight flows whose usage vector touches r, in
// deterministic (name-sorted) order. Fault injection uses it to abort
// everything riding a failed resource. Allocates a fresh slice; hot paths
// should use AppendFlowsUsing with a reusable buffer instead.
func (n *Network) FlowsUsing(r *Resource) []*Flow {
	return n.AppendFlowsUsing(nil, r)
}

// AppendFlowsUsing appends the in-flight flows touching r to dst (which may
// be nil or a recycled buffer) and returns the extended slice. Output is in
// deterministic (Name, seq) order. The per-resource user index makes this
// O(matches log matches): no component scan at all. The index itself is
// unordered, so the appended region is sorted here.
func (n *Network) AppendFlowsUsing(dst []*Flow, r *Resource) []*Flow {
	base := len(dst)
	for i := range r.users {
		dst = append(dst, r.users[i].f)
	}
	slices.SortFunc(dst[base:], flowCmp)
	return dst
}

// AppendFlowsUsingAny appends the in-flight flows touching any resource in
// rs to dst, each flow at most once, in deterministic (Name, seq) order.
// The fault injector uses it to collect every flow riding a failed host's
// resources in one pass without a dedup map. Matches come straight from
// the per-resource user indices; the appended region is sorted and
// de-duplicated by identity, which the strict (Name, seq) total order
// makes adjacent.
func (n *Network) AppendFlowsUsingAny(dst []*Flow, rs ...*Resource) []*Flow {
	base := len(dst)
	for _, r := range rs {
		for i := range r.users {
			dst = append(dst, r.users[i].f)
		}
	}
	slices.SortFunc(dst[base:], flowCmp)
	k := base
	for i := base; i < len(dst); i++ {
		if i > base && dst[i] == dst[k-1] {
			continue
		}
		dst[k] = dst[i]
		k++
	}
	return dst[:k]
}

// settleComp integrates transferred volume for every flow of c since that
// flow's last settlement. Settlement is lazy and per-flow: a flow is only
// integrated when an event touches its component, so the cost scales with
// the component, not the active set. Within one component all flows carry
// the same settledAt, so the arithmetic matches the historical global
// sweep step for step whenever the component spans the whole network.
func (n *Network) settleComp(c *component, now simkernel.Time) {
	for _, f := range c.flows {
		dt := float64(now - f.settledAt)
		if dt > 0 {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				// Completion events fire exactly at the predicted time, so
				// any negative residue is floating-point noise.
				f.remaining = 0
			}
		}
		f.settledAt = now
	}
}

// settleRescheduleAll settles every component and re-derives each flow's
// completion instant without re-solving: it reproduces, for events that
// cannot move any rate (a capacity change on an idle resource), the exact
// settlement cadence of the historical always-global rebalance, keeping
// completion-time floating point bit-identical to that era.
func (n *Network) settleRescheduleAll() {
	if n.nActive == 0 {
		return
	}
	now := n.sim.Now()
	for _, c := range n.comps {
		n.settleComp(c, now)
	}
	for _, c := range n.comps {
		if c.dirty {
			// Batched mode: this component's rates are stale until the
			// instant's flush re-solves it, and the flush reschedules every
			// one of its flows from the fresh rates anyway.
			continue
		}
		for _, f := range c.flows {
			n.scheduleCompletion(f, now)
		}
	}
}

// rebalanceComp recomputes fair-share rates for one component and
// reschedules its completion events; completion events of every other
// component are not touched at all. In steady state (buffers warmed up,
// every flow already carrying its completion event) this performs zero
// heap allocations.
//
// removed, when non-nil, is a flow just detached from c whose departure
// is the only change since c's last solve; the rebalance then tries the
// warm-start path, replaying the recorded freeze trajectory's unaffected
// prefix instead of re-solving from scratch. Either way the resulting
// rates are bit-identical to a cold solve.
func (n *Network) rebalanceComp(c *component, now simkernel.Time, removed *Flow, trig SolveTrigger) {
	if len(c.flows) == 0 {
		return
	}
	if n.observer != nil {
		if cap(n.oldRates) < len(c.flows) {
			n.oldRates = make([]float64, len(c.flows))
		}
		n.oldRates = n.oldRates[:len(c.flows)]
		for i, f := range c.flows {
			n.oldRates[i] = f.rate
		}
	}
	// Wall-clock solve latency is recorded only when stats are attached
	// (one time.Now() pair per rebalance) and exported under the runtime/
	// namespace; it never feeds back into simulation arithmetic.
	var solveStart time.Time
	if n.stats != nil {
		solveStart = time.Now()
	}
	n.sv.indexed = true
	n.sv.lastGroups = 0
	done := false
	if removed != nil && c.traj.valid {
		done = n.sv.warmSolve(c.flows, c.resources, c.capped, &c.traj, removed)
	}
	// Whatever happens next, the last recorded trajectory no longer
	// matches the component: a warm start consumed it, and a cold solve
	// either re-records it or (below the size cutoff) leaves it stale.
	c.traj.valid = false
	hier := false
	if !done {
		n.sv.lastReplayed = 0
		if n.hier != nil {
			hier = n.hier.trySolve(c, &n.sv, n.stats, true)
		}
		if !hier {
			rec := &c.traj
			if len(c.flows) < recordMinFlows {
				// Recording exists to amortize big solves across removals;
				// on small components the per-pass load snapshots cost more
				// than a cold re-solve, so skip both recording and (by the
				// invalidation above) any future warm start.
				rec = nil
			}
			n.sv.solve(c.flows, c.resources, c.capped, rec)
		}
	}
	if n.stats != nil {
		n.stats.SolveLatencyNs.Observe(uint64(time.Since(solveStart)))
		n.stats.Solves[trig]++
		n.stats.ComponentFlows.Observe(uint64(len(c.flows)))
		if removed != nil {
			if done {
				n.stats.WarmHits++
				n.stats.WarmReplayedPasses += uint64(n.sv.lastReplayed)
			} else {
				n.stats.WarmMisses++
			}
		}
	}
	for i, f := range c.flows {
		n.scheduleCompletion(f, now)
		if n.observer != nil && f.rate != n.oldRates[i] {
			n.observer(now, f, f.rate)
		}
	}
	if n.resObserver != nil {
		for _, r := range c.resources {
			n.resObserver(now, r, r.load)
		}
	}
	if n.solveObserver != nil {
		n.solveObserver(now, SolveInfo{
			Trigger:        trig,
			Flows:          len(c.flows),
			Resources:      len(c.resources),
			LivePasses:     n.sv.lastLive,
			WarmStart:      done,
			ReplayedPasses: n.sv.lastReplayed,
			Hierarchical:   hier,
			Groups:         n.sv.lastGroups,
		})
	}
}

func (n *Network) scheduleCompletion(f *Flow, now simkernel.Time) {
	var at simkernel.Time
	switch {
	case f.remaining <= 0:
		at = now
	case f.rate <= 0:
		at = simkernel.Never
	default:
		at = now + simkernel.Time(f.remaining/f.rate)
	}
	if at == simkernel.Never {
		if f.event != nil {
			n.sim.Cancel(f.event)
		}
		return
	}
	if f.event == nil {
		// First schedule for this flow: allocate the event and its
		// callback once; later rate changes move it in place.
		f.event = n.sim.At(at, func() { n.complete(f) })
		return
	}
	if f.event.Scheduled() && f.event.When() == at {
		return
	}
	n.sim.Reschedule(f.event, at)
}

func (n *Network) complete(f *Flow) {
	if !f.inNet {
		return
	}
	if n.batchWorkers > 0 && f.comp != nil && f.comp.dirty {
		// The completion instant was derived from rates that a pending
		// batched solve is about to replace, so it cannot be trusted. The
		// flush reschedules this flow's (now fired) event from the fresh
		// rates; if the flow really is done it completes right after the
		// flush, in the same instant.
		return
	}
	now := n.sim.Now()
	c := n.detach(f, now)
	f.event = nil
	f.done = true
	f.remaining = 0
	f.rate = 0
	if n.observer != nil {
		n.observer(now, f, 0)
	}
	if len(c.flows) == 0 {
		n.dropComp(c)
	} else if n.batchWorkers > 0 {
		n.markDirty(c, f, TriggerComplete)
	} else {
		n.rebalanceComp(c, now, f, TriggerComplete)
	}
	if f.OnComplete != nil {
		f.OnComplete(now)
	}
}

// solveReference is the textbook waterfill: every pass rescans every
// flow and every resource. It is kept verbatim as the oracle the
// incremental solver (solver.go) is differentially tested against — the
// fuzz harness re-solves components with it and demands 0-ULP agreement.
// The resources slice must contain every resource touched by the flows;
// the waterfill reads only the flows and resources it is given, so
// solving a component in isolation performs bit-for-bit the same
// floating-point operations as solving it as part of a larger disjoint
// union whose fill trajectory it leads.
func solveReference(flows []*Flow, resources []*Resource) {
	for _, f := range flows {
		f.frozen = false
		f.rate = 0
	}
	for _, r := range resources {
		r.load = 0
	}
	active := len(flows)
	fill := 0.0
	for iter := 0; active > 0 && iter <= len(flows)+len(resources)+1; iter++ {
		// Per-resource demand of the unfrozen flows.
		for _, r := range resources {
			r.sumW = 0
		}
		for _, f := range flows {
			if f.frozen {
				continue
			}
			for i := range f.uses {
				f.uses[i].res.sumW += f.uses[i].w
			}
		}
		// Maximum additional fill before some resource saturates.
		delta := math.Inf(1)
		var bottleneck *Resource
		for _, r := range resources {
			if r.sumW == 0 {
				continue
			}
			d := (r.capacity - r.load) / r.sumW
			if d < delta {
				delta = d
				bottleneck = r
			}
		}
		// Maximum additional fill before some flow hits its cap.
		capDelta := math.Inf(1)
		for _, f := range flows {
			if !f.frozen && f.Cap > 0 {
				if d := f.Cap - fill; d < capDelta {
					capDelta = d
				}
			}
		}
		if math.IsInf(delta, 1) && math.IsInf(capDelta, 1) {
			// No binding constraint: flows without usage or caps — should
			// not happen given Start's validation, but guard anyway.
			break
		}
		step := math.Min(delta, capDelta)
		if step < 0 {
			step = 0
		}
		fill += step
		for _, r := range resources {
			if r.sumW > 0 {
				r.load += r.sumW * step
			}
		}
		// Freeze flows that hit the binding constraint.
		before := active
		if capDelta <= delta {
			for _, f := range flows {
				if !f.frozen && f.Cap > 0 && f.Cap <= fill+1e-12 {
					f.frozen = true
					f.rate = f.Cap
					active--
				}
			}
		}
		if delta <= capDelta && bottleneck != nil {
			for _, f := range flows {
				if !f.frozen && f.usesRes(bottleneck) {
					f.frozen = true
					f.rate = fill
					active--
				}
			}
		}
		if active == before && step == 0 {
			// Early exit: the pass froze nothing and the fill level did
			// not move, so no unfrozen flow's bottleneck changed — every
			// further iteration would replay this exact state until the
			// iteration cap. Leaving now assigns the unfrozen flows the
			// same fill level the capped loop would have produced, so the
			// result is bit-identical, just cheaper.
			break
		}
	}
	for _, f := range flows {
		if !f.frozen {
			f.rate = fill
		}
	}
}

// FairShare computes weighted max-min fair rates for a standalone set of
// flows (no clock involved) and returns the rate per flow in input order.
// It does not modify remaining volumes. Intended for tests and for the
// analytic model's cross-validation; unlike the Network's internal path it
// allocates (it must discover the resource set from the usage maps).
func FairShare(flows []*Flow) []float64 {
	seen := make(map[*Resource]struct{})
	var resources []*Resource
	for _, f := range flows {
		f.buildUses()
		for i := range f.uses {
			r := f.uses[i].res
			if _, ok := seen[r]; !ok {
				seen[r] = struct{}{}
				resources = append(resources, r)
			}
		}
	}
	sort.Slice(resources, func(i, j int) bool {
		if resources[i].idx != resources[j].idx {
			return resources[i].idx < resources[j].idx
		}
		return resources[i].Name < resources[j].Name
	})
	solve(flows, resources)
	rates := make([]float64, len(flows))
	for i, f := range flows {
		rates[i] = f.rate
	}
	return rates
}
