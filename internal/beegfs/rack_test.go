package beegfs

import (
	"testing"

	"repro/internal/simkernel"
	"repro/internal/storagesim"
)

// rackConfig: 4 hosts in 2 racks of 2, tight 500 MiB/s uplinks, fast
// targets so the uplink is the bottleneck for cross-rack I/O.
func rackConfig() Config {
	cfg := testConfig()
	cfg.Hosts = 4
	cfg.TargetsPerHost = 2
	cfg.RackHosts = 2
	cfg.RackUplinkCapacity = 500
	return cfg
}

func TestRackConfigValidation(t *testing.T) {
	good := rackConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.RackHosts = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative RackHosts accepted")
	}
	bad = good
	bad.RackUplinkCapacity = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("RackHosts without RackUplinkCapacity accepted")
	}
	bad = good
	bad.RackHosts = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("RackUplinkCapacity without RackHosts accepted")
	}
}

func TestRackAssignment(t *testing.T) {
	_, fs := newFS(t, rackConfig())
	if fs.Racks() != 2 {
		t.Fatalf("Racks() = %d, want 2", fs.Racks())
	}
	hosts := fs.Storage().Hosts()
	wantRack := []int{0, 0, 1, 1}
	for i, h := range hosts {
		if got := fs.RackOf(h); got != wantRack[i] {
			t.Fatalf("RackOf(%s) = %d, want %d", h.Name, got, wantRack[i])
		}
	}
	// Rack modelling off: RackOf reports unplaced.
	_, plain := newFS(t, testConfig())
	if plain.Racks() != 0 || plain.RackOf(plain.Storage().Hosts()[0]) != -1 {
		t.Fatal("rack accessors leak state with rack modelling off")
	}
}

// rackTargets returns all targets whose host lives in rack r.
func rackTargets(fs *FileSystem, r int) []*storagesim.Target {
	var out []*storagesim.Target
	for _, tg := range fs.Mgmtd().All() {
		if fs.RackOf(tg.Host()) == r {
			out = append(out, tg)
		}
	}
	return out
}

// TestRackUplinkBottleneck pins the asymmetry the scale campaign measures:
// the same client, volume and stripe width hit the uplink cap only when
// the targets live in the other rack.
func TestRackUplinkBottleneck(t *testing.T) {
	run := func(targetRack int) float64 {
		sim, fs := newFS(t, rackConfig())
		client := fs.NewClientInRack("c0", 0, 0)
		f, err := fs.CreateWithTargets("/f", StripePattern{ChunkSize: 512 * KiB}, rackTargets(fs, targetRack))
		if err != nil {
			t.Fatal(err)
		}
		var done simkernel.Time
		op := &WriteOp{
			Client: client, File: f, Length: 1000 * MiB,
			TransferSize: 8 * MiB,
			OnComplete:   func(at simkernel.Time) { done = at },
		}
		if _, err := fs.StartWrite(op); err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		if done == 0 {
			t.Fatal("write did not complete")
		}
		return 1000 / float64(done)
	}
	local := run(0)
	cross := run(1)
	if !almost(cross, 500, 1) {
		t.Fatalf("cross-rack bandwidth = %.1f MiB/s, want uplink cap 500", cross)
	}
	if local <= cross*1.5 {
		t.Fatalf("rack-local bandwidth %.1f not clearly above cross-rack %.1f", local, cross)
	}
}

func TestCreateWithTargetsValidation(t *testing.T) {
	_, fs := newFS(t, rackConfig())
	p := StripePattern{ChunkSize: 512 * KiB}
	if _, err := fs.CreateWithTargets("/empty", p, nil); err == nil {
		t.Fatal("empty target list accepted")
	}
	if _, err := fs.CreateWithTargets("/nil", p, []*storagesim.Target{nil}); err == nil {
		t.Fatal("nil target accepted")
	}
	tg := fs.Mgmtd().All()[0]
	tg.SetFailed(true)
	if _, err := fs.CreateWithTargets("/down", p, []*storagesim.Target{tg}); err == nil {
		t.Fatal("failed target accepted")
	}
	tg.SetFailed(false)
	f, err := fs.CreateWithTargets("/ok", p, rackTargets(fs, 1))
	if err != nil {
		t.Fatal(err)
	}
	if f.Pattern.Count != 4 || len(f.Targets) != 4 {
		t.Fatalf("pattern count = %d targets = %d, want 4/4", f.Pattern.Count, len(f.Targets))
	}
	for _, tg := range f.Targets {
		if fs.RackOf(tg.Host()) != 1 {
			t.Fatalf("target %d not in requested rack", tg.ID)
		}
	}
}

func TestNewClientInRackGuards(t *testing.T) {
	_, fs := newFS(t, rackConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range rack accepted")
		}
	}()
	fs.NewClientInRack("c", 0, 2)
}
