// Package workload replays job traces against a simulated deployment: a
// stream of I/O-intensive jobs (arrival time, node count, stripe count,
// volume) is admitted by a FCFS node scheduler and executed concurrently
// on the shared file system.
//
// This is the situation the paper's §IV-D models in stylized form — "many
// concurrent applications that write large amounts of data at the same
// time" — generalized from 2-4 synchronized applications to arbitrary
// arrival patterns, so the lesson-7 question ("does target sharing hurt?")
// can be asked of realistic schedules.
package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/ior"
	"repro/internal/rng"
	"repro/internal/simkernel"
)

// Job is one application in the trace.
type Job struct {
	ID string `json:"id"`
	// Arrival is the submission time in seconds of virtual time.
	Arrival float64 `json:"arrival"`
	Nodes   int     `json:"nodes"`
	PPN     int     `json:"ppn"`
	// StripeCount of the job's output file (0 = directory default).
	StripeCount int `json:"stripe_count,omitempty"`
	// TotalGiB written by the job (N-1 shared file).
	TotalGiB float64 `json:"total_gib"`
	// ReadBack adds a read phase after the write.
	ReadBack bool `json:"read_back,omitempty"`
}

// Validate reports job errors.
func (j Job) Validate() error {
	if j.ID == "" {
		return fmt.Errorf("workload: job without id")
	}
	if j.Arrival < 0 {
		return fmt.Errorf("workload: job %s has negative arrival", j.ID)
	}
	if j.Nodes <= 0 || j.PPN <= 0 {
		return fmt.Errorf("workload: job %s needs positive nodes and ppn", j.ID)
	}
	if j.StripeCount < 0 {
		return fmt.Errorf("workload: job %s has negative stripe count", j.ID)
	}
	if j.TotalGiB <= 0 {
		return fmt.Errorf("workload: job %s writes nothing", j.ID)
	}
	return nil
}

// ParseTrace decodes a JSON array of jobs.
func ParseTrace(data []byte) ([]Job, error) {
	var jobs []Job
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jobs); err != nil {
		return nil, fmt.Errorf("workload: bad trace: %w", err)
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
	}
	return jobs, nil
}

// EncodeTrace renders jobs as indented JSON.
func EncodeTrace(jobs []Job) ([]byte, error) {
	return json.MarshalIndent(jobs, "", "  ")
}

// Result is one job's outcome.
type Result struct {
	Job Job
	// Queued is how long the job waited for nodes (seconds).
	Queued float64
	// Start and End bound the job's execution (after queueing).
	Start, End simkernel.Time
	// Bandwidth is the job's IOR-reported write bandwidth.
	Bandwidth float64
	// ReadBandwidth is set when the job read back its data.
	ReadBandwidth float64
	// TargetIDs are the stripe targets of the job's file.
	TargetIDs []int
	// Err is set when the job failed mid-flight (fault injection with an
	// exhausted retry budget, or a launch that could not start). Failed
	// jobs still appear in the results, with Bandwidth 0.
	Err error
}

// Stretch returns (queue + run) / run — the scheduling community's
// slowdown metric.
func (r Result) Stretch() float64 {
	run := float64(r.End - r.Start)
	if run <= 0 {
		return 1
	}
	return (r.Queued + run) / run
}

// Replay runs the trace on a fresh deployment of the platform with
// totalNodes compute nodes, FCFS (no backfilling: a job that does not fit
// blocks the queue, like a conservative production scheduler). It returns
// per-job results in completion order.
func Replay(platform cluster.Platform, totalNodes int, jobs []Job, seed uint64) ([]Result, error) {
	dep, err := platform.Deploy()
	if err != nil {
		return nil, err
	}
	return ReplayOn(dep, platform.SetupMean, platform.SetupCV, totalNodes, jobs, seed)
}

// ReplayOn replays the trace on an existing deployment, so callers can
// arm fault schedules or interference on the simulation before the jobs
// run. The deployment's clock is driven to completion.
func ReplayOn(dep *cluster.Deployment, setupMean, setupCV float64, totalNodes int, jobs []Job, seed uint64) ([]Result, error) {
	if totalNodes <= 0 {
		return nil, fmt.Errorf("workload: need a positive node pool")
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		if j.Nodes > totalNodes {
			return nil, fmt.Errorf("workload: job %s needs %d nodes but the pool has %d", j.ID, j.Nodes, totalNodes)
		}
	}
	pool := newNodePool(dep, totalNodes)
	src := rng.New(seed)
	sim := dep.Sim

	// Sort by arrival; FIFO queue of jobs waiting for nodes.
	ordered := append([]Job(nil), jobs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })

	var results []Result
	var queue []queued
	running := 0

	var tryLaunch func()
	launch := func(q queued) {
		nodes, ok := pool.acquire(q.job.Nodes)
		if !ok {
			// tryLaunch checked pool.free() before dequeuing, so this is
			// unreachable; record a failed job rather than crash if the
			// accounting ever drifts.
			results = append(results, Result{
				Job: q.job,
				Err: fmt.Errorf("workload: job %s launched without free nodes", q.job.ID),
			})
			return
		}
		running++
		params := ior.Params{
			Nodes: q.job.Nodes, PPN: q.job.PPN,
			TransferSize: 1 * beegfs.MiB,
			StripeCount:  q.job.StripeCount,
			Path:         "/jobs/" + q.job.ID,
			App:          q.job.ID,
			ReadBack:     q.job.ReadBack,
			SetupMean:    setupMean,
			SetupCV:      setupCV,
		}.WithTotalSize(int64(q.job.TotalGiB * float64(beegfs.GiB)))
		job := q.job
		queuedFor := float64(sim.Now()) - q.job.Arrival
		if queuedFor < 0 {
			queuedFor = 0
		}
		_, err := ior.Start(dep.FS, nodes, params, src.Split(uint64(len(results))+uint64(running)*131), func(res ior.Result) {
			results = append(results, Result{
				Job:           job,
				Queued:        queuedFor,
				Start:         res.Start,
				End:           res.End,
				Bandwidth:     res.Bandwidth,
				ReadBandwidth: res.ReadBandwidth,
				TargetIDs:     res.TargetIDs,
				Err:           res.Err,
			})
			pool.release(nodes)
			running--
			tryLaunch()
		})
		if err != nil {
			// Parameter-level rejection: record the failure and free the
			// nodes so the rest of the trace proceeds.
			results = append(results, Result{
				Job:    job,
				Queued: queuedFor,
				Err:    fmt.Errorf("workload: job %s failed to start: %w", job.ID, err),
			})
			pool.release(nodes)
			running--
			tryLaunch()
		}
	}
	tryLaunch = func() {
		for len(queue) > 0 && pool.free() >= queue[0].job.Nodes {
			q := queue[0]
			queue = queue[1:]
			launch(q)
		}
	}
	for _, j := range ordered {
		j := j
		sim.At(simkernel.Time(j.Arrival), func() {
			queue = append(queue, queued{job: j})
			tryLaunch()
		})
	}
	if err := sim.Run(); err != nil {
		return nil, err
	}
	if len(results) != len(jobs) {
		return nil, fmt.Errorf("workload: %d of %d jobs completed", len(results), len(jobs))
	}
	return results, nil
}

type queued struct {
	job Job
}

// nodePool hands out disjoint client slices. Jobs always receive the
// lowest-index free nodes (in index order): allocation order feeds which
// client NICs a job rides, so it must stay deterministic and identical
// to the historical scan.
type nodePool struct {
	clients []*beegfs.Client
	inUse   []bool
	// index maps a client back to its pool slot, so release needs no
	// per-completion set allocation and no O(total) sweep.
	index map[*beegfs.Client]int
	// nFree counts free slots so the scheduler's admission check
	// (free()) is O(1); the trace loop calls it once per queued job per
	// completion event.
	nFree int
}

func newNodePool(dep *cluster.Deployment, total int) *nodePool {
	clients := dep.Nodes(total)
	index := make(map[*beegfs.Client]int, total)
	for i, c := range clients {
		index[c] = i
	}
	return &nodePool{
		clients: clients,
		inUse:   make([]bool, total),
		index:   index,
		nFree:   total,
	}
}

func (p *nodePool) free() int { return p.nFree }

func (p *nodePool) acquire(n int) ([]*beegfs.Client, bool) {
	if n > p.nFree {
		return nil, false
	}
	out := make([]*beegfs.Client, 0, n)
	for i, u := range p.inUse {
		if !u {
			p.inUse[i] = true
			out = append(out, p.clients[i])
			if len(out) == n {
				p.nFree -= n
				return out, true
			}
		}
	}
	// Unreachable while nFree matches inUse; undo the partial marks so a
	// drifted counter fails closed instead of leaking nodes.
	for _, c := range out {
		p.inUse[p.index[c]] = false
	}
	return nil, false
}

func (p *nodePool) release(nodes []*beegfs.Client) {
	for _, c := range nodes {
		i, ok := p.index[c]
		if !ok || !p.inUse[i] {
			continue
		}
		p.inUse[i] = false
		p.nFree++
	}
}
