package workload

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/faults"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func job(id string, arrival float64, nodes int, gib float64) Job {
	return Job{ID: id, Arrival: arrival, Nodes: nodes, PPN: 8, StripeCount: 4, TotalGiB: gib}
}

func TestJobValidate(t *testing.T) {
	if err := job("a", 0, 4, 8).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Job{
		{Arrival: 0, Nodes: 4, PPN: 8, TotalGiB: 1},           // no id
		{ID: "x", Arrival: -1, Nodes: 4, PPN: 8, TotalGiB: 1}, // negative arrival
		{ID: "x", Arrival: 0, Nodes: 0, PPN: 8, TotalGiB: 1},  // no nodes
		{ID: "x", Arrival: 0, Nodes: 4, PPN: 0, TotalGiB: 1},  // no ppn
		{ID: "x", Arrival: 0, Nodes: 4, PPN: 8, TotalGiB: 0},  // nothing to write
		{ID: "x", Arrival: 0, Nodes: 4, PPN: 8, TotalGiB: 1, StripeCount: -1},
	}
	for i, j := range bad {
		if j.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	jobs := []Job{job("a", 0, 4, 8), job("b", 10.5, 8, 32)}
	data, err := EncodeTrace(jobs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != jobs[0] || back[1] != jobs[1] {
		t.Fatalf("round trip changed trace: %+v", back)
	}
}

func TestTraceRejectsBadInput(t *testing.T) {
	if _, err := ParseTrace([]byte(`[{"id":"x","unknown":1}]`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseTrace([]byte(`[{"id":"","arrival":0,"nodes":1,"ppn":1,"total_gib":1}]`)); err == nil {
		t.Fatal("invalid job accepted")
	}
	if _, err := ParseTrace([]byte(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestReplaySequentialJobs(t *testing.T) {
	// Two jobs, the second arrives long after the first finishes: no
	// queueing, full solo bandwidth for both.
	jobs := []Job{job("j1", 0, 8, 8), job("j2", 1000, 8, 8)}
	results, err := Replay(cluster.PlaFRIM(cluster.Scenario1Ethernet), 16, jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Queued != 0 {
			t.Fatalf("job %s queued %v, want 0", r.Job.ID, r.Queued)
		}
		if r.Bandwidth < 1200 || r.Bandwidth > 1600 {
			t.Fatalf("job %s bandwidth %v, want solo ~1460", r.Job.ID, r.Bandwidth)
		}
		if r.Stretch() != 1 {
			t.Fatalf("job %s stretch %v", r.Job.ID, r.Stretch())
		}
	}
}

func TestReplayQueuesWhenPoolExhausted(t *testing.T) {
	// Pool of 8; two 8-node jobs arriving together: the second must wait
	// for the first to finish.
	jobs := []Job{job("first", 0, 8, 8), job("second", 0.001, 8, 8)}
	results, err := Replay(cluster.PlaFRIM(cluster.Scenario1Ethernet), 8, jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]Result{}
	for _, r := range results {
		byID[r.Job.ID] = r
	}
	if byID["first"].Queued != 0 {
		t.Fatalf("first job queued %v", byID["first"].Queued)
	}
	if byID["second"].Queued <= 0 {
		t.Fatal("second job did not queue")
	}
	if byID["second"].Stretch() <= 1 {
		t.Fatalf("second job stretch %v, want > 1", byID["second"].Stretch())
	}
	// No overlap: second starts at/after first ends.
	if byID["second"].Start < byID["first"].End {
		t.Fatalf("jobs overlapped: second started %v before first ended %v",
			byID["second"].Start, byID["first"].End)
	}
}

func TestReplayConcurrentJobsShareBandwidth(t *testing.T) {
	// Two 8-node jobs on a 16-node pool run concurrently and split the
	// shared infrastructure: each is slower than solo, and the overlap is
	// real.
	jobs := []Job{job("a", 0, 8, 16), job("b", 0.001, 8, 16)}
	results, err := Replay(cluster.PlaFRIM(cluster.Scenario2Omnipath), 16, jobs, 3)
	if err != nil {
		t.Fatal(err)
	}
	soloJobs := []Job{job("solo", 0, 8, 16)}
	solo, err := Replay(cluster.PlaFRIM(cluster.Scenario2Omnipath), 16, soloJobs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Queued != 0 {
			t.Fatalf("job %s queued; pool should fit both", r.Job.ID)
		}
		if r.Bandwidth >= solo[0].Bandwidth {
			t.Fatalf("concurrent job %s (%v) not slower than solo (%v)", r.Job.ID, r.Bandwidth, solo[0].Bandwidth)
		}
	}
}

func TestReplayReadBack(t *testing.T) {
	jobs := []Job{{ID: "rw", Arrival: 0, Nodes: 4, PPN: 8, StripeCount: 8, TotalGiB: 4, ReadBack: true}}
	results, err := Replay(cluster.PlaFRIM(cluster.Scenario1Ethernet), 4, jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].ReadBandwidth <= 0 {
		t.Fatal("read-back bandwidth missing")
	}
}

func TestReplayErrors(t *testing.T) {
	p := cluster.PlaFRIM(cluster.Scenario1Ethernet)
	if _, err := Replay(p, 0, []Job{job("a", 0, 1, 1)}, 1); err == nil {
		t.Fatal("zero pool accepted")
	}
	if _, err := Replay(p, 4, []Job{job("a", 0, 8, 1)}, 1); err == nil {
		t.Fatal("oversized job accepted")
	}
	if _, err := Replay(p, 4, []Job{{ID: "bad"}}, 1); err == nil {
		t.Fatal("invalid job accepted")
	}
}

func TestReplayFCFSOrderPreserved(t *testing.T) {
	// Three 8-node jobs on an 8-node pool: they run strictly in arrival
	// order even though later jobs are smaller.
	jobs := []Job{
		job("big1", 0, 8, 16),
		job("big2", 0.01, 8, 16),
		{ID: "small", Arrival: 0.02, Nodes: 2, PPN: 8, StripeCount: 4, TotalGiB: 1},
	}
	results, err := Replay(cluster.PlaFRIM(cluster.Scenario1Ethernet), 8, jobs, 5)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]Result{}
	for _, r := range results {
		byID[r.Job.ID] = r
	}
	// No backfilling: the queue is strict FCFS, and big2 occupies all 8
	// nodes, so the 2-node job can start only after big2 ends.
	if byID["small"].Start < byID["big2"].End {
		t.Fatalf("FCFS violated: small started %v before big2 ended %v", byID["small"].Start, byID["big2"].End)
	}
}

// A job that hits a dead file system is recorded as a failed Result — the
// replay finishes, earlier jobs keep their numbers, nothing panics.
func TestReplayRecordsJobFailure(t *testing.T) {
	p := cluster.PlaFRIM(cluster.Scenario1Ethernet)
	dep, err := p.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	// Both storage hosts die at t=30 and never recover: job a (arrival 0,
	// ~2s long) completes, job b (arrival 40) cannot even create its file.
	if err := faults.NewInjector(dep.FS).Arm(faults.Schedule{
		{At: 30, Kind: faults.HostFault, ID: 1, Action: faults.Fail},
		{At: 30, Kind: faults.HostFault, ID: 2, Action: faults.Fail},
	}); err != nil {
		t.Fatal(err)
	}
	jobs := []Job{job("a", 0, 2, 1), job("b", 40, 2, 1)}
	results, err := ReplayOn(dep, p.SetupMean, p.SetupCV, 4, jobs, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	byID := map[string]Result{}
	for _, r := range results {
		byID[r.Job.ID] = r
	}
	if a := byID["a"]; a.Err != nil || a.Bandwidth <= 0 {
		t.Fatalf("healthy job a: %+v", a)
	}
	if b := byID["b"]; b.Err == nil || b.Bandwidth != 0 {
		t.Fatalf("job b on a dead file system: err=%v bw=%v", b.Err, b.Bandwidth)
	}
}
