package workload

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
)

// The pool must hand out the lowest-index free nodes in order (allocation
// order decides which client NICs a job rides, so it is part of the
// deterministic replay contract) while keeping its free-node counter
// consistent through acquire/release churn.
func TestNodePoolAccounting(t *testing.T) {
	dep, err := cluster.PlaFRIM(cluster.Scenario1Ethernet).Deploy()
	if err != nil {
		t.Fatal(err)
	}
	p := newNodePool(dep, 8)
	if p.free() != 8 {
		t.Fatalf("fresh pool free = %d, want 8", p.free())
	}
	a, ok := p.acquire(3)
	if !ok || len(a) != 3 || p.free() != 5 {
		t.Fatalf("acquire(3): ok=%v len=%d free=%d", ok, len(a), p.free())
	}
	for i, c := range a {
		if c != p.clients[i] {
			t.Fatalf("acquire handed out node %d out of order", i)
		}
	}
	b, ok := p.acquire(5)
	if !ok || p.free() != 0 {
		t.Fatalf("acquire(5): ok=%v free=%d", ok, p.free())
	}
	if _, ok := p.acquire(1); ok {
		t.Fatal("acquire succeeded on an empty pool")
	}
	p.release(a)
	if p.free() != 3 {
		t.Fatalf("free after release = %d, want 3", p.free())
	}
	// Releasing the same slice twice must not inflate the counter.
	p.release(a)
	if p.free() != 3 {
		t.Fatalf("double release inflated free to %d", p.free())
	}
	// The freed low-index nodes come back first.
	c, ok := p.acquire(2)
	if !ok || c[0] != p.clients[0] || c[1] != p.clients[1] {
		t.Fatal("freed low-index nodes not reused first")
	}
	p.release(b)
	p.release(c)
	if p.free() != 8 {
		t.Fatalf("drained pool free = %d, want 8", p.free())
	}
}

// release runs once per job completion inside the event loop; it must not
// allocate (the historical implementation built a set per call).
func TestNodePoolReleaseNoAllocs(t *testing.T) {
	dep, err := cluster.PlaFRIM(cluster.Scenario1Ethernet).Deploy()
	if err != nil {
		t.Fatal(err)
	}
	p := newNodePool(dep, 16)
	nodes, _ := p.acquire(8)
	allocs := testing.AllocsPerRun(100, func() {
		p.release(nodes)
		nodes, _ = p.acquire(8)
	})
	if allocs > 1 { // acquire's result slice is the only permitted allocation
		t.Errorf("release+acquire allocates %.1f times per cycle, want <= 1", allocs)
	}
}

func benchTrace(nJobs int) []Job {
	jobs := make([]Job, nJobs)
	for i := range jobs {
		jobs[i] = Job{
			ID:          fmt.Sprintf("j%03d", i),
			Arrival:     float64(i) * 0.4,
			Nodes:       2 + i%4,
			PPN:         8,
			StripeCount: 4,
			TotalGiB:    2,
		}
	}
	return jobs
}

// BenchmarkReplay replays a 24-job trace end to end — deployment build,
// FCFS scheduling, every flow solve — the workload-level cost the
// campaigns pay per repetition.
func BenchmarkReplay(b *testing.B) {
	platform := cluster.PlaFRIM(cluster.Scenario1Ethernet)
	jobs := benchTrace(24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Replay(platform, 12, jobs, 7); err != nil {
			b.Fatal(err)
		}
	}
}
