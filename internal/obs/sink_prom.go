package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Prometheus / OpenMetrics text exposition of a Snapshot.
//
// Metric-name mapping: the registry's slash-separated names become one
// flat family each, prefixed "beegfsim_" with every non-[a-zA-Z0-9_]
// byte replaced by '_' (`simnet/solves/start` →
// `beegfsim_simnet_solves_start`). Counters render as counter families
// with the OpenMetrics `_total` sample suffix, high-water maxima as
// gauges, and log-2 histograms as classic cumulative histograms whose
// `le` bounds are the buckets' inclusive upper bounds (0, 1, 3, 7, …)
// plus `+Inf`. Campaign progress renders as two gauge families labelled
// by run. Families are emitted in snapshot (i.e. name-sorted) order and
// the document ends with the OpenMetrics `# EOF` terminator, so equal
// snapshots expose byte-identical text (pinned by the golden-file test).

// PromContentType is the Content-Type the /metrics endpoint serves.
const PromContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// promName flattens a registry metric name into a Prometheus family name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + len("beegfsim_"))
	b.WriteString("beegfsim_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel escapes a label value per the exposition format.
func promLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func promHeader(b *bufio.Writer, fam, typ, origName string) {
	b.WriteString("# HELP ")
	b.WriteString(fam)
	b.WriteString(" simulator metric ")
	b.WriteString(origName)
	b.WriteString("\n# TYPE ")
	b.WriteString(fam)
	b.WriteByte(' ')
	b.WriteString(typ)
	b.WriteByte('\n')
}

// EncodeProm writes snap in the OpenMetrics text exposition format.
func EncodeProm(w io.Writer, snap *Snapshot) error {
	b := bufio.NewWriter(w)
	for _, c := range snap.Counters {
		fam := promName(c.Name)
		promHeader(b, fam, "counter", c.Name)
		b.WriteString(fam)
		b.WriteString("_total ")
		b.WriteString(strconv.FormatUint(c.Value, 10))
		b.WriteByte('\n')
	}
	for _, m := range snap.Maxima {
		fam := promName(m.Name)
		promHeader(b, fam, "gauge", m.Name)
		b.WriteString(fam)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(m.Value, 10))
		b.WriteByte('\n')
	}
	for i := range snap.Hists {
		h := &snap.Hists[i]
		fam := promName(h.Name)
		promHeader(b, fam, "histogram", h.Name)
		// Cumulative counts up to the top populated bucket, then +Inf.
		top := -1
		for bi, cnt := range h.Buckets {
			if cnt > 0 {
				top = bi
			}
		}
		var cum uint64
		for bi := 0; bi <= top; bi++ {
			cum += h.Buckets[bi]
			b.WriteString(fam)
			b.WriteString(`_bucket{le="`)
			b.WriteString(strconv.FormatUint(BucketBound(bi), 10))
			b.WriteString(`"} `)
			b.WriteString(strconv.FormatUint(cum, 10))
			b.WriteByte('\n')
		}
		b.WriteString(fam)
		b.WriteString(`_bucket{le="+Inf"} `)
		b.WriteString(strconv.FormatUint(h.Count, 10))
		b.WriteByte('\n')
		b.WriteString(fam)
		b.WriteString("_sum ")
		b.WriteString(strconv.FormatUint(h.Sum, 10))
		b.WriteByte('\n')
		b.WriteString(fam)
		b.WriteString("_count ")
		b.WriteString(strconv.FormatUint(h.Count, 10))
		b.WriteByte('\n')
	}
	if len(snap.Runs) > 0 {
		b.WriteString("# HELP beegfsim_campaign_reps_completed repetitions completed per campaign\n")
		b.WriteString("# TYPE beegfsim_campaign_reps_completed gauge\n")
		for _, r := range snap.Runs {
			b.WriteString(`beegfsim_campaign_reps_completed{label="`)
			b.WriteString(promLabel(r.Label))
			b.WriteString(`"} `)
			b.WriteString(strconv.FormatUint(r.Done, 10))
			b.WriteByte('\n')
		}
		b.WriteString("# HELP beegfsim_campaign_reps_total repetitions scheduled per campaign\n")
		b.WriteString("# TYPE beegfsim_campaign_reps_total gauge\n")
		for _, r := range snap.Runs {
			b.WriteString(`beegfsim_campaign_reps_total{label="`)
			b.WriteString(promLabel(r.Label))
			b.WriteString(`"} `)
			b.WriteString(strconv.FormatUint(r.Total, 10))
			b.WriteByte('\n')
		}
	}
	b.WriteString("# EOF\n")
	return b.Flush()
}

// NewPromSink returns a sink writing the OpenMetrics exposition text to
// path on every flush — the file-backed twin of the /metrics endpoint,
// for scrapers pointed at node-local textfile collectors.
func NewPromSink(path string) Sink {
	return &fileSink{name: "prom:" + path, path: path, enc: EncodeProm}
}
