package stats

import (
	"math"
	"sort"
)

// WelchTResult is the outcome of a Welch two-sample t-test, the test the
// paper applies in §IV-D to compare "applications share all 4 OSTs" against
// "applications share no OSTs" (reported p-value: 0.9031).
type WelchTResult struct {
	T  float64 // test statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchT performs Welch's unequal-variances two-sample t-test on the two
// samples. Both samples need at least two observations.
func WelchT(a, b []float64) (WelchTResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return WelchTResult{}, ErrInsufficientData
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := variance(a, ma), variance(b, mb)
	na, nb := float64(len(a)), float64(len(b))
	sa, sb := va/na, vb/nb
	se := math.Sqrt(sa + sb)
	var res WelchTResult
	if se == 0 {
		// Identical constant samples: t = 0 (no evidence of difference);
		// different constants: infinite evidence.
		if ma == mb {
			return WelchTResult{T: 0, DF: na + nb - 2, P: 1}, nil
		}
		return WelchTResult{T: math.Inf(sign(ma - mb)), DF: na + nb - 2, P: 0}, nil
	}
	res.T = (ma - mb) / se
	res.DF = (sa + sb) * (sa + sb) / (sa*sa/(na-1) + sb*sb/(nb-1))
	res.P = 2 * studentTSF(math.Abs(res.T), res.DF)
	if res.P > 1 {
		res.P = 1
	}
	return res, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

func variance(xs []float64, mean float64) float64 {
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// studentTSF is the survival function P(T > t) of Student's t distribution
// with df degrees of freedom, via the regularized incomplete beta function.
func studentTSF(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 0
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// KSResult is the outcome of a Kolmogorov–Smirnov test.
type KSResult struct {
	D float64 // maximum distance between distribution functions
	P float64 // asymptotic p-value
}

// KSNormal performs a one-sample Kolmogorov–Smirnov test of the sample
// against a normal distribution with the sample's own mean and standard
// deviation. This mirrors the paper's normality screening before its
// Welch t-test. (Estimating parameters from the data makes the classic
// asymptotic p-value conservative — the same caveat applies to the common
// R workflow the paper used.)
func KSNormal(xs []float64) (KSResult, error) {
	if len(xs) < 3 {
		return KSResult{}, ErrInsufficientData
	}
	m := Mean(xs)
	sd := SD(xs)
	if sd == 0 {
		return KSResult{D: 1, P: 0}, nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	d := 0.0
	for i, x := range sorted {
		cdf := normalCDF((x - m) / sd)
		up := float64(i+1)/n - cdf
		dn := cdf - float64(i)/n
		if up > d {
			d = up
		}
		if dn > d {
			d = dn
		}
	}
	return KSResult{D: d, P: ksPValue(d, n)}, nil
}

// KSTwoSample performs a two-sample Kolmogorov–Smirnov test.
func KSTwoSample(a, b []float64) (KSResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{}, ErrInsufficientData
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	na, nb := len(sa), len(sb)
	var i, j int
	d := 0.0
	for i < na && j < nb {
		x := math.Min(sa[i], sb[j])
		for i < na && sa[i] <= x {
			i++
		}
		for j < nb && sb[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(na) - float64(j)/float64(nb))
		if diff > d {
			d = diff
		}
	}
	ne := float64(na) * float64(nb) / float64(na+nb)
	return KSResult{D: d, P: ksPValue(d, ne)}, nil
}

// ksPValue is the asymptotic Kolmogorov distribution tail
// Q(lambda) = 2 sum (-1)^{k-1} exp(-2 k^2 lambda^2) with the standard
// effective-n correction.
func ksPValue(d, n float64) float64 {
	sqrtN := math.Sqrt(n)
	lambda := (sqrtN + 0.12 + 0.11/sqrtN) * d
	sum := 0.0
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * float64(k*k) * lambda * lambda)
		if k%2 == 1 {
			sum += term
		} else {
			sum -= term
		}
		if term < 1e-12 {
			break
		}
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// normalCDF is the standard normal cumulative distribution function.
func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// MeanCI returns the two-sided Student-t confidence interval for the
// sample mean at the given confidence level (e.g. 0.95). The experiment
// tables report it alongside means so that paper-vs-measured comparisons
// carry their uncertainty.
func MeanCI(xs []float64, level float64) (lo, hi float64, err error) {
	if len(xs) < 2 {
		return 0, 0, ErrInsufficientData
	}
	if level <= 0 || level >= 1 {
		return 0, 0, errBadLevel
	}
	m := Mean(xs)
	se := SD(xs) / math.Sqrt(float64(len(xs)))
	t := studentTQuantile(1-(1-level)/2, float64(len(xs)-1))
	return m - t*se, m + t*se, nil
}

var errBadLevel = errInvalid("stats: confidence level must be in (0,1)")

type errInvalid string

func (e errInvalid) Error() string { return string(e) }

// studentTQuantile inverts the Student-t CDF by bisection on the survival
// function (adequate for the table-making use here).
func studentTQuantile(p, df float64) float64 {
	if p == 0.5 {
		return 0
	}
	// t in [0, 1e3] covers any practical confidence level and df >= 1.
	lo, hi := 0.0, 1000.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		// CDF(mid) = 1 - SF(mid).
		if 1-studentTSF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// MannWhitneyResult is the outcome of a Mann-Whitney U test (Wilcoxon
// rank-sum) — the nonparametric complement to WelchT for samples that
// fail the KS normality screening (e.g. the bimodal distributions of
// Figure 6a, where a t-test's mean comparison is misleading; lesson 5).
type MannWhitneyResult struct {
	U float64 // Mann-Whitney U statistic (of the first sample)
	Z float64 // normal approximation with tie correction
	P float64 // two-sided p-value
}

// MannWhitneyU performs the two-sided Mann-Whitney U test using the
// normal approximation with tie correction (adequate for n >= 8 per
// group, which every campaign in this repo exceeds).
func MannWhitneyU(a, b []float64) (MannWhitneyResult, error) {
	na, nb := len(a), len(b)
	if na < 2 || nb < 2 {
		return MannWhitneyResult{}, ErrInsufficientData
	}
	type obs struct {
		v     float64
		fromA bool
	}
	all := make([]obs, 0, na+nb)
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	// Midranks with tie bookkeeping.
	ranks := make([]float64, len(all))
	tieTerm := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	ra := 0.0
	for i, o := range all {
		if o.fromA {
			ra += ranks[i]
		}
	}
	fa, fb := float64(na), float64(nb)
	u := ra - fa*(fa+1)/2
	mean := fa * fb / 2
	n := fa + fb
	variance := fa * fb / 12 * (n + 1 - tieTerm/(n*(n-1)))
	res := MannWhitneyResult{U: u}
	if variance <= 0 {
		// All observations tied: no evidence of difference.
		res.P = 1
		return res, nil
	}
	// Continuity correction.
	diff := u - mean
	cc := 0.5
	if diff < 0 {
		cc = -0.5
	}
	res.Z = (diff - cc) / math.Sqrt(variance)
	res.P = 2 * (1 - normalCDF(math.Abs(res.Z)))
	if res.P > 1 {
		res.P = 1
	}
	return res, nil
}
