package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/ior"
	"repro/internal/obs"
)

func obsTestCampaign(metrics *obs.Registry, tracer *obs.Tracer, workers int) ([]Record, error) {
	cfgs := []Config{
		{Label: "obs-a", Params: ior.Params{Nodes: 2, PPN: 4, TransferSize: beegfs.MiB, StripeCount: 2}.WithTotalSize(beegfs.GiB)},
		{Label: "obs-b", Params: ior.Params{Nodes: 2, PPN: 4, TransferSize: beegfs.MiB, StripeCount: 4}.WithTotalSize(beegfs.GiB)},
	}
	proto := Protocol{Repetitions: 4, BlockSize: 2, MinWait: 0.1, MaxWait: 0.5, Seed: 7}
	return Campaign{
		Platform: cluster.PlaFRIM(cluster.Scenario1Ethernet),
		Proto:    proto,
		Workers:  workers,
		Metrics:  metrics,
		Tracer:   tracer,
	}.Run(cfgs)
}

// The central observability contract: enabling metrics and tracing must not
// change a single simulated number. out/ CSVs are pure functions of the
// record list, so record equality is CSV byte-identity.
func TestObservabilityDoesNotPerturbResults(t *testing.T) {
	plain, err := obsTestCampaign(nil, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	instrumented, err := obsTestCampaign(reg, tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, instrumented) {
		t.Fatal("records differ with observability enabled")
	}
	if tr.Events() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	var csv bytes.Buffer
	if err := tr.WriteUtilCSV(&csv, "ost"); err != nil {
		t.Fatal(err)
	}
	if strings.Count(csv.String(), "\n") < 2 {
		t.Fatalf("util CSV has no samples:\n%s", csv.String())
	}
	if got := reg.Counter("experiments/repetitions"); got != 8 {
		t.Fatalf("repetitions counter = %d, want 8", got)
	}
	for _, name := range []string{
		"simkernel/events_dispatched",
		"beegfs/write_ops",
		"simnet/solves/start",
	} {
		if reg.Counter(name) == 0 {
			t.Fatalf("counter %s is zero", name)
		}
	}
}

// stripRuntime removes the host-process metrics (wall-clock timings,
// pool hit rates) — the only registry contents that legitimately vary
// between identical runs — and re-serializes, so the comparison is
// structural.
func stripRuntime(t *testing.T, doc []byte) string {
	t.Helper()
	var parsed map[string]map[string]json.RawMessage
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatalf("metrics JSON invalid: %v", err)
	}
	for _, section := range parsed {
		for name := range section {
			if strings.HasPrefix(name, obs.RuntimePrefix) {
				delete(section, name)
			}
		}
	}
	out, err := json.MarshalIndent(parsed, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// Two identical instrumented runs — and any worker count — must export the
// same metrics JSON once wall-clock entries are filtered out.
func TestMetricsDeterministic(t *testing.T) {
	export := func(workers int) string {
		reg := obs.NewRegistry()
		if _, err := obsTestCampaign(reg, nil, workers); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return stripRuntime(t, buf.Bytes())
	}
	first := export(1)
	second := export(1)
	if first != second {
		t.Fatalf("serial reruns disagree:\n%s\nvs\n%s", first, second)
	}
	parallel := export(4)
	if first != parallel {
		t.Fatalf("worker counts disagree:\n%s\nvs\n%s", first, parallel)
	}
}

func obsPipelineCampaign(pl *obs.Pipeline, workers int) ([]Record, error) {
	cfgs := []Config{
		{Label: "obs-a", Params: ior.Params{Nodes: 2, PPN: 4, TransferSize: beegfs.MiB, StripeCount: 2}.WithTotalSize(beegfs.GiB)},
		{Label: "obs-b", Params: ior.Params{Nodes: 2, PPN: 4, TransferSize: beegfs.MiB, StripeCount: 4}.WithTotalSize(beegfs.GiB)},
	}
	proto := Protocol{Repetitions: 4, BlockSize: 2, MinWait: 0.1, MaxWait: 0.5, Seed: 7}
	return Campaign{
		Platform: cluster.PlaFRIM(cluster.Scenario1Ethernet),
		Proto:    proto,
		Workers:  workers,
		Pipeline: pl,
	}.Run(cfgs)
}

// TestPipelineDoesNotPerturbResults extends the central contract to the
// streaming pipeline: a campaign run through collector→router→sink must
// produce the exact same record list as an uninstrumented run — so the
// out/ CSVs stay byte-identical with sinks attached — and the JSON sink's
// final export must match the legacy registry path and stay identical
// across worker counts.
func TestPipelineDoesNotPerturbResults(t *testing.T) {
	plain, err := obsTestCampaign(nil, nil, 1)
	if err != nil {
		t.Fatal(err)
	}

	export := func(workers int) ([]Record, string) {
		dir := t.TempDir()
		path := dir + "/metrics.json"
		pl := obs.NewPipeline()
		pl.AddSink(obs.NewJSONSink(path))
		pl.AddSink(obs.NewPromSink(dir + "/metrics.prom"))
		pl.AddSink(obs.NewInfluxSink(dir + "/metrics.lp"))
		recs, err := obsPipelineCampaign(pl, workers)
		if err != nil {
			t.Fatal(err)
		}
		// Progress table must be complete before Close.
		for _, rs := range pl.Runs() {
			if rs.Done != rs.Total || rs.Total != 4 {
				t.Fatalf("incomplete run status: %+v", rs)
			}
		}
		if err := pl.Close(); err != nil {
			t.Fatal(err)
		}
		doc, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return recs, stripRuntime(t, doc)
	}

	recs1, json1 := export(1)
	if !reflect.DeepEqual(plain, recs1) {
		t.Fatal("records differ with the pipeline attached")
	}
	recs4, json4 := export(4)
	if !reflect.DeepEqual(plain, recs4) {
		t.Fatal("records differ at 4 workers with the pipeline attached")
	}
	if json1 != json4 {
		t.Fatalf("pipeline JSON sink disagrees across worker counts:\n%s\nvs\n%s", json1, json4)
	}

	// The pipeline export must agree with the legacy Metrics registry path
	// on everything but the pipeline-only campaign observations.
	reg := obs.NewRegistry()
	if _, err := obsTestCampaign(reg, nil, 1); err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	if err := reg.WriteJSON(&legacy); err != nil {
		t.Fatal(err)
	}
	var pipelineDoc, legacyDoc map[string]map[string]json.RawMessage
	if err := json.Unmarshal([]byte(json1), &pipelineDoc); err != nil {
		t.Fatal(err)
	}
	// Normalize through the same re-serialization so raw values compare
	// byte-for-byte regardless of source formatting.
	if err := json.Unmarshal([]byte(stripRuntime(t, legacy.Bytes())), &legacyDoc); err != nil {
		t.Fatal(err)
	}
	for section, metrics := range legacyDoc {
		for name, val := range metrics {
			if strings.HasPrefix(name, obs.RuntimePrefix) {
				continue
			}
			got, ok := pipelineDoc[section][name]
			if !ok {
				t.Fatalf("pipeline export lost %s/%s", section, name)
			}
			if !bytes.Equal(got, val) {
				t.Fatalf("pipeline export disagrees on %s/%s: %s vs %s", section, name, got, val)
			}
		}
	}
	// And the pipeline adds the per-campaign bandwidth observations.
	for _, name := range []string{
		"experiments/obs-a/app_bw_mibs",
		"experiments/obs-b/aggregate_bw_mibs",
	} {
		if _, ok := pipelineDoc["histograms"][name]; !ok {
			t.Fatalf("pipeline export lacks %s", name)
		}
	}
}
