package cluster

import (
	"fmt"

	"repro/internal/beegfs"
	"repro/internal/storagesim"
)

// FatTreeSpec shapes a multi-rack, over-subscribed datacenter platform —
// the scale regime of ROADMAP's "beyond PlaFRIM" item, where target
// *locality* (rack-local vs cross-rack placement) joins target count and
// placement as an allocation axis. Each rack holds OSSPerRack storage
// hosts with TargetsPerOSS OSTs each behind a shared uplink; clients are
// placed per rack with NewClientInRack / Deployment.NodesInRack.
type FatTreeSpec struct {
	// Racks, OSSPerRack and TargetsPerOSS shape the storage fabric.
	Racks         int
	OSSPerRack    int
	TargetsPerOSS int
	// LinkRate is the raw per-host (client and server) edge link rate in
	// MiB/s; UplinkRate is each rack's raw shared uplink rate. Protocol
	// efficiency is applied to both. An uplink smaller than
	// OSSPerRack·LinkRate is over-subscribed — the regime where rack-local
	// allocation wins.
	LinkRate   float64
	UplinkRate float64
	// CoreRate, when positive, is the raw capacity of a single core
	// switch every cross-rack transfer crosses in addition to the two
	// rack uplinks. A core smaller than Racks·UplinkRate is
	// over-subscribed and fuses all racks' cross traffic into one
	// connected flow component — the regime the hierarchical solver
	// decomposes. Zero leaves the fabric core-less (rack components stay
	// independent).
	CoreRate float64
	// Chooser is the system-wide fallback heuristic (rack-aware workloads
	// bypass it via CreateWithTargets). Nil defaults to round-robin.
	Chooser beegfs.TargetChooser
}

// FatTree builds the multi-rack platform described by the spec. An
// out-of-range shape returns a *ShapeError.
//
// Deviation from the PlaFRIM presets, by design: the client-stack ramp
// (ClientA) is disabled. The ramp is one resource shared by every flow in
// the deployment, which fuses the whole cluster into a single connected
// component; at datacenter scale the interesting structure is the
// *partition* into per-rack (or per-job) components that the batched
// parallel solver exploits, and the paper's client-ramp calibration is a
// property of the 2-OSS PlaFRIM testbed, not of a fat-tree fabric.
func FatTree(name string, spec FatTreeSpec) (Platform, error) {
	chooser := spec.Chooser
	if chooser == nil {
		chooser = &beegfs.RoundRobinChooser{}
	}
	if spec.Racks <= 0 {
		return Platform{}, &ShapeError{Builder: "FatTree", Field: "racks", Value: float64(spec.Racks)}
	}
	// positiveRate also rejects NaN and +Inf, which pass a plain sign
	// check and would deploy uplinks whose flows never complete.
	if !positiveRate(spec.UplinkRate) {
		return Platform{}, &ShapeError{Builder: "FatTree", Field: "uplink rate", Value: spec.UplinkRate}
	}
	if spec.CoreRate != 0 && !positiveRate(spec.CoreRate) {
		return Platform{}, &ShapeError{Builder: "FatTree", Field: "core rate", Value: spec.CoreRate}
	}
	if err := checkShape("FatTree", spec.Racks*spec.OSSPerRack, spec.TargetsPerOSS, spec.LinkRate, chooser); err != nil {
		return Platform{}, err
	}
	fs := beegfs.Config{
		Storage:            storagesim.PlaFRIMConfig(),
		Hosts:              spec.Racks * spec.OSSPerRack,
		TargetsPerHost:     spec.TargetsPerOSS,
		DefaultPattern:     beegfs.StripePattern{Count: 4, ChunkSize: 512 * beegfs.KiB},
		Chooser:            chooser,
		CreateLatency:      0.02,
		OpenLatency:        0.005,
		PpnSat:             8,
		ServerNICCapacity:  spec.LinkRate * protocolEfficiency,
		RackHosts:          spec.OSSPerRack,
		RackUplinkCapacity: spec.UplinkRate * protocolEfficiency,
		CoreCapacity:       spec.CoreRate * protocolEfficiency,
		RetryTimeout:       0.5,
		RetryBackoffBase:   0.5,
		RetryMax:           8,
	}
	if fs.DefaultPattern.Count > spec.TargetsPerOSS {
		fs.DefaultPattern.Count = spec.TargetsPerOSS
	}
	return Platform{
		Name:              name,
		FS:                fs,
		ClientNICCapacity: spec.LinkRate * protocolEfficiency,
		ServerNICJitterCV: 0.02,
		SetupMean:         0.25,
		SetupCV:           0.4,
	}, nil
}

// FatTreeCore builds the over-subscribed single-core variant of the
// spec: a core switch at one quarter of the racks' aggregate uplink rate
// (unless spec.CoreRate already says otherwise), so cross-rack traffic
// from every rack contends on one shared resource and the whole fabric
// solves as a single connected component. This is the topology the
// hierarchical solver's scale campaign (-fig hierscale) and
// BenchmarkScaleChurn10k's core cells run on.
func FatTreeCore(name string, spec FatTreeSpec) (Platform, error) {
	if spec.CoreRate == 0 {
		spec.CoreRate = float64(spec.Racks) * spec.UplinkRate / 4
	}
	return FatTree(name, spec)
}

// NodesInRack returns n compute nodes placed in the given rack, creating
// them on first use (like Nodes) so NIC resources persist across jobs.
func (d *Deployment) NodesInRack(rack, n int) []*beegfs.Client {
	if d.rackClients == nil {
		d.rackClients = make(map[int][]*beegfs.Client)
	}
	pool := d.rackClients[rack]
	for len(pool) < n {
		name := fmt.Sprintf("rack%02d/node%03d", rack, len(pool)+1)
		pool = append(pool, d.FS.NewClientInRack(name, d.Platform.ClientNICCapacity, rack))
	}
	d.rackClients[rack] = pool
	return pool[:n]
}
