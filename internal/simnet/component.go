package simnet

import "sort"

// component is one connected piece of the flow↔resource bipartite graph:
// the set of in-flight flows reachable from each other through shared
// resources, together with exactly the resources those flows touch. Rates
// inside a component are independent of every other component — max-min
// fairness never moves bandwidth across a resource no common flow uses —
// so the Network re-solves only the component an event actually touches
// and leaves all other rates, settlements and completion events alone.
//
// Membership is maintained incrementally: Start unions the components of
// the new flow's resources; a flow removal (complete/Abort) can split a
// component, which is detected lazily — the component is only marked
// stale, and re-derived (union-find over its resources) the next time a
// Start needs its membership. Until then the still-merged union is
// settled and solved as one, which is equally correct and cheaper than
// re-deriving membership on every removal. Flow order inside a component is the same
// (Name, seq) order the global solver used, and resources stay in
// registration-idx order, so the scoped waterfill performs bit-for-bit
// the same arithmetic the global solve performed whenever the component
// spans the whole active set.
type component struct {
	// id is a network-unique creation number, re-assigned every time a
	// pooled struct is brought back into service. Batched flushes solve
	// dirty components in id order, which makes the merge of a parallel
	// solve deterministic: component creation is single-threaded event
	// processing, so ids — unlike pool-slot pointers — are a reproducible
	// total order.
	id uint64
	// flows is (Name, seq)-sorted: the scoped solver input order.
	flows []*Flow
	// capped holds the component's flows with a rate cap, in ascending
	// (Cap, Name, seq) order. The solver seeds its cap frontier from it
	// by copy instead of re-sorting every solve; maintained alongside
	// flows on insert/remove/merge/rebuild. A flow's Cap must therefore
	// not change while it is in flight.
	capped []*Flow
	// resources is registration-idx-sorted and holds exactly the
	// resources touched by at least one flow of the component.
	resources []*Resource
	// stale records that a flow with two or more resources was removed,
	// which may have disconnected the remainder; the component is rebuilt
	// the next time a Start collects it with enough accumulated removals.
	stale bool
	// removals counts flow removals since the last rebuild. A rebuild is
	// an O(flows+resources) union-find pass, so it only runs once
	// removals reach half the component's size: split recovery stays at
	// most a factor-two window behind, the pass amortizes to O(1) per
	// removal, and workloads whose graph never splits (every campaign,
	// via the shared client ramp) spend almost nothing re-deriving
	// membership that cannot have changed.
	removals int
	// mark is Start's scratch flag for collecting distinct components.
	mark bool
	// traj is the freeze trajectory of the component's last recorded
	// solve; when still valid at the next single-flow removal, the
	// rebalance warm-starts from it instead of re-solving from scratch.
	// Any other mutation (merge, rebuild, reset) invalidates it.
	traj trajectory

	// Batched-mode bookkeeping (see batch.go). dirty marks the component
	// as awaiting its once-per-instant solve; pendEvents counts the events
	// that touched it this instant; pendRemoved is the single detached
	// flow when pendEvents == 1 (the warm-start hint — any second event
	// clears it); pendTrig is the trigger of the event that first dirtied
	// the component, for stats classification.
	dirty       bool
	pendEvents  int
	pendRemoved *Flow
	pendTrig    SolveTrigger
}

// flowBefore is the canonical in-component flow order: by name, then by
// start sequence for flows sharing a name. It matches the order of the
// Network-wide active list, so scoped and global solver inputs agree.
func flowBefore(a, b *Flow) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return a.seq < b.seq
}

// flowCmp is flowBefore as a three-way comparison for slices.SortFunc.
func flowCmp(a, b *Flow) int {
	if a.Name != b.Name {
		if a.Name < b.Name {
			return -1
		}
		return 1
	}
	switch {
	case a.seq < b.seq:
		return -1
	case a.seq > b.seq:
		return 1
	}
	return 0
}

// insertFlow places f into the sorted flow list (and, if capped, the
// cap-ordered list).
func (c *component) insertFlow(f *Flow) {
	i := sort.Search(len(c.flows), func(i int) bool { return flowBefore(f, c.flows[i]) })
	c.flows = append(c.flows, nil)
	copy(c.flows[i+1:], c.flows[i:])
	c.flows[i] = f
	if f.Cap > 0 {
		i = sort.Search(len(c.capped), func(i int) bool { return capOrder(f, c.capped[i]) < 0 })
		c.capped = append(c.capped, nil)
		copy(c.capped[i+1:], c.capped[i:])
		c.capped[i] = f
	}
}

// removeFlow deletes f from the sorted flow list (and the cap-ordered
// list) by identity.
func (c *component) removeFlow(f *Flow) {
	i := sort.Search(len(c.flows), func(i int) bool { return !flowBefore(c.flows[i], f) })
	for ; i < len(c.flows); i++ {
		if c.flows[i] == f {
			copy(c.flows[i:], c.flows[i+1:])
			c.flows[len(c.flows)-1] = nil
			c.flows = c.flows[:len(c.flows)-1]
			break
		}
	}
	if f.Cap <= 0 {
		return
	}
	i = sort.Search(len(c.capped), func(i int) bool { return capOrder(c.capped[i], f) >= 0 })
	for ; i < len(c.capped); i++ {
		if c.capped[i] == f {
			copy(c.capped[i:], c.capped[i+1:])
			c.capped[len(c.capped)-1] = nil
			c.capped = c.capped[:len(c.capped)-1]
			return
		}
	}
}

// insertResource places r into the idx-sorted resource list.
func (c *component) insertResource(r *Resource) {
	i := sort.Search(len(c.resources), func(i int) bool { return c.resources[i].idx > r.idx })
	c.resources = append(c.resources, nil)
	copy(c.resources[i+1:], c.resources[i:])
	c.resources[i] = r
}

// removeResource deletes r from the idx-sorted resource list.
func (c *component) removeResource(r *Resource) {
	i := sort.Search(len(c.resources), func(i int) bool { return c.resources[i].idx >= r.idx })
	if i < len(c.resources) && c.resources[i] == r {
		copy(c.resources[i:], c.resources[i+1:])
		c.resources[len(c.resources)-1] = nil
		c.resources = c.resources[:len(c.resources)-1]
	}
}

// reset empties the component for pool reuse, dropping references so the
// pooled struct cannot retain flows or resources.
func (c *component) reset() {
	for i := range c.flows {
		c.flows[i] = nil
	}
	for i := range c.capped {
		c.capped[i] = nil
	}
	for i := range c.resources {
		c.resources[i] = nil
	}
	c.flows = c.flows[:0]
	c.capped = c.capped[:0]
	c.resources = c.resources[:0]
	c.stale = false
	c.mark = false
	c.removals = 0
	c.dirty = false
	c.pendEvents = 0
	c.pendRemoved = nil
	c.pendTrig = 0
	c.traj.valid = false
	// The trajectory arenas keep their capacity for reuse, but a pooled
	// component must not pin flows or resources through the unused
	// capacity regions.
	clear(c.traj.passes[:cap(c.traj.passes)])
	clear(c.traj.frozen[:cap(c.traj.frozen)])
	c.traj.passes = c.traj.passes[:0]
	c.traj.frozen = c.traj.frozen[:0]
	c.traj.loads = c.traj.loads[:0]
}

// newComp returns an empty component from the free list (or a fresh one),
// already registered in the network's component list.
func (n *Network) newComp() *component {
	var c *component
	if k := len(n.compPool); k > 0 {
		c = n.compPool[k-1]
		n.compPool[k-1] = nil
		n.compPool = n.compPool[:k-1]
	} else {
		c = &component{}
	}
	c.id = n.nextCompID
	n.nextCompID++
	n.comps = append(n.comps, c)
	return c
}

// dropComp removes an emptied component from the network and pools it.
func (n *Network) dropComp(c *component) {
	for i, x := range n.comps {
		if x == c {
			copy(n.comps[i:], n.comps[i+1:])
			n.comps[len(n.comps)-1] = nil
			n.comps = n.comps[:len(n.comps)-1]
			break
		}
	}
	c.reset()
	n.compPool = append(n.compPool, c)
}

// mergeComp splices src into dst (both sorted merges), repoints the moved
// flows and resources, and retires src. Scratch buffers are reused, so a
// merge allocates only while the buffers are still growing to their
// steady-state size.
func (n *Network) mergeComp(dst, src *component) {
	n.mergeFlows = n.mergeFlows[:0]
	i, j := 0, 0
	for i < len(dst.flows) && j < len(src.flows) {
		if flowBefore(dst.flows[i], src.flows[j]) {
			n.mergeFlows = append(n.mergeFlows, dst.flows[i])
			i++
		} else {
			n.mergeFlows = append(n.mergeFlows, src.flows[j])
			j++
		}
	}
	n.mergeFlows = append(n.mergeFlows, dst.flows[i:]...)
	n.mergeFlows = append(n.mergeFlows, src.flows[j:]...)
	dst.flows = append(dst.flows[:0], n.mergeFlows...)

	n.mergeRes = n.mergeRes[:0]
	i, j = 0, 0
	for i < len(dst.resources) && j < len(src.resources) {
		if dst.resources[i].idx < src.resources[j].idx {
			n.mergeRes = append(n.mergeRes, dst.resources[i])
			i++
		} else {
			n.mergeRes = append(n.mergeRes, src.resources[j])
			j++
		}
	}
	n.mergeRes = append(n.mergeRes, dst.resources[i:]...)
	n.mergeRes = append(n.mergeRes, src.resources[j:]...)
	dst.resources = append(dst.resources[:0], n.mergeRes...)

	n.mergeCapped = n.mergeCapped[:0]
	i, j = 0, 0
	for i < len(dst.capped) && j < len(src.capped) {
		if capOrder(dst.capped[i], src.capped[j]) < 0 {
			n.mergeCapped = append(n.mergeCapped, dst.capped[i])
			i++
		} else {
			n.mergeCapped = append(n.mergeCapped, src.capped[j])
			j++
		}
	}
	n.mergeCapped = append(n.mergeCapped, dst.capped[i:]...)
	n.mergeCapped = append(n.mergeCapped, src.capped[j:]...)
	dst.capped = append(dst.capped[:0], n.mergeCapped...)

	for _, f := range src.flows {
		f.comp = dst
	}
	for _, r := range src.resources {
		r.comp = dst
	}
	dst.stale = dst.stale || src.stale
	dst.removals += src.removals
	dst.traj.valid = false
	n.dropComp(src)
}

// ufFind resolves a union-find root with path halving.
func ufFind(parent []int32, x int32) int32 {
	for parent[x] != x {
		parent[x] = parent[parent[x]]
		x = parent[x]
	}
	return x
}

// rebuildComp re-derives the true connected components of a stale
// component after flow removals. It changes membership only — the caller
// decides which fragments to re-solve. The returned slice is scratch,
// valid until the next rebuild; the first-seen fragment reuses c itself,
// additional fragments come from the pool. Fragment assignment walks
// resources in idx order and flows in name order, so the result — and
// every float computed from it afterwards — is reproducible.
func (n *Network) rebuildComp(c *component) []*component {
	c.stale = false
	c.removals = 0
	c.traj.valid = false
	n.frags = n.frags[:0]
	if len(c.resources) == 0 {
		n.frags = append(n.frags, c)
		return n.frags
	}
	if cap(n.ufParent) < len(c.resources) {
		n.ufParent = make([]int32, 2*len(c.resources))
		n.fragOf = make([]int32, 2*len(c.resources))
	}
	parent := n.ufParent[:len(c.resources)]
	for i, r := range c.resources {
		parent[i] = int32(i)
		r.uf = int32(i)
	}
	for _, f := range c.flows {
		if len(f.uses) <= 1 {
			continue
		}
		a := ufFind(parent, f.uses[0].res.uf)
		for k := 1; k < len(f.uses); k++ {
			b := ufFind(parent, f.uses[k].res.uf)
			if a == b {
				continue
			}
			if b < a {
				a, b = b, a
			}
			parent[b] = a
		}
	}
	root0 := ufFind(parent, 0)
	single := true
	for i := range parent {
		if ufFind(parent, int32(i)) != root0 {
			single = false
			break
		}
	}
	if single {
		n.frags = append(n.frags, c)
		return n.frags
	}
	fragOf := n.fragOf[:len(parent)]
	for i := range fragOf {
		fragOf[i] = -1
	}
	// Move the membership aside and reuse c as the first fragment.
	n.mergeFlows = append(n.mergeFlows[:0], c.flows...)
	n.mergeRes = append(n.mergeRes[:0], c.resources...)
	n.mergeCapped = append(n.mergeCapped[:0], c.capped...)
	c.flows = c.flows[:0]
	c.capped = c.capped[:0]
	c.resources = c.resources[:0]
	n.frags = append(n.frags, c)
	firstRootPending := true
	for i, r := range n.mergeRes {
		root := ufFind(parent, int32(i))
		fi := fragOf[root]
		if fi < 0 {
			if firstRootPending {
				fi = 0
				firstRootPending = false
			} else {
				n.frags = append(n.frags, n.newComp())
				fi = int32(len(n.frags) - 1)
			}
			fragOf[root] = fi
		}
		frag := n.frags[fi]
		frag.resources = append(frag.resources, r)
		r.comp = frag
	}
	for _, f := range n.mergeFlows {
		frag := n.frags[0]
		if len(f.uses) > 0 {
			frag = f.uses[0].res.comp
		}
		frag.flows = append(frag.flows, f)
		f.comp = frag
	}
	// Distribute the cap-ordered list the same way: walking the master
	// list in capOrder and appending to each flow's new fragment keeps
	// every fragment's capped list sorted without re-sorting.
	for _, f := range n.mergeCapped {
		f.comp.capped = append(f.comp.capped, f)
	}
	return n.frags
}
