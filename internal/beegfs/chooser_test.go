package beegfs

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/simkernel"
	"repro/internal/simnet"
	"repro/internal/storagesim"
)

func plafrimTargets(t *testing.T) (*storagesim.System, []*storagesim.Target) {
	t.Helper()
	sim := simkernel.New()
	net := simnet.New(sim)
	sys, err := storagesim.NewSystem(net, storagesim.PlaFRIMConfig(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	order, err := PlaFRIMOrder(sys)
	if err != nil {
		t.Fatal(err)
	}
	return sys, order
}

// allocation returns (min, max) of targets per host — the paper's
// notation, computed locally to keep this package free of internal/core.
func allocation(targets []*storagesim.Target) (int, int) {
	perHost := make(map[*storagesim.Host]int)
	for _, t := range targets {
		perHost[t.Host()]++
	}
	min, max := 0, 0
	first := true
	for _, n := range perHost {
		if first {
			min, max = n, n
			first = false
			continue
		}
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if len(perHost) == 1 {
		// Only one host used: the other's count is 0.
		min = 0
	}
	return min, max
}

func ids(targets []*storagesim.Target) []int {
	out := make([]int, len(targets))
	for i, t := range targets {
		out[i] = t.ID
	}
	return out
}

func TestPlaFRIMOrder(t *testing.T) {
	_, order := plafrimTargets(t)
	want := []int{101, 201, 202, 203, 204, 102, 103, 104}
	got := ids(order)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// §IV-C1: "The round-robin heuristic used in PlaFRIM always makes a (1,3)
// allocation: (101, 201, 202, 203) or (204, 102, 103, 104)."
func TestRoundRobinCount4PaperAllocations(t *testing.T) {
	_, order := plafrimTargets(t)
	rr := &RoundRobinChooser{}
	seen := make(map[string]int)
	for i := 0; i < 100; i++ {
		chosen, err := rr.Choose(4, order, nil)
		if err != nil {
			t.Fatal(err)
		}
		mn, mx := allocation(chosen)
		if mn != 1 || mx != 3 {
			t.Fatalf("iteration %d: allocation (%d,%d), want (1,3); targets %v", i, mn, mx, ids(chosen))
		}
		key := ""
		for _, id := range ids(chosen) {
			key += string(rune(id))
		}
		seen[key]++
	}
	if len(seen) != 2 {
		t.Fatalf("round-robin count 4 produced %d distinct allocations, want exactly 2", len(seen))
	}
}

// §IV-C1 bimodality: counts 2, 3, 5, 6 mix two allocation classes; counts
// 1, 4, 7, 8 always give the same class.
func TestRoundRobinAllocationClassesPerCount(t *testing.T) {
	_, order := plafrimTargets(t)
	wantClasses := map[int]int{1: 1, 2: 2, 3: 2, 4: 1, 5: 2, 6: 2, 7: 1, 8: 1}
	for count := 1; count <= 8; count++ {
		rr := &RoundRobinChooser{}
		classes := make(map[[2]int]bool)
		for i := 0; i < 200; i++ {
			chosen, err := rr.Choose(count, order, nil)
			if err != nil {
				t.Fatal(err)
			}
			mn, mx := allocation(chosen)
			classes[[2]int{mn, mx}] = true
		}
		if len(classes) != wantClasses[count] {
			t.Errorf("count %d: %d allocation classes %v, want %d", count, len(classes), classes, wantClasses[count])
		}
	}
}

// Specific class membership per the paper: count 6 mixes (2,4) and (3,3);
// count 2 mixes (1,1) and (0,2); count 7 is always (3,4); count 8 (4,4).
func TestRoundRobinSpecificClasses(t *testing.T) {
	_, order := plafrimTargets(t)
	collect := func(count int) map[[2]int]bool {
		rr := &RoundRobinChooser{}
		classes := make(map[[2]int]bool)
		for i := 0; i < 200; i++ {
			chosen, _ := rr.Choose(count, order, nil)
			mn, mx := allocation(chosen)
			classes[[2]int{mn, mx}] = true
		}
		return classes
	}
	c2 := collect(2)
	if !c2[[2]int{1, 1}] || !c2[[2]int{0, 2}] {
		t.Fatalf("count 2 classes = %v, want {(1,1),(0,2)}", c2)
	}
	c6 := collect(6)
	if !c6[[2]int{2, 4}] || !c6[[2]int{3, 3}] {
		t.Fatalf("count 6 classes = %v, want {(2,4),(3,3)}", c6)
	}
	c7 := collect(7)
	if !c7[[2]int{3, 4}] || len(c7) != 1 {
		t.Fatalf("count 7 classes = %v, want {(3,4)}", c7)
	}
	c8 := collect(8)
	if !c8[[2]int{4, 4}] || len(c8) != 1 {
		t.Fatalf("count 8 classes = %v, want {(4,4)}", c8)
	}
}

func TestRoundRobinReset(t *testing.T) {
	_, order := plafrimTargets(t)
	rr := &RoundRobinChooser{}
	first, _ := rr.Choose(4, order, nil)
	rr.Reset()
	again, _ := rr.Choose(4, order, nil)
	for i := range first {
		if first[i] != again[i] {
			t.Fatal("Reset did not rewind the cursor")
		}
	}
}

func TestChooserErrors(t *testing.T) {
	_, order := plafrimTargets(t)
	rr := &RoundRobinChooser{}
	if _, err := rr.Choose(0, order, nil); err == nil {
		t.Fatal("count 0 accepted")
	}
	if _, err := rr.Choose(9, order, nil); err == nil {
		t.Fatal("count > targets accepted")
	}
	if _, err := (RandomChooser{}).Choose(4, order, nil); err == nil {
		t.Fatal("random chooser without source accepted")
	}
}

func TestRandomChooserIsValidSubset(t *testing.T) {
	_, order := plafrimTargets(t)
	src := rng.New(1)
	for i := 0; i < 100; i++ {
		chosen, err := (RandomChooser{}).Choose(4, order, src)
		if err != nil {
			t.Fatal(err)
		}
		if len(chosen) != 4 {
			t.Fatalf("len = %d", len(chosen))
		}
		seen := make(map[int]bool)
		for _, tg := range chosen {
			if seen[tg.ID] {
				t.Fatalf("duplicate target %d", tg.ID)
			}
			seen[tg.ID] = true
		}
	}
}

// §IV-C1: with random selection at count 4 "all other allocations would be
// possible, including the balanced (2,2)".
func TestRandomChooserProducesBalancedCount4(t *testing.T) {
	_, order := plafrimTargets(t)
	src := rng.New(2)
	classes := make(map[[2]int]int)
	for i := 0; i < 500; i++ {
		chosen, err := (RandomChooser{}).Choose(4, order, src)
		if err != nil {
			t.Fatal(err)
		}
		mn, mx := allocation(chosen)
		classes[[2]int{mn, mx}]++
	}
	if classes[[2]int{2, 2}] == 0 {
		t.Fatalf("random chooser never produced (2,2) in 500 draws: %v", classes)
	}
	if classes[[2]int{1, 3}] == 0 {
		t.Fatalf("random chooser never produced (1,3): %v", classes)
	}
	// Hypergeometric: P(2,2) = C(4,2)^2/C(8,4) = 36/70; P(1,3)+P(3,1) = 32/70.
	if classes[[2]int{2, 2}] < 180 || classes[[2]int{2, 2}] > 330 {
		t.Fatalf("(2,2) frequency %d implausible for hypergeometric 36/70", classes[[2]int{2, 2}])
	}
}

func TestBalancedChooserAlwaysBalanced(t *testing.T) {
	_, order := plafrimTargets(t)
	bc := &BalancedChooser{}
	for _, count := range []int{2, 4, 6, 8} {
		for i := 0; i < 20; i++ {
			chosen, err := bc.Choose(count, order, nil)
			if err != nil {
				t.Fatal(err)
			}
			mn, mx := allocation(chosen)
			if mn != count/2 || mx != count/2 {
				t.Fatalf("count %d draw %d: allocation (%d,%d), want (%d,%d)", count, i, mn, mx, count/2, count/2)
			}
		}
	}
}

func TestBalancedChooserOddCountsNearBalanced(t *testing.T) {
	_, order := plafrimTargets(t)
	bc := &BalancedChooser{}
	for _, count := range []int{1, 3, 5, 7} {
		chosen, err := bc.Choose(count, order, nil)
		if err != nil {
			t.Fatal(err)
		}
		mn, mx := allocation(chosen)
		if mx-mn > 1 {
			t.Fatalf("count %d: allocation (%d,%d) not near-balanced", count, mn, mx)
		}
	}
}

func TestBalancedChooserRotatesWithinHost(t *testing.T) {
	_, order := plafrimTargets(t)
	bc := &BalancedChooser{}
	a, _ := bc.Choose(2, order, nil)
	b, _ := bc.Choose(2, order, nil)
	if a[0] == b[0] && a[1] == b[1] {
		t.Fatal("balanced chooser reused the same targets back to back")
	}
}

func TestBalancedChooserAlternatesHeavyHostForOddCounts(t *testing.T) {
	_, order := plafrimTargets(t)
	bc := &BalancedChooser{}
	heavy := make(map[string]int)
	for i := 0; i < 10; i++ {
		chosen, err := bc.Choose(3, order, nil)
		if err != nil {
			t.Fatal(err)
		}
		perHost := make(map[*storagesim.Host]int)
		for _, tg := range chosen {
			perHost[tg.Host()]++
		}
		for h, n := range perHost {
			if n == 2 {
				heavy[h.Name]++
			}
		}
	}
	if len(heavy) != 2 {
		t.Fatalf("odd-count remainder always lands on the same host: %v", heavy)
	}
}

func TestBalancedChooserOnLargerSystem(t *testing.T) {
	sim := simkernel.New()
	net := simnet.New(sim)
	sys, err := storagesim.NewSystem(net, storagesim.PlaFRIMConfig(), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	order := InterleavedOrder(sys)
	bc := &BalancedChooser{}
	chosen, err := bc.Choose(8, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	perHost := make(map[*storagesim.Host]int)
	for _, tg := range chosen {
		perHost[tg.Host()]++
	}
	for h, n := range perHost {
		if n != 2 {
			t.Fatalf("host %s got %d targets, want 2", h.Name, n)
		}
	}
}

func TestBalancedChooserSpillWhenHostExhausted(t *testing.T) {
	sim := simkernel.New()
	net := simnet.New(sim)
	sys, err := storagesim.NewSystem(net, storagesim.PlaFRIMConfig(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Only 1 target of host 1 is online, plus all 4 of host 2.
	var online []*storagesim.Target
	online = append(online, sys.TargetByID(101))
	for _, id := range []int{201, 202, 203, 204} {
		online = append(online, sys.TargetByID(id))
	}
	bc := &BalancedChooser{}
	chosen, err := bc.Choose(5, order5(online), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 5 {
		t.Fatalf("len = %d, want 5", len(chosen))
	}
	seen := make(map[int]bool)
	for _, tg := range chosen {
		if seen[tg.ID] {
			t.Fatalf("duplicate target %d after spill", tg.ID)
		}
		seen[tg.ID] = true
	}
}

func order5(ts []*storagesim.Target) []*storagesim.Target { return ts }

func TestRandomInterNodeBalanced(t *testing.T) {
	_, order := plafrimTargets(t)
	src := rng.New(77)
	ch := RandomInterNodeChooser{}
	distinctSets := map[string]bool{}
	for i := 0; i < 200; i++ {
		chosen, err := ch.Choose(4, order, src)
		if err != nil {
			t.Fatal(err)
		}
		mn, mx := allocation(chosen)
		if mn != 2 || mx != 2 {
			t.Fatalf("randominternode count 4 gave (%d,%d), want (2,2)", mn, mx)
		}
		key := ""
		for _, id := range ids(chosen) {
			key += string(rune(id))
		}
		distinctSets[key] = true
	}
	// Randomized within hosts: many distinct target sets appear.
	if len(distinctSets) < 10 {
		t.Fatalf("only %d distinct target sets in 200 draws; expected randomized selection", len(distinctSets))
	}
}

func TestRandomInterNodeOddCounts(t *testing.T) {
	_, order := plafrimTargets(t)
	src := rng.New(78)
	ch := RandomInterNodeChooser{}
	for _, k := range []int{1, 3, 5, 7} {
		chosen, err := ch.Choose(k, order, src)
		if err != nil {
			t.Fatal(err)
		}
		mn, mx := allocation(chosen)
		if mx-mn > 1 {
			t.Fatalf("count %d: allocation (%d,%d) not near-balanced", k, mn, mx)
		}
	}
}

func TestRandomInterNodeFullSet(t *testing.T) {
	_, order := plafrimTargets(t)
	chosen, err := RandomInterNodeChooser{}.Choose(8, order, rng.New(79))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, tg := range chosen {
		if seen[tg.ID] {
			t.Fatalf("duplicate target %d", tg.ID)
		}
		seen[tg.ID] = true
	}
}

func TestRandomInterNodeNeedsSource(t *testing.T) {
	_, order := plafrimTargets(t)
	if _, err := (RandomInterNodeChooser{}).Choose(2, order, nil); err == nil {
		t.Fatal("nil source accepted")
	}
}
