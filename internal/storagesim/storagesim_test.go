package storagesim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/simkernel"
	"repro/internal/simnet"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func newSys(t *testing.T, cfg Config, hosts, tph int) (*simkernel.Simulation, *simnet.Network, *System) {
	t.Helper()
	sim := simkernel.New()
	net := simnet.New(sim)
	sys, err := NewSystem(net, cfg, hosts, tph)
	if err != nil {
		t.Fatal(err)
	}
	return sim, net, sys
}

func detConfig() Config {
	return Config{SingleTargetRate: 1764, Beta: 0.596}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"plafrim", PlaFRIMConfig(), true},
		{"zero rate", Config{Beta: 0.5}, false},
		{"beta zero", Config{SingleTargetRate: 1, Beta: 0}, false},
		{"beta above one", Config{SingleTargetRate: 1, Beta: 1.5}, false},
		{"beta one ok", Config{SingleTargetRate: 1, Beta: 1}, true},
		{"negative peak", Config{SingleTargetRate: 1, Beta: 1, TargetPeak: -1}, false},
		{"negative jitter", Config{SingleTargetRate: 1, Beta: 1, HostJitterCV: -0.1}, false},
		{"penalty above one", Config{SingleTargetRate: 1, Beta: 1, SharePenalty: 2}, false},
		{"penalty ok", Config{SingleTargetRate: 1, Beta: 1, SharePenalty: 0.9}, true},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestNewSystemLayout(t *testing.T) {
	_, _, sys := newSys(t, detConfig(), 2, 4)
	if len(sys.Hosts()) != 2 {
		t.Fatalf("hosts = %d", len(sys.Hosts()))
	}
	if len(sys.Targets()) != 8 {
		t.Fatalf("targets = %d", len(sys.Targets()))
	}
	// Paper-style IDs: 101..104, 201..204.
	wantIDs := []int{101, 102, 103, 104, 201, 202, 203, 204}
	for i, tgt := range sys.Targets() {
		if tgt.ID != wantIDs[i] {
			t.Fatalf("target[%d].ID = %d, want %d", i, tgt.ID, wantIDs[i])
		}
	}
	if sys.TargetByID(203) == nil || sys.TargetByID(999) != nil {
		t.Fatal("TargetByID lookup broken")
	}
}

func TestNewSystemRejectsBadShape(t *testing.T) {
	sim := simkernel.New()
	net := simnet.New(sim)
	if _, err := NewSystem(net, detConfig(), 0, 4); err == nil {
		t.Fatal("0 hosts accepted")
	}
	if _, err := NewSystem(net, detConfig(), 2, 0); err == nil {
		t.Fatal("0 targets accepted")
	}
	if _, err := NewSystem(net, Config{}, 2, 4); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestHostCapacityConcave(t *testing.T) {
	cfg := detConfig()
	c1 := cfg.HostCapacity(1)
	c4 := cfg.HostCapacity(4)
	if !almost(c1, 1764, 1e-9) {
		t.Fatalf("C(1) = %v, want 1764", c1)
	}
	// Calibration target: C(4) ~ 4032 so 2 hosts reach the paper's ~8064.
	if c4 < 3950 || c4 > 4120 {
		t.Fatalf("C(4) = %v, want ~4032", c4)
	}
	// Concavity: per-target capacity falls with m.
	for m := 1; m < 4; m++ {
		a := cfg.HostCapacity(m) / float64(m)
		b := cfg.HostCapacity(m+1) / float64(m+1)
		if b >= a {
			t.Fatalf("per-target capacity not decreasing: C(%d)/%d=%v vs C(%d)/%d=%v", m, m, a, m+1, m+1, b)
		}
	}
	if cfg.HostCapacity(0) != 0 {
		t.Fatal("C(0) != 0")
	}
}

func TestAcquireUpdatesControllerCapacity(t *testing.T) {
	_, _, sys := newSys(t, detConfig(), 2, 4)
	h := sys.Hosts()[0]
	t1, t2 := h.Targets()[0], h.Targets()[1]
	t1.Acquire("app", 1)
	if !almost(h.Controller().Capacity(), 1764, 1e-6) {
		t.Fatalf("C after 1 active = %v", h.Controller().Capacity())
	}
	t2.Acquire("app", 1)
	want := detConfig().HostCapacity(2)
	if !almost(h.Controller().Capacity(), want, 1e-6) {
		t.Fatalf("C after 2 active = %v, want %v", h.Controller().Capacity(), want)
	}
	t1.Release("app", 1)
	t2.Release("app", 1)
	if h.ActiveTargets() != 0 {
		t.Fatalf("active targets after release = %d", h.ActiveTargets())
	}
}

func TestAcquireSameTargetTwiceIsOneActive(t *testing.T) {
	_, _, sys := newSys(t, detConfig(), 1, 4)
	h := sys.Hosts()[0]
	tg := h.Targets()[0]
	tg.Acquire("a", 1)
	tg.Acquire("a", 1)
	tg.Acquire("b", 1)
	if h.ActiveTargets() != 1 {
		t.Fatalf("ActiveTargets = %d, want 1", h.ActiveTargets())
	}
	if tg.Writers() != 2 {
		t.Fatalf("distinct writers = %d, want 2", tg.Writers())
	}
	tg.Release("a", 1)
	if tg.Writers() != 2 {
		t.Fatalf("writers after partial release = %d, want 2", tg.Writers())
	}
	tg.Release("a", 1)
	if tg.Writers() != 1 {
		t.Fatalf("writers = %d, want 1", tg.Writers())
	}
	tg.Release("b", 1)
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	_, _, sys := newSys(t, detConfig(), 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Release did not panic")
		}
	}()
	sys.Targets()[0].Release("ghost", 1)
}

func TestSharePenaltyDisabledByDefault(t *testing.T) {
	_, _, sys := newSys(t, detConfig(), 1, 1)
	tg := sys.Targets()[0]
	tg.Acquire("a", 1)
	before := tg.Resource().Capacity()
	tg.Acquire("b", 1)
	if tg.Resource().Capacity() != before {
		t.Fatal("capacity changed on sharing although SharePenalty = 0")
	}
	tg.Release("a", 1)
	tg.Release("b", 1)
}

func TestSharePenaltyAblation(t *testing.T) {
	cfg := detConfig()
	cfg.SharePenalty = 0.8
	_, _, sys := newSys(t, cfg, 1, 1)
	tg := sys.Targets()[0]
	tg.Acquire("a", 1)
	c1 := tg.Resource().Capacity()
	tg.Acquire("b", 1)
	if !almost(tg.Resource().Capacity(), 0.8*c1, 1e-9) {
		t.Fatalf("2 sharers: %v, want %v", tg.Resource().Capacity(), 0.8*c1)
	}
	tg.Acquire("c", 1)
	if !almost(tg.Resource().Capacity(), 0.64*c1, 1e-9) {
		t.Fatalf("3 sharers: %v, want %v", tg.Resource().Capacity(), 0.64*c1)
	}
	tg.Release("c", 1)
	if !almost(tg.Resource().Capacity(), 0.8*c1, 1e-9) {
		t.Fatal("penalty did not relax on release")
	}
	tg.Release("b", 1)
	tg.Release("a", 1)
}

func TestReJitterStatistics(t *testing.T) {
	cfg := detConfig()
	cfg.HostJitterCV = 0.08
	cfg.TargetJitterCV = 0.04
	_, _, sys := newSys(t, cfg, 2, 4)
	tg := sys.Targets()[0]
	tg.Acquire("a", 1)
	src := rng.New(42)
	var caps []float64
	for i := 0; i < 3000; i++ {
		sys.ReJitter(src)
		caps = append(caps, tg.Resource().Capacity())
	}
	mean, sd := meanSD(caps)
	if math.Abs(mean-1764)/1764 > 0.02 {
		t.Fatalf("jittered target capacity mean = %v, want ~1764", mean)
	}
	if sd/mean < 0.02 || sd/mean > 0.06 {
		t.Fatalf("target capacity cv = %v, want ~0.04", sd/mean)
	}
	tg.Release("a", 1)
}

func TestReJitterCorrelatedWithinHost(t *testing.T) {
	// Host jitter moves the controller; two samples of the controller
	// capacity with the same active set must vary run to run.
	cfg := detConfig()
	cfg.HostJitterCV = 0.1
	_, _, sys := newSys(t, cfg, 1, 2)
	h := sys.Hosts()[0]
	h.Targets()[0].Acquire("a", 1)
	src := rng.New(7)
	sys.ReJitter(src)
	c1 := h.Controller().Capacity()
	sys.ReJitter(src)
	c2 := h.Controller().Capacity()
	if c1 == c2 {
		t.Fatal("controller capacity did not vary across ReJitter")
	}
	h.Targets()[0].Release("a", 1)
}

func TestResetJitter(t *testing.T) {
	cfg := detConfig()
	cfg.HostJitterCV = 0.1
	cfg.TargetJitterCV = 0.1
	_, _, sys := newSys(t, cfg, 2, 4)
	tg := sys.Targets()[3]
	tg.Acquire("a", 1)
	sys.ReJitter(rng.New(1))
	sys.ResetJitter()
	if !almost(tg.Resource().Capacity(), 1764, 1e-9) {
		t.Fatalf("capacity after reset = %v, want 1764", tg.Resource().Capacity())
	}
	if !almost(tg.Host().Controller().Capacity(), 1764, 1e-9) {
		t.Fatalf("controller after reset = %v", tg.Host().Controller().Capacity())
	}
	tg.Release("a", 1)
}

// End-to-end: a flow writing through one target is limited by the target,
// and 4 concurrent targets on one host are limited by the concave
// controller.
func TestFlowsThroughStorage(t *testing.T) {
	_, net, sys := newSys(t, detConfig(), 1, 4)
	h := sys.Hosts()[0]
	var flows []*simnet.Flow
	for i, tg := range h.Targets() {
		tg.Acquire("app", 1)
		f := &simnet.Flow{
			Name:   string(rune('a' + i)),
			Volume: 1e9, // long-lived so the steady rate is observable
			Usage: map[*simnet.Resource]float64{
				tg.Resource():  1,
				h.Controller(): 1,
			},
		}
		net.Start(f)
		flows = append(flows, f)
	}
	// With all 4 targets active the controller is at C(4); each flow gets
	// an equal share C(4)/4 (< per-target peak, so the controller binds).
	want := detConfig().HostCapacity(4) / 4
	for i, f := range flows {
		if !almost(f.Rate(), want, 1e-6) {
			t.Fatalf("flow %d rate = %v, want %v", i, f.Rate(), want)
		}
	}
	// A single flow alone would instead be limited by its target's peak.
	if want >= detConfig().SingleTargetRate {
		t.Fatal("test assumption broken: controller share should be below target peak")
	}
}

// Property: controller capacity is monotone nondecreasing in the number of
// active targets and never exceeds m * TargetPeak.
func TestPropertyControllerMonotone(t *testing.T) {
	check := func(rateSeed uint16, betaSeed uint8) bool {
		rate := 100 + float64(rateSeed%2000)
		beta := 0.2 + 0.8*float64(betaSeed%100)/100
		if beta > 1 {
			beta = 1
		}
		cfg := Config{SingleTargetRate: rate, Beta: beta}
		prev := 0.0
		for m := 1; m <= 8; m++ {
			c := cfg.HostCapacity(m)
			if c < prev {
				return false
			}
			if c > rate*float64(m)+1e-9 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func meanSD(xs []float64) (float64, float64) {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	m := sum / float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return m, math.Sqrt(ss / float64(len(xs)-1))
}

func TestSaturationRamp(t *testing.T) {
	cfg := detConfig()
	cfg.SatHalf = 16
	_, _, sys := newSys(t, cfg, 1, 1)
	tg := sys.Targets()[0]
	tg.Acquire("a", 16)
	// c = SatHalf -> half of peak.
	if !almost(tg.Resource().Capacity(), 1764/2, 1e-6) {
		t.Fatalf("capacity at half-saturation = %v, want %v", tg.Resource().Capacity(), 1764.0/2)
	}
	tg.Acquire("a", 48) // total depth 64 -> 64/80 = 0.8 of peak
	if !almost(tg.Resource().Capacity(), 1764*0.8, 1e-6) {
		t.Fatalf("capacity at depth 64 = %v, want %v", tg.Resource().Capacity(), 1764*0.8)
	}
	tg.Release("a", 48)
	if !almost(tg.Resource().Capacity(), 1764/2, 1e-6) {
		t.Fatal("saturation did not relax on release")
	}
	tg.Release("a", 16)
	if tg.WriteDepth() != 0 {
		t.Fatalf("residual depth %v after full release", tg.WriteDepth())
	}
}

func TestSaturationDisabledByDefault(t *testing.T) {
	_, _, sys := newSys(t, detConfig(), 1, 1)
	tg := sys.Targets()[0]
	tg.Acquire("a", 0.001)
	if !almost(tg.Resource().Capacity(), 1764, 1e-9) {
		t.Fatalf("capacity with SatHalf=0 = %v, want peak", tg.Resource().Capacity())
	}
	tg.Release("a", 0.001)
}

func TestNegativeDepthPanics(t *testing.T) {
	_, _, sys := newSys(t, detConfig(), 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative depth accepted")
		}
	}()
	sys.Targets()[0].Acquire("a", -1)
}

// SetFailed pins the component's capacity to zero and the zero survives
// writer-count and jitter recomputations until recovery.
func TestSetFailedPinsCapacityToZero(t *testing.T) {
	_, net, sys := newSys(t, detConfig(), 2, 4)
	tg := sys.Targets()[0]
	h := tg.Host()

	tg.SetFailed(true)
	if !tg.Failed() || tg.Resource().Capacity() != 0 {
		t.Fatal("failed target has capacity")
	}
	// Writer churn and jitter must not resurrect the capacity.
	tg.Acquire("app", 1)
	sys.ReJitter(rng.New(7))
	if tg.Resource().Capacity() != 0 {
		t.Fatal("failed target capacity resurrected")
	}
	tg.Release("app", 1)
	tg.SetFailed(false)
	if tg.Resource().Capacity() <= 0 {
		t.Fatal("recovered target still at zero")
	}

	h.SetFailed(true)
	if !h.Failed() || h.Controller().Capacity() != 0 {
		t.Fatal("failed host has controller capacity")
	}
	sys.ResetJitter()
	if h.Controller().Capacity() != 0 {
		t.Fatal("failed host capacity resurrected by ResetJitter")
	}
	h.SetFailed(false)
	if h.Controller().Capacity() <= 0 {
		t.Fatal("recovered host still at zero")
	}
	_ = net
}
