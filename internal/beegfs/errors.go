package beegfs

import "fmt"

// UnavailableError reports that an I/O op cannot be issued right now
// because a stripe carrying bytes has no available replica. With retries
// enabled the client backs off and re-checks; with retries disabled the
// error surfaces to the caller immediately.
type UnavailableError struct {
	Path   string
	Stripe int
	Read   bool
}

// Error implements error.
func (e *UnavailableError) Error() string {
	kind := "write"
	if e.Read {
		kind = "read"
	}
	return fmt.Sprintf("beegfs: stripe %d of %q has no available replica for %s", e.Stripe, e.Path, kind)
}

// IOFailedError is the structured terminal error of a write or read whose
// retry budget is exhausted, or that was aborted by a fault with retries
// disabled. It is delivered through WriteOp.OnError — mid-run I/O failures
// never panic.
type IOFailedError struct {
	Path     string
	Op       string // "write" or "read"
	Attempts int
	Reason   error
}

// Error implements error.
func (e *IOFailedError) Error() string {
	return fmt.Sprintf("beegfs: %s of %q failed after %d retries: %v", e.Op, e.Path, e.Attempts, e.Reason)
}

// Unwrap exposes the underlying reason.
func (e *IOFailedError) Unwrap() error { return e.Reason }
