package experiments

import (
	"fmt"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/ior"
	"repro/internal/stats"
)

// ExtNNRow compares the shared-file (N-1) and file-per-process (N-N)
// access patterns for one client geometry — the paper's §VI future work.
// With an unconstrained MDS both patterns perform alike (striping math is
// identical); rate-limiting the MDS makes N-N pay a visible metadata toll
// that grows with the process count.
type ExtNNRow struct {
	Nodes, PPN  int
	SharedMean  float64
	PerProcMean float64
	// PerProcLimitedMean is N-N against a 2000-ops/s MDS.
	PerProcLimitedMean float64
}

// ExtNN runs the access-pattern comparison on scenario 2 with stripe
// count 8. The 12 (geometry, mode) cells are independent campaigns and run
// on the cell pool next to each campaign's repetition pool.
func ExtNN(opts Options) ([]ExtNNRow, error) {
	geometries := []struct{ nodes, ppn int }{
		{4, 8}, {8, 8}, {16, 8}, {16, 16},
	}
	const modes = 3
	means := make([]float64, len(geometries)*modes)
	err := forEachCell(len(means), opts.Workers, func(i int) error {
		gi, mode := i/modes, i%modes
		g := geometries[gi]
		p := cluster.PlaFRIM(cluster.Scenario2Omnipath)
		if mode == 2 {
			p.FS.MDSOpRate = 2000
		}
		params := ior.Params{
			Nodes: g.nodes, PPN: g.ppn,
			TransferSize: 1 * beegfs.MiB,
			StripeCount:  8,
		}.WithTotalSize(32 * beegfs.GiB)
		if mode > 0 {
			params.Pattern = ior.FilePerProcess
		}
		o := opts
		o.Seed = opts.Seed*31 + uint64(gi*modes+mode)
		recs, err := Campaign{
			Platform: p, Proto: o.protocol(), Workers: o.Workers,
			Metrics: o.Metrics, Tracer: o.Tracer,
		}.Run([]Config{{Label: "x", Params: params}})
		if err != nil {
			return err
		}
		means[i] = stats.Mean(Bandwidths(recs))
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []ExtNNRow
	for gi, g := range geometries {
		out = append(out, ExtNNRow{
			Nodes: g.nodes, PPN: g.ppn,
			SharedMean:         means[gi*modes+0],
			PerProcMean:        means[gi*modes+1],
			PerProcLimitedMean: means[gi*modes+2],
		})
	}
	return out, nil
}

// ExtReadRow compares write and read-back bandwidth per stripe count —
// the paper's §III-B expectation ("we expect the observed behaviors to be
// the same", citing Chowdhury et al.) under the symmetric service model.
type ExtReadRow struct {
	Count     int
	WriteMean float64
	ReadMean  float64
	// WriteBimodal and ReadBimodal carry Figure 6a's signature into the
	// read path.
	WriteBimodal bool
	ReadBimodal  bool
}

// ExtRead runs the write+read comparison on scenario 1 (8 nodes x 8 ppn).
func ExtRead(opts Options) ([]ExtReadRow, error) {
	var cfgs []Config
	for count := 1; count <= 8; count++ {
		params := ior.Params{
			Nodes: 8, PPN: 8,
			TransferSize: 1 * beegfs.MiB,
			StripeCount:  count,
			ReadBack:     true,
		}.WithTotalSize(32 * beegfs.GiB)
		cfgs = append(cfgs, Config{Label: fmt.Sprintf("count%d", count), Params: params})
	}
	recs, err := opts.campaign(cluster.Scenario1Ethernet).Run(cfgs)
	if err != nil {
		return nil, err
	}
	byLabel := GroupByLabel(recs)
	var out []ExtReadRow
	for count := 1; count <= 8; count++ {
		rs := byLabel[fmt.Sprintf("count%d", count)]
		var writes, reads []float64
		for _, r := range rs {
			writes = append(writes, r.Bandwidth())
			reads = append(reads, r.Apps[0].Result.ReadBandwidth)
		}
		out = append(out, ExtReadRow{
			Count:        count,
			WriteMean:    stats.Mean(writes),
			ReadMean:     stats.Mean(reads),
			WriteBimodal: stats.Bimodal(writes),
			ReadBimodal:  stats.Bimodal(reads),
		})
	}
	return out, nil
}
