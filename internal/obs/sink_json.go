package obs

import (
	"bufio"
	"io"
	"os"
	"strconv"
)

// EncodeJSON writes a snapshot as the registry's JSON export schema:
//
//	{
//	  "counters":   {"name": value, ...},
//	  "histograms": {"name": {"count": N, "sum": N, "buckets": {"<hi>": n, ...}}, ...},
//	  "maxima":     {"name": value, ...}
//	}
//
// Keys are emitted explicitly in the Snapshot's sorted order (histogram
// buckets in ascending bound order), so equal snapshots encode
// byte-identically — the property the golden-file test pins. The schema
// is unchanged from the PR 5 export, so existing consumers (the CI jq
// checks) keep working.
func EncodeJSON(w io.Writer, snap *Snapshot) error {
	b := bufio.NewWriter(w)
	b.WriteString("{\n  \"counters\": {")
	writeValueMap(b, snap.Counters)
	b.WriteString("},\n  \"histograms\": {")
	for i := range snap.Hists {
		h := &snap.Hists[i]
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("\n    ")
		b.WriteString(strconv.Quote(h.Name))
		b.WriteString(": {\"count\": ")
		b.WriteString(strconv.FormatUint(h.Count, 10))
		b.WriteString(", \"sum\": ")
		b.WriteString(strconv.FormatUint(h.Sum, 10))
		b.WriteString(", \"buckets\": {")
		first := true
		for bi, cnt := range h.Buckets {
			if cnt == 0 {
				continue
			}
			if !first {
				b.WriteString(", ")
			}
			first = false
			b.WriteByte('"')
			b.WriteString(strconv.FormatUint(BucketBound(bi), 10))
			b.WriteString("\": ")
			b.WriteString(strconv.FormatUint(cnt, 10))
		}
		b.WriteString("}}")
	}
	if len(snap.Hists) > 0 {
		b.WriteString("\n  ")
	}
	b.WriteString("},\n  \"maxima\": {")
	writeValueMap(b, snap.Maxima)
	b.WriteString("}\n}\n")
	return b.Flush()
}

// writeValueMap emits the entries of a sorted name→value object.
func writeValueMap(b *bufio.Writer, vals []MetricValue) {
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("\n    ")
		b.WriteString(strconv.Quote(v.Name))
		b.WriteString(": ")
		b.WriteString(strconv.FormatUint(v.Value, 10))
	}
	if len(vals) > 0 {
		b.WriteString("\n  ")
	}
}

// fileSink shares the rewrite-on-flush mechanics of the file-backed
// snapshot sinks: each Flush (and the final Close) truncates the file and
// renders the snapshot from scratch, so the file always holds one
// complete, deterministic document.
type fileSink struct {
	name string
	path string
	enc  func(io.Writer, *Snapshot) error
}

func (s *fileSink) Name() string { return s.name }

func (s *fileSink) Flush(snap *Snapshot) error {
	f, err := os.Create(s.path)
	if err != nil {
		return err
	}
	if err := s.enc(f, snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (s *fileSink) Close(snap *Snapshot) error { return s.Flush(snap) }

// NewJSONSink returns a sink writing the registry JSON export schema to
// path on every flush (the pipeline form of the -metrics flag).
func NewJSONSink(path string) Sink {
	return &fileSink{name: "json:" + path, path: path, enc: EncodeJSON}
}
