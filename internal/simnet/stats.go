package simnet

import (
	"repro/internal/obs"
	"repro/internal/simkernel"
)

// SolveTrigger classifies the event that caused a component rebalance.
type SolveTrigger int

const (
	// TriggerStart is a flow start (including fragment re-solves during a
	// lazy component rebuild on the start path).
	TriggerStart SolveTrigger = iota
	// TriggerComplete is a flow completion.
	TriggerComplete
	// TriggerAbort is a fault-injected flow abort.
	TriggerAbort
	// TriggerCapacity is a resource capacity change.
	TriggerCapacity

	numTriggers
)

// String implements fmt.Stringer.
func (t SolveTrigger) String() string {
	switch t {
	case TriggerStart:
		return "start"
	case TriggerComplete:
		return "complete"
	case TriggerAbort:
		return "abort"
	case TriggerCapacity:
		return "capacity"
	default:
		return "unknown"
	}
}

// Stats counts solver and rebalance activity for the observability layer.
// It is a plain struct attached via SetStats and updated behind nil
// checks, single-goroutine like the Network itself: the disabled path
// costs one pointer comparison per site, and the enabled path never
// touches the solver's floating-point state — rates, loads and event
// times are bit-identical with stats on or off.
type Stats struct {
	// Solves counts component rebalances by triggering event kind.
	Solves [numTriggers]uint64
	// Passes counts live waterfill passes (warm-start-replayed passes are
	// counted in WarmReplayedPasses instead).
	Passes uint64
	// FreezesPerPass is the histogram of flows frozen per live pass.
	FreezesPerPass obs.Log2Hist
	// ComponentFlows is the histogram of component sizes (flows) solved.
	ComponentFlows obs.Log2Hist
	// WarmHits counts removal rebalances served by the warm-start replay;
	// WarmMisses counts removal rebalances that fell back to a cold solve
	// (no recorded trajectory, or no provably safe prefix).
	WarmHits   uint64
	WarmMisses uint64
	// WarmReplayedPasses sums the recorded passes warm starts replayed
	// instead of recomputing.
	WarmReplayedPasses uint64
	// SolveBatches counts batched-mode flushes that solved at least one
	// component (zero unless SetBatching is on).
	SolveBatches uint64
	// ComponentsDirty sums the dirty components solved across flushes;
	// ComponentsDirty / SolveBatches is the mean batch width.
	ComponentsDirty uint64
	// ParallelSolves counts component solves belonging to multi-component
	// flushes — the solves eligible for the worker pool. It is defined by
	// batch shape, not by the configured worker count, so (like every
	// other field) it is identical at any SetBatching worker setting.
	ParallelSolves uint64
	// HierSolves counts component solves served by the hierarchical path
	// (exact or bounded-error); HierFallbacks counts solves where the
	// mode was enabled but the partition was degenerate (no separators in
	// the component, or fewer than two rack-local groups) and the flat
	// solver ran instead. Components below the hierarchical size cutoff
	// are counted in neither.
	HierSolves    uint64
	HierFallbacks uint64
	// HierOuterRounds sums bounded-error coordination rounds across
	// hierarchical solves; HierExactFallbacks counts bounded-error solves
	// that hit the round cap without converging and re-ran exactly
	// (which is how the mode guarantees its error bound).
	HierOuterRounds    uint64
	HierExactFallbacks uint64
	// HierMaxRelErr is the maximum measured bounded-error residual — the
	// max relative rate change between the final two coordination rounds
	// of any bounded solve. Exact solves and exact fallbacks contribute
	// 0; the value never exceeds the SetHierarchical bound. Exported as
	// the simnet/hier_max_rel_err metric.
	HierMaxRelErr float64
	// FlushWaveWidth is the histogram of dirty components per batched-mode
	// flush — the fan-out width the worker pool sees each wave.
	FlushWaveWidth obs.Log2Hist
	// HierGroups is the histogram of rack-local group counts per
	// hierarchical solve; HierGroupFlows is the histogram of per-group flow
	// counts (one observation per group per hierarchical solve).
	HierGroups     obs.Log2Hist
	HierGroupFlows obs.Log2Hist
	// SolveLatencyNs is the histogram of wall-clock nanoseconds per
	// component rebalance. It is the one wall-clock field in this struct:
	// the glue layer exports it under the runtime/ namespace so
	// determinism checks filter it, and recording it never feeds back into
	// simulation numerics.
	SolveLatencyNs obs.Log2Hist
}

// merge folds src into st field-wise: counters by addition, histograms by
// bucket-wise addition, HierMaxRelErr by maximum. Every fold is
// commutative, so parallel flush workers may merge in any order.
func (st *Stats) merge(src *Stats) {
	for t := range src.Solves {
		st.Solves[t] += src.Solves[t]
	}
	st.Passes += src.Passes
	st.FreezesPerPass.Merge(&src.FreezesPerPass)
	st.ComponentFlows.Merge(&src.ComponentFlows)
	st.WarmHits += src.WarmHits
	st.WarmMisses += src.WarmMisses
	st.WarmReplayedPasses += src.WarmReplayedPasses
	st.SolveBatches += src.SolveBatches
	st.ComponentsDirty += src.ComponentsDirty
	st.ParallelSolves += src.ParallelSolves
	st.HierSolves += src.HierSolves
	st.HierFallbacks += src.HierFallbacks
	st.HierOuterRounds += src.HierOuterRounds
	st.HierExactFallbacks += src.HierExactFallbacks
	if src.HierMaxRelErr > st.HierMaxRelErr {
		st.HierMaxRelErr = src.HierMaxRelErr
	}
	st.FlushWaveWidth.Merge(&src.FlushWaveWidth)
	st.HierGroups.Merge(&src.HierGroups)
	st.HierGroupFlows.Merge(&src.HierGroupFlows)
	st.SolveLatencyNs.Merge(&src.SolveLatencyNs)
}

// SetStats attaches (or with nil detaches) a solver activity sink.
func (n *Network) SetStats(st *Stats) {
	n.stats = st
	n.sv.stats = st
}

// SolveInfo describes one component rebalance to a solve observer.
type SolveInfo struct {
	Trigger   SolveTrigger
	Flows     int
	Resources int
	// LivePasses is the number of waterfill passes the live loop ran.
	LivePasses int
	// WarmStart reports whether the rebalance replayed a recorded
	// trajectory prefix; ReplayedPasses is that prefix's length.
	WarmStart      bool
	ReplayedPasses int
	// Hierarchical reports whether the solve ran on the partitioned
	// (rack-local groups + separator coordination) path; Groups is the
	// rack-local group count of that partition (0 for flat solves).
	Hierarchical bool
	Groups       int
}

// ObserveSolves registers a callback invoked after every component
// rebalance with the solve's shape and cost. Pass nil to remove it. The
// callback must not mutate simulation state.
func (n *Network) ObserveSolves(fn func(at simkernel.Time, info SolveInfo)) {
	n.solveObserver = fn
}

// ObserveResources registers a callback invoked with post-solve resource
// loads: after every component rebalance for each resource of the solved
// component, and with load 0 when a resource's last in-flight flow
// departs. The tracer builds per-OST utilization timelines from it. Pass
// nil to remove it. The callback must not mutate simulation state.
func (n *Network) ObserveResources(fn func(at simkernel.Time, r *Resource, load float64)) {
	n.resObserver = fn
}

// BatchInfo describes one batched-mode flush to a batch observer.
type BatchInfo struct {
	// Components is the number of dirty components this flush solved.
	Components int
	// Workers is the configured SetBatching worker count (the solve fans
	// out only when both Components and Workers exceed one).
	Workers int
}

// ObserveBatches registers a callback invoked once per batched-mode flush
// that solved at least one component, before the solves run. Pass nil to
// remove it. The callback must not mutate simulation state.
func (n *Network) ObserveBatches(fn func(at simkernel.Time, info BatchInfo)) {
	n.batchObserver = fn
}
