// Package storagesim models the storage side of the deployment: Object
// Storage Targets (OSTs — RAID-6 arrays of HDDs in PlaFRIM) attached to
// storage hosts whose I/O controllers couple the targets' achievable
// bandwidth.
//
// The model has three calibrated ingredients (see DESIGN.md §3):
//
//  1. Per-target peak rate: one OST streaming alone sustains
//     SingleTargetRate MiB/s (PlaFRIM: ~1764, the paper's count-1 mean in
//     Figure 6b).
//
//  2. Concave host-controller capacity: with m targets concurrently active
//     on one host, the host sustains C(m) = SingleTargetRate · m^Beta.
//     Beta ≈ 0.596 fits the paper's count-8 aggregate of ~8064 MiB/s
//     (2 hosts × C(4) = 2 × 4032). This is what makes bandwidth grow
//     sub-linearly with stripe count and makes balanced allocations beat
//     unbalanced ones in the storage-limited scenario (Figure 10).
//
//  3. Run-to-run variability: a correlated per-host multiplier and a
//     smaller per-target multiplier, both lognormal with mean 1, redrawn
//     for every benchmark repetition (the storage-stack variability of
//     Cao et al. [10] that the paper cites to explain Figure 6b's spread).
//
// A fourth, optional ingredient is the SharePenalty ablation knob: a
// counterfactual seek/contention penalty applied when several distinct
// applications write to the same target. The paper concludes such
// contention is NOT observed (lesson 7); the knob exists to show what the
// figures would look like if it were.
package storagesim

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/simnet"
)

// Config holds the device-model parameters.
type Config struct {
	// SingleTargetRate is the sustained rate of one OST active alone on its
	// host, in MiB/s.
	SingleTargetRate float64
	// Beta is the concavity exponent of the host controller:
	// C(m) = SingleTargetRate * m^Beta. Beta = 1 means no coupling.
	Beta float64
	// TargetPeak caps an individual target's rate. Zero means
	// SingleTargetRate.
	TargetPeak float64
	// HostJitterCV is the coefficient of variation of the per-run,
	// per-host capacity multiplier (correlated across the host's targets).
	HostJitterCV float64
	// TargetJitterCV is the coefficient of variation of the per-run,
	// per-target multiplier.
	TargetJitterCV float64
	// SharePenalty, when in (0,1], multiplies a target's capacity by
	// SharePenalty^(sharers-1) when `sharers` distinct applications write
	// to it concurrently. Zero disables the (counterfactual) penalty.
	SharePenalty float64
	// SatHalf is the half-saturation constant of the target concurrency
	// ramp: with total registered write depth c, a target reaches
	// c/(c+SatHalf) of its peak rate. RAID arrays need deep request queues
	// to stream at full speed, which is why the paper needs many compute
	// nodes before the plateau (lessons 1, 2, 6). Zero disables the ramp.
	SatHalf float64
	// TargetCapacityBytes is each OST's storage capacity (PlaFRIM: 131 TB
	// over 8 targets ~ 16.4 TB each). Zero disables capacity accounting.
	TargetCapacityBytes int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SingleTargetRate <= 0 {
		return fmt.Errorf("storagesim: SingleTargetRate must be positive, got %v", c.SingleTargetRate)
	}
	if c.Beta <= 0 || c.Beta > 1 {
		return fmt.Errorf("storagesim: Beta must be in (0,1], got %v", c.Beta)
	}
	if c.TargetPeak < 0 {
		return fmt.Errorf("storagesim: TargetPeak must be non-negative, got %v", c.TargetPeak)
	}
	if c.HostJitterCV < 0 || c.TargetJitterCV < 0 {
		return fmt.Errorf("storagesim: jitter CVs must be non-negative")
	}
	if c.SharePenalty < 0 || c.SharePenalty > 1 {
		return fmt.Errorf("storagesim: SharePenalty must be in [0,1], got %v", c.SharePenalty)
	}
	if c.SatHalf < 0 {
		return fmt.Errorf("storagesim: SatHalf must be non-negative, got %v", c.SatHalf)
	}
	if c.TargetCapacityBytes < 0 {
		return fmt.Errorf("storagesim: negative TargetCapacityBytes")
	}
	return nil
}

// PlaFRIMConfig returns the device model calibrated to the paper's
// platform (see DESIGN.md §3 for the fit).
func PlaFRIMConfig() Config {
	return Config{
		SingleTargetRate: 1764, // Fig 6b count-1 mean
		Beta:             0.596,
		HostJitterCV:     0.055,
		TargetJitterCV:   0.035,
		// 131 TB total over 8 OSTs (§III-A), in bytes.
		TargetCapacityBytes: 131_000_000_000_000 / 8,
		// SatHalf stays 0: PlaFRIM's node-count ramp is modelled on the
		// client side (beegfs.Config.ClientA/ClientGamma), which is what
		// produces Figure 11's count-ordered plateaus. The target-level
		// ramp remains available as an ablation knob.
	}
}

// Host is a physical storage server: one I/O controller shared by its
// targets.
type Host struct {
	Name       string
	sys        *System
	controller *simnet.Resource
	targets    []*Target
	jitter     float64
	// failed pins the controller capacity to zero (OSS crash/reboot)
	// regardless of jitter redraws or active-target changes.
	failed bool
}

// Controller returns the host's controller resource. Flows writing to any
// of the host's targets must include it in their usage with the same weight
// as the target.
func (h *Host) Controller() *simnet.Resource { return h.controller }

// Targets returns the host's targets in index order.
func (h *Host) Targets() []*Target { return h.targets }

// ActiveTargets returns how many of the host's targets currently have
// writers.
func (h *Host) ActiveTargets() int {
	n := 0
	for _, t := range h.targets {
		if len(t.writers) > 0 {
			n++
		}
	}
	return n
}

// SetFailed marks the host as crashed (true) or recovered (false). While
// failed the controller capacity is pinned to zero, so every flow touching
// the host stalls; the pin survives jitter redraws and active-target
// changes because it lives inside updateCapacity.
func (h *Host) SetFailed(failed bool) {
	if h.failed == failed {
		return
	}
	h.failed = failed
	h.updateCapacity()
}

// Failed reports whether the host is currently marked crashed.
func (h *Host) Failed() bool { return h.failed }

// updateCapacity pushes the controller's current capacity into the
// network. SetCapacity re-solves only the component of in-flight flows
// touching the controller — and is solver-free when no flow does, so
// capacity redraws on idle hosts (jitter re-rolls between repetitions,
// failures injected on spare mirror hosts) cost O(1).
func (h *Host) updateCapacity() {
	if h.failed {
		h.sys.net.SetCapacity(h.controller, 0)
		return
	}
	m := h.ActiveTargets()
	var c float64
	if m > 0 {
		c = h.sys.cfg.SingleTargetRate * math.Pow(float64(m), h.sys.cfg.Beta) * h.jitter
	} else {
		// Idle host: keep a nominal capacity so a future flow arriving in
		// the same instant doesn't observe 0.
		c = h.sys.cfg.SingleTargetRate * h.jitter
	}
	h.sys.net.SetCapacity(h.controller, c)
}

// Target is one OST.
type Target struct {
	// ID follows the paper's numbering: host 1 holds 101..10x, host 2
	// holds 201..20x.
	ID       int
	host     *Host
	resource *simnet.Resource
	jitter   float64
	// writers counts concurrent writer handles per application name.
	writers map[string]int
	// writeDepth is the total registered request-queue depth, driving the
	// concurrency saturation ramp.
	writeDepth float64
	// usedBytes is the space consumed by stored chunks.
	usedBytes int64
	// failed pins the target capacity to zero (OST failure) regardless of
	// jitter redraws or writer-count changes.
	failed bool
	// slow, when in (0,1), multiplies the target's capacity at every
	// recomputation (fail-slow gray failure); 0 means full speed.
	slow float64
}

// SetFailed marks the target as failed (true) or recovered (false). While
// failed its capacity is pinned to zero across all recomputations.
func (t *Target) SetFailed(failed bool) {
	if t.failed == failed {
		return
	}
	t.failed = failed
	t.updateCapacity()
}

// Failed reports whether the target is currently marked failed.
func (t *Target) Failed() bool { return t.failed }

// SetSlow pins the target to a fraction of its capacity (factor in (0,1))
// or restores full speed (factor 0 or 1) — the device half of a fail-slow
// gray failure. The target keeps serving I/O and, crucially, keeps
// heartbeating: nothing marks it failed, so only throughput observation
// can reveal it.
func (t *Target) SetSlow(factor float64) {
	if factor == 1 {
		factor = 0
	}
	if t.slow == factor {
		return
	}
	t.slow = factor
	t.updateCapacity()
}

// SlowFactor returns the target's fail-slow pin (1 = full speed).
func (t *Target) SlowFactor() float64 {
	if t.slow == 0 {
		return 1
	}
	return t.slow
}

// Used returns the bytes stored on the target.
func (t *Target) Used() int64 { return t.usedBytes }

// CapacityBytes returns the target's storage capacity (0 = unaccounted).
func (t *Target) CapacityBytes() int64 { return t.host.sys.cfg.TargetCapacityBytes }

// Store accounts bytes written to the target. It returns an error when
// capacity accounting is enabled and the target would overflow; the bytes
// are not recorded in that case.
func (t *Target) Store(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("storagesim: negative store on target %d", t.ID)
	}
	if cap := t.CapacityBytes(); cap > 0 && t.usedBytes+bytes > cap {
		return fmt.Errorf("storagesim: target %d full (%d of %d bytes used)", t.ID, t.usedBytes, cap)
	}
	t.usedBytes += bytes
	return nil
}

// Free releases previously stored bytes (file deletion).
func (t *Target) Free(bytes int64) {
	t.usedBytes -= bytes
	if t.usedBytes < 0 {
		t.usedBytes = 0
	}
}

// Host returns the storage host owning the target.
func (t *Target) Host() *Host { return t.host }

// Resource returns the target's own capacity resource.
func (t *Target) Resource() *simnet.Resource { return t.resource }

// Writers returns the number of distinct applications currently writing.
func (t *Target) Writers() int { return len(t.writers) }

func (t *Target) peak() float64 {
	p := t.host.sys.cfg.TargetPeak
	if p == 0 {
		p = t.host.sys.cfg.SingleTargetRate
	}
	return p
}

// WriteDepth returns the total registered request-queue depth.
func (t *Target) WriteDepth() float64 { return t.writeDepth }

// updateCapacity pushes the target's current capacity into the network;
// like Host.updateCapacity it touches only the target's own component
// and skips the solver entirely while the target is idle.
func (t *Target) updateCapacity() {
	if t.failed {
		t.host.sys.net.SetCapacity(t.resource, 0)
		return
	}
	c := t.peak() * t.jitter
	if sp := t.host.sys.cfg.SharePenalty; sp > 0 && len(t.writers) > 1 {
		c *= math.Pow(sp, float64(len(t.writers)-1))
	}
	if sh := t.host.sys.cfg.SatHalf; sh > 0 {
		c *= t.writeDepth / (t.writeDepth + sh)
	}
	if t.slow > 0 {
		c *= t.slow
	}
	t.host.sys.net.SetCapacity(t.resource, c)
}

// Acquire registers application app as a writer on the target with the
// given request-queue depth contribution, updating the target's and host's
// capacities. Each Acquire must be paired with a Release carrying the same
// depth. Depth must be non-negative.
func (t *Target) Acquire(app string, depth float64) {
	if depth < 0 {
		panic(fmt.Sprintf("storagesim: negative depth %v on target %d", depth, t.ID))
	}
	prevActive := len(t.writers) > 0
	t.writers[app]++
	t.writeDepth += depth
	t.updateCapacity()
	if !prevActive {
		t.host.updateCapacity()
	}
}

// Release undoes one Acquire by app. Releasing an application that holds no
// writer panics — it always indicates an accounting bug in the caller.
func (t *Target) Release(app string, depth float64) {
	n, ok := t.writers[app]
	if !ok {
		panic(fmt.Sprintf("storagesim: Release of %q on target %d without Acquire", app, t.ID))
	}
	if n == 1 {
		delete(t.writers, app)
	} else {
		t.writers[app] = n - 1
	}
	t.writeDepth -= depth
	if t.writeDepth < 1e-9 {
		t.writeDepth = 0
	}
	t.updateCapacity()
	if len(t.writers) == 0 {
		t.host.updateCapacity()
	}
}

// System is the full storage subsystem: hosts and their targets, wired into
// a simnet.Network.
type System struct {
	cfg     Config
	net     *simnet.Network
	hosts   []*Host
	targets []*Target // all targets, host-major order
}

// NewSystem builds nHosts hosts with targetsPerHost targets each. Target
// IDs follow the paper's scheme: host i (1-based) holds i*100+1 ...
// i*100+targetsPerHost.
func NewSystem(net *simnet.Network, cfg Config, nHosts, targetsPerHost int) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nHosts <= 0 || targetsPerHost <= 0 {
		return nil, fmt.Errorf("storagesim: need at least one host and one target, got %d/%d", nHosts, targetsPerHost)
	}
	s := &System{cfg: cfg, net: net}
	for h := 1; h <= nHosts; h++ {
		host := &Host{
			Name:       fmt.Sprintf("oss%d", h),
			sys:        s,
			jitter:     1,
			controller: net.AddResource(fmt.Sprintf("oss%d/ctl", h), cfg.SingleTargetRate),
		}
		for i := 1; i <= targetsPerHost; i++ {
			t := &Target{
				ID:       h*100 + i,
				host:     host,
				jitter:   1,
				writers:  make(map[string]int),
				resource: net.AddResource(fmt.Sprintf("ost%d", h*100+i), cfg.SingleTargetRate),
			}
			t.updateCapacity()
			host.targets = append(host.targets, t)
			s.targets = append(s.targets, t)
		}
		s.hosts = append(s.hosts, host)
	}
	return s, nil
}

// Config returns the system's device-model configuration.
func (s *System) Config() Config { return s.cfg }

// Hosts returns the storage hosts in order.
func (s *System) Hosts() []*Host { return s.hosts }

// Targets returns every target, host-major.
func (s *System) Targets() []*Target { return s.targets }

// TargetByID finds a target by its paper-style ID, or nil.
func (s *System) TargetByID(id int) *Target {
	for _, t := range s.targets {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// ReJitter redraws the per-host and per-target variability multipliers.
// The experiment protocol calls this once per benchmark repetition so that
// repetitions sample different "system states" (§III-C).
func (s *System) ReJitter(src *rng.Source) {
	for _, h := range s.hosts {
		h.jitter = src.LogNormal(1, s.cfg.HostJitterCV)
	}
	for _, t := range s.targets {
		t.jitter = src.LogNormal(1, s.cfg.TargetJitterCV)
		t.updateCapacity()
	}
	for _, h := range s.hosts {
		h.updateCapacity()
	}
}

// ResetJitter restores all multipliers to 1 (deterministic capacities).
func (s *System) ResetJitter() {
	for _, h := range s.hosts {
		h.jitter = 1
	}
	for _, t := range s.targets {
		t.jitter = 1
		t.updateCapacity()
	}
	for _, h := range s.hosts {
		h.updateCapacity()
	}
}

// HostCapacity returns the model's deterministic controller capacity for m
// active targets (no jitter). Exposed for the analytic model.
func (c Config) HostCapacity(m int) float64 {
	if m <= 0 {
		return 0
	}
	return c.SingleTargetRate * math.Pow(float64(m), c.Beta)
}
