package core

import (
	"testing"
	"testing/quick"

	"repro/internal/simkernel"
	"repro/internal/simnet"
	"repro/internal/storagesim"
)

func TestNewAllocationSorts(t *testing.T) {
	a := NewAllocation([]int{3, 1})
	if a.Min() != 1 || a.Max() != 3 {
		t.Fatalf("(min,max) = (%d,%d), want (1,3)", a.Min(), a.Max())
	}
	if a.String() != "(1,3)" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestAllocationBasics(t *testing.T) {
	a := NewAllocation([]int{2, 2})
	if !a.Balanced() {
		t.Fatal("(2,2) not balanced")
	}
	if a.Count() != 4 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.BalanceRatio() != 1 {
		t.Fatalf("ratio = %v", a.BalanceRatio())
	}
	if a.MaxShare() != 0.5 {
		t.Fatalf("max share = %v", a.MaxShare())
	}
	b := NewAllocation([]int{0, 3})
	if b.Balanced() {
		t.Fatal("(0,3) balanced")
	}
	if b.BalanceRatio() != 0 {
		t.Fatalf("(0,3) ratio = %v", b.BalanceRatio())
	}
	if b.MaxShare() != 1 {
		t.Fatalf("(0,3) max share = %v", b.MaxShare())
	}
}

func TestAllocationEmpty(t *testing.T) {
	var a Allocation
	if a.Min() != 0 || a.Max() != 0 || a.Count() != 0 {
		t.Fatal("zero allocation misbehaves")
	}
	if a.Balanced() {
		t.Fatal("empty allocation reported balanced")
	}
	if a.String() != "()" {
		t.Fatalf("String = %q", a.String())
	}
	if a.MaxShare() != 0 || a.BalanceRatio() != 0 {
		t.Fatal("empty allocation ratios non-zero")
	}
}

func TestAllocationEqualAndLess(t *testing.T) {
	a := NewAllocation([]int{1, 3})
	b := NewAllocation([]int{3, 1})
	if !a.Equal(b) {
		t.Fatal("(1,3) != (3,1) after sorting")
	}
	c := NewAllocation([]int{2, 2})
	if c.Equal(a) {
		t.Fatal("(2,2) == (1,3)")
	}
	if !a.Less(c) { // same count: (1,3) < (2,2) lexicographically
		t.Fatal("(1,3) should sort before (2,2)")
	}
	d := NewAllocation([]int{1, 1})
	if !d.Less(a) { // count 2 < count 4
		t.Fatal("(1,1) should sort before (1,3)")
	}
}

func TestFromTargets(t *testing.T) {
	sim := simkernel.New()
	net := simnet.New(sim)
	sys, err := storagesim.NewSystem(net, storagesim.PlaFRIMConfig(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	targets := []*storagesim.Target{
		sys.TargetByID(101), sys.TargetByID(201), sys.TargetByID(202), sys.TargetByID(203),
	}
	a := FromTargets(targets, sys)
	if a.String() != "(1,3)" {
		t.Fatalf("allocation = %s, want (1,3)", a)
	}
}

func TestFromPerHostMap(t *testing.T) {
	a := FromPerHostMap(map[string]int{"oss2": 3, "oss1": 1}, 2)
	if a.String() != "(1,3)" {
		t.Fatalf("allocation = %s", a)
	}
	// Missing hosts padded with zero.
	b := FromPerHostMap(map[string]int{"oss1": 2}, 2)
	if b.String() != "(0,2)" {
		t.Fatalf("allocation = %s, want (0,2)", b)
	}
}

// Property: for any per-host vector, min <= max, count = sum, ratio in
// [0,1], and String round-trips ordering.
func TestAllocationProperties(t *testing.T) {
	check := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 6 {
			return true
		}
		perHost := make([]int, len(raw))
		for i, r := range raw {
			perHost[i] = int(r % 9)
		}
		a := NewAllocation(perHost)
		sum := 0
		for _, c := range perHost {
			sum += c
		}
		if a.Count() != sum {
			return false
		}
		if a.Min() > a.Max() {
			return false
		}
		r := a.BalanceRatio()
		return r >= 0 && r <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobinDistributionPlaFRIM(t *testing.T) {
	// PlaFRIM registration order: 101,201,202,203,204,102,103,104 —
	// host indices 0,1,1,1,1,0,0,0.
	order := []int{0, 1, 1, 1, 1, 0, 0, 0}
	// Count 4: gcd(4,8)=4 -> cursors {0,4}: both (1,3).
	dist, err := RoundRobinDistribution(order, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 1 || dist[0].Alloc.String() != "(1,3)" || dist[0].P != 1 {
		t.Fatalf("count-4 distribution = %+v, want always (1,3)", dist)
	}
	// Count 2: cursors {0,2,4,6}: (1,1),(0,2),(1,1),(0,2).
	dist, err = RoundRobinDistribution(order, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 2 {
		t.Fatalf("count-2 classes = %+v", dist)
	}
	for _, ap := range dist {
		if ap.P != 0.5 {
			t.Fatalf("count-2 probabilities = %+v, want 50/50", dist)
		}
	}
	// Count 8: always (4,4).
	dist, err = RoundRobinDistribution(order, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 1 || !dist[0].Alloc.Balanced() {
		t.Fatalf("count-8 = %+v", dist)
	}
	// Count 3: gcd(3,8)=1 -> all 8 cursors; mixes (1,2) and (0,3).
	dist, err = RoundRobinDistribution(order, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 2 {
		t.Fatalf("count-3 classes = %+v", dist)
	}
}

func TestRoundRobinDistributionErrors(t *testing.T) {
	if _, err := RoundRobinDistribution([]int{0, 1}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := RoundRobinDistribution([]int{0, 1}, 3); err == nil {
		t.Fatal("k>L accepted")
	}
}

func TestRandomDistributionHypergeometric(t *testing.T) {
	// 2 hosts x 4 targets, count 4: P(2,2) = 36/70, P(1,3 or 3,1) = 32/70,
	// P(0,4 or 4,0) = 2/70.
	dist, err := RandomDistribution([]int{4, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	total := 0.0
	for _, ap := range dist {
		byKey[ap.Alloc.Key()] = ap.P
		total += ap.P
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("probabilities sum to %v", total)
	}
	if p := byKey["(2,2)"]; p < 36.0/70-1e-9 || p > 36.0/70+1e-9 {
		t.Fatalf("P(2,2) = %v, want %v", p, 36.0/70)
	}
	if p := byKey["(1,3)"]; p < 32.0/70-1e-9 || p > 32.0/70+1e-9 {
		t.Fatalf("P(1,3) = %v, want %v", p, 32.0/70)
	}
	if p := byKey["(0,4)"]; p < 2.0/70-1e-9 || p > 2.0/70+1e-9 {
		t.Fatalf("P(0,4) = %v, want %v", p, 2.0/70)
	}
}

func TestRandomDistributionThreeHosts(t *testing.T) {
	dist, err := RandomDistribution([]int{2, 2, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, ap := range dist {
		if ap.Alloc.Count() != 3 {
			t.Fatalf("allocation %s has wrong count", ap.Alloc)
		}
		total += ap.P
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("probabilities sum to %v", total)
	}
	// P(1,1,1) = 2*2*2 / C(6,3) = 8/20.
	for _, ap := range dist {
		if ap.Alloc.String() == "(1,1,1)" && (ap.P < 0.399 || ap.P > 0.401) {
			t.Fatalf("P(1,1,1) = %v, want 0.4", ap.P)
		}
	}
}

func TestBalancedDistribution(t *testing.T) {
	dist, err := BalancedDistribution(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 1 || dist[0].Alloc.String() != "(3,3)" {
		t.Fatalf("balanced count-6 = %+v", dist)
	}
	dist, err = BalancedDistribution(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dist[0].Alloc.String() != "(2,3)" {
		t.Fatalf("balanced count-5 = %+v", dist)
	}
	if _, err := BalancedDistribution(0, 2); err == nil {
		t.Fatal("0 hosts accepted")
	}
}

// Sampling cross-check: the analytic RoundRobinDistribution matches the
// empirical frequency of the actual beegfs chooser (indirectly, via host
// indices): 200 draws at count 6 give 50/50 (2,4) vs (3,3).
func TestRoundRobinDistributionMatchesPaperCount6(t *testing.T) {
	order := []int{0, 1, 1, 1, 1, 0, 0, 0}
	dist, err := RoundRobinDistribution(order, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"(2,4)": 0.5, "(3,3)": 0.5}
	for _, ap := range dist {
		if want[ap.Alloc.Key()] != ap.P {
			t.Fatalf("count-6 distribution = %+v, want 50/50 (2,4)/(3,3)", dist)
		}
	}
}
