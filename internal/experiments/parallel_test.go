package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/ior"
)

func smallCfg(label string) Config {
	return Config{
		Label:  label,
		Params: ior.Params{Nodes: 2, PPN: 4, TransferSize: beegfs.MiB, StripeCount: 4}.WithTotalSize(2 * beegfs.GiB),
	}
}

// Workers:1 must take the inline serial path and produce the exact record
// list of every other worker count, including the NumCPU default.
func TestWorkersOneMatchesPool(t *testing.T) {
	run := func(workers int) []Record {
		proto := Protocol{Repetitions: 5, BlockSize: 2, MinWait: 0.1, MaxWait: 0.5, Seed: 11}
		recs, err := Campaign{
			Platform: cluster.PlaFRIM(cluster.Scenario1Ethernet),
			Proto:    proto, Workers: workers,
		}.Run([]Config{smallCfg("a"), smallCfg("b")})
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	serial := run(1)
	for _, workers := range []int{0, 2, 4, 7} {
		if got := run(workers); !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d records differ from the serial run", workers)
		}
	}
}

// More workers than repetitions: the pool caps itself at the unit count
// and must neither deadlock nor drop records.
func TestWorkersExceedingUnitsCompletes(t *testing.T) {
	proto := Protocol{Repetitions: 2, BlockSize: 1, Seed: 7}
	recs, err := Campaign{
		Platform: cluster.PlaFRIM(cluster.Scenario1Ethernet),
		Proto:    proto, Workers: 64,
	}.Run([]Config{smallCfg("x")})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
}

// A failing repetition must surface the error of the first failing unit in
// EXECUTION order — the one the serial protocol would have reported — no
// matter which worker finishes first.
func TestWorkerErrorPropagationByIndex(t *testing.T) {
	// One config, one block: execution order == repetition order, so the
	// serial run would fail at rep 1 (never rep 4).
	proto := Protocol{Repetitions: 6, BlockSize: 6, MinWait: 0.1, MaxWait: 0.5, Seed: 3}
	fail := func(dep *cluster.Deployment, rec *Record) error {
		if rec.Rep == 1 || rec.Rep == 4 {
			return fmt.Errorf("inspect failed at rep %d", rec.Rep)
		}
		return nil
	}
	for attempt := 0; attempt < 10; attempt++ {
		_, err := Campaign{
			Platform: cluster.PlaFRIM(cluster.Scenario1Ethernet),
			Proto:    proto, Workers: 4, Inspect: fail,
		}.Run([]Config{smallCfg("x")})
		if err == nil {
			t.Fatal("failing Inspect did not fail the campaign")
		}
		if !strings.Contains(err.Error(), "rep 1") {
			t.Fatalf("attempt %d: got %q, want the rep-1 error", attempt, err)
		}
	}
}

// Serial and parallel execution agree bit-for-bit for every campaign
// flavour: plain figures, cell-pooled figures, extensions, interference
// and the fault-schedule resilience campaign.
func TestSerialParallelEquivalence(t *testing.T) {
	opts := func(workers, reps int) Options {
		return Options{Reps: reps, Seed: 21, FastProtocol: true, Workers: workers}
	}
	cases := []struct {
		name string
		run  func(workers int) (any, error)
	}{
		{"fig2", func(w int) (any, error) { return Fig2(cluster.Scenario1Ethernet, opts(w, 3)) }},
		{"fig4", func(w int) (any, error) { return Fig4(cluster.Scenario1Ethernet, opts(w, 2)) }},
		{"fig5", func(w int) (any, error) { return Fig5(cluster.Scenario2Omnipath, opts(w, 2)) }},
		{"fig6", func(w int) (any, error) { return Fig6(cluster.Scenario1Ethernet, opts(w, 3)) }},
		{"fig8", func(w int) (any, error) { return Fig8(opts(w, 4)) }},
		{"fig10", func(w int) (any, error) { return Fig10(opts(w, 4)) }},
		{"fig11", func(w int) (any, error) { return Fig11(opts(w, 1)) }},
		{"fig12", func(w int) (any, error) { return Fig12(opts(w, 2)) }},
		{"ext-nn", func(w int) (any, error) { return ExtNN(opts(w, 2)) }},
		{"ext-read", func(w int) (any, error) { return ExtRead(opts(w, 2)) }},
		{"ext-resilience", func(w int) (any, error) { return ExtResilience(opts(w, 2)) }},
		{"ext-chaos", func(w int) (any, error) { return ExtChaos(opts(w, 2)) }},
		{"policies", func(w int) (any, error) { return ComparePolicies(2, opts(w, 3)) }},
		// The scale campaign's rows carry wall-clock fields by design;
		// everything else — job bandwidths, concurrency, event and solve
		// counts — must be bit-identical at any worker count.
		{"ext-scale", func(w int) (any, error) {
			rows, err := ExtScale(opts(w, 2))
			if err != nil {
				return nil, err
			}
			det := make([]ExtScaleRow, len(rows))
			for i, r := range rows {
				det[i] = r.Deterministic()
			}
			return det, nil
		}},
		{"ext-hierscale", func(w int) (any, error) {
			rows, err := ExtHierScale(opts(w, 2))
			if err != nil {
				return nil, err
			}
			det := make([]ExtHierScaleRow, len(rows))
			for i, r := range rows {
				det[i] = r.Deterministic()
			}
			return det, nil
		}},
		{"interference", func(w int) (any, error) {
			proto := Protocol{Repetitions: 6, BlockSize: 3, MinWait: 0.5, MaxWait: 2, Seed: 13}
			return Campaign{
				Platform:     cluster.PlaFRIM(cluster.Scenario1Ethernet),
				Proto:        proto,
				Workers:      w,
				Interference: &Interference{Prob: 0.5, Severity: 0.4, Duration: 5, MaxStart: 2},
			}.Run([]Config{smallCfg("x")})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial, err := tc.run(1)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := tc.run(4)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("workers=4 output differs from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
			}
		})
	}
}
