package faults_test

import (
	"errors"
	"testing"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/ior"
	"repro/internal/rng"
	"repro/internal/simkernel"
	"repro/internal/simnet"
	"repro/internal/storagesim"
)

func deploy(t *testing.T, s cluster.Scenario) *cluster.Deployment {
	t.Helper()
	dep, err := cluster.PlaFRIM(s).Deploy()
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestScheduleValidate(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	// The good schedule exercises the documented idempotent semantics:
	// re-failing a failed target, recovering a never-failed target, and a
	// full host bounce are all accepted (the injector applies them as
	// no-ops where nothing changes).
	good := faults.Schedule{
		{At: 1, Kind: faults.TargetFault, ID: 201, Action: faults.Fail},
		{At: 1.5, Kind: faults.TargetFault, ID: 201, Action: faults.Fail},
		{At: 2, Kind: faults.TargetFault, ID: 201, Action: faults.Recover},
		{At: 2.5, Kind: faults.TargetFault, ID: 102, Action: faults.Recover},
		{At: 3, Kind: faults.HostFault, ID: 2, Action: faults.Fail},
		{At: 4, Kind: faults.HostFault, ID: 2, Action: faults.Recover},
		{At: 5, Kind: faults.NICFault, ID: 1, Action: faults.Fail},
		{At: 6, Kind: faults.NICFault, ID: 1, Action: faults.Recover},
		{At: 7, Kind: faults.SlowFault, ID: 201, Action: faults.Fail, Factor: 0.25},
		{At: 7.5, Kind: faults.SlowFault, ID: 201, Action: faults.Fail, Factor: 0.5},
		{At: 8, Kind: faults.SlowFault, ID: 201, Action: faults.Recover},
		{At: 9, Kind: faults.SlowFault, ID: 1, NIC: true, Action: faults.Fail, Factor: 0.5},
		{At: 10, Kind: faults.SlowFault, ID: 1, NIC: true, Action: faults.Recover},
	}
	if err := good.Validate(dep.FS); err != nil {
		t.Fatal(err)
	}
	bad := []faults.Schedule{
		{{At: -1, Kind: faults.TargetFault, ID: 201}},
		{{At: 1, Kind: faults.TargetFault, ID: 201, Action: faults.Action(9)}},
		{{At: 1, Kind: faults.Kind(9), ID: 201}},
		{{At: 1, Kind: faults.TargetFault, ID: 999}},
		{{At: 1, Kind: faults.HostFault, ID: 0}},
		{{At: 1, Kind: faults.HostFault, ID: 3}},
		{{At: 1, Kind: faults.NICFault, ID: 3}},
		// Slow factors must land strictly inside (0,1).
		{{At: 1, Kind: faults.SlowFault, ID: 201, Action: faults.Fail}},
		{{At: 1, Kind: faults.SlowFault, ID: 201, Action: faults.Fail, Factor: 1.5}},
		{{At: 1, Kind: faults.SlowFault, ID: 9, NIC: true, Action: faults.Fail, Factor: 0.5}},
		// Partitions need heartbeats (scenario deployments default to the
		// omniscient model).
		{{At: 1, Kind: faults.PartitionFault, ID: 1, Action: faults.Fail}},
		{{At: 1, Kind: faults.PartitionFault, ID: 1, Plane: faults.Plane(9), Action: faults.Fail}},
		// Genuinely contradictory cross-event sequences: restoring a
		// sub-component inside a still-failed host.
		{
			{At: 1, Kind: faults.HostFault, ID: 2, Action: faults.Fail},
			{At: 2, Kind: faults.TargetFault, ID: 201, Action: faults.Recover},
		},
		{
			{At: 1, Kind: faults.HostFault, ID: 1, Action: faults.Fail},
			{At: 2, Kind: faults.NICFault, ID: 1, Action: faults.Recover},
		},
	}
	for i, s := range bad {
		if s.Validate(dep.FS) == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
		if faults.NewInjector(dep.FS).Arm(s) == nil {
			t.Errorf("bad schedule %d armed", i)
		}
	}
}

// Validate replays the schedule in firing order (time, then slice order),
// so an out-of-order slice whose *times* sequence host-recover before
// target-recover is fine, while the same events with contradictory times
// are rejected.
func TestScheduleValidateFiringOrder(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	ok := faults.Schedule{
		{At: 3, Kind: faults.TargetFault, ID: 201, Action: faults.Recover},
		{At: 1, Kind: faults.HostFault, ID: 2, Action: faults.Fail},
		{At: 2, Kind: faults.HostFault, ID: 2, Action: faults.Recover},
	}
	if err := ok.Validate(dep.FS); err != nil {
		t.Fatalf("time-ordered-valid schedule rejected: %v", err)
	}
	contradictory := faults.Schedule{
		{At: 3, Kind: faults.HostFault, ID: 2, Action: faults.Recover},
		{At: 1, Kind: faults.HostFault, ID: 2, Action: faults.Fail},
		{At: 2, Kind: faults.TargetFault, ID: 201, Action: faults.Recover},
	}
	if contradictory.Validate(dep.FS) == nil {
		t.Fatal("contradictory schedule accepted")
	}
}

// A NIC fault on a deployment that does not model server NICs would be a
// silent no-op, so Validate rejects it.
func TestScheduleValidateRejectsNICFaultWithoutNICs(t *testing.T) {
	sim := simkernel.New()
	net := simnet.New(sim)
	fs, err := beegfs.New(sim, net, beegfs.Config{
		Storage:        storagesim.Config{SingleTargetRate: 1764, Beta: 0.596},
		Hosts:          2,
		TargetsPerHost: 4,
		DefaultPattern: beegfs.StripePattern{Count: 4, ChunkSize: 512 * beegfs.KiB},
		Chooser:        &beegfs.RoundRobinChooser{},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := faults.Schedule{{At: 1, Kind: faults.NICFault, ID: 1, Action: faults.Fail}}
	if s.Validate(fs) == nil {
		t.Fatal("NIC fault accepted on a deployment without NIC resources")
	}
}

func TestKindAndActionStrings(t *testing.T) {
	if faults.TargetFault.String() != "target" || faults.HostFault.String() != "host" ||
		faults.NICFault.String() != "nic" || faults.SlowFault.String() != "slow" ||
		faults.PartitionFault.String() != "partition" {
		t.Fatal("kind strings broken")
	}
	if faults.Fail.String() != "fail" || faults.Recover.String() != "recover" {
		t.Fatal("action strings broken")
	}
	if faults.PlaneControl.String() != "control" || faults.PlaneData.String() != "data" {
		t.Fatal("plane strings broken")
	}
	if faults.Kind(9).String() == "" || faults.Action(9).String() == "" || faults.Plane(9).String() == "" {
		t.Fatal("unknown values must still print")
	}
}

// Failing a target takes it out of the management service, pins its device
// capacity to zero and recovery reverses both.
func TestTargetFaultStateTransitions(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	inj := faults.NewInjector(dep.FS)
	tg := dep.FS.Storage().TargetByID(201)

	inj.Apply(faults.Event{Kind: faults.TargetFault, ID: 201, Action: faults.Fail})
	if dep.FS.Mgmtd().IsOnline(201) {
		t.Fatal("failed target still online in mgmtd")
	}
	if !tg.Failed() || tg.Resource().Capacity() != 0 {
		t.Fatalf("failed target: failed=%v cap=%v", tg.Failed(), tg.Resource().Capacity())
	}
	inj.Apply(faults.Event{Kind: faults.TargetFault, ID: 201, Action: faults.Recover})
	if !dep.FS.Mgmtd().IsOnline(201) || tg.Failed() || tg.Resource().Capacity() <= 0 {
		t.Fatal("recovery did not restore the target")
	}
}

// A host fault takes down every target, the I/O controller and the NIC.
func TestHostFaultStateTransitions(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	inj := faults.NewInjector(dep.FS)
	h := dep.FS.Storage().Hosts()[1]

	inj.Apply(faults.Event{Kind: faults.HostFault, ID: 2, Action: faults.Fail})
	if !h.Failed() || h.Controller().Capacity() != 0 {
		t.Fatal("host not failed")
	}
	if !dep.FS.NICDown(h) || dep.FS.ServerNIC(h).Capacity() != 0 {
		t.Fatal("host fault left the NIC up")
	}
	for _, tg := range h.Targets() {
		if dep.FS.Mgmtd().IsOnline(tg.ID) || !tg.Failed() {
			t.Fatalf("target %d survived its host", tg.ID)
		}
	}
	inj.Apply(faults.Event{Kind: faults.HostFault, ID: 2, Action: faults.Recover})
	if h.Failed() || h.Controller().Capacity() <= 0 || dep.FS.NICDown(h) {
		t.Fatal("host recovery incomplete")
	}
	for _, tg := range h.Targets() {
		if !dep.FS.Mgmtd().IsOnline(tg.ID) || tg.Failed() {
			t.Fatalf("target %d not recovered", tg.ID)
		}
	}
}

// A NIC fault leaves the targets healthy in mgmtd state but unreachable.
func TestNICFaultStateTransitions(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	inj := faults.NewInjector(dep.FS)
	h := dep.FS.Storage().Hosts()[0]

	inj.Apply(faults.Event{Kind: faults.NICFault, ID: 1, Action: faults.Fail})
	if !dep.FS.NICDown(h) || dep.FS.ServerNIC(h).Capacity() != 0 {
		t.Fatal("NIC fault did not zero the link")
	}
	if h.Failed() || h.Targets()[0].Failed() {
		t.Fatal("NIC fault must not fail the storage devices")
	}
	inj.Apply(faults.Event{Kind: faults.NICFault, ID: 1, Action: faults.Recover})
	if dep.FS.NICDown(h) || dep.FS.ServerNIC(h).Capacity() <= 0 {
		t.Fatal("NIC recovery incomplete")
	}
}

// A mid-run transient target failure aborts the write's flow; the client
// retry path re-issues the remaining volume and the op completes — later
// than the healthy baseline, without an error.
func TestTransientTargetFaultRetriesAndCompletes(t *testing.T) {
	run := func(sched faults.Schedule) (simkernel.Time, error) {
		dep := deploy(t, cluster.Scenario2Omnipath)
		client := dep.Nodes(1)[0]
		f, err := dep.FS.CreateWithPattern("/f", beegfs.StripePattern{Count: 1, ChunkSize: 512 * beegfs.KiB}, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		id := f.Targets[0].ID
		for i := range sched {
			sched[i].ID = id
		}
		if err := faults.NewInjector(dep.FS).Arm(sched); err != nil {
			t.Fatal(err)
		}
		var done simkernel.Time
		var opErr error
		if _, err := dep.FS.StartWrite(&beegfs.WriteOp{
			Client: client, File: f, Length: 4096 * beegfs.MiB, TransferSize: beegfs.MiB,
			OnComplete: func(at simkernel.Time) { done = at },
			OnError:    func(err error) { opErr = err },
		}); err != nil {
			t.Fatal(err)
		}
		if err := dep.Sim.Run(); err != nil {
			t.Fatal(err)
		}
		return done, opErr
	}
	healthy, err := run(nil)
	if err != nil || healthy <= 0 {
		t.Fatalf("healthy run: done=%v err=%v", healthy, err)
	}
	faulty, err := run(faults.Schedule{
		{At: 0.5, Kind: faults.TargetFault, Action: faults.Fail},
		{At: 1.5, Kind: faults.TargetFault, Action: faults.Recover},
	})
	if err != nil {
		t.Fatalf("transient fault killed the op: %v", err)
	}
	if faulty <= healthy {
		t.Fatalf("faulty run finished at %v, healthy at %v — fault had no cost", faulty, healthy)
	}
}

// A permanent failure exhausts the retry budget and surfaces a structured
// IOFailedError through OnError — never a panic, never a hang.
func TestPermanentFaultExhaustsRetryBudget(t *testing.T) {
	dep := deploy(t, cluster.Scenario1Ethernet)
	client := dep.Nodes(1)[0]
	f, err := dep.FS.CreateWithPattern("/f", beegfs.StripePattern{Count: 1, ChunkSize: 512 * beegfs.KiB}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	sched := faults.Schedule{{At: 0.2, Kind: faults.TargetFault, ID: f.Targets[0].ID, Action: faults.Fail}}
	if err := faults.NewInjector(dep.FS).Arm(sched); err != nil {
		t.Fatal(err)
	}
	var opErr error
	completed := false
	if _, err := dep.FS.StartWrite(&beegfs.WriteOp{
		Client: client, File: f, Length: 4096 * beegfs.MiB, TransferSize: beegfs.MiB,
		OnComplete: func(simkernel.Time) { completed = true },
		OnError:    func(err error) { opErr = err },
	}); err != nil {
		t.Fatal(err)
	}
	if err := dep.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if completed {
		t.Fatal("op completed against a permanently failed target")
	}
	var ioErr *beegfs.IOFailedError
	if !errors.As(opErr, &ioErr) {
		t.Fatalf("error = %v, want *beegfs.IOFailedError", opErr)
	}
	if ioErr.Attempts != dep.FS.Config().RetryMax {
		t.Fatalf("attempts = %d, want RetryMax = %d", ioErr.Attempts, dep.FS.Config().RetryMax)
	}
}

// The determinism contract: the same seed and the same fault schedule
// replay an IOR run bit-identically.
func TestFaultReplayDeterminism(t *testing.T) {
	run := func() ior.Result {
		dep := deploy(t, cluster.Scenario1Ethernet)
		dep.ReJitter(rng.New(99))
		sched := faults.Schedule{
			{At: 1.0, Kind: faults.TargetFault, ID: 201, Action: faults.Fail},
			{At: 2.0, Kind: faults.NICFault, ID: 1, Action: faults.Fail},
			{At: 3.0, Kind: faults.NICFault, ID: 1, Action: faults.Recover},
			{At: 4.0, Kind: faults.TargetFault, ID: 201, Action: faults.Recover},
		}
		if err := faults.NewInjector(dep.FS).Arm(sched); err != nil {
			t.Fatal(err)
		}
		params := ior.Params{Nodes: 4, PPN: 8, TransferSize: beegfs.MiB, StripeCount: 4}.WithTotalSize(8 * beegfs.GiB)
		res, err := ior.Execute(dep.FS, dep.Nodes(4), params, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Bandwidth != b.Bandwidth || a.Start != b.Start || a.End != b.End {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
	if a.Bandwidth <= 0 {
		t.Fatal("run produced no bandwidth")
	}
}

// FuzzFaultSchedule asserts that NO valid schedule of fault events can
// panic the simulator: whatever fails and whenever, the workload either
// completes or surfaces a structured error through Result.Err.
func FuzzFaultSchedule(f *testing.F) {
	f.Add([]byte{0x00, 0x12, 0x34, 0x56})
	f.Add([]byte{0xff, 0x01, 0x80, 0x40, 0x20, 0x10, 0x08, 0x04})
	f.Add([]byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc})
	f.Fuzz(func(t *testing.T, data []byte) {
		dep, err := cluster.PlaFRIM(cluster.Scenario1Ethernet).Deploy()
		if err != nil {
			t.Fatal(err)
		}
		// Decode up to 16 events from the fuzz bytes, 3 bytes each, clamped
		// into the valid domain. Each candidate is kept only if Validate
		// still accepts the grown schedule — Validate rejects genuinely
		// contradictory sequences (e.g. recovering a target inside a
		// still-failed host), and the fuzz bytes are free to propose them.
		all := dep.FS.Mgmtd().All()
		var sched faults.Schedule
		for i := 0; i+2 < len(data) && len(sched) < 16; i += 3 {
			e := faults.Event{
				At:     float64(data[i]) / 16.0, // 0..~16 s
				Kind:   faults.Kind(data[i+1] % 3),
				Action: faults.Action(data[i+1] / 3 % 2),
			}
			if e.Kind == faults.TargetFault {
				e.ID = all[int(data[i+2])%len(all)].ID
			} else {
				e.ID = 1 + int(data[i+2])%2
			}
			if append(sched, e).Validate(dep.FS) == nil {
				sched = append(sched, e)
			}
		}
		if err := faults.NewInjector(dep.FS).Arm(sched); err != nil {
			t.Fatalf("valid schedule rejected: %v", err)
		}
		params := ior.Params{Nodes: 2, PPN: 2, TransferSize: beegfs.MiB, StripeCount: 4}.WithTotalSize(256 * beegfs.MiB)
		done := false
		if _, err := ior.Start(dep.FS, dep.Nodes(2), params, rng.New(uint64(len(data))), func(ior.Result) { done = true }); err != nil {
			t.Fatalf("start failed: %v", err)
		}
		// Drive to completion with an event-count guard: a schedule must
		// never be able to wedge the simulation either.
		for steps := 0; !done; steps++ {
			if steps > 2_000_000 {
				t.Fatal("simulation did not converge")
			}
			if !dep.Sim.Step() {
				t.Fatal("simulation drained with the run pending")
			}
		}
	})
}
