// Package experiments implements the paper's experimental campaign: the
// randomized execution protocol of §III-C, concurrent-application runs
// (§IV-D, Equation 1) and the per-figure experiment definitions that
// regenerate every quantitative figure of the evaluation.
package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/ior"
	"repro/internal/rng"
	"repro/internal/simkernel"
)

// Protocol is the §III-C execution protocol:
//
//  1. generate a list of all benchmark runs (Repetitions per experiment);
//  2. divide the list into blocks of BlockSize executions;
//  3. execute the blocks in random order, one run at a time;
//  4. impose a random wait (MinWait..MaxWait seconds of virtual time)
//     between blocks.
//
// Randomized block order and inter-block waits decorrelate repetitions
// from transient system state; in the simulator, the "system state" is the
// per-run capacity jitter redrawn by ReJitter.
type Protocol struct {
	Repetitions int
	BlockSize   int
	MinWait     float64 // seconds
	MaxWait     float64
	Seed        uint64
}

// DefaultProtocol reproduces the paper: 100 repetitions, blocks of 10,
// waits of 1-30 minutes.
func DefaultProtocol(seed uint64) Protocol {
	return Protocol{Repetitions: 100, BlockSize: 10, MinWait: 60, MaxWait: 1800, Seed: seed}
}

// Validate reports protocol errors.
func (p Protocol) Validate() error {
	if p.Repetitions <= 0 {
		return fmt.Errorf("experiments: Repetitions must be positive")
	}
	if p.BlockSize <= 0 {
		return fmt.Errorf("experiments: BlockSize must be positive")
	}
	if p.MinWait < 0 || p.MaxWait < p.MinWait {
		return fmt.Errorf("experiments: bad wait range [%v,%v]", p.MinWait, p.MaxWait)
	}
	return nil
}

// Config is one experiment: an IOR parameter set, optionally run as
// several concurrent applications on disjoint node sets.
type Config struct {
	Label string
	// Params describes ONE application's workload. With Apps > 1, each
	// application runs these parameters on its own Params.Nodes nodes.
	Params ior.Params
	// Apps is the number of concurrent applications (default 1).
	Apps int
}

func (c Config) apps() int {
	if c.Apps <= 0 {
		return 1
	}
	return c.Apps
}

// AppResult is one application's outcome within a (possibly concurrent)
// run.
type AppResult struct {
	App    string
	Result ior.Result
	Alloc  core.Allocation
}

// Record is one repetition's outcome.
type Record struct {
	Label string
	Rep   int
	// Apps holds each application's result (one entry for single-app
	// experiments).
	Apps []AppResult
	// Aggregate is the Equation-1 aggregate bandwidth:
	// sum(vol_i) / (max(end_i) - min(start_i)). For a single application
	// it equals the IOR-reported bandwidth.
	Aggregate float64
	// SharedTargets is the number of storage targets used by more than
	// one application (0 for single-app runs).
	SharedTargets int
}

// Bandwidth returns the single-app bandwidth (first app's) — a
// convenience for single-application campaigns.
func (r Record) Bandwidth() float64 {
	if len(r.Apps) == 0 {
		return 0
	}
	return r.Apps[0].Result.Bandwidth
}

// Alloc returns the first app's allocation.
func (r Record) Alloc() core.Allocation {
	if len(r.Apps) == 0 {
		return core.Allocation{}
	}
	return r.Apps[0].Alloc
}

// Campaign executes experiments on a deployment under a protocol.
type Campaign struct {
	Dep   *cluster.Deployment
	Proto Protocol
	// Interference, when non-nil, injects transient capacity-loss events
	// (§III-C item ii) with the configured probability per repetition.
	Interference *Interference
	// Faults, when non-empty, is armed at the start of every repetition
	// with times relative to the repetition's beginning: each run then
	// experiences the same mid-run failure/recovery script (the resilience
	// campaign's operating mode). Runs survive via the client retry path;
	// a run whose retry budget is exhausted fails the campaign with a
	// structured error.
	Faults faults.Schedule
	// BackgroundCreateRate, when positive, emulates other users of the
	// production system creating files (at this rate per second of
	// virtual time) while an experiment's applications are opening
	// theirs. Each creation advances the round-robin chooser's cursor, so
	// two concurrent applications can land on overlapping target sets —
	// without it, back-to-back creations at stripe count 4 on PlaFRIM's
	// 8-target cycle are always complementary and never share (§IV-D).
	BackgroundCreateRate float64
}

var bgSeq int

// Run executes the full randomized campaign and returns one Record per
// (experiment, repetition), in completion order.
func (c Campaign) Run(cfgs []Config) ([]Record, error) {
	if err := c.Proto.Validate(); err != nil {
		return nil, err
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("experiments: no configurations")
	}
	src := rng.New(c.Proto.Seed)
	// Step 1: the full run list, per experiment.
	type unit struct {
		cfg int
		rep int
	}
	var list []unit
	for ci := range cfgs {
		for rep := 0; rep < c.Proto.Repetitions; rep++ {
			list = append(list, unit{cfg: ci, rep: rep})
		}
	}
	// Step 2: blocks of BlockSize.
	var blocks [][]unit
	for start := 0; start < len(list); start += c.Proto.BlockSize {
		end := start + c.Proto.BlockSize
		if end > len(list) {
			end = len(list)
		}
		blocks = append(blocks, list[start:end])
	}
	// Step 3: random block order.
	order := src.Perm(len(blocks))
	var out []Record
	for bi, oi := range order {
		for _, u := range blocks[oi] {
			rec, err := c.runOnce(cfgs[u.cfg], u.rep, src)
			if err != nil {
				return nil, err
			}
			out = append(out, rec)
		}
		// Step 4: random wait between blocks (not after the last).
		if bi < len(order)-1 && c.Proto.MaxWait > 0 {
			wait := src.UniformRange(c.Proto.MinWait, c.Proto.MaxWait)
			if err := c.Dep.Sim.RunUntil(c.Dep.Sim.Now() + simkernel.Time(wait)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// runOnce executes one repetition: redraw system state, then run the
// experiment's application(s) concurrently and gather Equation 1.
func (c Campaign) runOnce(cfg Config, rep int, src *rng.Source) (Record, error) {
	c.Dep.ReJitter(src)
	if c.Interference != nil {
		if err := c.Interference.Validate(); err != nil {
			return Record{}, err
		}
		c.Interference.arm(c, src.Split(uint64(rep)*613+11))
	}
	if len(c.Faults) > 0 {
		if err := faults.NewInjector(c.Dep.FS).Arm(c.Faults); err != nil {
			return Record{}, err
		}
	}
	apps := cfg.apps()
	nodesPerApp := cfg.Params.Nodes
	nodes := c.Dep.Nodes(apps * nodesPerApp)
	rec := Record{Label: cfg.Label, Rep: rep}

	runs := make([]*ior.Run, apps)
	remaining := apps
	for a := 0; a < apps; a++ {
		p := cfg.Params
		p.SetupMean = c.Dep.Platform.SetupMean
		p.SetupCV = c.Dep.Platform.SetupCV
		p.App = fmt.Sprintf("%s/app%d", cfg.Label, a+1)
		p.Path = fmt.Sprintf("/%s/app%d/data", cfg.Label, a+1)
		slice := nodes[a*nodesPerApp : (a+1)*nodesPerApp]
		run, err := ior.Start(c.Dep.FS, slice, p, src.Split(uint64(rep*37+a)), func(ior.Result) { remaining-- })
		if err != nil {
			return Record{}, err
		}
		runs[a] = run
	}
	sim := c.Dep.Sim
	if c.BackgroundCreateRate > 0 {
		// Other users' metadata traffic during the window in which the
		// experiment's applications create their files (~the setup phase).
		bgSrc := src.Split(uint64(rep)*101 + 7)
		for t := bgSrc.Exp(1 / c.BackgroundCreateRate); t < 1.0; t += bgSrc.Exp(1 / c.BackgroundCreateRate) {
			bgSeq++
			path := fmt.Sprintf("/background/f%08d", bgSeq)
			sim.After(t, func() {
				// Ignore errors: a duplicate path or exhausted target set
				// only means this background create is a no-op.
				_, _ = c.Dep.FS.Create(path, bgSrc)
			})
		}
	}
	for remaining > 0 {
		if !sim.Step() {
			return Record{}, fmt.Errorf("experiments: simulation drained with %d apps pending", remaining)
		}
	}
	// Gather results, Equation 1 and target sharing.
	var volSum float64
	var minStart, maxEnd simkernel.Time
	targetUse := make(map[int]int)
	for a, run := range runs {
		res := run.Result()
		if res.Err != nil {
			return Record{}, fmt.Errorf("experiments: %s rep %d app %d failed: %w", cfg.Label, rep, a+1, res.Err)
		}
		ar := AppResult{
			App:    res.Params.App,
			Result: res,
			Alloc:  core.FromPerHostMap(res.PerHost, c.Dep.Platform.FS.Hosts),
		}
		rec.Apps = append(rec.Apps, ar)
		volSum += float64(res.Params.TotalBytes()) / float64(1<<20)
		if a == 0 || res.Start < minStart {
			minStart = res.Start
		}
		if res.End > maxEnd {
			maxEnd = res.End
		}
		seen := make(map[int]bool)
		for _, id := range res.TargetIDs {
			if !seen[id] {
				seen[id] = true
				targetUse[id]++
			}
		}
	}
	for _, n := range targetUse {
		if n > 1 {
			rec.SharedTargets++
		}
	}
	if maxEnd > minStart {
		rec.Aggregate = volSum / float64(maxEnd-minStart)
	}
	// Clean up the benchmark files (as IOR does by default) so campaigns
	// of hundreds of 32 GiB repetitions do not fill the storage targets.
	for _, run := range runs {
		for _, path := range run.Result().Paths {
			if err := c.Dep.FS.Remove(path); err != nil {
				return Record{}, fmt.Errorf("experiments: cleanup of %q failed: %w", path, err)
			}
		}
	}
	return rec, nil
}

// GroupByLabel indexes records by experiment label.
func GroupByLabel(recs []Record) map[string][]Record {
	out := make(map[string][]Record)
	for _, r := range recs {
		out[r.Label] = append(out[r.Label], r)
	}
	return out
}

// Bandwidths extracts single-app bandwidths from a record set.
func Bandwidths(recs []Record) []float64 {
	out := make([]float64, 0, len(recs))
	for _, r := range recs {
		out = append(out, r.Bandwidth())
	}
	return out
}

// Aggregates extracts Equation-1 aggregates from a record set.
func Aggregates(recs []Record) []float64 {
	out := make([]float64, 0, len(recs))
	for _, r := range recs {
		out = append(out, r.Aggregate)
	}
	return out
}
