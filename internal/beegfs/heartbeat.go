package beegfs

import (
	"math"

	"repro/internal/simkernel"
	"repro/internal/storagesim"
)

// heartbeatMonitor simulates the mgmtd side of BeeGFS's heartbeat
// protocol. Storage servers send a heartbeat per target every
// HeartbeatInterval; the mgmtd demotes a target to ProbablyOffline after
// HeartbeatTimeout without one and to Offline after OfflineTimeout, and
// promotes it back to Online on the first heartbeat that gets through.
//
// Rather than scheduling a sweep event every interval forever (which would
// keep the kernel queue non-empty and break every campaign's "step until
// the apps drain" loop), the monitor is lazy: it only schedules sweeps
// while some target is out of steady state — published reachability
// disagreeing with heartbeat ground truth, i.e. a detection or a recovery
// in progress. The fault injector kicks it after every applied event; once
// every target is steady again (alive+Online or dead+Offline) the sweep
// chain stops and the queue can drain. Sweeps fire at exact multiples of
// the interval, so detection latency is quantized the way a real periodic
// prober's is.
type heartbeatMonitor struct {
	fs       *FileSystem
	interval float64
	timeout  float64 // → ProbablyOffline
	offline  float64 // → Offline
	// lastSeen records the virtual time of the last heartbeat received per
	// target ID.
	lastSeen map[int]simkernel.Time
	// cut marks hosts whose control path to the mgmtd is partitioned:
	// heartbeats are lost even though the data path still moves bytes.
	cut map[*storagesim.Host]bool
	// dataOnly marks hosts whose *data* NIC outage spares the heartbeat
	// path (the converse partition): fs.nicDown is set but heartbeats
	// still arrive, so the mgmtd keeps publishing the target as Online
	// while every stale I/O against it fails.
	dataOnly map[*storagesim.Host]bool
	// sweep is the pending sweep event, nil or fired when the chain is
	// stopped.
	sweep *simkernel.Event
}

func newHeartbeatMonitor(fs *FileSystem) *heartbeatMonitor {
	cfg := fs.cfg
	timeout := cfg.HeartbeatTimeout
	if timeout <= 0 {
		timeout = 2 * cfg.HeartbeatInterval
	}
	offline := cfg.OfflineTimeout
	if offline <= 0 {
		offline = 5 * cfg.HeartbeatInterval
	}
	return &heartbeatMonitor{
		fs:       fs,
		interval: cfg.HeartbeatInterval,
		timeout:  timeout,
		offline:  offline,
		lastSeen: make(map[int]simkernel.Time),
		cut:      make(map[*storagesim.Host]bool),
		dataOnly: make(map[*storagesim.Host]bool),
	}
}

// alive reports heartbeat ground truth: would a heartbeat for t reach the
// mgmtd right now? Note a SlowFault never shows up here — a fail-slow
// target keeps heartbeating on schedule, which is exactly why gray
// failures are dangerous.
func (m *heartbeatMonitor) alive(t *storagesim.Target) bool {
	h := t.Host()
	if t.Failed() || h.Failed() || m.cut[h] {
		return false
	}
	if m.fs.nicDown[h] && !m.dataOnly[h] {
		return false
	}
	return true
}

// steady reports whether every target's published reachability agrees
// with heartbeat ground truth, i.e. no detection or recovery is pending.
func (m *heartbeatMonitor) steady() bool {
	for _, t := range m.fs.mgmtd.order {
		r := m.fs.mgmtd.Reachability(t.ID)
		if m.alive(t) {
			if r != Online {
				return false
			}
		} else if r != Offline {
			return false
		}
	}
	return true
}

// kick (re)starts the sweep chain if some target is out of steady state.
// The injector calls it after every applied fault event. While the chain
// was stopped no heartbeats were being recorded, so the kick first
// back-fills lastSeen for every still-Online target with the most recent
// interval tick: the target was provably alive until this very instant
// (the chain only stops in steady state), so every scheduled heartbeat up
// to and including that tick was delivered.
func (m *heartbeatMonitor) kick() {
	if m.sweep != nil && m.sweep.Scheduled() {
		return
	}
	now := m.fs.sim.Now()
	lastTick := simkernel.Time(math.Floor(float64(now)/m.interval) * m.interval)
	for _, t := range m.fs.mgmtd.order {
		if m.fs.mgmtd.Reachability(t.ID) == Online {
			m.lastSeen[t.ID] = lastTick
		}
	}
	// A kick is also the heartbeat model's "world changed" signal for the
	// resyncer: a heal that never demoted anything (a data-plane partition
	// ending, an outage shorter than the detection timeout) produces no
	// reachability transition, so pending resyncs must be retried here.
	if len(m.fs.dirty) > 0 {
		m.fs.startResyncs()
	}
	if m.steady() {
		return
	}
	m.sweep = m.fs.sim.At(lastTick+simkernel.Time(m.interval), m.runSweep)
}

// runSweep processes one heartbeat round: records heartbeats from alive
// targets, applies the timeout ladder to silent ones, and schedules the
// next round only while something is still out of steady state.
func (m *heartbeatMonitor) runSweep() {
	now := m.fs.sim.Now()
	mg := m.fs.mgmtd
	promoted := false
	for _, t := range mg.order {
		if m.alive(t) {
			m.lastSeen[t.ID] = now
			if mg.Reachability(t.ID) != Online {
				_ = mg.SetReachability(t.ID, Online)
				promoted = true
			}
			continue
		}
		silent := float64(now - m.lastSeen[t.ID])
		r := mg.Reachability(t.ID)
		switch {
		case silent >= m.offline && r != Offline:
			_ = mg.SetReachability(t.ID, Offline)
		case silent >= m.timeout && r == Online:
			_ = mg.SetReachability(t.ID, ProbablyOffline)
		}
	}
	if m.fs.stats != nil {
		m.fs.stats.HeartbeatSweeps++
		m.fs.stats.SweepTargets.Observe(uint64(len(mg.order)))
	}
	// ProbablyOffline -> Online promotions do not cross the legacy
	// offline boundary, so the Subscribe-driven resync restart never
	// fires for them; retry pending resyncs on any promotion.
	if promoted && len(m.fs.dirty) > 0 {
		m.fs.startResyncs()
	}
	if m.steady() {
		m.sweep = nil
		return
	}
	m.sweep = m.fs.sim.After(m.interval, m.runSweep)
}

// HeartbeatsEnabled reports whether the deployment runs the heartbeat
// state machine (HeartbeatInterval > 0) instead of omniscient detection.
func (fs *FileSystem) HeartbeatsEnabled() bool { return fs.hb != nil }

// HeartbeatKick pokes the heartbeat monitor to notice a changed world; the
// fault injector calls it after every applied event. It is a no-op when
// heartbeats are disabled.
func (fs *FileSystem) HeartbeatKick() {
	if fs.hb != nil {
		fs.hb.kick()
	}
}

// SetHeartbeatCut partitions (or heals) a host's control path to the
// mgmtd: its targets' heartbeats stop arriving while the data path keeps
// moving bytes, so after the timeouts the mgmtd publishes perfectly
// healthy targets as Offline — a false positive. Requires heartbeats
// enabled (the omniscient model has no control path to cut).
func (fs *FileSystem) SetHeartbeatCut(h *storagesim.Host, cut bool) {
	if fs.hb == nil {
		return
	}
	if cut {
		fs.hb.cut[h] = true
	} else {
		delete(fs.hb.cut, h)
	}
	fs.hb.kick()
}

// HeartbeatCut reports whether the host's control path is partitioned.
func (fs *FileSystem) HeartbeatCut(h *storagesim.Host) bool {
	return fs.hb != nil && fs.hb.cut[h]
}

// SetDataOnlyPartition marks (or clears) the converse partition for a
// host: its NIC outage (fs.SetNICDown) affects only the data path, with
// heartbeats still getting through, so the mgmtd never demotes the
// targets and clients keep failing against a published-Online host until
// the partition heals or their retry budgets run out.
func (fs *FileSystem) SetDataOnlyPartition(h *storagesim.Host, on bool) {
	if fs.hb == nil {
		return
	}
	if on {
		fs.hb.dataOnly[h] = true
	} else {
		delete(fs.hb.dataOnly, h)
	}
	fs.hb.kick()
}

// DataOnlyPartition reports whether the host's NIC outage spares
// heartbeats.
func (fs *FileSystem) DataOnlyPartition(h *storagesim.Host) bool {
	return fs.hb != nil && fs.hb.dataOnly[h]
}
