// Package simkernel implements a deterministic discrete-event simulation
// kernel: a virtual clock and a time-ordered event queue.
//
// All higher layers (network flows, storage transfers, the experiment
// protocol's waiting times) advance time exclusively through this kernel, so
// a whole campaign of "100 repetitions with 1-30 minute random waits" runs
// in milliseconds of wall time while preserving the temporal structure of
// the paper's execution protocol (§III-C).
//
// Determinism contract: events scheduled for the same virtual time fire in
// scheduling order (FIFO tie-break by a monotonically increasing sequence
// number). Two runs with the same seed therefore produce identical event
// orders.
package simkernel

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = float64

// Never is a sentinel Time further in the future than any schedulable event.
const Never = Time(math.MaxFloat64)

// Event is a callback scheduled to fire at a virtual time.
type Event struct {
	when Time
	seq  uint64
	fn   func()
	// index within the heap, or -1 when not queued; lets Cancel be O(log n).
	index int
}

// When returns the virtual time the event is (or was) scheduled for.
func (e *Event) When() Time { return e.when }

// Scheduled reports whether the event is still pending in the queue.
func (e *Event) Scheduled() bool { return e.index >= 0 }

// eventHeap is a 4-ary min-heap ordered by (when, seq). The (when, seq)
// pair is a strict total order — seq is unique among queued events — so the
// pop sequence is fully determined by the *set* of queued events, not by
// the heap's internal layout: any correct heap (binary, 4-ary, sorted
// list) yields the identical event order. The 4-ary shape is a pure
// constant-factor optimization: campaigns spend ~20% of their time in
// queue maintenance, and halving the tree depth plus dropping the
// container/heap interface dispatch makes Reschedule (the rebalancer's
// per-flow hot call) markedly cheaper without touching determinism.
type eventHeap []*Event

// eventBefore is the queue's strict total order.
func eventBefore(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// push appends e and restores the heap property.
func (h *eventHeap) push(e *Event) {
	e.index = len(*h)
	*h = append(*h, e)
	h.siftUp(e.index)
}

// popMin removes and returns the earliest event.
func (h *eventHeap) popMin() *Event {
	q := *h
	e := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[0].index = 0
	q[n] = nil
	*h = q[:n]
	if n > 0 {
		h.siftDown(0)
	}
	e.index = -1
	return e
}

// remove deletes the event at index i.
func (h *eventHeap) remove(i int) {
	q := *h
	e := q[i]
	n := len(q) - 1
	if i != n {
		q[i] = q[n]
		q[i].index = i
	}
	q[n] = nil
	*h = q[:n]
	if i != n {
		h.fix(i)
	}
	e.index = -1
}

// fix restores the heap property after q[i]'s time changed in place.
func (h eventHeap) fix(i int) {
	h.siftDown(i)
	h.siftUp(i)
}

func (h eventHeap) siftUp(i int) {
	e := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !eventBefore(e, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = i
		i = p
	}
	h[i] = e
	e.index = i
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	e := h[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		// Earliest of the up-to-four children.
		min := c
		for k := c + 1; k < c+4 && k < n; k++ {
			if eventBefore(h[k], h[min]) {
				min = k
			}
		}
		if !eventBefore(h[min], e) {
			break
		}
		h[i] = h[min]
		h[i].index = i
		i = min
	}
	h[i] = e
	e.index = i
}

// Stats counts kernel activity for the observability layer. It is a
// plain struct the owner attaches via SetStats; the kernel updates it
// behind a single nil check per site, so the disabled path costs one
// pointer comparison and the enabled path plain integer stores — no
// atomics (a Simulation is single-goroutine) and nothing that could
// perturb event order or timing.
type Stats struct {
	// Dispatched counts events fired by Step.
	Dispatched uint64
	// Scheduled counts At/After scheduling calls.
	Scheduled uint64
	// Reschedules counts in-place moves of still-pending events.
	Reschedules uint64
	// Requeues counts Reschedule calls that re-queued an already-fired
	// event (a fresh scheduling decision with a new sequence number).
	Requeues uint64
	// Cancels counts successful Cancel calls.
	Cancels uint64
	// HeapHighWater is the maximum queue length observed.
	HeapHighWater uint64
}

// Simulation owns a virtual clock and an event queue. The zero value is
// ready to use at time 0.
type Simulation struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	// executed counts fired events; useful for tests and runaway detection.
	executed uint64
	// MaxEvents, when non-zero, bounds the number of events Run will fire
	// before returning an error. It is a guard against model bugs that
	// schedule unboundedly.
	MaxEvents uint64
	// stats, when non-nil, receives kernel activity counts.
	stats *Stats
}

// SetStats attaches (or with nil detaches) an activity counter sink.
func (s *Simulation) SetStats(st *Stats) { s.stats = st }

// New returns a simulation starting at virtual time 0.
func New() *Simulation { return &Simulation{} }

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Executed returns the number of events fired so far.
func (s *Simulation) Executed() uint64 { return s.executed }

// Pending returns the number of events currently queued.
func (s *Simulation) Pending() int { return len(s.queue) }

// NextAt returns the virtual time of the earliest pending event, and
// whether one exists. Instant-boundary drivers (the batched-mode
// differential harnesses) use it to step the queue one whole instant at a
// time: fire events while NextAt stays equal, then compare state.
func (s *Simulation) NextAt() (Time, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].when, true
}

// Reserve pre-sizes the event queue's backing array to hold at least n
// pending events without further growth. Campaign drivers that know the
// churn's high-water mark (Stats.HeapHighWater from a previous run, or
// the job schedule's peak concurrency) call it once up front to skip the
// append-doubling copies of the spine; it never shrinks the queue and has
// no effect on event order.
func (s *Simulation) Reserve(n int) {
	if cap(s.queue) < n {
		q := make(eventHeap, len(s.queue), n)
		copy(q, s.queue)
		s.queue = q
	}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a model bug.
func (s *Simulation) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("simkernel: scheduling event at %v before now %v", t, s.now))
	}
	e := &Event{when: t, seq: s.nextSeq, fn: fn}
	s.nextSeq++
	s.queue.push(e)
	if s.stats != nil {
		s.stats.Scheduled++
		if n := uint64(len(s.queue)); n > s.stats.HeapHighWater {
			s.stats.HeapHighWater = n
		}
	}
	return e
}

// After schedules fn to run d seconds from now. Negative d panics.
func (s *Simulation) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("simkernel: negative delay %v", d))
	}
	return s.At(s.now+Time(d), fn)
}

// Cancel removes a pending event from the queue. Cancelling an event that
// already fired (or was already cancelled) is a no-op and returns false.
func (s *Simulation) Cancel(e *Event) bool {
	if e == nil || e.index < 0 {
		return false
	}
	s.queue.remove(e.index)
	if s.stats != nil {
		s.stats.Cancels++
	}
	return true
}

// Reschedule moves a pending event to a new absolute time. If the event is
// no longer pending it is re-queued (this is how flow completion events are
// adjusted when fair-share rates change).
//
// Contract: rescheduling a *pending* event keeps its original scheduling
// sequence, so its FIFO rank among equal-time events does not change — in
// particular, rescheduling to its current time is exactly a no-op. The
// component-scoped rebalancer depends on this: it skips the Reschedule
// call entirely for flows whose completion instant is unchanged, and that
// skip is only undetectable because calling Reschedule would not have
// perturbed the tie-break order either. Re-queueing an already-fired
// event, by contrast, assigns a fresh sequence: it is a new scheduling
// decision and fires after existing equal-time events.
func (s *Simulation) Reschedule(e *Event, t Time) {
	if t < s.now {
		panic(fmt.Sprintf("simkernel: rescheduling event to %v before now %v", t, s.now))
	}
	if e.index >= 0 {
		e.when = t
		s.queue.fix(e.index)
		if s.stats != nil {
			s.stats.Reschedules++
		}
		return
	}
	e.when = t
	e.seq = s.nextSeq
	s.nextSeq++
	s.queue.push(e)
	if s.stats != nil {
		s.stats.Requeues++
		if n := uint64(len(s.queue)); n > s.stats.HeapHighWater {
			s.stats.HeapHighWater = n
		}
	}
}

// Step fires the earliest pending event, advancing the clock to its time.
// It returns false when the queue is empty.
func (s *Simulation) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := s.queue.popMin()
	if e.when < s.now {
		panic("simkernel: queue produced an event in the past")
	}
	s.now = e.when
	s.executed++
	if s.stats != nil {
		s.stats.Dispatched++
	}
	e.fn()
	return true
}

// Run fires events until the queue drains. It returns an error if MaxEvents
// is exceeded.
func (s *Simulation) Run() error {
	for s.Step() {
		if s.MaxEvents != 0 && s.executed > s.MaxEvents {
			return fmt.Errorf("simkernel: exceeded MaxEvents=%d at t=%v", s.MaxEvents, s.now)
		}
	}
	return nil
}

// RunUntil fires events with time <= deadline, leaving later events queued.
// The clock ends at min(deadline, time of last fired event); it is advanced
// to the deadline if the queue drains or the next event is later.
func (s *Simulation) RunUntil(deadline Time) error {
	for len(s.queue) > 0 && s.queue[0].when <= deadline {
		s.Step()
		if s.MaxEvents != 0 && s.executed > s.MaxEvents {
			return fmt.Errorf("simkernel: exceeded MaxEvents=%d at t=%v", s.MaxEvents, s.now)
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
	return nil
}
