package beegfs

import (
	"errors"
	"math"
	"testing"

	"repro/internal/simkernel"
)

// retryDelay's documented schedule: RetryTimeout alone for the first
// re-issue, then RetryTimeout + min(RetryBackoffBase*2^(k-2),
// 60*RetryBackoffBase) for attempt k.
func TestRetryDelaySchedule(t *testing.T) {
	cfg := testConfig()
	cfg.RetryTimeout = 0.5
	cfg.RetryBackoffBase = 0.5
	cfg.RetryMax = 32
	_, fs := newFS(t, cfg)
	cases := []struct {
		attempt int
		want    float64
	}{
		{1, 0.5},        // plain timeout
		{2, 0.5 + 0.5},  // base * 2^0
		{3, 0.5 + 1.0},  // base * 2^1
		{4, 0.5 + 2.0},  // base * 2^2
		{8, 0.5 + 30.0}, // base * 2^6 = 32 > cap 60*base = 30
		{20, 0.5 + 30.0},
	}
	for _, c := range cases {
		if got := fs.retryDelay(c.attempt); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("retryDelay(%d) = %v, want %v", c.attempt, got, c.want)
		}
	}
}

// With RetryBackoffBase zero, the backoff falls back to RetryTimeout as
// its base instead of collapsing to an instant-retry storm.
func TestRetryDelayZeroBaseFallback(t *testing.T) {
	cfg := testConfig()
	cfg.RetryTimeout = 0.25
	cfg.RetryBackoffBase = 0
	cfg.RetryMax = 8
	_, fs := newFS(t, cfg)
	if got, want := fs.retryDelay(2), 0.25+0.25; math.Abs(got-want) > 1e-12 {
		t.Fatalf("retryDelay(2) = %v, want %v (base falls back to RetryTimeout)", got, want)
	}
	if got, want := fs.retryDelay(12), 0.25+60*0.25; math.Abs(got-want) > 1e-12 {
		t.Fatalf("retryDelay(12) = %v, want %v (cap uses the fallback base)", got, want)
	}
}

// A permanent failure exhausts exactly RetryMax re-issues: the terminal
// error wraps ErrRetriesExhausted, its Attempts equals RetryMax, and
// Stats.RetriesScheduled counted each scheduled re-issue once.
func TestRetryExhaustionMatchesStats(t *testing.T) {
	cfg := testConfig()
	cfg.RetryTimeout = 0.5
	cfg.RetryBackoffBase = 0.5
	cfg.RetryMax = 3
	sim, fs := newFS(t, cfg)
	var st Stats
	fs.SetStats(&st)
	client := fs.NewClient("n1", 0)
	f, err := fs.CreateWithPattern("/f", StripePattern{Count: 1, ChunkSize: 512 * KiB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var opErr error
	if _, err := fs.StartWrite(&WriteOp{
		Client: client, File: f, Length: 1764 * MiB, TransferSize: MiB,
		OnComplete: func(simkernel.Time) { t.Error("permanently failed op completed") },
		OnError:    func(err error) { opErr = err },
	}); err != nil {
		t.Fatal(err)
	}
	abortTargetAt(sim, fs, f.Targets[0].ID, 0.25) // never recovered
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(opErr, ErrRetriesExhausted) {
		t.Fatalf("error %v does not wrap ErrRetriesExhausted", opErr)
	}
	var ioErr *IOFailedError
	if !errors.As(opErr, &ioErr) {
		t.Fatalf("error = %v, want *IOFailedError", opErr)
	}
	if ioErr.Attempts != cfg.RetryMax {
		t.Fatalf("Attempts = %d, want RetryMax = %d", ioErr.Attempts, cfg.RetryMax)
	}
	if st.RetriesScheduled != uint64(cfg.RetryMax) {
		t.Fatalf("Stats.RetriesScheduled = %d, want %d", st.RetriesScheduled, cfg.RetryMax)
	}
	if st.FailedOps != 1 {
		t.Fatalf("Stats.FailedOps = %d, want 1", st.FailedOps)
	}
}
