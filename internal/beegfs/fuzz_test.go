package beegfs

import "testing"

// FuzzRegionDistribution cross-checks the stripe arithmetic's fast path
// against the naive chunk walk on arbitrary regions (run with
// `go test -fuzz=FuzzRegionDistribution ./internal/beegfs` to explore;
// the seed corpus runs as a normal test).
func FuzzRegionDistribution(f *testing.F) {
	f.Add(4, int64(512*KiB), int64(0), int64(1*MiB))
	f.Add(8, int64(512*KiB), int64(3*GiB+12345), int64(64*MiB))
	f.Add(1, int64(7), int64(13), int64(1000))
	f.Add(3, int64(1), int64(0), int64(0))
	f.Fuzz(func(t *testing.T, count int, chunk, off, n int64) {
		if count <= 0 || count > 16 || chunk <= 0 || chunk > 4*MiB {
			t.Skip()
		}
		if off < 0 || n < 0 || n > 1<<26 || off > 1<<40 {
			t.Skip()
		}
		// Bound the reference walk's work.
		if chunk > 0 && n/chunk > 1<<16 {
			t.Skip()
		}
		p := StripePattern{Count: count, ChunkSize: chunk}
		got, err := p.RegionDistribution(off, n)
		if err != nil {
			t.Fatalf("valid input rejected: %v", err)
		}
		want := naiveDistribution(p, off, n)
		var sum int64
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("count=%d chunk=%d off=%d n=%d: dist[%d] = %d, want %d",
					count, chunk, off, n, i, got[i], want[i])
			}
			if got[i] < 0 {
				t.Fatalf("negative bytes on target %d", i)
			}
			sum += got[i]
		}
		if sum != n {
			t.Fatalf("distribution sums to %d, want %d", sum, n)
		}
	})
}

// FuzzPatternForPath exercises the metadata directory-prefix matcher with
// arbitrary paths: it must never panic and always return a valid pattern.
func FuzzPatternForPath(f *testing.F) {
	f.Add("/a/b/c")
	f.Add("")
	f.Add("///")
	f.Add("/scratch/../x")
	f.Fuzz(func(t *testing.T, path string) {
		m, err := NewMetaService(StripePattern{Count: 4, ChunkSize: 512 * KiB})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetDirPattern("/a", StripePattern{Count: 2, ChunkSize: 512 * KiB}); err != nil {
			t.Fatal(err)
		}
		p := m.PatternFor(path)
		if p.Validate() != nil {
			t.Fatalf("PatternFor(%q) returned invalid pattern %+v", path, p)
		}
	})
}
