// Command beegfsim is the simulator's CLI: inspect a platform, run a
// single IOR-style benchmark, ask the stripe-count recommender, or print
// the Figure-9-style allocation timeline.
//
// Usage:
//
//	beegfsim topology  [-scenario 1|2]
//	beegfsim run       [-scenario 1|2] [-nodes N] [-ppn P] [-count K] [-size GiB] [-reps R] [-seed S] [-chooser roundrobin|random|balanced] [-nn]
//	beegfsim recommend [-scenario 1|2] [-nodes N] [-ppn P] [-chooser ...]
//	beegfsim timeline  [-scenario 1|2] [-alloc m1,m2] [-size GiB] [-nodes N] [-ppn P]
//	beegfsim replay    [-scenario 1|2] -trace jobs.json [-pool N] [-seed S]
//	beegfsim methodology [-scenario 1|2 | -config spec.json] [-reps R]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ior"
	"repro/internal/methodology"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "topology":
		err = topology(args)
	case "run":
		err = runCmd(args)
	case "recommend":
		err = recommend(args)
	case "timeline":
		err = timeline(args)
	case "replay":
		err = replay(args)
	case "methodology":
		err = methodologyCmd(args)
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "beegfsim:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `beegfsim — BeeGFS target-allocation simulator (CLUSTER'22 reproduction)

commands:
  topology   show the platform's components (Figure 1's architecture)
  run        execute IOR-style write benchmarks
  recommend  evaluate every stripe count and recommend the default
  timeline   per-server write timeline for an allocation (Figure 9)
  replay     replay a JSON job trace through a FCFS node scheduler
  methodology run the paper's full evaluation pipeline on a platform
             (size sweep -> node sweep -> count sweep -> recommendation)`)
}

func scenarioFlag(fs *flag.FlagSet) *int {
	return fs.Int("scenario", 1, "PlaFRIM network scenario: 1 (Ethernet) or 2 (Omnipath)")
}

func configFlag(fs *flag.FlagSet) *string {
	return fs.String("config", "", "JSON platform spec file (overrides -scenario and -chooser)")
}

func platformFrom(configPath string, scen int, chooser string) (cluster.Platform, error) {
	if configPath == "" {
		return platform(scen, chooser)
	}
	data, err := os.ReadFile(configPath)
	if err != nil {
		return cluster.Platform{}, err
	}
	spec, err := cluster.ParseSpec(data)
	if err != nil {
		return cluster.Platform{}, err
	}
	return spec.Platform()
}

func platform(s int, chooser string) (cluster.Platform, error) {
	var p cluster.Platform
	switch s {
	case 1:
		p = cluster.PlaFRIM(cluster.Scenario1Ethernet)
	case 2:
		p = cluster.PlaFRIM(cluster.Scenario2Omnipath)
	default:
		return p, fmt.Errorf("scenario must be 1 or 2, got %d", s)
	}
	switch chooser {
	case "", "roundrobin":
	case "random":
		p.FS.Chooser = beegfs.RandomChooser{}
	case "balanced":
		p.FS.Chooser = &beegfs.BalancedChooser{}
	case "randominternode":
		p.FS.Chooser = beegfs.RandomInterNodeChooser{}
	default:
		return p, fmt.Errorf("unknown chooser %q", chooser)
	}
	return p, nil
}

func topology(args []string) error {
	fs := flag.NewFlagSet("topology", flag.ExitOnError)
	scen := scenarioFlag(fs)
	config := configFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := platformFrom(*config, *scen, "")
	if err != nil {
		return err
	}
	dep, err := p.Deploy()
	if err != nil {
		return err
	}
	fmt.Printf("platform %s\n", p.Name)
	fmt.Printf("  management service: %d targets registered\n", len(dep.FS.Mgmtd().All()))
	fmt.Printf("  metadata service:   default stripe count %d, chunk %d KiB\n",
		p.FS.DefaultPattern.Count, p.FS.DefaultPattern.ChunkSize/1024)
	fmt.Printf("  chooser:            %s\n", p.FS.Chooser.Name())
	for _, h := range dep.FS.Storage().Hosts() {
		ids := make([]string, 0, len(h.Targets()))
		for _, t := range h.Targets() {
			ids = append(ids, strconv.Itoa(t.ID))
		}
		fmt.Printf("  %s: OSTs %s", h.Name, strings.Join(ids, ","))
		if nic := dep.FS.ServerNIC(h); nic != nil {
			fmt.Printf("  (NIC %.0f MiB/s)", nic.Capacity())
		}
		fmt.Println()
	}
	fmt.Printf("  client links:       %.0f MiB/s per node\n", p.ClientNICCapacity)
	fmt.Printf("  registration order: ")
	var order []string
	for _, t := range dep.FS.Mgmtd().All() {
		order = append(order, strconv.Itoa(t.ID))
	}
	fmt.Println(strings.Join(order, ", "))
	return nil
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	scen := scenarioFlag(fs)
	nodes := fs.Int("nodes", 8, "compute nodes")
	ppn := fs.Int("ppn", 8, "processes per node")
	count := fs.Int("count", 4, "stripe count")
	size := fs.Int64("size", 32, "total data size in GiB")
	reps := fs.Int("reps", 10, "repetitions")
	seed := fs.Uint64("seed", 1, "seed")
	chooser := fs.String("chooser", "roundrobin", "target chooser")
	nn := fs.Bool("nn", false, "file-per-process (N-N) instead of shared file (N-1)")
	df := fs.Bool("df", false, "print per-target storage usage after the runs (beegfs-ctl --storagepools style)")
	config := configFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := platformFrom(*config, *scen, *chooser)
	if err != nil {
		return err
	}
	dep, err := p.Deploy()
	if err != nil {
		return err
	}
	src := rng.New(*seed)
	params := ior.Params{
		Nodes: *nodes, PPN: *ppn,
		TransferSize: 1 * beegfs.MiB,
		StripeCount:  *count,
		SetupMean:    p.SetupMean, SetupCV: p.SetupCV,
	}.WithTotalSize(*size * beegfs.GiB)
	if *nn {
		params.Pattern = ior.FilePerProcess
	}
	t := report.NewTable(
		fmt.Sprintf("IOR %s: %d nodes x %d ppn, count %d, %d GiB, scenario %d, chooser %s",
			params.Pattern, *nodes, *ppn, *count, *size, *scen, p.FS.Chooser.Name()),
		"rep", "bandwidth_mibs", "allocation", "targets")
	var samples []float64
	for rep := 0; rep < *reps; rep++ {
		dep.ReJitter(src)
		res, err := ior.Execute(dep.FS, dep.Nodes(*nodes), params, src)
		if err != nil {
			return err
		}
		alloc := core.FromPerHostMap(res.PerHost, p.FS.Hosts)
		ids := make([]string, 0, len(res.TargetIDs))
		for _, id := range res.TargetIDs {
			ids = append(ids, strconv.Itoa(id))
		}
		if len(ids) > 8 {
			ids = append(ids[:8], "...")
		}
		t.AddRow(rep+1, res.Bandwidth, alloc.String(), strings.Join(ids, ","))
		samples = append(samples, res.Bandwidth)
	}
	fmt.Println(t.String())
	if s, err := stats.Summarize(samples); err == nil {
		fmt.Printf("mean %.1f MiB/s, sd %.1f, min %.1f, max %.1f", s.Mean, s.SD, s.Min, s.Max)
		if stats.Bimodal(samples) {
			fmt.Printf("  [bimodal — see Figure 6a]")
		}
		fmt.Println()
	}
	if *df {
		fmt.Println()
		printDF(dep.FS)
	}
	return nil
}

// printDF renders per-target storage usage, beegfs-ctl style.
func printDF(fsys *beegfs.FileSystem) {
	t := report.NewTable("storage targets", "target", "host", "used_gib", "capacity_gib", "use%")
	for _, tg := range fsys.Storage().Targets() {
		capGiB := float64(tg.CapacityBytes()) / float64(beegfs.GiB)
		usedGiB := float64(tg.Used()) / float64(beegfs.GiB)
		pct := 0.0
		if capGiB > 0 {
			pct = usedGiB / capGiB * 100
		}
		t.AddRow(tg.ID, tg.Host().Name, usedGiB, capGiB, pct)
	}
	fmt.Println(t.String())
	fmt.Printf("files on the metadata server: %d\n", fsys.Meta().FileCount())
}

func recommend(args []string) error {
	fs := flag.NewFlagSet("recommend", flag.ExitOnError)
	scen := scenarioFlag(fs)
	nodes := fs.Int("nodes", 8, "compute nodes of the reference application")
	ppn := fs.Int("ppn", 8, "processes per node")
	chooser := fs.String("chooser", "roundrobin", "target chooser")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := platform(*scen, *chooser)
	if err != nil {
		return err
	}
	m := core.Model{FS: p.FS, ClientNIC: p.ClientNICCapacity}
	// Host index per registration-order target.
	dep, err := p.Deploy()
	if err != nil {
		return err
	}
	hostIdx := map[string]int{}
	for i, h := range dep.FS.Storage().Hosts() {
		hostIdx[h.Name] = i
	}
	var order []int
	for _, t := range dep.FS.Mgmtd().All() {
		order = append(order, hostIdx[t.Host().Name])
	}
	rec, err := core.Recommend(m, order, p.FS.Chooser.Name(), p.FS.DefaultPattern.Count, *nodes, *ppn)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("stripe-count analysis: scenario %d, %s chooser, %d nodes x %d ppn", *scen, p.FS.Chooser.Name(), *nodes, *ppn),
		"count", "mean_mibs", "worst", "best", "bimodal", "allocations")
	for _, e := range rec.PerCount {
		var parts []string
		for _, a := range e.Allocations {
			parts = append(parts, fmt.Sprintf("%s p=%.2f %.0f", a.Alloc, a.P, a.Bandwidth))
		}
		t.AddRow(e.Count, e.Mean, e.Worst, e.Best, e.Bimodal, strings.Join(parts, "; "))
	}
	fmt.Println(t.String())
	fmt.Printf("recommended default stripe count: %d (current default %d, expected gain %+.0f%%)\n",
		rec.BestCount, rec.DefaultCount, rec.Gain*100)
	fmt.Println("paper's recommendation: use the maximum stripe count (lessons 4 and 6).")
	return nil
}

func timeline(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	scen := scenarioFlag(fs)
	allocStr := fs.String("alloc", "1,3", "targets per server, comma-separated")
	size := fs.Int64("size", 32, "volume in GiB")
	nodes := fs.Int("nodes", 8, "compute nodes")
	ppn := fs.Int("ppn", 8, "processes per node")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := platform(*scen, "")
	if err != nil {
		return err
	}
	var perHost []int
	for _, part := range strings.Split(*allocStr, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad -alloc: %w", err)
		}
		perHost = append(perHost, v)
	}
	alloc := core.NewAllocation(perHost)
	m := core.Model{FS: p.FS, ClientNIC: p.ClientNICCapacity}
	tl, err := m.Timeline(alloc, float64(*size)*1024, *nodes, *ppn)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Figure 9 timeline: allocation %s writing %d GiB (scenario %d)", alloc, *size, *scen),
		"server", "targets", "data_share", "rate_mibs", "finish_s")
	maxFinish := 0.0
	for _, h := range tl {
		t.AddRow(h.Host+1, h.Targets, h.Share, h.Rate, h.Finish)
		if h.Finish > maxFinish {
			maxFinish = h.Finish
		}
	}
	fmt.Println(t.String())
	if maxFinish > 0 {
		fmt.Printf("aggregate bandwidth: %.1f MiB/s (completion set by the most loaded server)\n",
			float64(*size)*1024/maxFinish)
	}
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	scen := scenarioFlag(fs)
	config := configFlag(fs)
	tracePath := fs.String("trace", "", "JSON job trace (required; see internal/workload.Job)")
	pool := fs.Int("pool", 32, "compute-node pool size")
	seed := fs.Uint64("seed", 1, "seed")
	example := fs.Bool("example", false, "print an example trace and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *example {
		data, err := workload.EncodeTrace([]Job{
			{ID: "climate", Arrival: 0, Nodes: 16, PPN: 8, StripeCount: 8, TotalGiB: 64},
			{ID: "genomics", Arrival: 5, Nodes: 8, PPN: 8, StripeCount: 4, TotalGiB: 32},
			{ID: "checkpoint", Arrival: 9, Nodes: 8, PPN: 8, StripeCount: 8, TotalGiB: 32, ReadBack: true},
			{ID: "viz", Arrival: 12, Nodes: 16, PPN: 8, StripeCount: 8, TotalGiB: 16},
		})
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	if *tracePath == "" {
		return fmt.Errorf("replay needs -trace (or -example)")
	}
	data, err := os.ReadFile(*tracePath)
	if err != nil {
		return err
	}
	jobs, err := workload.ParseTrace(data)
	if err != nil {
		return err
	}
	p, err := platformFrom(*config, *scen, "")
	if err != nil {
		return err
	}
	results, err := workload.Replay(p, *pool, jobs, *seed)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("job trace replay: %d jobs, %d-node pool, %s", len(jobs), *pool, p.Name),
		"job", "arrival_s", "queued_s", "start_s", "end_s", "write_mibs", "read_mibs", "stretch", "targets")
	for _, r := range results {
		readCol := "-"
		if r.ReadBandwidth > 0 {
			readCol = fmt.Sprintf("%.0f", r.ReadBandwidth)
		}
		ids := make([]string, 0, len(r.TargetIDs))
		for _, id := range r.TargetIDs {
			ids = append(ids, strconv.Itoa(id))
		}
		t.AddRow(r.Job.ID, r.Job.Arrival, r.Queued, float64(r.Start), float64(r.End),
			r.Bandwidth, readCol, r.Stretch(), strings.Join(ids, ","))
	}
	fmt.Println(t.String())
	return nil
}

// Job aliases workload.Job for the -example literal above.
type Job = workload.Job

func methodologyCmd(args []string) error {
	fs := flag.NewFlagSet("methodology", flag.ExitOnError)
	scen := scenarioFlag(fs)
	config := configFlag(fs)
	reps := fs.Int("reps", 30, "repetitions per configuration (paper: 100)")
	maxNodes := fs.Int("maxnodes", 32, "node-sweep upper bound")
	seed := fs.Uint64("seed", 1, "seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := platformFrom(*config, *scen, "")
	if err != nil {
		return err
	}
	fmt.Printf("running the paper's evaluation methodology on %s...\n\n", p.Name)
	rep, err := methodology.Run(p, methodology.Options{
		Reps: *reps, Seed: *seed, MaxNodes: *maxNodes, FastProtocol: true,
	})
	if err != nil {
		return err
	}
	t1 := report.NewTable("stage 1 — data-size sweep (Figure 2)", "size_gib", "mean_mibs", "sd", "ci95")
	for _, pt := range rep.SizeSweep {
		t1.AddRow(pt.X, pt.Mean, pt.SD, fmt.Sprintf("[%.0f, %.0f]", pt.CILow, pt.CIHigh))
	}
	fmt.Println(t1.String())
	fmt.Printf("-> chosen total size: %d GiB (paper chose 32)\n\n", rep.ChosenSizeGiB)

	t2 := report.NewTable("stage 2 — node sweep (Figure 4)", "nodes", "mean_mibs", "sd", "ci95")
	for _, pt := range rep.NodeSweep {
		t2.AddRow(pt.X, pt.Mean, pt.SD, fmt.Sprintf("[%.0f, %.0f]", pt.CILow, pt.CIHigh))
	}
	fmt.Println(t2.String())
	fmt.Printf("-> plateau at %d nodes (+%.0f%% over one node; lesson 1); stage 3 uses %d nodes\n\n",
		rep.PlateauNodes, rep.NodeGain*100, rep.Stage3Nodes)

	t3 := report.NewTable("stage 3 — stripe-count sweep (Figures 6/8/10)",
		"count", "mean_mibs", "worst_class", "best_class", "bimodal", "allocation classes")
	for _, row := range rep.CountSweep {
		var cls []string
		for _, c := range row.Classes {
			cls = append(cls, fmt.Sprintf("%s n=%d %.0f", c.Alloc, c.N, c.Mean))
		}
		t3.AddRow(row.Count, row.Mean, row.Worst, row.Best, row.Bimodal, strings.Join(cls, "; "))
	}
	fmt.Println(t3.String())
	fmt.Printf("-> recommended default stripe count: %d (gain over current default: %+.0f%%)\n",
		rep.RecommendedCount, rep.GainOverDefault*100)
	if rep.BalanceGoverned {
		fmt.Println("-> allocation balance governs performance (lesson 4): prefer a balanced chooser")
	}
	return nil
}
