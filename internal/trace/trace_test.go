package trace

import (
	"math"
	"strings"
	"testing"

	"repro/internal/simkernel"
	"repro/internal/simnet"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Two equal flows on one link: rates 50/50, then the survivor jumps to
// 100 — the canonical fair-share timeline.
func recordedScenario(t *testing.T) (*Recorder, float64) {
	t.Helper()
	sim := simkernel.New()
	net := simnet.New(sim)
	rec := NewRecorder()
	net.Observe(rec.Hook())
	l := net.AddResource("link", 100)
	net.Start(&simnet.Flow{Name: "a", Volume: 100, Usage: map[*simnet.Resource]float64{l: 1}})
	net.Start(&simnet.Flow{Name: "b", Volume: 300, Usage: map[*simnet.Resource]float64{l: 1}})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	return rec, float64(sim.Now())
}

func TestRecorderSeries(t *testing.T) {
	rec, end := recordedScenario(t)
	if !almost(end, 4, 1e-9) {
		t.Fatalf("end = %v", end)
	}
	a := rec.Series("a")
	// a: 100 at t=0 (alone for an instant), then 50 when b starts (same
	// instant, superseded), 0 at t=2. Same-instant events coalesce, so the
	// first point must already be the 50 share.
	if len(a) != 2 {
		t.Fatalf("series a = %+v", a)
	}
	if a[0].At != 0 || !almost(a[0].Rate, 50, 1e-9) {
		t.Fatalf("a[0] = %+v, want rate 50 at t=0", a[0])
	}
	if !almost(a[1].At, 2, 1e-9) || a[1].Rate != 0 {
		t.Fatalf("a[1] = %+v, want rate 0 at t=2", a[1])
	}
	b := rec.Series("b")
	// b: 50 at 0, 100 at 2, 0 at 4.
	if len(b) != 3 {
		t.Fatalf("series b = %+v", b)
	}
	if !almost(b[1].At, 2, 1e-9) || !almost(b[1].Rate, 100, 1e-9) {
		t.Fatalf("b[1] = %+v", b[1])
	}
}

func TestRecorderVolumeConservation(t *testing.T) {
	rec, end := recordedScenario(t)
	if v := rec.Volume("a", end); !almost(v, 100, 1e-6) {
		t.Fatalf("volume a = %v, want 100", v)
	}
	if v := rec.Volume("b", end); !almost(v, 300, 1e-6) {
		t.Fatalf("volume b = %v, want 300", v)
	}
}

func TestRecorderAggregate(t *testing.T) {
	rec, _ := recordedScenario(t)
	agg := rec.Aggregate()
	// Aggregate: 100 from t=0 (both at 50), stays 100 at t=2 (a drops, b
	// jumps), 0 at t=4. Rate-unchanged points are merged.
	if len(agg) != 2 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if agg[0].At != 0 || !almost(agg[0].Rate, 100, 1e-9) {
		t.Fatalf("agg[0] = %+v", agg[0])
	}
	if !almost(agg[1].At, 4, 1e-9) || agg[1].Rate != 0 {
		t.Fatalf("agg[1] = %+v", agg[1])
	}
}

func TestRecorderFilter(t *testing.T) {
	rec := NewRecorder()
	rec.Filter = func(name string) bool { return strings.HasPrefix(name, "keep") }
	rec.Record(0, "keep/x", 10)
	rec.Record(0, "drop/y", 10)
	if len(rec.Flows()) != 1 || rec.Flows()[0] != "keep/x" {
		t.Fatalf("flows = %v", rec.Flows())
	}
}

func TestRecorderReset(t *testing.T) {
	rec, _ := recordedScenario(t)
	rec.Reset()
	if len(rec.Flows()) != 0 {
		t.Fatal("reset did not clear flows")
	}
	if rec.Volume("a", 10) != 0 {
		t.Fatal("reset did not clear volumes")
	}
}

func TestSparkline(t *testing.T) {
	rec, end := recordedScenario(t)
	s := rec.Sparkline("b", end, 20)
	if len(s) != 20 {
		t.Fatalf("width = %d", len(s))
	}
	// b runs at half rate then full rate: the strip must get denser.
	first, last := s[0], s[15]
	order := " .:-=+*#%@"
	if strings.IndexByte(order, first) >= strings.IndexByte(order, last) {
		t.Fatalf("sparkline not increasing: %q", s)
	}
	if rec.Sparkline("missing", end, 20) != "" {
		t.Fatal("unknown flow produced a sparkline")
	}
	if rec.Sparkline("b", 0, 20) != "" {
		t.Fatal("zero end produced a sparkline")
	}
}

func TestSummaryMentionsAllFlows(t *testing.T) {
	rec, end := recordedScenario(t)
	sum := rec.Summary(end)
	if !strings.Contains(sum, "a") || !strings.Contains(sum, "b") {
		t.Fatalf("summary missing flows:\n%s", sum)
	}
}

func TestSameInstantSupersedes(t *testing.T) {
	rec := NewRecorder()
	rec.Record(1, "f", 10)
	rec.Record(1, "f", 20)
	pts := rec.Series("f")
	if len(pts) != 1 || pts[0].Rate != 20 {
		t.Fatalf("pts = %+v, want single superseded point at rate 20", pts)
	}
}

// The Figure 9 scenario end to end: one writer striping (1,3) over two
// 1100 MiB/s server NICs. The trace shows the allocation's signature —
// the flow rate is 4/3 x 1100 throughout.
func TestFigure9Timeline(t *testing.T) {
	sim := simkernel.New()
	net := simnet.New(sim)
	rec := NewRecorder()
	net.Observe(rec.Hook())
	s1 := net.AddResource("oss1/nic", 1100)
	s2 := net.AddResource("oss2/nic", 1100)
	net.Start(&simnet.Flow{
		Name:   "w",
		Volume: 4096,
		Usage:  map[*simnet.Resource]float64{s1: 0.25, s2: 0.75},
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	pts := rec.Series("w")
	if !almost(pts[0].Rate, 4.0/3.0*1100, 1e-6) {
		t.Fatalf("rate = %v, want 1466.7", pts[0].Rate)
	}
	if v := rec.Volume("w", float64(sim.Now())); !almost(v, 4096, 1e-6) {
		t.Fatalf("volume = %v", v)
	}
}

// Aggregate must not depend on map iteration order: with two flows
// changing rate at the same instant, the per-timestamp running total is a
// float sum whose value depends on which flow is applied first unless the
// sweep visits flows in a fixed order. The rates are chosen so that the
// wrong order produces catastrophic cancellation (1e17 + 1 - 1e17 = 0,
// not 1).
func TestAggregateDeterministicSameInstant(t *testing.T) {
	build := func() *Recorder {
		rec := NewRecorder()
		rec.Record(0, "big", 1e17)
		rec.Record(0, "small", 0)
		// At t=1, both change in the same instant: big drops out, small
		// rises to 1.
		rec.Record(1, "big", 0)
		rec.Record(1, "small", 1)
		return rec
	}
	want := build().Aggregate()
	if n := len(want); n == 0 || want[n-1].Rate != 1 {
		t.Fatalf("aggregate = %+v, want final total exactly 1 (record-order sweep)", want)
	}
	// Map iteration order varies between runs of the loop; the output must
	// not.
	for i := 0; i < 50; i++ {
		got := build().Aggregate()
		if len(got) != len(want) {
			t.Fatalf("iteration %d: %d points, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("iteration %d: point %d = %+v, want %+v", i, j, got[j], want[j])
			}
		}
	}
}

// The forward-cursor Sparkline must sample exactly like the old
// full-rescan version: the rate in effect at each column's midpoint.
func TestSparklineCursorMatchesRescan(t *testing.T) {
	rec := NewRecorder()
	// Irregular steps, including one between two sample points and one
	// exactly at a likely sample time.
	steps := []Point{{0, 10}, {0.37, 80}, {1.5, 40}, {1.55, 100}, {7.2, 0}, {9.999, 60}}
	for _, p := range steps {
		rec.Record(p.At, "f", p.Rate)
	}
	const end, width = 10.0, 64
	got := rec.Sparkline("f", end, width)
	levels := " .:-=+*#%@"
	rateAt := func(t float64) float64 { // the old per-column rescan
		rate := 0.0
		for _, p := range steps {
			if p.At > t {
				break
			}
			rate = p.Rate
		}
		return rate
	}
	var want strings.Builder
	for i := 0; i < width; i++ {
		ts := end * (float64(i) + 0.5) / float64(width)
		lvl := int(rateAt(ts) / 100 * float64(len(levels)-1))
		want.WriteByte(levels[lvl])
	}
	if got != want.String() {
		t.Fatalf("sparkline mismatch:\n got %q\nwant %q", got, want.String())
	}
}
