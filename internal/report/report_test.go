package report

import (
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tb := NewTable("demo", "count", "mean", "note")
	tb.AddRow(1, 1763.951, "hello")
	tb.AddRow(12, 22.0, "x")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "1764.0") {
		t.Fatalf("float not trimmed to one decimal:\n%s", out)
	}
	if !strings.Contains(out, "count") || !strings.Contains(out, "-----") {
		t.Fatalf("missing header/separator:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "bbbb")
	tb.AddRow("xxxxxx", 1)
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Header and row should align: "bbbb" starts at the same column as "1".
	hIdx := strings.Index(lines[0], "bbbb")
	rIdx := strings.Index(lines[2], "1")
	if hIdx != rIdx {
		t.Fatalf("columns misaligned: header at %d, row at %d\n%s", hIdx, rIdx, tb.String())
	}
}

func TestTableIntegerFloats(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(8.0)
	if !strings.Contains(tb.String(), "8") || strings.Contains(tb.String(), "8.0") {
		t.Fatalf("integral float rendered badly: %s", tb.String())
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`say "hi"`, "x,y")
	csv := tb.CSV()
	if !strings.Contains(csv, `"say ""hi"""`) {
		t.Fatalf("quote escaping broken: %s", csv)
	}
	if !strings.Contains(csv, `"x,y"`) {
		t.Fatalf("comma quoting broken: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("header missing: %s", csv)
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"one", "two"}, []float64{50, 100}, 20)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	n1 := strings.Count(lines[0], "#")
	n2 := strings.Count(lines[1], "#")
	if n2 != 20 || n1 != 10 {
		t.Fatalf("bar lengths = %d/%d, want 10/20", n1, n2)
	}
}

func TestBarsDegenerate(t *testing.T) {
	if Bars(nil, nil, 10) != "" {
		t.Fatal("empty input should render empty")
	}
	if Bars([]string{"a"}, []float64{1, 2}, 10) != "" {
		t.Fatal("mismatched lengths should render empty")
	}
	if out := Bars([]string{"a"}, []float64{0}, 10); !strings.Contains(out, "a") {
		t.Fatalf("all-zero bars should still render labels: %q", out)
	}
}

func TestBoxRow(t *testing.T) {
	row := BoxRow(10, 20, 30, 40, 50, 0, 60, 61)
	if len(row) != 61 {
		t.Fatalf("width = %d", len(row))
	}
	if !strings.Contains(row, "O") {
		t.Fatal("median marker missing")
	}
	if strings.Count(row, "|") != 2 {
		t.Fatalf("whisker markers = %d, want 2: %q", strings.Count(row, "|"), row)
	}
	if !strings.Contains(row, "[") || !strings.Contains(row, "]") {
		t.Fatalf("box markers missing: %q", row)
	}
	// Marker order along the row must follow the five-number summary.
	if strings.Index(row, "|") > strings.Index(row, "[") ||
		strings.Index(row, "[") > strings.Index(row, "O") ||
		strings.Index(row, "O") > strings.Index(row, "]") {
		t.Fatalf("marker order broken: %q", row)
	}
}

func TestBoxRowDegenerate(t *testing.T) {
	if BoxRow(1, 2, 3, 4, 5, 5, 5, 40) != "" {
		t.Fatal("hi<=lo should render empty")
	}
	if BoxRow(1, 2, 3, 4, 5, 0, 10, 5) != "" {
		t.Fatal("tiny width should render empty")
	}
}

func TestBoxRowClamping(t *testing.T) {
	// Values outside [lo,hi] must clamp, not panic.
	row := BoxRow(-5, 0, 10, 90, 200, 0, 100, 50)
	if len(row) != 50 {
		t.Fatalf("width = %d", len(row))
	}
}

func TestScatter(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 2, 3}
	ys := []float64{10, 10, 20, 20, 20, 30}
	out := Scatter(xs, ys, 30, 8)
	if out == "" {
		t.Fatal("empty scatter")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 {
		t.Fatalf("lines = %d, want 8 rows + axis", len(lines))
	}
	if !strings.Contains(out, "30") || !strings.Contains(out, "10") {
		t.Fatalf("y-axis labels missing:\n%s", out)
	}
	// The triple point renders denser than the single point.
	if !strings.ContainsAny(out, "oO@") {
		t.Fatalf("no dense marks:\n%s", out)
	}
}

func TestScatterDegenerate(t *testing.T) {
	if Scatter(nil, nil, 10, 10) != "" {
		t.Fatal("empty input rendered")
	}
	if Scatter([]float64{1}, []float64{1, 2}, 10, 10) != "" {
		t.Fatal("mismatched input rendered")
	}
	if Scatter([]float64{1}, []float64{1}, 1, 10) != "" {
		t.Fatal("tiny grid rendered")
	}
	// Constant data must not divide by zero.
	if Scatter([]float64{5, 5}, []float64{7, 7}, 10, 5) == "" {
		t.Fatal("constant data should still render")
	}
}

func TestMarkdown(t *testing.T) {
	tb := NewTable("My Fig", "a", "b")
	tb.AddRow("x|y", 2.0)
	md := tb.Markdown()
	if !strings.Contains(md, "### My Fig") {
		t.Fatalf("title missing:\n%s", md)
	}
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| --- | --- |") {
		t.Fatalf("header/separator malformed:\n%s", md)
	}
	if !strings.Contains(md, `x\|y`) {
		t.Fatalf("pipe not escaped:\n%s", md)
	}
}
