package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Tracer records structured simulation events and serializes them as
// Chrome trace-event JSON (the format perfetto.dev and chrome://tracing
// load natively). Tracks map to trace "threads": the glue layer creates
// one per client node, one per OSS controller/NIC and one per OST, plus a
// "solver" track for rebalance activity.
//
// Timestamps are virtual-time seconds; the writer converts them to the
// format's microseconds. All methods are nil-safe and mutex-guarded:
// tracing is attached to exactly one repetition (a single simulation
// goroutine), but claims may race between parallel campaign cells.
type Tracer struct {
	mu      sync.Mutex
	claimed bool
	tids    map[string]int
	tracks  []string
	events  []traceEvent
	// counters holds "C" (counter) samples separately so the per-OST
	// utilization CSV can be derived without re-parsing the JSON.
	counters []counterSample
}

// traceEvent is one duration ("X") or instant ("i") event.
type traceEvent struct {
	name string
	ph   byte    // 'X' or 'i'
	ts   float64 // seconds
	dur  float64 // seconds, X only
	tid  int
	args map[string]any
}

// counterSample is one utilization sample of a named counter track.
type counterSample struct {
	track string
	at    float64 // seconds
	value float64 // MiB/s
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{tids: make(map[string]int)}
}

// Claim marks the tracer as attached and reports whether this caller won.
// A tracer records exactly one repetition; campaigns call Claim before
// attaching so that concurrent figure cells sharing one tracer do not
// interleave unrelated virtual timelines in one file.
func (t *Tracer) Claim() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.claimed {
		return false
	}
	t.claimed = true
	return true
}

// track interns a track name, assigning tids in first-use order.
// Caller holds t.mu.
func (t *Tracer) track(name string) int {
	if tid, ok := t.tids[name]; ok {
		return tid
	}
	tid := len(t.tracks) + 1
	t.tids[name] = tid
	t.tracks = append(t.tracks, name)
	return tid
}

// Slice records a complete duration event [start, end) on a track.
func (t *Tracer) Slice(track, name string, start, end float64, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, traceEvent{
		name: name, ph: 'X', ts: start, dur: end - start, tid: t.track(track), args: args,
	})
	t.mu.Unlock()
}

// Instant records a zero-duration marker on a track.
func (t *Tracer) Instant(track, name string, at float64, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, traceEvent{
		name: name, ph: 'i', ts: at, tid: t.track(track), args: args,
	})
	t.mu.Unlock()
}

// Counter records one sample of a named counter series (perfetto renders
// counter tracks as step graphs — the per-OST utilization timeline).
func (t *Tracer) Counter(track string, at, value float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counters = append(t.counters, counterSample{track: track, at: at, value: value})
	t.mu.Unlock()
}

// Events returns the number of recorded events (slices, instants and
// counter samples).
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events) + len(t.counters)
}

// jsonEvent is the Chrome trace-event wire form. ts/dur are microseconds.
type jsonEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const tracePid = 1

// WriteJSON writes the trace in Chrome trace-event JSON object form:
// {"traceEvents": [...]}. Thread-name metadata events come first so every
// track is labeled; then events in record order (a single simulated
// repetition records deterministically); counter samples last.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]jsonEvent, 0, len(t.events)+len(t.counters)+len(t.tracks)+1)
	out = append(out, jsonEvent{
		Name: "process_name", Ph: "M", Pid: tracePid,
		Args: map[string]any{"name": "simulation"},
	})
	for i, name := range t.tracks {
		out = append(out, jsonEvent{
			Name: "thread_name", Ph: "M", Pid: tracePid, Tid: i + 1,
			Args: map[string]any{"name": name},
		})
	}
	const usec = 1e6
	for _, e := range t.events {
		je := jsonEvent{
			Name: e.name, Ph: string(e.ph), Ts: e.ts * usec,
			Pid: tracePid, Tid: e.tid, Args: e.args,
		}
		if e.ph == 'X' {
			d := e.dur * usec
			je.Dur = &d
		} else if e.ph == 'i' {
			je.S = "t" // thread-scoped instant
		}
		out = append(out, je)
	}
	for _, c := range t.counters {
		out = append(out, jsonEvent{
			Name: c.track, Ph: "C", Ts: c.at * usec, Pid: tracePid,
			Args: map[string]any{"MiB/s": c.value},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}

// WriteUtilCSV writes the counter samples whose track name begins with
// prefix (e.g. "ost" for the per-OST utilization timeline) as
// time-ordered CSV rows: time_s,resource,mib_per_s. Samples of one track
// stay in record order; tracks are interleaved by (time, track name) so
// the file is deterministic and plot-ready.
func (t *Tracer) WriteUtilCSV(w io.Writer, prefix string) error {
	if t == nil {
		_, err := io.WriteString(w, "time_s,resource,mib_per_s\n")
		return err
	}
	t.mu.Lock()
	rows := make([]counterSample, 0, len(t.counters))
	for _, c := range t.counters {
		if strings.HasPrefix(c.track, prefix) {
			rows = append(rows, c)
		}
	}
	t.mu.Unlock()
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].at != rows[j].at {
			return rows[i].at < rows[j].at
		}
		return rows[i].track < rows[j].track
	})
	var b strings.Builder
	b.WriteString("time_s,resource,mib_per_s\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%.9f,%s,%.6f\n", r.at, r.track, r.value)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
