package beegfs

import (
	"testing"

	"repro/internal/simkernel"
	"repro/internal/simnet"
	"repro/internal/storagesim"
)

func hbConfig() Config {
	cfg := testConfig()
	cfg.HeartbeatInterval = 0.5
	cfg.HeartbeatTimeout = 1.0
	cfg.OfflineTimeout = 2.5
	cfg.RPCTimeout = 0.25
	return cfg
}

func TestHeartbeatConfigValidation(t *testing.T) {
	if err := hbConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := hbConfig()
	bad.HeartbeatInterval = -1
	if bad.Validate() == nil {
		t.Fatal("negative interval accepted")
	}
	bad = hbConfig()
	bad.OfflineTimeout = 0.5 // below HeartbeatTimeout
	if bad.Validate() == nil {
		t.Fatal("offline timeout below heartbeat timeout accepted")
	}
	bad = hbConfig()
	bad.HeartbeatInterval = 0 // timeouts without an interval
	if bad.Validate() == nil {
		t.Fatal("timeouts without heartbeat interval accepted")
	}
}

// A failed target climbs the reachability ladder on heartbeat-sweep
// boundaries: ProbablyOffline once HeartbeatTimeout of silence has
// accumulated, Offline at OfflineTimeout, and back to Online on the first
// sweep after recovery. The sweep chain must also stop afterwards so the
// simulation drains.
func TestHeartbeatDetectionLadder(t *testing.T) {
	sim, fs := newFS(t, hbConfig())
	type trans struct {
		id       int
		from, to Reachability
		at       simkernel.Time
	}
	var seen []trans
	fs.Mgmtd().SubscribeReach(func(tg *storagesim.Target, from, to Reachability) {
		seen = append(seen, trans{tg.ID, from, to, sim.Now()})
	})
	tg := fs.Storage().TargetByID(101)
	// Fail between ticks; the kick back-fills the t=1.0 heartbeat, so
	// silence accrues from there.
	sim.After(1.3, func() {
		tg.SetFailed(true)
		fs.HeartbeatKick()
	})
	sim.After(6.2, func() {
		tg.SetFailed(false)
		fs.HeartbeatKick()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	want := []trans{
		// silent = 1.0 at the t=2.0 sweep -> suspicion.
		{101, Online, ProbablyOffline, 2.0},
		// silent = 2.5 at the t=3.5 sweep -> declared offline.
		{101, ProbablyOffline, Offline, 3.5},
		// first sweep after the t=6.2 recovery kick.
		{101, Offline, Online, 6.5},
	}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %+v, want %+v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d = %+v, want %+v", i, seen[i], want[i])
		}
	}
	if sim.Step() {
		t.Fatal("queue not drained after steady state")
	}
}

// Reachability strings and the unknown-target defaults.
func TestReachabilityAccessors(t *testing.T) {
	_, fs := newFS(t, hbConfig())
	if Online.String() != "online" || ProbablyOffline.String() != "probably-offline" || Offline.String() != "offline" {
		t.Fatal("reachability strings broken")
	}
	if Good.String() != "good" || NeedsResync.String() != "needs-resync" || Bad.String() != "bad" {
		t.Fatal("consistency strings broken")
	}
	if fs.Mgmtd().Reachability(999) != Offline {
		t.Fatal("unknown target not reported offline")
	}
	if fs.Mgmtd().Consistency(999) != Bad {
		t.Fatal("unknown target not reported bad")
	}
	if fs.Mgmtd().Reachability(101) != Online || fs.Mgmtd().Consistency(101) != Good {
		t.Fatal("fresh target not online/good")
	}
}

// Creates shed ProbablyOffline targets: a suspected target takes no new
// files even though the legacy Online()/IsOnline view still includes it.
func TestCreateShedsProbablyOfflineTargets(t *testing.T) {
	_, fs := newFS(t, hbConfig())
	if err := fs.Mgmtd().SetReachability(101, ProbablyOffline); err != nil {
		t.Fatal(err)
	}
	if !fs.Mgmtd().IsOnline(101) {
		t.Fatal("probably-offline target must still count as online for running I/O")
	}
	f, err := fs.CreateWithPattern("/f", StripePattern{Count: 8, ChunkSize: 512 * KiB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Targets) != 7 {
		t.Fatalf("create allocated %d targets, want 7 (shedding the suspect)", len(f.Targets))
	}
	for _, id := range f.TargetIDs() {
		if id == 101 {
			t.Fatal("probably-offline target allocated to a new file")
		}
	}
}

// With every target suspected, creation falls back to the full online set
// instead of failing: a flapping control plane must not block the
// namespace.
func TestCreateFallsBackWhenAllSuspected(t *testing.T) {
	_, fs := newFS(t, hbConfig())
	for _, tg := range fs.Mgmtd().All() {
		if err := fs.Mgmtd().SetReachability(tg.ID, ProbablyOffline); err != nil {
			t.Fatal(err)
		}
	}
	f, err := fs.CreateWithPattern("/f", StripePattern{Count: 4, ChunkSize: 512 * KiB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Targets) != 4 {
		t.Fatalf("fallback create allocated %d targets, want 4", len(f.Targets))
	}
}

// The legacy online/offline Subscribe only fires when the Offline boundary
// is crossed: Online -> ProbablyOffline is invisible to it, while the
// reachability subscription sees every hop.
func TestSubscribeFiresOnOfflineBoundaryOnly(t *testing.T) {
	_, fs := newFS(t, hbConfig())
	var legacyCount, reach int
	fs.Mgmtd().Subscribe(func(tg *storagesim.Target, online bool) { legacyCount++ })
	fs.Mgmtd().SubscribeReach(func(tg *storagesim.Target, from, to Reachability) { reach++ })
	steps := []Reachability{ProbablyOffline, Offline, ProbablyOffline, Online}
	for _, r := range steps {
		if err := fs.Mgmtd().SetReachability(101, r); err != nil {
			t.Fatal(err)
		}
	}
	if reach != 4 {
		t.Fatalf("reach subscriber saw %d transitions, want 4", reach)
	}
	if legacyCount != 2 {
		t.Fatalf("legacy subscriber saw %d events, want 2 (offline + back)", legacyCount)
	}
}

func newBenchFS(b *testing.B) (*simkernel.Simulation, *FileSystem) {
	b.Helper()
	sim := simkernel.New()
	net := simnet.New(sim)
	fs, err := New(sim, net, hbConfig())
	if err != nil {
		b.Fatal(err)
	}
	return sim, fs
}

// A full detect/recover round trip through the sweep chain: fail a
// target, sweep it down the reachability ladder to Offline, recover it,
// sweep it back to Online and let the queue drain. This is the cost the
// chaos campaign pays per fault episode.
func BenchmarkHeartbeatDetectRecoverCycle(b *testing.B) {
	sim, fs := newBenchFS(b)
	tg := fs.Storage().TargetByID(101)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg.SetFailed(true)
		fs.HeartbeatKick()
		for sim.Step() {
		}
		tg.SetFailed(false)
		fs.HeartbeatKick()
		for sim.Step() {
		}
	}
}

// The injector kicks the monitor after every applied event; in steady
// state the kick must stay cheap (back-fill + steadiness scan, no sweep
// scheduled). This is the per-event overhead every faulted campaign pays.
func BenchmarkHeartbeatKickSteady(b *testing.B) {
	_, fs := newBenchFS(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.HeartbeatKick()
	}
}
