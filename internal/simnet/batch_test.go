package simnet

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/simkernel"
)

// rampWorld builds the shape batching exists for: n flows sharing one
// ramp resource (plus a private resource each), all started at the same
// instant — the t=0 client-ramp storm that costs the unbatched path one
// full-component solve per start.
func rampWorld(n int, workers int) (*simkernel.Simulation, *Network, []*Flow) {
	sim := simkernel.New()
	net := New(sim)
	net.SetBatching(workers)
	ramp := net.AddResource("ramp", 1000)
	flows := make([]*Flow, n)
	for i := range flows {
		own := net.AddResource(fmt.Sprintf("nic%03d", i), 40+float64(i%7)*5)
		f := &Flow{
			Name:   fmt.Sprintf("c%03d", i),
			Volume: 50 + float64(i%11)*8,
			Usage:  map[*Resource]float64{ramp: 0.5, own: 1},
		}
		flows[i] = f
		sim.At(0, func() { net.Start(f) })
	}
	return sim, net, flows
}

// TestBatchRampSolvesOncePerInstant is the tentpole's headline claim in
// miniature: a shared ramp starting N flows at one instant costs the
// unbatched path N full-component solves, the batched path one — with
// bit-identical rates and completion times.
func TestBatchRampSolvesOncePerInstant(t *testing.T) {
	const n = 64
	run := func(workers int) ([]uint64, Stats, uint64) {
		sim, net, flows := rampWorld(n, workers)
		var st Stats
		net.SetStats(&st)
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		state := make([]uint64, 0, 2*n)
		for _, f := range flows {
			if !f.Done() {
				t.Fatalf("flow %s did not finish", f.Name)
			}
			state = append(state, math.Float64bits(float64(f.Started())), math.Float64bits(f.rate))
		}
		return state, st, sim.Executed()
	}
	seqState, seqStats, _ := run(0)
	batState, batStats, _ := run(1)
	if !reflect.DeepEqual(seqState, batState) {
		t.Fatal("batched final state diverged from sequential")
	}
	if got := seqStats.Solves[TriggerStart]; got != n {
		t.Fatalf("unbatched start solves = %d, want %d (one per event)", got, n)
	}
	if got := batStats.Solves[TriggerStart]; got != 1 {
		t.Fatalf("batched start solves = %d, want 1 (one per instant)", got)
	}
	if batStats.SolveBatches == 0 || batStats.ComponentsDirty == 0 {
		t.Fatalf("batch stats not recorded: %+v", batStats)
	}
}

// TestBatchedParallelBitIdentical checks the deterministic merge: a
// many-component workload solved with 1, 2 and 8 flush workers must
// produce byte-identical observer logs and final state. Components are
// disjoint and finished in component-id order, so worker count must be
// invisible.
func TestBatchedParallelBitIdentical(t *testing.T) {
	const comps = 24
	run := func(workers int) ([]string, Stats) {
		sim := simkernel.New()
		net := New(sim)
		net.SetBatching(workers)
		var st Stats
		net.SetStats(&st)
		var log []string
		net.Observe(func(at simkernel.Time, f *Flow, rate float64) {
			log = append(log, fmt.Sprintf("%x %s %x", math.Float64bits(float64(at)), f.Name, math.Float64bits(rate)))
		})
		for c := 0; c < comps; c++ {
			shared := net.AddResource(fmt.Sprintf("g%02d/shared", c), 120+10*float64(c%5))
			for i := 0; i < 3; i++ {
				f := &Flow{
					Name:   fmt.Sprintf("g%02d/f%d", c, i),
					Volume: 30 + float64((c*3+i)%17)*4,
					Usage:  map[*Resource]float64{shared: 1},
				}
				if i == 2 {
					f.Cap = 20 + float64(c%4)*10
				}
				sim.At(0, func() { net.Start(f) })
				// A second wave of same-instant starts later, so mid-run
				// flushes see many dirty components too.
				g := &Flow{
					Name:   fmt.Sprintf("g%02d/w%d", c, i),
					Volume: 10 + float64(i)*3,
					Usage:  map[*Resource]float64{shared: 0.5},
				}
				sim.At(2, func() { net.Start(g) })
			}
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return log, st
	}
	log1, st1 := run(1)
	// SolveLatencyNs is the one wall-clock field in Stats (exported under
	// runtime/, excluded from every determinism contract); its count must
	// still match the solve count at any worker setting.
	if st1.SolveLatencyNs.Count != st1.ComponentFlows.Count {
		t.Fatalf("solve latency count %d != solve count %d", st1.SolveLatencyNs.Count, st1.ComponentFlows.Count)
	}
	st1.SolveLatencyNs = obs.Log2Hist{}
	for _, workers := range []int{2, 8} {
		logW, stW := run(workers)
		if !reflect.DeepEqual(log1, logW) {
			t.Fatalf("observer log differs between 1 and %d workers", workers)
		}
		if stW.SolveLatencyNs.Count != stW.ComponentFlows.Count {
			t.Fatalf("solve latency count %d != solve count %d at %d workers", stW.SolveLatencyNs.Count, stW.ComponentFlows.Count, workers)
		}
		stW.SolveLatencyNs = obs.Log2Hist{}
		if !reflect.DeepEqual(st1, stW) {
			t.Fatalf("stats differ between 1 and %d workers:\n1: %+v\n%d: %+v", workers, st1, workers, stW)
		}
	}
	if st1.ParallelSolves == 0 {
		t.Fatalf("multi-component flushes recorded no parallel-eligible solves: %+v", st1)
	}
}

// TestBatchObserver checks the per-flush hook and its shape reporting.
func TestBatchObserver(t *testing.T) {
	sim, net, _ := rampWorld(8, 3)
	batches := 0
	maxComps := 0
	net.ObserveBatches(func(at simkernel.Time, info BatchInfo) {
		batches++
		if info.Workers != 3 {
			t.Fatalf("BatchInfo.Workers = %d, want 3", info.Workers)
		}
		if info.Components > maxComps {
			maxComps = info.Components
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if batches == 0 || maxComps == 0 {
		t.Fatalf("batch observer saw %d batches, max width %d", batches, maxComps)
	}
}

// TestBatchedMidInstantCompletionGuard pins the stale-prediction guard: a
// completion event derived from pre-batch rates that fires in the same
// instant as a capacity cut must not complete the flow early — the flush
// re-derives the instant from the fresh rates.
func TestBatchedMidInstantCompletionGuard(t *testing.T) {
	run := func(workers int) (doneAt simkernel.Time) {
		sim := simkernel.New()
		net := New(sim)
		net.SetBatching(workers)
		link := net.AddResource("link", 100)
		f := &Flow{
			Name:   "f",
			Volume: 100, // completes at t=1 at full rate
			Usage:  map[*Resource]float64{link: 1},
			OnComplete: func(at simkernel.Time) {
				doneAt = at
			},
		}
		sim.At(0, func() { net.Start(f) })
		// At the exact predicted completion instant, halve the capacity.
		// The completion event (scheduled long ago, low sequence number)
		// fires before the flush; its prediction is stale by the cut.
		sim.At(1, func() { net.SetCapacity(link, 50) })
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return doneAt
	}
	seq := run(0)
	bat := run(1)
	if math.Float64bits(float64(seq)) != math.Float64bits(float64(bat)) {
		t.Fatalf("completion instant differs: sequential %v, batched %v", seq, bat)
	}
}

// TestBatchedIdleCapacityCadence pins the settleRescheduleAll interplay:
// an idle-resource capacity change in the same instant as flow events
// must leave state identical to the sequential path.
func TestBatchedIdleCapacityCadence(t *testing.T) {
	run := func(workers int) []uint64 {
		sim := simkernel.New()
		net := New(sim)
		net.SetBatching(workers)
		a := net.AddResource("a", 100)
		idle := net.AddResource("idle", 10)
		f := &Flow{Name: "f", Volume: 60, Usage: map[*Resource]float64{a: 1}}
		g := &Flow{Name: "g", Volume: 45, Usage: map[*Resource]float64{a: 1}}
		sim.At(0, func() { net.Start(f) })
		// Same instant: a start (dirties f's component) and an idle-
		// resource capacity change (settle-reschedule path).
		sim.At(0.5, func() { net.Start(g) })
		sim.At(0.5, func() { net.SetCapacity(idle, 75) })
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return []uint64{
			math.Float64bits(f.Remaining()), math.Float64bits(g.Remaining()),
			math.Float64bits(float64(sim.Now())),
		}
	}
	if seq, bat := run(0), run(1); !reflect.DeepEqual(seq, bat) {
		t.Fatalf("idle-capacity cadence diverged: %v vs %v", seq, bat)
	}
}

// TestSetBatchingGuards checks the mode-change preconditions.
func TestSetBatchingGuards(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	sim := simkernel.New()
	net := New(sim)
	expectPanic("negative workers", func() { net.SetBatching(-1) })
	gl := New(sim)
	gl.forceGlobal = true
	expectPanic("forceGlobal", func() { gl.SetBatching(1) })
	r := net.AddResource("r", 10)
	f := &Flow{Name: "f", Volume: 5, Usage: map[*Resource]float64{r: 1}}
	net.Start(f)
	expectPanic("mid-flight", func() { net.SetBatching(2) })
	net.Abort(f)
	net.SetBatching(2) // legal again once nothing is in flight
	if net.Batching() != 2 {
		t.Fatalf("Batching() = %d, want 2", net.Batching())
	}
}
