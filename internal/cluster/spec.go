package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/beegfs"
)

// Spec is the JSON-serializable description of a Platform, so that
// deployments can be version-controlled and shared (the chooser is named,
// not embedded). Zero-valued calibration fields inherit the PlaFRIM
// defaults of the named scenario base.
type Spec struct {
	Name string `json:"name"`
	// Base names the preset to start from: "scenario1", "scenario2", or
	// "custom" (custom requires LinkRateMiBs).
	Base string `json:"base"`
	// Hosts and TargetsPerHost reshape the storage side (0 = keep base).
	Hosts          int `json:"hosts,omitempty"`
	TargetsPerHost int `json:"targets_per_host,omitempty"`
	// Chooser: "roundrobin", "random" or "balanced" ("" = keep base).
	Chooser string `json:"chooser,omitempty"`
	// DefaultStripeCount and ChunkSizeKiB override the directory default.
	DefaultStripeCount int   `json:"default_stripe_count,omitempty"`
	ChunkSizeKiB       int64 `json:"chunk_size_kib,omitempty"`
	// LinkRateMiBs is the raw symmetric link rate for base "custom".
	LinkRateMiBs float64 `json:"link_rate_mibs,omitempty"`
	// MDSOpRate rate-limits the metadata server (0 = unlimited).
	MDSOpRate float64 `json:"mds_op_rate,omitempty"`
}

// Platform materializes the spec.
func (s Spec) Platform() (Platform, error) {
	var p Platform
	switch s.Base {
	case "scenario1":
		p = PlaFRIM(Scenario1Ethernet)
	case "scenario2":
		p = PlaFRIM(Scenario2Omnipath)
	case "custom":
		if s.LinkRateMiBs <= 0 {
			return p, fmt.Errorf("cluster: base \"custom\" needs link_rate_mibs")
		}
		hosts, tph := s.Hosts, s.TargetsPerHost
		if hosts == 0 {
			hosts = 2
		}
		if tph == 0 {
			tph = 4
		}
		var err error
		p, err = Custom(s.Name, hosts, tph, s.LinkRateMiBs, &beegfs.RoundRobinChooser{})
		if err != nil {
			return p, err
		}
	default:
		return p, fmt.Errorf("cluster: unknown base %q (want scenario1, scenario2 or custom)", s.Base)
	}
	if s.Name != "" {
		p.Name = s.Name
	}
	if s.Base != "custom" {
		if s.Hosts > 0 {
			p.FS.Hosts = s.Hosts
		}
		if s.TargetsPerHost > 0 {
			p.FS.TargetsPerHost = s.TargetsPerHost
		}
	}
	switch s.Chooser {
	case "":
	case "roundrobin":
		p.FS.Chooser = &beegfs.RoundRobinChooser{}
	case "random":
		p.FS.Chooser = beegfs.RandomChooser{}
	case "balanced":
		p.FS.Chooser = &beegfs.BalancedChooser{}
	case "randominternode":
		p.FS.Chooser = beegfs.RandomInterNodeChooser{}
	default:
		return p, fmt.Errorf("cluster: unknown chooser %q", s.Chooser)
	}
	if s.DefaultStripeCount > 0 {
		p.FS.DefaultPattern.Count = s.DefaultStripeCount
	}
	if s.ChunkSizeKiB > 0 {
		p.FS.DefaultPattern.ChunkSize = s.ChunkSizeKiB * 1024
	}
	if s.MDSOpRate > 0 {
		p.FS.MDSOpRate = s.MDSOpRate
	}
	if max := p.FS.Hosts * p.FS.TargetsPerHost; p.FS.DefaultPattern.Count > max {
		return p, fmt.Errorf("cluster: default stripe count %d exceeds %d targets", p.FS.DefaultPattern.Count, max)
	}
	if err := p.FS.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// ParseSpec decodes a JSON spec (unknown fields are rejected to catch
// typos in config files).
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("cluster: bad spec: %w", err)
	}
	return s, nil
}

// SpecOf extracts a round-trippable spec from a platform (best effort:
// calibration constants live in the base).
func SpecOf(p Platform, base string) Spec {
	return Spec{
		Name:               p.Name,
		Base:               base,
		Hosts:              p.FS.Hosts,
		TargetsPerHost:     p.FS.TargetsPerHost,
		Chooser:            p.FS.Chooser.Name(),
		DefaultStripeCount: p.FS.DefaultPattern.Count,
		ChunkSizeKiB:       p.FS.DefaultPattern.ChunkSize / 1024,
		MDSOpRate:          p.FS.MDSOpRate,
	}
}

// Encode renders the spec as indented JSON.
func (s Spec) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
